#!/usr/bin/env bash
# Serve-mode smoke: start the job server, submit a sweep over HTTP,
# poll it to completion, require the served report to be byte-identical
# to the equivalent CLI run, then SIGTERM the server and require a
# clean drain (exit 0).
set -euo pipefail

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
bin="$work/cohmeleon"
go build -o "$bin" ./cmd/cohmeleon

addr=127.0.0.1:8355
base="http://$addr"

# Reference: the CLI run the served job must reproduce byte-for-byte.
# The CLI wraps the report in a per-experiment header and wall-clock
# footer; the server serves the bare report, so both sides are
# normalized down to the report bytes before comparing.
"$bin" run -profile tiny -scenarios 3 -out "$work/cli.txt" sweep

"$bin" serve -addr "$addr" -cache-dir "$work/cache" 2> "$work/serve.log" &
pid=$!

for i in $(seq 1 50); do
  curl -fsS "$base/healthz" > /dev/null 2>&1 && break
  kill -0 "$pid" 2>/dev/null || { echo "server died on startup:"; cat "$work/serve.log"; exit 1; }
  sleep 0.2
done
curl -fsS "$base/readyz" > /dev/null

job=$(curl -fsS -X POST "$base/jobs" \
  -d '{"experiment":"sweep","profile":"tiny","scenarios":3}' | jq -r .id)
echo "submitted $job"

state=queued
for i in $(seq 1 300); do
  state=$(curl -fsS "$base/jobs/$job" | jq -r .state)
  case "$state" in done|failed|cancelled) break ;; esac
  sleep 0.2
done
if [ "$state" != done ]; then
  echo "job ended in state $state:"
  curl -fsS "$base/jobs/$job" | jq .
  exit 1
fi

curl -fsS "$base/jobs/$job/report" > "$work/served.txt"
curl -fsS "$base/statsz" | jq .

cmp <(grep -vE '^###|completed in|^$' "$work/cli.txt") \
    <(grep -vE '^$' "$work/served.txt")
echo "serve smoke: served report is byte-identical to the CLI run"

# Graceful drain: one SIGTERM, clean exit.
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
if [ "$status" != 0 ]; then
  echo "drain exited with status $status:"
  cat "$work/serve.log"
  exit 1
fi
grep -q drained "$work/serve.log"
echo "serve smoke: SIGTERM drained cleanly"
