#!/usr/bin/env bash
# Interrupt-resume smoke: SIGINT a checkpointing sweep mid-run, resume
# it, and require the resumed report to be byte-identical to an
# uninterrupted reference run (modulo the wall-clock footer lines).
set -euo pipefail

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
bin="$work/cohmeleon"
go build -o "$bin" ./cmd/cohmeleon

args=(run -profile tiny -scenarios 6)

# Reference: an uninterrupted run over its own cache directory.
"$bin" "${args[@]}" -cache-dir "$work/refcache" -out "$work/ref.txt" sweep

# Interrupted run: one SIGINT shortly after start triggers the graceful
# path — dispatch stops, in-flight cells finish and checkpoint, the
# process exits nonzero. On a fast machine the run may finish before the
# signal lands; then the resume below simply replays every cell, which
# exercises the same identity.
"$bin" "${args[@]}" -cache-dir "$work/cache" -out "$work/int.txt" sweep &
pid=$!
sleep 1
kill -INT "$pid" 2>/dev/null || true
status=0
wait "$pid" || status=$?
echo "interrupted run exited with status $status"

"$bin" "${args[@]}" -cache-dir "$work/cache" -resume -out "$work/res.txt" sweep

# The fsck must come up clean after the interrupt/resume cycle.
"$bin" run -cache-verify -cache-dir "$work/cache"

cmp <(grep -v 'completed in' "$work/ref.txt") <(grep -v 'completed in' "$work/res.txt")
echo "interrupt-resume smoke: resumed report is byte-identical"
