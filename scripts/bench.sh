#!/usr/bin/env bash
# bench.sh — run the repository's benchmark suite and emit
# BENCH_results.json so the performance trajectory is tracked across
# PRs.
#
# Usage:
#   scripts/bench.sh [quick|full]
#
#   quick (default)  the smoke set: BenchmarkAppRun (single-thread
#                    simulator speed) and the cache/noc/soc
#                    micro-benchmarks.
#   full             additionally regenerates every experiment artifact
#                    (BenchmarkHeadline, BenchmarkFigure*, ...) under the
#                    Quick protocol, with the worker pool at GOMAXPROCS
#                    and again pinned to 1 worker for the sequential
#                    reference.
#
# Environment:
#   COHMELEON_WORKERS  worker-pool override forwarded to the benchmarks.
#   BENCH_COUNT        repetitions per benchmark (default 3; the JSON
#                      keeps every sample so consumers can take medians —
#                      single samples are meaningless on noisy hosts).
#
# Output: BENCH_results.json in the repository root, of the form
#   {"generated_unix": ..., "go": "...", "benchmarks":
#     [{"name": "...", "workers": "...", "samples_ns_op": [...]}, ...]}

set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-quick}"
count="${BENCH_COUNT:-3}"
out="BENCH_results.json"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

run_bench() { # pkg regex benchtime workers label
    local pkg="$1" regex="$2" benchtime="$3" workers="$4" label="$5"
    echo ">> $label ($pkg -bench $regex, workers=$workers)" >&2
    COHMELEON_WORKERS="$workers" go test "$pkg" -run NONE -bench "$regex" \
        -benchtime "$benchtime" -count "$count" -timeout 120m \
        | tee -a "$tmp/raw.txt" \
        | awk -v w="$workers" '/^Benchmark/ { printf "%s %s %s\n", $1, w, $3 }' >> "$tmp/samples.txt"
}

run_bench_mem() { # pkg regex benchtime workers label — also records allocs/op
    local pkg="$1" regex="$2" benchtime="$3" workers="$4" label="$5"
    echo ">> $label ($pkg -bench $regex, workers=$workers, -benchmem)" >&2
    COHMELEON_WORKERS="$workers" go test "$pkg" -run NONE -bench "$regex" \
        -benchtime "$benchtime" -count "$count" -timeout 120m -benchmem \
        | tee -a "$tmp/raw.txt" \
        | awk -v w="$workers" '/^Benchmark/ { printf "%s %s %s %s\n", $1, w, $3, $7 }' >> "$tmp/samples.txt"
}

: > "$tmp/raw.txt"
: > "$tmp/samples.txt"

# Single-thread simulator speed: the hot-path reference number.
run_bench . 'BenchmarkAppRun$' 3x "${COHMELEON_WORKERS:-1}" "simulator app run"

# The same application once per registered coherence-protocol stack,
# with allocs/op: tracks the default (mesi) stack against its
# alternatives and guards the batched flows' alloc discipline under
# every protocol.
run_bench_mem . 'BenchmarkAppRunProtocol/' 3x "${COHMELEON_WORKERS:-1}" "simulator app run per protocol"

# Hot-path micro-benchmarks. The coherence-group and DMA-group series
# carry allocs/op: the run-batched group flows must stay 0 allocs/op on
# every steady-state path.
run_bench ./internal/cache '.' 1000000x 1 "cache micro"
run_bench ./internal/noc 'Transfer' 1000000x 1 "noc micro"
run_bench_mem ./internal/soc 'BenchmarkCoherenceGroupAccess|BenchmarkDMAGroup|BenchmarkCachedGroup' 100000x 1 "coherence group micro"
run_bench ./internal/soc 'BenchmarkInvocation' 100000x 1 "soc invocation micro"

# Simulation-kernel micro-benchmarks, with allocs/op: the alloc columns
# are the regression guard for the zero-allocation scheduler (0 expected
# on every steady-state path; TestZeroAlloc* enforces the same in CI).
run_bench_mem ./internal/sim 'BenchmarkEngineScheduleRun|BenchmarkProcSwitch|BenchmarkSemaphorePingPong' 500000x 1 "sim kernel micro"

# Learner decide+update micro-benchmarks, one sub-benchmark per
# registered algorithm, with allocs/op: the default ("q") path is the
# per-invocation hot path and must stay 0 allocs/op (TestZeroAlloc* in
# internal/learn enforces the same in CI).
run_bench_mem ./internal/learn 'BenchmarkLearnerDecide|BenchmarkFeaturize' 1000000x 1 "learner micro"

# Randomized scenario sweep (fixed 8 scenarios inside the benchmark):
# tracks the per-scenario cost of the sweep subsystem across PRs.
# BenchmarkSweep regenerates cold each iteration; BenchmarkSweepCached
# regenerates warm through the content-keyed run cache — the gap is the
# duplicate-run elimination on repeated artifact regeneration.
# BenchmarkSweep16 is the same sweep at 16 scenarios (a second point on
# the scenario-count axis); BenchmarkSweepScreening is the 8-scenario
# grid through the calibrated analytical cost model with the calibration
# pre-fitted — its ratio to BenchmarkSweep is the screening speedup.
run_bench . 'BenchmarkSweep$' 1x "${COHMELEON_WORKERS:-1}" "scenario sweep (cold)"
run_bench . 'BenchmarkSweepCached$' 1x "${COHMELEON_WORKERS:-1}" "scenario sweep (warm run cache)"
run_bench . 'BenchmarkSweep16$' 1x "${COHMELEON_WORKERS:-1}" "scenario sweep (16 scenarios)"
run_bench . 'BenchmarkSweepScreening$' 1x "${COHMELEON_WORKERS:-1}" "scenario sweep (screening fidelity)"

# Cost-model estimate micro-benchmark, with allocs/op: one feature
# extraction plus one model evaluation — the screening hot path — must
# stay 0 allocs/op (TestZeroAllocFeaturesEstimate enforces the same in
# CI).
run_bench_mem ./internal/costmodel 'BenchmarkCostModelEstimate$' 1000000x 1 "cost model estimate micro"

# Learner grid (fixed 4 scenarios × 8 stacks inside the benchmark):
# tracks the cost of the pluggable-learner comparison across PRs.
run_bench . 'BenchmarkLearners$' 1x "${COHMELEON_WORKERS:-1}" "learner grid"

if [ "$mode" = "full" ]; then
    # Artifact regeneration, parallel then sequential reference.
    run_bench . 'BenchmarkHeadline$' 1x 0 "headline (workers=GOMAXPROCS)"
    run_bench . 'BenchmarkHeadline$' 1x 1 "headline (sequential)"
    run_bench . 'BenchmarkFigure[0-9]+$|BenchmarkTable4$|BenchmarkOverhead$|BenchmarkAblation$' 1x 0 "figures"
fi

python3 - "$tmp/samples.txt" "$out" <<'EOF'
import json, sys, time, subprocess

samples = {}
allocs = {}
order = []
for line in open(sys.argv[1]):
    parts = line.split()
    name, workers, ns = parts[0], parts[1], parts[2]
    key = (name, workers)
    if key not in samples:
        samples[key] = []
        order.append(key)
    samples[key].append(float(ns))
    if len(parts) > 3:  # -benchmem rows carry allocs/op
        allocs.setdefault(key, []).append(float(parts[3]))

go = subprocess.run(["go", "version"], capture_output=True, text=True).stdout.strip()
def entry(n, w):
    e = {"name": n, "workers": w, "samples_ns_op": samples[(n, w)]}
    if (n, w) in allocs:
        e["samples_allocs_op"] = allocs[(n, w)]
    return e
doc = {
    "generated_unix": int(time.time()),
    "go": go,
    "benchmarks": [entry(n, w) for (n, w) in order],
}
with open(sys.argv[2], "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
print(f"wrote {sys.argv[2]} with {len(order)} benchmark series")
EOF
