#!/usr/bin/env bash
# Chaos shard smoke: the ISSUE's multi-process kill -9 pin. Three real
# cohmeleon worker processes shard one sweep grid over one shared cache
# directory via -shared leases; one worker is SIGKILL'd mid-sweep. The
# survivors must reclaim the victim's orphaned cells and finish, every
# surviving worker's report must be byte-identical to a single-process
# -fidelity full reference run (modulo the wall-clock footer lines),
# the store must fsck clean, and every reclaimed cell must be counted
# exactly once (one tokened reclaim marker per reclaim on disk).
set -euo pipefail

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
bin="$work/cohmeleon"
go build -o "$bin" ./cmd/cohmeleon

args=(run -profile tiny -scenarios 8 -fidelity full)

# Reference: the single-process run.
"$bin" "${args[@]}" -out "$work/ref.txt" sweep

# Three shard workers over one cache dir. The short TTL keeps the
# post-kill reclaim (and so the whole smoke) fast; the victim gets one
# worker slot so the survivors keep most cells moving while it dies.
cache="$work/cache"
shard=(-shared -cache-dir "$cache" -lease-ttl 2s)
"$bin" "${args[@]}" "${shard[@]}" -worker-id w1 -out "$work/w1.txt" sweep 2> "$work/w1.log" &
pid1=$!
"$bin" "${args[@]}" "${shard[@]}" -worker-id w2 -out "$work/w2.txt" sweep 2> "$work/w2.log" &
pid2=$!
"$bin" "${args[@]}" "${shard[@]}" -worker-id w3 -workers 1 -out "$work/w3.txt" sweep 2> "$work/w3.log" &
pid3=$!

# kill -9 worker 3 mid-sweep: no signal handler, no cleanup, exactly a
# crashed host. On a fast machine it may already have finished — then
# the kill is a no-op and the run degrades to a 3-survivor smoke, which
# still exercises the shared path (the CI timing makes that rare).
sleep 1
if kill -9 "$pid3" 2>/dev/null; then
  echo "killed worker w3 (pid $pid3) mid-sweep"
else
  echo "worker w3 finished before the kill; continuing as a no-victim run"
fi
wait "$pid3" || true

status=0
wait "$pid1" || status=$?
[ "$status" -eq 0 ] || { echo "worker w1 failed ($status)"; cat "$work/w1.log"; exit 1; }
wait "$pid2" || status=$?
[ "$status" -eq 0 ] || { echo "worker w2 failed ($status)"; cat "$work/w2.log"; exit 1; }

# Every survivor assembled the full grid: reports byte-identical to the
# single-process reference.
cmp <(grep -v 'completed in' "$work/ref.txt") <(grep -v 'completed in' "$work/w1.txt")
cmp <(grep -v 'completed in' "$work/ref.txt") <(grep -v 'completed in' "$work/w2.txt")
echo "chaos shard smoke: both survivors' reports are byte-identical to the reference"

# The store fscks clean after the SIGKILL: torn lease files quarantined
# or absent, orphaned temp files swept, every cell intact.
"$bin" run -cache-verify -cache-dir "$cache"

# Reclaim accounting: the survivors' stderr counters must agree with
# the on-disk audit trail — every reclaimed cell counted exactly once,
# which is once per tokened reclaim marker.
grep -h 'leases:' "$work/w1.log" "$work/w2.log" || true
markers=$(find "$cache/leases" -name '*.reclaimed-*' 2>/dev/null | wc -l)
counted=$(grep -ho '[0-9]* reclaimed' "$work/w1.log" "$work/w2.log" \
  | awk '{sum += $1} END {print sum+0}')
echo "reclaim markers on disk: $markers; reclaims counted by survivors: $counted"
if [ "$markers" -ne "$counted" ]; then
  echo "reclaim accounting mismatch: $counted counted, $markers markers" >&2
  exit 1
fi
# No live lease may survive a completed grid.
leftover=$(find "$cache/leases" -name '*.lease' 2>/dev/null | wc -l)
if [ "$leftover" -ne 0 ]; then
  echo "leases left behind after completion:" >&2
  find "$cache/leases" -name '*.lease' >&2
  exit 1
fi
echo "chaos shard smoke: fsck clean, reclaims counted exactly once"
