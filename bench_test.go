package cohmeleon

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"cohmeleon/internal/experiment"
	"cohmeleon/internal/soc/protocol"
)

// Benchmarks regenerate the paper's tables and figures. Each benchmark
// iteration runs the complete experiment; the benchmark time is the
// wall-clock cost of reproducing that artifact.
//
// By default the Quick protocol runs (same code paths, fewer
// repetitions) with the worker pool sized to GOMAXPROCS. Set
// COHMELEON_BENCH=full for the paper-faithful protocol,
// COHMELEON_WORKERS=n to pin the trial pool (1 reproduces the
// sequential run; reports are byte-identical either way), and
// COHMELEON_RENDER=1 to print each artifact.

func benchOptions() experiment.Options {
	opt := experiment.Quick()
	if os.Getenv("COHMELEON_BENCH") == "full" {
		opt = experiment.Default()
	}
	if w, err := strconv.Atoi(os.Getenv("COHMELEON_WORKERS")); err == nil && w > 0 {
		opt.Workers = w
	}
	return opt
}

func runExperimentBench(b *testing.B, id string) {
	b.Helper()
	entry, err := experiment.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	opt := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Each iteration regenerates cold: the in-process run cache would
		// otherwise serve repeated (and cross-benchmark) static runs and
		// silently shift the series.
		experiment.ResetRunCache()
		rep, err := entry.Run(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && os.Getenv("COHMELEON_RENDER") != "" {
			fmt.Println(rep.Render())
		}
	}
}

// BenchmarkTable4 regenerates Table 4 (SoC parameters).
func BenchmarkTable4(b *testing.B) { runExperimentBench(b, "table4") }

// BenchmarkFigure2 regenerates Figure 2 (accelerators in isolation).
func BenchmarkFigure2(b *testing.B) { runExperimentBench(b, "fig2") }

// BenchmarkFigure3 regenerates Figure 3 (parallel accelerators).
func BenchmarkFigure3(b *testing.B) { runExperimentBench(b, "fig3") }

// BenchmarkFigure5 regenerates Figure 5 (phase analysis, 8 policies).
func BenchmarkFigure5(b *testing.B) { runExperimentBench(b, "fig5") }

// BenchmarkFigure6 regenerates Figure 6 (reward-function DSE).
func BenchmarkFigure6(b *testing.B) { runExperimentBench(b, "fig6") }

// BenchmarkFigure7 regenerates Figure 7 (decision breakdown).
func BenchmarkFigure7(b *testing.B) { runExperimentBench(b, "fig7") }

// BenchmarkFigure8 regenerates Figure 8 (training-time study).
func BenchmarkFigure8(b *testing.B) { runExperimentBench(b, "fig8") }

// BenchmarkFigure9 regenerates Figure 9 (cross-SoC comparison).
func BenchmarkFigure9(b *testing.B) { runExperimentBench(b, "fig9") }

// BenchmarkHeadline regenerates the §6 headline aggregates and reports
// the measured speedup and off-chip reduction as benchmark metrics.
func BenchmarkHeadline(b *testing.B) {
	opt := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiment.ResetRunCache()
		h, err := experiment.Headline(opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(h.AvgSpeedup*100, "%speedup")
		b.ReportMetric(h.AvgMemReduction*100, "%offchip-reduction")
		if i == 0 && os.Getenv("COHMELEON_RENDER") != "" {
			fmt.Println(h.Render())
		}
	}
}

// BenchmarkOverhead regenerates the §6 overhead measurement.
func BenchmarkOverhead(b *testing.B) {
	opt := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiment.ResetRunCache()
		r, err := experiment.Overhead(opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Points[0].Fraction*100, "%overhead-16kB")
		if i == 0 && os.Getenv("COHMELEON_RENDER") != "" {
			fmt.Println(r.Render())
		}
	}
}

// BenchmarkAblation runs the design-choice ablations from DESIGN.md.
func BenchmarkAblation(b *testing.B) { runExperimentBench(b, "ablation") }

// BenchmarkSweep runs the randomized scenario grid at a fixed 8
// scenarios (not the profile's default count), so samples stay
// comparable across PRs regardless of profile-default changes; the
// per-scenario cost is what the trend tracks.
func BenchmarkSweep(b *testing.B) {
	entry, err := experiment.Lookup("sweep")
	if err != nil {
		b.Fatal(err)
	}
	opt := benchOptions()
	opt.SweepScenarios = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Each iteration measures a cold regeneration: the run cache is
		// cleared so the series stays comparable across PRs (warm-cache
		// regeneration is BenchmarkSweepCached's series).
		experiment.ResetRunCache()
		if _, err := entry.Run(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweep16 is BenchmarkSweep at 16 scenarios: a second point on
// the scenario-count axis, so the sweep's scaling (not just its
// 8-scenario absolute cost) is tracked across PRs.
func BenchmarkSweep16(b *testing.B) {
	entry, err := experiment.Lookup("sweep")
	if err != nil {
		b.Fatal(err)
	}
	opt := benchOptions()
	opt.SweepScenarios = 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiment.ResetRunCache()
		if _, err := entry.Run(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepScreening is BenchmarkSweep through the analytical cost
// model: the same fixed 8-scenario grid at screening fidelity, with the
// calibration fitted once before the timer (its cycle-accurate runs are
// a fixed cost that amortizes over every screened grid; the run cache is
// deliberately NOT reset per iteration — that would discard the fitted
// model and re-measure calibration, not screening). The ratio to
// BenchmarkSweep is the screening speedup the two-fidelity pipeline
// claims.
func BenchmarkSweepScreening(b *testing.B) {
	entry, err := experiment.Lookup("sweep")
	if err != nil {
		b.Fatal(err)
	}
	opt := benchOptions()
	opt.SweepScenarios = 8
	opt.Fidelity = experiment.FidelityScreening
	experiment.ResetRunCache()
	if _, err := entry.Run(opt); err != nil {
		b.Fatal(err) // fits and memoizes the calibration
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := entry.Run(opt); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := experiment.GetFidelityStats()
	if st.ScreenedCells == 0 || st.EscalatedCells != 0 {
		b.Fatalf("screened %d cells, escalated %d; want >0 and 0", st.ScreenedCells, st.EscalatedCells)
	}
	experiment.ResetRunCache()
}

// BenchmarkSweepCached measures warm-cache artifact regeneration: the
// same fixed 8-scenario sweep as BenchmarkSweep, but every static-policy
// run is served from the content-keyed run cache (one cold run primes it
// before the timer starts). The gap to BenchmarkSweep is the
// duplicate-run elimination the cache buys on repeated regeneration.
func BenchmarkSweepCached(b *testing.B) {
	entry, err := experiment.Lookup("sweep")
	if err != nil {
		b.Fatal(err)
	}
	opt := benchOptions()
	opt.SweepScenarios = 8
	experiment.ResetRunCache()
	if _, err := entry.Run(opt); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := entry.Run(opt); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := experiment.GetRunCacheStats()
	if st.Hits == 0 {
		b.Fatal("warm sweep served no cache hits")
	}
	experiment.ResetRunCache()
}

// BenchmarkLearners runs the (algorithm × schedule) learner grid at a
// fixed 4 scenarios, so samples stay comparable across PRs regardless
// of profile-default changes; the per-stack training cost is what the
// trend tracks.
func BenchmarkLearners(b *testing.B) {
	entry, err := experiment.Lookup("learners")
	if err != nil {
		b.Fatal(err)
	}
	opt := benchOptions()
	opt.LearnerScenarios = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Cold regeneration per iteration, as in BenchmarkSweep.
		experiment.ResetRunCache()
		if _, err := entry.Run(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppRun measures the simulator itself: one full evaluation
// application on SoC0 under the manual policy (≈300 invocations).
func BenchmarkAppRun(b *testing.B) {
	cfg := SoC0(TrafficMixed, 42)
	app, err := GenerateApp(cfg, GenConfig{}, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunApp(cfg, NewManual(), app, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppRunProtocol runs the same evaluation application once
// per registered coherence-protocol stack, so the cost of a
// non-default stack (and any regression on the default one) is
// tracked per protocol.
func BenchmarkAppRunProtocol(b *testing.B) {
	for _, proto := range protocol.Names() {
		b.Run(proto, func(b *testing.B) {
			cfg := SoC0(TrafficMixed, 42)
			cfg.Protocol = proto
			app, err := GenerateApp(cfg, GenConfig{}, 7)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RunApp(cfg, NewManual(), app, 7); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
