package cohmeleon

import (
	"testing"

	"cohmeleon/internal/esp"

	"cohmeleon/internal/workload"
)

// Cross-module integration tests: full applications through the public
// API, checking system-level invariants rather than per-module behaviour.

// runSmall executes a small generated app on SoC1 under a policy.
func runSmall(t *testing.T, pol Policy, seed uint64) *AppResult {
	t.Helper()
	cfg := SoC1(9)
	app, err := GenerateApp(cfg, GenConfig{MinInvocations: 30}, seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunApp(cfg, pol, app, seed)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestInvocationCountsConserved(t *testing.T) {
	cfg := SoC1(9)
	app, err := GenerateApp(cfg, GenConfig{MinInvocations: 30}, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunApp(cfg, NewManual(), app, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.AllInvocations()), app.Invocations(); got != want {
		t.Fatalf("recorded %d invocations, app specifies %d", got, want)
	}
	// Every result belongs to an accelerator of the SoC and used an
	// available mode.
	s, _ := cfg.Build()
	for _, inv := range res.AllInvocations() {
		a, err := s.AccByName(inv.Acc.InstName)
		if err != nil {
			t.Fatalf("result references unknown accelerator: %v", err)
		}
		allowed := false
		for _, m := range a.AvailableModes() {
			if m == inv.Mode {
				allowed = true
			}
		}
		if !allowed {
			t.Fatalf("%s ran in unavailable mode %v", inv.Acc.InstName, inv.Mode)
		}
	}
}

func TestResultMetricsWellFormed(t *testing.T) {
	res := runSmall(t, NewRandom(3), 6)
	for _, inv := range res.AllInvocations() {
		if inv.ExecCycles <= 0 {
			t.Fatal("non-positive exec time")
		}
		if inv.ActiveCycles <= 0 || inv.ActiveCycles > inv.ExecCycles {
			t.Fatalf("active %d outside (0, exec=%d]", inv.ActiveCycles, inv.ExecCycles)
		}
		if inv.CommCycles < 0 || inv.CommCycles > inv.ActiveCycles {
			t.Fatalf("comm %d outside [0, active=%d]", inv.CommCycles, inv.ActiveCycles)
		}
		if inv.OffChipApprox < 0 || inv.OffChipTrue < 0 {
			t.Fatal("negative off-chip count")
		}
		if inv.FootprintBytes <= 0 {
			t.Fatal("non-positive footprint")
		}
	}
}

func TestAttributionAggregatesNearTruth(t *testing.T) {
	// The paper's DDR approximation distributes each controller's counter
	// delta across active accelerators. Summed over all invocations of a
	// run it should be within a factor of the truth: attribution also
	// absorbs CPU-init traffic that overlaps invocations, so it is an
	// overestimate on average, never wildly off.
	res := runSmall(t, NewFixed(NonCohDMA), 7)
	var approx, truth float64
	for _, inv := range res.AllInvocations() {
		approx += inv.OffChipApprox
		truth += float64(inv.OffChipTrue)
	}
	if truth == 0 {
		t.Fatal("non-coh run cannot have zero off-chip truth")
	}
	ratio := approx / truth
	if ratio < 0.5 || ratio > 2.5 {
		t.Fatalf("attribution aggregate ratio %.2f outside [0.5, 2.5]", ratio)
	}
}

func TestPoliciesProduceDifferentDecisions(t *testing.T) {
	nonCoh := runSmall(t, NewFixed(NonCohDMA), 8)
	manual := runSmall(t, NewManual(), 8)
	different := false
	m := manual.AllInvocations()
	for i, inv := range nonCoh.AllInvocations() {
		if i < len(m) && m[i].Mode != inv.Mode {
			different = true
			break
		}
	}
	if !different {
		t.Fatal("manual policy never deviated from non-coh")
	}
}

func TestDeterministicAcrossFullStack(t *testing.T) {
	a := runSmall(t, NewManual(), 11)
	b := runSmall(t, NewManual(), 11)
	if a.Cycles != b.Cycles || a.OffChip != b.OffChip {
		t.Fatalf("full-stack non-determinism: (%d,%d) vs (%d,%d)",
			a.Cycles, a.OffChip, b.Cycles, b.OffChip)
	}
	ia, ib := a.AllInvocations(), b.AllInvocations()
	for i := range ia {
		if ia[i].Mode != ib[i].Mode || ia[i].ExecCycles != ib[i].ExecCycles {
			t.Fatalf("invocation %d diverged", i)
		}
	}
}

func TestAgentTrainingReducesExploration(t *testing.T) {
	cfg := SoC1(9)
	app, err := GenerateApp(cfg, GenConfig{MinInvocations: 30}, 5)
	if err != nil {
		t.Fatal(err)
	}
	agentCfg := DefaultAgentConfig()
	agentCfg.DecayIterations = 3
	agent, err := NewAgent(agentCfg)
	if err != nil {
		t.Fatal(err)
	}
	eps0 := agent.Epsilon()
	if err := Train(cfg, agent, app, 3, 1); err != nil {
		t.Fatal(err)
	}
	if agent.Epsilon() >= eps0 {
		t.Fatalf("ε did not decay: %g -> %g", eps0, agent.Epsilon())
	}
	if agent.Table().TotalVisits() == 0 {
		t.Fatal("training produced no Q-table updates")
	}
}

func TestSoC3CachelessTilesNeverRunFullyCoh(t *testing.T) {
	cfg := SoC3(9)
	app, err := GenerateApp(cfg, GenConfig{MinInvocations: 40}, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunApp(cfg, NewFixed(FullyCoh), app, 5)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := cfg.Build()
	sawClamped := false
	for _, inv := range res.AllInvocations() {
		a, _ := s.AccByName(inv.Acc.InstName)
		if !a.HasPrivateCache() {
			if inv.Mode == FullyCoh {
				t.Fatalf("cacheless %s ran fully coherent", inv.Acc.InstName)
			}
			sawClamped = true
		}
	}
	if !sawClamped {
		t.Skip("generated app never used a cacheless tile")
	}
}

func TestSystemReusableAcrossApps(t *testing.T) {
	// One system (one SoC + one policy instance) running two apps
	// back-to-back keeps hardware state — the LLC stays warm.
	cfg := SoC1(9)
	s, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys := esp.NewSystem(s, NewFixed(CohDMA))
	app, err := GenerateApp(cfg, GenConfig{MinInvocations: 20}, 5)
	if err != nil {
		t.Fatal(err)
	}
	first, err := workload.Run(sys, app, 5)
	if err != nil {
		t.Fatal(err)
	}
	second, err := workload.Run(sys, app, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Allow 1% slack: freed pages return in a different order, so the
	// second run's set-conflict pattern differs slightly.
	if float64(second.OffChip) > float64(first.OffChip)*1.01 {
		t.Errorf("second run missed more (%d) than cold run (%d)", second.OffChip, first.OffChip)
	}
}

func TestAllTable4SoCsRunTheirApps(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every Table-4 SoC; skipped in -short")
	}
	for _, cfg := range Table4Configs(42) {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			app, err := workload.AppFor(cfg, 3)
			if err != nil {
				t.Fatal(err)
			}
			// Trim generated apps for test runtime.
			if len(app.Phases) > 2 {
				app.Phases = app.Phases[:2]
			}
			res, err := RunApp(cfg, NewManual(), app, 3)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cycles <= 0 {
				t.Fatal("empty run")
			}
		})
	}
}

func TestFloorplansRender(t *testing.T) {
	for _, cfg := range Table4Configs(42) {
		s, err := cfg.Build()
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Floorplan()) == 0 {
			t.Fatalf("%s: empty floorplan", cfg.Name)
		}
		if len(s.UtilizationReport()) == 0 {
			t.Fatalf("%s: empty report", cfg.Name)
		}
	}
}
