package cohmeleon

import (
	"strings"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	cfg := SoC6()
	app, err := AppFor(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(DefaultAgentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := Train(cfg, agent, app, 2, 7); err != nil {
		t.Fatal(err)
	}
	if agent.Iteration() != 2 {
		t.Fatalf("Iteration = %d", agent.Iteration())
	}
	agent.Freeze()
	res, err := RunApp(cfg, agent, app, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || len(res.Phases) == 0 {
		t.Fatal("empty result")
	}
	if res.Policy != "cohmeleon" {
		t.Fatalf("policy = %q", res.Policy)
	}
}

func TestFacadePolicyComparison(t *testing.T) {
	cfg := SoC5()
	app, err := AppFor(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	nonCoh, err := RunApp(cfg, NewFixed(NonCohDMA), app, 3)
	if err != nil {
		t.Fatal(err)
	}
	manual, err := RunApp(cfg, NewManual(), app, 3)
	if err != nil {
		t.Fatal(err)
	}
	if manual.OffChip >= nonCoh.OffChip {
		t.Errorf("manual off-chip %d should beat fixed-non-coh %d", manual.OffChip, nonCoh.OffChip)
	}
}

func TestExperimentsRegistryViaFacade(t *testing.T) {
	exps := Experiments()
	if len(exps) != 13 {
		t.Fatalf("%d experiments", len(exps))
	}
	rep, err := RunExperiment("table4", TinyExperimentOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Render(), "SoC3") {
		t.Fatal("table4 render incomplete")
	}
	if _, err := RunExperiment("nope", TinyExperimentOptions()); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestAcceleratorCatalogViaFacade(t *testing.T) {
	names := AcceleratorNames()
	if len(names) != 12 {
		t.Fatalf("%d accelerators", len(names))
	}
	spec, err := AcceleratorByName("fft")
	if err != nil || spec.Name != "fft" {
		t.Fatalf("AcceleratorByName: %v", err)
	}
}

func TestModeConstantsMatch(t *testing.T) {
	if NonCohDMA.String() != "non-coh-dma" || FullyCoh.String() != "full-coh" {
		t.Fatal("re-exported constants broken")
	}
}

// customPolicy demonstrates (and verifies) that external code can
// implement the Policy interface through the facade types alone.
type customPolicy struct{}

func (customPolicy) Name() string { return "custom" }
func (customPolicy) Decide(ctx *DecisionContext) Mode {
	if ctx.FootprintBytes <= ctx.L2Bytes {
		return ctx.Clamp(FullyCoh)
	}
	return NonCohDMA
}
func (customPolicy) Observe(*InvocationResult) {}
func (customPolicy) OverheadCycles() Cycles    { return 50 }

func TestCustomPolicyThroughFacade(t *testing.T) {
	var pol Policy = customPolicy{}
	cfg := SoC6()
	app, err := AppFor(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunApp(cfg, pol, app, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "custom" {
		t.Fatalf("policy = %q", res.Policy)
	}
}
