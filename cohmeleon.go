// Package cohmeleon is a simulation-based reproduction of "Cohmeleon:
// Learning-Based Orchestration of Accelerator Coherence in Heterogeneous
// SoCs" (Zuckerman et al., MICRO 2021).
//
// The package is organized in three layers, all reachable from this
// facade:
//
//   - A transaction-level, deterministic discrete-event simulator of an
//     ESP-style tiled SoC: a 2D-mesh multi-plane NoC, MESI private
//     caches, an inclusive directory-based partitioned LLC, DRAM
//     controllers, and accelerator sockets implementing the paper's four
//     coherence modes (non-coherent DMA, LLC-coherent DMA, coherent DMA,
//     fully-coherent).
//   - The Cohmeleon reinforcement-learning module, built on a pluggable
//     learner engine with three seams: a Featurizer (Table-3 state
//     encoding), an Algorithm (tabular ε-greedy Q-learning by default,
//     with double Q-learning, UCB1 and Boltzmann variants) and a
//     Schedule (linear ε/α decay by default, with exponential and
//     constant variants) — alongside the paper's baselines (Random,
//     four Fixed policies, a profiling-derived Fixed-heterogeneous
//     policy, and the manually-tuned Algorithm 1).
//   - An experiment harness that regenerates every evaluation artifact:
//     Table 4, Figures 2–3 (motivation), Figures 5–9, the headline
//     speedup/off-chip aggregates, the runtime-overhead sweep, and a set
//     of design-choice ablations.
//
// Quick start:
//
//	cfg := cohmeleon.SoC5()                       // Table-4 preset
//	agent, err := cohmeleon.NewAgent(cohmeleon.DefaultAgentConfig())
//	app, err := cohmeleon.AppFor(cfg, 1)          // case-study workload
//	cohmeleon.Train(cfg, agent, app, 10, 7)       // online learning
//	res, err := cohmeleon.RunApp(cfg, agent, app, 3)
//
// All randomness flows from explicit seeds; identical inputs give
// bit-identical results.
package cohmeleon

import (
	"cohmeleon/internal/acc"
	"cohmeleon/internal/core"
	"cohmeleon/internal/esp"
	"cohmeleon/internal/experiment"
	"cohmeleon/internal/learn"
	"cohmeleon/internal/policy"
	"cohmeleon/internal/scenario"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
	"cohmeleon/internal/workload"
)

// Core simulator types.
type (
	// Mode is an accelerator cache-coherence mode.
	Mode = soc.Mode
	// SoCConfig describes one SoC to build (Table 4 presets below).
	SoCConfig = soc.Config
	// SoC is a fully assembled simulated system.
	SoC = soc.SoC
	// AccInstance declares one accelerator to integrate.
	AccInstance = soc.AccInstance
	// AccSpec is an accelerator communication profile.
	AccSpec = acc.Spec
	// TrafficConfig parameterizes the configurable traffic generator.
	TrafficConfig = acc.TrafficConfig
	// Params holds the simulator's timing constants.
	Params = soc.Params
	// Cycles is a duration or instant of simulated time.
	Cycles = sim.Cycles
)

// The four coherence modes, in paper order.
const (
	NonCohDMA = soc.NonCohDMA
	LLCCohDMA = soc.LLCCohDMA
	CohDMA    = soc.CohDMA
	FullyCoh  = soc.FullyCoh
)

// Software-stack and policy types.
type (
	// Policy selects a coherence mode per accelerator invocation.
	Policy = esp.Policy
	// DecisionContext is the sensed snapshot handed to a policy.
	DecisionContext = esp.Context
	// InvocationResult is the evaluation of a completed invocation.
	InvocationResult = esp.Result
	// System binds a simulated SoC to a coherence policy.
	System = esp.System
	// Agent is the Cohmeleon learning policy (a learner-stack
	// composition).
	Agent = core.Cohmeleon
	// AgentConfig parameterizes a Cohmeleon agent, including its
	// learner stack (Learner, Schedule, Featurizer).
	AgentConfig = core.Config
	// RewardWeights are the x, y, z reward coefficients.
	RewardWeights = core.RewardWeights
)

// Pluggable learner-engine types: the three seams an Agent composes.
type (
	// Featurizer maps a sensed context to a discrete learner state.
	Featurizer = learn.Featurizer
	// LearnerAlgorithm owns decide/update over (state, mode) values.
	LearnerAlgorithm = learn.Algorithm
	// LearnerSchedule yields the per-iteration ε/α trajectories.
	LearnerSchedule = learn.Schedule
	// LearnerScheduleParams parameterize schedule construction.
	LearnerScheduleParams = learn.ScheduleParams
	// LearnerState is a portable snapshot of a tabular algorithm.
	LearnerState = learn.TabularState
	// Table3Featurizer is the paper's five-attribute state encoder.
	Table3Featurizer = learn.Encoder
)

// Learner-engine constructors and registries.
var (
	// NewLearnerAlgorithm builds a registered algorithm by name
	// ("q", "double-q", "ucb1", "boltzmann").
	NewLearnerAlgorithm = learn.NewAlgorithm
	// NewLearnerSchedule builds a registered schedule by name
	// ("linear", "exp", "const").
	NewLearnerSchedule = learn.NewSchedule
	// LearnerAlgorithmNames and LearnerScheduleNames list the
	// registries (the CLI's -learner/-schedule domains).
	LearnerAlgorithmNames = learn.AlgorithmNames
	LearnerScheduleNames  = learn.ScheduleNames
	// NewTable3Featurizer returns the paper's full encoder; the ablated
	// variant pins chosen attributes.
	NewTable3Featurizer = learn.NewEncoder
	// SaveLearnerState and LoadLearnerState persist any tabular
	// algorithm's state with the versioned codec (reads PR-3-era
	// Q-table files too).
	SaveLearnerState = learn.SaveStateFile
	LoadLearnerState = learn.LoadStateFile
)

// Workload types.
type (
	// App is a phase/thread/chain evaluation application.
	App = workload.App
	// PhaseSpec is one application phase (threads launched together).
	PhaseSpec = workload.PhaseSpec
	// ThreadSpec is one software thread: a dataset and a chain of
	// accelerator invocations over it.
	ThreadSpec = workload.ThreadSpec
	// AppResult holds one application run's measurements.
	AppResult = workload.AppResult
	// GenConfig controls the random application generator.
	GenConfig = workload.GenConfig
	// SizeClass is the paper's S/M/L/XL workload characterization.
	SizeClass = workload.SizeClass
)

// Traffic-generator access patterns.
const (
	Streaming = acc.Streaming
	Strided   = acc.Strided
	Irregular = acc.Irregular
)

// Scenario-sweep types: randomized SoC topologies and workload mixes
// sampled from a declarative seeded spec, the substrate of the `sweep`
// experiment and the Q-table transfer workflow.
type (
	// RandomSoCSpec bounds the randomized SoC-configuration generator.
	RandomSoCSpec = soc.RandomSpec
	// ScenarioSpec bounds the scenario sampler (SoC + workload draw).
	ScenarioSpec = scenario.Spec
	// Scenario is one sampled (SoC, workload) evaluation point.
	Scenario = scenario.Scenario
	// QTable is the agent's learned state-action value table.
	QTable = core.QTable
)

// Scenario-sweep and Q-table persistence constructors.
var (
	// DefaultRandomSoCSpec spans the design space around Table 4.
	DefaultRandomSoCSpec = soc.DefaultRandomSpec
	// RandomSoC samples one validated SoC configuration from a seed.
	RandomSoC = soc.RandomConfig
	// DefaultScenarioSpec spans the full default scenario space.
	DefaultScenarioSpec = scenario.DefaultSpec
	// SampleScenarios draws a deterministic scenario set from a seed.
	SampleScenarios = scenario.Sample
	// LoadQTable reads a Q-table saved with (*QTable).SaveFile.
	LoadQTable = core.LoadTableFile
	// MergeQTables combines trained tables by visit-weighted averaging.
	MergeQTables = core.MergeTables
)

// Experiment types.
type (
	// Experiment is one reproducible artifact of the paper.
	Experiment = experiment.Entry
	// ExperimentOptions scales the experiment protocol.
	ExperimentOptions = experiment.Options
	// Report is a rendered experiment result.
	Report = experiment.Report
)

// Table-4 SoC presets and the motivation SoCs.
var (
	// SoC1 through SoC6 return the corresponding Table-4 configurations;
	// SoC0 additionally selects the traffic-generator mix.
	SoC0 = soc.SoC0
	SoC1 = soc.SoC1
	SoC2 = soc.SoC2
	SoC3 = soc.SoC3
	SoC4 = soc.SoC4
	SoC5 = soc.SoC5
	SoC6 = soc.SoC6
	// MotivationIsolation and MotivationParallel are the Figures-2/3
	// SoCs.
	MotivationIsolation = soc.MotivationIsolation
	MotivationParallel  = soc.MotivationParallel
	// Table4Configs returns all seven evaluation SoCs.
	Table4Configs = soc.Table4
	// DefaultParams is the timing-parameter set used in every experiment;
	// custom SoCConfigs need it (or a modified copy).
	DefaultParams = soc.DefaultParams
)

// Traffic-generator mixes for SoC0.
const (
	TrafficMixed     = soc.TrafficMixed
	TrafficStreaming = soc.TrafficStreaming
	TrafficIrregular = soc.TrafficIrregular
)

// Workload constructors.
var (
	// GenerateApp builds a seeded random evaluation application.
	GenerateApp = workload.Generate
	// Figure5App builds the four named Figure-5 phases.
	Figure5App = workload.Figure5App
	// AutonomousDrivingApp and ComputerVisionApp are the case studies.
	AutonomousDrivingApp = workload.AutonomousDrivingApp
	ComputerVisionApp    = workload.ComputerVisionApp
	// AppFor picks the evaluation application matched to a SoC.
	AppFor = workload.AppFor
)

// Policy constructors.
var (
	// NewAgent creates a Cohmeleon Q-learning agent.
	NewAgent = core.New
	// DefaultAgentConfig is the paper's training setup.
	DefaultAgentConfig = core.DefaultConfig
	// DefaultRewardWeights is the (67.5, 7.5, 25) reward.
	DefaultRewardWeights = core.DefaultWeights
	// NewFixed, NewRandom, NewManual and NewFixedHeterogeneous build the
	// baseline policies.
	NewFixed              = policy.NewFixed
	NewRandom             = policy.NewRandom
	NewManual             = policy.NewManual
	NewFixedHeterogeneous = policy.NewFixedHeterogeneous
)

// Accelerator catalog access.
var (
	// AcceleratorNames lists the twelve cataloged kernels.
	AcceleratorNames = acc.Names
	// AcceleratorByName returns a cataloged communication profile.
	AcceleratorByName = acc.ByName
)

// RunApp executes an application on a freshly built SoC under the given
// policy and returns per-phase measurements. Policies persist across
// calls (that is how Cohmeleon keeps learning); hardware state does not.
func RunApp(cfg *SoCConfig, pol Policy, app *App, seed uint64) (*AppResult, error) {
	s, err := cfg.Build()
	if err != nil {
		return nil, err
	}
	return workload.Run(esp.NewSystem(s, pol), app, seed)
}

// Train runs the agent through iters online-training iterations of the
// application (a fresh SoC per iteration), advancing its ε/α decay
// after each, exactly as the paper trains on successive runs of an
// application instance.
func Train(cfg *SoCConfig, agent *Agent, app *App, iters int, seed uint64) error {
	agent.Unfreeze()
	for i := 0; i < iters; i++ {
		if _, err := RunApp(cfg, agent, app, seed+uint64(i)); err != nil {
			return err
		}
		agent.EndIteration()
	}
	return nil
}

// Experiments lists every reproducible artifact (tables and figures).
func Experiments() []Experiment { return experiment.List() }

// RunExperiment executes one experiment by ID ("fig2" … "fig9",
// "table4", "headline", "overhead", "ablation").
func RunExperiment(id string, opt ExperimentOptions) (Report, error) {
	e, err := experiment.Lookup(id)
	if err != nil {
		return nil, err
	}
	return e.Run(opt)
}

// DefaultExperimentOptions is the paper-faithful protocol; Quick and
// Tiny trade repetitions for runtime.
var (
	DefaultExperimentOptions = experiment.Default
	QuickExperimentOptions   = experiment.Quick
	TinyExperimentOptions    = experiment.Tiny
)
