// Package cohmeleon is a simulation-based reproduction of "Cohmeleon:
// Learning-Based Orchestration of Accelerator Coherence in Heterogeneous
// SoCs" (Zuckerman et al., MICRO 2021).
//
// The package is organized in three layers, all reachable from this
// facade:
//
//   - A transaction-level, deterministic discrete-event simulator of an
//     ESP-style tiled SoC: a 2D-mesh multi-plane NoC, MESI private
//     caches, an inclusive directory-based partitioned LLC, DRAM
//     controllers, and accelerator sockets implementing the paper's four
//     coherence modes (non-coherent DMA, LLC-coherent DMA, coherent DMA,
//     fully-coherent).
//   - The Cohmeleon reinforcement-learning module: Table-3 state
//     encoding, a 243×4 Q-table, the multi-objective reward built from
//     hardware monitors, and ε-greedy selection with linear decay —
//     alongside the paper's baselines (Random, four Fixed policies, a
//     profiling-derived Fixed-heterogeneous policy, and the
//     manually-tuned Algorithm 1).
//   - An experiment harness that regenerates every evaluation artifact:
//     Table 4, Figures 2–3 (motivation), Figures 5–9, the headline
//     speedup/off-chip aggregates, the runtime-overhead sweep, and a set
//     of design-choice ablations.
//
// Quick start:
//
//	cfg := cohmeleon.SoC5()                       // Table-4 preset
//	agent := cohmeleon.NewAgent(cohmeleon.DefaultAgentConfig())
//	app, err := cohmeleon.AppFor(cfg, 1)          // case-study workload
//	cohmeleon.Train(cfg, agent, app, 10, 7)       // online learning
//	res, err := cohmeleon.RunApp(cfg, agent, app, 3)
//
// All randomness flows from explicit seeds; identical inputs give
// bit-identical results.
package cohmeleon

import (
	"cohmeleon/internal/acc"
	"cohmeleon/internal/core"
	"cohmeleon/internal/esp"
	"cohmeleon/internal/experiment"
	"cohmeleon/internal/policy"
	"cohmeleon/internal/scenario"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
	"cohmeleon/internal/workload"
)

// Core simulator types.
type (
	// Mode is an accelerator cache-coherence mode.
	Mode = soc.Mode
	// SoCConfig describes one SoC to build (Table 4 presets below).
	SoCConfig = soc.Config
	// SoC is a fully assembled simulated system.
	SoC = soc.SoC
	// AccInstance declares one accelerator to integrate.
	AccInstance = soc.AccInstance
	// AccSpec is an accelerator communication profile.
	AccSpec = acc.Spec
	// TrafficConfig parameterizes the configurable traffic generator.
	TrafficConfig = acc.TrafficConfig
	// Params holds the simulator's timing constants.
	Params = soc.Params
	// Cycles is a duration or instant of simulated time.
	Cycles = sim.Cycles
)

// The four coherence modes, in paper order.
const (
	NonCohDMA = soc.NonCohDMA
	LLCCohDMA = soc.LLCCohDMA
	CohDMA    = soc.CohDMA
	FullyCoh  = soc.FullyCoh
)

// Software-stack and policy types.
type (
	// Policy selects a coherence mode per accelerator invocation.
	Policy = esp.Policy
	// DecisionContext is the sensed snapshot handed to a policy.
	DecisionContext = esp.Context
	// InvocationResult is the evaluation of a completed invocation.
	InvocationResult = esp.Result
	// System binds a simulated SoC to a coherence policy.
	System = esp.System
	// Agent is the Cohmeleon Q-learning policy.
	Agent = core.Cohmeleon
	// AgentConfig parameterizes a Cohmeleon agent.
	AgentConfig = core.Config
	// RewardWeights are the x, y, z reward coefficients.
	RewardWeights = core.RewardWeights
)

// Workload types.
type (
	// App is a phase/thread/chain evaluation application.
	App = workload.App
	// PhaseSpec is one application phase (threads launched together).
	PhaseSpec = workload.PhaseSpec
	// ThreadSpec is one software thread: a dataset and a chain of
	// accelerator invocations over it.
	ThreadSpec = workload.ThreadSpec
	// AppResult holds one application run's measurements.
	AppResult = workload.AppResult
	// GenConfig controls the random application generator.
	GenConfig = workload.GenConfig
	// SizeClass is the paper's S/M/L/XL workload characterization.
	SizeClass = workload.SizeClass
)

// Traffic-generator access patterns.
const (
	Streaming = acc.Streaming
	Strided   = acc.Strided
	Irregular = acc.Irregular
)

// Scenario-sweep types: randomized SoC topologies and workload mixes
// sampled from a declarative seeded spec, the substrate of the `sweep`
// experiment and the Q-table transfer workflow.
type (
	// RandomSoCSpec bounds the randomized SoC-configuration generator.
	RandomSoCSpec = soc.RandomSpec
	// ScenarioSpec bounds the scenario sampler (SoC + workload draw).
	ScenarioSpec = scenario.Spec
	// Scenario is one sampled (SoC, workload) evaluation point.
	Scenario = scenario.Scenario
	// QTable is the agent's learned state-action value table.
	QTable = core.QTable
)

// Scenario-sweep and Q-table persistence constructors.
var (
	// DefaultRandomSoCSpec spans the design space around Table 4.
	DefaultRandomSoCSpec = soc.DefaultRandomSpec
	// RandomSoC samples one validated SoC configuration from a seed.
	RandomSoC = soc.RandomConfig
	// DefaultScenarioSpec spans the full default scenario space.
	DefaultScenarioSpec = scenario.DefaultSpec
	// SampleScenarios draws a deterministic scenario set from a seed.
	SampleScenarios = scenario.Sample
	// LoadQTable reads a Q-table saved with (*QTable).SaveFile.
	LoadQTable = core.LoadTableFile
	// MergeQTables combines trained tables by visit-weighted averaging.
	MergeQTables = core.MergeTables
)

// Experiment types.
type (
	// Experiment is one reproducible artifact of the paper.
	Experiment = experiment.Entry
	// ExperimentOptions scales the experiment protocol.
	ExperimentOptions = experiment.Options
	// Report is a rendered experiment result.
	Report = experiment.Report
)

// Table-4 SoC presets and the motivation SoCs.
var (
	// SoC1 through SoC6 return the corresponding Table-4 configurations;
	// SoC0 additionally selects the traffic-generator mix.
	SoC0 = soc.SoC0
	SoC1 = soc.SoC1
	SoC2 = soc.SoC2
	SoC3 = soc.SoC3
	SoC4 = soc.SoC4
	SoC5 = soc.SoC5
	SoC6 = soc.SoC6
	// MotivationIsolation and MotivationParallel are the Figures-2/3
	// SoCs.
	MotivationIsolation = soc.MotivationIsolation
	MotivationParallel  = soc.MotivationParallel
	// Table4Configs returns all seven evaluation SoCs.
	Table4Configs = soc.Table4
	// DefaultParams is the timing-parameter set used in every experiment;
	// custom SoCConfigs need it (or a modified copy).
	DefaultParams = soc.DefaultParams
)

// Traffic-generator mixes for SoC0.
const (
	TrafficMixed     = soc.TrafficMixed
	TrafficStreaming = soc.TrafficStreaming
	TrafficIrregular = soc.TrafficIrregular
)

// Workload constructors.
var (
	// GenerateApp builds a seeded random evaluation application.
	GenerateApp = workload.Generate
	// Figure5App builds the four named Figure-5 phases.
	Figure5App = workload.Figure5App
	// AutonomousDrivingApp and ComputerVisionApp are the case studies.
	AutonomousDrivingApp = workload.AutonomousDrivingApp
	ComputerVisionApp    = workload.ComputerVisionApp
	// AppFor picks the evaluation application matched to a SoC.
	AppFor = workload.AppFor
)

// Policy constructors.
var (
	// NewAgent creates a Cohmeleon Q-learning agent.
	NewAgent = core.New
	// DefaultAgentConfig is the paper's training setup.
	DefaultAgentConfig = core.DefaultConfig
	// DefaultRewardWeights is the (67.5, 7.5, 25) reward.
	DefaultRewardWeights = core.DefaultWeights
	// NewFixed, NewRandom, NewManual and NewFixedHeterogeneous build the
	// baseline policies.
	NewFixed              = policy.NewFixed
	NewRandom             = policy.NewRandom
	NewManual             = policy.NewManual
	NewFixedHeterogeneous = policy.NewFixedHeterogeneous
)

// Accelerator catalog access.
var (
	// AcceleratorNames lists the twelve cataloged kernels.
	AcceleratorNames = acc.Names
	// AcceleratorByName returns a cataloged communication profile.
	AcceleratorByName = acc.ByName
)

// RunApp executes an application on a freshly built SoC under the given
// policy and returns per-phase measurements. Policies persist across
// calls (that is how Cohmeleon keeps learning); hardware state does not.
func RunApp(cfg *SoCConfig, pol Policy, app *App, seed uint64) (*AppResult, error) {
	s, err := cfg.Build()
	if err != nil {
		return nil, err
	}
	return workload.Run(esp.NewSystem(s, pol), app, seed)
}

// Train runs the agent through iters online-training iterations of the
// application (a fresh SoC per iteration), advancing its ε/α decay
// after each, exactly as the paper trains on successive runs of an
// application instance.
func Train(cfg *SoCConfig, agent *Agent, app *App, iters int, seed uint64) error {
	agent.Unfreeze()
	for i := 0; i < iters; i++ {
		if _, err := RunApp(cfg, agent, app, seed+uint64(i)); err != nil {
			return err
		}
		agent.EndIteration()
	}
	return nil
}

// Experiments lists every reproducible artifact (tables and figures).
func Experiments() []Experiment { return experiment.List() }

// RunExperiment executes one experiment by ID ("fig2" … "fig9",
// "table4", "headline", "overhead", "ablation").
func RunExperiment(id string, opt ExperimentOptions) (Report, error) {
	e, err := experiment.Lookup(id)
	if err != nil {
		return nil, err
	}
	return e.Run(opt)
}

// DefaultExperimentOptions is the paper-faithful protocol; Quick and
// Tiny trade repetitions for runtime.
var (
	DefaultExperimentOptions = experiment.Default
	QuickExperimentOptions   = experiment.Quick
	TinyExperimentOptions    = experiment.Tiny
)
