// Custom policy: the Policy interface is the paper's "Decide" hook, and
// anything that implements it can drive coherence selection. This
// example writes a simple footprint heuristic and benchmarks it against
// the built-in policies on SoC4 (one instance of each ESP accelerator).
package main

import (
	"fmt"
	"log"

	"cohmeleon"
)

// footprintHeuristic picks the mode from the dataset size alone: cache
// the small, bypass for the large. It ignores system load, which is
// exactly the information Cohmeleon exploits — run the comparison to
// see what that costs.
type footprintHeuristic struct{}

func (footprintHeuristic) Name() string { return "footprint-only" }

func (footprintHeuristic) Decide(ctx *cohmeleon.DecisionContext) cohmeleon.Mode {
	switch {
	case ctx.FootprintBytes <= ctx.L2Bytes:
		return ctx.Clamp(cohmeleon.FullyCoh)
	case ctx.FootprintBytes <= ctx.TotalLLCBytes:
		return cohmeleon.CohDMA
	default:
		return cohmeleon.NonCohDMA
	}
}

func (footprintHeuristic) Observe(*cohmeleon.InvocationResult) {}

func (footprintHeuristic) OverheadCycles() cohmeleon.Cycles { return 150 }

func main() {
	cfg := cohmeleon.SoC4()
	app, err := cohmeleon.AppFor(cfg, 11)
	if err != nil {
		log.Fatal(err)
	}
	train, err := cohmeleon.AppFor(cfg, 10)
	if err != nil {
		log.Fatal(err)
	}

	agentCfg := cohmeleon.DefaultAgentConfig()
	agentCfg.DecayIterations = 6
	agent, err := cohmeleon.NewAgent(agentCfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := cohmeleon.Train(cfg, agent, train, 6, 1); err != nil {
		log.Fatal(err)
	}
	agent.Freeze()

	fmt.Printf("SoC4 (%d heterogeneous accelerators), app with %d invocations\n\n",
		len(cfg.Accs), app.Invocations())
	fmt.Printf("%-18s %14s %12s\n", "policy", "total cycles", "off-chip")
	for _, pol := range []cohmeleon.Policy{
		footprintHeuristic{},
		cohmeleon.NewManual(),
		agent,
		cohmeleon.NewFixed(cohmeleon.CohDMA),
	} {
		res, err := cohmeleon.RunApp(cfg, pol, app, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %14d %12d\n", res.Policy, res.Cycles, res.OffChip)
	}
}
