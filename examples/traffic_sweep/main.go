// Traffic sweep: the paper's traffic generator characterizes an
// accelerator purely by its communication pattern. This example sweeps
// the generator's parameter space — pattern, burst length, reuse,
// compute intensity — on a one-accelerator SoC and reports which
// coherence mode wins each point, showing how the optimum moves with
// the traffic shape (the core observation motivating Cohmeleon).
package main

import (
	"fmt"
	"log"

	"cohmeleon"
)

func main() {
	type point struct {
		label string
		cfg   cohmeleon.TrafficConfig
		bytes int64
	}
	kib := int64(1024)
	points := []point{
		{"stream burst=64 reuse=1 16kB", stream(64, 1, 0.5), 16 * kib},
		{"stream burst=64 reuse=1 2MB", stream(64, 1, 0.5), 2048 * kib},
		{"stream burst=4  reuse=4 64kB", stream(4, 4, 0.5), 64 * kib},
		{"stream burst=4  reuse=4 2MB", stream(4, 4, 0.5), 2048 * kib},
		{"irregular 25%% 64kB", irregular(0.25), 64 * kib},
		{"irregular 25%% 1MB", irregular(0.25), 1024 * kib},
		{"compute-bound 256kB", computeBound(), 256 * kib},
	}

	fmt.Printf("%-28s %12s %12s %12s %12s %14s\n",
		"traffic", "non-coh", "llc-coh", "coh-dma", "full-coh", "winner")
	for _, pt := range points {
		spec, err := pt.cfg.Spec("tgen")
		if err != nil {
			log.Fatal(err)
		}
		socCfg := &cohmeleon.SoCConfig{
			Name: "sweep", MeshW: 3, MeshH: 3, CPUs: 1, MemTiles: 2,
			LLCSliceKB: 256, L2KB: 32,
			Accs:   []cohmeleon.AccInstance{{InstName: "tgen", Spec: spec, PrivateCache: true}},
			Params: cohmeleon.DefaultParams(),
		}
		cycles := make(map[cohmeleon.Mode]int64)
		var best cohmeleon.Mode
		for _, mode := range []cohmeleon.Mode{
			cohmeleon.NonCohDMA, cohmeleon.LLCCohDMA, cohmeleon.CohDMA, cohmeleon.FullyCoh,
		} {
			res, err := cohmeleon.RunApp(socCfg, cohmeleon.NewFixed(mode), sweepApp(pt.bytes), 1)
			if err != nil {
				log.Fatal(err)
			}
			cycles[mode] = int64(res.Cycles)
			if cycles[mode] < cycles[best] || best == mode {
				best = mode
			}
		}
		fmt.Printf("%-28s %12d %12d %12d %12d %14s\n", pt.label,
			cycles[cohmeleon.NonCohDMA], cycles[cohmeleon.LLCCohDMA],
			cycles[cohmeleon.CohDMA], cycles[cohmeleon.FullyCoh], best)
	}
}

func sweepApp(bytes int64) *cohmeleon.App {
	return &cohmeleon.App{
		Name: "sweep",
		Phases: []cohmeleon.PhaseSpec{{
			Name: "sweep",
			Threads: []cohmeleon.ThreadSpec{{
				Name: "t0", FootprintBytes: bytes, Chain: []string{"tgen"},
				Loops: 2, RewriteFraction: 0.25, ReadbackFraction: 0.25,
			}},
		}},
	}
}

func stream(burst, reuse int, readWrite float64) cohmeleon.TrafficConfig {
	return cohmeleon.TrafficConfig{
		Pattern: cohmeleon.Streaming, BurstLines: burst, ComputePerByte: 0.3,
		ReusePasses: reuse, ReadFraction: readWrite, InPlace: true, PLMBytes: 16 << 10,
	}
}

func irregular(frac float64) cohmeleon.TrafficConfig {
	return cohmeleon.TrafficConfig{
		Pattern: cohmeleon.Irregular, BurstLines: 1, ComputePerByte: 0.2,
		ReusePasses: 2, ReadFraction: 0.9, AccessFraction: frac, PLMBytes: 16 << 10,
	}
}

func computeBound() cohmeleon.TrafficConfig {
	return cohmeleon.TrafficConfig{
		Pattern: cohmeleon.Streaming, BurstLines: 16, ComputePerByte: 4,
		ReusePasses: 1, ReadFraction: 0.9, PLMBytes: 16 << 10,
	}
}
