// Autonomous driving (SoC5 case study): V2V decode pipelines (FFT →
// Viterbi) and CNN inference pipelines (Conv-2D → GEMM) under every
// coherence policy, with per-phase results — the workload the paper's
// §5 motivates for collaborative autonomous vehicles.
package main

import (
	"fmt"
	"log"

	"cohmeleon"
)

func main() {
	cfg := cohmeleon.SoC5()
	train, err := cohmeleon.AutonomousDrivingApp(cfg, 100)
	if err != nil {
		log.Fatal(err)
	}
	test, err := cohmeleon.AutonomousDrivingApp(cfg, 200)
	if err != nil {
		log.Fatal(err)
	}

	agentCfg := cohmeleon.DefaultAgentConfig()
	agentCfg.DecayIterations = 8
	agent, err := cohmeleon.NewAgent(agentCfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := cohmeleon.Train(cfg, agent, train, 8, 1); err != nil {
		log.Fatal(err)
	}
	agent.Freeze()

	policies := []cohmeleon.Policy{
		cohmeleon.NewFixed(cohmeleon.NonCohDMA),
		cohmeleon.NewFixed(cohmeleon.LLCCohDMA),
		cohmeleon.NewFixed(cohmeleon.CohDMA),
		cohmeleon.NewFixed(cohmeleon.FullyCoh),
		cohmeleon.NewRandom(1),
		cohmeleon.NewManual(),
		agent,
	}

	fmt.Printf("SoC5 autonomous-driving case study: %d invocations across %d phases\n\n",
		test.Invocations(), len(test.Phases))
	var phaseNames []string
	for _, ph := range test.Phases {
		phaseNames = append(phaseNames, ph.Name)
	}
	fmt.Printf("%-18s %14s %12s", "policy", "total cycles", "off-chip")
	for _, n := range phaseNames {
		fmt.Printf(" %14s", n)
	}
	fmt.Println()

	for _, pol := range policies {
		res, err := cohmeleon.RunApp(cfg, pol, test, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %14d %12d", res.Policy, res.Cycles, res.OffChip)
		for _, ph := range res.Phases {
			fmt.Printf(" %14d", ph.Cycles)
		}
		fmt.Println()
	}
	fmt.Println("\nphases: v2v-decode = small V2V frames; cnn-inference = camera tensors;")
	fmt.Println("full-stack = both concurrently plus an XL map-fusion job")
}
