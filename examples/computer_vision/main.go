// Computer vision (SoC6 case study): watch the Q-learning agent
// converge. After each online training iteration the frozen model is
// evaluated on a held-out application instance — the protocol behind
// the paper's Figure 8 — and the resulting learning curve is printed.
package main

import (
	"fmt"
	"log"

	"cohmeleon"
)

func main() {
	cfg := cohmeleon.SoC6()
	train, err := cohmeleon.ComputerVisionApp(cfg, 100)
	if err != nil {
		log.Fatal(err)
	}
	test, err := cohmeleon.ComputerVisionApp(cfg, 200)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline for normalization: the fixed non-coherent design-time
	// choice, as in every figure of the paper.
	base, err := cohmeleon.RunApp(cfg, cohmeleon.NewFixed(cohmeleon.NonCohDMA), test, 2)
	if err != nil {
		log.Fatal(err)
	}

	const iterations = 8
	agentCfg := cohmeleon.DefaultAgentConfig()
	agentCfg.DecayIterations = iterations
	agent, err := cohmeleon.NewAgent(agentCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SoC6 computer-vision pipelines: learning curve")
	fmt.Printf("%-10s %12s %12s %8s %8s\n", "iteration", "norm exec", "norm mem", "ε", "α")
	evaluate := func(iter int) {
		agent.Freeze()
		res, err := cohmeleon.RunApp(cfg, agent, test, 2)
		if err != nil {
			log.Fatal(err)
		}
		agent.Unfreeze()
		fmt.Printf("%-10d %12.3f %12.3f %8.3f %8.3f\n", iter,
			float64(res.Cycles)/float64(base.Cycles),
			float64(res.OffChip)/float64(base.OffChip),
			agent.Epsilon(), agent.Alpha())
	}

	evaluate(0) // untrained: equivalent to the Random policy
	for i := 1; i <= iterations; i++ {
		if err := cohmeleon.Train(cfg, agent, train, 1, uint64(i)); err != nil {
			log.Fatal(err)
		}
		evaluate(i)
	}
	fmt.Printf("\nQ-table updates applied: %d\n", agent.Table().TotalVisits())
}
