// Quickstart: build a Table-4 SoC, train a Cohmeleon agent online, and
// compare it against the fixed non-coherent baseline on the same
// application.
package main

import (
	"fmt"
	"log"

	"cohmeleon"
)

func main() {
	// SoC6 is the paper's computer-vision case study: three night-vision
	// → autoencoder → MLP pipelines, one CPU, two memory tiles.
	cfg := cohmeleon.SoC6()

	// The matching evaluation application (phases of camera pipelines).
	train, err := cohmeleon.AppFor(cfg, 100)
	if err != nil {
		log.Fatal(err)
	}
	test, err := cohmeleon.AppFor(cfg, 200) // a different instance for testing
	if err != nil {
		log.Fatal(err)
	}

	// Train a Q-learning agent online for five application iterations.
	agentCfg := cohmeleon.DefaultAgentConfig()
	agentCfg.DecayIterations = 5
	agent, err := cohmeleon.NewAgent(agentCfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := cohmeleon.Train(cfg, agent, train, 5, 1); err != nil {
		log.Fatal(err)
	}
	agent.Freeze() // evaluation mode: no exploration, no updates

	// Compare against the design-time baseline.
	baseline, err := cohmeleon.RunApp(cfg, cohmeleon.NewFixed(cohmeleon.NonCohDMA), test, 2)
	if err != nil {
		log.Fatal(err)
	}
	learned, err := cohmeleon.RunApp(cfg, agent, test, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("SoC: %s, application: %s (%d invocations)\n",
		cfg.Name, test.Name, test.Invocations())
	fmt.Printf("%-22s %15s %15s\n", "policy", "cycles", "off-chip lines")
	fmt.Printf("%-22s %15d %15d\n", baseline.Policy, baseline.Cycles, baseline.OffChip)
	fmt.Printf("%-22s %15d %15d\n", learned.Policy, learned.Cycles, learned.OffChip)
	fmt.Printf("\nspeedup: %.2fx   off-chip reduction: %.1f%%\n",
		float64(baseline.Cycles)/float64(learned.Cycles),
		100*(1-float64(learned.OffChip)/float64(baseline.OffChip)))

	// Where did the agent's decisions land?
	d := agent.Decisions()
	fmt.Printf("\ncoherence decisions: non-coh=%d llc-coh=%d coh-dma=%d full-coh=%d\n",
		d[cohmeleon.NonCohDMA], d[cohmeleon.LLCCohDMA], d[cohmeleon.CohDMA], d[cohmeleon.FullyCoh])
}
