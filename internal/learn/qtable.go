package learn

import (
	"fmt"

	"cohmeleon/internal/soc"
)

// QTable holds the expected reward of taking each coherence mode from
// each state: 243 × 4 = 972 entries, initialized to zero (paper §4.2).
// It is the value store shared by every tabular algorithm in this
// package; UCB1 reuses the visit counters as its play counts.
type QTable struct {
	q      [NumStates][soc.NumModes]float64
	visits [NumStates][soc.NumModes]int64
}

// NewQTable returns a zeroed table.
func NewQTable() *QTable { return &QTable{} }

// Q returns the value of (state, mode).
func (t *QTable) Q(s State, m soc.Mode) float64 { return t.q[s][m] }

// Visits returns how many updates (state, mode) has received.
func (t *QTable) Visits(s State, m soc.Mode) int64 { return t.visits[s][m] }

// Update applies the paper's learning rule:
// Q(s,a) ← (1−α)·Q(s,a) + α·R.
func (t *QTable) Update(s State, m soc.Mode, reward, alpha float64) {
	if alpha < 0 || alpha > 1 {
		panic(fmt.Sprintf("learn: learning rate %g outside [0,1]", alpha))
	}
	t.q[s][m] = (1-alpha)*t.q[s][m] + alpha*reward
	t.visits[s][m]++
}

// UpdateMean applies the incremental running-mean rule used by the
// count-based algorithms: Q(s,a) ← Q(s,a) + (R − Q(s,a))/n.
func (t *QTable) UpdateMean(s State, m soc.Mode, reward float64) {
	t.visits[s][m]++
	t.q[s][m] += (reward - t.q[s][m]) / float64(t.visits[s][m])
}

// Best returns the available mode with the highest Q-value from s; ties
// resolve in mode order, so an untrained table prefers less hardware
// coherence (non-coherent DMA first).
func (t *QTable) Best(s State, available []soc.Mode) soc.Mode {
	if len(available) == 0 {
		panic("learn: Best with no available modes")
	}
	best := available[0]
	for _, m := range available[1:] {
		if t.q[s][m] > t.q[s][best] {
			best = m
		}
	}
	return best
}

// Clone deep-copies the table (for checkpointing across training
// iterations in the Figure-8 experiment).
func (t *QTable) Clone() *QTable {
	c := *t
	return &c
}

// MergeTables combines tables trained on different scenarios into one:
// each (state, mode) cell becomes the visit-weighted mean of the input
// cells, with the visit counts summed. Cells no input ever visited stay
// at zero. The result depends only on the slice order, so a merge over
// per-scenario tables collected by index is identical for any worker
// count. Merging nil or no tables yields a zeroed table.
func MergeTables(tables []*QTable) *QTable {
	m := NewQTable()
	for s := 0; s < NumStates; s++ {
		for mo := 0; mo < int(soc.NumModes); mo++ {
			var weighted float64
			var visits int64
			for _, t := range tables {
				if t == nil {
					continue
				}
				weighted += t.q[s][mo] * float64(t.visits[s][mo])
				visits += t.visits[s][mo]
			}
			if visits > 0 {
				m.q[s][mo] = weighted / float64(visits)
				m.visits[s][mo] = visits
			}
		}
	}
	return m
}

// TotalVisits returns the number of updates across all entries.
func (t *QTable) TotalVisits() int64 {
	var n int64
	for s := range t.visits {
		for m := range t.visits[s] {
			n += t.visits[s][m]
		}
	}
	return n
}
