package learn

import (
	"fmt"

	"cohmeleon/internal/soc"
)

// QTable holds the expected reward of taking each action from each
// state: 243 states × 16 actions (the paper's four coherence modes —
// a prefix, so mode-only training indexes exactly the 243 × 4 cells it
// always did — plus the twelve fine-grain split pairs), initialized to
// zero (paper §4.2). It is the value store shared by every tabular
// algorithm in this package; UCB1 reuses the visit counters as its
// play counts.
type QTable struct {
	q      [NumStates][soc.NumActions]float64
	visits [NumStates][soc.NumActions]int64
}

// NewQTable returns a zeroed table.
func NewQTable() *QTable { return &QTable{} }

// Q returns the value of (state, action).
func (t *QTable) Q(s State, a soc.Action) float64 { return t.q[s][a] }

// Visits returns how many updates (state, action) has received.
func (t *QTable) Visits(s State, a soc.Action) int64 { return t.visits[s][a] }

// Update applies the paper's learning rule:
// Q(s,a) ← (1−α)·Q(s,a) + α·R.
func (t *QTable) Update(s State, a soc.Action, reward, alpha float64) {
	if alpha < 0 || alpha > 1 {
		panic(fmt.Sprintf("learn: learning rate %g outside [0,1]", alpha))
	}
	t.q[s][a] = (1-alpha)*t.q[s][a] + alpha*reward
	t.visits[s][a]++
}

// UpdateMean applies the incremental running-mean rule used by the
// count-based algorithms: Q(s,a) ← Q(s,a) + (R − Q(s,a))/n.
func (t *QTable) UpdateMean(s State, a soc.Action, reward float64) {
	t.visits[s][a]++
	t.q[s][a] += (reward - t.q[s][a]) / float64(t.visits[s][a])
}

// Best returns the available action with the highest Q-value from s;
// ties resolve in offer order, so an untrained table prefers less
// hardware coherence (non-coherent DMA first).
func (t *QTable) Best(s State, available []soc.Action) soc.Action {
	if len(available) == 0 {
		panic("learn: Best with no available actions")
	}
	best := available[0]
	for _, a := range available[1:] {
		if t.q[s][a] > t.q[s][best] {
			best = a
		}
	}
	return best
}

// Clone deep-copies the table (for checkpointing across training
// iterations in the Figure-8 experiment).
func (t *QTable) Clone() *QTable {
	c := *t
	return &c
}

// MergeTables combines tables trained on different scenarios into one:
// each (state, action) cell becomes the visit-weighted mean of the input
// cells, with the visit counts summed. Cells no input ever visited stay
// at zero. The result depends only on the slice order, so a merge over
// per-scenario tables collected by index is identical for any worker
// count. Merging nil or no tables yields a zeroed table.
func MergeTables(tables []*QTable) *QTable {
	m := NewQTable()
	for s := 0; s < NumStates; s++ {
		for mo := 0; mo < int(soc.NumActions); mo++ {
			var weighted float64
			var visits int64
			for _, t := range tables {
				if t == nil {
					continue
				}
				weighted += t.q[s][mo] * float64(t.visits[s][mo])
				visits += t.visits[s][mo]
			}
			if visits > 0 {
				m.q[s][mo] = weighted / float64(visits)
				m.visits[s][mo] = visits
			}
		}
	}
	return m
}

// TotalVisits returns the number of updates across all entries.
func (t *QTable) TotalVisits() int64 {
	var n int64
	for s := range t.visits {
		for m := range t.visits[s] {
			n += t.visits[s][m]
		}
	}
	return n
}
