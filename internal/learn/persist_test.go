package learn

import (
	"bytes"
	"encoding/gob"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
)

func TestQTableRoundTrip(t *testing.T) {
	q := NewQTable()
	q.Update(0, aNonCoh, 0.7, 0.5)
	q.Update(242, aFullCoh, 0.3, 0.25)
	q.Update(100, aCohDMA, 1.0, 1.0)

	var buf bytes.Buffer
	if err := q.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for s := State(0); s < NumStates; s++ {
		for _, m := range soc.UniformActions {
			if got.Q(s, m) != q.Q(s, m) {
				t.Fatalf("Q(%d,%v) = %g, want %g", s, m, got.Q(s, m), q.Q(s, m))
			}
			if got.Visits(s, m) != q.Visits(s, m) {
				t.Fatalf("Visits(%d,%v) mismatch", s, m)
			}
		}
	}
}

func TestQTableFileRoundTrip(t *testing.T) {
	q := NewQTable()
	q.Update(7, aLLCCoh, 0.9, 0.25)
	path := filepath.Join(t.TempDir(), "model.qtable")
	if err := q.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTableFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Q(7, aLLCCoh) != q.Q(7, aLLCCoh) {
		t.Fatal("file round-trip lost data")
	}
}

// TestLoadVersion1File: testdata/qtable_v1.gob was written by the PR-3
// codec (format version 1) with a deterministic fill; the versioned
// decoder must keep reading it byte-for-byte (-qtable-load compat).
func TestLoadVersion1File(t *testing.T) {
	got, err := LoadTableFile(filepath.Join("testdata", "qtable_v1.gob"))
	if err != nil {
		t.Fatalf("loading v1 file: %v", err)
	}
	// Reconstruct the generator's pattern.
	want := NewQTable()
	for s := 0; s < NumStates; s++ {
		for m := 0; m < int(soc.NumModes); m++ {
			if (s+m)%7 == 0 {
				want.Update(State(s), soc.Action(m), float64(s%13)/13, 0.5)
			}
		}
	}
	for s := State(0); s < NumStates; s++ {
		for _, m := range soc.UniformActions {
			if got.Q(s, m) != want.Q(s, m) || got.Visits(s, m) != want.Visits(s, m) {
				t.Fatalf("v1 cell (%d,%v) = (%g,%d), want (%g,%d)", s, m,
					got.Q(s, m), got.Visits(s, m), want.Q(s, m), want.Visits(s, m))
			}
		}
	}
	// The general decoder reads it as the default algorithm's state.
	st, err := LoadStateFile(filepath.Join("testdata", "qtable_v1.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Algo != DefaultAlgorithm || len(st.Tables) != 1 {
		t.Fatalf("v1 state = %q with %d tables", st.Algo, len(st.Tables))
	}
}

func TestStateRoundTripEveryAlgorithm(t *testing.T) {
	for _, name := range AlgorithmNames() {
		a, err := NewAlgorithm(name)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(4)
		for i := 0; i < 60; i++ {
			m := a.Decide(rng, State(i%9), allModes, 0.5)
			a.Update(rng, State(i%9), m, float64(i%5)/5, 0.5)
		}
		path := filepath.Join(t.TempDir(), name+".learner")
		if err := SaveStateFile(path, Snapshot(a)); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		st, err := LoadStateFile(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		b, err := Restore(st)
		if err != nil {
			t.Fatalf("%s: restore: %v", name, err)
		}
		for s := State(0); s < 9; s++ {
			if a.Exploit(s, allModes) != b.Exploit(s, allModes) {
				t.Fatalf("%s: persisted algorithm exploits differently at %d", name, s)
			}
		}
	}
}

func TestMergeStatesKeepsTablesSeparate(t *testing.T) {
	mk := func(seed uint64) *TabularState {
		d := NewDoubleQ()
		rng := sim.NewRNG(seed)
		for i := 0; i < 40; i++ {
			m := d.Decide(rng, State(i%3), allModes, 0.5)
			d.Update(rng, State(i%3), m, float64(i%9)/9, 0.5)
		}
		return Snapshot(d)
	}
	a, b := mk(1), mk(2)
	merged, err := MergeStates([]*TabularState{a, nil, b})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Algo != "double-q" || len(merged.Tables) != 2 {
		t.Fatalf("merged state = %q with %d tables", merged.Algo, len(merged.Tables))
	}
	for ti := range merged.Tables {
		want := MergeTables([]*QTable{a.Tables[ti].Table, b.Tables[ti].Table})
		for s := State(0); s < 3; s++ {
			for _, m := range allModes {
				if merged.Tables[ti].Table.Q(s, m) != want.Q(s, m) {
					t.Fatalf("table %d cell (%d,%v) not a per-table merge", ti, s, m)
				}
			}
		}
	}
	if merged.TotalVisits() != a.TotalVisits()+b.TotalVisits() {
		t.Fatalf("merged visits %d, want %d", merged.TotalVisits(), a.TotalVisits()+b.TotalVisits())
	}
	// A restored merge must be usable as an algorithm again.
	if _, err := Restore(merged); err != nil {
		t.Fatalf("restoring merged state: %v", err)
	}
}

func TestMergeStatesRejectsMismatches(t *testing.T) {
	if _, err := MergeStates(nil); err == nil {
		t.Fatal("empty merge accepted")
	}
	q := Snapshot(NewEpsilonGreedyQ())
	d := Snapshot(NewDoubleQ())
	if _, err := MergeStates([]*TabularState{q, d}); err == nil {
		t.Fatal("cross-algorithm merge accepted")
	}
}

func TestDecodeTableRejectsOtherAlgorithmState(t *testing.T) {
	d := NewDoubleQ()
	rng := sim.NewRNG(2)
	d.Update(rng, 0, aNonCoh, 1, 0.5)
	var buf bytes.Buffer
	if err := EncodeState(&buf, Snapshot(d)); err != nil {
		t.Fatal(err)
	}
	_, err := DecodeTable(&buf)
	if err == nil {
		t.Fatal("double-q state decoded as a single Q-table")
	}
	if !strings.Contains(err.Error(), "double-q") {
		t.Fatalf("error %q does not name the algorithm", err)
	}
}

func TestRestoreRejectsMismatchedTables(t *testing.T) {
	if _, err := Restore(&TabularState{Algo: "nope"}); err == nil {
		t.Fatal("unknown algorithm restored")
	}
	if _, err := Restore(&TabularState{Algo: "double-q",
		Tables: []NamedTable{{Name: "a", Table: NewQTable()}}}); err == nil {
		t.Fatal("double-q restored from one table")
	}
	if _, err := Restore(&TabularState{Algo: "q",
		Tables: []NamedTable{{Name: "wrong", Table: NewQTable()}}}); err == nil {
		t.Fatal("misnamed table restored")
	}
}

func TestDecodeTableRejectsGarbage(t *testing.T) {
	if _, err := DecodeTable(bytes.NewReader([]byte("not a table"))); err == nil {
		t.Fatal("garbage should fail to decode")
	}
}

func TestLoadTableFileMissing(t *testing.T) {
	if _, err := LoadTableFile(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing file should error")
	}
}

// encodeImage gob-encodes a raw stateImage, bypassing EncodeState's
// invariants, to forge corrupt and truncated files.
func encodeImage(t *testing.T, img stateImage) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&img); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// validV1Image returns a well-formed version-1 image to corrupt per
// test case (the PR-3 on-disk layout).
func validV1Image() stateImage {
	img := stateImage{
		Version: formatV1,
		States:  NumStates,
		Modes:   int(soc.NumModes),
		Q:       make([][]float64, NumStates),
		Visits:  make([][]int64, NumStates),
	}
	for s := range img.Q {
		img.Q[s] = make([]float64, soc.NumModes)
		img.Visits[s] = make([]int64, soc.NumModes)
	}
	return img
}

// validV2Image returns a well-formed version-2 image (the PR-4 layout:
// named mode-width tables, no Actions field).
func validV2Image() stateImage {
	v1 := validV1Image()
	return stateImage{
		Version: formatV2,
		States:  NumStates,
		Modes:   int(soc.NumModes),
		Algo:    "q",
		Tables:  []namedImage{{Name: "q", Q: v1.Q, Visits: v1.Visits}},
	}
}

// validV3Image returns a well-formed current-format image: named tables
// with action-width rows.
func validV3Image() stateImage {
	img := stateImage{
		Version: formatVersion,
		States:  NumStates,
		Modes:   int(soc.NumModes),
		Actions: int(soc.NumActions),
		Algo:    "q",
		Tables:  []namedImage{{Name: "q", Q: make([][]float64, NumStates), Visits: make([][]int64, NumStates)}},
	}
	for s := 0; s < NumStates; s++ {
		img.Tables[0].Q[s] = make([]float64, soc.NumActions)
		img.Tables[0].Visits[s] = make([]int64, soc.NumActions)
	}
	return img
}

// corruptImageMatrix is the PR-3 corrupt-file regression matrix,
// extended to the versioned format: files that declare a valid
// geometry but carry short or poisoned payloads must return errors,
// never panic or load silently. The fuzz test seeds from it.
var corruptImageMatrix = []struct {
	name string
	img  func() stateImage
	want string
}{
	// Pre-PR-3 panic: States claims NumStates but Q has fewer rows.
	{"v1-short-Q-rows", func() stateImage { i := validV1Image(); i.Q = i.Q[:3]; return i }, "truncated"},
	{"v1-short-visit-rows", func() stateImage { i := validV1Image(); i.Visits = i.Visits[:1]; return i }, "truncated"},
	{"v1-nil-Q", func() stateImage { i := validV1Image(); i.Q = nil; return i }, "truncated"},
	{"v1-short-row", func() stateImage { i := validV1Image(); i.Q[10] = i.Q[10][:2]; return i }, "truncated"},
	{"v1-nan-cell", func() stateImage { i := validV1Image(); i.Q[5][1] = math.NaN(); return i }, "corrupt"},
	{"v1-inf-cell", func() stateImage { i := validV1Image(); i.Q[0][0] = math.Inf(1); return i }, "corrupt"},
	{"v1-negative-visits", func() stateImage { i := validV1Image(); i.Visits[2][3] = -7; return i }, "corrupt"},
	{"wrong-version", func() stateImage { i := validV1Image(); i.Version = 99; return i }, "version"},
	{"wrong-geometry", func() stateImage { i := validV1Image(); i.States = 7; return i }, "geometry"},
	{"v2-no-algo", func() stateImage { i := validV2Image(); i.Algo = ""; return i }, "truncated"},
	{"v2-no-tables", func() stateImage { i := validV2Image(); i.Tables = nil; return i }, "truncated"},
	{"v2-short-table-rows", func() stateImage { i := validV2Image(); i.Tables[0].Q = i.Tables[0].Q[:5]; return i }, "truncated"},
	{"v2-short-table-row", func() stateImage { i := validV2Image(); i.Tables[0].Visits[9] = i.Tables[0].Visits[9][:1]; return i }, "truncated"},
	{"v2-nan-cell", func() stateImage { i := validV2Image(); i.Tables[0].Q[1][2] = math.NaN(); return i }, "corrupt"},
	{"v2-negative-visits", func() stateImage { i := validV2Image(); i.Tables[0].Visits[0][0] = -1; return i }, "corrupt"},
	// Version 3 declares action-width rows; lying about the width — or
	// shipping mode-width rows under a v3 header — must be caught.
	{"v3-wrong-action-width", func() stateImage { i := validV3Image(); i.Actions = 4; return i }, "action width"},
	{"v3-mode-width-rows", func() stateImage {
		i := validV3Image()
		i.Tables[0].Q[0] = i.Tables[0].Q[0][:soc.NumModes]
		return i
	}, "truncated"},
	{"v3-nan-split-cell", func() stateImage {
		i := validV3Image()
		i.Tables[0].Q[2][int(soc.NumModes)+1] = math.NaN()
		return i
	}, "corrupt"},
}

func TestDecodeStateCorruptMatrix(t *testing.T) {
	for _, tc := range corruptImageMatrix {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeState(bytes.NewReader(encodeImage(t, tc.img())))
			if err == nil {
				t.Fatal("corrupt image decoded without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestDecodeStateTruncatedStream: a file cut off mid-write must error,
// not panic.
func TestDecodeStateTruncatedStream(t *testing.T) {
	q := NewQTable()
	q.Update(1, aCohDMA, 0.5, 0.5)
	var buf bytes.Buffer
	if err := q.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	for _, frac := range []int{2, 4, 10} {
		cut := buf.Len() / frac
		if _, err := DecodeState(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("stream cut to %d/%d bytes decoded without error", cut, buf.Len())
		}
	}
}

// FuzzDecodeState hammers the decoder with arbitrary bytes: whatever
// the input, it must return (state, nil) or (nil, error) — never panic,
// never hand back unvalidated tables. Seeds are a valid v1 file, a
// valid v2 file, and the whole corrupt-file regression matrix.
func FuzzDecodeState(f *testing.F) {
	q := NewQTable()
	q.Update(3, aCohDMA, 0.5, 0.5)
	var v2 bytes.Buffer
	if err := q.Encode(&v2); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	var enc = func(img stateImage) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&img); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(enc(validV1Image()))
	for _, tc := range corruptImageMatrix {
		f.Add(enc(tc.img()))
	}
	f.Add([]byte("not a table"))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeState(bytes.NewReader(data))
		if err != nil {
			return
		}
		if st.Algo == "" || len(st.Tables) == 0 {
			t.Fatalf("decoder returned empty state without error")
		}
		for _, nt := range st.Tables {
			for s := State(0); s < NumStates; s++ {
				for _, m := range soc.UniformActions {
					if v := nt.Table.Q(s, m); math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("decoder passed through poisoned Q[%d][%v]=%g", s, m, v)
					}
					if nt.Table.Visits(s, m) < 0 {
						t.Fatalf("decoder passed through negative visits")
					}
				}
			}
		}
	})
}
