package learn

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"cohmeleon/internal/esp"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
)

// ctxWith builds a minimal context with the given sensed values.
func ctxWith(fullyCoh int, nonCoh, toLLC, tileFoot float64, accFoot int64) *esp.Context {
	return &esp.Context{
		Acc:                &soc.AccTile{ID: 0},
		Available:          soc.AllModes[:],
		FullyCohActive:     fullyCoh,
		NonCohPerTile:      nonCoh,
		ToLLCPerTile:       toLLC,
		TileFootprintBytes: tileFoot,
		FootprintBytes:     accFoot,
		L2Bytes:            32 << 10,
		LLCSliceBytes:      256 << 10,
		TotalLLCBytes:      1 << 20,
	}
}

// The algorithm layer decides over the fine-grain action space; the
// uniform mode actions are its numeric prefix, and these tests exercise
// it through that prefix (exactly the arms the mode-era tests used).
var allModes = soc.UniformActions[:]

const (
	aNonCoh  = soc.Action(soc.NonCohDMA)
	aLLCCoh  = soc.Action(soc.LLCCohDMA)
	aCohDMA  = soc.Action(soc.CohDMA)
	aFullCoh = soc.Action(soc.FullyCoh)
)

func TestStateSpaceSize(t *testing.T) {
	if NumStates != 243 {
		t.Fatalf("NumStates = %d, want 243 (3^5)", NumStates)
	}
	if e := NewEncoder(); e.NumStates() != NumStates {
		t.Fatalf("encoder NumStates = %d", e.NumStates())
	}
}

func TestEncodeExtremes(t *testing.T) {
	e := NewEncoder()
	if s := e.Encode(ctxWith(0, 0, 0, 0, 1)); s != 0 {
		t.Fatalf("all-zero state = %d, want 0", s)
	}
	s := e.Encode(ctxWith(5, 5, 5, 10<<20, 10<<20))
	if s != NumStates-1 {
		t.Fatalf("all-max state = %d, want %d", s, NumStates-1)
	}
	if e.Featurize(ctxWith(5, 5, 5, 10<<20, 10<<20)) != s {
		t.Fatal("Featurize disagrees with Encode")
	}
}

func TestEncodeBuckets(t *testing.T) {
	e := NewEncoder()
	// Footprint buckets at the L2 and LLC-slice thresholds.
	cases := []struct {
		bytes int64
		want  int
	}{
		{16 << 10, 0},  // ≤ L2
		{32 << 10, 0},  // == L2
		{33 << 10, 1},  // ≤ slice
		{256 << 10, 1}, // == slice
		{257 << 10, 2}, // > slice
		{4 << 20, 2},
	}
	for _, c := range cases {
		v := e.Values(ctxWith(0, 0, 0, 0, c.bytes))
		if v[AttrAccFootprint] != c.want {
			t.Errorf("footprint %d bucketed to %d, want %d", c.bytes, v[AttrAccFootprint], c.want)
		}
	}
	// Count buckets round and saturate.
	v := e.Values(ctxWith(0, 0.4, 1.5, 0, 1))
	if v[AttrNonCohPerTile] != 0 || v[AttrToLLCPerTile] != 2 {
		t.Errorf("count buckets: %v", v)
	}
	v = e.Values(ctxWith(7, 0, 0, 0, 1))
	if v[AttrFullyCohAcc] != 2 {
		t.Errorf("fully-coh bucket = %d, want 2 (saturated)", v[AttrFullyCohAcc])
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(raw uint32) bool {
		s := State(raw % NumStates)
		v := Decode(s)
		idx := 0
		for a := Attribute(0); a < NumAttributes; a++ {
			if v[a] < 0 || v[a] >= 3 {
				return false
			}
			idx = idx*3 + v[a]
		}
		return State(idx) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAblatedEncoderPinsAttribute(t *testing.T) {
	e := NewAblatedEncoder(AttrFullyCohAcc)
	a := e.Encode(ctxWith(0, 1, 1, 0, 1))
	b := e.Encode(ctxWith(2, 1, 1, 0, 1))
	if a != b {
		t.Fatal("ablated attribute still distinguishes states")
	}
	full := NewEncoder()
	if full.Encode(ctxWith(0, 1, 1, 0, 1)) == full.Encode(ctxWith(2, 1, 1, 0, 1)) {
		t.Fatal("full encoder should distinguish")
	}
	if e.Name() != "table3-drop-fully-coh-acc" {
		t.Fatalf("ablated encoder name = %q", e.Name())
	}
	if full.Name() != "table3" {
		t.Fatalf("full encoder name = %q", full.Name())
	}
}

func TestAttributeNames(t *testing.T) {
	want := []string{"fully-coh-acc", "non-coh-acc-per-tile", "to-llc-per-tile", "tile-footprint", "acc-footprint"}
	for a := Attribute(0); a < NumAttributes; a++ {
		if a.String() != want[a] {
			t.Errorf("attr %d = %q", a, a.String())
		}
	}
}

func TestQTableUpdateRule(t *testing.T) {
	q := NewQTable()
	q.Update(5, aCohDMA, 1.0, 0.25)
	if got := q.Q(5, aCohDMA); got != 0.25 {
		t.Fatalf("Q = %g, want 0.25 ((1-α)·0 + α·1)", got)
	}
	q.Update(5, aCohDMA, 1.0, 0.25)
	if got := q.Q(5, aCohDMA); math.Abs(got-0.4375) > 1e-12 {
		t.Fatalf("Q = %g, want 0.4375", got)
	}
	if q.Visits(5, aCohDMA) != 2 {
		t.Fatalf("visits = %d", q.Visits(5, aCohDMA))
	}
	if q.TotalVisits() != 2 {
		t.Fatalf("total visits = %d", q.TotalVisits())
	}
}

func TestQTableUpdateMeanIsRunningMean(t *testing.T) {
	q := NewQTable()
	for i, r := range []float64{1, 0, 0.5, 0.5} {
		q.UpdateMean(2, aLLCCoh, r)
		if got := q.Visits(2, aLLCCoh); got != int64(i+1) {
			t.Fatalf("visits = %d after %d updates", got, i+1)
		}
	}
	if got := q.Q(2, aLLCCoh); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("mean = %g, want 0.5", got)
	}
}

func TestQTableBestRespectsAvailability(t *testing.T) {
	q := NewQTable()
	q.Update(0, aFullCoh, 1, 1)
	if got := q.Best(0, allModes); got != aFullCoh {
		t.Fatalf("Best = %v", got)
	}
	noFC := []soc.Action{aNonCoh, aLLCCoh, aCohDMA}
	if got := q.Best(0, noFC); got == aFullCoh {
		t.Fatal("Best returned unavailable mode")
	}
}

func TestQTableBestTieBreaksInModeOrder(t *testing.T) {
	q := NewQTable()
	if got := q.Best(7, allModes); got != aNonCoh {
		t.Fatalf("untrained Best = %v, want NonCohDMA (first)", got)
	}
}

func TestQTableClone(t *testing.T) {
	q := NewQTable()
	q.Update(1, aCohDMA, 1, 0.5)
	c := q.Clone()
	q.Update(1, aCohDMA, 0, 1)
	if c.Q(1, aCohDMA) != 0.5 {
		t.Fatal("clone aliases original")
	}
}

// Property: Q-values stay within [min(0,R..), max(0,R..)] for rewards in
// [0,1] — the exponential moving average never escapes the reward range.
func TestQValueBoundedProperty(t *testing.T) {
	f := func(rewards []uint8) bool {
		q := NewQTable()
		for _, r := range rewards {
			q.Update(3, aLLCCoh, float64(r%101)/100, 0.25)
			v := q.Q(3, aLLCCoh)
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeTables(t *testing.T) {
	a, b := NewQTable(), NewQTable()
	a.Update(0, aNonCoh, 1.0, 1.0) // Q=1, visits=1
	b.Update(0, aNonCoh, 0.0, 1.0) // Q=0, visits=1
	b.Update(0, aNonCoh, 0.0, 1.0) // Q=0, visits=2
	b.Update(5, aFullCoh, 0.5, 1.0)

	m := MergeTables([]*QTable{a, b, nil})
	if got := m.Q(0, aNonCoh); got != 1.0/3 {
		t.Fatalf("merged Q = %g, want 1/3 (visit-weighted)", got)
	}
	if got := m.Visits(0, aNonCoh); got != 3 {
		t.Fatalf("merged visits = %d, want 3", got)
	}
	if got := m.Q(5, aFullCoh); got != 0.5 {
		t.Fatalf("single-source cell = %g, want 0.5", got)
	}
	if m.Q(100, aCohDMA) != 0 || m.Visits(100, aCohDMA) != 0 {
		t.Fatal("unvisited cell should stay zero")
	}
	empty := MergeTables(nil)
	if empty.TotalVisits() != 0 {
		t.Fatal("empty merge should be a zeroed table")
	}
}

func TestRegistriesRejectUnknownNamesListingValid(t *testing.T) {
	if _, err := NewAlgorithm("sarsa"); err == nil {
		t.Fatal("unknown algorithm accepted")
	} else {
		for _, name := range AlgorithmNames() {
			if !strings.Contains(err.Error(), name) {
				t.Fatalf("algorithm error %q does not list %q", err, name)
			}
		}
	}
	if _, err := NewSchedule("cosine", ScheduleParams{Epsilon0: 0.5, Alpha0: 0.25, DecayIterations: 10}); err == nil {
		t.Fatal("unknown schedule accepted")
	} else {
		for _, name := range ScheduleNames() {
			if !strings.Contains(err.Error(), name) {
				t.Fatalf("schedule error %q does not list %q", err, name)
			}
		}
	}
	// Empty names resolve to the defaults.
	a, err := NewAlgorithm("")
	if err != nil || a.Name() != DefaultAlgorithm {
		t.Fatalf("empty algorithm name: %v, %v", a, err)
	}
	s, err := NewSchedule("", ScheduleParams{Epsilon0: 0.5, Alpha0: 0.25, DecayIterations: 10})
	if err != nil || s.Name() != DefaultSchedule {
		t.Fatalf("empty schedule name: %v, %v", s, err)
	}
}

func TestEveryAlgorithmRespectsAvailabilityAndDeterminism(t *testing.T) {
	avail := []soc.Action{aNonCoh, aCohDMA}
	for _, name := range AlgorithmNames() {
		run := func(seed uint64) []soc.Action {
			a, err := NewAlgorithm(name)
			if err != nil {
				t.Fatal(err)
			}
			rng := sim.NewRNG(seed)
			var out []soc.Action
			for i := 0; i < 100; i++ {
				m := a.Decide(rng, State(i%NumStates), avail, 0.8)
				out = append(out, m)
				if m != aNonCoh && m != aCohDMA {
					t.Fatalf("%s chose unavailable mode %v", name, m)
				}
				a.Update(rng, State(i%NumStates), m, float64(i%11)/11, 0.25)
				if e := a.Exploit(State(i%NumStates), avail); e != aNonCoh && e != aCohDMA {
					t.Fatalf("%s exploited unavailable mode %v", name, e)
				}
			}
			return out
		}
		a, b := run(5), run(5)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed diverged at %d", name, i)
			}
		}
	}
}

func TestDoubleQSplitsUpdatesAcrossTables(t *testing.T) {
	d := NewDoubleQ()
	rng := sim.NewRNG(3)
	for i := 0; i < 200; i++ {
		d.Update(rng, 7, aCohDMA, 1, 0.5)
	}
	tabs := d.Tables()
	va, vb := tabs[0].Table.Visits(7, aCohDMA), tabs[1].Table.Visits(7, aCohDMA)
	if va+vb != 200 {
		t.Fatalf("updates lost: %d + %d != 200", va, vb)
	}
	if va == 0 || vb == 0 {
		t.Fatalf("coin flip never hit one table: %d / %d", va, vb)
	}
	// Exploit maximizes the summed tables.
	d2 := NewDoubleQ()
	d2.Tables()[0].Table.Update(1, aLLCCoh, 0.6, 1)
	d2.Tables()[1].Table.Update(1, aFullCoh, 0.4, 1)
	if got := d2.Exploit(1, allModes); got != aLLCCoh {
		t.Fatalf("Exploit = %v, want LLCCohDMA (0.6 > 0.4)", got)
	}
}

func TestUCB1TriesEveryArmOnceThenUsesBounds(t *testing.T) {
	u := NewUCB1()
	rng := sim.NewRNG(1)
	seen := map[soc.Action]bool{}
	for i := 0; i < len(allModes); i++ {
		m := u.Decide(rng, 0, allModes, 0)
		if seen[m] {
			t.Fatalf("arm %v tried twice before all arms played", m)
		}
		seen[m] = true
		// A mediocre reward everywhere except CohDMA, which is best.
		r := 0.2
		if m == aCohDMA {
			r = 0.9
		}
		u.Update(rng, 0, m, r, 0)
	}
	// With all arms played once, the best mean dominates quickly.
	counts := map[soc.Action]int{}
	for i := 0; i < 40; i++ {
		m := u.Decide(rng, 0, allModes, 0)
		counts[m]++
		r := 0.2
		if m == aCohDMA {
			r = 0.9
		}
		u.Update(rng, 0, m, r, 0)
	}
	if counts[aCohDMA] < 20 {
		t.Fatalf("UCB1 played the best arm only %d/40 times: %v", counts[aCohDMA], counts)
	}
	if u.Exploit(0, allModes) != aCohDMA {
		t.Fatal("Exploit ignores the best mean")
	}
}

func TestBoltzmannTemperatureSweep(t *testing.T) {
	b := NewBoltzmann()
	b.Tables()[0].Table.Update(0, aFullCoh, 1, 1) // clearly best
	rng := sim.NewRNG(11)

	// Zero temperature: pure greedy, no RNG consumed... but Decide with
	// tau=0 must still be deterministic and greedy.
	for i := 0; i < 10; i++ {
		if got := b.Decide(rng, 0, allModes, 0); got != aFullCoh {
			t.Fatalf("cold Boltzmann chose %v", got)
		}
	}
	// High temperature: near-uniform — every mode appears.
	counts := map[soc.Action]int{}
	for i := 0; i < 400; i++ {
		counts[b.Decide(rng, 0, allModes, 100)]++
	}
	for _, m := range allModes {
		if counts[m] == 0 {
			t.Fatalf("hot Boltzmann never chose %v: %v", m, counts)
		}
	}
	// Low (but nonzero) temperature: strong preference for the best.
	counts = map[soc.Action]int{}
	for i := 0; i < 400; i++ {
		counts[b.Decide(rng, 0, allModes, 0.05)]++
	}
	if counts[aFullCoh] < 380 {
		t.Fatalf("cool Boltzmann picked best only %d/400: %v", counts[aFullCoh], counts)
	}
}

func TestSchedulesTrajectories(t *testing.T) {
	p := ScheduleParams{Epsilon0: 0.5, Alpha0: 0.25, DecayIterations: 10}

	lin := NewLinear(p)
	if lin.Epsilon(0) != 0.5 || lin.Alpha(0) != 0.25 {
		t.Fatalf("linear start ε=%g α=%g", lin.Epsilon(0), lin.Alpha(0))
	}
	if math.Abs(lin.Epsilon(5)-0.25) > 1e-12 || lin.Epsilon(10) != 0 || lin.Epsilon(15) != 0 {
		t.Fatalf("linear trajectory: %g %g %g", lin.Epsilon(5), lin.Epsilon(10), lin.Epsilon(15))
	}

	exp := NewExponential(p)
	if exp.Epsilon(0) != 0.5 {
		t.Fatalf("exp start ε=%g", exp.Epsilon(0))
	}
	if math.Abs(exp.Epsilon(10)-0.5*expFloor) > 1e-12 {
		t.Fatalf("exp at horizon = %g, want %g", exp.Epsilon(10), 0.5*expFloor)
	}
	for i := 1; i <= 20; i++ {
		if exp.Epsilon(i) >= exp.Epsilon(i-1) || exp.Epsilon(i) <= 0 {
			t.Fatalf("exp not strictly decreasing and positive at %d", i)
		}
	}

	cst := NewConstant(p)
	if cst.Epsilon(0) != 0.5 || cst.Epsilon(1000) != 0.5 || cst.Alpha(1000) != 0.25 {
		t.Fatal("constant schedule drifted")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for _, name := range AlgorithmNames() {
		a, err := NewAlgorithm(name)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(9)
		for i := 0; i < 50; i++ {
			m := a.Decide(rng, State(i%5), allModes, 0.5)
			a.Update(rng, State(i%5), m, float64(i%7)/7, 0.25)
		}
		st := Snapshot(a)
		if st.Algo != name {
			t.Fatalf("snapshot algo = %q", st.Algo)
		}
		b, err := Restore(st)
		if err != nil {
			t.Fatalf("%s: Restore: %v", name, err)
		}
		for s := State(0); s < 5; s++ {
			if a.Exploit(s, allModes) != b.Exploit(s, allModes) {
				t.Fatalf("%s: restored algorithm exploits differently at state %d", name, s)
			}
		}
		// Snapshot is a deep copy: mutating it must not touch the source.
		st.Tables[0].Table.Update(0, aNonCoh, 1, 1)
		st2 := Snapshot(a)
		if st2.Tables[0].Table.Visits(0, aNonCoh) != a.Tables()[0].Table.Visits(0, aNonCoh) {
			t.Fatalf("%s: snapshot aliases live table", name)
		}
	}
}
