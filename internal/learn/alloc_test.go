//go:build !race

package learn

// Zero-allocation guards for the learner hot path, the PR-2 kernel
// discipline applied to the decide/update cycle: every accelerator
// invocation crosses it, so a stray allocation here taxes the whole
// simulator. The race detector's shadow allocations would trip the
// guards, so they run only in non-race builds (CI runs them as a
// dedicated step).

import (
	"testing"

	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
)

// The default algorithm's steady-state decide+update must not
// allocate: table lookups index fixed arrays and the ε-greedy branch
// draws from a value-type RNG.
func TestZeroAllocDefaultDecideUpdate(t *testing.T) {
	a := NewEpsilonGreedyQ()
	rng := sim.NewRNG(3)
	got := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			s := State(i % NumStates)
			m := a.Decide(rng, s, soc.UniformActions[:], 0.4)
			a.Update(rng, s, m, 0.5, 0.25)
		}
	})
	if got != 0 {
		t.Fatalf("default decide/update allocates %.1f per 32-decision batch, want 0", got)
	}
}

// Featurizing a context is pure arithmetic over the sensed fields.
func TestZeroAllocFeaturize(t *testing.T) {
	e := NewEncoder()
	ctx := ctxWith(1, 1, 0.5, 64<<10, 128<<10)
	got := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			_ = e.Featurize(ctx)
		}
	})
	if got != 0 {
		t.Fatalf("featurize allocates %.1f per 32-context batch, want 0", got)
	}
}
