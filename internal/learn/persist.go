package learn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"

	"cohmeleon/internal/soc"
)

// Learner-state persistence. A deployment trains once and then ships
// the learned tables (or keeps refining them across reboots); these
// helpers serialize any tabular algorithm's state with integrity checks
// so state trained for one mode/state geometry — or one algorithm — is
// never loaded into another.
//
// Format history:
//
//	version 1 (PR 3): a single Q-table (the ε-greedy Q-learner's).
//	version 2 (PR 4): an algorithm name plus its named value tables
//	                  (double-q carries two), so any tabular learner
//	                  round-trips. Version-1 files still load, as the
//	                  "q" algorithm's single table.
//	version 3 (PR 8): table rows widen from the four coherence modes
//	                  to the sixteen fine-grain actions. Version-1 and
//	                  -2 files still load: the uniform mode actions are
//	                  a numeric prefix of the action space, so mode-era
//	                  rows fill the first four columns and the split
//	                  columns start untrained (zero, like any unvisited
//	                  cell).
type stateImage struct {
	Version int
	States  int
	Modes   int
	// Actions is the row width from version 3 on (versions 1 and 2
	// carried Modes-wide rows).
	Actions int
	// Version-1 payload: the single table.
	Q      [][]float64
	Visits [][]int64
	// Version-2 payload.
	Algo   string
	Tables []namedImage
}

// namedImage is one serialized value table.
type namedImage struct {
	Name   string
	Q      [][]float64
	Visits [][]int64
}

const (
	formatV1      = 1
	formatV2      = 2
	formatVersion = 3
)

// TabularState is the portable snapshot of a tabular algorithm: its
// registry name and deep copies of its value tables, primary first.
type TabularState struct {
	Algo   string
	Tables []NamedTable
}

// Snapshot captures an algorithm's current state.
func Snapshot(a Algorithm) *TabularState {
	st := &TabularState{Algo: a.Name()}
	for _, nt := range a.Tables() {
		st.Tables = append(st.Tables, NamedTable{Name: nt.Name, Table: nt.Table.Clone()})
	}
	return st
}

// TotalVisits sums the update counts across all of the state's tables.
func (st *TabularState) TotalVisits() int64 {
	var n int64
	for _, nt := range st.Tables {
		n += nt.Table.TotalVisits()
	}
	return n
}

// MergeStates combines snapshots of the same algorithm trained on
// different scenarios: each named table is merged visit-weighted
// across the inputs (MergeTables), so a double-q merge keeps its two
// tables separate. All inputs must share the algorithm name and table
// layout; nil entries are skipped. The result depends only on slice
// order, like MergeTables.
func MergeStates(states []*TabularState) (*TabularState, error) {
	var ref *TabularState
	for _, st := range states {
		if st != nil {
			ref = st
			break
		}
	}
	if ref == nil {
		return nil, fmt.Errorf("learn: merging no learner states")
	}
	out := &TabularState{Algo: ref.Algo}
	for ti, nt := range ref.Tables {
		per := make([]*QTable, 0, len(states))
		for _, st := range states {
			if st == nil {
				continue
			}
			if st.Algo != ref.Algo || len(st.Tables) != len(ref.Tables) || st.Tables[ti].Name != nt.Name {
				return nil, fmt.Errorf("learn: merging mismatched learner states (%s vs %s)", st.Algo, ref.Algo)
			}
			per = append(per, st.Tables[ti].Table)
		}
		out.Tables = append(out.Tables, NamedTable{Name: nt.Name, Table: MergeTables(per)})
	}
	return out, nil
}

// tableToImage serializes one table.
func tableToImage(name string, t *QTable) namedImage {
	img := namedImage{
		Name:   name,
		Q:      make([][]float64, NumStates),
		Visits: make([][]int64, NumStates),
	}
	for s := 0; s < NumStates; s++ {
		img.Q[s] = append([]float64(nil), t.q[s][:]...)
		img.Visits[s] = append([]int64(nil), t.visits[s][:]...)
	}
	return img
}

// tableFromImage validates and deserializes one table whose rows are
// width cells wide (NumModes for version-1/2 files, NumActions from
// version 3); narrower-era rows fill the prefix of each row, leaving
// the split-action columns untrained. The declared geometry is only a
// claim the encoder made about itself: a truncated or corrupted file
// can declare the right States/Modes yet carry short (or missing)
// slices, so the actual slice lengths are validated before any
// indexing, and every cell is checked for values no training run can
// produce (NaN/Inf rewards, negative visit counts).
func tableFromImage(label string, q [][]float64, visits [][]int64, width int) (*QTable, error) {
	if len(q) != NumStates || len(visits) != NumStates {
		return nil, fmt.Errorf("learn: truncated %s: %d Q rows and %d visit rows, want %d",
			label, len(q), len(visits), NumStates)
	}
	t := NewQTable()
	for s := 0; s < NumStates; s++ {
		if len(q[s]) != width || len(visits[s]) != width {
			return nil, fmt.Errorf("learn: truncated %s row %d", label, s)
		}
		for m, v := range q[s] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("learn: corrupt %s: Q[%d][%d] = %g", label, s, m, v)
			}
		}
		for m, v := range visits[s] {
			if v < 0 {
				return nil, fmt.Errorf("learn: corrupt %s: visits[%d][%d] = %d", label, s, m, v)
			}
		}
		copy(t.q[s][:], q[s])
		copy(t.visits[s][:], visits[s])
	}
	return t, nil
}

// EncodeState serializes a learner snapshot in the current format.
func EncodeState(w io.Writer, st *TabularState) error {
	if st.Algo == "" || len(st.Tables) == 0 {
		return fmt.Errorf("learn: encoding empty learner state")
	}
	img := stateImage{
		Version: formatVersion,
		States:  NumStates,
		Modes:   int(soc.NumModes),
		Actions: int(soc.NumActions),
		Algo:    st.Algo,
	}
	for _, nt := range st.Tables {
		img.Tables = append(img.Tables, tableToImage(nt.Name, nt.Table))
	}
	if err := gob.NewEncoder(w).Encode(&img); err != nil {
		return fmt.Errorf("learn: encoding learner state: %w", err)
	}
	return nil
}

// DecodeState deserializes a learner snapshot written by EncodeState,
// or a version-1 Q-table file (returned as algorithm "q").
func DecodeState(r io.Reader) (*TabularState, error) {
	var img stateImage
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("learn: decoding learner state: %w", err)
	}
	if img.Version != formatV1 && img.Version != formatV2 && img.Version != formatVersion {
		return nil, fmt.Errorf("learn: learner-state version %d, want %d (or legacy %d/%d)",
			img.Version, formatVersion, formatV1, formatV2)
	}
	if img.States != NumStates || img.Modes != int(soc.NumModes) {
		return nil, fmt.Errorf("learn: learner-state geometry %dx%d, want %dx%d",
			img.States, img.Modes, NumStates, soc.NumModes)
	}
	width := int(soc.NumModes) // mode-era rows fill the action prefix
	if img.Version == formatVersion {
		if img.Actions != int(soc.NumActions) {
			return nil, fmt.Errorf("learn: learner-state action width %d, want %d",
				img.Actions, soc.NumActions)
		}
		width = int(soc.NumActions)
	}
	if img.Version == formatV1 {
		t, err := tableFromImage("Q-table", img.Q, img.Visits, width)
		if err != nil {
			return nil, err
		}
		return &TabularState{Algo: DefaultAlgorithm, Tables: []NamedTable{{Name: "q", Table: t}}}, nil
	}
	if img.Algo == "" || len(img.Tables) == 0 {
		return nil, fmt.Errorf("learn: truncated learner state: no algorithm or tables")
	}
	st := &TabularState{Algo: img.Algo}
	for _, ti := range img.Tables {
		t, err := tableFromImage(fmt.Sprintf("table %q", ti.Name), ti.Q, ti.Visits, width)
		if err != nil {
			return nil, err
		}
		st.Tables = append(st.Tables, NamedTable{Name: ti.Name, Table: t})
	}
	return st, nil
}

// Restore builds a fresh algorithm from a snapshot: the named tables
// must match what the algorithm exposes (same count, same names).
func Restore(st *TabularState) (Algorithm, error) {
	a, err := NewAlgorithm(st.Algo)
	if err != nil {
		return nil, err
	}
	live := a.Tables()
	if len(live) != len(st.Tables) {
		return nil, fmt.Errorf("learn: %s state carries %d tables, algorithm has %d",
			st.Algo, len(st.Tables), len(live))
	}
	for i, nt := range st.Tables {
		if nt.Name != live[i].Name {
			return nil, fmt.Errorf("learn: %s state table %d named %q, want %q",
				st.Algo, i, nt.Name, live[i].Name)
		}
		*live[i].Table = *nt.Table
	}
	return a, nil
}

// SaveStateFile writes a learner snapshot to a file.
func SaveStateFile(path string, st *TabularState) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return EncodeState(f, st)
}

// LoadStateFile reads a learner snapshot from a file (either format
// version).
func LoadStateFile(path string) (*TabularState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeState(f)
}

// Encode serializes the table as the default algorithm's state (the
// single-table convenience used by the Q-table transfer workflow).
func (t *QTable) Encode(w io.Writer) error {
	return EncodeState(w, &TabularState{
		Algo:   DefaultAlgorithm,
		Tables: []NamedTable{{Name: "q", Table: t}},
	})
}

// DecodeTable deserializes a single Q-table written by Encode or by the
// version-1 format. Files holding another algorithm's state are
// rejected with an error naming it — use DecodeState for those.
func DecodeTable(r io.Reader) (*QTable, error) {
	st, err := DecodeState(r)
	if err != nil {
		return nil, err
	}
	if st.Algo != DefaultAlgorithm || len(st.Tables) != 1 {
		return nil, fmt.Errorf("learn: file holds %q learner state (%d tables), not a single Q-table",
			st.Algo, len(st.Tables))
	}
	return st.Tables[0].Table, nil
}

// SaveFile writes the table to a file.
func (t *QTable) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.Encode(f)
}

// LoadTableFile reads a table from a file.
func LoadTableFile(path string) (*QTable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeTable(f)
}
