package learn

import (
	"math"

	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
)

// EpsilonGreedyQ is the paper's algorithm: tabular Q-learning with
// ε-greedy selection and the exponential-moving-average update rule.
// Its RNG draw order — one Float64 per training decision, one Intn per
// exploration — is pinned by the golden regression tests: under the
// default stack the composed agent must stay byte-identical to the
// pre-refactor implementation.
type EpsilonGreedyQ struct {
	table *QTable
}

// NewEpsilonGreedyQ returns an untrained tabular Q-learner.
func NewEpsilonGreedyQ() *EpsilonGreedyQ { return &EpsilonGreedyQ{table: NewQTable()} }

// Name implements Algorithm.
func (a *EpsilonGreedyQ) Name() string { return "q" }

// Decide implements Algorithm: ε-greedy selection over the Q-table.
func (a *EpsilonGreedyQ) Decide(rng *sim.RNG, s State, available []soc.Action, epsilon float64) soc.Action {
	if rng.Float64() < epsilon {
		return available[rng.Intn(len(available))]
	}
	return a.table.Best(s, available)
}

// Exploit implements Algorithm.
func (a *EpsilonGreedyQ) Exploit(s State, available []soc.Action) soc.Action {
	return a.table.Best(s, available)
}

// Update implements Algorithm: Q(s,a) ← (1−α)·Q(s,a) + α·R.
func (a *EpsilonGreedyQ) Update(_ *sim.RNG, s State, act soc.Action, reward, alpha float64) {
	a.table.Update(s, act, reward, alpha)
}

// Tables implements Algorithm.
func (a *EpsilonGreedyQ) Tables() []NamedTable { return []NamedTable{{Name: "q", Table: a.table}} }

// SetPrimary implements Algorithm.
func (a *EpsilonGreedyQ) SetPrimary(t *QTable) { a.table = t }

// DoubleQ damps the maximization bias of single-table Q-learning (van
// Hasselt): it keeps two tables A and B, selects greedily over their
// sum, and on each update flips a coin to decide which table absorbs
// the reward. With this repository's bandit-style updates (the target
// is the immediate reward, no bootstrapped next-state term) the scheme
// reduces to averaging two half-rate estimators, which still halves the
// upward bias a noisy maximum inflicts on action selection.
type DoubleQ struct {
	a, b *QTable
}

// NewDoubleQ returns an untrained double Q-learner.
func NewDoubleQ() *DoubleQ { return &DoubleQ{a: NewQTable(), b: NewQTable()} }

// Name implements Algorithm.
func (d *DoubleQ) Name() string { return "double-q" }

// bestSum returns the available action maximizing A+B, ties resolving
// in offer order like QTable.Best.
func (d *DoubleQ) bestSum(s State, available []soc.Action) soc.Action {
	best := available[0]
	bv := d.a.Q(s, best) + d.b.Q(s, best)
	for _, a := range available[1:] {
		if v := d.a.Q(s, a) + d.b.Q(s, a); v > bv {
			best, bv = a, v
		}
	}
	return best
}

// Decide implements Algorithm: ε-greedy over the summed tables.
func (d *DoubleQ) Decide(rng *sim.RNG, s State, available []soc.Action, epsilon float64) soc.Action {
	if rng.Float64() < epsilon {
		return available[rng.Intn(len(available))]
	}
	return d.bestSum(s, available)
}

// Exploit implements Algorithm.
func (d *DoubleQ) Exploit(s State, available []soc.Action) soc.Action {
	return d.bestSum(s, available)
}

// Update implements Algorithm: a fair coin picks the table to update.
func (d *DoubleQ) Update(rng *sim.RNG, s State, act soc.Action, reward, alpha float64) {
	if rng.Float64() < 0.5 {
		d.a.Update(s, act, reward, alpha)
	} else {
		d.b.Update(s, act, reward, alpha)
	}
}

// Tables implements Algorithm.
func (d *DoubleQ) Tables() []NamedTable {
	return []NamedTable{{Name: "a", Table: d.a}, {Name: "b", Table: d.b}}
}

// SetPrimary implements Algorithm: the restored table becomes A and B
// resets, so Exploit's A+B argmax equals the restored table's argmax.
func (d *DoubleQ) SetPrimary(t *QTable) { d.a, d.b = t, NewQTable() }

// ucbC is UCB1's exploration constant: √2 matches the classic bound for
// rewards in [0, 1], which is exactly this repository's reward range.
const ucbC = math.Sqrt2

// UCB1 replaces randomized exploration with count-based optimism: every
// untried (state, action) is tried once (in offer order), after which the
// algorithm picks argmax Q + √2·√(ln N / n) where N is the state's
// total play count and n the arm's. Decisions consume no RNG draws and
// the value estimate is the running mean of observed rewards (the
// schedule's ε/α trajectories only gate whether updates happen at all).
type UCB1 struct {
	table *QTable
}

// NewUCB1 returns an untrained UCB1 learner.
func NewUCB1() *UCB1 { return &UCB1{table: NewQTable()} }

// Name implements Algorithm.
func (u *UCB1) Name() string { return "ucb1" }

// Decide implements Algorithm: optimism in the face of uncertainty.
func (u *UCB1) Decide(_ *sim.RNG, s State, available []soc.Action, _ float64) soc.Action {
	var total int64
	for _, a := range available {
		n := u.table.Visits(s, a)
		if n == 0 {
			return a // every arm plays once before any bound applies
		}
		total += n
	}
	logN := math.Log(float64(total))
	best := available[0]
	bv := u.table.Q(s, best) + ucbC*math.Sqrt(logN/float64(u.table.Visits(s, best)))
	for _, a := range available[1:] {
		if v := u.table.Q(s, a) + ucbC*math.Sqrt(logN/float64(u.table.Visits(s, a))); v > bv {
			best, bv = a, v
		}
	}
	return best
}

// Exploit implements Algorithm: greedy on the mean-reward estimates.
func (u *UCB1) Exploit(s State, available []soc.Action) soc.Action {
	return u.table.Best(s, available)
}

// Update implements Algorithm: incremental running mean.
func (u *UCB1) Update(_ *sim.RNG, s State, a soc.Action, reward, _ float64) {
	u.table.UpdateMean(s, a, reward)
}

// Tables implements Algorithm.
func (u *UCB1) Tables() []NamedTable { return []NamedTable{{Name: "ucb1", Table: u.table}} }

// SetPrimary implements Algorithm.
func (u *UCB1) SetPrimary(t *QTable) { u.table = t }

// boltzmannMinTemp is the temperature below which softmax selection
// degenerates to greedy: exp() ratios overflow long before this, and a
// fully decayed schedule hands in exactly zero.
const boltzmannMinTemp = 1e-6

// Boltzmann selects actions with probability ∝ exp(Q(s,a)/τ): all
// actions stay reachable but better-valued ones are preferred smoothly, unlike
// ε-greedy's all-or-nothing split. The schedule's ε trajectory is read
// as the temperature τ, so the default linear decay anneals selection
// from near-uniform (τ = ε₀) to greedy. Updates reuse the paper's EMA
// rule. Each training decision consumes exactly one RNG draw.
type Boltzmann struct {
	table *QTable
}

// NewBoltzmann returns an untrained softmax learner.
func NewBoltzmann() *Boltzmann { return &Boltzmann{table: NewQTable()} }

// Name implements Algorithm.
func (b *Boltzmann) Name() string { return "boltzmann" }

// Decide implements Algorithm: sample from the softmax distribution.
func (b *Boltzmann) Decide(rng *sim.RNG, s State, available []soc.Action, epsilon float64) soc.Action {
	tau := epsilon
	if tau <= boltzmannMinTemp {
		return b.table.Best(s, available)
	}
	// Subtract the max before exponentiating so weights stay in (0, 1].
	maxQ := b.table.Q(s, available[0])
	for _, a := range available[1:] {
		if q := b.table.Q(s, a); q > maxQ {
			maxQ = q
		}
	}
	var weights [soc.NumActions]float64
	var sum float64
	for i, a := range available {
		w := math.Exp((b.table.Q(s, a) - maxQ) / tau)
		weights[i] = w
		sum += w
	}
	draw := rng.Float64() * sum
	for i, a := range available {
		draw -= weights[i]
		if draw < 0 {
			return a
		}
	}
	return available[len(available)-1] // float round-off: the draw exhausted the mass
}

// Exploit implements Algorithm.
func (b *Boltzmann) Exploit(s State, available []soc.Action) soc.Action {
	return b.table.Best(s, available)
}

// Update implements Algorithm: Q(s,a) ← (1−α)·Q(s,a) + α·R.
func (b *Boltzmann) Update(_ *sim.RNG, s State, act soc.Action, reward, alpha float64) {
	b.table.Update(s, act, reward, alpha)
}

// Tables implements Algorithm.
func (b *Boltzmann) Tables() []NamedTable { return []NamedTable{{Name: "boltzmann", Table: b.table}} }

// SetPrimary implements Algorithm.
func (b *Boltzmann) SetPrimary(t *QTable) { b.table = t }
