package learn

import "math"

// Linear is the paper's schedule: ε and α decay linearly from their
// initial values to zero over DecayIterations. The arithmetic mirrors
// the pre-refactor agent exactly (factor first, then scale), so the
// default stack's floating-point trajectory is bit-identical.
type Linear struct {
	p ScheduleParams
}

// NewLinear returns the paper's linear-decay schedule.
func NewLinear(p ScheduleParams) *Linear { return &Linear{p: p} }

// Name implements Schedule.
func (l *Linear) Name() string { return "linear" }

// factor is the remaining fraction of the initial rates: 1 at iteration
// 0, 0 from DecayIterations on.
func (l *Linear) factor(iter int) float64 {
	f := 1 - float64(iter)/float64(l.p.DecayIterations)
	if f < 0 {
		f = 0
	}
	return f
}

// Epsilon implements Schedule.
func (l *Linear) Epsilon(iter int) float64 { return l.p.Epsilon0 * l.factor(iter) }

// Alpha implements Schedule.
func (l *Linear) Alpha(iter int) float64 { return l.p.Alpha0 * l.factor(iter) }

// expFloor is the fraction of the initial rates an exponential schedule
// retains at DecayIterations: 5%, chosen so its horizon is comparable
// to the linear schedule's while never reaching exactly zero — late
// iterations keep a trickle of exploration and learning.
const expFloor = 0.05

// Exponential decays ε and α geometrically: factor = expFloor^(iter/n),
// i.e. 5% of the initial rates remain at iteration n. Compared to the
// linear schedule it explores less in the middle of training and never
// fully stops adapting.
type Exponential struct {
	p    ScheduleParams
	rate float64 // per-iteration multiplier
}

// NewExponential returns the exponential-decay schedule.
func NewExponential(p ScheduleParams) *Exponential {
	return &Exponential{p: p, rate: math.Pow(expFloor, 1/float64(p.DecayIterations))}
}

// Name implements Schedule.
func (e *Exponential) Name() string { return "exp" }

// Epsilon implements Schedule.
func (e *Exponential) Epsilon(iter int) float64 {
	return e.p.Epsilon0 * math.Pow(e.rate, float64(iter))
}

// Alpha implements Schedule.
func (e *Exponential) Alpha(iter int) float64 {
	return e.p.Alpha0 * math.Pow(e.rate, float64(iter))
}

// Constant keeps ε and α at their initial values forever — the paper's
// decay-schedule ablation (the pre-refactor NoDecay flag).
type Constant struct {
	p ScheduleParams
}

// NewConstant returns the no-decay schedule.
func NewConstant(p ScheduleParams) *Constant { return &Constant{p: p} }

// Name implements Schedule.
func (c *Constant) Name() string { return "const" }

// Epsilon implements Schedule.
func (c *Constant) Epsilon(int) float64 { return c.p.Epsilon0 }

// Alpha implements Schedule.
func (c *Constant) Alpha(int) float64 { return c.p.Alpha0 }
