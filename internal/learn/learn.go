// Package learn is Cohmeleon's pluggable reinforcement-learning engine.
// It splits the RL core into three orthogonal seams so that alternative
// designs can be compared over the same experiment grid:
//
//   - Featurizer: context → discrete state. The paper's Table-3
//     five-attribute encoder is the default implementation.
//   - Algorithm: decide + update over (state, mode) values. The paper's
//     tabular Q-learning with ε-greedy selection is the default; the
//     package also ships double Q-learning (damps maximization bias),
//     UCB1 (count-based exploration) and Boltzmann/softmax selection.
//   - Schedule: the per-iteration ε/α trajectories. The paper's linear
//     decay is the default, alongside exponential decay and a constant
//     (no-decay) schedule.
//
// The agent in internal/core composes one implementation of each seam;
// under the default stack (table3 + q + linear) it is byte-identical to
// the pre-refactor single-algorithm agent, which the golden regression
// tests in internal/experiment pin down. Algorithms and schedules are
// registered by name so the CLI and the experiment layer can select
// them (-learner, -schedule).
package learn

import (
	"fmt"
	"sort"
	"strings"

	"cohmeleon/internal/esp"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
)

// State is a discrete learner state in [0, featurizer.NumStates()).
type State uint16

// Featurizer maps a sensed invocation context to a discrete state.
type Featurizer interface {
	// Name identifies the featurizer in reports and persisted state.
	Name() string
	// NumStates is the size of the state space the featurizer maps into.
	NumStates() int
	// Featurize returns the state index for a context.
	Featurize(ctx *esp.Context) State
}

// Algorithm owns the value state over (state, action) pairs and the
// decide/update rules. An action is a uniform coherence mode or a
// fine-grain (hot, cold) split (soc.Action); agents offering only the
// uniform actions index — and draw from the RNG — exactly as the
// mode-only interface did, because the uniform actions are a numeric
// prefix of the action space. Implementations must be deterministic
// given the RNG handed in: the agent owns a single RNG stream and the
// default algorithm's draw order is part of the repository's golden
// behavior.
type Algorithm interface {
	// Name is the registry name ("q", "double-q", "ucb1", "boltzmann").
	Name() string
	// Decide selects an action during training. epsilon is the schedule's
	// exploration knob at the current iteration (the Boltzmann algorithm
	// reads it as its temperature; UCB1 ignores it). Implementations may
	// consume RNG draws.
	Decide(rng *sim.RNG, s State, available []soc.Action, epsilon float64) soc.Action
	// Exploit returns the greedy choice without exploration and without
	// consuming RNG draws (frozen evaluation).
	Exploit(s State, available []soc.Action) soc.Action
	// Update learns from the reward of a taken (state, action). alpha is
	// the schedule's learning-rate knob; count-based algorithms may
	// ignore its value (the agent already gates updates on alpha > 0).
	Update(rng *sim.RNG, s State, a soc.Action, reward, alpha float64)
	// Tables exposes the algorithm's live value tables, primary first
	// (persistence, merging, reports).
	Tables() []NamedTable
	// SetPrimary replaces the primary value table (restoring a trained
	// checkpoint); any secondary tables reset to zero.
	SetPrimary(t *QTable)
}

// NamedTable labels one of an algorithm's value tables.
type NamedTable struct {
	Name  string
	Table *QTable
}

// Schedule yields the exploration and learning rates at each training
// iteration.
type Schedule interface {
	// Name is the registry name ("linear", "exp", "const").
	Name() string
	// Epsilon is the exploration rate at a completed-iteration count.
	Epsilon(iter int) float64
	// Alpha is the learning rate at a completed-iteration count.
	Alpha(iter int) float64
}

// ScheduleParams parameterize schedule construction.
type ScheduleParams struct {
	// Epsilon0 and Alpha0 are the initial rates.
	Epsilon0 float64
	Alpha0   float64
	// DecayIterations is the horizon of the decay: linear reaches zero
	// there, exponential reaches 5% of the initial rates.
	DecayIterations int
}

// algorithmMakers registers algorithm constructors by name.
var algorithmMakers = map[string]func() Algorithm{
	"q":         func() Algorithm { return NewEpsilonGreedyQ() },
	"double-q":  func() Algorithm { return NewDoubleQ() },
	"ucb1":      func() Algorithm { return NewUCB1() },
	"boltzmann": func() Algorithm { return NewBoltzmann() },
}

// scheduleMakers registers schedule constructors by name.
var scheduleMakers = map[string]func(ScheduleParams) Schedule{
	"linear": func(p ScheduleParams) Schedule { return NewLinear(p) },
	"exp":    func(p ScheduleParams) Schedule { return NewExponential(p) },
	"const":  func(p ScheduleParams) Schedule { return NewConstant(p) },
}

// DefaultAlgorithm and DefaultSchedule are the paper's stack.
const (
	DefaultAlgorithm = "q"
	DefaultSchedule  = "linear"
)

// NewAlgorithm constructs a registered algorithm; the error for an
// unknown name lists every valid one.
func NewAlgorithm(name string) (Algorithm, error) {
	if name == "" {
		name = DefaultAlgorithm
	}
	mk, ok := algorithmMakers[name]
	if !ok {
		return nil, fmt.Errorf("learn: unknown algorithm %q (valid: %s)", name, strings.Join(AlgorithmNames(), ", "))
	}
	return mk(), nil
}

// NewSchedule constructs a registered schedule; the error for an
// unknown name lists every valid one.
func NewSchedule(name string, p ScheduleParams) (Schedule, error) {
	if name == "" {
		name = DefaultSchedule
	}
	mk, ok := scheduleMakers[name]
	if !ok {
		return nil, fmt.Errorf("learn: unknown schedule %q (valid: %s)", name, strings.Join(ScheduleNames(), ", "))
	}
	return mk(p), nil
}

// AlgorithmNames lists the registered algorithms, sorted.
func AlgorithmNames() []string { return sortedKeys(algorithmMakers) }

// ScheduleNames lists the registered schedules, sorted.
func ScheduleNames() []string { return sortedKeys(scheduleMakers) }

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
