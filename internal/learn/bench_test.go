package learn

import (
	"testing"

	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
)

// benchAlgorithm returns a lightly trained instance so Decide walks
// realistic table contents rather than all-zero ties.
func benchAlgorithm(b *testing.B, name string) Algorithm {
	b.Helper()
	a, err := NewAlgorithm(name)
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(77)
	for i := 0; i < 4*NumStates; i++ {
		s := State(i % NumStates)
		m := a.Decide(rng, s, soc.UniformActions[:], 0.5)
		a.Update(rng, s, m, float64(i%23)/23, 0.25)
	}
	return a
}

// BenchmarkLearnerDecide measures one training decision plus its update
// for every registered algorithm — the learner-side cost an invocation
// pays on top of the simulator work. The default ("q") sub-benchmark is
// the hot path the PR-2 zero-alloc discipline guards (see
// alloc_test.go); bench.sh records allocs/op for all of them.
func BenchmarkLearnerDecide(b *testing.B) {
	for _, name := range AlgorithmNames() {
		b.Run(name, func(b *testing.B) {
			a := benchAlgorithm(b, name)
			rng := sim.NewRNG(5)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := State(i % NumStates)
				m := a.Decide(rng, s, soc.UniformActions[:], 0.3)
				a.Update(rng, s, m, 0.5, 0.2)
			}
		})
	}
}

// BenchmarkFeaturize measures the Table-3 encoding of one context.
func BenchmarkFeaturize(b *testing.B) {
	e := NewEncoder()
	ctx := ctxWith(1, 1, 0.5, 64<<10, 128<<10)
	b.ReportAllocs()
	b.ResetTimer()
	var sink State
	for i := 0; i < b.N; i++ {
		sink = e.Featurize(ctx)
	}
	_ = sink
}
