package learn

import (
	"fmt"
	"strings"

	"cohmeleon/internal/esp"
)

// The Table-3 featurizer: five SoC-status attributes, three buckets
// each, 3^5 = 243 states (paper §4.2). Attributes can be disabled
// (pinned to bucket 0) for the state-ablation study.

// Attribute identifies one of the five state attributes of Table 3.
type Attribute int

// The five attributes. Each takes one of three values, so the state
// space has 3^5 = 243 states.
const (
	AttrFullyCohAcc   Attribute = iota // active fully-coherent accelerators: 0, 1, 2+
	AttrNonCohPerTile                  // avg non-coh accs per needed partition: 0, 1, 2+
	AttrToLLCPerTile                   // avg LLC-bound accs per needed partition: 0, 1, 2+
	AttrTileFootprint                  // avg utilization of needed partitions: ≤L2, ≤slice, >slice
	AttrAccFootprint                   // this invocation's footprint: ≤L2, ≤slice, >slice
	NumAttributes
)

// String names the attribute as in Table 3.
func (a Attribute) String() string {
	switch a {
	case AttrFullyCohAcc:
		return "fully-coh-acc"
	case AttrNonCohPerTile:
		return "non-coh-acc-per-tile"
	case AttrToLLCPerTile:
		return "to-llc-per-tile"
	case AttrTileFootprint:
		return "tile-footprint"
	case AttrAccFootprint:
		return "acc-footprint"
	default:
		return fmt.Sprintf("Attribute(%d)", int(a))
	}
}

// valuesPerAttribute is the bucket count for each attribute.
const valuesPerAttribute = 3

// NumStates is the size of the state space: 3^5 = 243 (paper §4.2).
const NumStates = 243

// Encoder is the Table-3 Featurizer. Attributes can be disabled
// (treated as constant) for the state-ablation study; the paper's
// encoder has all five enabled.
type Encoder struct {
	disabled [NumAttributes]bool
}

// NewEncoder returns the full five-attribute encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// NewAblatedEncoder returns an encoder with the listed attributes
// disabled (pinned to bucket 0).
func NewAblatedEncoder(disabled ...Attribute) *Encoder {
	e := &Encoder{}
	for _, a := range disabled {
		if a < 0 || a >= NumAttributes {
			panic(fmt.Sprintf("learn: bad attribute %d", a))
		}
		e.disabled[a] = true
	}
	return e
}

// Name implements Featurizer: "table3", with any disabled attributes
// appended ("table3-drop-acc-footprint").
func (e *Encoder) Name() string {
	var b strings.Builder
	b.WriteString("table3")
	for a := Attribute(0); a < NumAttributes; a++ {
		if e.disabled[a] {
			b.WriteString("-drop-")
			b.WriteString(a.String())
		}
	}
	return b.String()
}

// NumStates implements Featurizer.
func (e *Encoder) NumStates() int { return NumStates }

// bucketCount maps a (possibly averaged) count onto {0, 1, 2+}:
// rounds to nearest and clamps.
func bucketCount(x float64) int {
	n := int(x + 0.5)
	if n < 0 {
		n = 0
	}
	if n > 2 {
		n = 2
	}
	return n
}

// bucketFootprint maps bytes onto {≤L2, ≤LLC slice, >LLC slice}.
func bucketFootprint(bytes float64, l2, llcSlice int64) int {
	switch {
	case bytes <= float64(l2):
		return 0
	case bytes <= float64(llcSlice):
		return 1
	default:
		return 2
	}
}

// Values extracts the five attribute buckets from a context.
func (e *Encoder) Values(ctx *esp.Context) [NumAttributes]int {
	var v [NumAttributes]int
	v[AttrFullyCohAcc] = bucketCount(float64(ctx.FullyCohActive))
	v[AttrNonCohPerTile] = bucketCount(ctx.NonCohPerTile)
	v[AttrToLLCPerTile] = bucketCount(ctx.ToLLCPerTile)
	v[AttrTileFootprint] = bucketFootprint(ctx.TileFootprintBytes, ctx.L2Bytes, ctx.LLCSliceBytes)
	v[AttrAccFootprint] = bucketFootprint(float64(ctx.FootprintBytes), ctx.L2Bytes, ctx.LLCSliceBytes)
	for a := Attribute(0); a < NumAttributes; a++ {
		if e.disabled[a] {
			v[a] = 0
		}
	}
	return v
}

// Encode returns the state index for a context.
func (e *Encoder) Encode(ctx *esp.Context) State {
	v := e.Values(ctx)
	idx := 0
	for a := Attribute(0); a < NumAttributes; a++ {
		idx = idx*valuesPerAttribute + v[a]
	}
	return State(idx)
}

// Featurize implements Featurizer.
func (e *Encoder) Featurize(ctx *esp.Context) State { return e.Encode(ctx) }

// Decode expands a state index back into attribute buckets (for
// reporting and tests).
func Decode(s State) [NumAttributes]int {
	if int(s) >= NumStates {
		panic(fmt.Sprintf("learn: state %d out of range", s))
	}
	var v [NumAttributes]int
	idx := int(s)
	for a := NumAttributes - 1; a >= 0; a-- {
		v[a] = idx % valuesPerAttribute
		idx /= valuesPerAttribute
	}
	return v
}
