package core

import (
	"fmt"

	"cohmeleon/internal/esp"
)

// RewardWeights are the x, y, z coefficients of the reward function
// R = x·Rexec + y·Rcomm + z·Rmem (paper §4.2). The paper's best general
// setting — used for Figures 8 and 9 — weighs execution time 67.5%,
// communication ratio 7.5% and off-chip accesses 25%.
type RewardWeights struct {
	Exec float64
	Comm float64
	Mem  float64
}

// DefaultWeights returns the (67.5, 7.5, 25) setting.
func DefaultWeights() RewardWeights { return RewardWeights{Exec: 0.675, Comm: 0.075, Mem: 0.25} }

// Validate reports whether the weights can be normalized: their sum
// must be positive (individual coefficients may be zero).
func (w RewardWeights) Validate() error {
	if w.Exec+w.Comm+w.Mem <= 0 {
		// Format the fields directly: %v would re-enter String → Normalized.
		return fmt.Errorf("core: non-positive reward weights (x=%g, y=%g, z=%g)", w.Exec, w.Comm, w.Mem)
	}
	return nil
}

// Normalized returns the weights scaled to sum to one, or an error for
// weights whose sum is not positive.
func (w RewardWeights) Normalized() (RewardWeights, error) {
	if err := w.Validate(); err != nil {
		return RewardWeights{}, err
	}
	sum := w.Exec + w.Comm + w.Mem
	return RewardWeights{Exec: w.Exec / sum, Comm: w.Comm / sum, Mem: w.Mem / sum}, nil
}

// String formats the weights as percentages (raw values for weights
// that cannot be normalized).
func (w RewardWeights) String() string {
	n, err := w.Normalized()
	if err != nil {
		return fmt.Sprintf("(%g, %g, %g)", w.Exec, w.Comm, w.Mem)
	}
	return fmt.Sprintf("(%.1f, %.1f, %.1f)", n.Exec*100, n.Comm*100, n.Mem*100)
}

// accHistory keeps the per-accelerator running extrema the reward
// components are normalized against (min over j ≤ i in the paper's
// formulas, including the current invocation).
type accHistory struct {
	minExec float64
	minComm float64
	minMem  float64
	maxMem  float64
	seen    bool
}

// RewardComputer turns invocation results into rewards. One instance
// accumulates history for all accelerators of a system; history
// persists across training iterations, as on the real system.
type RewardComputer struct {
	weights RewardWeights
	hist    map[int]*accHistory // key: AccTile.ID
	useTrue bool
}

// NewRewardComputer returns a computer with the given weights
// (normalized to sum to one); weights whose sum is not positive are
// rejected.
func NewRewardComputer(w RewardWeights) (*RewardComputer, error) {
	n, err := w.Normalized()
	if err != nil {
		return nil, err
	}
	return &RewardComputer{weights: n, hist: make(map[int]*accHistory)}, nil
}

// UseTrueDDR switches the mem component from the paper's footprint-
// proportional approximation to the simulator's ground truth — the
// attribution ablation. Real hardware cannot do this without extra
// support (paper §4.3).
func (rc *RewardComputer) UseTrueDDR(on bool) { rc.useTrue = on }

// Weights returns the normalized weights in use.
func (rc *RewardComputer) Weights() RewardWeights { return rc.weights }

// Components returns the three reward components for a result, updating
// the per-accelerator history first (so min/max include this
// invocation, per the paper's min over j ≤ i).
func (rc *RewardComputer) Components(res *esp.Result) (rExec, rComm, rMem float64) {
	k := res.Acc.ID
	h := rc.hist[k]
	exec := res.ScaledExec()
	comm := res.CommRatio()
	mem := res.ScaledMem()
	if rc.useTrue {
		mem = float64(res.OffChipTrue) / float64(res.FootprintBytes)
	}
	if h == nil {
		h = &accHistory{minExec: exec, minComm: comm, minMem: mem, maxMem: mem, seen: true}
		rc.hist[k] = h
	} else {
		if exec < h.minExec {
			h.minExec = exec
		}
		if comm < h.minComm {
			h.minComm = comm
		}
		if mem < h.minMem {
			h.minMem = mem
		}
		if mem > h.maxMem {
			h.maxMem = mem
		}
	}

	// Rexec = min exec / exec: 1 for the best run seen, <1 otherwise.
	if exec <= 0 {
		rExec = 1
	} else {
		rExec = h.minExec / exec
	}
	// Rcomm = min comm / comm; an invocation with no communication at
	// all earns the full component.
	if comm <= 0 {
		rComm = 1
	} else {
		rComm = h.minComm / comm
	}
	// Rmem maps the observed range onto [0,1], high accesses near zero.
	if h.maxMem > h.minMem {
		rMem = 1 - (mem-h.minMem)/(h.maxMem-h.minMem)
	} else {
		rMem = 1
	}
	return rExec, rComm, rMem
}

// Reward returns the weighted reward for a result.
func (rc *RewardComputer) Reward(res *esp.Result) float64 {
	rExec, rComm, rMem := rc.Components(res)
	return rc.weights.Exec*rExec + rc.weights.Comm*rComm + rc.weights.Mem*rMem
}

// Reset clears accumulated history (a fresh deployment).
func (rc *RewardComputer) Reset() { rc.hist = make(map[int]*accHistory) }
