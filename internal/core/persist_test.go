package core

import (
	"bytes"
	"encoding/gob"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"cohmeleon/internal/esp"
	"cohmeleon/internal/soc"
)

func TestQTableRoundTrip(t *testing.T) {
	q := NewQTable()
	q.Update(0, soc.NonCohDMA, 0.7, 0.5)
	q.Update(242, soc.FullyCoh, 0.3, 0.25)
	q.Update(100, soc.CohDMA, 1.0, 1.0)

	var buf bytes.Buffer
	if err := q.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for s := State(0); s < NumStates; s++ {
		for _, m := range soc.AllModes {
			if got.Q(s, m) != q.Q(s, m) {
				t.Fatalf("Q(%d,%v) = %g, want %g", s, m, got.Q(s, m), q.Q(s, m))
			}
			if got.Visits(s, m) != q.Visits(s, m) {
				t.Fatalf("Visits(%d,%v) mismatch", s, m)
			}
		}
	}
}

func TestQTableFileRoundTrip(t *testing.T) {
	q := NewQTable()
	q.Update(7, soc.LLCCohDMA, 0.9, 0.25)
	path := filepath.Join(t.TempDir(), "model.qtable")
	if err := q.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTableFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Q(7, soc.LLCCohDMA) != q.Q(7, soc.LLCCohDMA) {
		t.Fatal("file round-trip lost data")
	}
}

func TestDecodeTableRejectsGarbage(t *testing.T) {
	if _, err := DecodeTable(bytes.NewReader([]byte("not a table"))); err == nil {
		t.Fatal("garbage should fail to decode")
	}
}

func TestLoadTableFileMissing(t *testing.T) {
	if _, err := LoadTableFile(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing file should error")
	}
}

// encodeImage gob-encodes a raw tableImage, bypassing Encode's
// invariants, to forge corrupt and truncated files.
func encodeImage(t *testing.T, img tableImage) *bytes.Reader {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&img); err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(buf.Bytes())
}

// validImage returns a well-formed image to corrupt per test case.
func validImage() tableImage {
	img := tableImage{
		Version: tableVersion,
		States:  NumStates,
		Modes:   int(soc.NumModes),
		Q:       make([][]float64, NumStates),
		Visits:  make([][]int64, NumStates),
	}
	for s := range img.Q {
		img.Q[s] = make([]float64, soc.NumModes)
		img.Visits[s] = make([]int64, soc.NumModes)
	}
	return img
}

// TestDecodeTableCorruptMatrix is the regression matrix for the
// decode-validation bug: files that declare the right geometry but
// carry short or poisoned payloads used to panic with
// index-out-of-range (or load silently); all must now return errors.
func TestDecodeTableCorruptMatrix(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*tableImage)
		want string
	}{
		// Pre-fix panic: States claims NumStates but Q has fewer rows.
		{"short-Q-rows", func(img *tableImage) { img.Q = img.Q[:3] }, "truncated"},
		{"short-visit-rows", func(img *tableImage) { img.Visits = img.Visits[:1] }, "truncated"},
		{"nil-Q", func(img *tableImage) { img.Q = nil }, "truncated"},
		{"short-row", func(img *tableImage) { img.Q[10] = img.Q[10][:2] }, "truncated"},
		{"nan-cell", func(img *tableImage) { img.Q[5][1] = math.NaN() }, "corrupt"},
		{"inf-cell", func(img *tableImage) { img.Q[0][0] = math.Inf(1) }, "corrupt"},
		{"negative-visits", func(img *tableImage) { img.Visits[2][3] = -7 }, "corrupt"},
		{"wrong-version", func(img *tableImage) { img.Version = 99 }, "version"},
		{"wrong-geometry", func(img *tableImage) { img.States = 7 }, "geometry"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img := validImage()
			tc.mut(&img)
			_, err := DecodeTable(encodeImage(t, img))
			if err == nil {
				t.Fatal("corrupt image decoded without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestDecodeTableTruncatedStream: a file cut off mid-write must error,
// not panic.
func TestDecodeTableTruncatedStream(t *testing.T) {
	q := NewQTable()
	q.Update(1, soc.CohDMA, 0.5, 0.5)
	var buf bytes.Buffer
	if err := q.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	for _, frac := range []int{2, 4, 10} {
		cut := buf.Len() / frac
		if _, err := DecodeTable(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("stream cut to %d/%d bytes decoded without error", cut, buf.Len())
		}
	}
}

func TestMergeTables(t *testing.T) {
	a, b := NewQTable(), NewQTable()
	a.Update(0, soc.NonCohDMA, 1.0, 1.0) // Q=1, visits=1
	b.Update(0, soc.NonCohDMA, 0.0, 1.0) // Q=0, visits=1
	b.Update(0, soc.NonCohDMA, 0.0, 1.0) // Q=0, visits=2
	b.Update(5, soc.FullyCoh, 0.5, 1.0)

	m := MergeTables([]*QTable{a, b, nil})
	if got := m.Q(0, soc.NonCohDMA); got != 1.0/3 {
		t.Fatalf("merged Q = %g, want 1/3 (visit-weighted)", got)
	}
	if got := m.Visits(0, soc.NonCohDMA); got != 3 {
		t.Fatalf("merged visits = %d, want 3", got)
	}
	if got := m.Q(5, soc.FullyCoh); got != 0.5 {
		t.Fatalf("single-source cell = %g, want 0.5", got)
	}
	if m.Q(100, soc.CohDMA) != 0 || m.Visits(100, soc.CohDMA) != 0 {
		t.Fatal("unvisited cell should stay zero")
	}
	empty := MergeTables(nil)
	if empty.TotalVisits() != 0 {
		t.Fatal("empty merge should be a zeroed table")
	}
}

func TestTrainedAgentSurvivesReload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epsilon0 = 0
	a := New(cfg)
	ctx := ctxWith(0, 0, 0, 0, 16<<10)
	mode := a.Decide(ctx)
	a.Observe(&stubResult(ctx, mode).res)

	var buf bytes.Buffer
	if err := a.Table().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := DecodeTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := New(cfg)
	b.SetTable(restored)
	if got := b.Decide(ctx); got != a.Decide(ctx) {
		t.Fatalf("restored agent decided %v, original %v", got, mode)
	}
}

// stubResult builds a plausible result for a decided (ctx, mode).
type stub struct{ res esp.Result }

func stubResult(ctx *esp.Context, mode soc.Mode) *stub {
	return &stub{res: esp.Result{
		Acc: ctx.Acc, Mode: mode, FootprintBytes: ctx.FootprintBytes,
		ExecCycles: 1000, ActiveCycles: 900, CommCycles: 100, OffChipApprox: 10,
	}}
}
