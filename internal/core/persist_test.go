package core

import (
	"bytes"
	"path/filepath"
	"testing"

	"cohmeleon/internal/esp"
	"cohmeleon/internal/soc"
)

func TestQTableRoundTrip(t *testing.T) {
	q := NewQTable()
	q.Update(0, soc.NonCohDMA, 0.7, 0.5)
	q.Update(242, soc.FullyCoh, 0.3, 0.25)
	q.Update(100, soc.CohDMA, 1.0, 1.0)

	var buf bytes.Buffer
	if err := q.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for s := State(0); s < NumStates; s++ {
		for _, m := range soc.AllModes {
			if got.Q(s, m) != q.Q(s, m) {
				t.Fatalf("Q(%d,%v) = %g, want %g", s, m, got.Q(s, m), q.Q(s, m))
			}
			if got.Visits(s, m) != q.Visits(s, m) {
				t.Fatalf("Visits(%d,%v) mismatch", s, m)
			}
		}
	}
}

func TestQTableFileRoundTrip(t *testing.T) {
	q := NewQTable()
	q.Update(7, soc.LLCCohDMA, 0.9, 0.25)
	path := filepath.Join(t.TempDir(), "model.qtable")
	if err := q.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTableFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Q(7, soc.LLCCohDMA) != q.Q(7, soc.LLCCohDMA) {
		t.Fatal("file round-trip lost data")
	}
}

func TestDecodeTableRejectsGarbage(t *testing.T) {
	if _, err := DecodeTable(bytes.NewReader([]byte("not a table"))); err == nil {
		t.Fatal("garbage should fail to decode")
	}
}

func TestLoadTableFileMissing(t *testing.T) {
	if _, err := LoadTableFile(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestTrainedAgentSurvivesReload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epsilon0 = 0
	a := New(cfg)
	ctx := ctxWith(0, 0, 0, 0, 16<<10)
	mode := a.Decide(ctx)
	a.Observe(&stubResult(ctx, mode).res)

	var buf bytes.Buffer
	if err := a.Table().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := DecodeTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := New(cfg)
	b.SetTable(restored)
	if got := b.Decide(ctx); got != a.Decide(ctx) {
		t.Fatalf("restored agent decided %v, original %v", got, mode)
	}
}

// stubResult builds a plausible result for a decided (ctx, mode).
type stub struct{ res esp.Result }

func stubResult(ctx *esp.Context, mode soc.Mode) *stub {
	return &stub{res: esp.Result{
		Acc: ctx.Acc, Mode: mode, FootprintBytes: ctx.FootprintBytes,
		ExecCycles: 1000, ActiveCycles: 900, CommCycles: 100, OffChipApprox: 10,
	}}
}
