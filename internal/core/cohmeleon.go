package core

import (
	"fmt"

	"cohmeleon/internal/esp"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
)

// Config parameterizes a Cohmeleon agent. The zero value is not valid;
// use DefaultConfig as a base.
type Config struct {
	// Weights are the reward coefficients (x, y, z).
	Weights RewardWeights
	// Epsilon0 is the initial exploration rate (paper: 0.5).
	Epsilon0 float64
	// Alpha0 is the initial learning rate (paper: 0.25).
	Alpha0 float64
	// DecayIterations is the training-iteration count over which ε and α
	// decay linearly to zero.
	DecayIterations int
	// OverheadCycles is the CPU cost charged per invocation for status
	// tracking, Q-table lookup and bookkeeping.
	OverheadCycles sim.Cycles
	// Seed drives ε-greedy exploration.
	Seed uint64
	// Encoder maps contexts to states; nil means the full five-attribute
	// encoder (set an ablated encoder for the state-ablation study).
	Encoder *Encoder
	// NoDecay disables the linear ε/α schedule (both stay at their
	// initial values) — the decay-schedule ablation.
	NoDecay bool
	// TrueDDRReward feeds the reward the simulator's ground-truth
	// off-chip counts instead of the monitor approximation — the
	// attribution ablation.
	TrueDDRReward bool
}

// DefaultConfig returns the paper's training setup: ε0 = 0.5, α0 = 0.25
// decaying over 10 iterations, reward weights (67.5, 7.5, 25).
func DefaultConfig() Config {
	return Config{
		Weights:         DefaultWeights(),
		Epsilon0:        0.5,
		Alpha0:          0.25,
		DecayIterations: 10,
		OverheadCycles:  3000,
		Seed:            1,
	}
}

// Cohmeleon is the learning coherence policy (esp.Policy). It selects a
// mode per invocation by ε-greedy lookup in its Q-table and updates the
// table online from each invocation's reward. Training proceeds in
// iterations (whole application runs); call EndIteration after each to
// advance the linear decay, and Freeze to evaluate the learned policy
// without exploration or updates.
type Cohmeleon struct {
	cfg     Config
	enc     *Encoder
	table   *QTable
	rewards *RewardComputer
	rng     *sim.RNG

	iter    int
	frozen  bool
	pending map[int]pendingDecision // per accelerator tile ID

	// Decision counters for the Figure-7 breakdown.
	decisions [soc.NumModes]int64
}

type pendingDecision struct {
	state State
	mode  soc.Mode
}

// New creates an agent from the configuration.
func New(cfg Config) *Cohmeleon {
	if cfg.Epsilon0 < 0 || cfg.Epsilon0 > 1 || cfg.Alpha0 < 0 || cfg.Alpha0 > 1 {
		panic(fmt.Sprintf("core: ε0=%g α0=%g outside [0,1]", cfg.Epsilon0, cfg.Alpha0))
	}
	if cfg.DecayIterations < 1 {
		panic("core: DecayIterations must be ≥ 1")
	}
	enc := cfg.Encoder
	if enc == nil {
		enc = NewEncoder()
	}
	c := &Cohmeleon{
		cfg:     cfg,
		enc:     enc,
		table:   NewQTable(),
		rewards: NewRewardComputer(cfg.Weights),
		rng:     sim.NewRNG(cfg.Seed ^ 0xc0de1e0f),
		pending: make(map[int]pendingDecision),
	}
	c.rewards.UseTrueDDR(cfg.TrueDDRReward)
	return c
}

// Name implements esp.Policy.
func (c *Cohmeleon) Name() string { return "cohmeleon" }

// OverheadCycles implements esp.Policy.
func (c *Cohmeleon) OverheadCycles() sim.Cycles { return c.cfg.OverheadCycles }

// decayFactor is the remaining fraction of ε0/α0 at the current
// iteration: 1 at iteration 0, 0 from DecayIterations on. With NoDecay
// the factor stays 1 forever.
func (c *Cohmeleon) decayFactor() float64 {
	if c.cfg.NoDecay {
		return 1
	}
	f := 1 - float64(c.iter)/float64(c.cfg.DecayIterations)
	if f < 0 {
		return 0
	}
	return f
}

// Epsilon returns the current exploration rate.
func (c *Cohmeleon) Epsilon() float64 {
	if c.frozen {
		return 0
	}
	return c.cfg.Epsilon0 * c.decayFactor()
}

// Alpha returns the current learning rate.
func (c *Cohmeleon) Alpha() float64 {
	if c.frozen {
		return 0
	}
	return c.cfg.Alpha0 * c.decayFactor()
}

// Decide implements esp.Policy: ε-greedy selection over the Q-table.
func (c *Cohmeleon) Decide(ctx *esp.Context) soc.Mode {
	s := c.enc.Encode(ctx)
	var mode soc.Mode
	if !c.frozen && c.rng.Float64() < c.Epsilon() {
		mode = ctx.Available[c.rng.Intn(len(ctx.Available))]
	} else {
		mode = c.table.Best(s, ctx.Available)
	}
	c.pending[ctx.Acc.ID] = pendingDecision{state: s, mode: mode}
	c.decisions[mode]++
	return mode
}

// Observe implements esp.Policy: compute the reward and update the
// Q-table entry of the recorded (state, action).
func (c *Cohmeleon) Observe(res *esp.Result) {
	pd, ok := c.pending[res.Acc.ID]
	if !ok || pd.mode != res.Mode {
		// Result from a forced-mode invocation or an unmatched decision:
		// nothing to update, but history still accumulates so future
		// rewards are normalized against everything the system has seen.
		c.rewards.Reward(res)
		return
	}
	delete(c.pending, res.Acc.ID)
	reward := c.rewards.Reward(res)
	if alpha := c.Alpha(); alpha > 0 {
		c.table.Update(pd.state, pd.mode, reward, alpha)
	}
}

// EndIteration advances the linear ε/α decay by one training iteration.
func (c *Cohmeleon) EndIteration() { c.iter++ }

// Iteration returns the number of completed training iterations.
func (c *Cohmeleon) Iteration() int { return c.iter }

// Freeze stops exploration and learning (evaluation mode).
func (c *Cohmeleon) Freeze() { c.frozen = true }

// Unfreeze resumes training.
func (c *Cohmeleon) Unfreeze() { c.frozen = false }

// Frozen reports whether the agent is in evaluation mode.
func (c *Cohmeleon) Frozen() bool { return c.frozen }

// Table exposes the Q-table (reports, checkpoints, tests).
func (c *Cohmeleon) Table() *QTable { return c.table }

// SetTable replaces the Q-table (restoring a checkpoint).
func (c *Cohmeleon) SetTable(t *QTable) { c.table = t }

// Decisions returns how many times each mode has been selected.
func (c *Cohmeleon) Decisions() [soc.NumModes]int64 { return c.decisions }

// ResetDecisions clears the selection counters (e.g. before an
// evaluation pass whose breakdown will be reported).
func (c *Cohmeleon) ResetDecisions() { c.decisions = [soc.NumModes]int64{} }
