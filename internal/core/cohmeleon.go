package core

import (
	"fmt"

	"cohmeleon/internal/esp"
	"cohmeleon/internal/learn"
	"cohmeleon/internal/policy"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
)

// Config parameterizes a Cohmeleon agent. The zero value is not valid;
// use DefaultConfig as a base and Validate to check a modified copy.
type Config struct {
	// Weights are the reward coefficients (x, y, z).
	Weights RewardWeights
	// Epsilon0 is the initial exploration rate (paper: 0.5).
	Epsilon0 float64
	// Alpha0 is the initial learning rate (paper: 0.25).
	Alpha0 float64
	// DecayIterations is the training-iteration count over which the
	// schedule decays ε and α (to zero for the default linear schedule).
	DecayIterations int
	// OverheadCycles is the CPU cost charged per invocation for status
	// tracking, value-table lookup and bookkeeping.
	OverheadCycles sim.Cycles
	// Seed drives the learner's exploration draws.
	Seed uint64
	// Learner selects the algorithm seam by registry name; empty means
	// the paper's tabular Q-learning ("q"). See learn.AlgorithmNames.
	Learner string
	// Schedule selects the ε/α trajectory by registry name; empty means
	// the paper's linear decay ("linear"). See learn.ScheduleNames.
	Schedule string
	// Featurizer maps contexts to states; nil means the full Table-3
	// five-attribute encoder (set an ablated encoder for the
	// state-ablation study).
	Featurizer learn.Featurizer
	// TrueDDRReward feeds the reward the simulator's ground-truth
	// off-chip counts instead of the monitor approximation — the
	// attribution ablation.
	TrueDDRReward bool
	// FineGrain offers the learner the fine-grain (hot+cold) split
	// actions in addition to the uniform modes, for invocations whose
	// footprint exceeds the private-cache size (smaller buffers have no
	// cold remainder worth specializing). Off by default; the default
	// mode-only agent is byte-identical to the pre-action-space one.
	FineGrain bool
}

// DefaultConfig returns the paper's training setup: ε0 = 0.5, α0 = 0.25
// decaying over 10 iterations, reward weights (67.5, 7.5, 25), and the
// default learner stack (Table-3 featurizer, tabular Q, linear decay).
func DefaultConfig() Config {
	return Config{
		Weights:         DefaultWeights(),
		Epsilon0:        0.5,
		Alpha0:          0.25,
		DecayIterations: 10,
		OverheadCycles:  policy.CohmeleonOverheadCycles,
		Seed:            1,
	}
}

// validateBasics checks everything except the learner-stack names,
// which New validates as a side effect of constructing the seams (so
// an agent build never allocates throwaway value tables just to check
// a registry name).
func (cfg Config) validateBasics() error {
	if cfg.Epsilon0 < 0 || cfg.Epsilon0 > 1 || cfg.Alpha0 < 0 || cfg.Alpha0 > 1 {
		return fmt.Errorf("core: ε0=%g α0=%g outside [0,1]", cfg.Epsilon0, cfg.Alpha0)
	}
	if cfg.DecayIterations < 1 {
		return fmt.Errorf("core: DecayIterations %d must be ≥ 1", cfg.DecayIterations)
	}
	if cfg.OverheadCycles < 0 {
		return fmt.Errorf("core: OverheadCycles %d must be ≥ 0", cfg.OverheadCycles)
	}
	if err := cfg.Weights.Validate(); err != nil {
		return err
	}
	if cfg.Featurizer != nil && cfg.Featurizer.NumStates() > learn.NumStates {
		return fmt.Errorf("core: featurizer %q spans %d states, the value tables hold %d",
			cfg.Featurizer.Name(), cfg.Featurizer.NumStates(), learn.NumStates)
	}
	return nil
}

// Validate reports configuration errors before an agent is built:
// rates outside [0, 1], a degenerate decay horizon, non-positive reward
// weights, an oversized featurizer, or unknown learner/schedule names.
func (cfg Config) Validate() error {
	if err := cfg.validateBasics(); err != nil {
		return err
	}
	if _, err := learn.NewAlgorithm(cfg.Learner); err != nil {
		return err
	}
	if _, err := learn.NewSchedule(cfg.Schedule, learn.ScheduleParams{
		Epsilon0: cfg.Epsilon0, Alpha0: cfg.Alpha0, DecayIterations: cfg.DecayIterations,
	}); err != nil {
		return err
	}
	return nil
}

// Cohmeleon is the learning coherence policy (esp.Policy): a thin
// composition of the three learn seams — a Featurizer senses the state,
// an Algorithm decides a mode and learns from each invocation's reward,
// and a Schedule drives the per-iteration ε/α trajectories. Training
// proceeds in iterations (whole application runs); call EndIteration
// after each to advance the schedule, and Freeze to evaluate the
// learned policy without exploration or updates.
type Cohmeleon struct {
	cfg     Config
	name    string
	feat    learn.Featurizer
	alg     learn.Algorithm
	sched   learn.Schedule
	rewards *RewardComputer
	rng     *sim.RNG

	iter    int
	frozen  bool
	pending map[int]pendingDecision // per accelerator tile ID

	// actScratch is the reused offered-action list (one decision at a
	// time per agent; Decide never yields).
	actScratch []soc.Action

	// Decision counters for the Figure-7 breakdown.
	decisions [soc.NumActions]int64
}

type pendingDecision struct {
	state  learn.State
	action soc.Action
}

// New creates an agent from the configuration.
func New(cfg Config) (*Cohmeleon, error) {
	if err := cfg.validateBasics(); err != nil {
		return nil, err
	}
	feat := cfg.Featurizer
	if feat == nil {
		feat = learn.NewEncoder()
	}
	alg, err := learn.NewAlgorithm(cfg.Learner)
	if err != nil {
		return nil, err
	}
	sched, err := learn.NewSchedule(cfg.Schedule, learn.ScheduleParams{
		Epsilon0: cfg.Epsilon0, Alpha0: cfg.Alpha0, DecayIterations: cfg.DecayIterations,
	})
	if err != nil {
		return nil, err
	}
	rewards, err := NewRewardComputer(cfg.Weights)
	if err != nil {
		return nil, err
	}
	name := "cohmeleon"
	if alg.Name() != learn.DefaultAlgorithm || sched.Name() != learn.DefaultSchedule {
		name = fmt.Sprintf("cohmeleon-%s-%s", alg.Name(), sched.Name())
	}
	c := &Cohmeleon{
		cfg:        cfg,
		name:       name,
		feat:       feat,
		alg:        alg,
		sched:      sched,
		rewards:    rewards,
		rng:        sim.NewRNG(cfg.Seed ^ 0xc0de1e0f),
		pending:    make(map[int]pendingDecision),
		actScratch: make([]soc.Action, 0, soc.NumActions),
	}
	c.rewards.UseTrueDDR(cfg.TrueDDRReward)
	return c, nil
}

// Name implements esp.Policy: "cohmeleon" for the paper's default
// stack, "cohmeleon-<algorithm>-<schedule>" for any other combination
// so comparison reports stay unambiguous.
func (c *Cohmeleon) Name() string { return c.name }

// OverheadCycles implements esp.Policy.
func (c *Cohmeleon) OverheadCycles() sim.Cycles { return c.cfg.OverheadCycles }

// Epsilon returns the current exploration rate.
func (c *Cohmeleon) Epsilon() float64 {
	if c.frozen {
		return 0
	}
	return c.sched.Epsilon(c.iter)
}

// Alpha returns the current learning rate.
func (c *Cohmeleon) Alpha() float64 {
	if c.frozen {
		return 0
	}
	return c.sched.Alpha(c.iter)
}

// availableActions assembles the offered action list: the uniform
// action of every available mode (in ctx order — a numeric prefix of
// the action space, so a mode-only agent indexes and draws exactly as
// the pre-action-space one did), plus, when fine-grain is enabled and
// the footprint overflows the private cache, every ordered (hot, cold)
// pair of distinct available modes.
func (c *Cohmeleon) availableActions(ctx *esp.Context) []soc.Action {
	acts := c.actScratch[:0]
	for _, m := range ctx.Available {
		acts = append(acts, soc.ModeAction(m))
	}
	if c.cfg.FineGrain && ctx.FootprintBytes > ctx.L2Bytes && len(ctx.Available) > 1 {
		for _, hot := range ctx.Available {
			for _, cold := range ctx.Available {
				if hot != cold {
					acts = append(acts, soc.SplitAction(hot, cold))
				}
			}
		}
	}
	c.actScratch = acts
	return acts
}

// DecideAction implements esp.ActionPolicy: featurize the context, then
// let the algorithm select over the offered actions. Frozen agents
// exploit greedily without consuming RNG draws, so a train/test/train
// sequence sees the same exploration stream as uninterrupted training.
func (c *Cohmeleon) DecideAction(ctx *esp.Context) soc.Action {
	s := c.feat.Featurize(ctx)
	avail := c.availableActions(ctx)
	var act soc.Action
	if c.frozen {
		act = c.alg.Exploit(s, avail)
	} else {
		act = c.alg.Decide(c.rng, s, avail, c.sched.Epsilon(c.iter))
	}
	c.pending[ctx.Acc.ID] = pendingDecision{state: s, action: act}
	c.decisions[act]++
	return act
}

// Decide implements esp.Policy for mode-only callers: the decided
// action's hot-region mode (identical to the action for uniform
// decisions; the ESP API itself routes through DecideAction).
func (c *Cohmeleon) Decide(ctx *esp.Context) soc.Mode {
	return c.DecideAction(ctx).Hot()
}

// Observe implements esp.Policy: compute the reward and hand it to the
// algorithm for the recorded (state, action).
func (c *Cohmeleon) Observe(res *esp.Result) {
	pd, ok := c.pending[res.Acc.ID]
	if !ok || pd.action != res.Action {
		// Result from a forced-mode invocation or an unmatched decision:
		// nothing to update, but history still accumulates so future
		// rewards are normalized against everything the system has seen.
		c.rewards.Reward(res)
		return
	}
	delete(c.pending, res.Acc.ID)
	reward := c.rewards.Reward(res)
	if alpha := c.Alpha(); alpha > 0 {
		c.alg.Update(c.rng, pd.state, pd.action, reward, alpha)
	}
}

// EndIteration advances the ε/α schedule by one training iteration.
func (c *Cohmeleon) EndIteration() { c.iter++ }

// Iteration returns the number of completed training iterations.
func (c *Cohmeleon) Iteration() int { return c.iter }

// Freeze stops exploration and learning (evaluation mode).
func (c *Cohmeleon) Freeze() { c.frozen = true }

// Unfreeze resumes training.
func (c *Cohmeleon) Unfreeze() { c.frozen = false }

// Frozen reports whether the agent is in evaluation mode.
func (c *Cohmeleon) Frozen() bool { return c.frozen }

// Featurizer exposes the state-encoding seam.
func (c *Cohmeleon) Featurizer() learn.Featurizer { return c.feat }

// Algorithm exposes the decide/update seam.
func (c *Cohmeleon) Algorithm() learn.Algorithm { return c.alg }

// Schedule exposes the ε/α-trajectory seam.
func (c *Cohmeleon) Schedule() learn.Schedule { return c.sched }

// Table exposes the algorithm's primary value table (reports,
// checkpoints, the sweep's merge). Multi-table algorithms expose the
// rest through LearnerState.
func (c *Cohmeleon) Table() *QTable { return c.alg.Tables()[0].Table }

// SetTable replaces the algorithm's primary value table (restoring a
// checkpoint); secondary tables reset.
func (c *Cohmeleon) SetTable(t *QTable) { c.alg.SetPrimary(t) }

// LearnerState snapshots the full algorithm state for the versioned
// persistence codec (learn.SaveStateFile).
func (c *Cohmeleon) LearnerState() *learn.TabularState { return learn.Snapshot(c.alg) }

// SetLearnerState replaces the whole algorithm from a persisted
// snapshot — unlike SetTable this restores every table of a
// multi-table algorithm, and the agent adopts the snapshot's algorithm
// even if it differs from the configured one (the transfer workflow
// evaluates whatever was trained).
func (c *Cohmeleon) SetLearnerState(st *learn.TabularState) error {
	alg, err := learn.Restore(st)
	if err != nil {
		return err
	}
	c.alg = alg
	if alg.Name() != learn.DefaultAlgorithm || c.sched.Name() != learn.DefaultSchedule {
		c.name = fmt.Sprintf("cohmeleon-%s-%s", alg.Name(), c.sched.Name())
	} else {
		c.name = "cohmeleon"
	}
	return nil
}

// Decisions returns how many times each mode has been selected; a
// fine-grain split counts towards its hot-region mode, keeping the
// Figure-7 breakdown shape stable.
func (c *Cohmeleon) Decisions() [soc.NumModes]int64 {
	var out [soc.NumModes]int64
	for a, n := range c.decisions {
		out[soc.Action(a).Hot()] += n
	}
	return out
}

// ActionDecisions returns the selection counters over the full
// fine-grain action space.
func (c *Cohmeleon) ActionDecisions() [soc.NumActions]int64 { return c.decisions }

// ResetDecisions clears the selection counters (e.g. before an
// evaluation pass whose breakdown will be reported).
func (c *Cohmeleon) ResetDecisions() { c.decisions = [soc.NumActions]int64{} }
