package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"

	"cohmeleon/internal/soc"
)

// Q-table persistence. A deployment trains once and then ships the
// learned table (or keeps refining it across reboots); these helpers
// serialize the table with integrity checks so a table trained for one
// mode/state geometry is never loaded into another.

// tableImage is the serialized form.
type tableImage struct {
	Version int
	States  int
	Modes   int
	Q       [][]float64
	Visits  [][]int64
}

const tableVersion = 1

// Encode serializes the table.
func (t *QTable) Encode(w io.Writer) error {
	img := tableImage{
		Version: tableVersion,
		States:  NumStates,
		Modes:   int(soc.NumModes),
		Q:       make([][]float64, NumStates),
		Visits:  make([][]int64, NumStates),
	}
	for s := 0; s < NumStates; s++ {
		img.Q[s] = append([]float64(nil), t.q[s][:]...)
		img.Visits[s] = append([]int64(nil), t.visits[s][:]...)
	}
	if err := gob.NewEncoder(w).Encode(&img); err != nil {
		return fmt.Errorf("core: encoding Q-table: %w", err)
	}
	return nil
}

// DecodeTable deserializes a table written by Encode. The declared
// geometry is only a claim the encoder made about itself: a truncated
// or corrupted file can declare the right States/Modes yet carry short
// (or missing) slices, so the actual slice lengths are validated before
// any indexing, and every cell is checked for values no training run
// can produce (NaN/Inf rewards, negative visit counts).
func DecodeTable(r io.Reader) (*QTable, error) {
	var img tableImage
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("core: decoding Q-table: %w", err)
	}
	if img.Version != tableVersion {
		return nil, fmt.Errorf("core: Q-table version %d, want %d", img.Version, tableVersion)
	}
	if img.States != NumStates || img.Modes != int(soc.NumModes) {
		return nil, fmt.Errorf("core: Q-table geometry %dx%d, want %dx%d",
			img.States, img.Modes, NumStates, soc.NumModes)
	}
	if len(img.Q) != NumStates || len(img.Visits) != NumStates {
		return nil, fmt.Errorf("core: truncated Q-table: %d Q rows and %d visit rows, want %d",
			len(img.Q), len(img.Visits), NumStates)
	}
	t := NewQTable()
	for s := 0; s < NumStates; s++ {
		if len(img.Q[s]) != int(soc.NumModes) || len(img.Visits[s]) != int(soc.NumModes) {
			return nil, fmt.Errorf("core: truncated Q-table row %d", s)
		}
		for m, q := range img.Q[s] {
			if math.IsNaN(q) || math.IsInf(q, 0) {
				return nil, fmt.Errorf("core: corrupt Q-table: Q[%d][%d] = %g", s, m, q)
			}
		}
		for m, v := range img.Visits[s] {
			if v < 0 {
				return nil, fmt.Errorf("core: corrupt Q-table: visits[%d][%d] = %d", s, m, v)
			}
		}
		copy(t.q[s][:], img.Q[s])
		copy(t.visits[s][:], img.Visits[s])
	}
	return t, nil
}

// SaveFile writes the table to a file.
func (t *QTable) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.Encode(f)
}

// LoadTableFile reads a table from a file.
func LoadTableFile(path string) (*QTable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeTable(f)
}
