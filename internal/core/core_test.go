package core

import (
	"math"
	"testing"
	"testing/quick"

	"cohmeleon/internal/esp"
	"cohmeleon/internal/learn"
	"cohmeleon/internal/policy"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
)

// ctxWith builds a minimal context with the given sensed values.
func ctxWith(fullyCoh int, nonCoh, toLLC, tileFoot float64, accFoot int64) *esp.Context {
	return &esp.Context{
		Acc:                &soc.AccTile{ID: 0},
		Available:          []soc.Mode{soc.NonCohDMA, soc.LLCCohDMA, soc.CohDMA, soc.FullyCoh},
		FullyCohActive:     fullyCoh,
		NonCohPerTile:      nonCoh,
		ToLLCPerTile:       toLLC,
		TileFootprintBytes: tileFoot,
		FootprintBytes:     accFoot,
		L2Bytes:            32 << 10,
		LLCSliceBytes:      256 << 10,
		TotalLLCBytes:      1 << 20,
	}
}

// mustNew builds an agent from a config that must be valid.
func mustNew(t *testing.T, cfg Config) *Cohmeleon {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

// mustRewards builds a computer from weights that must be valid.
func mustRewards(t *testing.T, w RewardWeights) *RewardComputer {
	t.Helper()
	rc, err := NewRewardComputer(w)
	if err != nil {
		t.Fatalf("NewRewardComputer: %v", err)
	}
	return rc
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"epsilon-above-one", func(c *Config) { c.Epsilon0 = 1.5 }},
		{"negative-alpha", func(c *Config) { c.Alpha0 = -0.1 }},
		{"zero-decay", func(c *Config) { c.DecayIterations = 0 }},
		{"negative-overhead", func(c *Config) { c.OverheadCycles = -1 }},
		{"zero-weights", func(c *Config) { c.Weights = RewardWeights{} }},
		{"unknown-learner", func(c *Config) { c.Learner = "sarsa" }},
		{"unknown-schedule", func(c *Config) { c.Schedule = "cosine" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("invalid config validated")
			}
			if _, err := New(cfg); err == nil {
				t.Fatal("New accepted an invalid config")
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

// wideFeaturizer claims a state space larger than the value tables.
type wideFeaturizer struct{}

func (wideFeaturizer) Name() string                       { return "wide" }
func (wideFeaturizer) NumStates() int                     { return 4 * NumStates }
func (wideFeaturizer) Featurize(*esp.Context) learn.State { return 0 }

func TestConfigValidateRejectsOversizedFeaturizer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Featurizer = wideFeaturizer{}
	if err := cfg.Validate(); err == nil {
		t.Fatal("featurizer wider than the value tables validated")
	}
	// An ablated encoder (same state space) stays valid.
	cfg.Featurizer = NewAblatedEncoder(AttrAccFootprint)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("ablated encoder rejected: %v", err)
	}
}

func TestSetLearnerStateRestoresEveryTable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Learner = "double-q"
	trained := mustNew(t, cfg)
	ctx := ctxWith(0, 0, 0, 0, 16<<10)
	for i := 0; i < 30; i++ {
		mode := trained.Decide(ctx)
		trained.Observe(&esp.Result{
			Acc: ctx.Acc, Mode: mode, FootprintBytes: 16 << 10,
			ExecCycles: sim.Cycles(1000 + i), ActiveCycles: 900, CommCycles: 100, OffChipApprox: 50,
		})
	}
	st := trained.LearnerState()
	if len(st.Tables) != 2 {
		t.Fatalf("double-q snapshot has %d tables", len(st.Tables))
	}

	restored := mustNew(t, DefaultConfig()) // default "q" config adopts the snapshot's algorithm
	if err := restored.SetLearnerState(st); err != nil {
		t.Fatal(err)
	}
	if restored.Algorithm().Name() != "double-q" {
		t.Fatalf("restored algorithm = %q", restored.Algorithm().Name())
	}
	if restored.Name() == "cohmeleon" {
		t.Fatal("restored non-default stack kept the default name")
	}
	trained.Freeze()
	restored.Freeze()
	if got, want := restored.Decide(ctx), trained.Decide(ctx); got != want {
		t.Fatalf("restored agent decides %v, trained %v", got, want)
	}
	if err := restored.SetLearnerState(&learn.TabularState{Algo: "nope"}); err == nil {
		t.Fatal("bogus state accepted")
	}
}

func TestNewBuildsEveryRegisteredStack(t *testing.T) {
	for _, algo := range learn.AlgorithmNames() {
		for _, sched := range learn.ScheduleNames() {
			cfg := DefaultConfig()
			cfg.Learner = algo
			cfg.Schedule = sched
			c := mustNew(t, cfg)
			if c.Algorithm().Name() != algo || c.Schedule().Name() != sched {
				t.Fatalf("stack (%s, %s) built as (%s, %s)",
					algo, sched, c.Algorithm().Name(), c.Schedule().Name())
			}
			if algo == learn.DefaultAlgorithm && sched == learn.DefaultSchedule {
				if c.Name() != "cohmeleon" {
					t.Fatalf("default stack named %q", c.Name())
				}
			} else if c.Name() == "cohmeleon" {
				t.Fatalf("stack (%s, %s) shadows the default name", algo, sched)
			}
		}
	}
}

func TestWeightsNormalized(t *testing.T) {
	w, err := RewardWeights{Exec: 67.5, Comm: 7.5, Mem: 25}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.Exec+w.Comm+w.Mem-1) > 1e-12 {
		t.Fatal("normalization broken")
	}
	if math.Abs(w.Exec-0.675) > 1e-12 {
		t.Fatalf("Exec = %g", w.Exec)
	}
	def := DefaultWeights()
	if math.Abs(def.Exec-0.675) > 1e-9 || math.Abs(def.Mem-0.25) > 1e-9 {
		t.Fatalf("DefaultWeights = %+v", def)
	}
}

func TestWeightsNormalizedRejectsNonPositive(t *testing.T) {
	for _, w := range []RewardWeights{{}, {Exec: -1, Comm: 0.5, Mem: 0.5}} {
		if _, err := w.Normalized(); err == nil {
			t.Fatalf("weights %+v normalized without error", w)
		}
		if err := w.Validate(); err == nil {
			t.Fatalf("weights %+v validated", w)
		}
		if _, err := NewRewardComputer(w); err == nil {
			t.Fatalf("NewRewardComputer accepted %+v", w)
		}
	}
	// String must not panic on degenerate weights.
	if s := (RewardWeights{}).String(); s == "" {
		t.Fatal("String on zero weights is empty")
	}
}

func TestRewardFirstInvocationIsMaximal(t *testing.T) {
	rc := mustRewards(t, RewardWeights{Exec: 1, Comm: 1, Mem: 2})
	res := &esp.Result{
		Acc: &soc.AccTile{ID: 1}, FootprintBytes: 1000,
		ExecCycles: 5000, ActiveCycles: 4000, CommCycles: 2000, OffChipApprox: 100,
	}
	r := rc.Reward(res)
	if math.Abs(r-1) > 1e-12 {
		t.Fatalf("first reward = %g, want 1 (all components maximal)", r)
	}
}

func TestRewardPenalizesWorseExec(t *testing.T) {
	rc := mustRewards(t, RewardWeights{Exec: 1, Comm: 0, Mem: 0})
	base := &esp.Result{
		Acc: &soc.AccTile{ID: 1}, FootprintBytes: 1000,
		ExecCycles: 1000, ActiveCycles: 800, CommCycles: 100, OffChipApprox: 0,
	}
	rc.Reward(base)
	worse := &esp.Result{
		Acc: &soc.AccTile{ID: 1}, FootprintBytes: 1000,
		ExecCycles: 2000, ActiveCycles: 1600, CommCycles: 200, OffChipApprox: 0,
	}
	r := rc.Reward(worse)
	if math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("reward = %g, want 0.5 (twice the best exec)", r)
	}
}

func TestRewardMemComponentRange(t *testing.T) {
	rc := mustRewards(t, RewardWeights{Exec: 0.0001, Comm: 0.0001, Mem: 1})
	mk := func(mem float64) *esp.Result {
		return &esp.Result{
			Acc: &soc.AccTile{ID: 2}, FootprintBytes: 1000,
			ExecCycles: 1000, ActiveCycles: 1000, CommCycles: 100, OffChipApprox: mem,
		}
	}
	rc.Reward(mk(0))    // establishes min
	rc.Reward(mk(1000)) // establishes max
	_, _, low := rc.Components(mk(1000))
	if low != 0 {
		t.Fatalf("worst mem Rmem = %g, want 0", low)
	}
	_, _, high := rc.Components(mk(0))
	if high != 1 {
		t.Fatalf("best mem Rmem = %g, want 1", high)
	}
	_, _, mid := rc.Components(mk(500))
	if math.Abs(mid-0.5) > 1e-12 {
		t.Fatalf("middle Rmem = %g, want 0.5", mid)
	}
}

func TestRewardZeroCommGetsFullComponent(t *testing.T) {
	rc := mustRewards(t, RewardWeights{Exec: 0, Comm: 1, Mem: 0})
	res := &esp.Result{
		Acc: &soc.AccTile{ID: 3}, FootprintBytes: 1000,
		ExecCycles: 1000, ActiveCycles: 1000, CommCycles: 0, OffChipApprox: 0,
	}
	if r := rc.Reward(res); r != 1 {
		t.Fatalf("zero-comm reward = %g, want 1", r)
	}
}

func TestRewardHistoriesIndependentPerAccelerator(t *testing.T) {
	rc := mustRewards(t, RewardWeights{Exec: 1, Comm: 0, Mem: 0})
	fast := &esp.Result{Acc: &soc.AccTile{ID: 1}, FootprintBytes: 1000,
		ExecCycles: 100, ActiveCycles: 100, CommCycles: 10}
	slow := &esp.Result{Acc: &soc.AccTile{ID: 2}, FootprintBytes: 1000,
		ExecCycles: 10000, ActiveCycles: 100, CommCycles: 10}
	rc.Reward(fast)
	if r := rc.Reward(slow); math.Abs(r-1) > 1e-12 {
		t.Fatalf("different accelerator shares history: %g", r)
	}
}

// Property: rewards always lie in [0, 1] for non-negative inputs.
func TestRewardBoundedProperty(t *testing.T) {
	f := func(execs []uint16) bool {
		rc, err := NewRewardComputer(DefaultWeights())
		if err != nil {
			return false
		}
		for i, e := range execs {
			res := &esp.Result{
				Acc:            &soc.AccTile{ID: int(e % 3)},
				FootprintBytes: 1000,
				ExecCycles:     sim64(int64(e) + 1),
				ActiveCycles:   sim64(int64(e) + 1),
				CommCycles:     sim64(int64(e) / 2),
				OffChipApprox:  float64(i * 10),
			}
			r := rc.Reward(res)
			if r < 0 || r > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAgentDecaySchedule(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DecayIterations = 10
	c := mustNew(t, cfg)
	if c.Epsilon() != 0.5 || c.Alpha() != 0.25 {
		t.Fatalf("initial ε=%g α=%g", c.Epsilon(), c.Alpha())
	}
	for i := 0; i < 5; i++ {
		c.EndIteration()
	}
	if math.Abs(c.Epsilon()-0.25) > 1e-12 || math.Abs(c.Alpha()-0.125) > 1e-12 {
		t.Fatalf("halfway ε=%g α=%g", c.Epsilon(), c.Alpha())
	}
	for i := 0; i < 10; i++ {
		c.EndIteration()
	}
	if c.Epsilon() != 0 || c.Alpha() != 0 {
		t.Fatalf("post-decay ε=%g α=%g", c.Epsilon(), c.Alpha())
	}
	if c.Iteration() != 15 {
		t.Fatalf("Iteration = %d", c.Iteration())
	}
}

func TestAgentFreeze(t *testing.T) {
	c := mustNew(t, DefaultConfig())
	c.Freeze()
	if c.Epsilon() != 0 || c.Alpha() != 0 || !c.Frozen() {
		t.Fatal("freeze should zero ε and α")
	}
	c.Unfreeze()
	if c.Epsilon() == 0 {
		t.Fatal("unfreeze should restore exploration")
	}
}

func TestAgentLearnsFromObservation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epsilon0 = 0 // pure exploitation: deterministic decisions
	c := mustNew(t, cfg)
	ctx := ctxWith(0, 0, 0, 0, 16<<10)
	mode := c.Decide(ctx)
	if mode != soc.NonCohDMA {
		t.Fatalf("untrained agent chose %v, want first mode", mode)
	}
	res := &esp.Result{
		Acc: ctx.Acc, Mode: mode, FootprintBytes: 16 << 10,
		ExecCycles: 1000, ActiveCycles: 900, CommCycles: 100, OffChipApprox: 50,
	}
	c.Observe(res)
	s := NewEncoder().Encode(ctx)
	if c.Table().Q(s, soc.ModeAction(mode)) <= 0 {
		t.Fatal("observation did not update the Q-table")
	}
}

func TestAgentChoosesHigherValuedMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epsilon0 = 0
	c := mustNew(t, cfg)
	ctx := ctxWith(0, 0, 0, 0, 16<<10)
	s := NewEncoder().Encode(ctx)
	c.Table().Update(s, soc.ModeAction(soc.FullyCoh), 1.0, 1.0)
	if got := c.Decide(ctx); got != soc.FullyCoh {
		t.Fatalf("Decide = %v, want trained FullyCoh", got)
	}
}

func TestAgentRespectsAvailability(t *testing.T) {
	for _, algo := range learn.AlgorithmNames() {
		cfg := DefaultConfig()
		cfg.Epsilon0 = 1 // always explore
		cfg.Learner = algo
		c := mustNew(t, cfg)
		ctx := ctxWith(0, 0, 0, 0, 16<<10)
		ctx.Available = []soc.Mode{soc.NonCohDMA, soc.LLCCohDMA, soc.CohDMA}
		for i := 0; i < 200; i++ {
			if got := c.Decide(ctx); got == soc.FullyCoh {
				t.Fatalf("%s explored into unavailable mode", algo)
			}
		}
	}
}

func TestAgentFrozenDoesNotLearn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epsilon0 = 0
	c := mustNew(t, cfg)
	c.Freeze()
	ctx := ctxWith(0, 0, 0, 0, 16<<10)
	mode := c.Decide(ctx)
	res := &esp.Result{
		Acc: ctx.Acc, Mode: mode, FootprintBytes: 16 << 10,
		ExecCycles: 1000, ActiveCycles: 900, CommCycles: 100,
	}
	c.Observe(res)
	if c.Table().TotalVisits() != 0 {
		t.Fatal("frozen agent updated its table")
	}
}

func TestAgentObserveUnmatchedResultIsSafe(t *testing.T) {
	c := mustNew(t, DefaultConfig())
	res := &esp.Result{
		Acc: &soc.AccTile{ID: 9}, Mode: soc.CohDMA, FootprintBytes: 1 << 10,
		ExecCycles: 100, ActiveCycles: 90, CommCycles: 10,
	}
	c.Observe(res) // no pending decision: must not panic or update
	if c.Table().TotalVisits() != 0 {
		t.Fatal("unmatched observe updated the table")
	}
}

func TestAgentDecisionCounters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epsilon0 = 0
	c := mustNew(t, cfg)
	ctx := ctxWith(0, 0, 0, 0, 16<<10)
	c.Decide(ctx)
	c.Decide(ctx)
	d := c.Decisions()
	if d[soc.NonCohDMA] != 2 {
		t.Fatalf("decisions = %v", d)
	}
	c.ResetDecisions()
	if c.Decisions()[soc.NonCohDMA] != 0 {
		t.Fatal("ResetDecisions failed")
	}
}

func TestAgentDeterministicPerSeed(t *testing.T) {
	for _, algo := range learn.AlgorithmNames() {
		run := func(seed uint64) []soc.Mode {
			cfg := DefaultConfig()
			cfg.Seed = seed
			cfg.Learner = algo
			c := mustNew(t, cfg)
			ctx := ctxWith(0, 0, 0, 0, 16<<10)
			var out []soc.Mode
			for i := 0; i < 50; i++ {
				out = append(out, c.Decide(ctx))
			}
			return out
		}
		a, b := run(7), run(7)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed diverged", algo)
			}
		}
	}
}

// The composed default stack must make exactly the decisions and
// updates of the pre-refactor monolithic agent: an inline replica of
// the old ε-greedy loop (same RNG seeding, draw order, decay
// arithmetic and update rule) is driven with the same reward sequence
// and must match decision for decision.
func TestDefaultStackMatchesMonolithicReference(t *testing.T) {
	const iters, decisionsPerIter = 6, 40
	cfg := DefaultConfig()
	cfg.DecayIterations = 4
	cfg.Seed = 99
	agent := mustNew(t, cfg)

	refRNG := sim.NewRNG(cfg.Seed ^ 0xc0de1e0f)
	refTable := NewQTable()
	enc := NewEncoder()
	rewardOf := func(i, j int) float64 { return float64((i*decisionsPerIter+j)%17) / 17 }

	for i := 0; i < iters; i++ {
		factor := 1 - float64(i)/float64(cfg.DecayIterations)
		if factor < 0 {
			factor = 0
		}
		for j := 0; j < decisionsPerIter; j++ {
			ctx := ctxWith(j%3, float64(j%2), float64(j%4), float64(j<<12), int64(1+j)<<10)
			got := agent.Decide(ctx)

			s := enc.Encode(ctx)
			// The monolithic agent drew over modes; the composed stack draws
			// over the uniform-action prefix, which has the same length and
			// order, so index draws (and Best tie-breaks) line up exactly.
			var want soc.Action
			if refRNG.Float64() < cfg.Epsilon0*factor {
				want = soc.ModeAction(ctx.Available[refRNG.Intn(len(ctx.Available))])
			} else {
				want = refTable.Best(s, soc.UniformActions[:])
			}
			if soc.ModeAction(got) != want {
				t.Fatalf("iter %d decision %d: agent chose %v, reference %v", i, j, got, want)
			}
			// Feed both learners the identical reward; the agent's is driven
			// through the algorithm seam (a crafted esp.Result cannot pin
			// the reward exactly, as history normalization intervenes).
			if alpha := cfg.Alpha0 * factor; alpha > 0 {
				refTable.Update(s, want, rewardOf(i, j), alpha)
				agent.Algorithm().Update(nil, s, soc.ModeAction(got), rewardOf(i, j), agent.Alpha())
			}
			delete(agent.pending, ctx.Acc.ID)
		}
		agent.EndIteration()
	}
	for s := State(0); s < NumStates; s++ {
		for _, m := range soc.UniformActions {
			if agent.Table().Q(s, m) != refTable.Q(s, m) {
				t.Fatalf("Q(%d,%v) diverged: %g vs %g", s, m, agent.Table().Q(s, m), refTable.Q(s, m))
			}
		}
	}
}

func TestDefaultOverheadMatchesPolicyTable(t *testing.T) {
	if got := DefaultConfig().OverheadCycles; got != policy.CohmeleonOverheadCycles {
		t.Fatalf("DefaultConfig overhead %d != policy table %d", got, policy.CohmeleonOverheadCycles)
	}
}

func sim64(v int64) sim.Cycles { return sim.Cycles(v) }
