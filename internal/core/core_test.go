package core

import (
	"math"
	"testing"
	"testing/quick"

	"cohmeleon/internal/esp"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
)

// ctxWith builds a minimal context with the given sensed values.
func ctxWith(fullyCoh int, nonCoh, toLLC, tileFoot float64, accFoot int64) *esp.Context {
	return &esp.Context{
		Acc:                &soc.AccTile{ID: 0},
		Available:          []soc.Mode{soc.NonCohDMA, soc.LLCCohDMA, soc.CohDMA, soc.FullyCoh},
		FullyCohActive:     fullyCoh,
		NonCohPerTile:      nonCoh,
		ToLLCPerTile:       toLLC,
		TileFootprintBytes: tileFoot,
		FootprintBytes:     accFoot,
		L2Bytes:            32 << 10,
		LLCSliceBytes:      256 << 10,
		TotalLLCBytes:      1 << 20,
	}
}

func TestStateSpaceSize(t *testing.T) {
	if NumStates != 243 {
		t.Fatalf("NumStates = %d, want 243 (3^5)", NumStates)
	}
}

func TestEncodeExtremes(t *testing.T) {
	e := NewEncoder()
	if s := e.Encode(ctxWith(0, 0, 0, 0, 1)); s != 0 {
		t.Fatalf("all-zero state = %d, want 0", s)
	}
	s := e.Encode(ctxWith(5, 5, 5, 10<<20, 10<<20))
	if s != NumStates-1 {
		t.Fatalf("all-max state = %d, want %d", s, NumStates-1)
	}
}

func TestEncodeBuckets(t *testing.T) {
	e := NewEncoder()
	// Footprint buckets at the L2 and LLC-slice thresholds.
	cases := []struct {
		bytes int64
		want  int
	}{
		{16 << 10, 0},  // ≤ L2
		{32 << 10, 0},  // == L2
		{33 << 10, 1},  // ≤ slice
		{256 << 10, 1}, // == slice
		{257 << 10, 2}, // > slice
		{4 << 20, 2},
	}
	for _, c := range cases {
		v := e.Values(ctxWith(0, 0, 0, 0, c.bytes))
		if v[AttrAccFootprint] != c.want {
			t.Errorf("footprint %d bucketed to %d, want %d", c.bytes, v[AttrAccFootprint], c.want)
		}
	}
	// Count buckets round and saturate.
	v := e.Values(ctxWith(0, 0.4, 1.5, 0, 1))
	if v[AttrNonCohPerTile] != 0 || v[AttrToLLCPerTile] != 2 {
		t.Errorf("count buckets: %v", v)
	}
	v = e.Values(ctxWith(7, 0, 0, 0, 1))
	if v[AttrFullyCohAcc] != 2 {
		t.Errorf("fully-coh bucket = %d, want 2 (saturated)", v[AttrFullyCohAcc])
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(raw uint32) bool {
		s := State(raw % NumStates)
		v := Decode(s)
		idx := 0
		for a := Attribute(0); a < NumAttributes; a++ {
			if v[a] < 0 || v[a] >= 3 {
				return false
			}
			idx = idx*3 + v[a]
		}
		return State(idx) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAblatedEncoderPinsAttribute(t *testing.T) {
	e := NewAblatedEncoder(AttrFullyCohAcc)
	a := e.Encode(ctxWith(0, 1, 1, 0, 1))
	b := e.Encode(ctxWith(2, 1, 1, 0, 1))
	if a != b {
		t.Fatal("ablated attribute still distinguishes states")
	}
	full := NewEncoder()
	if full.Encode(ctxWith(0, 1, 1, 0, 1)) == full.Encode(ctxWith(2, 1, 1, 0, 1)) {
		t.Fatal("full encoder should distinguish")
	}
}

func TestAttributeNames(t *testing.T) {
	want := []string{"fully-coh-acc", "non-coh-acc-per-tile", "to-llc-per-tile", "tile-footprint", "acc-footprint"}
	for a := Attribute(0); a < NumAttributes; a++ {
		if a.String() != want[a] {
			t.Errorf("attr %d = %q", a, a.String())
		}
	}
}

func TestQTableUpdateRule(t *testing.T) {
	q := NewQTable()
	q.Update(5, soc.CohDMA, 1.0, 0.25)
	if got := q.Q(5, soc.CohDMA); got != 0.25 {
		t.Fatalf("Q = %g, want 0.25 ((1-α)·0 + α·1)", got)
	}
	q.Update(5, soc.CohDMA, 1.0, 0.25)
	if got := q.Q(5, soc.CohDMA); math.Abs(got-0.4375) > 1e-12 {
		t.Fatalf("Q = %g, want 0.4375", got)
	}
	if q.Visits(5, soc.CohDMA) != 2 {
		t.Fatalf("visits = %d", q.Visits(5, soc.CohDMA))
	}
	if q.TotalVisits() != 2 {
		t.Fatalf("total visits = %d", q.TotalVisits())
	}
}

func TestQTableBestRespectsAvailability(t *testing.T) {
	q := NewQTable()
	q.Update(0, soc.FullyCoh, 1, 1)
	all := []soc.Mode{soc.NonCohDMA, soc.LLCCohDMA, soc.CohDMA, soc.FullyCoh}
	if got := q.Best(0, all); got != soc.FullyCoh {
		t.Fatalf("Best = %v", got)
	}
	noFC := []soc.Mode{soc.NonCohDMA, soc.LLCCohDMA, soc.CohDMA}
	if got := q.Best(0, noFC); got == soc.FullyCoh {
		t.Fatal("Best returned unavailable mode")
	}
}

func TestQTableBestTieBreaksInModeOrder(t *testing.T) {
	q := NewQTable()
	all := []soc.Mode{soc.NonCohDMA, soc.LLCCohDMA, soc.CohDMA, soc.FullyCoh}
	if got := q.Best(7, all); got != soc.NonCohDMA {
		t.Fatalf("untrained Best = %v, want NonCohDMA (first)", got)
	}
}

func TestQTableClone(t *testing.T) {
	q := NewQTable()
	q.Update(1, soc.CohDMA, 1, 0.5)
	c := q.Clone()
	q.Update(1, soc.CohDMA, 0, 1)
	if c.Q(1, soc.CohDMA) != 0.5 {
		t.Fatal("clone aliases original")
	}
}

// Property: Q-values stay within [min(0,R..), max(0,R..)] for rewards in
// [0,1] — the exponential moving average never escapes the reward range.
func TestQValueBoundedProperty(t *testing.T) {
	f := func(rewards []uint8) bool {
		q := NewQTable()
		for _, r := range rewards {
			q.Update(3, soc.LLCCohDMA, float64(r%101)/100, 0.25)
			v := q.Q(3, soc.LLCCohDMA)
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRewardFirstInvocationIsMaximal(t *testing.T) {
	rc := NewRewardComputer(RewardWeights{Exec: 1, Comm: 1, Mem: 2})
	res := &esp.Result{
		Acc: &soc.AccTile{ID: 1}, FootprintBytes: 1000,
		ExecCycles: 5000, ActiveCycles: 4000, CommCycles: 2000, OffChipApprox: 100,
	}
	r := rc.Reward(res)
	if math.Abs(r-1) > 1e-12 {
		t.Fatalf("first reward = %g, want 1 (all components maximal)", r)
	}
}

func TestRewardPenalizesWorseExec(t *testing.T) {
	rc := NewRewardComputer(RewardWeights{Exec: 1, Comm: 0, Mem: 0})
	base := &esp.Result{
		Acc: &soc.AccTile{ID: 1}, FootprintBytes: 1000,
		ExecCycles: 1000, ActiveCycles: 800, CommCycles: 100, OffChipApprox: 0,
	}
	rc.Reward(base)
	worse := &esp.Result{
		Acc: &soc.AccTile{ID: 1}, FootprintBytes: 1000,
		ExecCycles: 2000, ActiveCycles: 1600, CommCycles: 200, OffChipApprox: 0,
	}
	r := rc.Reward(worse)
	if math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("reward = %g, want 0.5 (twice the best exec)", r)
	}
}

func TestRewardMemComponentRange(t *testing.T) {
	rc := NewRewardComputer(RewardWeights{Exec: 0.0001, Comm: 0.0001, Mem: 1})
	mk := func(mem float64) *esp.Result {
		return &esp.Result{
			Acc: &soc.AccTile{ID: 2}, FootprintBytes: 1000,
			ExecCycles: 1000, ActiveCycles: 1000, CommCycles: 100, OffChipApprox: mem,
		}
	}
	rc.Reward(mk(0))    // establishes min
	rc.Reward(mk(1000)) // establishes max
	_, _, low := rc.Components(mk(1000))
	if low != 0 {
		t.Fatalf("worst mem Rmem = %g, want 0", low)
	}
	_, _, high := rc.Components(mk(0))
	if high != 1 {
		t.Fatalf("best mem Rmem = %g, want 1", high)
	}
	_, _, mid := rc.Components(mk(500))
	if math.Abs(mid-0.5) > 1e-12 {
		t.Fatalf("middle Rmem = %g, want 0.5", mid)
	}
}

func TestRewardZeroCommGetsFullComponent(t *testing.T) {
	rc := NewRewardComputer(RewardWeights{Exec: 0, Comm: 1, Mem: 0})
	res := &esp.Result{
		Acc: &soc.AccTile{ID: 3}, FootprintBytes: 1000,
		ExecCycles: 1000, ActiveCycles: 1000, CommCycles: 0, OffChipApprox: 0,
	}
	if r := rc.Reward(res); r != 1 {
		t.Fatalf("zero-comm reward = %g, want 1", r)
	}
}

func TestRewardHistoriesIndependentPerAccelerator(t *testing.T) {
	rc := NewRewardComputer(RewardWeights{Exec: 1, Comm: 0, Mem: 0})
	fast := &esp.Result{Acc: &soc.AccTile{ID: 1}, FootprintBytes: 1000,
		ExecCycles: 100, ActiveCycles: 100, CommCycles: 10}
	slow := &esp.Result{Acc: &soc.AccTile{ID: 2}, FootprintBytes: 1000,
		ExecCycles: 10000, ActiveCycles: 100, CommCycles: 10}
	rc.Reward(fast)
	if r := rc.Reward(slow); math.Abs(r-1) > 1e-12 {
		t.Fatalf("different accelerator shares history: %g", r)
	}
}

func TestWeightsNormalized(t *testing.T) {
	w := RewardWeights{Exec: 67.5, Comm: 7.5, Mem: 25}.Normalized()
	if math.Abs(w.Exec+w.Comm+w.Mem-1) > 1e-12 {
		t.Fatal("normalization broken")
	}
	if math.Abs(w.Exec-0.675) > 1e-12 {
		t.Fatalf("Exec = %g", w.Exec)
	}
	def := DefaultWeights()
	if math.Abs(def.Exec-0.675) > 1e-9 || math.Abs(def.Mem-0.25) > 1e-9 {
		t.Fatalf("DefaultWeights = %+v", def)
	}
}

// Property: rewards always lie in [0, 1] for non-negative inputs.
func TestRewardBoundedProperty(t *testing.T) {
	f := func(execs []uint16) bool {
		rc := NewRewardComputer(DefaultWeights())
		for i, e := range execs {
			res := &esp.Result{
				Acc:            &soc.AccTile{ID: int(e % 3)},
				FootprintBytes: 1000,
				ExecCycles:     sim64(int64(e) + 1),
				ActiveCycles:   sim64(int64(e) + 1),
				CommCycles:     sim64(int64(e) / 2),
				OffChipApprox:  float64(i * 10),
			}
			r := rc.Reward(res)
			if r < 0 || r > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAgentDecaySchedule(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DecayIterations = 10
	c := New(cfg)
	if c.Epsilon() != 0.5 || c.Alpha() != 0.25 {
		t.Fatalf("initial ε=%g α=%g", c.Epsilon(), c.Alpha())
	}
	for i := 0; i < 5; i++ {
		c.EndIteration()
	}
	if math.Abs(c.Epsilon()-0.25) > 1e-12 || math.Abs(c.Alpha()-0.125) > 1e-12 {
		t.Fatalf("halfway ε=%g α=%g", c.Epsilon(), c.Alpha())
	}
	for i := 0; i < 10; i++ {
		c.EndIteration()
	}
	if c.Epsilon() != 0 || c.Alpha() != 0 {
		t.Fatalf("post-decay ε=%g α=%g", c.Epsilon(), c.Alpha())
	}
	if c.Iteration() != 15 {
		t.Fatalf("Iteration = %d", c.Iteration())
	}
}

func TestAgentFreeze(t *testing.T) {
	c := New(DefaultConfig())
	c.Freeze()
	if c.Epsilon() != 0 || c.Alpha() != 0 || !c.Frozen() {
		t.Fatal("freeze should zero ε and α")
	}
	c.Unfreeze()
	if c.Epsilon() == 0 {
		t.Fatal("unfreeze should restore exploration")
	}
}

func TestAgentLearnsFromObservation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epsilon0 = 0 // pure exploitation: deterministic decisions
	c := New(cfg)
	ctx := ctxWith(0, 0, 0, 0, 16<<10)
	mode := c.Decide(ctx)
	if mode != soc.NonCohDMA {
		t.Fatalf("untrained agent chose %v, want first mode", mode)
	}
	res := &esp.Result{
		Acc: ctx.Acc, Mode: mode, FootprintBytes: 16 << 10,
		ExecCycles: 1000, ActiveCycles: 900, CommCycles: 100, OffChipApprox: 50,
	}
	c.Observe(res)
	s := NewEncoder().Encode(ctx)
	if c.Table().Q(s, mode) <= 0 {
		t.Fatal("observation did not update the Q-table")
	}
}

func TestAgentChoosesHigherValuedMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epsilon0 = 0
	c := New(cfg)
	ctx := ctxWith(0, 0, 0, 0, 16<<10)
	s := NewEncoder().Encode(ctx)
	c.Table().Update(s, soc.FullyCoh, 1.0, 1.0)
	if got := c.Decide(ctx); got != soc.FullyCoh {
		t.Fatalf("Decide = %v, want trained FullyCoh", got)
	}
}

func TestAgentRespectsAvailability(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epsilon0 = 1 // always explore
	c := New(cfg)
	ctx := ctxWith(0, 0, 0, 0, 16<<10)
	ctx.Available = []soc.Mode{soc.NonCohDMA, soc.LLCCohDMA, soc.CohDMA}
	for i := 0; i < 200; i++ {
		if got := c.Decide(ctx); got == soc.FullyCoh {
			t.Fatal("explored into unavailable mode")
		}
	}
}

func TestAgentFrozenDoesNotLearn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epsilon0 = 0
	c := New(cfg)
	c.Freeze()
	ctx := ctxWith(0, 0, 0, 0, 16<<10)
	mode := c.Decide(ctx)
	res := &esp.Result{
		Acc: ctx.Acc, Mode: mode, FootprintBytes: 16 << 10,
		ExecCycles: 1000, ActiveCycles: 900, CommCycles: 100,
	}
	c.Observe(res)
	if c.Table().TotalVisits() != 0 {
		t.Fatal("frozen agent updated its table")
	}
}

func TestAgentObserveUnmatchedResultIsSafe(t *testing.T) {
	c := New(DefaultConfig())
	res := &esp.Result{
		Acc: &soc.AccTile{ID: 9}, Mode: soc.CohDMA, FootprintBytes: 1 << 10,
		ExecCycles: 100, ActiveCycles: 90, CommCycles: 10,
	}
	c.Observe(res) // no pending decision: must not panic or update
	if c.Table().TotalVisits() != 0 {
		t.Fatal("unmatched observe updated the table")
	}
}

func TestAgentDecisionCounters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epsilon0 = 0
	c := New(cfg)
	ctx := ctxWith(0, 0, 0, 0, 16<<10)
	c.Decide(ctx)
	c.Decide(ctx)
	d := c.Decisions()
	if d[soc.NonCohDMA] != 2 {
		t.Fatalf("decisions = %v", d)
	}
	c.ResetDecisions()
	if c.Decisions()[soc.NonCohDMA] != 0 {
		t.Fatal("ResetDecisions failed")
	}
}

func TestAgentDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []soc.Mode {
		cfg := DefaultConfig()
		cfg.Seed = seed
		c := New(cfg)
		ctx := ctxWith(0, 0, 0, 0, 16<<10)
		var out []soc.Mode
		for i := 0; i < 50; i++ {
			out = append(out, c.Decide(ctx))
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func sim64(v int64) sim.Cycles { return sim.Cycles(v) }
