// Package core implements Cohmeleon's reinforcement-learning agent as
// a thin composition over the pluggable engine in internal/learn: a
// Featurizer (the Table-3 state encoding by default), an Algorithm (the
// 243×4 tabular Q-learner by default), and a Schedule (linear ε/α decay
// by default), fed by the multi-objective reward built from the
// hardware monitors. It plugs into the ESP software stack as an
// esp.Policy, selecting a mode at each accelerator invocation and
// updating its value tables when the invocation's evaluation arrives.
//
// The moved building blocks — state encoding, Q-table, persistence —
// live in internal/learn; the aliases below keep this package's
// historical surface intact for callers and saved artifacts.
package core

import "cohmeleon/internal/learn"

// State encoding (Table 3), now learn.Encoder.
type (
	// Attribute identifies one of the five state attributes of Table 3.
	Attribute = learn.Attribute
	// State is an encoded Table-3 state in [0, NumStates).
	State = learn.State
	// Encoder maps a sensed context to a State.
	Encoder = learn.Encoder
)

// The five attributes, re-exported from learn.
const (
	AttrFullyCohAcc   = learn.AttrFullyCohAcc
	AttrNonCohPerTile = learn.AttrNonCohPerTile
	AttrToLLCPerTile  = learn.AttrToLLCPerTile
	AttrTileFootprint = learn.AttrTileFootprint
	AttrAccFootprint  = learn.AttrAccFootprint
	NumAttributes     = learn.NumAttributes
)

// NumStates is the size of the state space: 3^5 = 243 (paper §4.2).
const NumStates = learn.NumStates

// Encoder constructors and the state decoder, re-exported from learn.
var (
	NewEncoder        = learn.NewEncoder
	NewAblatedEncoder = learn.NewAblatedEncoder
	Decode            = learn.Decode
)

// QTable is the 243×4 value table, now learn.QTable.
type QTable = learn.QTable

// Q-table constructors and persistence, re-exported from learn. The
// versioned codec reads both the current format and PR-3-era files.
var (
	NewQTable     = learn.NewQTable
	MergeTables   = learn.MergeTables
	DecodeTable   = learn.DecodeTable
	LoadTableFile = learn.LoadTableFile
)
