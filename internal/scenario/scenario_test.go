package scenario

import (
	"testing"

	"cohmeleon/internal/workload"
)

func TestSampleDeterministic(t *testing.T) {
	spec := DefaultSpec()
	spec.MinInvocations = 20
	a, err := Sample(spec, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sample(spec, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 6 || len(b) != 6 {
		t.Fatalf("sampled %d and %d scenarios, want 6", len(a), len(b))
	}
	for i := range a {
		if a[i].Seed != b[i].Seed || a[i].Cfg.Name != b[i].Cfg.Name ||
			a[i].Cfg.LLCSliceKB != b[i].Cfg.LLCSliceKB || len(a[i].Cfg.Accs) != len(b[i].Cfg.Accs) ||
			a[i].Gen.MaxThreads != b[i].Gen.MaxThreads || len(a[i].Gen.Classes) != len(b[i].Gen.Classes) {
			t.Fatalf("scenario %d differs between identical samples", i)
		}
	}
}

func TestSampleSeedsDiffer(t *testing.T) {
	spec := DefaultSpec()
	spec.MinInvocations = 20
	a, err := Sample(spec, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sample(spec, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i].Cfg.CPUs == b[i].Cfg.CPUs && a[i].Cfg.MemTiles == b[i].Cfg.MemTiles &&
			a[i].Cfg.LLCSliceKB == b[i].Cfg.LLCSliceKB && len(a[i].Cfg.Accs) == len(b[i].Cfg.Accs) {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("disjoint seeds produced identical scenario sets")
	}
}

func TestScenarioAppsValidateAndDiffer(t *testing.T) {
	spec := DefaultSpec()
	spec.MinInvocations = 20
	scens, err := Sample(spec, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scens {
		train, err := sc.App(1000)
		if err != nil {
			t.Fatalf("%s: %v", sc.Cfg.Name, err)
		}
		test, err := sc.App(2000)
		if err != nil {
			t.Fatalf("%s: %v", sc.Cfg.Name, err)
		}
		if err := train.Validate(sc.Cfg); err != nil {
			t.Fatalf("%s train: %v", sc.Cfg.Name, err)
		}
		if err := test.Validate(sc.Cfg); err != nil {
			t.Fatalf("%s test: %v", sc.Cfg.Name, err)
		}
		if train.Name == test.Name {
			t.Fatalf("%s: train and test instances identical", sc.Cfg.Name)
		}
		if train.Invocations() < spec.MinInvocations {
			t.Fatalf("%s: undersized app (%d invocations)", sc.Cfg.Name, train.Invocations())
		}
	}
}

func TestSampleRejectsBadInput(t *testing.T) {
	spec := DefaultSpec()
	if _, err := Sample(spec, 0, 1); err == nil {
		t.Fatal("zero scenario count accepted")
	}
	spec.MaxThreads = 0
	if _, err := Sample(spec, 1, 1); err == nil {
		t.Fatal("invalid workload bounds accepted")
	}
	spec = DefaultSpec()
	spec.Classes = nil
	if _, err := Sample(spec, 1, 1); err == nil {
		t.Fatal("empty class set accepted")
	}
	spec = DefaultSpec()
	spec.SoC.MinCPUs = 9
	spec.SoC.MaxCPUs = 3
	if _, err := Sample(spec, 1, 1); err == nil {
		t.Fatal("invalid SoC spec accepted")
	}
}

func TestDrawClassesNeverEmpty(t *testing.T) {
	spec := DefaultSpec()
	spec.MinInvocations = 10
	scens, err := Sample(spec, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scens {
		if len(sc.Gen.Classes) == 0 {
			t.Fatalf("%s drew an empty class set", sc.Cfg.Name)
		}
		for _, c := range sc.Gen.Classes {
			if c < workload.Small || c >= workload.NumSizeClasses {
				t.Fatalf("%s drew out-of-range class %d", sc.Cfg.Name, c)
			}
		}
	}
}
