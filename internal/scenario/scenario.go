// Package scenario samples randomized evaluation scenarios — a SoC
// topology drawn from soc.RandomConfig paired with a workload-generator
// configuration — from a declarative, seeded spec. The paper evaluates
// its learned policy on eight hand-built SoCs; a scenario set is the
// scaled-up version of that protocol: hundreds of (SoC, workload)
// combinations, each validated against the simulator's build
// invariants, reproducible from (spec, seed) alone. Disjoint seeds
// yield disjoint scenario sets, which is what makes the train-on-A /
// test-on-B transferability workflow meaningful.
package scenario

import (
	"fmt"

	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
	"cohmeleon/internal/workload"
)

// seedStride separates per-scenario seed streams; the golden-ratio
// multiplier keeps consecutive scenario seeds far apart in the RNG's
// state space.
const seedStride = 0x9e3779b97f4a7c15

// Spec declaratively bounds the scenario sampler. The zero value is not
// useful; start from DefaultSpec.
type Spec struct {
	// SoC bounds the randomized topology generator.
	SoC soc.RandomSpec
	// MaxThreads..MaxLoops bound the per-scenario workload-generator
	// draw (each scenario samples its own values within these).
	MaxThreads, MaxChain, MaxLoops int
	// MinInvocations sizes each scenario's applications.
	MinInvocations int
	// Classes are the workload size classes scenarios may mix (empty =
	// all four).
	Classes []workload.SizeClass
}

// DefaultSpec spans the full default design space.
func DefaultSpec() Spec {
	return Spec{
		SoC:            soc.DefaultRandomSpec(),
		MaxThreads:     8,
		MaxChain:       3,
		MaxLoops:       3,
		MinInvocations: 300,
		Classes: []workload.SizeClass{
			workload.Small, workload.Medium, workload.Large, workload.ExtraLarge,
		},
	}
}

// Validate reports specification errors.
func (s Spec) Validate() error {
	if err := s.SoC.Validate(); err != nil {
		return err
	}
	if s.MaxThreads < 1 || s.MaxChain < 1 || s.MaxLoops < 1 {
		return fmt.Errorf("scenario: workload bounds (%d threads, %d chain, %d loops) must be ≥ 1",
			s.MaxThreads, s.MaxChain, s.MaxLoops)
	}
	if s.MinInvocations < 1 {
		return fmt.Errorf("scenario: MinInvocations %d must be ≥ 1", s.MinInvocations)
	}
	if len(s.Classes) == 0 {
		return fmt.Errorf("scenario: empty class set")
	}
	return nil
}

// Scenario is one sampled evaluation point: a SoC topology plus the
// workload-generator configuration its applications are drawn from.
type Scenario struct {
	// Index is the scenario's position in its sampled set.
	Index int
	// Cfg is the validated SoC configuration.
	Cfg *soc.Config
	// Gen drives workload generation for this scenario.
	Gen workload.GenConfig
	// Seed is the scenario's base seed; App offsets derive from it.
	Seed uint64
}

// App generates this scenario's application for a purpose offset
// (distinct offsets yield distinct instances — e.g. train vs test).
func (sc Scenario) App(offset uint64) (*workload.App, error) {
	return workload.Generate(sc.Cfg, sc.Gen, sc.Seed+offset)
}

// Sample draws n scenarios deterministically from (spec, seed): the
// same pair always yields the same set, and sets drawn from different
// seeds are disjoint with overwhelming probability. Every scenario's
// SoC passes soc.Config.Validate, its class set is filtered to what
// the geometry can actually sample (making workload generation
// infallible for every later App offset, not just a spot-checked one),
// and one application instance is built and validated as a smoke
// check — so downstream sweeps never trip build or geometry errors
// mid-grid.
func Sample(spec Spec, n int, seed uint64) ([]Scenario, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("scenario: sample count %d must be ≥ 1", n)
	}
	out := make([]Scenario, 0, n)
	for i := 0; i < n; i++ {
		scSeed := seed + uint64(i)*seedStride
		cfg, err := soc.RandomConfig(fmt.Sprintf("scenario-%03d", i), spec.SoC, scSeed)
		if err != nil {
			return nil, fmt.Errorf("scenario %d: %w", i, err)
		}
		rng := sim.NewRNG(scSeed ^ 0x5ce7a110)
		classes, err := feasibleClasses(drawClasses(spec.Classes, rng), cfg)
		if err != nil {
			return nil, fmt.Errorf("scenario %d (%s): %w", i, cfg.Name, err)
		}
		gen := workload.GenConfig{
			MaxThreads:     1 + rng.Intn(spec.MaxThreads),
			MaxChain:       1 + rng.Intn(spec.MaxChain),
			MaxLoops:       1 + rng.Intn(spec.MaxLoops),
			MinInvocations: spec.MinInvocations,
			Classes:        classes,
		}
		sc := Scenario{Index: i, Cfg: cfg, Gen: gen, Seed: scSeed}
		app, err := sc.App(0)
		if err != nil {
			return nil, fmt.Errorf("scenario %d (%s): %w", i, cfg.Name, err)
		}
		if err := app.Validate(cfg); err != nil {
			return nil, fmt.Errorf("scenario %d (%s): %w", i, cfg.Name, err)
		}
		out = append(out, sc)
	}
	return out, nil
}

// feasibleClasses drops classes the config's memory geometry cannot
// sample (workload.ClassFeasible). The class draw varies per workload
// seed, so a spot check of one generated app would not prove later
// App(offset) calls safe — only excluding infeasible classes up front
// does. An error is returned when nothing survives.
func feasibleClasses(classes []workload.SizeClass, cfg *soc.Config) ([]workload.SizeClass, error) {
	out := make([]workload.SizeClass, 0, len(classes))
	for _, c := range classes {
		if workload.ClassFeasible(c, cfg) == nil {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no feasible size class for this geometry")
	}
	return out, nil
}

// drawClasses picks a random non-empty subset of the allowed classes,
// preserving order.
func drawClasses(all []workload.SizeClass, rng *sim.RNG) []workload.SizeClass {
	out := make([]workload.SizeClass, 0, len(all))
	for _, c := range all {
		if rng.Float64() < 0.5 {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = append(out, all[rng.Intn(len(all))])
	}
	return out
}
