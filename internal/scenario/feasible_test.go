package scenario

import (
	"testing"

	"cohmeleon/internal/acc"
	"cohmeleon/internal/soc"
	"cohmeleon/internal/workload"
)

// TestFeasibleClassesFilters: classes the geometry cannot hold are
// dropped; a class set with no survivors is an error rather than a
// scenario that fails mid-sweep.
func TestFeasibleClassesFilters(t *testing.T) {
	cfg := &soc.Config{
		Name: "tiny-dram", MeshW: 5, MeshH: 5, CPUs: 1, MemTiles: 1,
		LLCSliceKB: 16, L2KB: 4096, // Medium's lower bound is 4 MB + 1
		Accs: []soc.AccInstance{
			{InstName: "fft.0", Spec: acc.MustByName(acc.FFT), PrivateCache: true},
		},
		Params: soc.DefaultParams(),
	}
	cfg.Params.DRAMPartitionMB = 2

	// Medium's lower bound (L2+1 = 4 MB+1) exceeds DRAM; Small, Large
	// and XL clamp onto this geometry's tiny LLC bands and survive.
	all := []workload.SizeClass{workload.Small, workload.Medium, workload.Large, workload.ExtraLarge}
	got, err := feasibleClasses(all, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []workload.SizeClass{workload.Small, workload.Large, workload.ExtraLarge}
	if len(got) != len(want) {
		t.Fatalf("feasible classes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("feasible classes = %v, want %v", got, want)
		}
	}

	if _, err := feasibleClasses([]workload.SizeClass{workload.Medium}, cfg); err == nil {
		t.Fatal("class set with no feasible member accepted")
	}
}
