package costmodel

import (
	"fmt"
	"math"
)

// Bounds is the model's held-out calibration error: the mean absolute
// percentage error and the maximum relative error of the execution-time
// estimate on the held-out samples, plus the split sizes. Every
// screening report carries these so estimated numbers are honest about
// their fidelity, and the auto mode uses MaxRel as the escalation band.
type Bounds struct {
	// MAPE is mean(|est-true|/true) over held-out samples, in [0, ∞).
	MAPE float64
	// MaxRel is max(|est-true|/true) over held-out samples.
	MaxRel float64
	// AggMAPE and AggMax are the same statistics over per-run aggregates:
	// each calibration run's held-out execution cycles are summed for
	// estimate and truth, and the relative error of the sums is taken.
	// Per-invocation noise (contention, queueing position) averages out
	// in sums, so these bound the error of the whole-app quantities the
	// experiments actually compare — the escalation band is built on
	// AggMax, not on the much looser per-invocation MaxRel.
	AggMAPE float64
	AggMax  float64
	// FitSamples and HeldOut are the calibration split sizes.
	FitSamples int
	HeldOut    int
}

// Model is a fitted analytical cost model: linear coefficients over the
// feature vector for execution cycles and off-chip line traffic, plus
// the held-out error bounds of the calibration that produced it.
type Model struct {
	// Protocol names the coherence protocol the calibration runs used.
	Protocol string
	ExecCoef [NumFeatures]float64
	MemCoef  [NumFeatures]float64
	Err      Bounds
}

// Estimate predicts one invocation's execution cycles and off-chip line
// traffic from a filled feature vector. The hot path of screening-mode
// sweeps: two fixed-size dot products, no allocation, no branching
// beyond the clamps.
func (m *Model) Estimate(x *FeatureVec) (execCycles, offChip float64) {
	var e, o float64
	for i := 0; i < NumFeatures; i++ {
		e += m.ExecCoef[i] * x[i]
		o += m.MemCoef[i] * x[i]
	}
	if e < 1 {
		e = 1
	}
	if o < 0 {
		o = 0
	}
	return e, o
}

// Sample is one calibration observation: a feature vector and the
// cycle-accurate targets it must predict.
type Sample struct {
	X    FeatureVec
	Exec float64 // measured invocation execution cycles
	Mem  float64 // measured invocation off-chip lines (ground truth)
	// Group identifies the calibration run the sample came from
	// (non-negative, dense). The aggregate error bounds sum estimates
	// and truths per group.
	Group int
}

// HoldEvery is the deterministic held-out stride: every HoldEvery-th
// sample (by index) is excluded from the fit and used to measure the
// error bounds. Index-based splitting keeps calibration bit-identical
// across worker counts — no RNG is involved anywhere in the fit.
const HoldEvery = 5

// Fit calibrates a model by ridge-stabilized weighted least squares
// over the samples, holding out every HoldEvery-th sample for the error
// bounds. Each sample is weighted by the inverse of its target, so the
// fit minimizes relative error — the quantity MAPE and the escalation
// band are defined over — rather than letting the largest invocations
// dominate. Iteration order is fixed, so identical inputs yield
// bit-identical coefficients. At least 4×NumFeatures samples are
// required for a meaningful fit.
func Fit(samples []Sample, protocolName string) (*Model, error) {
	if len(samples) < 4*NumFeatures {
		return nil, fmt.Errorf("costmodel: %d calibration samples, need ≥ %d", len(samples), 4*NumFeatures)
	}
	m := &Model{Protocol: protocolName}

	// Separate normal systems per target: relative weighting makes the
	// design matrix target-dependent (w = 1/target per row).
	var ataExec, ataMem [NumFeatures][NumFeatures]float64
	var atExec, atMem [NumFeatures]float64
	fit, held := 0, 0
	for i := range samples {
		if (i+1)%HoldEvery == 0 {
			held++
			continue
		}
		fit++
		x := &samples[i].X
		we := 1 / math.Max(samples[i].Exec, 1)
		wm := 1 / math.Max(samples[i].Mem, 1)
		we, wm = we*we, wm*wm
		for r := 0; r < NumFeatures; r++ {
			if x[r] == 0 {
				continue
			}
			for c := 0; c < NumFeatures; c++ {
				ataExec[r][c] += we * x[r] * x[c]
				ataMem[r][c] += wm * x[r] * x[c]
			}
			atExec[r] += we * x[r] * samples[i].Exec
			atMem[r] += wm * x[r] * samples[i].Mem
		}
	}
	// Ridge term scaled to each normal matrix's magnitude: stabilizes
	// collinear feature pairs (e.g. lines vs footprint) without visibly
	// biasing the fit.
	ridge := func(ata *[NumFeatures][NumFeatures]float64) {
		trace := 0.0
		for d := 0; d < NumFeatures; d++ {
			trace += ata[d][d]
		}
		lambda := 1e-8 * trace / NumFeatures
		if lambda <= 0 {
			lambda = 1e-8
		}
		for d := 0; d < NumFeatures; d++ {
			ata[d][d] += lambda
		}
	}
	ridge(&ataExec)
	ridge(&ataMem)

	exec, err := solve(ataExec, atExec)
	if err != nil {
		return nil, err
	}
	mem, err := solve(ataMem, atMem)
	if err != nil {
		return nil, err
	}
	m.ExecCoef, m.MemCoef = exec, mem

	// Held-out error of the execution-time estimate, per invocation and
	// per run aggregate (fixed iteration order throughout).
	maxGroup := 0
	for i := range samples {
		if samples[i].Group > maxGroup {
			maxGroup = samples[i].Group
		}
	}
	sumEst := make([]float64, maxGroup+1)
	sumTruth := make([]float64, maxGroup+1)
	var sumRel, maxRel float64
	for i := range samples {
		if (i+1)%HoldEvery != 0 {
			continue
		}
		est, _ := m.Estimate(&samples[i].X)
		truth := samples[i].Exec
		if truth <= 0 {
			continue
		}
		sumEst[samples[i].Group] += est
		sumTruth[samples[i].Group] += truth
		rel := math.Abs(est-truth) / truth
		sumRel += rel
		if rel > maxRel {
			maxRel = rel
		}
	}
	var aggSum, aggMax float64
	groups := 0
	for g := range sumTruth {
		if sumTruth[g] <= 0 {
			continue
		}
		groups++
		rel := math.Abs(sumEst[g]-sumTruth[g]) / sumTruth[g]
		aggSum += rel
		if rel > aggMax {
			aggMax = rel
		}
	}
	if groups == 0 {
		return nil, fmt.Errorf("costmodel: no held-out calibration runs to bound aggregate error")
	}
	m.Err = Bounds{
		MAPE: sumRel / float64(held), MaxRel: maxRel,
		AggMAPE: aggSum / float64(groups), AggMax: aggMax,
		FitSamples: fit, HeldOut: held,
	}
	if !isFinite(m.Err.MAPE) || !isFinite(m.Err.MaxRel) || !isFinite(m.Err.AggMAPE) || !isFinite(m.Err.AggMax) {
		return nil, fmt.Errorf("costmodel: non-finite held-out error from fit")
	}
	return m, nil
}

// solve performs Gaussian elimination with partial pivoting on a copy
// of a (symmetric positive-definite after the ridge term) system.
// Deterministic: pivots are chosen by fixed comparison order.
func solve(a [NumFeatures][NumFeatures]float64, b [NumFeatures]float64) ([NumFeatures]float64, error) {
	n := NumFeatures
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if a[pivot][col] == 0 {
			return b, fmt.Errorf("costmodel: singular normal matrix at column %d (%s)", col, FeatureName(col))
		}
		if pivot != col {
			a[pivot], a[col] = a[col], a[pivot]
			b[pivot], b[col] = b[col], b[pivot]
		}
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var x [NumFeatures]float64
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
		if !isFinite(x[r]) {
			return x, fmt.Errorf("costmodel: non-finite coefficient for %s", FeatureName(r))
		}
	}
	return x, nil
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }
