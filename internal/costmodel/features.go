// Package costmodel is the analytical fast path of the two-fidelity
// sweep pipeline: a per-invocation cycle and off-chip-traffic estimator
// that is a linear function of closed-form features — the same
// quantities the Table-3 featurizer senses (footprint, reuse, coherence
// mode, protocol obligations, mesh distance, concurrency) — fitted by
// least squares against cycle-accurate simulation results. Screening a
// (scenario × policy) grid cell through the model costs microseconds
// where full simulation costs seconds; the fitted model carries its
// held-out calibration error so consumers can decide which cells are
// close enough to escalate back to the cycle-accurate simulator.
//
// Everything here is deterministic: feature extraction, fitting, and
// estimation are pure functions evaluated in fixed iteration order, so
// the same calibration inputs produce bit-identical coefficients on any
// machine and any worker count.
package costmodel

import (
	"fmt"

	"cohmeleon/internal/acc"
	"cohmeleon/internal/mem"
	"cohmeleon/internal/soc"
	"cohmeleon/internal/soc/protocol"
)

// NumFeatures is the dimensionality of the feature vector.
const NumFeatures = 20

// Feature indices. Line-count features are in cache lines; cycle
// features in cycles; byte features in bytes.
const (
	fIntercept     = iota // 1
	fPages                // TLB pages loaded per invocation
	fCompute              // datapath cycles (closed-form from the access plan)
	fLinesNonCoh          // transferred lines under non-coherent DMA
	fLinesLLCCoh          // transferred lines under LLC-coherent DMA
	fLinesCohDMA          // transferred lines under coherent DMA
	fLinesFullyCoh        // transferred lines under full coherence
	fWriteLines           // written lines (all modes)
	fBursts               // DRAM-latency events (burst count)
	fFlushPriv            // lines walked by required private-cache flushes
	fFlushLLC             // lines walked by required LLC flushes
	fRecallLines          // lines subject to hardware owner recall checks
	fHopLines             // transferred lines × mean acc→mem-tile hop distance
	fSpillLines           // lines beyond one LLC slice, for LLC-bound modes
	fOccupancy            // transferred lines × concurrent threads beyond self
	fFootprint            // raw dataset lines
	fModeNonCoh           // mode share under non-coherent DMA (mode-specific intercept)
	fModeLLCCoh           // mode share under LLC-coherent DMA
	fModeCohDMA           // mode share under coherent DMA
	fModeFullyCoh         // mode share under full coherence
)

// FeatureVec is one invocation's feature vector. Callers own the
// scratch: Features fills it in place and Estimate reads it, so the
// screening hot path allocates nothing.
type FeatureVec [NumFeatures]float64

// Extractor derives feature vectors for one SoC configuration. Build
// one per configuration and reuse it across every invocation estimate;
// construction precomputes the placement-derived distances and protocol
// rules so Features itself is allocation-free.
type Extractor struct {
	cfg    *soc.Config
	rules  protocol.Rules
	dist   []float64 // mean Manhattan distance acc→mem tiles, config order
	accIdx map[string]int
}

// NewExtractor prepares feature extraction for a configuration.
func NewExtractor(cfg *soc.Config) (*Extractor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rules, err := protocol.Lookup(cfg.Protocol)
	if err != nil {
		return nil, err
	}
	e := &Extractor{
		cfg:    cfg,
		rules:  rules,
		dist:   soc.AccMemDistances(cfg),
		accIdx: make(map[string]int, len(cfg.Accs)),
	}
	for i := range cfg.Accs {
		e.accIdx[cfg.Accs[i].InstName] = i
	}
	return e, nil
}

// Config returns the configuration the extractor was built for.
func (e *Extractor) Config() *soc.Config { return e.cfg }

// AccIndex resolves an accelerator instance name to its config index.
func (e *Extractor) AccIndex(inst string) (int, bool) {
	i, ok := e.accIdx[inst]
	return i, ok
}

// planShape is the closed-form aggregate of acc.Plan's chunked access
// schedule: how many lines one invocation transfers, in how many
// bursts, and how much datapath compute it performs. It mirrors
// NewPlan/Next arithmetic exactly, minus the irregular pattern's random
// positions (which affect which lines are touched, not how many).
type planShape struct {
	lines      int64 // dataset lines
	readLines  int64 // per-pass transferred read lines
	writeLines int64 // total written lines across the invocation
	bursts     int64 // total DMA bursts (DRAM latency events)
	passes     int64
	compute    float64 // total datapath cycles
}

// shapeFor computes the closed-form plan aggregate for (spec,
// footprint), in fixed arithmetic order.
func shapeFor(a *soc.AccInstance, footprintBytes int64) planShape {
	spec := a.Spec
	var s planShape
	s.lines = (footprintBytes + mem.LineBytes - 1) / mem.LineBytes
	readRegion := s.lines
	if !spec.InPlace {
		readRegion = int64(float64(s.lines)*spec.ReadFraction + 0.5)
		if readRegion < 1 {
			readRegion = 1
		}
		if readRegion > s.lines {
			readRegion = s.lines
		}
	}
	chunk := spec.PLMBytes / mem.LineBytes
	if chunk > readRegion {
		chunk = readRegion
	}
	if chunk < 1 {
		chunk = 1
	}
	s.passes = int64(spec.Reuse(footprintBytes, spec.PLMBytes))
	if s.passes < 1 {
		s.passes = 1
	}

	fullChunks := readRegion / chunk
	rem := readRegion % chunk

	// Per-pass read lines and burst counts, by pattern.
	var readsPerPass, burstsPerPass int64
	switch spec.Pattern {
	case acc.Strided:
		readsPerPass = readRegion
		burstsPerPass = readRegion // single-line bursts
	case acc.Irregular:
		t := func(n int64) int64 {
			x := int64(float64(n)*spec.AccessFraction + 0.5)
			if x < 1 {
				x = 1
			}
			return x
		}
		readsPerPass = fullChunks * t(chunk)
		if rem > 0 {
			readsPerPass += t(rem)
		}
		burstsPerPass = readsPerPass // single-line gathers
	default: // streaming
		readsPerPass = readRegion
		b := int64(spec.BurstLines)
		burstsPerPass = fullChunks * ((chunk + b - 1) / b)
		if rem > 0 {
			burstsPerPass += (rem + b - 1) / b
		}
	}
	s.readLines = readsPerPass

	// Writes: in-place specs drain each chunk every pass; out-of-place
	// specs stream the disjoint write region once, on the final pass.
	writeShare := (1 - spec.ReadFraction) / spec.ReadFraction
	burst := int64(spec.BurstLines)
	var writeTotal, writeBursts int64
	if spec.InPlace {
		w := func(n, reads int64) int64 {
			wl := int64(float64(reads)*writeShare + 0.5)
			if wl > n {
				wl = n
			}
			return wl
		}
		var perChunkReads int64
		switch spec.Pattern {
		case acc.Irregular:
			perChunkReads = int64(float64(chunk)*spec.AccessFraction + 0.5)
			if perChunkReads < 1 {
				perChunkReads = 1
			}
		default:
			perChunkReads = chunk
		}
		wFull := w(chunk, perChunkReads)
		writeTotal = fullChunks * wFull
		writeBursts = fullChunks * ((wFull + burst - 1) / burst)
		if rem > 0 {
			var remReads int64
			switch spec.Pattern {
			case acc.Irregular:
				remReads = int64(float64(rem)*spec.AccessFraction + 0.5)
				if remReads < 1 {
					remReads = 1
				}
			default:
				remReads = rem
			}
			wRem := w(rem, remReads)
			writeTotal += wRem
			writeBursts += (wRem + burst - 1) / burst
		}
		writeTotal *= s.passes
		writeBursts *= s.passes
	} else if s.lines > readRegion {
		writeTotal = s.lines - readRegion
		writeBursts = (writeTotal + burst - 1) / burst
	}
	s.writeLines = writeTotal
	s.bursts = burstsPerPass*s.passes + writeBursts
	s.compute = spec.ComputePerByte * float64(s.readLines*s.passes*mem.LineBytes)
	return s
}

// Features fills x with the feature vector for one invocation:
// accelerator acc (config index) executing action act on a dataset of
// footprintBytes, with threads software threads concurrently active in
// the phase. It never allocates.
func (e *Extractor) Features(acc int, act soc.Action, footprintBytes int64, threads int, x *FeatureVec) {
	inst := &e.cfg.Accs[acc]
	s := shapeFor(inst, footprintBytes)
	transferred := float64(s.readLines*s.passes + s.writeLines)

	for i := range x {
		x[i] = 0
	}
	x[fIntercept] = 1
	x[fPages] = float64((footprintBytes + mem.PageBytes - 1) / mem.PageBytes)
	x[fCompute] = s.compute
	x[fWriteLines] = float64(s.writeLines)
	x[fBursts] = float64(s.bursts)
	x[fHopLines] = transferred * e.dist[acc]
	x[fFootprint] = float64(s.lines)

	// Split actions assign the hot (leading, L2-sized) region and the
	// cold remainder to distinct modes; transferred lines, flush
	// obligations, recall checks and spill attribute proportionally.
	hot, cold := act.Hot(), act.Cold()
	hotShare := 1.0
	if act.IsSplit() {
		hotLines := e.cfg.L2Bytes() / mem.LineBytes
		if hotLines > s.lines {
			hotLines = s.lines
		}
		hotShare = float64(hotLines) / float64(s.lines)
	}
	modeLines := [soc.NumModes]float64{}
	modeLines[hot] += transferred * hotShare
	if act.IsSplit() {
		modeLines[cold] += transferred * (1 - hotShare)
	}
	x[fLinesNonCoh] = modeLines[soc.NonCohDMA]
	x[fLinesLLCCoh] = modeLines[soc.LLCCohDMA]
	x[fLinesCohDMA] = modeLines[soc.CohDMA]
	x[fLinesFullyCoh] = modeLines[soc.FullyCoh]

	// Mode-specific intercepts: each mode's share of the invocation's
	// fixed (size-independent) cost, so systematic per-mode constants the
	// shared intercept can't express fit cleanly.
	modeShare := [soc.NumModes]float64{}
	modeShare[hot] += hotShare
	if act.IsSplit() {
		modeShare[cold] += 1 - hotShare
	}
	x[fModeNonCoh] = modeShare[soc.NonCohDMA]
	x[fModeLLCCoh] = modeShare[soc.LLCCohDMA]
	x[fModeCohDMA] = modeShare[soc.CohDMA]
	x[fModeFullyCoh] = modeShare[soc.FullyCoh]

	// Protocol obligations: a split invocation owes the union of its two
	// regions' flushes over the whole buffer (mirroring esp.invoke).
	if e.rules.PrivateFlush[hot] || (act.IsSplit() && e.rules.PrivateFlush[cold]) {
		x[fFlushPriv] = float64(s.lines)
	}
	if e.rules.LLCFlush[hot] || (act.IsSplit() && e.rules.LLCFlush[cold]) {
		x[fFlushLLC] = float64(s.lines)
	}
	recall := 0.0
	if e.rules.RecallOwners[hot] {
		recall += transferred * hotShare
	}
	if act.IsSplit() && e.rules.RecallOwners[cold] {
		recall += transferred * (1 - hotShare)
	}
	x[fRecallLines] = recall

	// LLC pressure: lines beyond one slice thrash the partition for
	// LLC-bound modes.
	spill := s.lines - e.cfg.LLCSliceBytes()/mem.LineBytes
	if spill > 0 {
		llcShare := 0.0
		if e.rules.UsesLLC[hot] {
			llcShare += hotShare
		}
		if act.IsSplit() && e.rules.UsesLLC[cold] {
			llcShare += 1 - hotShare
		}
		x[fSpillLines] = float64(spill) * llcShare
	}

	if threads > 1 {
		x[fOccupancy] = transferred * float64(threads-1)
	}
}

// FeatureName names a feature index (reports and debugging).
func FeatureName(i int) string {
	names := [NumFeatures]string{
		"intercept", "pages", "compute", "lines-non-coh", "lines-llc-coh",
		"lines-coh-dma", "lines-fully-coh", "write-lines", "bursts",
		"flush-priv", "flush-llc", "recall-lines", "hop-lines",
		"spill-lines", "occupancy", "footprint",
		"mode-non-coh", "mode-llc-coh", "mode-coh-dma", "mode-fully-coh",
	}
	if i < 0 || i >= NumFeatures {
		return fmt.Sprintf("feature(%d)", i)
	}
	return names[i]
}
