package costmodel

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"io"
)

// Versioned, checksummed persistence for fitted models, so calibrated
// coefficients are cacheable under -cache-dir with the same integrity
// story as every other durable artifact: a gob envelope framing the
// payload with a format version and its sha256, then a geometry- and
// sanity-validated payload decode. Decode never indexes before
// validating and rejects non-finite coefficients, mirroring the learn
// package's DecodeState hardening — a truncated, bit-rotted, or foreign
// file is an error, never a panic or a silently wrong model.

// FormatVersion tags the persisted model layout. Bump on any change to
// modelImage or the feature ordering: NumFeatures is part of the
// payload and checked on decode, so a feature-set change also
// invalidates old files even within one version.
const FormatVersion = 1

// modelEnvelope frames the payload (structurally identical to the
// experiment store's blob envelope, but self-contained: the experiment
// package imports this one, not the other way around).
type modelEnvelope struct {
	Version int
	Sum     [sha256.Size]byte
	Payload []byte
}

// modelImage is the persisted (exported-field, slice-based) form.
type modelImage struct {
	Version     int
	NumFeatures int
	Protocol    string
	ExecCoef    []float64
	MemCoef     []float64
	MAPE        float64
	MaxRel      float64
	AggMAPE     float64
	AggMax      float64
	FitSamples  int
	HeldOut     int
}

// Encode writes a model's checksummed envelope to w.
func Encode(w io.Writer, m *Model) error {
	img := modelImage{
		Version:     FormatVersion,
		NumFeatures: NumFeatures,
		Protocol:    m.Protocol,
		ExecCoef:    m.ExecCoef[:],
		MemCoef:     m.MemCoef[:],
		MAPE:        m.Err.MAPE,
		MaxRel:      m.Err.MaxRel,
		AggMAPE:     m.Err.AggMAPE,
		AggMax:      m.Err.AggMax,
		FitSamples:  m.Err.FitSamples,
		HeldOut:     m.Err.HeldOut,
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&img); err != nil {
		return fmt.Errorf("costmodel: encoding model: %w", err)
	}
	env := modelEnvelope{
		Version: FormatVersion,
		Sum:     sha256.Sum256(payload.Bytes()),
		Payload: payload.Bytes(),
	}
	if err := gob.NewEncoder(w).Encode(&env); err != nil {
		return fmt.Errorf("costmodel: encoding model envelope: %w", err)
	}
	return nil
}

// Decode reads, verifies, and validates a persisted model. Any error
// means the file is unusable (corrupt, truncated, wrong version, or
// carrying nonsense coefficients); callers treat it as absent and
// refit.
func Decode(r io.Reader) (*Model, error) {
	var env modelEnvelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("costmodel: undecodable model envelope: %w", err)
	}
	if env.Version != FormatVersion {
		return nil, fmt.Errorf("costmodel: model version %d, want %d", env.Version, FormatVersion)
	}
	if sha256.Sum256(env.Payload) != env.Sum {
		return nil, fmt.Errorf("costmodel: model checksum mismatch")
	}
	var img modelImage
	if err := gob.NewDecoder(bytes.NewReader(env.Payload)).Decode(&img); err != nil {
		return nil, fmt.Errorf("costmodel: undecodable model payload: %w", err)
	}
	if img.Version != FormatVersion {
		return nil, fmt.Errorf("costmodel: model payload version %d, want %d", img.Version, FormatVersion)
	}
	if img.NumFeatures != NumFeatures {
		return nil, fmt.Errorf("costmodel: model spans %d features, this build uses %d", img.NumFeatures, NumFeatures)
	}
	if len(img.ExecCoef) != NumFeatures || len(img.MemCoef) != NumFeatures {
		return nil, fmt.Errorf("costmodel: coefficient vectors sized %d/%d, want %d",
			len(img.ExecCoef), len(img.MemCoef), NumFeatures)
	}
	for i := 0; i < NumFeatures; i++ {
		if !isFinite(img.ExecCoef[i]) || !isFinite(img.MemCoef[i]) {
			return nil, fmt.Errorf("costmodel: non-finite coefficient for %s", FeatureName(i))
		}
	}
	if !isFinite(img.MAPE) || !isFinite(img.MaxRel) || img.MAPE < 0 || img.MaxRel < 0 {
		return nil, fmt.Errorf("costmodel: bad error bounds (mape=%g max=%g)", img.MAPE, img.MaxRel)
	}
	if !isFinite(img.AggMAPE) || !isFinite(img.AggMax) || img.AggMAPE < 0 || img.AggMax < 0 {
		return nil, fmt.Errorf("costmodel: bad aggregate error bounds (mape=%g max=%g)", img.AggMAPE, img.AggMax)
	}
	if img.FitSamples < 0 || img.HeldOut < 0 {
		return nil, fmt.Errorf("costmodel: negative sample counts (%d fit, %d held)", img.FitSamples, img.HeldOut)
	}
	m := &Model{
		Protocol: img.Protocol,
		Err: Bounds{MAPE: img.MAPE, MaxRel: img.MaxRel,
			AggMAPE: img.AggMAPE, AggMax: img.AggMax,
			FitSamples: img.FitSamples, HeldOut: img.HeldOut},
	}
	copy(m.ExecCoef[:], img.ExecCoef)
	copy(m.MemCoef[:], img.MemCoef)
	return m, nil
}
