package costmodel

import (
	"testing"

	"cohmeleon/internal/soc"
)

var benchSinkExec, benchSinkMem float64

// BenchmarkCostModelEstimate measures the screening hot path — one
// feature extraction plus one model evaluation — and records allocs/op:
// the pair must stay 0 allocs/op (TestZeroAllocFeaturesEstimate
// enforces the same in CI).
func BenchmarkCostModelEstimate(b *testing.B) {
	ex, err := NewExtractor(soc.SoC6())
	if err != nil {
		b.Fatal(err)
	}
	m, err := Fit(syntheticSamples(200), "mesi")
	if err != nil {
		b.Fatal(err)
	}
	var x FeatureVec
	act := soc.ModeAction(soc.CohDMA)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Features(0, act, 1<<20, 2, &x)
		benchSinkExec, benchSinkMem = m.Estimate(&x)
	}
}
