//go:build !race

package costmodel

// Zero-allocation guard for the screening hot path: feature extraction
// and estimation run once per (invocation × policy × grid cell), so a
// stray allocation taxes every screened sweep. The race detector's
// shadow allocations would trip the guard, so it runs only in non-race
// builds (CI runs it as a dedicated step alongside the kernel and
// learner guards).

import (
	"testing"

	"cohmeleon/internal/soc"
)

func TestZeroAllocFeaturesEstimate(t *testing.T) {
	ex, err := NewExtractor(soc.SoC6())
	if err != nil {
		t.Fatal(err)
	}
	m, err := Fit(syntheticSamples(200), "mesi")
	if err != nil {
		t.Fatal(err)
	}
	var x FeatureVec
	var sinkE, sinkM float64
	allocs := testing.AllocsPerRun(1000, func() {
		ex.Features(0, soc.ModeAction(soc.CohDMA), 1<<20, 2, &x)
		sinkE, sinkM = m.Estimate(&x)
	})
	if allocs != 0 {
		t.Fatalf("Features+Estimate allocates %.1f times per call, want 0", allocs)
	}
	if sinkE < 1 || sinkM < 0 {
		t.Fatalf("nonsensical estimate: %g cycles, %g lines", sinkE, sinkM)
	}
}
