package costmodel

import (
	"fmt"

	"cohmeleon/internal/esp"
	"cohmeleon/internal/mem"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
	"cohmeleon/internal/workload"
)

// Estimator drives whole applications through the analytical model,
// producing workload.AppResult values shaped like the cycle-accurate
// runner's so the experiment layer's normalization and reporting code
// consumes estimates unchanged. It replays the runner's structure —
// phases in sequence, threads in a phase concurrent, each thread
// serially looping over its accelerator chain — but replaces the
// event-driven simulation of each invocation with one model evaluation:
// policies still sense a (synthesized) system status and still observe
// a (synthesized) result, so learning policies train against the model
// exactly as they would against the simulator.
//
// The synthesized sensing makes one deliberate approximation: all
// datasets are treated as resident on a single memory partition, which
// is exact for the footprints scenarios draw (at most a few times the
// aggregate LLC, far below the 256 MB partition stripe the sequential
// heap allocates from).
type Estimator struct {
	ex  *Extractor
	m   *Model
	pms *soc.Params
	// tiles are synthetic read-only accelerator tiles, config order;
	// policies key internal state by ID and read InstName/Spec/Agent.
	tiles []soc.AccTile
	avail [][]soc.Mode
}

// NewEstimator pairs an extractor with a fitted model.
func NewEstimator(ex *Extractor, m *Model) *Estimator {
	cfg := ex.Config()
	e := &Estimator{ex: ex, m: m, pms: &cfg.Params}
	e.tiles = make([]soc.AccTile, len(cfg.Accs))
	e.avail = make([][]soc.Mode, len(cfg.Accs))
	for i := range cfg.Accs {
		inst := &cfg.Accs[i]
		agent := soc.NoAgent
		if inst.PrivateCache {
			agent = i
		}
		e.tiles[i] = soc.AccTile{ID: i, InstName: inst.InstName, Spec: inst.Spec, Agent: agent}
		e.avail[i] = e.tiles[i].AvailableModes()
	}
	return e
}

// Model returns the fitted model backing the estimator.
func (e *Estimator) Model() *Model { return e.m }

// threadState tracks one thread's analytic execution through a phase.
type threadState struct {
	spec    *workload.ThreadSpec
	lines   int64
	steps   int
	started bool
	last    soc.Action
	time    float64
	offchip float64
}

// Run estimates an application run under pol. The returned AppResult
// mirrors the cycle-accurate runner's shape: per-phase cycle and
// off-chip totals plus every synthesized invocation result, delivered
// to pol.Observe in the same deterministic order they are decided.
func (e *Estimator) Run(pol esp.Policy, app *workload.App) (*workload.AppResult, error) {
	cfg := e.ex.Config()
	if err := app.Validate(cfg); err != nil {
		return nil, err
	}
	ap, fineGrain := pol.(esp.ActionPolicy)
	res := &workload.AppResult{App: app, Policy: pol.Name()}
	var x FeatureVec

	for pi := range app.Phases {
		phase := &app.Phases[pi]
		pr := workload.PhaseResult{Name: phase.Name}
		ths := make([]threadState, len(phase.Threads))
		results := make([][]*esp.Result, len(phase.Threads))
		maxSteps := 0
		for ti := range phase.Threads {
			ts := &phase.Threads[ti]
			st := &ths[ti]
			st.spec = ts
			st.lines = (ts.FootprintBytes + mem.LineBytes - 1) / mem.LineBytes
			st.steps = ts.Invocations()
			st.last = soc.ModeAction(soc.NonCohDMA)
			// Dataset initialization (the runner's warm-up touch).
			e.touch(st, st.lines)
			if st.steps > maxSteps {
				maxSteps = st.steps
			}
		}

		// Step-major replay: at step k every live thread decides and runs
		// its k-th invocation. Sensing sees the other live threads at
		// their most recent action — threads before this one in index
		// order have already decided step k, later ones are still at
		// k−1 — which mirrors the simultaneous thread start of the
		// event-driven runner and is deterministic by construction.
		for k := 0; k < maxSteps; k++ {
			for ti := range ths {
				st := &ths[ti]
				if k >= st.steps {
					continue
				}
				loop := k / len(st.spec.Chain)
				link := k % len(st.spec.Chain)
				if link == 0 && loop > 0 && st.spec.RewriteFraction > 0 {
					e.touch(st, int64(float64(st.lines)*st.spec.RewriteFraction))
				}

				ai, ok := e.ex.AccIndex(st.spec.Chain[link])
				if !ok {
					return nil, fmt.Errorf("costmodel: unknown accelerator %q", st.spec.Chain[link])
				}
				ctx := e.sense(ai, st.spec.FootprintBytes, ths, ti, k)
				var act soc.Action
				if fineGrain {
					act = ap.DecideAction(ctx)
				} else {
					act = soc.ModeAction(pol.Decide(ctx))
				}
				if !ctx.Allows(act.Hot()) || (act.IsSplit() && !ctx.Allows(act.Cold())) {
					return nil, fmt.Errorf("costmodel: policy %s chose unavailable action %s on %s",
						pol.Name(), act, st.spec.Chain[link])
				}

				e.ex.Features(ai, act, st.spec.FootprintBytes, len(ths), &x)
				estExec, estMem := e.m.Estimate(&x)
				estExec += float64(pol.OverheadCycles())

				r := e.result(ai, act, st.spec.FootprintBytes, estExec, estMem, pol)
				pol.Observe(r)
				results[ti] = append(results[ti], r)
				st.last = act
				st.started = true
				st.time += estExec
				st.offchip += estMem
			}
		}
		for ti := range ths {
			st := &ths[ti]
			if st.spec.ReadbackFraction > 0 {
				e.touch(st, int64(float64(st.lines)*st.spec.ReadbackFraction))
			}
			if st.time > float64(pr.Cycles) {
				pr.Cycles = sim.Cycles(st.time)
			}
			pr.OffChip += int64(st.offchip)
			pr.Invocations = append(pr.Invocations, results[ti]...)
		}
		if pr.Cycles < 1 {
			pr.Cycles = 1
		}
		res.Phases = append(res.Phases, pr)
		res.Cycles += pr.Cycles
		res.OffChip += pr.OffChip
	}
	return res, nil
}

// touch charges a CPU touch of n lines to the thread: datapath time per
// line plus a DRAM stream (one activation, then channel occupancy).
func (e *Estimator) touch(st *threadState, n int64) {
	if n <= 0 {
		return
	}
	st.time += float64(e.pms.DRAMLatencyCycles) +
		float64(n)*float64(e.pms.CPUTouchPerLine+e.pms.DRAMPerLineCycles)
	st.offchip += float64(n)
}

// sense synthesizes the decision context the tracker would assemble:
// the other live threads of the phase are the active invocations, each
// at its most recent action's hot mode, all sharing one partition.
func (e *Estimator) sense(ai int, footprint int64, ths []threadState, self, k int) *esp.Context {
	cfg := e.ex.Config()
	ctx := &esp.Context{
		Acc:            &e.tiles[ai],
		Available:      e.avail[ai],
		FootprintBytes: footprint,
		L2Bytes:        cfg.L2Bytes(),
		LLCSliceBytes:  cfg.LLCSliceBytes(),
		TotalLLCBytes:  cfg.TotalLLCBytes(),
	}
	var nonCoh, toLLC int
	for ti := range ths {
		if ti == self {
			continue
		}
		st := &ths[ti]
		// Live: already decided at least once and not past its last step
		// at this decision point (threads after self decided step k−1).
		lastDone := k
		if ti > self {
			lastDone = k - 1
		}
		if !st.started || lastDone >= st.steps {
			continue
		}
		mode := st.last.Hot()
		ctx.ActiveCount++
		ctx.ActiveFootprintBytes += st.spec.FootprintBytes
		switch mode {
		case soc.NonCohDMA:
			ctx.ActiveNonCoh++
			nonCoh++
		case soc.LLCCohDMA:
			ctx.ActiveLLCCoh++
			toLLC++
		case soc.CohDMA:
			ctx.ActiveCohDMA++
			toLLC++
		case soc.FullyCoh:
			ctx.ActiveFullyCoh++
			ctx.FullyCohActive++
			toLLC++
		}
	}
	ctx.NonCohPerTile = float64(nonCoh)
	ctx.ToLLCPerTile = float64(toLLC)
	ctx.TileFootprintBytes = float64(footprint + ctx.ActiveFootprintBytes)
	return ctx
}

// result synthesizes the esp.Result for an estimated invocation. The
// hardware-counter split is approximate: busy time is the estimate
// minus the fixed software costs the simulator charges outside the
// accelerator (driver, TLB load, interrupt, policy overhead), and
// communication is attributed half of busy time.
func (e *Estimator) result(ai int, act soc.Action, footprint int64, estExec, estMem float64, pol esp.Policy) *esp.Result {
	pages := (footprint + mem.PageBytes - 1) / mem.PageBytes
	software := float64(e.pms.DriverCycles+e.pms.IRQCycles) +
		float64(pages)*float64(e.pms.TLBPerPageCycles) +
		float64(pol.OverheadCycles())
	active := estExec - software
	if active < 1 {
		active = 1
	}
	return &esp.Result{
		Acc:            &e.tiles[ai],
		Mode:           act.Hot(),
		Action:         act,
		FootprintBytes: footprint,
		ExecCycles:     sim.Cycles(estExec),
		ActiveCycles:   sim.Cycles(active),
		CommCycles:     sim.Cycles(active / 2),
		OffChipApprox:  estMem,
		OffChipTrue:    int64(estMem),
	}
}
