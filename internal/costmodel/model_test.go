package costmodel

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"math"
	"strings"
	"testing"

	"cohmeleon/internal/soc"
)

// syntheticSamples generates a deterministic, nearly linear calibration
// set: feature vectors from a fixed LCG, targets from planted
// coefficients plus a small multiplicative perturbation. No math/rand —
// the stream is pinned by construction.
func syntheticSamples(n int) []Sample {
	state := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	var execCoef, memCoef [NumFeatures]float64
	for i := range execCoef {
		execCoef[i] = 1 + 10*next()
		memCoef[i] = next()
	}
	out := make([]Sample, n)
	for i := range out {
		s := &out[i]
		s.X[fIntercept] = 1
		s.X[fPages] = float64(1 + int(100*next()))
		s.X[fCompute] = 1000 * next()
		s.X[fLinesNonCoh] = 500 * next()
		s.X[fLinesLLCCoh] = 300 * next()
		s.X[fWriteLines] = 100 * next()
		s.X[fBursts] = 50 * next()
		s.X[fHopLines] = 200 * next()
		s.X[fFootprint] = 600 * next()
		s.X[fModeNonCoh] = 1
		var e, m float64
		for j := 0; j < NumFeatures; j++ {
			e += execCoef[j] * s.X[j]
			m += memCoef[j] * s.X[j]
		}
		s.Exec = e * (1 + 0.04*(next()-0.5))
		s.Mem = m * (1 + 0.04*(next()-0.5))
		if s.Exec < 1 {
			s.Exec = 1
		}
		if s.Mem < 0 {
			s.Mem = 0
		}
		s.Group = i / 25
	}
	return out
}

// TestFitDeterministic: two fits over identical samples must produce
// bit-identical coefficients and error bounds — the property that makes
// calibration reproducible across machines and worker counts.
func TestFitDeterministic(t *testing.T) {
	samples := syntheticSamples(200)
	m1, err := Fit(samples, "mesi")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Fit(samples, "mesi")
	if err != nil {
		t.Fatal(err)
	}
	if m1.ExecCoef != m2.ExecCoef || m1.MemCoef != m2.MemCoef {
		t.Fatal("refit over identical samples changed coefficients")
	}
	if m1.Err != m2.Err {
		t.Fatalf("refit changed error bounds: %+v vs %+v", m1.Err, m2.Err)
	}
}

// TestFitRecoversPlantedModel: on nearly linear data the held-out error
// must be small — the fit actually learns the relationship rather than
// merely converging.
func TestFitRecoversPlantedModel(t *testing.T) {
	m, err := Fit(syntheticSamples(400), "mesi")
	if err != nil {
		t.Fatal(err)
	}
	if m.Err.MAPE > 0.05 {
		t.Fatalf("held-out MAPE %.3f on nearly linear data, want < 0.05", m.Err.MAPE)
	}
	if m.Err.AggMAPE > m.Err.MaxRel {
		t.Fatalf("aggregate MAPE %.3f exceeds per-invocation max %.3f", m.Err.AggMAPE, m.Err.MaxRel)
	}
	if m.Err.FitSamples+m.Err.HeldOut != 400 {
		t.Fatalf("split %d+%d does not cover 400 samples", m.Err.FitSamples, m.Err.HeldOut)
	}
}

// TestFitRejectsTooFewSamples: below the 4×NumFeatures floor the fit is
// meaningless and must refuse.
func TestFitRejectsTooFewSamples(t *testing.T) {
	if _, err := Fit(syntheticSamples(4*NumFeatures-1), "mesi"); err == nil {
		t.Fatal("underdetermined calibration accepted")
	}
}

// TestEstimateClamps: negative linear combinations must clamp (cycles
// to ≥1, traffic to ≥0) so downstream ratios stay finite.
func TestEstimateClamps(t *testing.T) {
	m := &Model{}
	for i := range m.ExecCoef {
		m.ExecCoef[i] = -1
		m.MemCoef[i] = -1
	}
	var x FeatureVec
	x[fIntercept] = 1
	e, o := m.Estimate(&x)
	if e != 1 || o != 0 {
		t.Fatalf("Estimate(-1 coefs) = %g, %g; want clamped 1, 0", e, o)
	}
}

// TestFeaturesModeSharesPartition: the mode-share intercept features
// must partition one invocation (sum to 1) for both whole and split
// actions, and the per-mode line features must partition the
// transferred lines the same way.
func TestFeaturesModeSharesPartition(t *testing.T) {
	ex, err := NewExtractor(soc.SoC6())
	if err != nil {
		t.Fatal(err)
	}
	acts := make([]soc.Action, 0, soc.NumActions)
	for _, m := range soc.AllModes {
		acts = append(acts, soc.ModeAction(m))
	}
	for _, hot := range soc.AllModes {
		for _, cold := range soc.AllModes {
			if hot != cold {
				acts = append(acts, soc.SplitAction(hot, cold))
			}
		}
	}
	var x FeatureVec
	for _, act := range acts {
		ex.Features(0, act, 1<<20, 2, &x)
		share := x[fModeNonCoh] + x[fModeLLCCoh] + x[fModeCohDMA] + x[fModeFullyCoh]
		if math.Abs(share-1) > 1e-9 {
			t.Fatalf("%v: mode shares sum to %g, want 1", act, share)
		}
		for i := range x {
			if !isFinite(x[i]) || x[i] < 0 {
				t.Fatalf("%v: feature %s = %g", act, FeatureName(i), x[i])
			}
		}
	}
}

// TestEncodeDecodeRoundTrip: a fitted model must survive persistence
// bit-exactly.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	m, err := Fit(syntheticSamples(200), "mesi")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.ExecCoef != m.ExecCoef || got.MemCoef != m.MemCoef || got.Err != m.Err || got.Protocol != m.Protocol {
		t.Fatal("decoded model differs from the encoded one")
	}
}

// validImage returns a well-formed persisted image to corrupt per test
// case, mirroring the learn package's corrupt-file regression matrix.
func validImage() modelImage {
	return modelImage{
		Version:     FormatVersion,
		NumFeatures: NumFeatures,
		Protocol:    "mesi",
		ExecCoef:    make([]float64, NumFeatures),
		MemCoef:     make([]float64, NumFeatures),
		MAPE:        0.1, MaxRel: 0.3, AggMAPE: 0.05, AggMax: 0.12,
		FitSamples: 100, HeldOut: 25,
	}
}

// encodeForged seals an arbitrary image in a checksummed envelope,
// bypassing Encode's invariants; tamper, when non-nil, corrupts the
// envelope after the checksum is computed.
func encodeForged(t *testing.T, img modelImage, tamper func(*modelEnvelope)) []byte {
	t.Helper()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&img); err != nil {
		t.Fatal(err)
	}
	env := modelEnvelope{
		Version: FormatVersion,
		Sum:     sha256.Sum256(payload.Bytes()),
		Payload: payload.Bytes(),
	}
	if tamper != nil {
		tamper(&env)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDecodeCorruptMatrix: forged files that declare a valid shape but
// carry poisoned payloads must return errors naming the defect — never
// panic, never load silently.
func TestDecodeCorruptMatrix(t *testing.T) {
	cases := []struct {
		name   string
		img    func() modelImage
		tamper func(*modelEnvelope)
		want   string
	}{
		{"envelope-version", validImage, func(e *modelEnvelope) { e.Version = 99 }, "version"},
		{"checksum-flip", validImage, func(e *modelEnvelope) { e.Payload[len(e.Payload)-1] ^= 0xff }, "checksum"},
		{"payload-version", func() modelImage { i := validImage(); i.Version = 99; return i }, nil, "version"},
		{"feature-count", func() modelImage { i := validImage(); i.NumFeatures = 7; return i }, nil, "features"},
		{"short-exec-coef", func() modelImage { i := validImage(); i.ExecCoef = i.ExecCoef[:3]; return i }, nil, "sized"},
		{"nil-mem-coef", func() modelImage { i := validImage(); i.MemCoef = nil; return i }, nil, "sized"},
		{"nan-coef", func() modelImage { i := validImage(); i.ExecCoef[2] = math.NaN(); return i }, nil, "non-finite"},
		{"inf-mem-coef", func() modelImage { i := validImage(); i.MemCoef[0] = math.Inf(1); return i }, nil, "non-finite"},
		{"negative-mape", func() modelImage { i := validImage(); i.MAPE = -1; return i }, nil, "bad error bounds"},
		{"nan-maxrel", func() modelImage { i := validImage(); i.MaxRel = math.NaN(); return i }, nil, "bad error bounds"},
		{"negative-agg-max", func() modelImage { i := validImage(); i.AggMax = -0.5; return i }, nil, "aggregate"},
		{"negative-samples", func() modelImage { i := validImage(); i.FitSamples = -1; return i }, nil, "negative sample counts"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(bytes.NewReader(encodeForged(t, tc.img(), tc.tamper)))
			if err == nil {
				t.Fatal("forged model decoded without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestDecodeGarbageAndTruncated: arbitrary bytes and streams cut off
// mid-write must error, not panic.
func TestDecodeGarbageAndTruncated(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage decoded without error")
	}
	m, err := Fit(syntheticSamples(200), "mesi")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	for _, frac := range []int{2, 4, 10} {
		cut := buf.Len() / frac
		if _, err := Decode(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("stream cut to %d/%d bytes decoded without error", cut, buf.Len())
		}
	}
}
