package experiment

import (
	"strings"

	"cohmeleon/internal/core"
	"cohmeleon/internal/esp"
	"cohmeleon/internal/soc"
	"cohmeleon/internal/stats"
	"cohmeleon/internal/workload"
)

// Fig9Point is one scatter point of Figure 9: a policy's geomean
// normalized performance on one SoC configuration.
type Fig9Point struct {
	SoC      string
	Policy   string
	NormExec float64
	NormMem  float64
	// Raw totals over the whole application (cycles, off-chip lines):
	// the headline aggregates use these, since per-phase ratios are
	// ill-conditioned when a cache-friendly policy reaches zero off-chip
	// accesses in a phase.
	RawExec float64
	RawMem  float64
}

// Fig9Result reproduces Figure 9: all eight policies across the eight
// evaluation configurations (SoC0 streaming/irregular, SoC1–SoC3 with
// mixed traffic generators, and the three case-study SoCs), each
// Cohmeleon model trained for TrainIterations with the (67.5, 7.5, 25)
// reward.
type Fig9Result struct {
	Points []Fig9Point
}

// fig9Configs returns the eight evaluation configurations in paper
// order.
func fig9Configs(seed uint64) []*soc.Config {
	return []*soc.Config{
		soc.SoC0(soc.TrafficStreaming, seed),
		soc.SoC0(soc.TrafficIrregular, seed),
		soc.SoC1(seed + 1),
		soc.SoC2(seed + 2),
		soc.SoC3(seed + 3),
		soc.SoC4(),
		soc.SoC5(),
		soc.SoC6(),
	}
}

// Figure9 runs the cross-SoC study. Two fan-out phases: every SoC's
// policy set (training + profiling) is prepared concurrently, then all
// (SoC, policy) test trials run as one flat pool. Each trial owns its
// policy instance and a fresh SoC; seeds are fixed up front, and the
// points are assembled in paper order from the indexed results, so the
// report is identical for any worker count.
func Figure9(opt Options) (*Fig9Result, error) {
	cfgs := fig9Configs(opt.Seed)
	for _, cfg := range cfgs {
		withProtocol(cfg, opt)
	}
	// Phase 1 already fans one task per SoC, so the nested fan-out inside
	// policySet (training ∥ profiling, and the profiler's trials) gets
	// only the leftover share of the pool; otherwise the effective
	// concurrency would multiply across nesting levels and blow far past
	// Options.Workers in SoC-sized allocations.
	inner := opt
	inner.Workers = opt.workers() / len(cfgs)
	if inner.Workers < 1 {
		inner.Workers = 1
	}
	tests := make([]*workload.App, len(cfgs))
	policies := make([][]esp.Policy, len(cfgs))
	if err := forEachOpt(opt, len(cfgs), func(i int) error {
		test, err := workload.AppFor(cfgs[i], opt.Seed+2000)
		if err != nil {
			return err
		}
		tests[i] = test
		pols, err := policySet(cfgs[i], inner, core.DefaultWeights())
		policies[i] = pols
		return err
	}); err != nil {
		return nil, err
	}

	perSoC := len(policies[0])
	results := make([]*workload.AppResult, len(cfgs)*perSoC)
	ctx := opt.ctx()
	if err := forEachOpt(opt, len(results), func(i int) error {
		ci, pi := i/perSoC, i%perSoC
		res, err := testPolicy(ctx, cfgs[ci], policies[ci][pi], tests[ci], opt.Seed+3)
		results[i] = res
		return err
	}); err != nil {
		return nil, err
	}

	out := &Fig9Result{}
	for ci, cfg := range cfgs {
		baseline := results[ci*perSoC] // first policy is fixed-non-coh-dma
		for pi, pol := range policies[ci] {
			res := results[ci*perSoC+pi]
			exec, mem := geoNormalized(res, baseline)
			out.Points = append(out.Points, Fig9Point{
				SoC: cfg.Name, Policy: pol.Name(), NormExec: exec, NormMem: mem,
				RawExec: float64(res.Cycles), RawMem: float64(res.OffChip),
			})
		}
	}
	return out, nil
}

// Point returns the measurement for a SoC and policy.
func (r *Fig9Result) Point(socName, pol string) (Fig9Point, bool) {
	for _, p := range r.Points {
		if p.SoC == socName && p.Policy == pol {
			return p, true
		}
	}
	return Fig9Point{}, false
}

// LearnedPoint returns the learned-policy measurement for a SoC,
// whatever learner stack it ran under: the agent reports as
// "cohmeleon" for the default stack and "cohmeleon-<algo>-<sched>"
// otherwise, and the headline must aggregate either.
func (r *Fig9Result) LearnedPoint(socName string) (Fig9Point, bool) {
	for _, p := range r.Points {
		if p.SoC == socName && strings.HasPrefix(p.Policy, "cohmeleon") {
			return p, true
		}
	}
	return Fig9Point{}, false
}

// SoCs returns the configuration names in order.
func (r *Fig9Result) SoCs() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range r.Points {
		if !seen[p.SoC] {
			seen[p.SoC] = true
			out = append(out, p.SoC)
		}
	}
	return out
}

// Render formats one table per SoC.
func (r *Fig9Result) Render() string {
	mt := &MultiTable{}
	for _, socName := range r.SoCs() {
		t := &Table{
			Title:  "Figure 9 — " + socName + " (geomean over phases, normalized to fixed-non-coh-dma)",
			Header: []string{"policy", "norm exec", "norm off-chip"},
		}
		for _, p := range r.Points {
			if p.SoC == socName {
				t.AddRow(p.Policy, f2(p.NormExec), f2(p.NormMem))
			}
		}
		mt.Tables = append(mt.Tables, t)
	}
	return mt.Render()
}

// HeadlineResult aggregates Figure 9 into the paper's headline numbers:
// Cohmeleon's average speedup and off-chip reduction versus the five
// fixed policies (four homogeneous plus heterogeneous) across all SoC
// configurations.
type HeadlineResult struct {
	Fig9            *Fig9Result
	AvgSpeedup      float64 // mean of (fixed exec / cohmeleon exec) − 1
	AvgMemReduction float64 // mean of 1 − (cohmeleon mem / fixed mem)
	VsManualExec    float64 // cohmeleon exec / manual exec (≈1 means match)
}

// fixedPolicyNames are the five design-time baselines of the headline.
var fixedPolicyNames = []string{
	"fixed-non-coh-dma", "fixed-llc-coh-dma", "fixed-coh-dma", "fixed-full-coh", "fixed-hetero",
}

// Headline computes the aggregate comparison (running Figure 9 first).
func Headline(opt Options) (*HeadlineResult, error) {
	fig9, err := Figure9(opt)
	if err != nil {
		return nil, err
	}
	return HeadlineFrom(fig9), nil
}

// HeadlineFrom aggregates an existing Figure-9 result.
func HeadlineFrom(fig9 *Fig9Result) *HeadlineResult {
	var speedups, reductions, vsManual []float64
	for _, socName := range fig9.SoCs() {
		cohm, ok := fig9.LearnedPoint(socName)
		if !ok {
			continue
		}
		for _, fixed := range fixedPolicyNames {
			fp, ok := fig9.Point(socName, fixed)
			if !ok {
				continue
			}
			speedups = append(speedups, stats.Ratio(fp.RawExec, cohm.RawExec)-1)
			reductions = append(reductions, 1-stats.Ratio(cohm.RawMem, fp.RawMem))
		}
		if mp, ok := fig9.Point(socName, "manual"); ok {
			vsManual = append(vsManual, stats.Ratio(cohm.RawExec, mp.RawExec))
		}
	}
	return &HeadlineResult{
		Fig9:            fig9,
		AvgSpeedup:      stats.Mean(speedups),
		AvgMemReduction: stats.Mean(reductions),
		VsManualExec:    stats.Mean(vsManual),
	}
}

// Render formats the headline numbers.
func (h *HeadlineResult) Render() string {
	t := &Table{
		Title:  "Headline — Cohmeleon vs the five fixed policies (across all SoCs)",
		Header: []string{"metric", "measured", "paper"},
	}
	t.AddRow("avg speedup", f1(h.AvgSpeedup*100)+"%", "38%")
	t.AddRow("avg off-chip reduction", f1(h.AvgMemReduction*100)+"%", "66%")
	t.AddRow("exec vs manually-tuned", f2(h.VsManualExec)+"x", "~1.0x (matches)")
	return t.Render()
}
