package experiment

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cohmeleon/internal/faultinject"
)

// noSleep is a retry policy sleep stub: no real timer, still honors
// cancellation.
func noSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }

// retryOptions builds options with an armed retry policy for fanout
// tests.
func retryOptions(attempts int) Options {
	opt := Tiny()
	opt.Workers = 1
	opt.Retry = &RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Sleep: noSleep}
	return opt
}

func TestRetryRescuesTransientCellFailure(t *testing.T) {
	ResetRetryStats()
	defer ResetRetryStats()
	attempts := 0
	err := forEachOpt(retryOptions(3), 1, func(i int) error {
		attempts++
		if attempts == 1 {
			return fmt.Errorf("flaky infrastructure: %w", faultinject.ErrTransient)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("transient failure not rescued: %v", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	if st := GetRetryStats(); st.CellRetries != 1 {
		t.Fatalf("CellRetries = %d, want 1", st.CellRetries)
	}
}

func TestRetryFailsFastOnDeterministicError(t *testing.T) {
	boom := errors.New("bad geometry")
	attempts := 0
	err := forEachOpt(retryOptions(5), 1, func(i int) error {
		attempts++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if attempts != 1 {
		t.Fatalf("deterministic error retried: %d attempts, want 1", attempts)
	}
}

func TestRetryExhaustsAttemptsAndReturnsLastError(t *testing.T) {
	attempts := 0
	err := forEachOpt(retryOptions(3), 1, func(i int) error {
		attempts++
		return fmt.Errorf("still down: %w", faultinject.ErrTransient)
	})
	if err == nil || !errors.Is(err, faultinject.ErrTransient) {
		t.Fatalf("err = %v, want transient", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (MaxAttempts)", attempts)
	}
}

func TestRetryAbandonedOnCancellationWrapsContextError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	opt := retryOptions(5)
	opt.Ctx = ctx
	opt.Retry.Sleep = func(ctx context.Context, _ time.Duration) error {
		cancel() // cancelled mid-backoff
		return ctx.Err()
	}
	err := forEachOpt(opt, 1, func(i int) error {
		return fmt.Errorf("flaky: %w", faultinject.ErrTransient)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want to wrap context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "retry abandoned") {
		t.Fatalf("err = %v, want the abandoned-retry chain with the transient cause", err)
	}
}

func TestRetryRescuesInjectedCellAttemptFault(t *testing.T) {
	// The CellAttempt failpoint is occurrence-counted and only checked
	// with a retry policy armed, so batch runs (no policy) never see it.
	faultinject.Enable(faultinject.NewScript(faultinject.FailTransient(faultinject.CellAttempt, 2)))
	defer faultinject.Disable()
	var runs int
	err := forEachOpt(retryOptions(3), 3, func(i int) error {
		runs++
		return nil
	})
	if err != nil {
		t.Fatalf("injected transient fault not rescued: %v", err)
	}
	if runs != 3 {
		t.Fatalf("runs = %d, want 3", runs)
	}
}

func TestRetryDelayIsDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	for index := 0; index < 4; index++ {
		for attempt := 1; attempt < 5; attempt++ {
			d1 := p.delay(index, attempt)
			d2 := p.delay(index, attempt)
			if d1 != d2 {
				t.Fatalf("delay(%d,%d) nondeterministic: %v vs %v", index, attempt, d1, d2)
			}
			pre := p.BaseDelay << (attempt - 1)
			if pre > p.MaxDelay {
				pre = p.MaxDelay
			}
			if d1 < pre/2 || d1 > pre {
				t.Fatalf("delay(%d,%d) = %v outside [%v, %v]", index, attempt, d1, pre/2, pre)
			}
		}
	}
}

func TestRetryPolicyValidate(t *testing.T) {
	bad := []RetryPolicy{
		{MaxAttempts: 0},
		{MaxAttempts: 1, BaseDelay: -time.Second},
		{MaxAttempts: 1, MaxDelay: -time.Second},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("Validate(%+v) passed, want error", p)
		}
	}
	good := DefaultRetryPolicy()
	if err := good.Validate(); err != nil {
		t.Fatalf("DefaultRetryPolicy invalid: %v", err)
	}
}

func TestIsTransientClassification(t *testing.T) {
	if IsTransient(errors.New("plain")) {
		t.Fatal("plain error classified transient")
	}
	if !IsTransient(fmt.Errorf("wrap: %w", faultinject.ErrTransient)) {
		t.Fatal("wrapped ErrTransient not classified transient")
	}
}

func TestGateBoundsCellsInFlightAcrossFanOuts(t *testing.T) {
	gate := NewGate(2)
	opt := Tiny()
	opt.Workers = 8
	opt.Gate = gate
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	err := forEachOpt(opt, 16, func(i int) error {
		n := inFlight.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		time.Sleep(2 * time.Millisecond)
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak in-flight cells = %d, want ≤ 2 (gate bound)", p)
	}
	if g := gate.InFlight(); g != 0 {
		t.Fatalf("gate not drained: %d slots held", g)
	}
}

func TestGateCancelledWhileWaitingForAdmission(t *testing.T) {
	gate := NewGate(1)
	gate <- struct{}{} // hold the only slot
	defer func() { <-gate }()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := gate.acquire(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("acquire on cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestDefaultDiagSinkStderrBytes pins the default sink's output to the
// exact pre-refactor stderr text, including the once-per-process
// gating: moving the warnings behind the sink seam must not change a
// byte of what the CLI prints.
func TestDefaultDiagSinkStderrBytes(t *testing.T) {
	var buf bytes.Buffer
	s := &stderrDiagSink{w: &buf}
	werr := errors.New("disk full")
	qerr := errors.New("checksum mismatch")
	rerr := errors.New("permission denied")
	events := []DiagEvent{
		{Kind: DiagWriteFailure, What: "run store", Err: werr},
		{Kind: DiagWriteFailure, What: "checkpoint", Err: werr}, // gated: silent
		{Kind: DiagQuarantine, Path: "/c/entry.gob", Err: qerr},
		{Kind: DiagQuarantine, Path: "/c/other.gob", Err: qerr}, // gated: silent
		{Kind: DiagReadFailure, Path: "/c/entry.gob", Err: rerr},
		{Kind: DiagReadFailure, Path: "/c/other.gob", Err: rerr}, // gated: silent
		{Kind: DiagCellSaved, Path: "/c/cell.gob"},              // counter-only, never printed
		{Kind: DiagCellReplayed, Path: "/c/cell.gob"},
		{Kind: DiagCellRetry, Err: werr},
	}
	for _, e := range events {
		s.Diag(e)
	}
	want := "cohmeleon: run store write failed (results still computed, just not persisted; further failures counted silently): disk full\n" +
		"cohmeleon: corrupt cache entry quarantined as /c/entry.gob.corrupt (checksum mismatch); it will be regenerated\n" +
		"cohmeleon: cache entry /c/entry.gob unreadable, treating as a miss: permission denied\n"
	if got := buf.String(); got != want {
		t.Fatalf("default sink output differs:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// reset re-arms the one-shot gating.
	s.reset()
	buf.Reset()
	s.Diag(DiagEvent{Kind: DiagWriteFailure, What: "run store", Err: werr})
	if !strings.Contains(buf.String(), "run store write failed") {
		t.Fatal("reset did not re-arm the write-failure warning")
	}
}

// recordingSink collects every event for assertions.
type recordingSink struct {
	mu     sync.Mutex
	events []DiagEvent
}

func (r *recordingSink) Diag(e DiagEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

func (r *recordingSink) kinds() map[DiagKind]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[DiagKind]int{}
	for _, e := range r.events {
		out[e.Kind]++
	}
	return out
}

func TestSetDiagSinkRoutesEventsAndRestores(t *testing.T) {
	rec := &recordingSink{}
	prev := SetDiagSink(rec)
	emitDiag(DiagEvent{Kind: DiagCellRetry, Err: errors.New("x")})
	emitDiag(DiagEvent{Kind: DiagCellSaved, Path: "p"})
	SetDiagSink(nil) // restore default
	if got := SetDiagSink(prev); got != defaultDiagSink {
		t.Fatalf("SetDiagSink(nil) installed %T, want the default sink", got)
	}
	SetDiagSink(nil)
	k := rec.kinds()
	if k[DiagCellRetry] != 1 || k[DiagCellSaved] != 1 {
		t.Fatalf("sink saw %v, want one retry and one save", k)
	}
}

func TestJobCountersFlowThroughContext(t *testing.T) {
	var c JobCounters
	ctx := WithJobCounters(context.Background(), &c)
	if got := jobCountersFrom(ctx); got != &c {
		t.Fatal("jobCountersFrom lost the attached counters")
	}
	if got := jobCountersFrom(context.Background()); got != nil {
		t.Fatal("jobCountersFrom invented counters on a bare context")
	}
}
