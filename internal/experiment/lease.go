package experiment

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"cohmeleon/internal/faultinject"
)

// Cell leases: the coordination layer that lets N independent cohmeleon
// processes (batch -shared runs, multiple serve instances, or a mix)
// cooperatively execute one sweep/learners grid over a single shared
// cache directory, coordinated only through the store — no network, no
// leader. Each worker claims a cell by atomically creating a
// checksummed lease file under <cache-dir>/leases/<checkpoint-key>/,
// renews a heartbeat counter while computing, publishes the result as
// the ordinary checkpoint cell, and then deletes the lease. Survivors
// detect dead holders by watching the renewal counter: a lease whose
// (token, renewals) pair has not advanced for a full TTL on the
// observer's own monotonic clock is stale and is reclaimed — renamed
// aside exactly once (the rename is the race arbiter), then re-leased
// under a bumped fencing token.
//
// Correctness never depends on the leases. Cells are pure functions of
// their inputs and publish via atomic rename, so the worst any lease
// failure — a lost race, a spurious reclaim of a live-but-slow holder,
// even computing with no lease at all — can cause is duplicated work
// publishing identical bytes. The leases exist to make duplication
// rare, not to make it safe; the store already made it safe.
//
// Clock-skew tolerance: staleness is never judged from file mtimes or
// wall-clock timestamps written by other hosts. An observer records the
// (token, renewals) pair it read and the reading on its OWN monotonic
// clock; only the pair failing to advance for a TTL of local monotonic
// time expires a lease. Skewed host clocks therefore cannot expire a
// live lease or keep a dead one alive.

// leaseVersion tags the lease-file envelope. Bump it when the image
// layout changes: old lease files then fail verification and are
// quarantined like any other corrupt blob.
const leaseVersion = 1

// leaseFallbackAfter is how many consecutive failed lease-acquire
// attempts (errors, not lost races) a cell tolerates before the worker
// computes it without a lease. Progress beats dedup: a broken lease
// directory must degrade to duplicated work, never to a stuck grid.
const leaseFallbackAfter = 3

// LeaseStats counts shared-mode lease traffic since the last reset.
type LeaseStats struct {
	// Acquired leases (fresh claims and post-reclaim re-claims).
	Acquired int64
	// Renewed heartbeats on held leases.
	Renewed int64
	// Expired counts stale-lease detections: a peer's lease whose
	// renewal counter stalled for a full TTL.
	Expired int64
	// Reclaimed counts stale leases this process actually took (won the
	// reclaim rename); at most one worker ever wins each.
	Reclaimed int64
	// Contended counts acquire races lost: the exclusive create found a
	// lease another worker published first.
	Contended int64
	// Lost counts held leases observed taken away (reclaimed by a peer
	// that judged this worker dead); the holder stops renewing and
	// finishes its in-flight cell, whose bytes are identical anyway.
	Lost int64
	// Fallbacks counts cells computed without a lease after repeated
	// acquire failures (never after mere contention).
	Fallbacks int64
}

var (
	leaseAcquired  atomic.Int64
	leaseRenewed   atomic.Int64
	leaseExpired   atomic.Int64
	leaseReclaimed atomic.Int64
	leaseContended atomic.Int64
	leaseLost      atomic.Int64
	leaseFallbacks atomic.Int64
)

// GetLeaseStats returns the counters since the last reset.
func GetLeaseStats() LeaseStats {
	return LeaseStats{
		Acquired:  leaseAcquired.Load(),
		Renewed:   leaseRenewed.Load(),
		Expired:   leaseExpired.Load(),
		Reclaimed: leaseReclaimed.Load(),
		Contended: leaseContended.Load(),
		Lost:      leaseLost.Load(),
		Fallbacks: leaseFallbacks.Load(),
	}
}

// ResetLeaseStats zeroes the lease counters.
func ResetLeaseStats() {
	leaseAcquired.Store(0)
	leaseRenewed.Store(0)
	leaseExpired.Store(0)
	leaseReclaimed.Store(0)
	leaseContended.Store(0)
	leaseLost.Store(0)
	leaseFallbacks.Store(0)
}

// leaseRoot names the lease area under a cache directory.
func leaseRoot(cacheDir string) string {
	return filepath.Join(cacheDir, "leases")
}

// leaseImage is the persisted lease payload, framed in the same
// checksummed envelope as every other durable file so torn or
// bit-rotted lease files are detected and quarantined, not misread.
type leaseImage struct {
	// Holder identifies the claiming worker (operator diagnosis only;
	// no decision ever branches on it matching a live process).
	Holder string
	// Token is the cell's fencing token: 1 on the first claim, bumped
	// by every reclaim, so each generation of holders is ordered.
	Token uint64
	// Renewals is the monotonic heartbeat counter; staleness is its
	// failure to advance, never a clock comparison.
	Renewals uint64
}

// errLeaseLost reports a renewal finding the lease gone or re-owned.
var errLeaseLost = errors.New("experiment: lease lost to a reclaimer")

// leaseState classifies one read of a lease file.
type leaseState int

const (
	leaseAbsent     leaseState = iota // no lease: the cell is claimable
	leaseHeld                         // verified lease present
	leaseUnreadable                   // read error (I/O, injected); not claimable this round
)

// leaseObs is one observer-side staleness record.
type leaseObs struct {
	token    uint64
	renewals uint64
	seen     time.Time // local monotonic reading at the last observed change
}

// leaseTable is one worker's view of one grid's leases.
type leaseTable struct {
	dir       string
	holder    string
	ttl       time.Duration
	heartbeat time.Duration

	mu      sync.Mutex
	obs     map[int]leaseObs
	lastTok map[int]uint64 // highest token ever seen per cell
}

// openLeaseTable opens (creating if needed) the lease directory for one
// grid. key is the checkpoint directory's name, so leases and cells of
// the same parameterized run always pair up — and runs with different
// parameters can never contend for each other's cells.
func openLeaseTable(cacheDir, key string, opt Options) (*leaseTable, error) {
	dir := filepath.Join(leaseRoot(cacheDir), key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiment: lease dir: %w", err)
	}
	return &leaseTable{
		dir:       dir,
		holder:    opt.workerID(),
		ttl:       opt.leaseTTL(),
		heartbeat: opt.leaseHeartbeat(),
		obs:       make(map[int]leaseObs),
		lastTok:   make(map[int]uint64),
	}, nil
}

// path names cell i's lease file.
func (lt *leaseTable) path(i int) string {
	return filepath.Join(lt.dir, fmt.Sprintf("cell-%06d.lease", i))
}

// read loads and verifies cell i's lease. A corrupt lease — torn by a
// kill -9 mid-write, bit-rotted, or foreign — is quarantined through
// the same envelope path as any corrupt store entry and reported
// absent, which makes the cell immediately claimable again.
func (lt *leaseTable) read(i int) (leaseImage, leaseState) {
	var img leaseImage
	path := lt.path(i)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return img, leaseAbsent
		}
		appRunMemo.noteReadFailure(path, err)
		return img, leaseUnreadable
	}
	if err := openBlob(data, leaseVersion, &img); err != nil {
		if qerr := quarantineBlob(path); qerr == nil {
			appRunMemo.noteQuarantine(path, err)
			return leaseImage{}, leaseAbsent
		}
		appRunMemo.noteReadFailure(path, err)
		return leaseImage{}, leaseUnreadable
	}
	lt.mu.Lock()
	if img.Token > lt.lastTok[i] {
		lt.lastTok[i] = img.Token
	}
	lt.mu.Unlock()
	return img, leaseHeld
}

// stale reports whether cell i's lease has missed a TTL of heartbeats,
// judged on this observer's monotonic clock. The first sighting of a
// (token, renewals) pair starts its clock; only the pair then failing
// to advance for a full TTL expires the lease.
func (lt *leaseTable) stale(i int, img leaseImage) bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	o, ok := lt.obs[i]
	if !ok || o.token != img.Token || o.renewals != img.Renewals {
		lt.obs[i] = leaseObs{token: img.Token, renewals: img.Renewals, seen: time.Now()}
		return false
	}
	return time.Since(o.seen) > lt.ttl
}

// forget drops cell i's staleness record (the cell completed).
func (lt *leaseTable) forget(i int) {
	lt.mu.Lock()
	delete(lt.obs, i)
	lt.mu.Unlock()
}

// claim tries to take cell i: acquire when absent, reclaim-then-acquire
// when stale, skip when held by a live peer or lost to a racer. The
// error return is reserved for acquire failures that are neither
// success nor contention — the caller counts those toward the
// no-lease fallback.
func (lt *leaseTable) claim(i int) (token uint64, claimed bool, err error) {
	img, st := lt.read(i)
	switch st {
	case leaseAbsent:
		lt.mu.Lock()
		tok := lt.lastTok[i] + 1
		lt.mu.Unlock()
		return lt.acquire(i, tok)
	case leaseHeld:
		if !lt.stale(i, img) {
			return 0, false, nil
		}
		leaseExpired.Add(1)
		if !lt.reclaim(i, img) {
			return 0, false, nil // a racer won the reclaim; re-read next round
		}
		return lt.acquire(i, img.Token+1)
	default:
		return 0, false, fmt.Errorf("experiment: lease %s unreadable", lt.path(i))
	}
}

// acquire publishes a fresh lease for cell i via exclusive create: of
// any number of racing workers, exactly one wins the O_EXCL. A failed
// write after a won create withdraws the lease rather than leaving a
// torn file to wedge the cell for a TTL.
func (lt *leaseTable) acquire(i int, tok uint64) (uint64, bool, error) {
	if err := faultinject.Check(faultinject.LeaseAcquire); err != nil {
		return 0, false, err
	}
	data, err := sealBlob(leaseVersion, &leaseImage{Holder: lt.holder, Token: tok})
	if err != nil {
		return 0, false, err
	}
	f, err := os.OpenFile(lt.path(i), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			leaseContended.Add(1)
			return 0, false, nil
		}
		return 0, false, err
	}
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(lt.path(i))
		return 0, false, werr
	}
	leaseAcquired.Add(1)
	lt.mu.Lock()
	if tok > lt.lastTok[i] {
		lt.lastTok[i] = tok
	}
	lt.mu.Unlock()
	return tok, true, nil
}

// renew advances the heartbeat counter of a held lease via temp file +
// atomic rename, so observers never read a torn renewal. Finding the
// lease gone or re-owned means a peer reclaimed it (it judged this
// worker dead): the holder records the loss and stops renewing — but
// keeps computing, because its published bytes are identical to the
// reclaimer's.
func (lt *leaseTable) renew(i int, tok uint64) error {
	img, st := lt.read(i)
	if st == leaseUnreadable {
		return fmt.Errorf("experiment: lease %s unreadable during renewal", lt.path(i))
	}
	if st == leaseAbsent || img.Token != tok || img.Holder != lt.holder {
		leaseLost.Add(1)
		return errLeaseLost
	}
	if err := faultinject.Check(faultinject.LeaseRenew); err != nil {
		return err
	}
	img.Renewals++
	data, err := sealBlob(leaseVersion, &img)
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(lt.dir, fmt.Sprintf(".lease-%d-*.tmp", os.Getpid()))
	if err != nil {
		return err
	}
	if _, err = f.Write(data); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err = f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err = os.Rename(f.Name(), lt.path(i)); err != nil {
		os.Remove(f.Name())
		return err
	}
	leaseRenewed.Add(1)
	return nil
}

// release deletes a still-owned lease after its cell published. An
// injected or real failure here simply orphans the lease — harmless,
// because claims are only ever attempted on cells whose checkpoint is
// absent, and the fsck sweeps leases whose cell already published.
func (lt *leaseTable) release(i int, tok uint64) {
	if err := faultinject.Check(faultinject.LeaseRelease); err != nil {
		return
	}
	img, st := lt.read(i)
	if st == leaseHeld && img.Holder == lt.holder && img.Token == tok {
		os.Remove(lt.path(i))
	}
}

// reclaim takes a stale lease away from its dead holder by renaming it
// to a tokened marker file. The rename is the exactly-once arbiter:
// racing reclaimers name the same destination (they read the same
// token), so every loser's rename fails with ENOENT and exactly one
// worker counts the reclaim. The markers stay behind as the audit
// trail — one per reclaim, which is how the chaos harness proves
// "reclaimed exactly once".
func (lt *leaseTable) reclaim(i int, img leaseImage) bool {
	if err := faultinject.Check(faultinject.LeaseReclaim); err != nil {
		return false
	}
	dst := fmt.Sprintf("%s.reclaimed-%d", lt.path(i), img.Token)
	if err := os.Rename(lt.path(i), dst); err != nil {
		return false
	}
	leaseReclaimed.Add(1)
	lt.forget(i)
	return true
}

// keepAlive renews cell i's lease every heartbeat interval until
// stopped. Renewal failures other than loss are retried next tick (the
// TTL spans several heartbeats, so transient failures don't expire the
// lease); a lost lease ends the loop.
func (lt *leaseTable) keepAlive(i int, tok uint64) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(lt.heartbeat)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if err := lt.renew(i, tok); errors.Is(err, errLeaseLost) {
					return
				}
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}
