package experiment

import (
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"cohmeleon/internal/esp"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
	"cohmeleon/internal/workload"
)

// Content-keyed memoization of application runs. A static (non-learning)
// policy makes an app run a pure function of (SoC configuration, policy,
// application, seed): the simulator is deterministic, a fresh SoC is
// built per run, and the policy neither holds mutable state nor observes
// anything it retains. runApp therefore consults a process-wide memo
// keyed by a content hash of those four before simulating, and —
// when a cache directory is configured — a persistent store, so
// repeated artifact regeneration skips the simulation entirely.
//
// Policies opt in by implementing MemoKey (Fixed, Manual and
// FixedHeterogeneous do). Learning policies and Random bypass the cache:
// their runs mutate policy state (value tables, reward history, RNG
// position), so replaying a stored result would diverge from a real run.
// Byte-identity of every report — across worker counts and with the
// cache cold, warm or disabled — follows from the memoized value being
// exactly the value a fresh simulation would produce.

// memoKeyed marks a policy whose app runs are pure functions of the run
// inputs. The key must change whenever the policy's decisions could.
type memoKeyed interface{ MemoKey() string }

// runCacheVersion tags the content hash and the persisted-run format.
// Bump it whenever the simulator's timing model or the persisted layout
// changes: stale cache directories then miss cleanly instead of
// resurrecting results from an older model.
const runCacheVersion = 1

type runKey [sha256.Size]byte

// runCacheKey derives the content key, reporting ok=false when the
// policy is not memoizable.
func runCacheKey(cfg *soc.Config, pol esp.Policy, app *workload.App, seed uint64) (runKey, bool) {
	mk, ok := pol.(memoKeyed)
	if !ok {
		return runKey{}, false
	}
	h := sha256.New()
	fmt.Fprintf(h, "cohrun|v%d|seed%d|pol|%s|%s|ovh%d\n",
		runCacheVersion, seed, pol.Name(), mk.MemoKey(), pol.OverheadCycles())
	cfg.HashContent(h)
	app.HashContent(h)
	// Reuse functions are opaque, but a run only ever evaluates them at
	// the app's thread footprints: probing those outputs pins their
	// behavioral contribution exactly.
	for _, fp := range app.Footprints() {
		for i := range cfg.Accs {
			spec := cfg.Accs[i].Spec
			fmt.Fprintf(h, "reuse|%s|%d|%d\n", cfg.Accs[i].InstName, fp, spec.Reuse(fp, spec.PLMBytes))
		}
	}
	var k runKey
	h.Sum(k[:0])
	return k, true
}

// RunCacheStats counts run-cache traffic since the last reset.
type RunCacheStats struct {
	// Hits served from the in-process memo (including callers that
	// waited on a concurrent worker's in-flight simulation).
	Hits int64
	// DiskHits served from the persistent cache directory.
	DiskHits int64
	// Misses that had to simulate.
	Misses int64
	// Evictions of in-process entries past the capacity bound.
	Evictions int64
}

// memoEntry is one in-flight or completed run. Waiters block on done;
// res is the insulated master copy (callers get clones).
type memoEntry struct {
	done chan struct{}
	res  *workload.AppResult
	err  error
}

type runMemo struct {
	mu      sync.Mutex
	enabled bool
	dir     string
	cap     int
	entries map[runKey]*memoEntry
	order   []runKey // insertion order, for capacity eviction

	hits, diskHits, misses, evictions atomic.Int64
}

// appRunMemo is the process-wide run cache. In-process memoization is
// always on (results are byte-identical either way — see the file
// comment); persistence activates when a directory is configured.
var appRunMemo = &runMemo{
	enabled: true,
	cap:     1024,
	entries: make(map[runKey]*memoEntry),
}

// SetRunCacheDir enables persistent run caching under dir (created if
// missing); an empty dir disables persistence but keeps the in-process
// memo.
func SetRunCacheDir(dir string) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("experiment: run cache dir: %w", err)
		}
	}
	appRunMemo.mu.Lock()
	defer appRunMemo.mu.Unlock()
	appRunMemo.dir = dir
	return nil
}

// EnableRunCache turns the run cache on or off entirely (off: every
// runApp simulates, nothing is stored). Reports are byte-identical
// either way; the switch exists for benchmarking and identity tests.
func EnableRunCache(on bool) {
	appRunMemo.mu.Lock()
	defer appRunMemo.mu.Unlock()
	appRunMemo.enabled = on
}

// SetRunCacheCapacity bounds the in-process memo entry count (oldest
// entries evict first). The persistent store is unbounded.
func SetRunCacheCapacity(n int) {
	if n < 1 {
		n = 1
	}
	appRunMemo.mu.Lock()
	defer appRunMemo.mu.Unlock()
	appRunMemo.cap = n
	appRunMemo.evictLocked()
}

// ResetRunCache drops every in-process entry and zeroes the statistics;
// the cache directory setting (and its files) are untouched.
func ResetRunCache() {
	appRunMemo.mu.Lock()
	defer appRunMemo.mu.Unlock()
	appRunMemo.entries = make(map[runKey]*memoEntry)
	appRunMemo.order = nil
	appRunMemo.hits.Store(0)
	appRunMemo.diskHits.Store(0)
	appRunMemo.misses.Store(0)
	appRunMemo.evictions.Store(0)
}

// GetRunCacheStats returns the counters since the last reset.
func GetRunCacheStats() RunCacheStats {
	return RunCacheStats{
		Hits:      appRunMemo.hits.Load(),
		DiskHits:  appRunMemo.diskHits.Load(),
		Misses:    appRunMemo.misses.Load(),
		Evictions: appRunMemo.evictions.Load(),
	}
}

// getOrRun returns the memoized result for key, loading it from the
// persistent store or simulating via run on a miss. Concurrent callers
// of the same key share one simulation.
func (m *runMemo) getOrRun(key runKey, cfg *soc.Config, app *workload.App, run func() (*workload.AppResult, error)) (*workload.AppResult, error) {
	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		m.mu.Unlock()
		<-e.done
		if e.err != nil {
			// The owning computation failed; recompute uncached so every
			// caller surfaces the (deterministic) error independently.
			return run()
		}
		m.hits.Add(1)
		return cloneAppResult(e.res), nil
	}
	e := &memoEntry{done: make(chan struct{})}
	m.entries[key] = e
	m.order = append(m.order, key)
	m.evictLocked()
	dir := m.dir
	m.mu.Unlock()

	if dir != "" {
		if res, ok := loadPersistedRun(dir, key, cfg, app); ok {
			m.diskHits.Add(1)
			e.res = res
			close(e.done)
			return cloneAppResult(res), nil
		}
	}
	res, err := run()
	if err != nil {
		e.err = err
		close(e.done)
		m.mu.Lock()
		delete(m.entries, key)
		m.mu.Unlock()
		return nil, err
	}
	m.misses.Add(1)
	e.res = cloneAppResult(res) // insulate the master from caller mutation
	close(e.done)
	if dir != "" {
		storePersistedRun(dir, key, e.res)
	}
	return res, nil
}

// evictLocked enforces the capacity bound (caller holds mu). Evicting
// an in-flight entry is safe: its waiters hold the entry pointer and
// still see the close; the map merely forgets the key.
func (m *runMemo) evictLocked() {
	for len(m.entries) > m.cap && len(m.order) > 0 {
		k := m.order[0]
		m.order = m.order[1:]
		if _, ok := m.entries[k]; ok {
			delete(m.entries, k)
			m.evictions.Add(1)
		}
	}
}

// cloneAppResult deep-copies the phases and invocation results so no
// two callers share mutable structure. The App and AccTile pointers are
// shared: both are read-only descriptors for result consumers.
func cloneAppResult(r *workload.AppResult) *workload.AppResult {
	out := *r
	out.Phases = make([]workload.PhaseResult, len(r.Phases))
	for i := range r.Phases {
		p := r.Phases[i]
		invs := make([]*esp.Result, len(p.Invocations))
		for j, inv := range p.Invocations {
			c := *inv
			invs[j] = &c
		}
		p.Invocations = invs
		out.Phases[i] = p
	}
	return &out
}

// Persisted-run layout: a portable mirror of workload.AppResult. The
// AccTile pointers inside esp.Result are simulation-instance identities
// and cannot be stored; the instance name round-trips instead and is
// re-resolved against the (content-identical) configuration on load.
type persistedRun struct {
	Version int
	Policy  string
	Cycles  sim.Cycles
	OffChip int64
	Phases  []persistedPhase
}

type persistedPhase struct {
	Name        string
	Cycles      sim.Cycles
	OffChip     int64
	Invocations []persistedInv
}

type persistedInv struct {
	AccInst        string
	Mode           soc.Mode
	FootprintBytes int64
	ExecCycles     sim.Cycles
	ActiveCycles   sim.Cycles
	CommCycles     sim.Cycles
	OffChipApprox  float64
	OffChipTrue    int64
}

// runCachePath names a key's file in the cache directory.
func runCachePath(dir string, key runKey) string {
	return filepath.Join(dir, fmt.Sprintf("run-v%d-%x.gob", runCacheVersion, key[:]))
}

// storePersistedRun writes the result for key atomically (temp file +
// rename, so concurrent processes sharing a cache directory never read
// a torn file). Failures are silent: persistence is an optimization.
func storePersistedRun(dir string, key runKey, res *workload.AppResult) {
	p := persistedRun{
		Version: runCacheVersion,
		Policy:  res.Policy,
		Cycles:  res.Cycles,
		OffChip: res.OffChip,
	}
	for i := range res.Phases {
		ph := &res.Phases[i]
		pp := persistedPhase{Name: ph.Name, Cycles: ph.Cycles, OffChip: ph.OffChip}
		for _, inv := range ph.Invocations {
			pp.Invocations = append(pp.Invocations, persistedInv{
				AccInst:        inv.Acc.InstName,
				Mode:           inv.Mode,
				FootprintBytes: inv.FootprintBytes,
				ExecCycles:     inv.ExecCycles,
				ActiveCycles:   inv.ActiveCycles,
				CommCycles:     inv.CommCycles,
				OffChipApprox:  inv.OffChipApprox,
				OffChipTrue:    inv.OffChipTrue,
			})
		}
		p.Phases = append(p.Phases, pp)
	}
	f, err := os.CreateTemp(dir, "run-*.tmp")
	if err != nil {
		return
	}
	if err := gob.NewEncoder(f).Encode(&p); err != nil {
		f.Close()
		os.Remove(f.Name())
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return
	}
	if err := os.Rename(f.Name(), runCachePath(dir, key)); err != nil {
		os.Remove(f.Name())
	}
}

// loadPersistedRun reads and revives the result for key, reporting
// ok=false when absent, unreadable, or from another format version.
func loadPersistedRun(dir string, key runKey, cfg *soc.Config, app *workload.App) (*workload.AppResult, bool) {
	f, err := os.Open(runCachePath(dir, key))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	var p persistedRun
	if err := gob.NewDecoder(f).Decode(&p); err != nil || p.Version != runCacheVersion {
		return nil, false
	}
	// Revive the accelerator identities against the configuration: the
	// content key guarantees cfg matches the one the run simulated, so a
	// synthesized read-only tile per instance carries the same
	// ID/InstName/Spec a fresh simulation's results would.
	tiles := make(map[string]*soc.AccTile, len(cfg.Accs))
	for i := range cfg.Accs {
		tiles[cfg.Accs[i].InstName] = &soc.AccTile{
			ID:       i,
			InstName: cfg.Accs[i].InstName,
			Spec:     cfg.Accs[i].Spec,
		}
	}
	out := &workload.AppResult{
		App:     app,
		Policy:  p.Policy,
		Cycles:  p.Cycles,
		OffChip: p.OffChip,
	}
	for _, pp := range p.Phases {
		ph := workload.PhaseResult{Name: pp.Name, Cycles: pp.Cycles, OffChip: pp.OffChip}
		for _, pi := range pp.Invocations {
			tile, ok := tiles[pi.AccInst]
			if !ok {
				return nil, false // foreign file: treat as a miss
			}
			ph.Invocations = append(ph.Invocations, &esp.Result{
				Acc:            tile,
				Mode:           pi.Mode,
				FootprintBytes: pi.FootprintBytes,
				ExecCycles:     pi.ExecCycles,
				ActiveCycles:   pi.ActiveCycles,
				CommCycles:     pi.CommCycles,
				OffChipApprox:  pi.OffChipApprox,
				OffChipTrue:    pi.OffChipTrue,
			})
		}
		out.Phases = append(out.Phases, ph)
	}
	return out, true
}
