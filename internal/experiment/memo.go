package experiment

import (
	"context"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"cohmeleon/internal/esp"
	"cohmeleon/internal/faultinject"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
	"cohmeleon/internal/workload"
)

// Content-keyed memoization of application runs. A static (non-learning)
// policy makes an app run a pure function of (SoC configuration, policy,
// application, seed): the simulator is deterministic, a fresh SoC is
// built per run, and the policy neither holds mutable state nor observes
// anything it retains. runApp therefore consults a process-wide memo
// keyed by a content hash of those four before simulating, and —
// when a cache directory is configured — a persistent store, so
// repeated artifact regeneration skips the simulation entirely.
//
// Policies opt in by implementing MemoKey (Fixed, Manual and
// FixedHeterogeneous do). Learning policies and Random bypass the cache:
// their runs mutate policy state (value tables, reward history, RNG
// position), so replaying a stored result would diverge from a real run.
// Byte-identity of every report — across worker counts and with the
// cache cold, warm or disabled — follows from the memoized value being
// exactly the value a fresh simulation would produce.

// memoKeyed marks a policy whose app runs are pure functions of the run
// inputs. The key must change whenever the policy's decisions could.
type memoKeyed interface{ MemoKey() string }

// runCacheVersion tags the content hash and the persisted-run format.
// Bump it whenever the simulator's timing model or the persisted layout
// changes: stale cache directories then miss cleanly instead of
// resurrecting results from an older model. Version 2 framed every
// entry in the checksummed blob envelope (blob.go), so corruption is
// detected by re-hashing rather than by hoping gob notices.
const runCacheVersion = 2

type runKey [sha256.Size]byte

// runCacheKey derives the content key, reporting ok=false when the
// policy is not memoizable.
func runCacheKey(cfg *soc.Config, pol esp.Policy, app *workload.App, seed uint64) (runKey, bool) {
	mk, ok := pol.(memoKeyed)
	if !ok {
		return runKey{}, false
	}
	h := sha256.New()
	fmt.Fprintf(h, "cohrun|v%d|seed%d|pol|%s|%s|ovh%d\n",
		runCacheVersion, seed, pol.Name(), mk.MemoKey(), pol.OverheadCycles())
	cfg.HashContent(h)
	app.HashContent(h)
	// Reuse functions are opaque, but a run only ever evaluates them at
	// the app's thread footprints: probing those outputs pins their
	// behavioral contribution exactly.
	for _, fp := range app.Footprints() {
		for i := range cfg.Accs {
			spec := cfg.Accs[i].Spec
			fmt.Fprintf(h, "reuse|%s|%d|%d\n", cfg.Accs[i].InstName, fp, spec.Reuse(fp, spec.PLMBytes))
		}
	}
	var k runKey
	h.Sum(k[:0])
	return k, true
}

// RunCacheStats counts run-cache traffic since the last reset.
type RunCacheStats struct {
	// Hits served from the in-process memo (including callers that
	// waited on a concurrent worker's in-flight simulation).
	Hits int64
	// DiskHits served from the persistent cache directory.
	DiskHits int64
	// Misses that had to simulate.
	Misses int64
	// Evictions of in-process entries past the capacity bound.
	Evictions int64
	// WriteFailures counts store or checkpoint writes that failed
	// (persistence is an optimization, but the failures are reported —
	// once loudly on stderr, then through this counter — instead of
	// being dropped on the floor).
	WriteFailures int64
	// ReadFailures counts entries that could not be read for reasons
	// other than absence (permissions, I/O errors); each was treated as
	// a miss.
	ReadFailures int64
	// Quarantined counts corrupt entries renamed to *.corrupt so they
	// are regenerated instead of being re-read (and re-failing) forever.
	Quarantined int64
}

// memoEntry is one in-flight or completed run. Waiters block on done;
// res is the insulated master copy (callers get clones).
type memoEntry struct {
	done chan struct{}
	res  *workload.AppResult
	err  error
}

type runMemo struct {
	mu      sync.Mutex
	enabled bool
	dir     string
	cap     int
	entries map[runKey]*memoEntry
	order   []runKey // insertion order, for capacity eviction

	hits, diskHits, misses, evictions        atomic.Int64
	writeFailures, readFailures, quarantined atomic.Int64
}

// noteWriteFailure records a failed store/checkpoint/manifest write:
// counted always, reported through the diagnostics sink (the default
// sink warns once per process; the first failure names its cause).
func (m *runMemo) noteWriteFailure(what string, err error) {
	m.writeFailures.Add(1)
	emitDiag(DiagEvent{Kind: DiagWriteFailure, What: what, Err: err})
}

// noteQuarantine records a corrupt entry being moved aside.
func (m *runMemo) noteQuarantine(path string, cause error) {
	m.quarantined.Add(1)
	emitDiag(DiagEvent{Kind: DiagQuarantine, Path: path, Err: cause})
}

// noteReadFailure records an entry that exists but could not be read.
func (m *runMemo) noteReadFailure(path string, err error) {
	m.readFailures.Add(1)
	emitDiag(DiagEvent{Kind: DiagReadFailure, Path: path, Err: err})
}

// appRunMemo is the process-wide run cache. In-process memoization is
// always on (results are byte-identical either way — see the file
// comment); persistence activates when a directory is configured.
var appRunMemo = &runMemo{
	enabled: true,
	cap:     1024,
	entries: make(map[runKey]*memoEntry),
}

// SetRunCacheDir enables persistent run caching under dir (created if
// missing); an empty dir disables persistence but keeps the in-process
// memo. The directory is probed for writability up front, so a bad
// -cache-dir fails once with a clear error instead of silently dropping
// every write for the whole run.
func SetRunCacheDir(dir string) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("experiment: run cache dir: %w", err)
		}
		probe, err := os.CreateTemp(dir, ".probe-*.tmp")
		if err != nil {
			return fmt.Errorf("experiment: run cache dir %s is not writable: %w", dir, err)
		}
		probe.Close()
		os.Remove(probe.Name())
	}
	appRunMemo.mu.Lock()
	defer appRunMemo.mu.Unlock()
	appRunMemo.dir = dir
	return nil
}

// runCacheDirectory returns the configured persistent cache directory
// ("" when persistence is off).
func runCacheDirectory() string {
	appRunMemo.mu.Lock()
	defer appRunMemo.mu.Unlock()
	return appRunMemo.dir
}

// EnableRunCache turns the run cache on or off entirely (off: every
// runApp simulates, nothing is stored). Reports are byte-identical
// either way; the switch exists for benchmarking and identity tests.
func EnableRunCache(on bool) {
	appRunMemo.mu.Lock()
	defer appRunMemo.mu.Unlock()
	appRunMemo.enabled = on
}

// SetRunCacheCapacity bounds the in-process memo entry count (oldest
// entries evict first). The persistent store is unbounded.
func SetRunCacheCapacity(n int) {
	if n < 1 {
		n = 1
	}
	appRunMemo.mu.Lock()
	defer appRunMemo.mu.Unlock()
	appRunMemo.cap = n
	appRunMemo.evictLocked()
}

// ResetRunCache drops every in-process entry and zeroes the statistics;
// the cache directory setting (and its files) are untouched.
func ResetRunCache() {
	appRunMemo.mu.Lock()
	defer appRunMemo.mu.Unlock()
	appRunMemo.entries = make(map[runKey]*memoEntry)
	appRunMemo.order = nil
	appRunMemo.hits.Store(0)
	appRunMemo.diskHits.Store(0)
	appRunMemo.misses.Store(0)
	appRunMemo.evictions.Store(0)
	appRunMemo.writeFailures.Store(0)
	appRunMemo.readFailures.Store(0)
	appRunMemo.quarantined.Store(0)
	ResetRetryStats()
	ResetLeaseStats()
	resetFidelity()
	defaultDiagSink.reset()
}

// GetRunCacheStats returns the counters since the last reset.
func GetRunCacheStats() RunCacheStats {
	return RunCacheStats{
		Hits:          appRunMemo.hits.Load(),
		DiskHits:      appRunMemo.diskHits.Load(),
		Misses:        appRunMemo.misses.Load(),
		Evictions:     appRunMemo.evictions.Load(),
		WriteFailures: appRunMemo.writeFailures.Load(),
		ReadFailures:  appRunMemo.readFailures.Load(),
		Quarantined:   appRunMemo.quarantined.Load(),
	}
}

// getOrRun returns the memoized result for key, loading it from the
// persistent store or simulating via run on a miss. Concurrent callers
// of the same key share one simulation — including callers from
// different serve-mode jobs, whose contexts carry their own counters so
// each job sees its share of the dedup.
func (m *runMemo) getOrRun(ctx context.Context, key runKey, cfg *soc.Config, app *workload.App, run func() (*workload.AppResult, error)) (*workload.AppResult, error) {
	jc := jobCountersFrom(ctx)
	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		m.mu.Unlock()
		<-e.done
		if e.err != nil {
			// The owning computation failed; recompute uncached so every
			// caller surfaces the (deterministic) error independently.
			return run()
		}
		m.hits.Add(1)
		if jc != nil {
			jc.MemoHits.Add(1)
		}
		return cloneAppResult(e.res), nil
	}
	e := &memoEntry{done: make(chan struct{})}
	m.entries[key] = e
	m.order = append(m.order, key)
	m.evictLocked()
	dir := m.dir
	m.mu.Unlock()

	if dir != "" {
		// Absent, corrupt (now quarantined), and unreadable entries all
		// fall through to simulation; only a verified entry is served.
		if res, st := loadPersistedRun(dir, key, cfg, app); st == loadHit {
			m.diskHits.Add(1)
			if jc != nil {
				jc.DiskHits.Add(1)
			}
			e.res = res
			close(e.done)
			return cloneAppResult(res), nil
		}
	}
	res, err := run()
	if err != nil {
		e.err = err
		close(e.done)
		m.mu.Lock()
		delete(m.entries, key)
		m.mu.Unlock()
		return nil, err
	}
	m.misses.Add(1)
	if jc != nil {
		jc.Misses.Add(1)
	}
	e.res = cloneAppResult(res) // insulate the master from caller mutation
	close(e.done)
	if dir != "" {
		storePersistedRun(dir, key, e.res)
	}
	return res, nil
}

// evictLocked enforces the capacity bound (caller holds mu). Evicting
// an in-flight entry is safe: its waiters hold the entry pointer and
// still see the close; the map merely forgets the key.
func (m *runMemo) evictLocked() {
	for len(m.entries) > m.cap && len(m.order) > 0 {
		k := m.order[0]
		m.order = m.order[1:]
		if _, ok := m.entries[k]; ok {
			delete(m.entries, k)
			m.evictions.Add(1)
		}
	}
}

// cloneAppResult deep-copies the phases and invocation results so no
// two callers share mutable structure. The App and AccTile pointers are
// shared: both are read-only descriptors for result consumers.
func cloneAppResult(r *workload.AppResult) *workload.AppResult {
	out := *r
	out.Phases = make([]workload.PhaseResult, len(r.Phases))
	for i := range r.Phases {
		p := r.Phases[i]
		invs := make([]*esp.Result, len(p.Invocations))
		for j, inv := range p.Invocations {
			c := *inv
			invs[j] = &c
		}
		p.Invocations = invs
		out.Phases[i] = p
	}
	return &out
}

// Persisted-run layout: a portable mirror of workload.AppResult, framed
// in the checksummed blob envelope on disk. The AccTile pointers inside
// esp.Result are simulation-instance identities and cannot be stored;
// the instance name round-trips instead and is re-resolved against the
// (content-identical) configuration on load.
type persistedRun struct {
	Version int
	Policy  string
	Cycles  sim.Cycles
	OffChip int64
	Phases  []persistedPhase
}

type persistedPhase struct {
	Name        string
	Cycles      sim.Cycles
	OffChip     int64
	Invocations []persistedInv
}

type persistedInv struct {
	AccInst        string
	Mode           soc.Mode
	FootprintBytes int64
	ExecCycles     sim.Cycles
	ActiveCycles   sim.Cycles
	CommCycles     sim.Cycles
	OffChipApprox  float64
	OffChipTrue    int64
}

// runCachePath names a key's file in the cache directory.
func runCachePath(dir string, key runKey) string {
	return filepath.Join(dir, fmt.Sprintf("run-v%d-%x.gob", runCacheVersion, key[:]))
}

// storePersistedRun writes the result for key atomically (temp file +
// rename, so concurrent processes sharing a cache directory never read
// a torn file). Persistence is an optimization — the computed result is
// still returned on failure — but failures are counted and the first
// one is reported, not dropped on the floor.
func storePersistedRun(dir string, key runKey, res *workload.AppResult) {
	p := persistedRun{
		Version: runCacheVersion,
		Policy:  res.Policy,
		Cycles:  res.Cycles,
		OffChip: res.OffChip,
	}
	for i := range res.Phases {
		ph := &res.Phases[i]
		pp := persistedPhase{Name: ph.Name, Cycles: ph.Cycles, OffChip: ph.OffChip}
		for _, inv := range ph.Invocations {
			pp.Invocations = append(pp.Invocations, persistedInv{
				AccInst:        inv.Acc.InstName,
				Mode:           inv.Mode,
				FootprintBytes: inv.FootprintBytes,
				ExecCycles:     inv.ExecCycles,
				ActiveCycles:   inv.ActiveCycles,
				CommCycles:     inv.CommCycles,
				OffChipApprox:  inv.OffChipApprox,
				OffChipTrue:    inv.OffChipTrue,
			})
		}
		p.Phases = append(p.Phases, pp)
	}
	data, err := sealBlob(runCacheVersion, &p)
	if err == nil {
		err = writeBlobAtomic(dir, runCachePath(dir, key), data,
			faultinject.StoreCreate, faultinject.StoreWrite, faultinject.StoreRename)
	}
	if err != nil {
		appRunMemo.noteWriteFailure("run store", err)
	}
}

// loadStatus distinguishes why a persisted entry did not load.
type loadStatus int

const (
	loadHit      loadStatus = iota
	loadAbsent              // no entry for this key (the common miss)
	loadCorrupt             // entry existed but failed verification; quarantined
	loadReadFail            // entry exists but could not be read (I/O, permissions)
)

// loadPersistedRun reads, verifies, and revives the result for key.
// Absence is the one benign outcome; a corrupt entry — undecodable,
// checksum mismatch, wrong embedded version, or foreign content — is
// quarantined (renamed *.corrupt) so it is regenerated exactly once
// instead of being re-read and re-failing on every run.
func loadPersistedRun(dir string, key runKey, cfg *soc.Config, app *workload.App) (*workload.AppResult, loadStatus) {
	path := runCachePath(dir, key)
	var data []byte
	err := faultinject.Check(faultinject.StoreOpen)
	if err == nil {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		if os.IsNotExist(err) {
			return nil, loadAbsent
		}
		appRunMemo.noteReadFailure(path, err)
		return nil, loadReadFail
	}
	res, err := revivePersistedRun(data, cfg, app)
	if err != nil {
		if qerr := quarantineBlob(path); qerr == nil {
			appRunMemo.noteQuarantine(path, err)
		} else {
			appRunMemo.noteReadFailure(path, err)
		}
		return nil, loadCorrupt
	}
	return res, loadHit
}

// revivePersistedRun verifies an entry's bytes and rebuilds the result.
// Any error means the entry is corrupt.
func revivePersistedRun(data []byte, cfg *soc.Config, app *workload.App) (*workload.AppResult, error) {
	var p persistedRun
	if err := openBlob(data, runCacheVersion, &p); err != nil {
		return nil, err
	}
	if p.Version != runCacheVersion {
		return nil, fmt.Errorf("experiment: run entry payload version %d, want %d", p.Version, runCacheVersion)
	}
	// Revive the accelerator identities against the configuration: the
	// content key guarantees cfg matches the one the run simulated, so a
	// synthesized read-only tile per instance carries the same
	// ID/InstName/Spec a fresh simulation's results would.
	tiles := make(map[string]*soc.AccTile, len(cfg.Accs))
	for i := range cfg.Accs {
		tiles[cfg.Accs[i].InstName] = &soc.AccTile{
			ID:       i,
			InstName: cfg.Accs[i].InstName,
			Spec:     cfg.Accs[i].Spec,
		}
	}
	out := &workload.AppResult{
		App:     app,
		Policy:  p.Policy,
		Cycles:  p.Cycles,
		OffChip: p.OffChip,
	}
	for _, pp := range p.Phases {
		ph := workload.PhaseResult{Name: pp.Name, Cycles: pp.Cycles, OffChip: pp.OffChip}
		for _, pi := range pp.Invocations {
			tile, ok := tiles[pi.AccInst]
			if !ok {
				return nil, fmt.Errorf("experiment: run entry names unknown accelerator %q", pi.AccInst)
			}
			ph.Invocations = append(ph.Invocations, &esp.Result{
				Acc:            tile,
				Mode:           pi.Mode,
				FootprintBytes: pi.FootprintBytes,
				ExecCycles:     pi.ExecCycles,
				ActiveCycles:   pi.ActiveCycles,
				CommCycles:     pi.CommCycles,
				OffChipApprox:  pi.OffChipApprox,
				OffChipTrue:    pi.OffChipTrue,
			})
		}
		out.Phases = append(out.Phases, ph)
	}
	return out, nil
}
