// Package experiment regenerates every table and figure of the paper's
// evaluation: the Table-4 SoC inventory, the motivation studies
// (Figures 2 and 3), the policy comparisons (Figure 5), the
// reward-function design-space exploration (Figure 6), the coherence
// decision breakdown (Figure 7), the training-time study (Figure 8),
// the cross-SoC comparison (Figure 9), the headline speedup/off-chip
// aggregates, and the runtime-overhead measurement. Each experiment
// returns a typed result that renders to an aligned text table.
package experiment

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment artifact: a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			if i == 0 {
				b.WriteString(c + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Report is anything an experiment can print.
type Report interface {
	Render() string
}

// MultiTable groups several tables into one report.
type MultiTable struct {
	Tables []*Table
}

// Render concatenates the tables.
func (m *MultiTable) Render() string {
	var parts []string
	for _, t := range m.Tables {
		parts = append(parts, t.Render())
	}
	return strings.Join(parts, "\n")
}

// f2 formats a float with two decimals; f1 with one.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
