package experiment

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"os"

	"cohmeleon/internal/core"
	"cohmeleon/internal/costmodel"
	"cohmeleon/internal/esp"
	"cohmeleon/internal/learn"
	"cohmeleon/internal/policy"
	"cohmeleon/internal/scenario"
	"cohmeleon/internal/soc"
	"cohmeleon/internal/stats"
	"cohmeleon/internal/workload"
)

// The sweep experiment scales the paper's Figure-9 question — does the
// learned policy hold up across SoC configurations? — from eight
// hand-built SoCs to an arbitrary randomized scenario set: N sampled
// (SoC topology × workload mix) scenarios, each running the policy
// roster, reported as per-policy geomeans normalized per scenario to
// the fixed non-coherent-DMA baseline. With Options.QTableSave the
// per-scenario Cohmeleon tables are merged (visit-weighted) and written
// out; with Options.QTableLoad a previously saved table is evaluated
// frozen on this run's scenarios as "cohmeleon-transfer" — train on one
// seed's scenario set, test on a disjoint seed's, and the transfer row
// answers the paper's generalization question at sweep scale.
//
// The roster deliberately omits the fixed-heterogeneous baseline: its
// per-spec profiling fan-out would dwarf the per-scenario cost at sweep
// scale without adding information the Figure-9 run doesn't already
// give.

// sweepPerScenario is one scenario's measurements, collected by index.
type sweepPerScenario struct {
	info  SweepScenarioInfo
	names []string  // policy names, roster order
	execs []float64 // per policy, geomean over phases vs baseline
	mems  []float64
	state *learn.TabularState // the trained agent's full learner state
	// screened marks values estimated by the analytical cost model;
	// escalated marks auto-mode cells re-run cycle-accurately after an
	// ambiguous screen. Both persist in the checkpoint image so resumed
	// runs render the same fidelity notes.
	screened  bool
	escalated bool
}

// SweepScenarioInfo summarizes one sampled scenario for the report.
type SweepScenarioInfo struct {
	Name        string
	MeshW       int
	MeshH       int
	CPUs        int
	MemTiles    int
	LLCSliceKB  int
	L2KB        int
	Accs        int
	Invocations int
}

// SweepRow is one policy's aggregate across all scenarios.
type SweepRow struct {
	Policy   string
	NormExec float64
	NormMem  float64
}

// SweepResult is the sweep's rendered artifact.
type SweepResult struct {
	Scenarios []SweepScenarioInfo
	Rows      []SweepRow
	Notes     []string
}

// renamedPolicy reports a distinct name for a wrapped policy, so the
// transferred frozen agent and the per-scenario trained agent stay
// distinguishable in the same report. It forwards the freezer methods,
// so testPolicy's freeze-for-measurement safety sees through the
// wrapper even for a future non-frozen learning policy.
type renamedPolicy struct {
	esp.Policy
	name string
}

func (r renamedPolicy) Name() string { return r.name }

func (r renamedPolicy) Freeze() {
	if f, ok := r.Policy.(freezer); ok {
		f.Freeze()
	}
}

func (r renamedPolicy) Unfreeze() {
	if f, ok := r.Policy.(freezer); ok {
		f.Unfreeze()
	}
}

// Frozen reports true for non-learning wrapped policies: there is
// nothing to freeze, so testPolicy must not try to unfreeze either.
func (r renamedPolicy) Frozen() bool {
	f, ok := r.Policy.(freezer)
	return !ok || f.Frozen()
}

// sweepPolicies builds one scenario's policy roster. The first entry is
// the normalization baseline. loaded, when non-nil, contributes a
// frozen pre-trained agent evaluated without further learning. The
// trained agent's learner stack follows the options (-learner,
// -schedule); the transfer agent adopts whatever algorithm the loaded
// state was trained with (a PR-3-era file restores as "q").
func sweepPolicies(sc scenario.Scenario, opt Options, loaded *learn.TabularState) ([]esp.Policy, *core.Cohmeleon, error) {
	agentCfg := agentConfig(opt)
	agentCfg.Seed = opt.Seed + sc.Seed
	agent, err := core.New(agentCfg)
	if err != nil {
		return nil, nil, err
	}
	pols := []esp.Policy{
		policy.NewFixed(soc.NonCohDMA),
		policy.NewFixed(soc.LLCCohDMA),
		policy.NewFixed(soc.CohDMA),
		policy.NewFixed(soc.FullyCoh),
		policy.NewRandom(sc.Seed),
		policy.NewManual(),
		agent,
	}
	if loaded != nil {
		transferCfg := core.DefaultConfig()
		transferCfg.Seed = opt.Seed + sc.Seed
		transfer, err := core.New(transferCfg)
		if err != nil {
			return nil, nil, err
		}
		if err := transfer.SetLearnerState(loaded); err != nil {
			return nil, nil, err
		}
		transfer.Freeze()
		pols = append(pols, renamedPolicy{Policy: transfer, name: "cohmeleon-transfer"})
	}
	return pols, agent, nil
}

// sweepScenario trains and measures one scenario: the agent learns on
// the scenario's training application, then every policy runs the test
// application on a fresh SoC. All seeds derive from the scenario, so
// the outcome is independent of which worker runs it.
func sweepScenario(ctx context.Context, sc scenario.Scenario, opt Options, loaded *learn.TabularState) (sweepPerScenario, error) {
	out := sweepPerScenario{}
	train, err := sc.App(1000)
	if err != nil {
		return out, err
	}
	test, err := sc.App(2000)
	if err != nil {
		return out, err
	}
	pols, agent, err := sweepPolicies(sc, opt, loaded)
	if err != nil {
		return out, err
	}
	if err := trainCohmeleon(ctx, sc.Cfg, agent, train, opt.TrainIterations, sc.Seed+7); err != nil {
		return out, fmt.Errorf("%s: training: %w", sc.Cfg.Name, err)
	}
	results := make([]*workload.AppResult, len(pols))
	for i, pol := range pols {
		res, err := testPolicy(ctx, sc.Cfg, pol, test, sc.Seed+3)
		if err != nil {
			return out, fmt.Errorf("%s: %s: %w", sc.Cfg.Name, pol.Name(), err)
		}
		results[i] = res
	}
	baseline := results[0]
	for i, res := range results {
		exec, mem := geoNormalized(res, baseline)
		out.names = append(out.names, pols[i].Name())
		out.execs = append(out.execs, exec)
		out.mems = append(out.mems, mem)
	}
	out.state = agent.LearnerState()
	out.info = SweepScenarioInfo{
		Name:  sc.Cfg.Name,
		MeshW: sc.Cfg.MeshW, MeshH: sc.Cfg.MeshH,
		CPUs: sc.Cfg.CPUs, MemTiles: sc.Cfg.MemTiles,
		LLCSliceKB: sc.Cfg.LLCSliceKB, L2KB: sc.Cfg.L2KB,
		Accs:        len(sc.Cfg.Accs),
		Invocations: test.Invocations(),
	}
	return out, nil
}

// sweepCell evaluates one scenario at the requested fidelity. Full runs
// the cycle-accurate sweepScenario unchanged. Screening runs everything
// through the analytical model. Auto screens first, then — when the
// screened per-policy execs are too close to call at the model's
// demonstrated accuracy — discards the estimate and re-runs the cell
// cycle-accurately, so escalated cells carry exact full-fidelity values.
func sweepCell(ctx context.Context, sc scenario.Scenario, opt Options, loaded *learn.TabularState, fid string, model *costmodel.Model) (sweepPerScenario, error) {
	if fid == FidelityFull {
		return sweepScenario(ctx, sc, opt, loaded)
	}
	res, err := screenSweepScenario(sc, opt, loaded, model)
	if err != nil {
		return res, err
	}
	fidelityCounters.screened.Add(1)
	if fid == FidelityAuto && ambiguous(res.execs, escalationBand(model)) {
		fidelityCounters.escalated.Add(1)
		full, err := sweepScenario(ctx, sc, opt, loaded)
		full.screened = true
		full.escalated = true
		full.state = nil // non-full fidelity never exports learner state
		return full, err
	}
	return res, nil
}

// sweepParamHash fingerprints every input that determines a sweep
// cell's value: the option fields the cells observe, the content of any
// loaded learner state (it adds the transfer row), and the format
// versions (runCacheVersion is the simulator timing model's proxy — a
// model change invalidates checkpoints exactly like it invalidates the
// run store). QTableSave is deliberately absent: it only affects the
// post-aggregation merge, so a run interrupted without it can resume
// with it.
func sweepParamHash(opt Options, loadedRaw []byte) runKey {
	h := sha256.New()
	fmt.Fprintf(h, "sweep|ckpt%d|rc%d|seed%d|train%d|inv%d|scen%d|learner=%s|sched=%s|proto=%s|fg=%t|load=%d\n",
		checkpointVersion, runCacheVersion, opt.Seed, opt.TrainIterations,
		opt.MinInvocations, opt.SweepScenarios, opt.Learner, opt.Schedule,
		opt.Protocol, opt.FineGrain, len(loadedRaw))
	h.Write(loadedRaw)
	// The fidelity token is appended only for non-full runs, so every
	// pre-existing full-fidelity checkpoint keeps its hash — and full and
	// screened cells can never replay into each other's runs.
	if fid := opt.fidelityMode(); fid != FidelityFull {
		fmt.Fprintf(h, "fidelity|%s|cmv%d\n", fid, costmodel.FormatVersion)
	}
	var k runKey
	h.Sum(k[:0])
	return k
}

// sweepCellImage is the persisted (exported-field) form of one
// scenario's measurements; the learner state rides along as its own
// versioned encoding so the checkpoint inherits learn's integrity
// checks.
type sweepCellImage struct {
	Info  SweepScenarioInfo
	Names []string
	Execs []float64
	Mems  []float64
	State []byte
	// Screened/Escalated are zero-valued in every pre-existing
	// checkpoint, which gob decodes fine — and full-fidelity cells never
	// set them, so full checkpoints stay byte-compatible both ways.
	Screened  bool
	Escalated bool
}

// image converts a completed cell for persistence.
func (s *sweepPerScenario) image() (*sweepCellImage, error) {
	img := &sweepCellImage{Info: s.info, Names: s.names, Execs: s.execs, Mems: s.mems,
		Screened: s.screened, Escalated: s.escalated}
	if s.state != nil {
		var buf bytes.Buffer
		if err := learn.EncodeState(&buf, s.state); err != nil {
			return nil, err
		}
		img.State = buf.Bytes()
	}
	return img, nil
}

// sweepCellFromImage revives a replayed cell, re-validating the
// embedded learner state.
func sweepCellFromImage(img *sweepCellImage) (sweepPerScenario, error) {
	out := sweepPerScenario{info: img.Info, names: img.Names, execs: img.Execs, mems: img.Mems,
		screened: img.Screened, escalated: img.Escalated}
	if len(img.State) > 0 {
		st, err := learn.DecodeState(bytes.NewReader(img.State))
		if err != nil {
			return out, err
		}
		out.state = st
	}
	return out, nil
}

// Sweep runs the randomized scenario grid. Scenarios fan out on the
// worker pool; each is self-contained (own SoC, policies, seeds) and
// results are collected by index, then aggregated in index order, so
// the report is byte-identical for any worker count. With a cache
// directory configured every completed scenario checkpoints, and with
// Options.Resume the checkpointed cells replay instead of re-running —
// interrupt, resume, and uninterrupted runs all render byte-identical
// reports.
func Sweep(opt Options) (*SweepResult, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	ctx := opt.ctx()
	var loaded *learn.TabularState
	var loadedRaw []byte
	if opt.QTableLoad != "" {
		raw, err := os.ReadFile(opt.QTableLoad)
		if err != nil {
			return nil, fmt.Errorf("sweep: loading learner state: %w", err)
		}
		st, err := learn.DecodeState(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("sweep: loading learner state: %w", err)
		}
		loaded, loadedRaw = st, raw
	}

	spec := scenario.DefaultSpec()
	spec.MinInvocations = opt.MinInvocations
	if opt.Protocol != "" {
		// A single-entry axis pins every sampled SoC's protocol without
		// consuming an RNG draw, so the topology stream is unchanged.
		spec.SoC.Protocols = []string{opt.Protocol}
	}
	scens, err := scenario.Sample(spec, opt.SweepScenarios, opt.Seed)
	if err != nil {
		return nil, err
	}

	// Non-full fidelity calibrates (or revives) the analytical model
	// before the fan-out: one model serves every cell, and its
	// cycle-accurate calibration runs flow through the ordinary memoized
	// run path.
	fid := opt.fidelityMode()
	var model *costmodel.Model
	if fid != FidelityFull {
		if model, err = calibratedModel(ctx, opt); err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
	}

	// Shared workers must adopt the cells their peers publish, so replay
	// is on whenever the mode is — resume semantics within one process
	// are unchanged.
	ck, err := openCheckpoint("sweep", sweepParamHash(opt, loadedRaw), opt.Resume || opt.Shared)
	if err != nil {
		return nil, err
	}

	perScenario := make([]sweepPerScenario, len(scens))
	load := func(i int) bool {
		var img sweepCellImage
		if !ck.load(i, &img) {
			return false
		}
		cell, err := sweepCellFromImage(&img)
		if err != nil {
			ckptReplayed.Add(-1) // envelope verified but the payload didn't revive
			ck.invalidate(i, err)
			return false
		}
		perScenario[i] = cell
		opt.cellDone(CellEvent{Experiment: "sweep", Index: i, Total: len(scens), Replayed: true})
		return true
	}
	compute := func(i int) error {
		res, err := sweepCell(ctx, scens[i], opt, loaded, fid, model)
		perScenario[i] = res
		if err == nil {
			if img, ierr := res.image(); ierr == nil {
				ck.save(i, img)
			}
			opt.cellDone(CellEvent{Experiment: "sweep", Index: i, Total: len(scens)})
		}
		return err
	}
	if err := runGrid(opt, ck, len(scens), load, compute); err != nil {
		return nil, err
	}

	// Labels come from the roster itself (renamedPolicy supplies
	// "cohmeleon-transfer"), so the report can never drift out of sync
	// with sweepPolicies; every scenario runs the same roster.
	policyNames := perScenario[0].names
	out := &SweepResult{}
	for pi, name := range policyNames {
		execs := make([]float64, len(perScenario))
		mems := make([]float64, len(perScenario))
		for si := range perScenario {
			execs[si] = perScenario[si].execs[pi]
			mems[si] = perScenario[si].mems[pi]
		}
		out.Rows = append(out.Rows, SweepRow{
			Policy:   name,
			NormExec: stats.GeoMean(execs),
			NormMem:  stats.GeoMean(mems),
		})
	}
	for si := range perScenario {
		out.Scenarios = append(out.Scenarios, perScenario[si].info)
	}

	if fid != FidelityFull {
		escalated := 0
		for si := range perScenario {
			if perScenario[si].escalated {
				escalated++
			}
		}
		out.Notes = append(out.Notes, fidelityNotes(fid, model, escalated, len(perScenario))...)
	}

	if loaded != nil {
		out.Notes = append(out.Notes, fmt.Sprintf(
			"cohmeleon-transfer evaluates the %s state from %s frozen (no training on these scenarios)",
			loaded.Algo, opt.QTableLoad))
	}
	if opt.QTableSave != "" {
		states := make([]*learn.TabularState, len(perScenario))
		for si := range perScenario {
			states[si] = perScenario[si].state
		}
		merged, err := learn.MergeStates(states)
		if err != nil {
			return nil, fmt.Errorf("sweep: merging learner states: %w", err)
		}
		if err := learn.SaveStateFile(opt.QTableSave, merged); err != nil {
			return nil, fmt.Errorf("sweep: saving learner state: %w", err)
		}
		out.Notes = append(out.Notes, fmt.Sprintf(
			"merged %s learner state (%d visits from %d scenarios) saved to %s",
			merged.Algo, merged.TotalVisits(), len(perScenario), opt.QTableSave))
	}
	return out, nil
}

// Row returns the aggregate for a policy.
func (r *SweepResult) Row(pol string) (SweepRow, bool) {
	for _, row := range r.Rows {
		if row.Policy == pol {
			return row, true
		}
	}
	return SweepRow{}, false
}

// Render formats the per-policy aggregate and the scenario inventory.
func (r *SweepResult) Render() string {
	mt := &MultiTable{}
	summary := &Table{
		Title: fmt.Sprintf("Sweep — %d randomized scenarios (geomean across scenarios, normalized to fixed-non-coh-dma)",
			len(r.Scenarios)),
		Header: []string{"policy", "norm exec", "norm off-chip"},
	}
	for _, row := range r.Rows {
		summary.AddRow(row.Policy, f2(row.NormExec), f2(row.NormMem))
	}
	summary.Notes = append(summary.Notes, r.Notes...)
	mt.Tables = append(mt.Tables, summary)

	inv := &Table{
		Title:  "Sweep — scenario inventory",
		Header: []string{"scenario", "mesh", "cpus", "mem", "llc-slice", "l2", "accs", "invocations"},
	}
	for _, s := range r.Scenarios {
		inv.AddRow(s.Name, fmt.Sprintf("%dx%d", s.MeshW, s.MeshH),
			fmt.Sprintf("%d", s.CPUs), fmt.Sprintf("%d", s.MemTiles),
			fmt.Sprintf("%dK", s.LLCSliceKB), fmt.Sprintf("%dK", s.L2KB),
			fmt.Sprintf("%d", s.Accs), fmt.Sprintf("%d", s.Invocations))
	}
	mt.Tables = append(mt.Tables, inv)
	return mt.Render()
}
