package experiment

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// This file implements the worker pool the experiments fan out on.
//
// Every experiment in this package decomposes into independent trials:
// each trial builds a fresh SoC (hardware state never survives a
// measurement), owns its policy instances, and draws from seeds assigned
// before the fan-out. Trials therefore neither share mutable state nor
// depend on execution order, and reports assembled from the indexed
// results are byte-identical to the sequential run. Only the training
// loop of a single agent is inherently sequential (iteration i+1 learns
// from iteration i); independent (SoC, policy, seed, reward-weight)
// combinations fan out.

// workers resolves the configured worker count.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// taskPanic carries a recovered panic from a worker to the caller.
type taskPanic struct {
	index int
	value interface{}
	stack []byte
}

// forEach runs fn(i) for every i in [0, n) on up to `workers` goroutines
// and waits for all of them. Errors are collected per index and the
// lowest-index one is returned, matching what a sequential loop that
// stopped at the first failure would have reported. A panicking task
// does not tear down the process from a bare goroutine: the panic is
// captured and re-raised on the calling goroutine (lowest index first).
// With workers == 1 (or n == 1) fn runs inline in index order.
func forEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	panics := make([]*taskPanic, n)
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = &taskPanic{index: i, value: r, stack: debug.Stack()}
						}
					}()
					errs[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("experiment: trial %d panicked: %v\n%s", p.index, p.value, p.stack))
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// forEachOpt is forEach with the worker count taken from the options.
func forEachOpt(opt Options, n int, fn func(i int) error) error {
	return forEach(opt.workers(), n, fn)
}
