package experiment

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"cohmeleon/internal/faultinject"
)

// This file implements the worker pool the experiments fan out on.
//
// Every experiment in this package decomposes into independent trials:
// each trial builds a fresh SoC (hardware state never survives a
// measurement), owns its policy instances, and draws from seeds assigned
// before the fan-out. Trials therefore neither share mutable state nor
// depend on execution order, and reports assembled from the indexed
// results are byte-identical to the sequential run. Only the training
// loop of a single agent is inherently sequential (iteration i+1 learns
// from iteration i); independent (SoC, policy, seed, reward-weight)
// combinations fan out.
//
// The pool is also where cancellation and fail-fast live: dispatch stops
// handing out new indices once the context is cancelled or any trial has
// failed. Trials already in flight either run to completion (and their
// results still checkpoint) or cut out early at their own app-run
// boundaries, which observe the same context. Cancellation is checked
// only at those boundaries — never inside the simulator — so an
// uncancelled run pays one ctx.Err() load per trial and stays
// byte-identical.

// workers resolves the configured worker count.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// TrialPanic is the value forEach re-panics with when a worker trial
// panicked: the original panic value survives in Value (a recovering
// caller can inspect or re-raise it), with the trial index and worker
// stack alongside for diagnosis.
type TrialPanic struct {
	Index int
	Value interface{}
	Stack []byte
}

func (p *TrialPanic) String() string {
	return fmt.Sprintf("experiment: trial %d panicked: %v\n%s", p.Index, p.Value, p.Stack)
}

// interruptedErr marks a fan-out cut short by context cancellation;
// errors.Is sees through it to context.Canceled / DeadlineExceeded.
func interruptedErr(ctx context.Context, done, n int) error {
	return fmt.Errorf("experiment: interrupted after %d/%d trials: %w", done, n, ctx.Err())
}

// forEach runs fn(i) for every i in [0, n) on up to `workers` goroutines
// and waits for the ones it started. Dispatch is fail-fast: once any
// trial errors or panics, or ctx is cancelled, no new index is handed
// out; in-flight trials finish. Errors are collected per index and the
// lowest-index one is returned, matching what a sequential loop that
// stopped at the first failure would have reported; a cancellation with
// no trial error returns an error wrapping ctx.Err() — unless every
// trial already completed, in which case the fan-out (and its results)
// are whole and the cancellation is moot. A panicking task does not tear
// down the process from a bare goroutine: the panic is captured and
// re-raised on the calling goroutine as a *TrialPanic (lowest index
// first). With workers == 1 (or n == 1) fn runs inline in index order.
func forEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return interruptedErr(ctx, i, n)
			}
			if err := runTrial(i, fn); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	panics := make([]*TrialPanic, n)
	var next int64 = -1
	var failed atomic.Bool
	var completed int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = &TrialPanic{Index: i, Value: r, Stack: debug.Stack()}
							failed.Store(true)
						}
					}()
					if err := runTrial(i, fn); err != nil {
						errs[i] = err
						failed.Store(true)
					} else {
						atomic.AddInt64(&completed, 1)
					}
				}()
			}
		}()
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if ctx.Err() != nil && int(completed) < n {
		return interruptedErr(ctx, int(completed), n)
	}
	return nil
}

// runTrial executes one trial behind its failpoint: an armed fault
// script can fail, panic, or cancel at an exact trial index, which is
// how the crash-safety tests interrupt a fan-out deterministically.
func runTrial(i int, fn func(i int) error) error {
	if err := faultinject.CheckIndex(faultinject.Trial, i); err != nil {
		return err
	}
	return fn(i)
}

// forEachOpt is forEach with the worker count and context taken from the
// options.
func forEachOpt(opt Options, n int, fn func(i int) error) error {
	return forEach(opt.ctx(), opt.workers(), n, fn)
}
