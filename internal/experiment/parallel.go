package experiment

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"cohmeleon/internal/faultinject"
)

// This file implements the worker pool the experiments fan out on.
//
// Every experiment in this package decomposes into independent trials:
// each trial builds a fresh SoC (hardware state never survives a
// measurement), owns its policy instances, and draws from seeds assigned
// before the fan-out. Trials therefore neither share mutable state nor
// depend on execution order, and reports assembled from the indexed
// results are byte-identical to the sequential run. Only the training
// loop of a single agent is inherently sequential (iteration i+1 learns
// from iteration i); independent (SoC, policy, seed, reward-weight)
// combinations fan out.
//
// The pool is also where cancellation and fail-fast live: dispatch stops
// handing out new indices once the context is cancelled or any trial has
// failed. Trials already in flight either run to completion (and their
// results still checkpoint) or cut out early at their own app-run
// boundaries, which observe the same context. Cancellation is checked
// only at those boundaries — never inside the simulator — so an
// uncancelled run pays one ctx.Err() load per trial and stays
// byte-identical.

// workers resolves the configured worker count.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// TrialPanic is the value forEach re-panics with when a worker trial
// panicked: the original panic value survives in Value (a recovering
// caller can inspect or re-raise it), with the trial index and worker
// stack alongside for diagnosis.
type TrialPanic struct {
	Index int
	Value interface{}
	Stack []byte
}

func (p *TrialPanic) String() string {
	return fmt.Sprintf("experiment: trial %d panicked: %v\n%s", p.Index, p.Value, p.Stack)
}

// interruptedErr marks a fan-out cut short by context cancellation;
// errors.Is sees through it to context.Canceled / DeadlineExceeded.
func interruptedErr(ctx context.Context, done, n int) error {
	return fmt.Errorf("experiment: interrupted after %d/%d trials: %w", done, n, ctx.Err())
}

// Gate bounds the cells in flight across every fan-out sharing it —
// the serve layer's cross-job cell budget. A nil Gate admits
// everything. Gates must not be held across nested fan-outs (an outer
// trial waiting on inner trials of the same gate can deadlock); the
// experiments that accept one (sweep, learners) run flat cell loops.
type Gate chan struct{}

// NewGate returns a gate admitting up to n concurrent cells.
func NewGate(n int) Gate { return make(Gate, n) }

// acquire blocks until a slot frees or the context is cancelled.
func (g Gate) acquire(ctx context.Context) error {
	if g == nil {
		return nil
	}
	select {
	case g <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("experiment: cell aborted waiting for admission: %w", ctx.Err())
	}
}

// release frees a slot.
func (g Gate) release() {
	if g != nil {
		<-g
	}
}

// InFlight reports the cells currently holding the gate.
func (g Gate) InFlight() int { return len(g) }

// fanout bundles the dispatch controls forEach threads to every trial:
// context, worker budget, admission gate, and cell retry policy.
type fanout struct {
	ctx     context.Context
	workers int
	retry   *RetryPolicy
	gate    Gate
}

// forEach runs fn(i) for every i in [0, n) on up to `workers` goroutines
// and waits for the ones it started. Dispatch is fail-fast: once any
// trial errors or panics, or ctx is cancelled, no new index is handed
// out; in-flight trials finish. Errors are collected per index and the
// lowest-index one is returned, matching what a sequential loop that
// stopped at the first failure would have reported; a cancellation with
// no trial error returns an error wrapping ctx.Err() — unless every
// trial already completed, in which case the fan-out (and its results)
// are whole and the cancellation is moot. A panicking task does not tear
// down the process from a bare goroutine: the panic is captured and
// re-raised on the calling goroutine as a *TrialPanic (lowest index
// first). With workers == 1 (or n == 1) fn runs inline in index order.
func forEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	return fanout{ctx: ctx, workers: workers}.run(n, fn)
}

func (f fanout) run(n int, fn func(i int) error) error {
	ctx, workers := f.ctx, f.workers
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return interruptedErr(ctx, i, n)
			}
			if err := f.cell(i, fn); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	panics := make([]*TrialPanic, n)
	var next int64 = -1
	var failed atomic.Bool
	var completed int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = &TrialPanic{Index: i, Value: r, Stack: debug.Stack()}
							failed.Store(true)
						}
					}()
					if err := f.cell(i, fn); err != nil {
						errs[i] = err
						failed.Store(true)
					} else {
						atomic.AddInt64(&completed, 1)
					}
				}()
			}
		}()
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if ctx.Err() != nil && int(completed) < n {
		return interruptedErr(ctx, int(completed), n)
	}
	return nil
}

// cell runs one trial under the retry policy: transient failures back
// off and retry up to MaxAttempts; deterministic errors (and every
// error with no policy armed) return on the first attempt. The retried
// value is identical to what the failed attempt would have produced —
// cells are pure functions of their inputs — so retry can never change
// a report, only rescue one.
func (f fanout) cell(i int, fn func(i int) error) error {
	for attempt := 1; ; attempt++ {
		err := f.attempt(i, fn)
		if err == nil || f.retry == nil {
			return err
		}
		if !f.retry.retryable(err) || attempt >= f.retry.MaxAttempts || f.ctx.Err() != nil {
			return err
		}
		retryCells.Add(1)
		if c := jobCountersFrom(f.ctx); c != nil {
			c.CellRetries.Add(1)
		}
		emitDiag(DiagEvent{Kind: DiagCellRetry, Err: err})
		if serr := f.retry.sleep(f.ctx, f.retry.delay(i, attempt)); serr != nil {
			// Cancelled mid-backoff: surface the cancellation chain so a
			// draining caller classifies this as an interrupt, with the
			// transient cause alongside for diagnosis.
			return fmt.Errorf("experiment: cell %d retry abandoned (last failure: %v): %w", i, err, serr)
		}
	}
}

// attempt is one gated execution of a trial. The gate is held only
// while the cell actually runs — backoff sleeps do not occupy a slot.
func (f fanout) attempt(i int, fn func(i int) error) error {
	if err := f.gate.acquire(f.ctx); err != nil {
		return err
	}
	defer f.gate.release()
	if f.retry != nil {
		if err := faultinject.Check(faultinject.CellAttempt); err != nil {
			return err
		}
	}
	return runTrial(i, fn)
}

// runTrial executes one trial behind its failpoint: an armed fault
// script can fail, panic, or cancel at an exact trial index, which is
// how the crash-safety tests interrupt a fan-out deterministically.
func runTrial(i int, fn func(i int) error) error {
	if err := faultinject.CheckIndex(faultinject.Trial, i); err != nil {
		return err
	}
	return fn(i)
}

// forEachOpt is forEach with the worker count, context, gate, and retry
// policy taken from the options.
func forEachOpt(opt Options, n int, fn func(i int) error) error {
	return fanout{ctx: opt.ctx(), workers: opt.workers(), retry: opt.Retry, gate: opt.Gate}.run(n, fn)
}
