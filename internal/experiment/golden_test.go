package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Golden byte-identity regression tests for the learner refactor: the
// default stack (Table-3 featurizer + tabular Q + linear decay) must
// reproduce, byte for byte, the reports the pre-refactor monolithic
// agent produced. The testdata files were generated at the seed commit
// of this PR under the Tiny protocol; any drift in the agent's RNG
// draw order, decay arithmetic, update rule or report rendering shows
// up here as a diff. Regenerate the files only for a deliberate,
// documented behavior change.

// mustGolden reads a testdata reference.
func mustGolden(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("golden file: %v", err)
	}
	return string(b)
}

// diffAt pinpoints the first byte where two strings diverge.
func diffAt(got, want string) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("first diff at byte %d:\n got: …%q\nwant: …%q", i, got[lo:i+40], want[lo:i+40])
		}
	}
	return fmt.Sprintf("lengths differ: got %d bytes, want %d", len(got), len(want))
}

func TestGoldenFigure7ReportAndDecisions(t *testing.T) {
	res, err := Figure7(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Render(), mustGolden(t, "golden_fig7_tiny.txt"); got != want {
		t.Errorf("Figure 7 report drifted from the pre-refactor bytes\n%s", diffAt(got, want))
	}
	var counts string
	for _, row := range res.Rows {
		counts += fmt.Sprintf("%s %s %v\n", row.Policy, row.Size, row.Decision)
	}
	if want := mustGolden(t, "golden_fig7_tiny_decisions.txt"); counts != want {
		t.Errorf("Figure 7 decision counts drifted\n%s", diffAt(counts, want))
	}
}

func TestGoldenAblationReport(t *testing.T) {
	res, err := Ablation(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Render(), mustGolden(t, "golden_ablation_tiny.txt"); got != want {
		t.Errorf("ablation report drifted from the pre-refactor bytes\n%s", diffAt(got, want))
	}
}

func TestGoldenFigure8Report(t *testing.T) {
	res, err := Figure8(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Render(), mustGolden(t, "golden_fig8_tiny.txt"); got != want {
		t.Errorf("Figure 8 report drifted from the pre-refactor bytes\n%s", diffAt(got, want))
	}
}
