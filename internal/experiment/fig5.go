package experiment

import (
	"cohmeleon/internal/core"
	"cohmeleon/internal/soc"
	"cohmeleon/internal/stats"
	"cohmeleon/internal/workload"
)

// Fig5Cell is one bar pair of Figure 5: a policy's normalized execution
// time and off-chip accesses for one phase.
type Fig5Cell struct {
	Phase    string
	Policy   string
	NormExec float64
	NormMem  float64
}

// Fig5Result reproduces Figure 5: the four selected phases of the
// evaluation application on SoC0 under all eight policies, normalized
// per phase to the fixed non-coherent-DMA policy.
type Fig5Result struct {
	Phases   []string
	Policies []string
	Cells    []Fig5Cell
}

// Figure5 runs the phase analysis.
func Figure5(opt Options) (*Fig5Result, error) {
	cfg := withProtocol(soc.SoC0(soc.TrafficMixed, opt.Seed), opt)
	test, err := workload.Figure5App(cfg, opt.Seed+2000)
	if err != nil {
		return nil, err
	}
	policies, err := policySet(cfg, opt, core.DefaultWeights())
	if err != nil {
		return nil, err
	}

	// The eight test trials are independent (fresh SoC each, policies
	// trained above) and fan out; cells are assembled in policy order
	// against the indexed results, normalized to the first policy.
	results := make([]*workload.AppResult, len(policies))
	ctx := opt.ctx()
	if err := forEachOpt(opt, len(policies), func(i int) error {
		res, err := testPolicy(ctx, cfg, policies[i], test, opt.Seed+3)
		results[i] = res
		return err
	}); err != nil {
		return nil, err
	}

	out := &Fig5Result{}
	baseline := results[0] // first policy is fixed-non-coh-dma
	for i, pol := range policies {
		res := results[i]
		out.Policies = append(out.Policies, pol.Name())
		for pi := range res.Phases {
			if len(out.Phases) < len(res.Phases) {
				out.Phases = append(out.Phases, res.Phases[pi].Name)
			}
			out.Cells = append(out.Cells, Fig5Cell{
				Phase:    res.Phases[pi].Name,
				Policy:   pol.Name(),
				NormExec: stats.Ratio(float64(res.Phases[pi].Cycles), float64(baseline.Phases[pi].Cycles)),
				NormMem:  stats.Ratio(float64(res.Phases[pi].OffChip), float64(baseline.Phases[pi].OffChip)),
			})
		}
	}
	return out, nil
}

// Cell returns the measurement for a phase and policy.
func (r *Fig5Result) Cell(phase, pol string) (Fig5Cell, bool) {
	for _, c := range r.Cells {
		if c.Phase == phase && c.Policy == pol {
			return c, true
		}
	}
	return Fig5Cell{}, false
}

// Render formats one row per policy per phase.
func (r *Fig5Result) Render() string {
	mt := &MultiTable{}
	for _, phase := range r.Phases {
		t := &Table{
			Title:  "Figure 5 — " + phase + " (normalized to fixed-non-coh-dma)",
			Header: []string{"policy", "norm exec", "norm off-chip"},
		}
		for _, pol := range r.Policies {
			if c, ok := r.Cell(phase, pol); ok {
				t.AddRow(pol, f2(c.NormExec), f2(c.NormMem))
			}
		}
		mt.Tables = append(mt.Tables, t)
	}
	return mt.Render()
}
