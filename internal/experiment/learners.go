package experiment

import (
	"crypto/sha256"
	"fmt"

	"cohmeleon/internal/core"
	"cohmeleon/internal/costmodel"
	"cohmeleon/internal/learn"
	"cohmeleon/internal/policy"
	"cohmeleon/internal/scenario"
	"cohmeleon/internal/soc"
	"cohmeleon/internal/stats"
	"cohmeleon/internal/workload"
)

// The learners experiment is the comparison the pluggable engine
// exists for: the same randomized scenario grid the sweep uses, but
// instead of racing Cohmeleon against the paper's fixed baselines it
// races learner stacks against each other — every curated (algorithm ×
// schedule) combination trains and is evaluated frozen on each
// scenario, normalized to the fixed non-coherent-DMA baseline, with a
// per-stack geomean aggregate and the decision mix of the frozen test
// runs. The "q+linear" row is the paper's agent and doubles as the
// reference point.

// LearnerStack names one (algorithm, schedule) combination.
type LearnerStack struct {
	Algorithm string
	Schedule  string
}

// Label is the stack's report name.
func (ls LearnerStack) Label() string { return ls.Algorithm + "+" + ls.Schedule }

// LearnerGrid returns the curated comparison grid: all four algorithms,
// each under the schedules where the combination is informative (UCB1's
// exploration is count-based, so only the update gating differs across
// its schedules and one entry suffices; the constant schedule is the
// no-decay ablation and rides along with the default algorithm).
func LearnerGrid() []LearnerStack {
	return []LearnerStack{
		{"q", "linear"}, // the paper's stack
		{"q", "exp"},
		{"q", "const"},
		{"double-q", "linear"},
		{"double-q", "exp"},
		{"ucb1", "linear"},
		{"boltzmann", "linear"},
		{"boltzmann", "exp"},
	}
}

// stacksFor resolves the grid against the options: with no stack
// override the full curated grid runs; -learner/-schedule narrow it to
// the matching entries, and an uncurated (but valid) combination runs
// as a single-stack grid, so the flags are never a silent no-op here.
func stacksFor(opt Options) []LearnerStack {
	if opt.Learner == "" && opt.Schedule == "" {
		return LearnerGrid()
	}
	var out []LearnerStack
	for _, st := range LearnerGrid() {
		if (opt.Learner == "" || st.Algorithm == opt.Learner) &&
			(opt.Schedule == "" || st.Schedule == opt.Schedule) {
			out = append(out, st)
		}
	}
	if len(out) == 0 {
		algo, sched := opt.Learner, opt.Schedule
		if algo == "" {
			algo = learn.DefaultAlgorithm
		}
		if sched == "" {
			sched = learn.DefaultSchedule
		}
		out = []LearnerStack{{Algorithm: algo, Schedule: sched}}
	}
	return out
}

// LearnerRow is one stack's aggregate across all scenarios.
type LearnerRow struct {
	Stack    string
	NormExec float64
	NormMem  float64
	// DecisionShare is the mode mix of the frozen test runs, in percent
	// of all invocations across scenarios.
	DecisionShare [soc.NumModes]float64
}

// LearnersResult is the learner-comparison artifact.
type LearnersResult struct {
	Scenarios []SweepScenarioInfo
	Rows      []LearnerRow
	// Notes carries the fidelity provenance of non-full runs (calibration
	// error bounds, escalation coverage); empty — and the rendered report
	// byte-identical to before the field existed — at full fidelity.
	Notes []string
}

// learnerCell is one (scenario, stack) measurement, collected by index.
type learnerCell struct {
	exec, mem float64
	decisions [soc.NumModes]int64
	// screened marks analytical estimates; escalated marks auto cells
	// re-run cycle-accurately after an ambiguous screen.
	screened  bool
	escalated bool
}

// learnerCellImage is the persisted (exported-field) form of one cell.
// Screened/Escalated are zero-valued in pre-existing checkpoints, which
// gob decodes fine; full-fidelity cells never set them.
type learnerCellImage struct {
	Exec      float64
	Mem       float64
	Decisions [soc.NumModes]int64
	Screened  bool
	Escalated bool
}

// learnersParamHash fingerprints every input that determines a grid
// cell's value, including the resolved stack list (a -learner/-schedule
// narrowing changes cell indices, so it changes the hash and therefore
// the checkpoint identity).
func learnersParamHash(opt Options, stacks []LearnerStack) runKey {
	h := sha256.New()
	fmt.Fprintf(h, "learners|ckpt%d|rc%d|seed%d|train%d|inv%d|scen%d|proto=%s|fg=%t\n",
		checkpointVersion, runCacheVersion, opt.Seed, opt.TrainIterations,
		opt.MinInvocations, opt.LearnerScenarios, opt.Protocol, opt.FineGrain)
	for _, st := range stacks {
		fmt.Fprintf(h, "stack|%s\n", st.Label())
	}
	// Appended only for non-full runs, so pre-existing full-fidelity
	// checkpoints keep their hash and the fidelities never cross-replay.
	if fid := opt.fidelityMode(); fid != FidelityFull {
		fmt.Fprintf(h, "fidelity|%s|cmv%d\n", fid, costmodel.FormatVersion)
	}
	var k runKey
	h.Sum(k[:0])
	return k
}

// Learners runs the (learner stack × scenario) grid. Baselines fan out
// per scenario, then every (scenario, stack) trial fans out
// independently — each owns its agent and seeds derived from the
// scenario, so results collected by index aggregate byte-identically
// for any worker count. Grid cells checkpoint like the sweep's; the
// stage-1 preparations (app generation and the per-scenario baseline)
// are not checkpointed, because on resume the apps regenerate
// deterministically and the static-policy baseline run is served by the
// content-keyed run store from the same cache directory.
func Learners(opt Options) (*LearnersResult, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	ctx := opt.ctx()
	spec := scenario.DefaultSpec()
	spec.MinInvocations = opt.MinInvocations
	if opt.Protocol != "" {
		spec.SoC.Protocols = []string{opt.Protocol}
	}
	scens, err := scenario.Sample(spec, opt.LearnerScenarios, opt.Seed)
	if err != nil {
		return nil, err
	}
	stacks := stacksFor(opt)

	// Non-full fidelity calibrates (or revives) the analytical model
	// before any fan-out; one model serves every cell.
	fid := opt.fidelityMode()
	var model *costmodel.Model
	if fid != FidelityFull {
		if model, err = calibratedModel(ctx, opt); err != nil {
			return nil, fmt.Errorf("learners: %w", err)
		}
	}

	// Replay is on whenever shared mode is, so workers adopt the cells
	// their peers publish; single-process resume semantics are unchanged.
	ck, err := openCheckpoint("learners", learnersParamHash(opt, stacks), opt.Resume || opt.Shared)
	if err != nil {
		return nil, err
	}

	// Stage 1: per scenario, generate the (deterministic) training and
	// test applications once — every stack reuses them read-only, like
	// fig7's concurrent trials share one test app — and run the
	// normalization baseline. At full fidelity the baseline is the
	// cycle-accurate run it always was; otherwise it is analytical (a
	// screened cell must normalize against the same model that produced
	// it), and escalated auto cells fetch the cycle-accurate baseline
	// lazily through the memoized run path, deduped across cells.
	type prep struct {
		train, test *workload.App
		baseline    *workload.AppResult
		est         *costmodel.Estimator
	}
	preps := make([]prep, len(scens))
	if err := forEachOpt(opt, len(scens), func(i int) error {
		sc := scens[i]
		train, err := sc.App(1000)
		if err != nil {
			return err
		}
		test, err := sc.App(2000)
		if err != nil {
			return err
		}
		p := prep{train: train, test: test}
		if fid == FidelityFull {
			p.baseline, err = runApp(ctx, sc.Cfg, policy.NewFixed(soc.NonCohDMA), test, sc.Seed+3)
		} else {
			var ex *costmodel.Extractor
			if ex, err = costmodel.NewExtractor(sc.Cfg); err == nil {
				p.est = costmodel.NewEstimator(ex, model)
				p.baseline, err = p.est.Run(policy.NewFixed(soc.NonCohDMA), test)
			}
		}
		preps[i] = p
		return err
	}); err != nil {
		return nil, err
	}

	// Auto pre-pass: screen every cell analytically, then — serially, in
	// index order, so the decision is identical for any worker count —
	// mark for escalation every cell whose screened estimate sits within
	// the model's error band of its scenario's best, wherever the band
	// holds at least two contenders. Cells outside the band keep their
	// screened values; the contenders re-run cycle-accurately below.
	cells := make([]learnerCell, len(scens)*len(stacks))
	escalate := make([]bool, len(cells))
	var screened []learnerCell
	if fid == FidelityAuto {
		screened = make([]learnerCell, len(cells))
		if err := forEachOpt(opt, len(cells), func(i int) error {
			si, ki := i/len(stacks), i%len(stacks)
			var err error
			screened[i], err = screenLearnerCell(scens[si], stacks[ki], opt, preps[si].est,
				preps[si].train, preps[si].test, preps[si].baseline)
			fidelityCounters.screened.Add(1)
			return err
		}); err != nil {
			return nil, err
		}
		band := escalationBand(model)
		for si := range scens {
			execs := make([]float64, len(stacks))
			for ki := range stacks {
				execs[ki] = screened[si*len(stacks)+ki].exec
			}
			if !ambiguous(execs, band) {
				continue
			}
			best := execs[0]
			for _, e := range execs[1:] {
				if e < best {
					best = e
				}
			}
			for ki := range stacks {
				if execs[ki] <= best*(1+band) {
					escalate[si*len(stacks)+ki] = true
				}
			}
		}
	}

	// Stage 2: the full grid. Seeds mirror the sweep's per-scenario
	// derivation, so the "q+linear" row of a 1-scenario run matches the
	// sweep's "cohmeleon" measurement on the same scenario.
	loadCell := func(i int) bool {
		var img learnerCellImage
		if !ck.load(i, &img) {
			return false
		}
		cells[i] = learnerCell{exec: img.Exec, mem: img.Mem, decisions: img.Decisions,
			screened: img.Screened, escalated: img.Escalated}
		opt.cellDone(CellEvent{Experiment: "learners", Index: i, Total: len(cells), Replayed: true})
		return true
	}
	computeCell := func(i int) error {
		si, ki := i/len(stacks), i%len(stacks)
		sc, st := scens[si], stacks[ki]
		train, test := preps[si].train, preps[si].test
		switch {
		case fid == FidelityScreening:
			cell, err := screenLearnerCell(sc, st, opt, preps[si].est, train, test, preps[si].baseline)
			if err != nil {
				return err
			}
			fidelityCounters.screened.Add(1)
			cells[i] = cell
		case fid == FidelityAuto && !escalate[i]:
			cells[i] = screened[i]
		default:
			agentCfg := agentConfig(opt)
			agentCfg.Seed = opt.Seed + sc.Seed
			agentCfg.Learner = st.Algorithm
			agentCfg.Schedule = st.Schedule
			agent, err := core.New(agentCfg)
			if err != nil {
				return err
			}
			if err := trainCohmeleon(ctx, sc.Cfg, agent, train, opt.TrainIterations, sc.Seed+7); err != nil {
				return fmt.Errorf("%s: %s: training: %w", sc.Cfg.Name, st.Label(), err)
			}
			agent.ResetDecisions()
			res, err := testPolicy(ctx, sc.Cfg, agent, test, sc.Seed+3)
			if err != nil {
				return fmt.Errorf("%s: %s: %w", sc.Cfg.Name, st.Label(), err)
			}
			baseline := preps[si].baseline
			if fid != FidelityFull {
				// Escalated cell: cycle-accurate values need the
				// cycle-accurate baseline (memoized, shared across cells).
				if baseline, err = runApp(ctx, sc.Cfg, policy.NewFixed(soc.NonCohDMA), test, sc.Seed+3); err != nil {
					return fmt.Errorf("%s: %s: baseline: %w", sc.Cfg.Name, st.Label(), err)
				}
				fidelityCounters.escalated.Add(1)
			}
			exec, mem := geoNormalized(res, baseline)
			cells[i] = learnerCell{exec: exec, mem: mem, decisions: agent.Decisions(),
				screened: fid != FidelityFull, escalated: fid != FidelityFull}
		}
		ck.save(i, &learnerCellImage{Exec: cells[i].exec, Mem: cells[i].mem,
			Decisions: cells[i].decisions, Screened: cells[i].screened, Escalated: cells[i].escalated})
		opt.cellDone(CellEvent{Experiment: "learners", Index: i, Total: len(cells)})
		return nil
	}
	if err := runGrid(opt, ck, len(cells), loadCell, computeCell); err != nil {
		return nil, err
	}

	out := &LearnersResult{}
	for ki, st := range stacks {
		execs := make([]float64, len(scens))
		mems := make([]float64, len(scens))
		var decisions [soc.NumModes]int64
		var total int64
		for si := range scens {
			c := cells[si*len(stacks)+ki]
			execs[si], mems[si] = c.exec, c.mem
			for m, n := range c.decisions {
				decisions[m] += n
				total += n
			}
		}
		row := LearnerRow{
			Stack:    st.Label(),
			NormExec: stats.GeoMean(execs),
			NormMem:  stats.GeoMean(mems),
		}
		if total > 0 {
			for m := range decisions {
				row.DecisionShare[m] = 100 * float64(decisions[m]) / float64(total)
			}
		}
		out.Rows = append(out.Rows, row)
	}
	for si := range scens {
		sc := scens[si]
		out.Scenarios = append(out.Scenarios, SweepScenarioInfo{
			Name:  sc.Cfg.Name,
			MeshW: sc.Cfg.MeshW, MeshH: sc.Cfg.MeshH,
			CPUs: sc.Cfg.CPUs, MemTiles: sc.Cfg.MemTiles,
			LLCSliceKB: sc.Cfg.LLCSliceKB, L2KB: sc.Cfg.L2KB,
			Accs: len(sc.Cfg.Accs),
		})
	}
	if fid != FidelityFull {
		escalated := 0
		for i := range cells {
			if cells[i].escalated {
				escalated++
			}
		}
		out.Notes = append(out.Notes, fidelityNotes(fid, model, escalated, len(cells))...)
	}
	return out, nil
}

// Row returns the aggregate for a stack label.
func (r *LearnersResult) Row(stack string) (LearnerRow, bool) {
	for _, row := range r.Rows {
		if row.Stack == stack {
			return row, true
		}
	}
	return LearnerRow{}, false
}

// Render formats the per-stack aggregate.
func (r *LearnersResult) Render() string {
	t := &Table{
		Title: fmt.Sprintf("Learners — %d stacks × %d randomized scenarios (geomean, normalized to fixed-non-coh-dma)",
			len(r.Rows), len(r.Scenarios)),
		Header: []string{"stack", "norm exec", "norm off-chip", "non-coh%", "llc-coh%", "coh-dma%", "full-coh%"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Stack, f2(row.NormExec), f2(row.NormMem),
			f1(row.DecisionShare[soc.NonCohDMA]), f1(row.DecisionShare[soc.LLCCohDMA]),
			f1(row.DecisionShare[soc.CohDMA]), f1(row.DecisionShare[soc.FullyCoh]))
	}
	t.AddNote("q+linear is the paper's agent; decision mix is from the frozen test runs")
	for _, n := range r.Notes {
		t.AddNote("%s", n)
	}
	return t.Render()
}
