package experiment

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"cohmeleon/internal/core"
	"cohmeleon/internal/costmodel"
	"cohmeleon/internal/esp"
	"cohmeleon/internal/faultinject"
	"cohmeleon/internal/learn"
	"cohmeleon/internal/policy"
	"cohmeleon/internal/scenario"
	"cohmeleon/internal/soc"
	"cohmeleon/internal/workload"
)

// Two-fidelity evaluation for the grid experiments (sweep, learners).
// Full fidelity is the cycle-accurate simulator — the only mode until
// this file existed, and still the default; its reports are
// byte-identical to before. Screening fidelity runs every grid cell
// through internal/costmodel's analytical estimator, calibrated by
// least squares against cycle-accurate runs of a small pinned
// calibration grid (drawn through the same content-keyed run store, so
// the calibration simulations dedup and persist like any other run).
// Auto fidelity screens first and escalates only the ambiguous cells —
// where the analytical estimates are within the model's held-out error
// band of the per-cell best, so the screened winner cannot be trusted —
// back to cycle-accurate simulation. Every non-full report carries the
// calibration's held-out error bounds.

// Fidelity mode names (Options.Fidelity; empty resolves to full).
const (
	FidelityFull      = "full"
	FidelityScreening = "screening"
	FidelityAuto      = "auto"
)

// ValidFidelities lists the accepted mode names for error messages.
func ValidFidelities() string {
	return fmt.Sprintf("%s, %s, %s", FidelityFull, FidelityScreening, FidelityAuto)
}

// fidelityMode resolves the option's fidelity (empty means full).
func (o Options) fidelityMode() string {
	if o.Fidelity == "" {
		return FidelityFull
	}
	return o.Fidelity
}

// Calibration grid: a few small scenarios, each run under every fixed
// uniform mode. The constants are part of the model's content key — a
// change refits rather than resurrecting stale coefficients. The seed
// salt keeps calibration scenarios disjoint from any experiment's own
// scenario sets (which derive from opt.Seed directly).
const (
	calibScenarios   = 3
	calibInvocations = 60
	calibSeedSalt    = 0x5eedc0defee1fa57
)

// calibSeed derives the calibration scenario seed from the options.
func calibSeed(opt Options) uint64 { return opt.Seed ^ calibSeedSalt }

// FidelityStats counts two-fidelity traffic since the last reset.
type FidelityStats struct {
	// ModelFits counts least-squares calibrations actually performed.
	ModelFits int64
	// ModelMemoHits and ModelDiskHits count fitted models served from
	// the in-process memo and the cache directory.
	ModelMemoHits int64
	ModelDiskHits int64
	// ScreenedCells counts grid cells evaluated analytically.
	ScreenedCells int64
	// EscalatedCells counts screened cells auto escalated to
	// cycle-accurate simulation.
	EscalatedCells int64
}

var fidelityCounters struct {
	fits, memoHits, diskHits, screened, escalated atomic.Int64
}

// GetFidelityStats returns the counters since the last reset.
func GetFidelityStats() FidelityStats {
	return FidelityStats{
		ModelFits:      fidelityCounters.fits.Load(),
		ModelMemoHits:  fidelityCounters.memoHits.Load(),
		ModelDiskHits:  fidelityCounters.diskHits.Load(),
		ScreenedCells:  fidelityCounters.screened.Load(),
		EscalatedCells: fidelityCounters.escalated.Load(),
	}
}

// modelMemo caches fitted models in-process, keyed by calibration
// content. ResetRunCache clears it alongside the run memo.
var modelMemo = struct {
	mu      sync.Mutex
	entries map[runKey]*costmodel.Model
}{entries: make(map[runKey]*costmodel.Model)}

// resetFidelity drops cached models and zeroes the counters
// (ResetRunCache's contract).
func resetFidelity() {
	modelMemo.mu.Lock()
	modelMemo.entries = make(map[runKey]*costmodel.Model)
	modelMemo.mu.Unlock()
	fidelityCounters.fits.Store(0)
	fidelityCounters.memoHits.Store(0)
	fidelityCounters.diskHits.Store(0)
	fidelityCounters.screened.Store(0)
	fidelityCounters.escalated.Store(0)
}

// modelKey fingerprints everything that determines the fitted
// coefficients: the model format (feature set), the simulator timing
// model (runCacheVersion is its proxy, exactly as for run entries), and
// the calibration grid's identity.
func modelKey(opt Options) runKey {
	h := sha256.New()
	fmt.Fprintf(h, "costmodel|fmt%d|rc%d|nf%d|hold%d|scen%d|inv%d|seed%d|proto=%s\n",
		costmodel.FormatVersion, runCacheVersion, costmodel.NumFeatures,
		costmodel.HoldEvery, calibScenarios, calibInvocations,
		calibSeed(opt), opt.Protocol)
	var k runKey
	h.Sum(k[:0])
	return k
}

// modelCachePath names a model's file in the cache directory.
func modelCachePath(dir string, key runKey) string {
	return filepath.Join(dir, fmt.Sprintf("costmodel-v%d-%x.gob", costmodel.FormatVersion, key[:]))
}

// calibratedModel returns the fitted analytical model for the options,
// from the in-process memo, the cache directory, or a fresh
// calibration. Calibration is deterministic: scenarios, runs, and
// sample order are fixed functions of the content key, so identical
// inputs yield bit-identical coefficients on any machine or worker
// count.
func calibratedModel(ctx context.Context, opt Options) (*costmodel.Model, error) {
	key := modelKey(opt)
	modelMemo.mu.Lock()
	if m, ok := modelMemo.entries[key]; ok {
		modelMemo.mu.Unlock()
		fidelityCounters.memoHits.Add(1)
		return m, nil
	}
	modelMemo.mu.Unlock()

	dir := runCacheDirectory()
	if dir != "" {
		path := modelCachePath(dir, key)
		if data, err := os.ReadFile(path); err == nil {
			m, derr := costmodel.Decode(bytes.NewReader(data))
			if derr == nil {
				fidelityCounters.diskHits.Add(1)
				modelMemo.mu.Lock()
				modelMemo.entries[key] = m
				modelMemo.mu.Unlock()
				return m, nil
			}
			// Corrupt coefficients quarantine like any other store entry,
			// so the refit below regenerates them exactly once.
			if qerr := quarantineBlob(path); qerr == nil {
				appRunMemo.noteQuarantine(path, derr)
			} else {
				appRunMemo.noteReadFailure(path, derr)
			}
		} else if !os.IsNotExist(err) {
			appRunMemo.noteReadFailure(path, err)
		}
	}

	m, err := fitModel(ctx, opt)
	if err != nil {
		return nil, err
	}
	fidelityCounters.fits.Add(1)
	modelMemo.mu.Lock()
	modelMemo.entries[key] = m
	modelMemo.mu.Unlock()
	if dir != "" {
		var buf bytes.Buffer
		err := costmodel.Encode(&buf, m)
		if err == nil {
			err = writeBlobAtomic(dir, modelCachePath(dir, key), buf.Bytes(),
				faultinject.StoreCreate, faultinject.StoreWrite, faultinject.StoreRename)
		}
		if err != nil {
			appRunMemo.noteWriteFailure("cost model", err)
		}
	}
	return m, nil
}

// fitModel runs the calibration grid — calibScenarios small scenarios,
// each under every fixed uniform mode — through the cycle-accurate
// simulator (memoized and persisted like any static run) and fits the
// analytical model against every invocation, in fixed order.
func fitModel(ctx context.Context, opt Options) (*costmodel.Model, error) {
	spec := scenario.DefaultSpec()
	spec.MinInvocations = calibInvocations
	if opt.Protocol != "" {
		spec.SoC.Protocols = []string{opt.Protocol}
	}
	scens, err := scenario.Sample(spec, calibScenarios, calibSeed(opt))
	if err != nil {
		return nil, fmt.Errorf("experiment: calibration scenarios: %w", err)
	}
	apps := make([]*workload.App, len(scens))
	extractors := make([]*costmodel.Extractor, len(scens))
	for i, sc := range scens {
		if apps[i], err = sc.App(0); err != nil {
			return nil, fmt.Errorf("experiment: calibration app: %w", err)
		}
		if extractors[i], err = costmodel.NewExtractor(sc.Cfg); err != nil {
			return nil, fmt.Errorf("experiment: calibration extractor: %w", err)
		}
	}

	// One run per (scenario, uniform mode), fanned out; results land by
	// index so the harvested sample order is worker-count independent.
	nModes := int(soc.NumModes)
	runs := make([]*workload.AppResult, len(scens)*nModes)
	if err := forEachOpt(opt, len(runs), func(i int) error {
		si, mi := i/nModes, i%nModes
		sc := scens[si]
		res, err := runApp(ctx, sc.Cfg, policy.NewFixed(soc.AllModes[mi]), apps[si], sc.Seed+3)
		if err != nil {
			return fmt.Errorf("calibration %s/%s: %w", sc.Cfg.Name, soc.AllModes[mi], err)
		}
		runs[i] = res
		return nil
	}); err != nil {
		return nil, err
	}

	var samples []costmodel.Sample
	for i, res := range runs {
		si := i / nModes
		samples = harvestSamples(extractors[si], apps[si], res, i, samples)
	}
	m, err := costmodel.Fit(samples, opt.Protocol)
	if err != nil {
		return nil, fmt.Errorf("experiment: calibration fit: %w", err)
	}
	return m, nil
}

// harvestSamples appends one calibration sample per invocation of a
// cycle-accurate run, all tagged with the run's group index (the
// aggregate error bounds sum per group). The action is reconstructed
// from the recorded mode (calibration runs are uniform fixed-mode;
// persisted-run revival round-trips Mode, not Action).
func harvestSamples(ex *costmodel.Extractor, app *workload.App, res *workload.AppResult, group int, out []costmodel.Sample) []costmodel.Sample {
	for pi := range res.Phases {
		threads := len(app.Phases[pi].Threads)
		for _, inv := range res.Phases[pi].Invocations {
			ai, ok := ex.AccIndex(inv.Acc.InstName)
			if !ok {
				continue
			}
			var s costmodel.Sample
			ex.Features(ai, soc.ModeAction(inv.Mode), inv.FootprintBytes, threads, &s.X)
			s.Exec = float64(inv.ExecCycles)
			s.Mem = float64(inv.OffChipTrue)
			s.Group = group
			out = append(out, s)
		}
	}
	return out
}

// estimatePolicy mirrors testPolicy for the analytical path: learning
// policies are frozen for the measurement and restored afterwards.
func estimatePolicy(est *costmodel.Estimator, pol esp.Policy, test *workload.App) (*workload.AppResult, error) {
	if agent, ok := pol.(freezer); ok {
		wasFrozen := agent.Frozen()
		agent.Freeze()
		defer func() {
			if !wasFrozen {
				agent.Unfreeze()
			}
		}()
	}
	return est.Run(pol, test)
}

// escalationBand is the relative slack within which two screened
// estimates are indistinguishable: each normalized cell value is a
// ratio of two whole-app model estimates, so their worst-case relative
// errors compound and the band is twice the held-out maximum of the
// per-run aggregate error (not the far looser per-invocation maximum —
// invocation noise averages out in the aggregates being compared).
func escalationBand(m *costmodel.Model) float64 { return 2 * m.Err.AggMax }

// ambiguous reports whether at least two of the screened per-policy
// exec values lie within the error band of the best — the auto-mode
// escalation trigger: the screened winner cannot be distinguished from
// the runner-up at the model's demonstrated accuracy.
func ambiguous(execs []float64, band float64) bool {
	if len(execs) < 2 {
		return false
	}
	best := execs[0]
	for _, e := range execs[1:] {
		if e < best {
			best = e
		}
	}
	within := 0
	for _, e := range execs {
		if e <= best*(1+band) {
			within++
		}
	}
	return within >= 2
}

// screenSweepScenario is sweepScenario through the analytical model:
// the agent trains against estimated runs, then every roster policy is
// evaluated analytically and normalized to the analytical baseline. No
// learner state is recorded — a screened table is trained against the
// model, not the simulator, and Options.Validate rejects QTableSave
// under non-full fidelity for exactly that reason.
func screenSweepScenario(sc scenario.Scenario, opt Options, loaded *learn.TabularState, m *costmodel.Model) (sweepPerScenario, error) {
	out := sweepPerScenario{screened: true}
	train, err := sc.App(1000)
	if err != nil {
		return out, err
	}
	test, err := sc.App(2000)
	if err != nil {
		return out, err
	}
	pols, agent, err := sweepPolicies(sc, opt, loaded)
	if err != nil {
		return out, err
	}
	ex, err := costmodel.NewExtractor(sc.Cfg)
	if err != nil {
		return out, err
	}
	est := costmodel.NewEstimator(ex, m)
	if err := trainAnalytic(est, agent, train, opt.TrainIterations); err != nil {
		return out, fmt.Errorf("%s: screening training: %w", sc.Cfg.Name, err)
	}
	results := make([]*workload.AppResult, len(pols))
	for i, pol := range pols {
		res, err := estimatePolicy(est, pol, test)
		if err != nil {
			return out, fmt.Errorf("%s: %s: screening: %w", sc.Cfg.Name, pol.Name(), err)
		}
		results[i] = res
	}
	baseline := results[0]
	for i, res := range results {
		exec, mem := geoNormalized(res, baseline)
		out.names = append(out.names, pols[i].Name())
		out.execs = append(out.execs, exec)
		out.mems = append(out.mems, mem)
	}
	out.info = SweepScenarioInfo{
		Name:  sc.Cfg.Name,
		MeshW: sc.Cfg.MeshW, MeshH: sc.Cfg.MeshH,
		CPUs: sc.Cfg.CPUs, MemTiles: sc.Cfg.MemTiles,
		LLCSliceKB: sc.Cfg.LLCSliceKB, L2KB: sc.Cfg.L2KB,
		Accs:        len(sc.Cfg.Accs),
		Invocations: test.Invocations(),
	}
	return out, nil
}

// trainAnalytic is trainCohmeleon against the estimator: same
// unfreeze/iterate/end-iteration protocol, with each training run
// replayed through the model instead of the simulator.
func trainAnalytic(est *costmodel.Estimator, agent *core.Cohmeleon, train *workload.App, iters int) error {
	agent.Unfreeze()
	for i := 0; i < iters; i++ {
		if _, err := est.Run(agent, train); err != nil {
			return err
		}
		agent.EndIteration()
	}
	return nil
}

// screenLearnerCell is the learners grid cell through the analytical
// model: train the stack's agent against estimated runs, evaluate it
// frozen analytically, normalize to the analytic baseline.
func screenLearnerCell(sc scenario.Scenario, st LearnerStack, opt Options, est *costmodel.Estimator, train, test *workload.App, baseline *workload.AppResult) (learnerCell, error) {
	agentCfg := agentConfig(opt)
	agentCfg.Seed = opt.Seed + sc.Seed
	agentCfg.Learner = st.Algorithm
	agentCfg.Schedule = st.Schedule
	agent, err := core.New(agentCfg)
	if err != nil {
		return learnerCell{}, err
	}
	if err := trainAnalytic(est, agent, train, opt.TrainIterations); err != nil {
		return learnerCell{}, fmt.Errorf("%s: %s: screening training: %w", sc.Cfg.Name, st.Label(), err)
	}
	agent.ResetDecisions()
	res, err := estimatePolicy(est, agent, test)
	if err != nil {
		return learnerCell{}, fmt.Errorf("%s: %s: screening: %w", sc.Cfg.Name, st.Label(), err)
	}
	exec, mem := geoNormalized(res, baseline)
	return learnerCell{exec: exec, mem: mem, decisions: agent.Decisions(), screened: true}, nil
}

// fidelityNotes renders the calibration error bounds every non-full
// report carries, plus the mode's coverage line.
func fidelityNotes(fid string, m *costmodel.Model, escalated, total int) []string {
	notes := []string{fmt.Sprintf(
		"fidelity=%s: analytical cost model calibrated on %d cycle-accurate samples (held-out: per-invocation MAPE %.1f%%/max %.1f%% on %d samples; per-run aggregate MAPE %.1f%%/max %.1f%%)",
		fid, m.Err.FitSamples+m.Err.HeldOut, 100*m.Err.MAPE, 100*m.Err.MaxRel, m.Err.HeldOut,
		100*m.Err.AggMAPE, 100*m.Err.AggMax)}
	switch fid {
	case FidelityScreening:
		notes = append(notes, fmt.Sprintf(
			"all %d cells estimated analytically; no cycle-accurate verification", total))
	case FidelityAuto:
		notes = append(notes, fmt.Sprintf(
			"auto escalated %d/%d cells to cycle-accurate simulation (screened estimates within the error band of the best)",
			escalated, total))
	}
	return notes
}
