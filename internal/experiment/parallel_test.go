package experiment

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		n := 23
		counts := make([]int64, n)
		if err := forEach(workers, n, func(i int) error {
			atomic.AddInt64(&counts[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := forEach(4, 10, func(i int) error {
		switch i {
		case 3:
			return errB
		case 2:
			return errA
		}
		return nil
	})
	if err != errA {
		t.Fatalf("got %v, want the lowest-index error %v", err, errA)
	}
}

func TestForEachPropagatesPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected the worker panic to reach the caller")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic lost its payload: %v", r)
		}
	}()
	_ = forEach(4, 8, func(i int) error {
		if i == 5 {
			panic("boom")
		}
		return nil
	})
}

// TestWorkersReportByteIdenticalFig5 proves the fan-out is inert for
// results: the same experiment rendered with Workers 1 and Workers 8
// must produce byte-identical reports.
func TestWorkersReportByteIdenticalFig5(t *testing.T) {
	seq := Tiny()
	seq.Workers = 1
	par := Tiny()
	par.Workers = 8

	a, err := Figure5(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure5(par)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("fig5 reports differ between Workers=1 and Workers=8:\n--- seq ---\n%s\n--- par ---\n%s",
			a.Render(), b.Render())
	}
}

// TestWorkersReportByteIdenticalHeadline is the full-protocol variant of
// the determinism check: the headline aggregate (Figure 9 across all
// seven SoCs plus the derived averages) rendered with Workers 1 and
// Workers 8 must match byte for byte. The two runs simulate every
// (SoC, policy) trial twice, so the test is skipped under -short.
func TestWorkersReportByteIdenticalHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full Tiny headline twice; skipped in -short")
	}
	seq := Tiny()
	seq.Workers = 1
	par := Tiny()
	par.Workers = 8

	a, err := Headline(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Headline(par)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fig9.Render() != b.Fig9.Render() {
		t.Fatal("fig9 reports differ between Workers=1 and Workers=8")
	}
	if a.Render() != b.Render() {
		t.Fatalf("headline reports differ between Workers=1 and Workers=8:\n--- seq ---\n%s\n--- par ---\n%s",
			a.Render(), b.Render())
	}
}
