package experiment

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"cohmeleon/internal/faultinject"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		n := 23
		counts := make([]int64, n)
		if err := forEach(context.Background(), workers, n, func(i int) error {
			atomic.AddInt64(&counts[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := forEach(context.Background(), 4, 10, func(i int) error {
		switch i {
		case 3:
			return errB
		case 2:
			return errA
		}
		return nil
	})
	if err != errA {
		t.Fatalf("got %v, want the lowest-index error %v", err, errA)
	}
}

// TestForEachFailFast proves an errored fan-out stops handing out new
// indices: with one worker the sequential order makes the cut exact —
// nothing after the failing index may run.
func TestForEachFailFast(t *testing.T) {
	boom := errors.New("boom")
	var ran int64
	err := forEach(context.Background(), 1, 100, func(i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 4 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if ran != 5 {
		t.Fatalf("sequential fail-fast ran %d trials, want 5", ran)
	}
}

// TestForEachFailFastParallel bounds the over-dispatch after a failure:
// trial 0 errors immediately while every other trial takes ~1ms, so by
// the time any worker finishes its first trial the failure flag is set
// and only the handful of trials dispatched before it may still run.
func TestForEachFailFastParallel(t *testing.T) {
	boom := errors.New("boom")
	const n, workers = 1000, 4
	var ran int64
	err := forEach(context.Background(), workers, n, func(i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 0 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != boom {
		t.Fatalf("got %v, want %v", err, boom)
	}
	// Without fail-fast all 1000 trials run; with it, only the in-flight
	// ones (bounded by the worker count, with slack for dispatch races).
	if got := atomic.LoadInt64(&ran); got >= 50 {
		t.Fatalf("fail-fast still dispatched %d of %d trials", got, n)
	}
}

// TestForEachCancellation checks the cooperative-cancel contract: after
// ctx is cancelled no new index is dispatched, in-flight trials finish,
// and the returned error wraps context.Canceled.
func TestForEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran int64
	err := forEach(ctx, 2, 100, func(i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 1 {
			cancel()
			return nil
		}
		// Every other trial takes ~1ms, so the cancel from trial 1 lands
		// while the fan-out has barely started.
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want a context.Canceled wrap", err)
	}
	if got := atomic.LoadInt64(&ran); got >= 50 {
		t.Fatalf("cancellation still dispatched %d trials", got)
	}
}

// TestForEachCancelledBeforeStart dispatches nothing on a dead context.
func TestForEachCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran int64
		err := forEach(ctx, workers, 10, func(i int) error {
			atomic.AddInt64(&ran, 1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if ran != 0 {
			t.Fatalf("workers=%d: dead context still ran %d trials", workers, ran)
		}
	}
}

// TestForEachCancelAfterCompletionIsMoot: a cancellation that lands when
// every trial already completed must not fail the (whole) fan-out.
func TestForEachCancelAfterCompletionIsMoot(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	n := 8
	var ran int64
	err := forEach(ctx, 4, n, func(i int) error {
		if atomic.AddInt64(&ran, 1) == int64(n) {
			cancel() // last trial: results are whole
		}
		return nil
	})
	if err != nil {
		t.Fatalf("complete fan-out reported %v", err)
	}
}

// TestForEachErrorBeatsCancellation: when a trial failed and the context
// was also cancelled, the trial error wins (it is the actionable one).
func TestForEachErrorBeatsCancellation(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := forEach(ctx, 3, 50, func(i int) error {
		if i == 2 {
			cancel()
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("got %v, want the trial error %v", err, boom)
	}
}

func TestForEachPropagatesPanicValue(t *testing.T) {
	type payload struct{ code int }
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected the worker panic to reach the caller")
		}
		tp, ok := r.(*TrialPanic)
		if !ok {
			t.Fatalf("panic re-raised as %T, want *TrialPanic", r)
		}
		if tp.Index != 5 {
			t.Fatalf("panic reports trial %d, want 5", tp.Index)
		}
		// The original panic value survives untouched, not a formatted
		// string of it.
		if v, ok := tp.Value.(payload); !ok || v.code != 42 {
			t.Fatalf("panic lost its payload: %#v", tp.Value)
		}
		if len(tp.Stack) == 0 {
			t.Fatal("panic lost the worker stack")
		}
	}()
	_ = forEach(context.Background(), 4, 8, func(i int) error {
		if i == 5 {
			panic(payload{code: 42})
		}
		return nil
	})
}

// TestForEachInjectedTrialFaults drives the pool through the faultinject
// trial point: an injected error fails fast, an injected panic re-raises
// with the injected value.
func TestForEachInjectedTrialFaults(t *testing.T) {
	faultinject.Enable(faultinject.NewScript(faultinject.Fail(faultinject.Trial, 3)))
	var ran int64
	err := forEach(context.Background(), 1, 10, func(i int) error {
		atomic.AddInt64(&ran, 1)
		return nil
	})
	faultinject.Disable()
	if err == nil {
		t.Fatal("injected trial fault did not surface")
	}
	if ran != 3 {
		t.Fatalf("injection at index 3 let %d trials run, want 3 (0..2)", ran)
	}

	faultinject.Enable(faultinject.NewScript(
		faultinject.Rule{Point: faultinject.Trial, N: 1, Action: faultinject.Action{Panic: "injected-panic"}}))
	defer faultinject.Disable()
	defer func() {
		r := recover()
		tp, ok := r.(*TrialPanic)
		if !ok || tp.Value != "injected-panic" {
			t.Fatalf("injected panic surfaced as %#v", r)
		}
	}()
	_ = forEach(context.Background(), 2, 4, func(i int) error { return nil })
}

// TestWorkersReportByteIdenticalFig5 proves the fan-out is inert for
// results: the same experiment rendered with Workers 1 and Workers 8
// must produce byte-identical reports.
func TestWorkersReportByteIdenticalFig5(t *testing.T) {
	seq := Tiny()
	seq.Workers = 1
	par := Tiny()
	par.Workers = 8

	a, err := Figure5(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure5(par)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("fig5 reports differ between Workers=1 and Workers=8:\n--- seq ---\n%s\n--- par ---\n%s",
			a.Render(), b.Render())
	}
}

// TestWorkersReportByteIdenticalHeadline is the full-protocol variant of
// the determinism check: the headline aggregate (Figure 9 across all
// seven SoCs plus the derived averages) rendered with Workers 1 and
// Workers 8 must match byte for byte. The two runs simulate every
// (SoC, policy) trial twice, so the test is skipped under -short.
func TestWorkersReportByteIdenticalHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full Tiny headline twice; skipped in -short")
	}
	seq := Tiny()
	seq.Workers = 1
	par := Tiny()
	par.Workers = 8

	a, err := Headline(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Headline(par)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fig9.Render() != b.Fig9.Render() {
		t.Fatal("fig9 reports differ between Workers=1 and Workers=8")
	}
	if a.Render() != b.Render() {
		t.Fatalf("headline reports differ between Workers=1 and Workers=8:\n--- seq ---\n%s\n--- par ---\n%s",
			a.Render(), b.Render())
	}
}
