package experiment

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cohmeleon/internal/faultinject"
)

// leaseTestTable opens a lease table for a fake grid under a fresh
// cache dir, with a TTL long enough that nothing goes stale by accident.
func leaseTestTable(t *testing.T, worker string, ttl time.Duration) *leaseTable {
	t.Helper()
	lt, err := openLeaseTable(runCacheDirectory(), "test-v1-abc", Options{
		WorkerID: worker, LeaseTTL: ttl, LeaseHeartbeat: ttl / 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return lt
}

func leaseTestSetup(t *testing.T) {
	t.Helper()
	memoTestSetup(t)
	t.Cleanup(faultinject.Disable)
	if err := SetRunCacheDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

// TestLeaseAcquireIsExclusive: of any number of workers racing to claim
// one cell, exactly one wins, and the losers count the contention.
func TestLeaseAcquireIsExclusive(t *testing.T) {
	leaseTestSetup(t)
	const racers = 8
	tables := make([]*leaseTable, racers)
	for w := range tables {
		tables[w] = leaseTestTable(t, string(rune('a'+w)), time.Hour)
	}
	var wg sync.WaitGroup
	wins := make([]bool, racers)
	for w := range tables {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, claimed, err := tables[w].claim(0)
			if err != nil {
				t.Errorf("worker %d: claim: %v", w, err)
			}
			wins[w] = claimed
		}(w)
	}
	wg.Wait()
	won := 0
	for _, c := range wins {
		if c {
			won++
		}
	}
	if won != 1 {
		t.Fatalf("claims won = %d, want exactly 1", won)
	}
	st := GetLeaseStats()
	if st.Acquired != 1 {
		t.Errorf("Acquired = %d, want 1", st.Acquired)
	}
	// Losers either lost the O_EXCL race (counted Contended) or read the
	// winner's lease before even trying (skipped, uncounted); both are
	// losses, neither is an acquisition.
	if st.Contended > racers-1 {
		t.Errorf("Contended = %d, want ≤ %d", st.Contended, racers-1)
	}
	// Force the deterministic contention shape: an acquire that finds an
	// existing lease file is a counted race loss, never an error.
	before := st.Contended
	if _, claimed, err := tables[0].acquire(0, 99); claimed || err != nil {
		t.Fatalf("acquire over existing lease = (%v, %v), want (false, nil)", claimed, err)
	}
	if got := GetLeaseStats().Contended; got != before+1 {
		t.Errorf("Contended after direct race loss = %d, want %d", got, before+1)
	}
}

// TestLeaseStaleReclaim: a lease whose renewal counter stalls for a TTL
// of the observer's clock is expired and reclaimed exactly once, and
// the re-claim carries a bumped fencing token.
func TestLeaseStaleReclaim(t *testing.T) {
	leaseTestSetup(t)
	dead := leaseTestTable(t, "dead", time.Hour)
	tok, claimed, err := dead.claim(0)
	if err != nil || !claimed {
		t.Fatalf("dead claim = (%v, %v), want (true, nil)", claimed, err)
	}
	if tok != 1 {
		t.Fatalf("first token = %d, want 1", tok)
	}
	// The survivor's TTL is short; the dead holder never renews.
	surv := leaseTestTable(t, "survivor", 50*time.Millisecond)
	if _, claimed, _ := surv.claim(0); claimed {
		t.Fatal("survivor claimed a lease it had only just first observed")
	}
	deadline := time.Now().Add(5 * time.Second)
	var tok2 uint64
	for {
		if time.Now().After(deadline) {
			t.Fatal("lease never went stale")
		}
		time.Sleep(10 * time.Millisecond)
		var c bool
		tok2, c, err = surv.claim(0)
		if err != nil {
			t.Fatal(err)
		}
		if c {
			break
		}
	}
	if tok2 != tok+1 {
		t.Errorf("reclaimed token = %d, want %d (fencing bump)", tok2, tok+1)
	}
	st := GetLeaseStats()
	if st.Expired < 1 || st.Reclaimed != 1 {
		t.Errorf("Expired = %d (want ≥ 1), Reclaimed = %d (want 1)", st.Expired, st.Reclaimed)
	}
	// The reclaim left exactly one tokened marker as the audit trail.
	marks, _ := filepath.Glob(filepath.Join(surv.dir, "*.reclaimed-*"))
	if len(marks) != 1 {
		t.Errorf("reclaim markers = %v, want exactly one", marks)
	}
}

// TestLeaseReclaimRaceSingleWinner: racing reclaimers of the same stale
// lease rename to the same destination, so exactly one wins.
func TestLeaseReclaimRaceSingleWinner(t *testing.T) {
	leaseTestSetup(t)
	holder := leaseTestTable(t, "dead", time.Hour)
	if _, claimed, err := holder.claim(0); !claimed || err != nil {
		t.Fatalf("setup claim = (%v, %v)", claimed, err)
	}
	img, st := holder.read(0)
	if st != leaseHeld {
		t.Fatalf("read state = %v, want held", st)
	}
	const racers = 8
	var wg sync.WaitGroup
	wins := make([]bool, racers)
	for w := 0; w < racers; w++ {
		lt := leaseTestTable(t, "racer", time.Hour)
		wg.Add(1)
		go func(w int, lt *leaseTable) {
			defer wg.Done()
			wins[w] = lt.reclaim(0, img)
		}(w, lt)
	}
	wg.Wait()
	won := 0
	for _, c := range wins {
		if c {
			won++
		}
	}
	if won != 1 {
		t.Fatalf("reclaims won = %d, want exactly 1", won)
	}
	if st := GetLeaseStats(); st.Reclaimed != 1 {
		t.Errorf("Reclaimed = %d, want 1", st.Reclaimed)
	}
}

// TestLeaseTornFileQuarantined: a torn lease (kill -9 mid-write) is
// quarantined through the envelope path and the cell is immediately
// claimable again.
func TestLeaseTornFileQuarantined(t *testing.T) {
	leaseTestSetup(t)
	lt := leaseTestTable(t, "w", time.Hour)
	if err := os.WriteFile(lt.path(3), []byte("torn mid-write"), 0o644); err != nil {
		t.Fatal(err)
	}
	tok, claimed, err := lt.claim(3)
	if err != nil || !claimed {
		t.Fatalf("claim over torn lease = (%v, %v), want (true, nil)", claimed, err)
	}
	if tok != 1 {
		t.Errorf("token = %d, want 1", tok)
	}
	if _, err := os.Stat(lt.path(3) + ".corrupt"); err != nil {
		t.Errorf("torn lease not quarantined: %v", err)
	}
	if st := GetRunCacheStats(); st.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", st.Quarantined)
	}
}

// TestLeaseRenewAndLoss: renewals advance the heartbeat counter; a
// holder whose lease was reclaimed observes the loss on its next renew
// and stops (errLeaseLost), counting it.
func TestLeaseRenewAndLoss(t *testing.T) {
	leaseTestSetup(t)
	lt := leaseTestTable(t, "w", time.Hour)
	tok, claimed, err := lt.claim(0)
	if !claimed || err != nil {
		t.Fatalf("claim = (%v, %v)", claimed, err)
	}
	for i := 0; i < 3; i++ {
		if err := lt.renew(0, tok); err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
	}
	img, st := lt.read(0)
	if st != leaseHeld || img.Renewals != 3 {
		t.Fatalf("after 3 renewals: state %v, renewals %d", st, img.Renewals)
	}
	// A peer reclaims it out from under the holder.
	peer := leaseTestTable(t, "peer", time.Hour)
	if !peer.reclaim(0, img) {
		t.Fatal("peer reclaim failed")
	}
	if err := lt.renew(0, tok); err != errLeaseLost {
		t.Fatalf("renew after reclaim = %v, want errLeaseLost", err)
	}
	stats := GetLeaseStats()
	if stats.Renewed != 3 || stats.Lost != 1 {
		t.Errorf("Renewed = %d (want 3), Lost = %d (want 1)", stats.Renewed, stats.Lost)
	}
}

// TestLeaseReleaseFaultOrphans: an injected fault at release leaves the
// lease behind (as a crash between publish and release would); the fsck
// sweeps it once the cell has published.
func TestLeaseReleaseFaultOrphans(t *testing.T) {
	leaseTestSetup(t)
	lt := leaseTestTable(t, "w", time.Hour)
	tok, claimed, err := lt.claim(0)
	if !claimed || err != nil {
		t.Fatalf("claim = (%v, %v)", claimed, err)
	}
	faultinject.Enable(faultinject.NewScript(faultinject.Fail(faultinject.LeaseRelease, 1)))
	lt.release(0, tok)
	faultinject.Disable()
	if _, st := lt.read(0); st != leaseHeld {
		t.Fatalf("lease state after faulted release = %v, want still held", st)
	}
	// Publish the cell the lease guards, then fsck: the orphan is swept.
	ckDir := filepath.Join(checkpointRoot(runCacheDirectory()), "test-v1-abc")
	if err := os.MkdirAll(ckDir, 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := sealBlob(checkpointVersion, &struct{ X int }{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(ckDir, "cell-000000.gob"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := VerifyRunCache(runCacheDirectory())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() || res.LeasesSwept != 1 {
		t.Fatalf("fsck = %v; want clean with 1 published-cell lease swept", res)
	}
	if _, st := lt.read(0); st != leaseAbsent {
		t.Errorf("lease survives the sweep")
	}
}

// TestVerifySweepsOrphanedTempFiles: temp files left by killed writers
// are swept and counted apart from quarantines.
func TestVerifySweepsOrphanedTempFiles(t *testing.T) {
	leaseTestSetup(t)
	dir := runCacheDirectory()
	ckDir := filepath.Join(checkpointRoot(dir), "test-v1-abc")
	lsDir := filepath.Join(leaseRoot(dir), "test-v1-abc")
	for _, d := range []string{ckDir, lsDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []string{
		filepath.Join(dir, ".blob-1234-567.tmp"),
		filepath.Join(ckDir, ".blob-1234-890.tmp"),
		filepath.Join(lsDir, ".lease-1234-123.tmp"),
	} {
		if err := os.WriteFile(p, []byte("orphan"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	res, err := VerifyRunCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("fsck not clean: %v", res)
	}
	if res.TmpSwept != 3 {
		t.Fatalf("TmpSwept = %d, want 3 (%v)", res.TmpSwept, res)
	}
	if res.Quarantined != 0 {
		t.Errorf("orphaned temps counted as quarantines: %v", res)
	}
	for _, pat := range []string{
		filepath.Join(dir, ".*.tmp"),
		filepath.Join(ckDir, ".*.tmp"),
		filepath.Join(lsDir, ".*.tmp"),
	} {
		if m, _ := filepath.Glob(pat); len(m) != 0 {
			t.Errorf("temp files survive the sweep: %v", m)
		}
	}
}
