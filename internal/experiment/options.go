package experiment

import (
	"context"
	"fmt"
	"os"
	"time"

	"cohmeleon/internal/learn"
	"cohmeleon/internal/soc/protocol"
)

// Options scales the experiments. Defaults reproduce the paper's
// protocol; Quick returns a reduced configuration for tests and
// continuous benchmarking, trading statistical weight for runtime while
// keeping every code path identical.
type Options struct {
	// Seed drives SoC traffic-generator instantiation, application
	// generation and every stochastic policy.
	Seed uint64
	// Runs is the number of repeated executions averaged per measurement
	// point in the motivation studies (the paper averages ten).
	Runs int
	// TrainIterations is Cohmeleon's training length for Figures 5, 7
	// and 9 (the paper finds ten sufficient).
	TrainIterations int
	// MinInvocations sizes generated applications (the paper's instances
	// have several hundred invocations).
	MinInvocations int
	// Fig6Models is the number of reward-weight settings explored.
	Fig6Models int
	// Fig6TrainIterations is the training length per Figure-6 model
	// (the paper uses 50).
	Fig6TrainIterations int
	// Fig8Schedules are the decay schedules compared in Figure 8.
	Fig8Schedules []int
	// Workers bounds the number of independent trials run concurrently
	// per fan-out stage. Zero (the default) uses runtime.GOMAXPROCS(0);
	// 1 forces the sequential order. Every trial simulates a fresh SoC
	// with pre-assigned seeds and results are collected by index, so
	// rendered reports are byte-identical for any worker count. Stages
	// that nest (Figure 9's per-SoC policy preparation contains its own
	// fan-out) split the budget across levels rather than multiplying it.
	Workers int
	// SweepScenarios is the number of randomized (SoC × workload)
	// scenarios the sweep experiment samples and runs.
	SweepScenarios int
	// QTableSave, when set, makes the sweep write the visit-weighted
	// merge of its per-scenario trained Q-tables to this file.
	QTableSave string
	// QTableLoad, when set, makes the sweep additionally evaluate the
	// Q-table from this file frozen on every scenario, reported as
	// "cohmeleon-transfer" — the train-on-A/test-on-B workflow.
	QTableLoad string
	// Learner selects the agent's algorithm seam by learn-registry name
	// for every experiment that trains a Cohmeleon agent; empty keeps
	// the paper's tabular Q-learning ("q").
	Learner string
	// Schedule selects the agent's ε/α trajectory by learn-registry
	// name; empty keeps the paper's linear decay ("linear").
	Schedule string
	// Protocol selects the coherence-protocol stack by protocol-registry
	// name for every SoC the experiments build (hand-built topologies
	// and sampled scenarios alike); empty keeps the default MESI-style
	// stack ("mesi"), which is byte-identical to the pre-seam simulator.
	Protocol string
	// FineGrain widens the Cohmeleon agent's action space with per-region
	// (hot, cold) mode splits for invocations whose footprint exceeds the
	// private L2. Off (the default) keeps the paper's uniform four-mode
	// space and is byte-identical to it.
	FineGrain bool
	// Fidelity selects how the grid experiments (sweep, learners)
	// evaluate their cells: "full" (default; also the empty string) is
	// the cycle-accurate simulator, byte-identical to before the seam
	// existed; "screening" estimates every cell with the calibrated
	// analytical cost model; "auto" screens first and escalates only the
	// cells whose screened estimates are within the model's held-out
	// error band of the cell's best back to cycle-accurate simulation.
	Fidelity string
	// LearnerScenarios is the number of randomized scenarios the
	// learners experiment runs its (algorithm × schedule) grid over.
	LearnerScenarios int
	// Ctx, when non-nil, cancels experiments cooperatively: the worker
	// pool stops dispatching new trials and in-flight work cuts out at
	// its next app-run boundary, returning an error that wraps
	// ctx.Err(). Checks sit at trial and run boundaries only, so an
	// uncancelled run is byte-identical to one with a nil Ctx.
	Ctx context.Context
	// Resume replays completed cells from the checkpoint a previous
	// (typically interrupted) sweep or learners run left under the run
	// cache directory, re-running only the missing cells; the resumed
	// report is byte-identical to an uninterrupted run. Without a cache
	// directory there is no checkpoint and Resume is inert. Experiments
	// that don't checkpoint ignore it (the CLI rejects the flag there).
	Resume bool
	// Retry, when non-nil, retries transient cell failures (IsTransient)
	// with capped exponential backoff at the grid-cell boundary.
	// Deterministic trial errors are never retried. Cells are pure
	// functions of their inputs, so retry cannot change report bytes.
	Retry *RetryPolicy
	// Gate, when non-nil, bounds the cells in flight across every
	// fan-out sharing it — the serve layer's cross-job cell budget.
	Gate Gate
	// CellDone, when non-nil, is invoked after every completed grid cell
	// of a checkpointed experiment (sweep, learners), possibly from
	// concurrent workers. It must be cheap and must not mutate
	// experiment state; the serve layer uses it to stream progress.
	CellDone func(CellEvent)
	// Shared makes the grid experiments (sweep, learners) shard their
	// cells across any number of independent processes pointed at the
	// same run cache directory, coordinated only through checksummed
	// lease files under <cache-dir>/leases/. Each worker claims absent
	// cells, heartbeats while computing, adopts cells its peers publish,
	// and reclaims leases whose heartbeats stall; every worker that runs
	// to completion assembles the full report, byte-identical to the
	// single-process run. Requires a cache directory. Off (the default)
	// touches no lease path at all and is byte-identical to before the
	// mode existed.
	Shared bool
	// WorkerID names this process in lease files for operator diagnosis;
	// empty derives "<hostname>-<pid>". Only meaningful with Shared.
	WorkerID string
	// LeaseTTL is how long a lease's renewal counter may stall before
	// peers judge its holder dead and reclaim the cell; zero means 10s.
	// Staleness is measured on each observer's own monotonic clock, so
	// host clock skew cannot expire a live lease. Only meaningful with
	// Shared.
	LeaseTTL time.Duration
	// LeaseHeartbeat is the renewal interval for held leases; zero means
	// LeaseTTL/5. Must be shorter than LeaseTTL. Only meaningful with
	// Shared.
	LeaseHeartbeat time.Duration
}

// workerID resolves the worker identity written into lease files.
func (o Options) workerID() string {
	if o.WorkerID != "" {
		return o.WorkerID
	}
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// leaseTTL resolves the staleness threshold.
func (o Options) leaseTTL() time.Duration {
	if o.LeaseTTL > 0 {
		return o.LeaseTTL
	}
	return 10 * time.Second
}

// leaseHeartbeat resolves the renewal interval.
func (o Options) leaseHeartbeat() time.Duration {
	if o.LeaseHeartbeat > 0 {
		return o.LeaseHeartbeat
	}
	return o.leaseTTL() / 5
}

// CellEvent describes one completed grid cell of a checkpointed
// experiment.
type CellEvent struct {
	// Experiment is the grid's ID ("sweep", "learners").
	Experiment string
	// Index and Total locate the cell in the grid.
	Index int
	Total int
	// Replayed reports whether the cell was served from a checkpoint
	// rather than computed.
	Replayed bool
}

// cellDone delivers a cell event when a listener is configured.
func (o Options) cellDone(e CellEvent) {
	if o.CellDone != nil {
		o.CellDone(e)
	}
}

// ctx resolves the experiment context (nil means never cancelled).
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// Validate reports option errors before any experiment spends cycles
// on them. The zero Workers (= GOMAXPROCS) is valid here; rejecting an
// explicitly passed zero is the CLI's job, since only the flag parser
// knows the difference.
func (o Options) Validate() error {
	switch {
	case o.Workers < 0:
		return fmt.Errorf("experiment: workers %d must be ≥ 0 (0 = GOMAXPROCS)", o.Workers)
	case o.Runs < 1:
		return fmt.Errorf("experiment: runs %d must be ≥ 1", o.Runs)
	case o.TrainIterations < 1:
		return fmt.Errorf("experiment: training iterations %d must be ≥ 1", o.TrainIterations)
	case o.MinInvocations < 1:
		return fmt.Errorf("experiment: min invocations %d must be ≥ 1", o.MinInvocations)
	case o.SweepScenarios < 1:
		return fmt.Errorf("experiment: sweep scenarios %d must be ≥ 1", o.SweepScenarios)
	case o.LearnerScenarios < 1:
		return fmt.Errorf("experiment: learner scenarios %d must be ≥ 1", o.LearnerScenarios)
	case o.LeaseTTL < 0:
		return fmt.Errorf("experiment: lease TTL %v must be ≥ 0", o.LeaseTTL)
	case o.LeaseHeartbeat < 0:
		return fmt.Errorf("experiment: lease heartbeat %v must be ≥ 0", o.LeaseHeartbeat)
	case o.LeaseHeartbeat > 0 && o.LeaseHeartbeat >= o.leaseTTL():
		// A heartbeat at or past the TTL guarantees live leases look
		// stale between renewals — every worker would reclaim every cell.
		return fmt.Errorf("experiment: lease heartbeat %v must be shorter than lease TTL %v",
			o.LeaseHeartbeat, o.leaseTTL())
	}
	if o.Retry != nil {
		if err := o.Retry.Validate(); err != nil {
			return err
		}
	}
	if _, err := learn.NewAlgorithm(o.Learner); err != nil {
		return err
	}
	if _, err := learn.NewSchedule(o.Schedule, learn.ScheduleParams{
		Epsilon0: 0.5, Alpha0: 0.25, DecayIterations: 1,
	}); err != nil {
		return err
	}
	if _, err := protocol.Lookup(o.Protocol); err != nil {
		return err
	}
	switch o.fidelityMode() {
	case FidelityFull, FidelityScreening, FidelityAuto:
	default:
		return fmt.Errorf("experiment: unknown fidelity %q (valid: %s)", o.Fidelity, ValidFidelities())
	}
	if o.QTableSave != "" && o.fidelityMode() != FidelityFull {
		// A screened agent trained against the analytical model, not the
		// simulator; exporting its table as a reusable artifact would
		// silently launder model error into later full-fidelity runs.
		return fmt.Errorf("experiment: -qtable-save requires full fidelity (got %s)", o.fidelityMode())
	}
	return nil
}

// Default returns the paper-faithful configuration.
func Default() Options {
	return Options{
		Seed:                42,
		Runs:                10,
		TrainIterations:     10,
		MinInvocations:      300,
		Fig6Models:          15,
		Fig6TrainIterations: 50,
		Fig8Schedules:       []int{10, 30, 50},
		SweepScenarios:      64,
		LearnerScenarios:    12,
	}
}

// Quick returns a scaled-down configuration: same protocol, fewer
// repetitions and shorter training, sized to finish a full suite in
// minutes.
func Quick() Options {
	return Options{
		Seed:                42,
		Runs:                2,
		TrainIterations:     4,
		MinInvocations:      120,
		Fig6Models:          6,
		Fig6TrainIterations: 5,
		Fig8Schedules:       []int{4, 8},
		SweepScenarios:      64,
		LearnerScenarios:    6,
	}
}

// Tiny returns the smallest meaningful configuration, for unit tests.
func Tiny() Options {
	return Options{
		Seed:                42,
		Runs:                1,
		TrainIterations:     2,
		MinInvocations:      40,
		Fig6Models:          2,
		Fig6TrainIterations: 2,
		Fig8Schedules:       []int{2},
		SweepScenarios:      4,
		LearnerScenarios:    3,
	}
}
