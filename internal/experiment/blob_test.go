package experiment

import (
	"os"
	"path/filepath"
	"testing"

	"cohmeleon/internal/faultinject"
)

// TestWriteBlobAtomicFaultsLeaveNoFile pins writeBlobAtomic's contract
// under injected faults at each of its three failpoints: the error is
// returned to the caller, the target path is never published (not even
// as an empty or torn file), and no temp file leaks in the directory.
// Regression: a shadowed err once swallowed write and rename faults,
// publishing an empty envelope (write) or reporting success with no
// file on disk (rename).
func TestWriteBlobAtomicFaultsLeaveNoFile(t *testing.T) {
	data, err := sealBlob(1, "payload")
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range []faultinject.Point{faultinject.StoreCreate, faultinject.StoreWrite, faultinject.StoreRename} {
		t.Run(string(pt), func(t *testing.T) {
			dir := t.TempDir()
			target := filepath.Join(dir, "entry.gob")
			faultinject.Enable(faultinject.NewScript(faultinject.Fail(pt, 1)))
			defer faultinject.Disable()
			err := writeBlobAtomic(dir, target, data,
				faultinject.StoreCreate, faultinject.StoreWrite, faultinject.StoreRename)
			if err == nil {
				t.Fatalf("fault at %s: writeBlobAtomic reported success", pt)
			}
			if _, serr := os.Stat(target); !os.IsNotExist(serr) {
				t.Errorf("fault at %s: target was published (stat: %v)", pt, serr)
			}
			left, gerr := filepath.Glob(filepath.Join(dir, "*"))
			if gerr != nil {
				t.Fatal(gerr)
			}
			if len(left) != 0 {
				t.Errorf("fault at %s: directory not empty after failed write: %v", pt, left)
			}
		})
	}
}

// TestWriteBlobAtomicRoundTrip pins the success path: the published file
// opens as a valid envelope holding the original payload.
func TestWriteBlobAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "entry.gob")
	data, err := sealBlob(7, "round-trip")
	if err != nil {
		t.Fatal(err)
	}
	if err := writeBlobAtomic(dir, target, data,
		faultinject.StoreCreate, faultinject.StoreWrite, faultinject.StoreRename); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	var s string
	if err := openBlob(got, 7, &s); err != nil {
		t.Fatal(err)
	}
	if s != "round-trip" {
		t.Fatalf("round-tripped payload = %q", s)
	}
	left, err := filepath.Glob(filepath.Join(dir, ".blob-*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("temp files leaked: %v", left)
	}
}
