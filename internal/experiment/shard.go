package experiment

import (
	"context"
	"fmt"
	"time"
)

// runGrid executes one checkpointed grid — n cells, each either adopted
// from the checkpoint via load (returns true when cell i is now filled)
// or produced via compute (fills cell i and publishes its checkpoint).
// It is the single seam where shared (multi-process) sharding plugs in:
//
//   - Not shared: exactly the loop the experiments always ran — one
//     fan-out over [0, n), load-else-compute per cell. No lease path is
//     touched, which is what keeps single-process runs byte-identical
//     to builds that predate shared mode.
//
//   - Shared: the worker repeats rounds of a fan-out over the still-
//     missing cells. Per cell per round it first re-tries load — that
//     is how cells computed and published by peer processes are
//     adopted — then tries to claim the cell's lease; a claim means
//     compute under a heartbeat, publish, release. Cells leased to
//     live peers are skipped this round. A round that fills nothing
//     (every missing cell is leased out) sleeps one heartbeat before
//     polling again. The loop ends when every cell is filled, so every
//     worker that returns has assembled the complete grid and renders
//     the full report — byte-identical across workers because cells
//     are pure functions of their inputs and replay is byte-exact.
//
// The leases are a dedup layer, not a correctness gate: if claiming a
// cell keeps *failing* (not losing races — erroring, e.g. an unwritable
// lease directory), the worker falls back to computing the cell with no
// lease at all. Duplicate computation publishes identical bytes; a
// wedged grid helps nobody.
func runGrid(opt Options, ck *checkpoint, n int, load func(i int) bool, compute func(i int) error) error {
	if !opt.Shared {
		return forEachOpt(opt, n, func(i int) error {
			if load(i) {
				return nil
			}
			return compute(i)
		})
	}
	cacheDir := runCacheDirectory()
	if ck == nil || cacheDir == "" {
		return fmt.Errorf("experiment: shared mode needs a cache directory (set -cache-dir)")
	}
	lt, err := openLeaseTable(cacheDir, ck.key, opt)
	if err != nil {
		return err
	}
	ctx := opt.ctx()
	done := make([]bool, n)       // cell filled (adopted or computed)
	acquireErrs := make([]int, n) // consecutive claim errors per cell
	remaining := n
	for remaining > 0 {
		if ctx.Err() != nil {
			return interruptedErr(ctx, n-remaining, n)
		}
		// One round: visit every missing cell. The done/acquireErrs
		// slices are written under the fan-out and read after its
		// WaitGroup join, so rounds never race on them.
		err := forEachOpt(opt, n, func(i int) error {
			if done[i] {
				return nil
			}
			if load(i) {
				done[i] = true
				return nil
			}
			tok, claimed, cerr := lt.claim(i)
			if cerr != nil {
				acquireErrs[i]++
				if acquireErrs[i] < leaseFallbackAfter {
					return nil // leased next round, or fall back then
				}
				leaseFallbacks.Add(1)
				if err := compute(i); err != nil {
					return err
				}
				done[i] = true
				return nil
			}
			acquireErrs[i] = 0
			if !claimed {
				return nil // held by a live peer, or lost a race
			}
			// Double-check under the lease: a peer may have published
			// this cell between our load miss and our claim (publish
			// precedes release, so a claimable lease means any prior
			// holder's cell is visible). Without this, that window would
			// recompute the cell — harmlessly, but needlessly.
			if load(i) {
				lt.release(i, tok)
				lt.forget(i)
				done[i] = true
				return nil
			}
			stop := lt.keepAlive(i, tok)
			err := compute(i)
			stop()
			if err != nil {
				// The cell failed deterministically (transient retries
				// already happened inside compute). Release so a peer
				// isn't stuck waiting out the TTL to hit the same error.
				lt.release(i, tok)
				return err
			}
			lt.release(i, tok)
			lt.forget(i)
			done[i] = true
			return nil
		})
		if err != nil {
			return err
		}
		wasMissing := remaining
		remaining = 0
		for _, d := range done {
			if !d {
				remaining++
			}
		}
		// A round that filled nothing means every missing cell is leased
		// to a peer (or erroring below the fallback threshold): wait one
		// heartbeat for peers to publish or their leases to stale out. A
		// round that made progress polls again immediately — peers may
		// have published more in the meantime.
		if remaining > 0 && remaining == wasMissing {
			if err := sleepCtx(ctx, lt.heartbeat); err != nil {
				return interruptedErr(ctx, n-remaining, n)
			}
		}
	}
	return nil
}

// sleepCtx sleeps d or until ctx cancels, whichever first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
