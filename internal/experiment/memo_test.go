package experiment

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cohmeleon/internal/core"
	"cohmeleon/internal/policy"
	"cohmeleon/internal/soc"
	"cohmeleon/internal/workload"
)

// TestCorruptRunEntriesQuarantinedExactlyOnce is the self-healing
// matrix: a truncated entry, a version-mismatched envelope, and plain
// garbage must each load as a clean miss (identical recomputed result),
// be renamed *.corrupt exactly once, and leave the store healthy — the
// recomputed entry persists at the original path and serves the next
// load from disk with nothing further quarantined.
func TestCorruptRunEntriesQuarantinedExactlyOnce(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"version-mismatched", func(t *testing.T, path string) {
			data, err := sealBlob(runCacheVersion+1, &persistedRun{Version: runCacheVersion + 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("not a gob stream"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			memoTestSetup(t)
			dir := t.TempDir()
			if err := SetRunCacheDir(dir); err != nil {
				t.Fatal(err)
			}
			cfg, app := memoTestInputs(t)
			first, err := runApp(context.Background(), cfg, policy.NewFixed(soc.LLCCohDMA), app, 7)
			if err != nil {
				t.Fatal(err)
			}
			files, err := filepath.Glob(filepath.Join(dir, "run-v*.gob"))
			if err != nil || len(files) != 1 {
				t.Fatalf("persisted %v (err %v), want exactly one entry", files, err)
			}
			tc.corrupt(t, files[0])

			ResetRunCache() // drop the in-memory memo so the disk entry is consulted
			if err := SetRunCacheDir(dir); err != nil {
				t.Fatal(err)
			}
			again, err := runApp(context.Background(), cfg, policy.NewFixed(soc.LLCCohDMA), app, 7)
			if err != nil {
				t.Fatal(err)
			}
			if !sameMeasurements(again, first) {
				t.Error("recomputed result after quarantine differs from the original")
			}
			st := GetRunCacheStats()
			if st.Quarantined != 1 {
				t.Fatalf("quarantined %d entries, want exactly 1", st.Quarantined)
			}
			if st.DiskHits != 0 || st.Misses != 1 {
				t.Fatalf("corrupt entry load counted %d disk hits, %d misses; want a clean miss", st.DiskHits, st.Misses)
			}
			if _, err := os.Stat(files[0] + ".corrupt"); err != nil {
				t.Fatalf("corrupt entry not renamed: %v", err)
			}

			// The store healed: the recompute re-persisted, and a fresh
			// process serves it from disk without touching quarantine again.
			ResetRunCache()
			if err := SetRunCacheDir(dir); err != nil {
				t.Fatal(err)
			}
			third, err := runApp(context.Background(), cfg, policy.NewFixed(soc.LLCCohDMA), app, 7)
			if err != nil {
				t.Fatal(err)
			}
			if !sameMeasurements(third, first) {
				t.Error("post-heal disk hit differs from the original result")
			}
			st = GetRunCacheStats()
			if st.DiskHits != 1 || st.Quarantined != 0 {
				t.Fatalf("post-heal load counted %d disk hits, %d quarantines; want 1 and 0", st.DiskHits, st.Quarantined)
			}
		})
	}
}

// sameMeasurements compares two app results by everything a report
// consumes (totals and the per-phase series); revived results re-resolve
// accelerator identities against the config, so pointer-deep equality is
// deliberately not required.
func sameMeasurements(a, b *workload.AppResult) bool {
	return a.Cycles == b.Cycles && a.OffChip == b.OffChip && a.Policy == b.Policy &&
		reflect.DeepEqual(a.ExecSeries(), b.ExecSeries()) &&
		reflect.DeepEqual(a.MemSeries(), b.MemSeries())
}

// memoTestSetup resets the run cache around a test and restores the
// package defaults afterwards (the cache is process-global).
func memoTestSetup(t *testing.T) {
	t.Helper()
	ResetRunCache()
	t.Cleanup(func() {
		ResetRunCache()
		EnableRunCache(true)
		SetRunCacheCapacity(1024)
		if err := SetRunCacheDir(""); err != nil {
			t.Error(err)
		}
	})
}

// memoTestInputs builds a small (config, app) pair that simulates fast.
func memoTestInputs(t *testing.T) (*soc.Config, *workload.App) {
	t.Helper()
	cfg := soc.SoC6()
	app, err := workload.Generate(cfg, workload.GenConfig{MinInvocations: 12, Classes: []workload.SizeClass{workload.Small, workload.Medium}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, app
}

func TestRunCacheKeying(t *testing.T) {
	cfg, app := memoTestInputs(t)
	k1, ok := runCacheKey(cfg, policy.NewFixed(soc.NonCohDMA), app, 7)
	if !ok {
		t.Fatal("fixed policy must be memoizable")
	}
	k2, _ := runCacheKey(cfg, policy.NewFixed(soc.NonCohDMA), app, 7)
	if k1 != k2 {
		t.Error("identical inputs must key identically")
	}
	if k3, _ := runCacheKey(cfg, policy.NewFixed(soc.CohDMA), app, 7); k3 == k1 {
		t.Error("different mode must change the key")
	}
	if k4, _ := runCacheKey(cfg, policy.NewFixed(soc.NonCohDMA), app, 8); k4 == k1 {
		t.Error("different seed must change the key")
	}
	cfg2 := soc.SoC6()
	cfg2.L2KB *= 2
	if k5, _ := runCacheKey(cfg2, policy.NewFixed(soc.NonCohDMA), app, 7); k5 == k1 {
		t.Error("different cache geometry must change the key")
	}
	app2, err := workload.Generate(cfg, workload.GenConfig{MinInvocations: 12, Classes: []workload.SizeClass{workload.Small, workload.Medium}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if k6, _ := runCacheKey(cfg, policy.NewFixed(soc.NonCohDMA), app2, 7); k6 == k1 {
		t.Error("different app must change the key")
	}
	if _, ok := runCacheKey(cfg, policy.NewRandom(1), app, 7); ok {
		t.Error("the random policy must not be memoizable (its RNG carries state across runs)")
	}
	agent, err := core.New(agentConfig(Tiny()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := runCacheKey(cfg, agent, app, 7); ok {
		t.Error("learning policies must bypass the run cache")
	}
}

func TestRunCacheHitReturnsIdenticalInsulatedResult(t *testing.T) {
	memoTestSetup(t)
	cfg, app := memoTestInputs(t)

	first, err := runApp(context.Background(), cfg, policy.NewFixed(soc.LLCCohDMA), app, 7)
	if err != nil {
		t.Fatal(err)
	}
	st := GetRunCacheStats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("after cold run: %+v, want 1 miss", st)
	}
	second, err := runApp(context.Background(), cfg, policy.NewFixed(soc.LLCCohDMA), app, 7)
	if err != nil {
		t.Fatal(err)
	}
	st = GetRunCacheStats()
	if st.Hits != 1 {
		t.Fatalf("after warm run: %+v, want 1 hit", st)
	}
	if !reflect.DeepEqual(first.Phases, second.Phases) || first.Cycles != second.Cycles || first.OffChip != second.OffChip {
		t.Fatal("memoized result differs from the simulated one")
	}
	// Results are insulated: mutating one caller's copy must not leak
	// into the next hit.
	second.Phases[0].Cycles = 12345
	second.Phases[0].Invocations[0].ExecCycles = 999
	third, err := runApp(context.Background(), cfg, policy.NewFixed(soc.LLCCohDMA), app, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Phases, third.Phases) {
		t.Fatal("a caller's mutation leaked into the cache")
	}
}

func TestRunCacheCapacityEviction(t *testing.T) {
	memoTestSetup(t)
	SetRunCacheCapacity(1)
	cfg, app := memoTestInputs(t)

	if _, err := runApp(context.Background(), cfg, policy.NewFixed(soc.NonCohDMA), app, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := runApp(context.Background(), cfg, policy.NewFixed(soc.LLCCohDMA), app, 7); err != nil {
		t.Fatal(err)
	}
	st := GetRunCacheStats()
	if st.Evictions == 0 {
		t.Fatalf("capacity 1 after two distinct runs: %+v, want an eviction", st)
	}
	// The evicted first key must miss (and resimulate) again.
	if _, err := runApp(context.Background(), cfg, policy.NewFixed(soc.NonCohDMA), app, 7); err != nil {
		t.Fatal(err)
	}
	if st = GetRunCacheStats(); st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("after eviction: %+v, want 3 misses and no hits", st)
	}
}

func TestRunCachePersistenceRoundTrip(t *testing.T) {
	memoTestSetup(t)
	dir := t.TempDir()
	if err := SetRunCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	cfg, app := memoTestInputs(t)

	fresh, err := runApp(context.Background(), cfg, policy.NewManual(), app, 7)
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "run-v*.gob"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache dir files = %v (err %v), want exactly one", files, err)
	}

	// A fresh process is modeled by dropping the in-memory layer; the
	// disk copy must serve the rerun and revive identical results,
	// including the re-resolved accelerator identities.
	ResetRunCache()
	revived, err := runApp(context.Background(), cfg, policy.NewManual(), app, 7)
	if err != nil {
		t.Fatal(err)
	}
	st := GetRunCacheStats()
	if st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("after warm-disk run: %+v, want 1 disk hit", st)
	}
	if revived.Cycles != fresh.Cycles || revived.OffChip != fresh.OffChip || revived.Policy != fresh.Policy {
		t.Fatal("revived totals differ")
	}
	if len(revived.Phases) != len(fresh.Phases) {
		t.Fatal("revived phase count differs")
	}
	for pi := range fresh.Phases {
		f, r := fresh.Phases[pi], revived.Phases[pi]
		if f.Name != r.Name || f.Cycles != r.Cycles || f.OffChip != r.OffChip || len(f.Invocations) != len(r.Invocations) {
			t.Fatalf("phase %d differs", pi)
		}
		for ii := range f.Invocations {
			fi, ri := f.Invocations[ii], r.Invocations[ii]
			if fi.Acc.InstName != ri.Acc.InstName || fi.Acc.ID != ri.Acc.ID ||
				fi.Acc.Spec.Name != ri.Acc.Spec.Name ||
				fi.Mode != ri.Mode || fi.FootprintBytes != ri.FootprintBytes ||
				fi.ExecCycles != ri.ExecCycles || fi.ActiveCycles != ri.ActiveCycles ||
				fi.CommCycles != ri.CommCycles || fi.OffChipApprox != ri.OffChipApprox ||
				fi.OffChipTrue != ri.OffChipTrue {
				t.Fatalf("phase %d invocation %d differs: %+v vs %+v", pi, ii, fi, ri)
			}
		}
	}

	// A corrupt file must miss cleanly, not fail the run.
	ResetRunCache()
	if err := os.WriteFile(files[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runApp(context.Background(), cfg, policy.NewManual(), app, 7); err != nil {
		t.Fatal(err)
	}
	if st := GetRunCacheStats(); st.Misses != 1 {
		t.Fatalf("after corrupt file: %+v, want a clean miss", st)
	}
}

// TestSweepByteIdenticalAcrossCacheModes renders a tiny sweep with the
// cache disabled, cold, and warm from a persisted directory: all three
// reports must be byte-identical, and the warm run must actually hit.
func TestSweepByteIdenticalAcrossCacheModes(t *testing.T) {
	memoTestSetup(t)
	opt := Tiny()
	opt.SweepScenarios = 2
	opt.Workers = 2

	EnableRunCache(false)
	off, err := Sweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	offR := off.Render()

	EnableRunCache(true)
	dir := t.TempDir()
	if err := SetRunCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	cold, err := Sweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	coldR := cold.Render()
	coldStats := GetRunCacheStats()
	if coldStats.Misses == 0 {
		t.Fatalf("cold cached sweep recorded no misses: %+v", coldStats)
	}

	ResetRunCache() // model a fresh process over the same cache dir
	warm, err := Sweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	warmR := warm.Render()
	warmStats := GetRunCacheStats()
	if warmStats.DiskHits == 0 {
		t.Fatalf("warm cached sweep hit nothing: %+v", warmStats)
	}

	if offR != coldR {
		t.Error("cache-off and cache-cold sweep reports differ")
	}
	if offR != warmR {
		t.Error("cache-off and cache-warm sweep reports differ")
	}
	if !strings.Contains(offR, "cohmeleon") {
		t.Error("sweep render looks broken")
	}
}
