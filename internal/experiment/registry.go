package experiment

import (
	"fmt"
	"sort"
	"strings"
)

// Runner executes one experiment under the given options.
type Runner func(Options) (Report, error)

// Entry describes one reproducible artifact of the paper.
type Entry struct {
	ID    string
	Title string
	Run   Runner
}

// registry maps experiment IDs to runners.
var registry = map[string]Entry{
	"table4": {
		ID: "table4", Title: "Table 4: parameters of the evaluation SoCs",
		Run: func(o Options) (Report, error) { return Table4(o) },
	},
	"fig2": {
		ID: "fig2", Title: "Figure 2: accelerators in isolation",
		Run: func(o Options) (Report, error) { return Figure2(o) },
	},
	"fig3": {
		ID: "fig3", Title: "Figure 3: parallel accelerator execution",
		Run: func(o Options) (Report, error) { return Figure3(o) },
	},
	"fig5": {
		ID: "fig5", Title: "Figure 5: phase analysis across policies",
		Run: func(o Options) (Report, error) { return Figure5(o) },
	},
	"fig6": {
		ID: "fig6", Title: "Figure 6: reward-function design-space exploration",
		Run: func(o Options) (Report, error) { return Figure6(o) },
	},
	"fig7": {
		ID: "fig7", Title: "Figure 7: breakdown of coherence decisions",
		Run: func(o Options) (Report, error) { return Figure7(o) },
	},
	"fig8": {
		ID: "fig8", Title: "Figure 8: performance over training iterations",
		Run: func(o Options) (Report, error) { return Figure8(o) },
	},
	"fig9": {
		ID: "fig9", Title: "Figure 9: performance across SoC configurations",
		Run: func(o Options) (Report, error) { return Figure9(o) },
	},
	"headline": {
		ID: "headline", Title: "Headline: average speedup and off-chip reduction",
		Run: func(o Options) (Report, error) { return Headline(o) },
	},
	"overhead": {
		ID: "overhead", Title: "Cohmeleon runtime overhead",
		Run: func(o Options) (Report, error) { return Overhead(o) },
	},
	"ablation": {
		ID: "ablation", Title: "Ablations: state attributes, decay schedule, DDR attribution",
		Run: func(o Options) (Report, error) { return Ablation(o) },
	},
	"sweep": {
		ID: "sweep", Title: "Sweep: randomized scenario grid with Q-table transfer",
		Run: func(o Options) (Report, error) { return Sweep(o) },
	},
	"learners": {
		ID: "learners", Title: "Learners: algorithm × schedule grid over randomized scenarios",
		Run: func(o Options) (Report, error) { return Learners(o) },
	},
}

// IDs returns all experiment IDs sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the entry for an experiment ID; the error for an
// unknown ID names every valid one.
func Lookup(id string) (Entry, error) {
	e, ok := registry[id]
	if !ok {
		return Entry{}, fmt.Errorf("experiment: unknown id %q (valid: %s)", id, strings.Join(IDs(), ", "))
	}
	return e, nil
}

// List returns all experiments sorted by ID.
func List() []Entry {
	out := make([]Entry, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
