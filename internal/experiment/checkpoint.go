package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"cohmeleon/internal/faultinject"
)

// Experiment checkpoints: the grid experiments (sweep, learners) persist
// every completed cell — measurements plus trained learner state — as
// its own atomically-written, checksummed file under the run cache
// directory, keyed by a content hash of everything that determines cell
// values (options, format versions, loaded learner state). An
// interrupted run therefore loses at most the in-flight cells; rerunning
// with Options.Resume replays the completed ones byte-identically and
// simulates only the rest. Because each cell file is the exact value the
// aggregation consumes (floats round-trip bit-exactly through gob), a
// resumed report is byte-identical to an uninterrupted run — that
// identity is pinned by the interrupt/resume property test.
//
// One file per cell (rather than one growing checkpoint file) keeps
// concurrent workers from serializing on a shared writer, makes every
// write crash-atomic via the blob rename, and lets a corrupt cell be
// quarantined and recomputed alone — the store heals itself instead of
// abandoning the whole checkpoint.

// checkpointVersion tags the cell file format and the checkpoint
// directory naming. Bump it when either changes: old checkpoints are
// then simply never matched, not misread.
const checkpointVersion = 1

// CheckpointStats counts checkpoint traffic since the last reset.
type CheckpointStats struct {
	// Replayed cells served from a previous run's checkpoint.
	Replayed int64
	// Saved cells persisted by this run.
	Saved int64
}

var ckptReplayed, ckptSaved atomic.Int64

// GetCheckpointStats returns the counters since the last reset.
func GetCheckpointStats() CheckpointStats {
	return CheckpointStats{Replayed: ckptReplayed.Load(), Saved: ckptSaved.Load()}
}

// ResetCheckpointStats zeroes the checkpoint counters.
func ResetCheckpointStats() {
	ckptReplayed.Store(0)
	ckptSaved.Store(0)
}

// checkpoint is one experiment run's cell store. A nil checkpoint (no
// cache directory configured) is valid and inert: loads miss, saves
// drop, so the experiments need no conditionals around it.
type checkpoint struct {
	dir    string
	key    string // directory basename: <experiment>-v<version>-<paramhash>
	resume bool
}

// checkpointRoot names the checkpoint area under a cache directory.
func checkpointRoot(cacheDir string) string {
	return filepath.Join(cacheDir, "checkpoints")
}

// openCheckpoint opens (creating if needed) the cell store for one
// experiment run. paramHash must cover every input that determines cell
// values, so runs with different parameters can never replay each
// other's cells; resume gates replay while saving is always on — an
// interrupted run leaves its checkpoint behind whether or not the user
// planned to resume it.
func openCheckpoint(experiment string, paramHash runKey, resume bool) (*checkpoint, error) {
	cacheDir := runCacheDirectory()
	if cacheDir == "" {
		return nil, nil
	}
	key := fmt.Sprintf("%s-v%d-%x", experiment, checkpointVersion, paramHash[:])
	dir := filepath.Join(checkpointRoot(cacheDir), key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiment: checkpoint dir: %w", err)
	}
	return &checkpoint{dir: dir, key: key, resume: resume}, nil
}

// cellPath names cell i's file.
func (c *checkpoint) cellPath(i int) string {
	return filepath.Join(c.dir, fmt.Sprintf("cell-%06d.gob", i))
}

// load replays cell i into v, reporting whether it was served. Absent
// cells (and all cells when not resuming, or with no checkpoint) miss
// silently; a corrupt cell is quarantined so the caller recomputes it
// now and every later run sees it as absent.
func (c *checkpoint) load(i int, v interface{}) bool {
	if c == nil || !c.resume {
		return false
	}
	path := c.cellPath(i)
	var data []byte
	err := faultinject.Check(faultinject.CkptOpen)
	if err == nil {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		if !os.IsNotExist(err) {
			appRunMemo.noteReadFailure(path, err)
		}
		return false
	}
	if err := openBlob(data, checkpointVersion, v); err != nil {
		c.invalidate(i, err)
		return false
	}
	ckptReplayed.Add(1)
	emitDiag(DiagEvent{Kind: DiagCellReplayed, Path: path})
	return true
}

// invalidate quarantines cell i: used for cells whose envelope verified
// but whose payload turned out unusable (e.g. an embedded learner state
// that no longer restores).
func (c *checkpoint) invalidate(i int, cause error) {
	if c == nil {
		return
	}
	path := c.cellPath(i)
	if err := quarantineBlob(path); err == nil {
		appRunMemo.noteQuarantine(path, cause)
	} else {
		appRunMemo.noteReadFailure(path, cause)
	}
}

// save persists cell i. Failures never fail the experiment — the
// computed cell is still in memory — but are counted and reported like
// run-store write failures.
func (c *checkpoint) save(i int, v interface{}) {
	if c == nil {
		return
	}
	data, err := sealBlob(checkpointVersion, v)
	if err == nil {
		err = writeBlobAtomic(c.dir, c.cellPath(i), data,
			faultinject.CkptCreate, faultinject.CkptWrite, faultinject.CkptRename)
	}
	if err != nil {
		appRunMemo.noteWriteFailure("checkpoint", err)
		return
	}
	ckptSaved.Add(1)
	emitDiag(DiagEvent{Kind: DiagCellSaved, Path: c.cellPath(i)})
}
