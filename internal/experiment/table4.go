package experiment

import (
	"fmt"

	"cohmeleon/internal/soc"
)

// Table4Result reproduces Table 4: the parameters of the evaluation
// SoCs, regenerated from the configuration presets (and verified by
// building each SoC).
type Table4Result struct {
	Configs []*soc.Config
}

// Table4 builds every evaluation SoC (concurrently — the builds are
// independent) and reports its parameters.
func Table4(opt Options) (*Table4Result, error) {
	configs := soc.Table4(opt.Seed)
	for _, cfg := range configs {
		withProtocol(cfg, opt)
	}
	if err := forEachOpt(opt, len(configs), func(i int) error {
		_, err := configs[i].Build()
		return err
	}); err != nil {
		return nil, err
	}
	return &Table4Result{Configs: configs}, nil
}

// Render formats the parameter table in the paper's row order.
func (r *Table4Result) Render() string {
	t := &Table{
		Title:  "Table 4 — parameters of the evaluation SoCs",
		Header: []string{"parameter"},
	}
	for _, cfg := range r.Configs {
		t.Header = append(t.Header, cfg.Name)
	}
	row := func(name string, get func(c *soc.Config) string) {
		cells := []string{name}
		for _, cfg := range r.Configs {
			cells = append(cells, get(cfg))
		}
		t.AddRow(cells...)
	}
	row("Accelerators", func(c *soc.Config) string { return fmt.Sprintf("%d", len(c.Accs)) })
	row("NoC size", func(c *soc.Config) string { return fmt.Sprintf("%dx%d", c.MeshW, c.MeshH) })
	row("CPUs", func(c *soc.Config) string { return fmt.Sprintf("%d", c.CPUs) })
	row("DDRs", func(c *soc.Config) string { return fmt.Sprintf("%d", c.MemTiles) })
	row("LLC part.", func(c *soc.Config) string { return fmt.Sprintf("%dkB", c.LLCSliceKB) })
	row("Total LLC", func(c *soc.Config) string {
		total := c.TotalLLCBytes() / 1024
		if total >= 1024 && total%1024 == 0 {
			return fmt.Sprintf("%dMB", total/1024)
		}
		return fmt.Sprintf("%dkB", total)
	})
	row("L2 cache", func(c *soc.Config) string { return fmt.Sprintf("%dkB", c.L2KB) })
	return t.Render()
}
