package experiment

import (
	"strings"
	"testing"

	"cohmeleon/internal/learn"
)

// learnerTestOptions is the smallest grid that still runs every stack.
func learnerTestOptions() Options {
	opt := Tiny()
	opt.LearnerScenarios = 2
	return opt
}

func TestLearnerGridCoversAlgorithmsAndSchedules(t *testing.T) {
	algos := map[string]bool{}
	scheds := map[string]bool{}
	for _, st := range LearnerGrid() {
		if _, err := learn.NewAlgorithm(st.Algorithm); err != nil {
			t.Fatalf("grid entry %s: %v", st.Label(), err)
		}
		if _, err := learn.NewSchedule(st.Schedule, learn.ScheduleParams{
			Epsilon0: 0.5, Alpha0: 0.25, DecayIterations: 2,
		}); err != nil {
			t.Fatalf("grid entry %s: %v", st.Label(), err)
		}
		algos[st.Algorithm] = true
		scheds[st.Schedule] = true
	}
	// Acceptance floor: ≥ 3 algorithms × ≥ 2 schedules over the grid.
	if len(algos) < 3 {
		t.Fatalf("grid exercises %d algorithms, want ≥ 3", len(algos))
	}
	if len(scheds) < 2 {
		t.Fatalf("grid exercises %d schedules, want ≥ 2", len(scheds))
	}
	if LearnerGrid()[0].Label() != "q+linear" {
		t.Fatal("the paper's stack must lead the grid")
	}
}

func TestLearnersRunsEveryStack(t *testing.T) {
	res, err := Learners(learnerTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 2 {
		t.Fatalf("ran %d scenarios, want 2", len(res.Scenarios))
	}
	for _, st := range LearnerGrid() {
		row, ok := res.Row(st.Label())
		if !ok {
			t.Fatalf("stack %s missing from the report", st.Label())
		}
		if row.NormExec <= 0 || row.NormMem < 0 {
			t.Fatalf("stack %s has degenerate aggregates: %+v", st.Label(), row)
		}
		var share float64
		for _, p := range row.DecisionShare {
			share += p
		}
		if share < 99.9 || share > 100.1 {
			t.Fatalf("stack %s decision shares sum to %.2f", st.Label(), share)
		}
	}
	rendered := res.Render()
	for _, st := range LearnerGrid() {
		if !strings.Contains(rendered, st.Label()) {
			t.Fatalf("render misses stack %s", st.Label())
		}
	}
}

// TestLearnersDeterministicAcrossWorkers is the acceptance check: the
// learners report must be byte-identical whether trials run
// sequentially or on a full worker pool.
func TestLearnersDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) string {
		opt := learnerTestOptions()
		opt.Workers = workers
		res, err := Learners(opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.Render()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("learners report differs between workers=1 and workers=8\n%s", diffAt(par, seq))
	}
}

// TestLearnersHonorsStackOverride: -learner/-schedule narrow the grid
// instead of being silently ignored; an uncurated combination runs as
// a single stack.
func TestLearnersHonorsStackOverride(t *testing.T) {
	opt := learnerTestOptions()
	opt.Learner = "boltzmann"
	res, err := Learners(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("boltzmann override ran %d stacks, want its 2 curated entries", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !strings.HasPrefix(row.Stack, "boltzmann+") {
			t.Fatalf("override leaked stack %s", row.Stack)
		}
	}

	opt.Schedule = "const" // boltzmann+const is valid but not curated
	res, err = Learners(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Stack != "boltzmann+const" {
		t.Fatalf("uncurated combination ran %v, want the single requested stack", res.Rows)
	}
}

func TestLearnersRegistered(t *testing.T) {
	e, err := Lookup("learners")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(learnerTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Render(), "q+linear") {
		t.Fatal("registry-run learners report misses the reference stack")
	}
}
