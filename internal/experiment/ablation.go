package experiment

import (
	"cohmeleon/internal/core"
	"cohmeleon/internal/policy"
	"cohmeleon/internal/soc"
	"cohmeleon/internal/workload"
)

// AblationPoint is one variant's geomean normalized performance.
type AblationPoint struct {
	Variant  string
	NormExec float64
	NormMem  float64
}

// AblationResult covers the design-choice ablations DESIGN.md calls
// out beyond the paper's own reward DSE: dropping each Table-3 state
// attribute, disabling the linear ε/α decay, and replacing the paper's
// DDR-attribution approximation with simulator ground truth.
type AblationResult struct {
	Points []AblationPoint
}

// Ablation trains one Cohmeleon variant per design choice on SoC0 and
// tests all of them on the same application instance.
func Ablation(opt Options) (*AblationResult, error) {
	cfg := withProtocol(soc.SoC0(soc.TrafficMixed, opt.Seed), opt)
	train, err := workload.Generate(cfg, workload.GenConfig{MinInvocations: opt.MinInvocations}, opt.Seed+1000)
	if err != nil {
		return nil, err
	}
	test, err := workload.Generate(cfg, workload.GenConfig{MinInvocations: opt.MinInvocations}, opt.Seed+2000)
	if err != nil {
		return nil, err
	}
	ctx := opt.ctx()
	baseline, err := runApp(ctx, cfg, policy.NewFixed(soc.NonCohDMA), test, opt.Seed+3)
	if err != nil {
		return nil, err
	}

	// Every variant is a learner-stack configuration: the decay ablation
	// swaps the Schedule seam for the constant schedule, the state
	// ablations swap the Featurizer seam for an ablated encoder, and the
	// attribution ablation redirects the reward's mem component. The
	// pre-refactor bespoke Config booleans (NoDecay, Encoder) are gone.
	type variant struct {
		name string
		mut  func(*core.Config)
	}
	variants := []variant{
		{"full (paper)", func(*core.Config) {}},
		{"no-decay", func(c *core.Config) { c.Schedule = "const" }},
		{"true-ddr-reward", func(c *core.Config) { c.TrueDDRReward = true }},
	}
	for a := core.Attribute(0); a < core.NumAttributes; a++ {
		a := a
		variants = append(variants, variant{
			name: "drop-" + a.String(),
			mut:  func(c *core.Config) { c.Featurizer = core.NewAblatedEncoder(a) },
		})
	}

	// Each variant trains and tests its own agent from the same seeds;
	// the variants are independent and fan out on the worker pool.
	points := make([]AblationPoint, len(variants))
	if err := forEachOpt(opt, len(variants), func(i int) error {
		v := variants[i]
		agentCfg := core.DefaultConfig()
		agentCfg.DecayIterations = opt.TrainIterations
		agentCfg.Seed = opt.Seed
		v.mut(&agentCfg)
		agent, err := core.New(agentCfg)
		if err != nil {
			return err
		}
		if err := trainCohmeleon(ctx, cfg, agent, train, opt.TrainIterations, opt.Seed+7); err != nil {
			return err
		}
		res, err := testPolicy(ctx, cfg, agent, test, opt.Seed+3)
		if err != nil {
			return err
		}
		exec, mem := geoNormalized(res, baseline)
		points[i] = AblationPoint{Variant: v.name, NormExec: exec, NormMem: mem}
		return nil
	}); err != nil {
		return nil, err
	}
	return &AblationResult{Points: points}, nil
}

// Point returns a variant's measurement.
func (r *AblationResult) Point(variant string) (AblationPoint, bool) {
	for _, p := range r.Points {
		if p.Variant == variant {
			return p, true
		}
	}
	return AblationPoint{}, false
}

// Render formats the ablation table.
func (r *AblationResult) Render() string {
	t := &Table{
		Title:  "Ablations — Cohmeleon variants on SoC0 (normalized to fixed-non-coh-dma)",
		Header: []string{"variant", "norm exec", "norm off-chip"},
	}
	for _, p := range r.Points {
		t.AddRow(p.Variant, f2(p.NormExec), f2(p.NormMem))
	}
	return t.Render()
}
