package experiment

import (
	"context"
	"fmt"
	"sync"

	"cohmeleon/internal/core"
	"cohmeleon/internal/esp"
	"cohmeleon/internal/mem"
	"cohmeleon/internal/policy"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
	"cohmeleon/internal/stats"
	"cohmeleon/internal/workload"
)

// enginePool reuses simulation kernels across trials. Every trial still
// builds a fresh SoC (hardware state never survives a measurement), but
// the engine underneath — its event heap, ready ring, and coroutine
// wiring — carries no simulation state after a completed run, so
// Reset + reuse stops the fan-out from re-growing kernel storage per
// trial. Engines are returned only after a successful run: a deadlocked
// engine still owns parked coroutine stacks and is simply dropped.
var enginePool = sync.Pool{New: func() interface{} { return sim.NewEngine() }}

// pooledEngine returns an idle engine with the clock at zero.
func pooledEngine() *sim.Engine {
	e := enginePool.Get().(*sim.Engine)
	e.Reset()
	return e
}

// releaseEngine returns a drained engine to the pool. Only call it after
// Run returned nil.
func releaseEngine(e *sim.Engine) { enginePool.Put(e) }

// withProtocol applies the option's coherence-protocol selection to a
// constructed topology; every experiment routes its hand-built configs
// through it so -protocol reaches all of them.
func withProtocol(cfg *soc.Config, opt Options) *soc.Config {
	cfg.Protocol = opt.Protocol
	return cfg
}

// build builds a fresh SoC (hardware state never survives between
// measurements; policies may) on a pooled engine.
func build(cfg *soc.Config) (*soc.SoC, error) {
	s, err := cfg.BuildOn(pooledEngine())
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	return s, nil
}

// runApp executes one application run of a policy — through the
// content-keyed run cache when the policy is memoizable (see memo.go),
// on a fresh SoC otherwise. The context is observed only here, at the
// run boundary: a cancelled experiment cuts out between app runs, never
// mid-simulation, so every result that exists is a complete one.
func runApp(ctx context.Context, cfg *soc.Config, pol esp.Policy, app *workload.App, seed uint64) (*workload.AppResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("experiment: run aborted: %w", err)
	}
	appRunMemo.mu.Lock()
	enabled := appRunMemo.enabled
	appRunMemo.mu.Unlock()
	if enabled {
		if key, ok := runCacheKey(cfg, pol, app, seed); ok {
			return appRunMemo.getOrRun(ctx, key, cfg, app, func() (*workload.AppResult, error) {
				return simulateApp(cfg, pol, app, seed)
			})
		}
	}
	return simulateApp(cfg, pol, app, seed)
}

// simulateApp is the uncached run: one application on a fresh SoC.
func simulateApp(cfg *soc.Config, pol esp.Policy, app *workload.App, seed uint64) (*workload.AppResult, error) {
	s, err := build(cfg)
	if err != nil {
		return nil, err
	}
	res, err := workload.Run(esp.NewSystem(s, pol), app, seed)
	if err == nil {
		releaseEngine(s.Eng)
	}
	return res, err
}

// trainCohmeleon runs the agent through iters training iterations of the
// training application (fresh SoC each iteration, as each FPGA run
// reboots the platform but the learned table persists).
func trainCohmeleon(ctx context.Context, cfg *soc.Config, agent *core.Cohmeleon, train *workload.App, iters int, seed uint64) error {
	agent.Unfreeze()
	for i := 0; i < iters; i++ {
		if _, err := runApp(ctx, cfg, agent, train, seed+uint64(i)); err != nil {
			return err
		}
		agent.EndIteration()
	}
	return nil
}

// freezer is implemented by learning policies that must be frozen for
// a measurement. Detection is by interface, not concrete type, so
// wrappers (e.g. the sweep's renamed transfer policy) stay transparent
// by forwarding these methods.
type freezer interface {
	Freeze()
	Unfreeze()
	Frozen() bool
}

// testPolicy evaluates a policy on the test application; learning
// policies are frozen for the measurement and restored afterwards.
func testPolicy(ctx context.Context, cfg *soc.Config, pol esp.Policy, test *workload.App, seed uint64) (*workload.AppResult, error) {
	if agent, ok := pol.(freezer); ok {
		wasFrozen := agent.Frozen()
		agent.Freeze()
		defer func() {
			if !wasFrozen {
				agent.Unfreeze()
			}
		}()
	}
	return runApp(ctx, cfg, pol, test, seed)
}

// profileHeterogeneous derives the fixed-heterogeneous assignment the
// way the paper does: profile each accelerator type in isolation under
// every mode while sweeping the workload footprint, then fix the mode
// with the best mean normalized execution time. The (spec, mode, size)
// profiling trials are independent — each simulates one accelerator
// alone on a fresh SoC — and fan out on the worker pool.
func profileHeterogeneous(cfg *soc.Config, opt Options) (*policy.FixedHeterogeneous, error) {
	classes := []workload.SizeClass{workload.Small, workload.Medium, workload.Large, workload.ExtraLarge}
	var specs, insts []string // one profiled instance per spec, in config order
	seen := make(map[string]bool)
	for _, inst := range cfg.Accs {
		if seen[inst.Spec.Name] {
			continue
		}
		seen[inst.Spec.Name] = true
		specs = append(specs, inst.Spec.Name)
		insts = append(insts, inst.InstName)
	}

	nc := len(classes)
	trials := len(specs) * int(soc.NumModes) * nc
	results := make([]isolationMeasurement, trials)
	if err := forEachOpt(opt, trials, func(i int) error {
		si := i / (int(soc.NumModes) * nc)
		mi := i / nc % int(soc.NumModes)
		ci := i % nc
		bytes := workload.ClassBytes(classes[ci], cfg)
		var err error
		results[i], err = isolatedInvocation(cfg, insts[si], bytes, soc.AllModes[mi], 1, opt.Seed)
		return err
	}); err != nil {
		return nil, err
	}

	assignment := make(map[string]soc.Mode)
	for si, specName := range specs {
		// Mean exec per mode, each size normalized against NonCohDMA so
		// sizes weigh equally.
		execs := make([][]float64, soc.NumModes) // [mode][size]
		for mi := range soc.AllModes {
			for ci := 0; ci < nc; ci++ {
				res := results[(si*int(soc.NumModes)+mi)*nc+ci]
				execs[mi] = append(execs[mi], float64(res.ExecCycles))
			}
		}
		scores := make([]float64, soc.NumModes)
		for m := range execs {
			scores[m] = stats.Mean(stats.Normalize(execs[m], execs[soc.NonCohDMA]))
		}
		assignment[specName] = soc.Mode(stats.ArgMin(scores))
	}
	return policy.NewFixedHeterogeneous(assignment, soc.CohDMA), nil
}

// isolationMeasurement is one averaged isolation data point.
type isolationMeasurement struct {
	ExecCycles float64
	OffChip    float64
}

// isolatedInvocation measures one accelerator alone on a fresh SoC:
// warm the dataset, then run `runs` invocations under the mode and
// average. Matches the paper's Figure-2 methodology (measurements
// include driver overhead and flushes). Setup failures inside the
// simulation process (allocation, instance lookup) surface as errors
// through the experiment result rather than tearing the process down.
func isolatedInvocation(cfg *soc.Config, instName string, bytes int64, mode soc.Mode, runs int, seed uint64) (isolationMeasurement, error) {
	var out isolationMeasurement
	s, err := build(cfg)
	if err != nil {
		return out, err
	}
	sys := esp.NewSystem(s, policy.NewFixed(mode))
	var procErr error
	s.Eng.Go("isolation", func(p *sim.Proc) {
		buf, err := s.Heap.Alloc(bytes)
		if err != nil {
			procErr = fmt.Errorf("isolation %s: %w", instName, err)
			return
		}
		a, err := s.AccByName(instName)
		if err != nil {
			procErr = err
			return
		}
		rng := sim.NewRNG(seed)
		p.WaitUntil(s.CPUTouchRange(s.CPUs[0], buf, 0, buf.Lines(), true, p.Now(), &soc.Meter{}))
		s.CPUPool.Acquire(p)
		for r := 0; r < runs; r++ {
			res := sys.InvokeWithMode(p, a, buf, mode, s.CPUPool, rng.Split())
			out.ExecCycles += float64(res.ExecCycles)
			out.OffChip += float64(res.OffChipTrue)
		}
		s.CPUPool.Release()
	})
	if err := s.Eng.Run(); err != nil {
		return out, err
	}
	if procErr != nil {
		return out, procErr
	}
	releaseEngine(s.Eng)
	out.ExecCycles /= float64(runs)
	out.OffChip /= float64(runs)
	return out, nil
}

// agentConfig is the shared agent setup: the paper's defaults scaled
// to the option's training length and seed, with the learner stack
// (algorithm and schedule seams) taken from the options so -learner
// and -schedule reach every experiment that trains an agent. Empty
// stack names keep the paper's default, which is byte-identical to the
// pre-refactor agent.
func agentConfig(opt Options) core.Config {
	cfg := core.DefaultConfig()
	cfg.DecayIterations = opt.TrainIterations
	cfg.Seed = opt.Seed
	cfg.Learner = opt.Learner
	cfg.Schedule = opt.Schedule
	cfg.FineGrain = opt.FineGrain
	return cfg
}

// policySet builds the paper's eight policies for one SoC, training
// Cohmeleon and profiling the heterogeneous baseline. The training and
// test applications differ (different generator seeds). Training and
// profiling are independent (separate policies, fresh SoCs per
// measurement) and run concurrently; the training loop itself stays
// sequential because iteration i+1 learns from iteration i.
func policySet(cfg *soc.Config, opt Options, weights core.RewardWeights) ([]esp.Policy, error) {
	train, err := workload.AppFor(cfg, opt.Seed+1000)
	if err != nil {
		return nil, err
	}
	agentCfg := agentConfig(opt)
	agentCfg.Weights = weights
	agent, err := core.New(agentCfg)
	if err != nil {
		return nil, err
	}
	var het *policy.FixedHeterogeneous
	if err := forEachOpt(opt, 2, func(i int) error {
		if i == 0 {
			return trainCohmeleon(opt.ctx(), cfg, agent, train, opt.TrainIterations, opt.Seed+7)
		}
		var err error
		het, err = profileHeterogeneous(cfg, opt)
		return err
	}); err != nil {
		return nil, err
	}
	return []esp.Policy{
		policy.NewFixed(soc.NonCohDMA),
		policy.NewFixed(soc.LLCCohDMA),
		policy.NewFixed(soc.CohDMA),
		policy.NewFixed(soc.FullyCoh),
		policy.NewRandom(opt.Seed),
		het,
		policy.NewManual(),
		agent,
	}, nil
}

// geoNormalized computes the geometric mean over phases of a result's
// exec and mem series normalized to a baseline result.
func geoNormalized(res, base *workload.AppResult) (exec, mem float64) {
	exec = stats.GeoMean(stats.Normalize(res.ExecSeries(), base.ExecSeries()))
	mem = stats.GeoMean(stats.Normalize(res.MemSeries(), base.MemSeries()))
	return exec, mem
}

// sizeClassOf buckets an invocation result for Figure 7.
func sizeClassOf(res *esp.Result, cfg *soc.Config) workload.SizeClass {
	return workload.Classify(res.FootprintBytes, cfg)
}

// lineBytes re-exports the line size for reports.
const lineBytes = mem.LineBytes
