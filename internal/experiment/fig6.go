package experiment

import (
	"cohmeleon/internal/core"
	"cohmeleon/internal/esp"
	"cohmeleon/internal/policy"
	"cohmeleon/internal/soc"
	"cohmeleon/internal/workload"
)

// Fig6Point is one scatter point of Figure 6: geomean normalized
// execution time vs off-chip accesses over all phases.
type Fig6Point struct {
	Label    string
	Weights  string
	NormExec float64
	NormMem  float64
}

// Fig6Result reproduces Figure 6: the reward-function design-space
// exploration on SoC0 — Cohmeleon models trained with different
// (x, y, z) weights plotted against the baseline policies.
type Fig6Result struct {
	Cohmeleon []Fig6Point
	Baselines []Fig6Point
}

// fig6Weights generates the weight settings: the paper explores 15
// models across the simplex, including two that weigh off-chip accesses
// above 90% (which it finds degenerate) and the two Pareto examples it
// calls out: (67.5, 7.5, 25) and (12.5, 12.5, 75).
func fig6Weights(n int) []core.RewardWeights {
	all := []core.RewardWeights{
		{Exec: 0.675, Comm: 0.075, Mem: 0.25},
		{Exec: 0.125, Comm: 0.125, Mem: 0.75},
		{Exec: 1, Comm: 0, Mem: 0},
		{Exec: 0, Comm: 0, Mem: 1},       // >90% mem: degenerate per the paper
		{Exec: 0.05, Comm: 0, Mem: 0.95}, // >90% mem: degenerate per the paper
		{Exec: 0.5, Comm: 0.25, Mem: 0.25},
		{Exec: 0.25, Comm: 0.5, Mem: 0.25},
		{Exec: 0.25, Comm: 0.25, Mem: 0.5},
		{Exec: 0.8, Comm: 0.1, Mem: 0.1},
		{Exec: 0.4, Comm: 0.2, Mem: 0.4},
		{Exec: 0.6, Comm: 0, Mem: 0.4},
		{Exec: 0.45, Comm: 0.1, Mem: 0.45},
		{Exec: 0.33, Comm: 0.33, Mem: 0.34},
		{Exec: 0.7, Comm: 0.2, Mem: 0.1},
		{Exec: 0.55, Comm: 0.05, Mem: 0.4},
	}
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

// Figure6 trains one model per weight setting and tests all of them
// plus the baselines on a different application instance.
func Figure6(opt Options) (*Fig6Result, error) {
	cfg := withProtocol(soc.SoC0(soc.TrafficMixed, opt.Seed), opt)
	train, err := workload.Generate(cfg, workload.GenConfig{MinInvocations: opt.MinInvocations}, opt.Seed+1000)
	if err != nil {
		return nil, err
	}
	test, err := workload.Generate(cfg, workload.GenConfig{MinInvocations: opt.MinInvocations}, opt.Seed+2000)
	if err != nil {
		return nil, err
	}

	ctx := opt.ctx()
	baseline, err := runApp(ctx, cfg, policy.NewFixed(soc.NonCohDMA), test, opt.Seed+3)
	if err != nil {
		return nil, err
	}

	// One trial per baseline policy plus one train+test trial per reward
	// model. Each trial owns its policy (the heterogeneous baseline is
	// profiled inside its trial, each model trains its own agent with
	// seeds fixed by index), so the whole batch fans out and the scatter
	// is assembled from the indexed results in paper order.
	baselineMakers := []func() (esp.Policy, error){
		func() (esp.Policy, error) { return policy.NewFixed(soc.NonCohDMA), nil },
		func() (esp.Policy, error) { return policy.NewFixed(soc.LLCCohDMA), nil },
		func() (esp.Policy, error) { return policy.NewFixed(soc.CohDMA), nil },
		func() (esp.Policy, error) { return policy.NewFixed(soc.FullyCoh), nil },
		func() (esp.Policy, error) { return policy.NewRandom(opt.Seed), nil },
		func() (esp.Policy, error) { return profileHeterogeneous(cfg, opt) },
		func() (esp.Policy, error) { return policy.NewManual(), nil },
	}
	weights := fig6Weights(opt.Fig6Models)
	points := make([]Fig6Point, len(baselineMakers)+len(weights))
	if err := forEachOpt(opt, len(points), func(i int) error {
		var pol esp.Policy
		label, wlabel := "", ""
		if i < len(baselineMakers) {
			var err error
			pol, err = baselineMakers[i]()
			if err != nil {
				return err
			}
			label = pol.Name()
		} else {
			w := weights[i-len(baselineMakers)]
			mi := i - len(baselineMakers)
			agentCfg := agentConfig(opt)
			agentCfg.Weights = w
			agentCfg.DecayIterations = opt.Fig6TrainIterations
			agentCfg.Seed = opt.Seed + uint64(mi)
			agent, err := core.New(agentCfg)
			if err != nil {
				return err
			}
			if err := trainCohmeleon(ctx, cfg, agent, train, opt.Fig6TrainIterations, opt.Seed+uint64(100*mi)); err != nil {
				return err
			}
			pol, label, wlabel = agent, "cohmeleon", w.String()
		}
		res, err := testPolicy(ctx, cfg, pol, test, opt.Seed+3)
		if err != nil {
			return err
		}
		exec, mem := geoNormalized(res, baseline)
		points[i] = Fig6Point{Label: label, Weights: wlabel, NormExec: exec, NormMem: mem}
		return nil
	}); err != nil {
		return nil, err
	}

	out := &Fig6Result{}
	out.Baselines = append(out.Baselines, points[:len(baselineMakers)]...)
	out.Cohmeleon = append(out.Cohmeleon, points[len(baselineMakers):]...)
	return out, nil
}

// Render formats the scatter as a table.
func (r *Fig6Result) Render() string {
	t := &Table{
		Title:  "Figure 6 — reward-function DSE on SoC0 (geomean over phases, normalized to fixed-non-coh-dma)",
		Header: []string{"policy", "weights (x,y,z)%", "norm exec", "norm off-chip"},
	}
	for _, p := range r.Baselines {
		t.AddRow(p.Label, "-", f2(p.NormExec), f2(p.NormMem))
	}
	for _, p := range r.Cohmeleon {
		t.AddRow(p.Label, p.Weights, f2(p.NormExec), f2(p.NormMem))
	}
	t.AddNote("paper: cohmeleon points cluster bottom-left, matching manual's exec with the lowest off-chip; only >90%%-mem rewards degrade")
	return t.Render()
}
