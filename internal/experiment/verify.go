package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// VerifyResult summarizes a run-store fsck (-cache-verify).
type VerifyResult struct {
	// Runs is the number of current-version run entries examined; OK of
	// them re-hashed and decoded cleanly.
	Runs int
	OK   int
	// Quarantined counts entries that failed verification and were
	// renamed *.corrupt during this pass (runs and checkpoint cells).
	Quarantined int
	// Failed counts entries that failed verification but could not be
	// read or quarantined; they remain in place and will fail again on
	// the next run.
	Failed int
	// Stale counts run entries from other format versions; they are
	// never read by this binary and are left in place.
	Stale int
	// PriorQuarantine counts *.corrupt files from earlier quarantines.
	PriorQuarantine int
	// Cells is the number of checkpoint cells examined; CellsOK of them
	// verified cleanly.
	Cells   int
	CellsOK int
}

// String renders the fsck summary.
func (v VerifyResult) String() string {
	return fmt.Sprintf("run store: %d/%d entries ok, %d checkpoint cells ok of %d, %d quarantined this pass, %d corrupt but not quarantined, %d stale-version, %d previously quarantined",
		v.OK, v.Runs, v.CellsOK, v.Cells, v.Quarantined, v.Failed, v.Stale, v.PriorQuarantine)
}

// Clean reports whether every examined entry verified.
func (v VerifyResult) Clean() bool { return v.Quarantined == 0 && v.Failed == 0 }

// VerifyRunCache fscks a cache directory: every current-version run
// entry is re-read, re-hashed against its embedded checksum, and fully
// decoded; every checkpoint cell is re-read and re-hashed. Entries that
// fail are quarantined exactly as a regular load would have done —
// verification is the same code path, run eagerly — so after a clean
// pass no future run can trip over a corrupt entry. The error is non-nil
// only when the directory itself cannot be walked; individual bad
// entries are a result, not an error.
func VerifyRunCache(dir string) (VerifyResult, error) {
	var out VerifyResult
	if dir == "" {
		return out, fmt.Errorf("experiment: no cache directory to verify")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return out, fmt.Errorf("experiment: verifying cache: %w", err)
	}
	curPrefix := fmt.Sprintf("run-v%d-", runCacheVersion)
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case ent.IsDir():
			continue
		case strings.HasSuffix(name, ".corrupt"):
			out.PriorQuarantine++
		case strings.HasPrefix(name, curPrefix) && strings.HasSuffix(name, ".gob"):
			out.Runs++
			switch verifyRunEntry(filepath.Join(dir, name)) {
			case verifyOK:
				out.OK++
			case verifyQuarantined:
				out.Quarantined++
			case verifyFailed:
				out.Failed++
			}
		case strings.HasPrefix(name, "run-v") && strings.HasSuffix(name, ".gob"):
			out.Stale++
		}
	}
	// Checkpoint cells: same envelope discipline, own format version.
	cellGlob := filepath.Join(checkpointRoot(dir), "*", "cell-*.gob")
	cells, err := filepath.Glob(cellGlob)
	if err != nil {
		return out, fmt.Errorf("experiment: verifying checkpoints: %w", err)
	}
	for _, path := range cells {
		if strings.HasSuffix(path, ".corrupt") {
			continue
		}
		out.Cells++
		switch verifyEnvelopeFile(path, checkpointVersion) {
		case verifyOK:
			out.CellsOK++
		case verifyQuarantined:
			out.Quarantined++
		case verifyFailed:
			out.Failed++
		}
	}
	return out, nil
}

// verifyOutcome classifies one fsck'd entry.
type verifyOutcome int

const (
	verifyOK          verifyOutcome = iota // entry verified cleanly
	verifyQuarantined                      // entry was corrupt and is now *.corrupt
	verifyFailed                           // entry is bad but still in place (read or rename failed)
)

// verifyRunEntry re-hashes and fully decodes one run entry, putting a
// failing file in quarantine.
func verifyRunEntry(path string) verifyOutcome {
	data, err := os.ReadFile(path)
	if err != nil {
		appRunMemo.noteReadFailure(path, err)
		return verifyFailed
	}
	var p persistedRun
	if err := openBlob(data, runCacheVersion, &p); err == nil && p.Version == runCacheVersion {
		return verifyOK
	}
	if err := quarantineBlob(path); err != nil {
		appRunMemo.noteReadFailure(path, fmt.Errorf("fsck: quarantining failed entry: %w", err))
		return verifyFailed
	}
	appRunMemo.noteQuarantine(path, fmt.Errorf("fsck: entry failed verification"))
	return verifyQuarantined
}

// verifyEnvelopeFile re-hashes one enveloped file (payload schema not
// interpreted), quarantining on failure.
func verifyEnvelopeFile(path string, version int) verifyOutcome {
	data, err := os.ReadFile(path)
	if err != nil {
		appRunMemo.noteReadFailure(path, err)
		return verifyFailed
	}
	if _, err := openEnvelope(data, version); err == nil {
		return verifyOK
	}
	if err := quarantineBlob(path); err != nil {
		appRunMemo.noteReadFailure(path, fmt.Errorf("fsck: quarantining failed cell: %w", err))
		return verifyFailed
	}
	appRunMemo.noteQuarantine(path, fmt.Errorf("fsck: cell failed verification"))
	return verifyQuarantined
}
