package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// VerifyResult summarizes a run-store fsck (-cache-verify).
type VerifyResult struct {
	// Runs is the number of current-version run entries examined; OK of
	// them re-hashed and decoded cleanly.
	Runs int
	OK   int
	// Quarantined counts entries that failed verification and were
	// renamed *.corrupt during this pass (runs and checkpoint cells).
	Quarantined int
	// Failed counts entries that failed verification but could not be
	// read or quarantined; they remain in place and will fail again on
	// the next run.
	Failed int
	// Stale counts run entries from other format versions; they are
	// never read by this binary and are left in place.
	Stale int
	// PriorQuarantine counts *.corrupt files from earlier quarantines.
	PriorQuarantine int
	// Cells is the number of checkpoint cells examined; CellsOK of them
	// verified cleanly.
	Cells   int
	CellsOK int
	// Leases is the number of lease files examined; LeasesOK of them
	// verified cleanly (corrupt ones — torn by a kill -9 mid-write —
	// are quarantined and counted in Quarantined like any other entry).
	Leases   int
	LeasesOK int
	// LeasesSwept counts verified leases removed because their cell had
	// already published: a worker that died (or faulted) between publish
	// and release leaves one behind, and nothing ever claims a published
	// cell, so the lease would otherwise linger forever.
	LeasesSwept int
	// TmpSwept counts orphaned temp files (.***.tmp) left by killed
	// writers, removed during this pass. Counted apart from quarantines:
	// an orphaned temp is expected litter from a crash-atomic write, not
	// a corrupt entry.
	TmpSwept int
}

// String renders the fsck summary.
func (v VerifyResult) String() string {
	return fmt.Sprintf("run store: %d/%d entries ok, %d checkpoint cells ok of %d, %d leases ok of %d, %d quarantined this pass, %d corrupt but not quarantined, %d stale-version, %d previously quarantined, %d published-cell leases swept, %d orphaned temp files swept",
		v.OK, v.Runs, v.CellsOK, v.Cells, v.LeasesOK, v.Leases, v.Quarantined, v.Failed, v.Stale, v.PriorQuarantine, v.LeasesSwept, v.TmpSwept)
}

// Clean reports whether every examined entry verified.
func (v VerifyResult) Clean() bool { return v.Quarantined == 0 && v.Failed == 0 }

// VerifyRunCache fscks a cache directory: every current-version run
// entry is re-read, re-hashed against its embedded checksum, and fully
// decoded; every checkpoint cell is re-read and re-hashed. Entries that
// fail are quarantined exactly as a regular load would have done —
// verification is the same code path, run eagerly — so after a clean
// pass no future run can trip over a corrupt entry. The error is non-nil
// only when the directory itself cannot be walked; individual bad
// entries are a result, not an error.
func VerifyRunCache(dir string) (VerifyResult, error) {
	var out VerifyResult
	if dir == "" {
		return out, fmt.Errorf("experiment: no cache directory to verify")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return out, fmt.Errorf("experiment: verifying cache: %w", err)
	}
	curPrefix := fmt.Sprintf("run-v%d-", runCacheVersion)
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case ent.IsDir():
			continue
		case strings.HasSuffix(name, ".corrupt"):
			out.PriorQuarantine++
		case strings.HasPrefix(name, curPrefix) && strings.HasSuffix(name, ".gob"):
			out.Runs++
			switch verifyRunEntry(filepath.Join(dir, name)) {
			case verifyOK:
				out.OK++
			case verifyQuarantined:
				out.Quarantined++
			case verifyFailed:
				out.Failed++
			}
		case strings.HasPrefix(name, "run-v") && strings.HasSuffix(name, ".gob"):
			out.Stale++
		}
	}
	// Checkpoint cells: same envelope discipline, own format version.
	cellGlob := filepath.Join(checkpointRoot(dir), "*", "cell-*.gob")
	cells, err := filepath.Glob(cellGlob)
	if err != nil {
		return out, fmt.Errorf("experiment: verifying checkpoints: %w", err)
	}
	for _, path := range cells {
		if strings.HasSuffix(path, ".corrupt") {
			continue
		}
		out.Cells++
		switch verifyEnvelopeFile(path, checkpointVersion) {
		case verifyOK:
			out.CellsOK++
		case verifyQuarantined:
			out.Quarantined++
		case verifyFailed:
			out.Failed++
		}
	}
	// Lease files: same envelope discipline again. A lease that verifies
	// but whose cell already published is swept — its holder died (or
	// faulted) between publish and release, and no worker ever claims a
	// published cell, so it would linger forever.
	leases, err := filepath.Glob(filepath.Join(leaseRoot(dir), "*", "cell-*.lease"))
	if err != nil {
		return out, fmt.Errorf("experiment: verifying leases: %w", err)
	}
	for _, path := range leases {
		out.Leases++
		switch verifyEnvelopeFile(path, leaseVersion) {
		case verifyOK:
			out.LeasesOK++
			if cellPublished(dir, path) {
				if err := os.Remove(path); err == nil {
					out.LeasesSwept++
				} else {
					appRunMemo.noteReadFailure(path, fmt.Errorf("fsck: sweeping released lease: %w", err))
					out.Failed++
				}
			}
		case verifyQuarantined:
			out.Quarantined++
		case verifyFailed:
			out.Failed++
		}
	}
	// Orphaned temp files: every writer in this store goes through
	// CreateTemp with a dot-prefixed *.tmp pattern and renames or removes
	// it; a temp file still present belongs to a killed writer (fsck
	// assumes no writers are live) and is swept.
	for _, root := range []string{dir, checkpointRoot(dir), leaseRoot(dir)} {
		swept, failed := sweepTempFiles(root)
		out.TmpSwept += swept
		out.Failed += failed
	}
	return out, nil
}

// cellPublished reports whether the checkpoint cell a lease file guards
// already exists: leases/<key>/cell-NNNNNN.lease guards
// checkpoints/<key>/cell-NNNNNN.gob.
func cellPublished(cacheDir, leasePath string) bool {
	key := filepath.Base(filepath.Dir(leasePath))
	cell := strings.TrimSuffix(filepath.Base(leasePath), ".lease") + ".gob"
	_, err := os.Stat(filepath.Join(checkpointRoot(cacheDir), key, cell))
	return err == nil
}

// sweepTempFiles removes dot-prefixed *.tmp files under root (one level
// of subdirectories deep — the layout's maximum), reporting how many
// were swept and how many removals failed.
func sweepTempFiles(root string) (swept, failed int) {
	for _, pattern := range []string{
		filepath.Join(root, ".*.tmp"),
		filepath.Join(root, "*", ".*.tmp"),
	} {
		matches, err := filepath.Glob(pattern)
		if err != nil {
			continue
		}
		for _, path := range matches {
			if err := os.Remove(path); err == nil {
				swept++
			} else if !os.IsNotExist(err) {
				appRunMemo.noteReadFailure(path, fmt.Errorf("fsck: sweeping temp file: %w", err))
				failed++
			}
		}
	}
	return swept, failed
}

// verifyOutcome classifies one fsck'd entry.
type verifyOutcome int

const (
	verifyOK          verifyOutcome = iota // entry verified cleanly
	verifyQuarantined                      // entry was corrupt and is now *.corrupt
	verifyFailed                           // entry is bad but still in place (read or rename failed)
)

// verifyRunEntry re-hashes and fully decodes one run entry, putting a
// failing file in quarantine.
func verifyRunEntry(path string) verifyOutcome {
	data, err := os.ReadFile(path)
	if err != nil {
		appRunMemo.noteReadFailure(path, err)
		return verifyFailed
	}
	var p persistedRun
	if err := openBlob(data, runCacheVersion, &p); err == nil && p.Version == runCacheVersion {
		return verifyOK
	}
	if err := quarantineBlob(path); err != nil {
		appRunMemo.noteReadFailure(path, fmt.Errorf("fsck: quarantining failed entry: %w", err))
		return verifyFailed
	}
	appRunMemo.noteQuarantine(path, fmt.Errorf("fsck: entry failed verification"))
	return verifyQuarantined
}

// verifyEnvelopeFile re-hashes one enveloped file (payload schema not
// interpreted), quarantining on failure.
func verifyEnvelopeFile(path string, version int) verifyOutcome {
	data, err := os.ReadFile(path)
	if err != nil {
		appRunMemo.noteReadFailure(path, err)
		return verifyFailed
	}
	if _, err := openEnvelope(data, version); err == nil {
		return verifyOK
	}
	if err := quarantineBlob(path); err != nil {
		appRunMemo.noteReadFailure(path, fmt.Errorf("fsck: quarantining failed cell: %w", err))
		return verifyFailed
	}
	appRunMemo.noteQuarantine(path, fmt.Errorf("fsck: cell failed verification"))
	return verifyQuarantined
}
