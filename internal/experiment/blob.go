package experiment

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"os"

	"cohmeleon/internal/faultinject"
)

// Durable-file plumbing shared by the run store and the experiment
// checkpoints. Every persisted blob is a gob envelope carrying a format
// version and the sha256 of its payload, so a reader can tell a valid
// entry from a truncated, bit-rotted, or foreign file before decoding
// anything — and the -cache-verify fsck can re-hash every entry without
// knowing its payload type. Writes go through a temp file and an atomic
// rename; the real-world failure modes of that path (create, write,
// rename) are instrumented as failpoints so the crash-safety tests can
// prove no fault leaves a half-written file behind.

// blobEnvelope is the on-disk frame around every persisted payload.
type blobEnvelope struct {
	Version int
	Sum     [sha256.Size]byte // sha256 of Payload
	Payload []byte            // gob-encoded payload value
}

// sealBlob gob-encodes v and frames it in a checksummed envelope.
func sealBlob(version int, v interface{}) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return nil, fmt.Errorf("experiment: encoding blob payload: %w", err)
	}
	env := blobEnvelope{
		Version: version,
		Sum:     sha256.Sum256(payload.Bytes()),
		Payload: payload.Bytes(),
	}
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(&env); err != nil {
		return nil, fmt.Errorf("experiment: encoding blob envelope: %w", err)
	}
	return out.Bytes(), nil
}

// openEnvelope verifies a blob's frame — decodable, right version,
// checksum matches — and returns the payload bytes. Any error means the
// file is corrupt (not merely absent).
func openEnvelope(data []byte, version int) ([]byte, error) {
	var env blobEnvelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
		return nil, fmt.Errorf("experiment: undecodable blob envelope: %w", err)
	}
	if env.Version != version {
		return nil, fmt.Errorf("experiment: blob version %d, want %d", env.Version, version)
	}
	if sha256.Sum256(env.Payload) != env.Sum {
		return nil, fmt.Errorf("experiment: blob checksum mismatch")
	}
	return env.Payload, nil
}

// openBlob verifies the frame and decodes the payload into v.
func openBlob(data []byte, version int, v interface{}) error {
	payload, err := openEnvelope(data, version)
	if err != nil {
		return err
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("experiment: undecodable blob payload: %w", err)
	}
	return nil
}

// writeBlobAtomic publishes data at path via temp file + rename, so
// concurrent processes sharing the directory never read a torn file and
// a crash mid-write leaves only an unreferenced temp file. On any
// failure the temp file is removed and the target is untouched.
func writeBlobAtomic(dir, path string, data []byte, createPt, writePt, renamePt faultinject.Point) error {
	if err := faultinject.Check(createPt); err != nil {
		return err
	}
	// The temp name carries the pid so two processes sharing the
	// directory can never collide on (or clean up) each other's
	// in-flight temp file, on top of CreateTemp's random suffix.
	f, err := os.CreateTemp(dir, fmt.Sprintf(".blob-%d-*.tmp", os.Getpid()))
	if err != nil {
		return err
	}
	if ferr := faultinject.Check(writePt); ferr != nil {
		err = ferr
	} else {
		_, err = f.Write(data)
	}
	if err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if ferr := faultinject.Check(renamePt); ferr != nil {
		err = ferr
	} else {
		err = os.Rename(f.Name(), path)
	}
	if err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}

// Job manifests: the serve layer persists per-job manifests under the
// cache directory in the same checksummed-envelope + atomic-rename
// discipline as every other durable file, through the two exported
// helpers below, so manifest corruption and write failures share the
// store's quarantine and accounting story.

// WriteManifestBlob seals v in a versioned checksummed envelope and
// publishes it atomically at path (inside dir). Failures are counted
// and reported like any other store write failure, then returned so the
// caller can decide whether losing durability matters.
func WriteManifestBlob(dir, path string, version int, v interface{}) error {
	data, err := sealBlob(version, v)
	if err == nil {
		err = writeBlobAtomic(dir, path, data,
			faultinject.ManifestCreate, faultinject.ManifestWrite, faultinject.ManifestRename)
	}
	if err != nil {
		appRunMemo.noteWriteFailure("job manifest", err)
		return err
	}
	return nil
}

// ReadManifestBlob reads, verifies, and decodes a manifest into v.
// Absent manifests report (false, nil); corrupt ones are quarantined
// (renamed *.corrupt) and reported absent, exactly like a corrupt run
// entry; unreadable ones return the read error.
func ReadManifestBlob(path string, version int, v interface{}) (bool, error) {
	var data []byte
	err := faultinject.Check(faultinject.ManifestOpen)
	if err == nil {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		appRunMemo.noteReadFailure(path, err)
		return false, err
	}
	if err := openBlob(data, version, v); err != nil {
		if qerr := quarantineBlob(path); qerr == nil {
			appRunMemo.noteQuarantine(path, err)
		} else {
			appRunMemo.noteReadFailure(path, err)
		}
		return false, nil
	}
	return true, nil
}

// quarantinePath names a corrupt entry's resting place.
func quarantinePath(path string) string { return path + ".corrupt" }

// quarantineBlob moves a corrupt entry aside so it is never re-read (a
// later load sees the key as absent and regenerates it) while the bytes
// stay available for diagnosis. Exactly-once follows from the rename:
// once moved, the entry no longer exists to be quarantined again.
func quarantineBlob(path string) error {
	return os.Rename(path, quarantinePath(path))
}
