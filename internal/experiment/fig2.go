package experiment

import (
	"fmt"

	"cohmeleon/internal/soc"
	"cohmeleon/internal/stats"
)

// Fig2Point is one bar pair of Figure 2: an accelerator × workload size
// × coherence mode, normalized against the non-coherent-DMA result for
// the same accelerator and size.
type Fig2Point struct {
	Acc      string
	Size     string
	Mode     soc.Mode
	NormExec float64
	NormMem  float64
	RawExec  float64
	RawMem   float64
}

// Fig2Result reproduces Figure 2: each of the catalog accelerators
// running in isolation with three workload sizes under all four modes.
type Fig2Result struct {
	Points []Fig2Point
}

// fig2Sizes are the paper's Small/Medium/Large isolation footprints.
var fig2Sizes = []struct {
	Name  string
	Bytes int64
}{
	{"Small", 16 << 10},
	{"Medium", 256 << 10},
	{"Large", 4 << 20},
}

// Figure2 runs the isolation study on the motivation SoC. Every
// (accelerator, size, mode) measurement simulates one accelerator alone
// on a fresh SoC; the full cross product fans out on the worker pool and
// the table is assembled from the indexed results in paper order.
func Figure2(opt Options) (*Fig2Result, error) {
	cfg := withProtocol(soc.MotivationIsolation(), opt)
	nS, nM := len(fig2Sizes), int(soc.NumModes)
	ms := make([]isolationMeasurement, len(cfg.Accs)*nS*nM)
	if err := forEachOpt(opt, len(ms), func(i int) error {
		inst := cfg.Accs[i/(nS*nM)]
		size := fig2Sizes[i/nM%nS]
		mode := soc.AllModes[i%nM]
		var err error
		ms[i], err = isolatedInvocation(cfg, inst.InstName, size.Bytes, mode, opt.Runs, opt.Seed)
		return err
	}); err != nil {
		return nil, err
	}

	out := &Fig2Result{}
	for ai, inst := range cfg.Accs {
		for si, size := range fig2Sizes {
			var exec, mem [soc.NumModes]float64
			for _, mode := range soc.AllModes {
				m := ms[(ai*nS+si)*nM+int(mode)]
				exec[mode] = m.ExecCycles
				mem[mode] = m.OffChip
			}
			for _, mode := range soc.AllModes {
				out.Points = append(out.Points, Fig2Point{
					Acc:      inst.Spec.Name,
					Size:     size.Name,
					Mode:     mode,
					NormExec: stats.Ratio(exec[mode], exec[soc.NonCohDMA]),
					NormMem:  stats.Ratio(mem[mode], mem[soc.NonCohDMA]),
					RawExec:  exec[mode],
					RawMem:   mem[mode],
				})
			}
		}
	}
	return out, nil
}

// Best returns the mode with the lowest normalized execution time for
// an accelerator and size.
func (r *Fig2Result) Best(accName, size string) soc.Mode {
	best := soc.NonCohDMA
	bestVal := -1.0
	for _, p := range r.Points {
		if p.Acc == accName && p.Size == size {
			if bestVal < 0 || p.NormExec < bestVal {
				bestVal = p.NormExec
				best = p.Mode
			}
		}
	}
	return best
}

// Render formats the figure as a table: one row per accelerator × size,
// exec and mem columns per mode.
func (r *Fig2Result) Render() string {
	t := &Table{
		Title: "Figure 2 — accelerators in isolation (normalized to non-coh-dma; exec | off-chip)",
		Header: []string{"accelerator", "size",
			"non-coh", "llc-coh", "coh-dma", "full-coh", "best"},
	}
	type key struct{ acc, size string }
	cells := make(map[key][soc.NumModes]Fig2Point)
	var order []key
	for _, p := range r.Points {
		k := key{p.Acc, p.Size}
		row, seen := cells[k]
		if !seen {
			order = append(order, k)
		}
		row[p.Mode] = p
		cells[k] = row
	}
	for _, k := range order {
		row := cells[k]
		fmtCell := func(m soc.Mode) string {
			return fmt.Sprintf("%s | %s", f2(row[m].NormExec), f2(row[m].NormMem))
		}
		t.AddRow(k.acc, k.size,
			fmtCell(soc.NonCohDMA), fmtCell(soc.LLCCohDMA),
			fmtCell(soc.CohDMA), fmtCell(soc.FullyCoh),
			r.Best(k.acc, k.size).String())
	}
	t.AddNote("paper: best mode varies per accelerator and per size; cache modes show zero off-chip for warm Small/Medium data")
	return t.Render()
}
