package experiment

import (
	"fmt"

	"cohmeleon/internal/core"
	"cohmeleon/internal/policy"
	"cohmeleon/internal/soc"
	"cohmeleon/internal/workload"
)

// Fig8Point is one sample of Figure 8: test performance after a given
// number of training iterations.
type Fig8Point struct {
	Schedule  int // total iterations of the decay schedule
	Iteration int // 0 = untrained (equivalent to Random)
	NormExec  float64
	NormMem   float64
}

// Fig8Result reproduces Figure 8: performance over training iterations
// for the 10/30/50-iteration decay schedules, alternating one training
// iteration with a frozen test on a different application instance.
type Fig8Result struct {
	Points []Fig8Point
}

// Figure8 runs the training-time study on SoC0.
func Figure8(opt Options) (*Fig8Result, error) {
	cfg := withProtocol(soc.SoC0(soc.TrafficMixed, opt.Seed), opt)
	train, err := workload.Generate(cfg, workload.GenConfig{MinInvocations: opt.MinInvocations}, opt.Seed+1000)
	if err != nil {
		return nil, err
	}
	test, err := workload.Generate(cfg, workload.GenConfig{MinInvocations: opt.MinInvocations}, opt.Seed+2000)
	if err != nil {
		return nil, err
	}

	ctx := opt.ctx()
	baseline, err := runApp(ctx, cfg, policy.NewFixed(soc.NonCohDMA), test, opt.Seed+3)
	if err != nil {
		return nil, err
	}
	// Each decay schedule trains its own agent and must alternate train
	// and frozen-test sequentially (iteration i+1 learns from i), but the
	// schedules are independent of each other and fan out; their point
	// series are concatenated in option order afterwards.
	series := make([][]Fig8Point, len(opt.Fig8Schedules))
	if err := forEachOpt(opt, len(opt.Fig8Schedules), func(si int) error {
		schedule := opt.Fig8Schedules[si]
		agentCfg := agentConfig(opt)
		agentCfg.DecayIterations = schedule
		agent, err := core.New(agentCfg)
		if err != nil {
			return err
		}

		record := func(iter int) error {
			res, err := testPolicy(ctx, cfg, agent, test, opt.Seed+3)
			if err != nil {
				return err
			}
			exec, mem := geoNormalized(res, baseline)
			series[si] = append(series[si], Fig8Point{
				Schedule: schedule, Iteration: iter, NormExec: exec, NormMem: mem,
			})
			return nil
		}
		// Iteration 0: the untrained model (equivalent to Random).
		if err := record(0); err != nil {
			return err
		}
		for i := 1; i <= schedule; i++ {
			if err := trainCohmeleon(ctx, cfg, agent, train, 1, opt.Seed+uint64(i)); err != nil {
				return err
			}
			if err := record(i); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	out := &Fig8Result{}
	for _, s := range series {
		out.Points = append(out.Points, s...)
	}
	return out, nil
}

// Final returns the last point of a schedule.
func (r *Fig8Result) Final(schedule int) (Fig8Point, bool) {
	var out Fig8Point
	found := false
	for _, p := range r.Points {
		if p.Schedule == schedule && (!found || p.Iteration > out.Iteration) {
			out = p
			found = true
		}
	}
	return out, found
}

// At returns the point for a schedule and iteration.
func (r *Fig8Result) At(schedule, iter int) (Fig8Point, bool) {
	for _, p := range r.Points {
		if p.Schedule == schedule && p.Iteration == iter {
			return p, true
		}
	}
	return Fig8Point{}, false
}

// Render formats one series per schedule.
func (r *Fig8Result) Render() string {
	mt := &MultiTable{}
	schedules := map[int]bool{}
	var order []int
	for _, p := range r.Points {
		if !schedules[p.Schedule] {
			schedules[p.Schedule] = true
			order = append(order, p.Schedule)
		}
	}
	for _, s := range order {
		t := &Table{
			Title:  fmt.Sprintf("Figure 8 — performance over training (%d-iteration schedule, normalized to fixed-non-coh-dma)", s),
			Header: []string{"iteration", "norm exec", "norm off-chip"},
		}
		for _, p := range r.Points {
			if p.Schedule == s {
				t.AddRow(fmt.Sprintf("%d", p.Iteration), f2(p.NormExec), f2(p.NormMem))
			}
		}
		mt.Tables = append(mt.Tables, t)
	}
	return mt.Render()
}
