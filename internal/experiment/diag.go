package experiment

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Structured diagnostics. The store, checkpoint, and retry layers used
// to write their one-shot warnings straight to stderr and keep their
// counters in ad-hoc globals; both now flow through an injectable sink
// so a long-running server can expose them via /statsz while the CLI's
// stderr output stays byte-for-byte what it always was (the default
// sink reproduces the exact text, including the once-per-process
// gating). Counting is not the sink's job — counters are maintained by
// the emitting layers and snapshotted by Snapshot — so a custom sink
// can drop events without losing accounting.

// DiagKind classifies a diagnostic event.
type DiagKind int

const (
	// DiagWriteFailure: a store, checkpoint, or manifest write failed;
	// the computed value survives in memory, only persistence was lost.
	DiagWriteFailure DiagKind = iota
	// DiagQuarantine: a corrupt entry was renamed *.corrupt so it is
	// regenerated instead of re-failing forever.
	DiagQuarantine
	// DiagReadFailure: an entry exists but could not be read (I/O,
	// permissions); it was treated as a miss.
	DiagReadFailure
	// DiagCellSaved: a checkpoint cell was persisted.
	DiagCellSaved
	// DiagCellReplayed: a checkpoint cell was served from a previous
	// run's checkpoint.
	DiagCellReplayed
	// DiagCellRetry: a transient cell failure is being retried.
	DiagCellRetry
)

// DiagEvent is one structured store/checkpoint/retry diagnostic.
type DiagEvent struct {
	Kind DiagKind
	// What names the failing subsystem for write failures ("run store",
	// "checkpoint", "job manifest").
	What string
	// Path is the file involved, when one is known. For quarantines it
	// is the entry's original path (the quarantined copy is Path +
	// ".corrupt").
	Path string
	Err  error
}

// DiagSink receives every diagnostic event, concurrently.
type DiagSink interface {
	Diag(DiagEvent)
}

// stderrDiagSink is the default sink: today's CLI stderr diagnostics,
// byte-for-byte, warned once per process per kind (the first failure
// names its cause; repeats would only scroll). Cell-traffic events are
// counter-only, exactly as before.
type stderrDiagSink struct {
	w                                          io.Writer
	warnedWrite, warnedCorrupt, warnedReadFail atomic.Bool
}

func (s *stderrDiagSink) Diag(e DiagEvent) {
	switch e.Kind {
	case DiagWriteFailure:
		if s.warnedWrite.CompareAndSwap(false, true) {
			fmt.Fprintf(s.w, "cohmeleon: %s write failed (results still computed, just not persisted; further failures counted silently): %v\n", e.What, e.Err)
		}
	case DiagQuarantine:
		if s.warnedCorrupt.CompareAndSwap(false, true) {
			fmt.Fprintf(s.w, "cohmeleon: corrupt cache entry quarantined as %s (%v); it will be regenerated\n", quarantinePath(e.Path), e.Err)
		}
	case DiagReadFailure:
		if s.warnedReadFail.CompareAndSwap(false, true) {
			fmt.Fprintf(s.w, "cohmeleon: cache entry %s unreadable, treating as a miss: %v\n", e.Path, e.Err)
		}
	}
}

// reset re-arms the one-shot warnings (ResetRunCache's contract).
func (s *stderrDiagSink) reset() {
	s.warnedWrite.Store(false)
	s.warnedCorrupt.Store(false)
	s.warnedReadFail.Store(false)
}

var (
	defaultDiagSink = &stderrDiagSink{w: os.Stderr}
	diagMu          sync.RWMutex
	activeDiagSink  DiagSink = defaultDiagSink
)

// SetDiagSink installs a process-wide diagnostics sink and returns the
// previous one; nil restores the default stderr sink. The sink must be
// safe for concurrent use.
func SetDiagSink(s DiagSink) DiagSink {
	if s == nil {
		s = defaultDiagSink
	}
	diagMu.Lock()
	defer diagMu.Unlock()
	prev := activeDiagSink
	activeDiagSink = s
	return prev
}

// emitDiag delivers one event to the active sink.
func emitDiag(e DiagEvent) {
	diagMu.RLock()
	s := activeDiagSink
	diagMu.RUnlock()
	s.Diag(e)
}

// StatsSnapshot bundles every robustness counter — run store,
// checkpoint, retry, two-fidelity, lease — for structured consumers
// (/statsz).
type StatsSnapshot struct {
	RunCache   RunCacheStats
	Checkpoint CheckpointStats
	Retry      RetryStats
	Fidelity   FidelityStats
	Lease      LeaseStats
}

// Snapshot returns the current counters.
func Snapshot() StatsSnapshot {
	return StatsSnapshot{
		RunCache:   GetRunCacheStats(),
		Checkpoint: GetCheckpointStats(),
		Retry:      GetRetryStats(),
		Fidelity:   GetFidelityStats(),
		Lease:      GetLeaseStats(),
	}
}

// JobCounters accumulates the share of run-store and retry traffic
// attributable to one experiment run, attached via WithJobCounters. The
// serve layer uses it to report per-job dedup (memo/disk hits) without
// disturbing the process-wide counters, which are always incremented
// too.
type JobCounters struct {
	MemoHits    atomic.Int64
	DiskHits    atomic.Int64
	Misses      atomic.Int64
	CellRetries atomic.Int64
}

// JobCounterView is a plain snapshot of JobCounters.
type JobCounterView struct {
	MemoHits    int64 `json:"memo_hits"`
	DiskHits    int64 `json:"disk_hits"`
	Misses      int64 `json:"misses"`
	CellRetries int64 `json:"cell_retries"`
}

// View snapshots the counters.
func (c *JobCounters) View() JobCounterView {
	return JobCounterView{
		MemoHits:    c.MemoHits.Load(),
		DiskHits:    c.DiskHits.Load(),
		Misses:      c.Misses.Load(),
		CellRetries: c.CellRetries.Load(),
	}
}

type jobCountersKey struct{}

// WithJobCounters attaches per-run counters to an experiment context.
func WithJobCounters(ctx context.Context, c *JobCounters) context.Context {
	return context.WithValue(ctx, jobCountersKey{}, c)
}

// jobCountersFrom returns the attached counters, or nil.
func jobCountersFrom(ctx context.Context) *JobCounters {
	c, _ := ctx.Value(jobCountersKey{}).(*JobCounters)
	return c
}
