package experiment

import (
	"path/filepath"
	"strings"
	"testing"

	"cohmeleon/internal/core"
)

// sweepOptions returns the smallest useful sweep setup.
func sweepOptions() Options {
	opt := Tiny()
	opt.SweepScenarios = 2
	opt.MinInvocations = 15
	return opt
}

// TestSweepDeterministicAcrossWorkers: the sweep report must be
// byte-identical whether scenarios run sequentially or on eight
// workers — the property the whole harness guarantees.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) string {
		opt := sweepOptions()
		opt.Workers = workers
		rep, err := Sweep(opt)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Render()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("sweep report differs between workers=1 and workers=8:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "cohmeleon") || !strings.Contains(seq, "scenario-000") {
		t.Fatalf("report incomplete:\n%s", seq)
	}
}

// TestSweepQTableTransfer drives the full train-on-A/test-on-B
// workflow: a sweep on seed A saves its merged table; a sweep on a
// disjoint seed B loads it and reports the frozen transfer row.
func TestSweepQTableTransfer(t *testing.T) {
	if testing.Short() {
		t.Skip("two full sweeps; skipped in -short (the race CI step) like the double-headline run")
	}
	path := filepath.Join(t.TempDir(), "trained.qtable")

	trainOpt := sweepOptions()
	trainOpt.Seed = 11
	trainOpt.QTableSave = path
	trainRep, err := Sweep(trainOpt)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := trainRep.Row("cohmeleon-transfer"); ok {
		t.Fatal("training sweep should not report a transfer row")
	}
	if !strings.Contains(trainRep.Render(), "saved to") {
		t.Fatal("training sweep should note the saved table")
	}

	saved, err := core.LoadTableFile(path)
	if err != nil {
		t.Fatalf("saved table unreadable: %v", err)
	}
	if saved.TotalVisits() == 0 {
		t.Fatal("saved table carries no training")
	}

	evalOpt := sweepOptions()
	evalOpt.Seed = 22 // disjoint held-out scenario set
	evalOpt.QTableLoad = path
	evalRep, err := Sweep(evalOpt)
	if err != nil {
		t.Fatal(err)
	}
	row, ok := evalRep.Row("cohmeleon-transfer")
	if !ok {
		t.Fatal("evaluation sweep missing the transfer row")
	}
	if row.NormExec <= 0 || row.NormMem < 0 {
		t.Fatalf("nonsensical transfer row: %+v", row)
	}
}

// TestSweepRejectsCorruptTable: a corrupt table file must fail the
// sweep up front, not mid-grid.
func TestSweepRejectsCorruptTable(t *testing.T) {
	opt := sweepOptions()
	opt.QTableLoad = filepath.Join(t.TempDir(), "absent.qtable")
	if _, err := Sweep(opt); err == nil {
		t.Fatal("missing Q-table file accepted")
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := Tiny().Validate(); err != nil {
		t.Fatalf("Tiny invalid: %v", err)
	}
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"negative-workers", func(o *Options) { o.Workers = -1 }},
		{"zero-runs", func(o *Options) { o.Runs = 0 }},
		{"zero-train-iterations", func(o *Options) { o.TrainIterations = 0 }},
		{"zero-min-invocations", func(o *Options) { o.MinInvocations = 0 }},
		{"zero-sweep-scenarios", func(o *Options) { o.SweepScenarios = 0 }},
		{"zero-learner-scenarios", func(o *Options) { o.LearnerScenarios = 0 }},
		{"unknown-learner", func(o *Options) { o.Learner = "sarsa" }},
		{"unknown-schedule", func(o *Options) { o.Schedule = "cosine" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := Tiny()
			tc.mut(&opt)
			if err := opt.Validate(); err == nil {
				t.Fatal("invalid options accepted")
			}
		})
	}
}

func TestLookupUnknownListsValidIDs(t *testing.T) {
	_, err := Lookup("bogus")
	if err == nil {
		t.Fatal("unknown id accepted")
	}
	for _, id := range []string{"sweep", "fig9", "table4"} {
		if !strings.Contains(err.Error(), id) {
			t.Fatalf("error %q does not list valid id %q", err, id)
		}
	}
}

func TestSweepRegistered(t *testing.T) {
	e, err := Lookup("sweep")
	if err != nil {
		t.Fatal(err)
	}
	opt := sweepOptions()
	opt.SweepScenarios = 2
	rep, err := e.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Render(), "randomized scenarios") {
		t.Fatal("sweep render incomplete")
	}
}
