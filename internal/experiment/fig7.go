package experiment

import (
	"fmt"

	"cohmeleon/internal/core"
	"cohmeleon/internal/esp"
	"cohmeleon/internal/soc"
	"cohmeleon/internal/workload"
)

// Fig7Row is one stacked bar of Figure 7: the selection frequency of
// each coherence mode for a policy, overall or within one workload-size
// class.
type Fig7Row struct {
	Policy   string
	Size     string // "all", "S", "M", "L", "XL"
	Percent  [soc.NumModes]float64
	Decision [soc.NumModes]int64
}

// Fig7Result reproduces Figure 7: the breakdown of coherence decisions
// made by Cohmeleon and the manually-tuned algorithm, in total and per
// workload-size class.
type Fig7Result struct {
	Rows []Fig7Row
}

// Figure7 trains Cohmeleon, then runs both policies on the test
// application and tallies their decisions from the invocation results.
func Figure7(opt Options) (*Fig7Result, error) {
	cfg := withProtocol(soc.SoC0(soc.TrafficMixed, opt.Seed), opt)
	test, err := workload.Generate(cfg, workload.GenConfig{MinInvocations: opt.MinInvocations}, opt.Seed+2000)
	if err != nil {
		return nil, err
	}
	policies, err := policySet(cfg, opt, core.DefaultWeights())
	if err != nil {
		return nil, err
	}
	manual := policies[6]
	agent := policies[7]

	// The two test trials (trained agent, manual) are independent and
	// run concurrently; rows are tallied in paper order afterwards.
	pols := []esp.Policy{agent, manual}
	results := make([]*workload.AppResult, len(pols))
	ctx := opt.ctx()
	if err := forEachOpt(opt, len(pols), func(i int) error {
		res, err := testPolicy(ctx, cfg, pols[i], test, opt.Seed+3)
		results[i] = res
		return err
	}); err != nil {
		return nil, err
	}

	out := &Fig7Result{}
	for i, pol := range pols {
		res := results[i]
		counts := map[string][soc.NumModes]int64{}
		for _, inv := range res.AllInvocations() {
			for _, key := range []string{"all", sizeClassOf(inv, cfg).String()} {
				c := counts[key]
				c[inv.Mode]++
				counts[key] = c
			}
		}
		for _, size := range []string{"all", "S", "M", "L", "XL"} {
			c, ok := counts[size]
			if !ok {
				continue
			}
			row := Fig7Row{Policy: pol.Name(), Size: size, Decision: c}
			var total int64
			for _, n := range c {
				total += n
			}
			if total > 0 {
				for m := range c {
					row.Percent[m] = 100 * float64(c[m]) / float64(total)
				}
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Share returns a policy's selection share of a mode for a size key.
func (r *Fig7Result) Share(pol, size string, mode soc.Mode) float64 {
	for _, row := range r.Rows {
		if row.Policy == pol && row.Size == size {
			return row.Percent[mode]
		}
	}
	return 0
}

// Render formats the breakdown.
func (r *Fig7Result) Render() string {
	t := &Table{
		Title:  "Figure 7 — breakdown of coherence decisions (% of invocations)",
		Header: []string{"policy (size)", "non-coh", "llc-coh", "coh-dma", "full-coh"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%s (%s)", row.Policy, row.Size),
			f1(row.Percent[soc.NonCohDMA]), f1(row.Percent[soc.LLCCohDMA]),
			f1(row.Percent[soc.CohDMA]), f1(row.Percent[soc.FullyCoh]))
	}
	t.AddNote("paper: both rely heavily on coh-dma and non-coh-dma; cohmeleon shifts S/M/L decisions away from non-coh toward the LLC modes")
	return t.Render()
}
