package experiment

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Pinned held-out accuracy floor for the calibrated cost model on the
// test seed: regressions in the feature set, the fit, or the calibration
// grid that blow past these bounds fail here (and in the CI screening
// smoke, which runs this test), not silently in a wide escalation band.
const (
	pinnedMAPE    = 0.60 // per-invocation mean relative error
	pinnedAggMAPE = 0.45 // per-run aggregate mean relative error
)

// fidelityTestSetup clears the process-global model memo and counters
// around a test (they are shared exactly like the run cache).
func fidelityTestSetup(t *testing.T) {
	t.Helper()
	memoTestSetup(t)
}

// screeningSweepOptions is sweepOptions at screening fidelity.
func screeningSweepOptions() Options {
	opt := sweepOptions()
	opt.Fidelity = FidelityScreening
	return opt
}

// TestScreeningSweepDeterministicAcrossWorkers: a screened sweep report
// must be byte-identical whether calibration and screening run
// sequentially or on eight workers — the same property the
// cycle-accurate harness guarantees, extended to the analytical path.
func TestScreeningSweepDeterministicAcrossWorkers(t *testing.T) {
	fidelityTestSetup(t)
	render := func(workers int) string {
		ResetRunCache() // force a fresh calibration fit under this worker count
		opt := screeningSweepOptions()
		opt.Workers = workers
		rep, err := Sweep(opt)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Render()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("screened sweep report differs between workers=1 and workers=8:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "fidelity=screening") {
		t.Fatalf("screened report missing the fidelity note:\n%s", seq)
	}
}

// TestScreeningLearnersDeterministicAcrossWorkers: the same property
// for the learner grid's screening path.
func TestScreeningLearnersDeterministicAcrossWorkers(t *testing.T) {
	fidelityTestSetup(t)
	render := func(workers int) string {
		ResetRunCache()
		opt := learnerTestOptions()
		opt.Fidelity = FidelityScreening
		opt.Workers = workers
		res, err := Learners(opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.Render()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("screened learners report differs between workers=1 and workers=8:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "fidelity=screening") {
		t.Fatalf("screened report missing the fidelity note:\n%s", seq)
	}
}

// TestCalibrationRefitBitIdentical: two independent calibrations from
// the same options must produce bit-identical coefficients — and stay
// within the pinned held-out accuracy floor.
func TestCalibrationRefitBitIdentical(t *testing.T) {
	fidelityTestSetup(t)
	opt := Tiny()
	m1, err := calibratedModel(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	ResetRunCache() // drop the model memo and the memoized calibration runs
	m2, err := calibratedModel(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if m1.ExecCoef != m2.ExecCoef || m1.MemCoef != m2.MemCoef {
		t.Fatal("refit from scratch changed coefficients")
	}
	if m1.Err != m2.Err {
		t.Fatalf("refit changed error bounds: %+v vs %+v", m1.Err, m2.Err)
	}
	if st := GetFidelityStats(); st.ModelFits != 1 {
		t.Fatalf("second calibration performed %d fits, want exactly 1", st.ModelFits)
	}
	if m1.Err.MAPE > pinnedMAPE {
		t.Fatalf("held-out MAPE %.3f above the pinned %.2f floor", m1.Err.MAPE, pinnedMAPE)
	}
	if m1.Err.AggMAPE > pinnedAggMAPE {
		t.Fatalf("held-out aggregate MAPE %.3f above the pinned %.2f floor", m1.Err.AggMAPE, pinnedAggMAPE)
	}
}

// TestModelDiskCacheAndQuarantine: a fitted model persists under
// -cache-dir, serves the next process from disk bit-exactly, and a
// corrupted file quarantines and refits exactly once — the run store's
// self-healing contract applied to coefficients.
func TestModelDiskCacheAndQuarantine(t *testing.T) {
	fidelityTestSetup(t)
	dir := t.TempDir()
	if err := SetRunCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	opt := Tiny()
	first, err := calibratedModel(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "costmodel-v*.gob"))
	if err != nil || len(files) != 1 {
		t.Fatalf("persisted %v (err %v), want exactly one model file", files, err)
	}

	// Fresh process: the model must come from disk, not a refit.
	ResetRunCache()
	if err := SetRunCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	again, err := calibratedModel(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if again.ExecCoef != first.ExecCoef || again.MemCoef != first.MemCoef {
		t.Fatal("disk-loaded model differs from the fitted one")
	}
	if st := GetFidelityStats(); st.ModelDiskHits != 1 || st.ModelFits != 0 {
		t.Fatalf("disk load counted %d disk hits, %d fits; want 1 and 0", st.ModelDiskHits, st.ModelFits)
	}

	// Corrupt the file: the next load must quarantine it, refit to the
	// same coefficients, and re-persist.
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	ResetRunCache()
	if err := SetRunCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	healed, err := calibratedModel(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if healed.ExecCoef != first.ExecCoef {
		t.Fatal("post-quarantine refit differs from the original fit")
	}
	if st := GetFidelityStats(); st.ModelDiskHits != 0 || st.ModelFits != 1 {
		t.Fatalf("corrupt load counted %d disk hits, %d fits; want 0 and 1", st.ModelDiskHits, st.ModelFits)
	}
	if _, err := os.Stat(files[0] + ".corrupt"); err != nil {
		t.Fatalf("corrupt model file not quarantined: %v", err)
	}
	if _, err := os.Stat(files[0]); err != nil {
		t.Fatalf("refit model not re-persisted: %v", err)
	}
}

// sweepWinner returns the policy with the lowest aggregate normalized
// execution time.
func sweepWinner(rows []SweepRow) string {
	best := rows[0]
	for _, r := range rows[1:] {
		if r.NormExec < best.NormExec {
			best = r
		}
	}
	return best.Policy
}

// TestAutoSweepMatchesFullWinners is the auto-mode acceptance pin: on
// the pinned test grid, auto fidelity must report the same per-policy
// winner as full fidelity — escalation has to catch every cell where
// the screened ordering cannot be trusted.
func TestAutoSweepMatchesFullWinners(t *testing.T) {
	fidelityTestSetup(t)
	full, err := Sweep(sweepOptions())
	if err != nil {
		t.Fatal(err)
	}
	autoOpt := sweepOptions()
	autoOpt.Fidelity = FidelityAuto
	auto, err := Sweep(autoOpt)
	if err != nil {
		t.Fatal(err)
	}
	if fw, aw := sweepWinner(full.Rows), sweepWinner(auto.Rows); fw != aw {
		t.Fatalf("auto fidelity winner %q differs from full fidelity winner %q", aw, fw)
	}
	if len(full.Notes) != 0 {
		t.Fatalf("full-fidelity report carries fidelity notes: %v", full.Notes)
	}
	if !strings.Contains(auto.Render(), "fidelity=auto") {
		t.Fatal("auto report missing the fidelity note")
	}
}

// TestFidelityOptionsValidate: unknown modes and screened Q-table
// exports are rejected up front, with the valid set named.
func TestFidelityOptionsValidate(t *testing.T) {
	opt := Tiny()
	opt.Fidelity = "approximate"
	err := opt.Validate()
	if err == nil {
		t.Fatal("unknown fidelity accepted")
	}
	for _, want := range []string{FidelityFull, FidelityScreening, FidelityAuto} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not list valid mode %q", err, want)
		}
	}
	opt = Tiny()
	opt.Fidelity = FidelityScreening
	opt.QTableSave = "trained.qtable"
	if err := opt.Validate(); err == nil {
		t.Fatal("Q-table export under screening fidelity accepted")
	}
	opt.QTableSave = ""
	if err := opt.Validate(); err != nil {
		t.Fatalf("screening fidelity alone rejected: %v", err)
	}
}

// TestFidelityStatsSurface: a screened sweep must surface its traffic
// in the diagnostics snapshot (/statsz serves exactly this struct).
func TestFidelityStatsSurface(t *testing.T) {
	fidelityTestSetup(t)
	if _, err := Sweep(screeningSweepOptions()); err != nil {
		t.Fatal(err)
	}
	st := Snapshot().Fidelity
	if st.ModelFits != 1 {
		t.Fatalf("snapshot counts %d model fits, want 1", st.ModelFits)
	}
	if st.ScreenedCells != 2 {
		t.Fatalf("snapshot counts %d screened cells, want 2", st.ScreenedCells)
	}
	if st.EscalatedCells != 0 {
		t.Fatalf("screening mode escalated %d cells, want 0", st.EscalatedCells)
	}
}
