package experiment

import (
	"context"
	"errors"
	"testing"

	"cohmeleon/internal/faultinject"
)

// resumeTestSetup resets cache and checkpoint state around a test and
// arms cleanup for the process-global fault script.
func resumeTestSetup(t *testing.T) {
	t.Helper()
	memoTestSetup(t)
	ResetCheckpointStats()
	t.Cleanup(func() {
		faultinject.Disable()
		ResetCheckpointStats()
	})
}

// sweepResumeOptions is the tiny sweep the crash-safety properties are
// checked on: small enough to interrupt at every cell, large enough
// that an interrupt always leaves work behind.
func sweepResumeOptions() Options {
	opt := Tiny()
	opt.SweepScenarios = 3
	return opt
}

// TestSweepInterruptAtEveryCellThenResumeIsByteIdentical is the
// correctness pin for checkpoint/resume: a sweep cancelled at each
// possible cell index, then resumed from its checkpoints, must render
// the exact report of an uninterrupted run — and leave a store that
// fscks clean.
func TestSweepInterruptAtEveryCellThenResumeIsByteIdentical(t *testing.T) {
	resumeTestSetup(t)
	opt := sweepResumeOptions()
	ref, err := Sweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	refText := ref.Render()

	for k := 0; k < opt.SweepScenarios; k++ {
		dir := t.TempDir()
		ResetRunCache()
		ResetCheckpointStats()
		if err := SetRunCacheDir(dir); err != nil {
			t.Fatal(err)
		}

		// Cancel exactly when cell k dispatches. Workers that already
		// hold other cells finish them (and checkpoint); cell k itself
		// aborts at its first app-run boundary.
		ctx, cancel := context.WithCancel(context.Background())
		faultinject.Enable(faultinject.NewScript(faultinject.Rule{
			Point:  faultinject.Trial,
			N:      k,
			Action: faultinject.Action{Call: cancel},
		}))
		iopt := opt
		iopt.Ctx = ctx
		_, err := Sweep(iopt)
		faultinject.Disable()
		cancel()
		if err == nil {
			t.Fatalf("cell %d: interrupted sweep reported success", k)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cell %d: interrupted sweep failed with %v, want a context.Canceled chain", k, err)
		}

		ropt := opt
		ropt.Resume = true
		res, err := Sweep(ropt)
		if err != nil {
			t.Fatalf("cell %d: resume: %v", k, err)
		}
		if got := res.Render(); got != refText {
			t.Errorf("cell %d: resumed report differs from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", k, refText, got)
		}
		v, err := VerifyRunCache(dir)
		if err != nil {
			t.Fatalf("cell %d: fsck: %v", k, err)
		}
		if !v.Clean() {
			t.Errorf("cell %d: store dirty after interrupt+resume: %s", k, v)
		}
	}
}

// TestSweepResumeReplaysInsteadOfRecomputing pins that resume actually
// serves checkpointed cells rather than quietly re-simulating them.
func TestSweepResumeReplaysInsteadOfRecomputing(t *testing.T) {
	resumeTestSetup(t)
	opt := sweepResumeOptions()
	if err := SetRunCacheDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if _, err := Sweep(opt); err != nil {
		t.Fatal(err)
	}
	if st := GetCheckpointStats(); st.Saved != int64(opt.SweepScenarios) {
		t.Fatalf("first run saved %d cells, want %d", st.Saved, opt.SweepScenarios)
	}
	ResetCheckpointStats()
	ropt := opt
	ropt.Resume = true
	if _, err := Sweep(ropt); err != nil {
		t.Fatal(err)
	}
	st := GetCheckpointStats()
	if st.Replayed != int64(opt.SweepScenarios) || st.Saved != 0 {
		t.Fatalf("resume replayed %d and saved %d cells, want %d and 0", st.Replayed, st.Saved, opt.SweepScenarios)
	}
}

// TestLearnersInterruptResumeIsByteIdentical runs the same pin on the
// learners grid, whose cells embed no learner state but cover the
// two-stage (prep, grid) shape.
func TestLearnersInterruptResumeIsByteIdentical(t *testing.T) {
	resumeTestSetup(t)
	opt := Tiny()
	opt.LearnerScenarios = 2
	ref, err := Learners(opt)
	if err != nil {
		t.Fatal(err)
	}
	refText := ref.Render()

	dir := t.TempDir()
	ResetRunCache()
	if err := SetRunCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	// Cancel mid-grid. The grid is the second forEach, but Trial indices
	// are not namespaced per loop: index 1 fires in the 2-cell prep stage
	// first, so the interrupt lands there — which is fine, the property
	// must hold wherever the cut falls.
	ctx, cancel := context.WithCancel(context.Background())
	faultinject.Enable(faultinject.NewScript(faultinject.Rule{
		Point:  faultinject.Trial,
		N:      1,
		Action: faultinject.Action{Call: cancel},
	}))
	iopt := opt
	iopt.Ctx = ctx
	_, err = Learners(iopt)
	faultinject.Disable()
	cancel()
	if err == nil {
		t.Fatal("interrupted learners run reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted learners run failed with %v, want a context.Canceled chain", err)
	}

	ropt := opt
	ropt.Resume = true
	res, err := Learners(ropt)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got := res.Render(); got != refText {
		t.Errorf("resumed learners report differs from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", refText, got)
	}
}

// TestInjectedStoreFaultsNeverChangeReports is the degraded-store pin:
// a fault at any persistence point downgrades the store (recompute, skip
// persisting, quarantine) but never changes a report or fails a run —
// and the store the faults left behind still resumes identically.
func TestInjectedStoreFaultsNeverChangeReports(t *testing.T) {
	resumeTestSetup(t)
	opt := sweepResumeOptions()
	ref, err := Sweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	refText := ref.Render()

	points := []faultinject.Point{
		faultinject.StoreOpen, faultinject.StoreCreate,
		faultinject.StoreWrite, faultinject.StoreRename,
		faultinject.CkptOpen, faultinject.CkptCreate,
		faultinject.CkptWrite, faultinject.CkptRename,
	}
	scripts := map[string]*faultinject.Script{
		"random-campaign": faultinject.RandomFaults(99, points, 4, 12),
	}
	for _, p := range points {
		scripts[string(p)] = faultinject.NewScript(faultinject.Fail(p, 1), faultinject.Fail(p, 2))
	}
	for name, script := range scripts {
		dir := t.TempDir()
		ResetRunCache()
		if err := SetRunCacheDir(dir); err != nil {
			t.Fatal(err)
		}
		fopt := opt
		fopt.Resume = true // empty checkpoint: exercises the ckpt read path too
		faultinject.Enable(script)
		res, err := Sweep(fopt)
		faultinject.Disable()
		if err != nil {
			t.Fatalf("%s: injected store fault failed the run: %v", name, err)
		}
		if got := res.Render(); got != refText {
			t.Errorf("%s: injected store fault changed the report", name)
		}
		// The degraded store must still serve a clean, identical resume.
		ResetRunCache()
		if err := SetRunCacheDir(dir); err != nil {
			t.Fatal(err)
		}
		res2, err := Sweep(fopt)
		if err != nil {
			t.Fatalf("%s: rerun over degraded store: %v", name, err)
		}
		if got := res2.Render(); got != refText {
			t.Errorf("%s: rerun over degraded store changed the report", name)
		}
	}
}

// TestInjectedWorkerPanicSurfacesAndStorePersists pins panic hygiene at
// the experiment level: an injected worker panic propagates as a
// TrialPanic carrying the injected value, and the cells completed before
// the panic still allow an identical resumed report afterwards.
func TestInjectedWorkerPanicSurfacesAndStorePersists(t *testing.T) {
	resumeTestSetup(t)
	opt := sweepResumeOptions()
	opt.Workers = 2 // the worker-pool path; inline trials re-raise raw by design
	ref, err := Sweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	refText := ref.Render()

	dir := t.TempDir()
	ResetRunCache()
	if err := SetRunCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("injected panic did not propagate")
			}
			tp, ok := r.(*TrialPanic)
			if !ok {
				t.Fatalf("recovered %T (%v), want *TrialPanic", r, r)
			}
			if tp.Value != "injected-worker-panic" {
				t.Fatalf("TrialPanic carries %v, want the injected value", tp.Value)
			}
		}()
		faultinject.Enable(faultinject.NewScript(faultinject.Rule{
			Point:  faultinject.Trial,
			N:      opt.SweepScenarios - 1,
			Action: faultinject.Action{Panic: "injected-worker-panic"},
		}))
		defer faultinject.Disable()
		Sweep(opt)
	}()

	ropt := opt
	ropt.Resume = true
	res, err := Sweep(ropt)
	if err != nil {
		t.Fatalf("resume after panic: %v", err)
	}
	if got := res.Render(); got != refText {
		t.Errorf("report after worker panic differs from uninterrupted run")
	}
}
