package experiment

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cohmeleon/internal/faultinject"
)

// Shared-mode (multi-process sharding) pins. The in-process stand-in for
// "N processes" is N concurrent Sweep/Learners calls with distinct
// worker ids: they exercise the identical lease protocol over the
// identical shared directory — only the kill -9 itself needs real
// processes, and that lives in scripts/chaos_shard_smoke.sh.

// sharedSweepOptions configures one shared worker. The TTL is generous
// (2s against a 100ms heartbeat) so a race-detector scheduling stall
// can never make a live worker look dead and flake the test; dead-
// holder tests shorten the observer's TTL instead.
func sharedSweepOptions(worker string) Options {
	opt := Tiny()
	opt.SweepScenarios = 3
	opt.Shared = true
	opt.WorkerID = worker
	opt.LeaseTTL = 2 * time.Second
	opt.LeaseHeartbeat = 100 * time.Millisecond
	return opt
}

// TestSharedSweepTwoWorkersByteIdentical: two concurrent shared workers
// over one cache dir must each assemble the complete grid and render
// the exact report of a plain single-process run, with a store that
// fscks clean, no duplicated compute beyond reclaims/fallbacks, and no
// lease files left behind.
func TestSharedSweepTwoWorkersByteIdentical(t *testing.T) {
	resumeTestSetup(t)
	opt := sharedSweepOptions("")
	opt.Shared = false
	opt.WorkerID = ""
	ref, err := Sweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	refText := ref.Render()

	dir := t.TempDir()
	ResetRunCache()
	ResetCheckpointStats()
	if err := SetRunCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	reports := make([]string, 2)
	errs := make([]error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res, err := Sweep(sharedSweepOptions([]string{"w1", "w2"}[w]))
			if err != nil {
				errs[w] = err
				return
			}
			reports[w] = res.Render()
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for w, got := range reports {
		if got != refText {
			t.Errorf("worker %d report differs from single-process run:\n--- want ---\n%s\n--- got ---\n%s", w, refText, got)
		}
	}
	// Both live workers heartbeat faster than the TTL, so no reclaim may
	// have happened, and cells must not have been computed twice: cells
	// saved is exactly the grid (every save after the first would need a
	// reclaimed or fallback claim on an unpublished cell).
	st := GetLeaseStats()
	if st.Reclaimed != 0 || st.Expired != 0 || st.Lost != 0 || st.Fallbacks != 0 {
		t.Errorf("live workers tripped failure paths: %+v", st)
	}
	if ck := GetCheckpointStats(); ck.Saved != int64(opt.SweepScenarios) {
		t.Errorf("cells saved = %d, want %d (each cell computed exactly once across workers)",
			ck.Saved, opt.SweepScenarios)
	}
	v, err := VerifyRunCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Clean() {
		t.Errorf("fsck not clean: %v", v)
	}
	// Every lease released: the leases tree holds no live lease files.
	if left, _ := filepath.Glob(filepath.Join(leaseRoot(dir), "*", "*.lease")); len(left) != 0 {
		t.Errorf("leases left behind after a clean run: %v", left)
	}
}

// TestSharedSweepDeadWorkerReclaimed: every cell is pre-leased to a
// holder that never heartbeats (a kill -9 victim in miniature); a
// shared worker with a short TTL must expire and reclaim every lease
// exactly once and still produce the single-process report.
func TestSharedSweepDeadWorkerReclaimed(t *testing.T) {
	resumeTestSetup(t)
	opt := sharedSweepOptions("")
	opt.Shared = false
	opt.WorkerID = ""
	ref, err := Sweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	refText := ref.Render()

	dir := t.TempDir()
	ResetRunCache()
	ResetCheckpointStats()
	if err := SetRunCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	// Pre-claim every cell as the dead holder, straight through the
	// lease layer against the real grid's lease directory.
	surv := sharedSweepOptions("survivor")
	surv.LeaseTTL = 300 * time.Millisecond
	surv.LeaseHeartbeat = 60 * time.Millisecond
	ck, err := openCheckpoint("sweep", sweepParamHash(surv, nil), true)
	if err != nil || ck == nil {
		t.Fatalf("openCheckpoint = (%v, %v)", ck, err)
	}
	dead, err := openLeaseTable(dir, ck.key, Options{WorkerID: "dead", LeaseTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < surv.SweepScenarios; i++ {
		if _, claimed, err := dead.claim(i); !claimed || err != nil {
			t.Fatalf("dead pre-claim cell %d = (%v, %v)", i, claimed, err)
		}
	}
	ResetLeaseStats()

	res, err := Sweep(surv)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Render(); got != refText {
		t.Errorf("survivor report differs from single-process run:\n--- want ---\n%s\n--- got ---\n%s", refText, got)
	}
	st := GetLeaseStats()
	if st.Reclaimed != int64(surv.SweepScenarios) {
		t.Errorf("Reclaimed = %d, want %d (every dead lease reclaimed exactly once)",
			st.Reclaimed, surv.SweepScenarios)
	}
	if st.Expired < int64(surv.SweepScenarios) {
		t.Errorf("Expired = %d, want ≥ %d", st.Expired, surv.SweepScenarios)
	}
	// One tokened reclaim marker per cell is the on-disk audit trail.
	marks, _ := filepath.Glob(filepath.Join(leaseRoot(dir), "*", "*.reclaimed-*"))
	if len(marks) != surv.SweepScenarios {
		t.Errorf("reclaim markers = %d, want %d", len(marks), surv.SweepScenarios)
	}
	if v, err := VerifyRunCache(dir); err != nil || !v.Clean() {
		t.Errorf("fsck = (%v, %v), want clean", v, err)
	}
}

// TestSharedSweepUnderFaults is the concurrent-process store property
// test: two shared workers hammer one cache dir while a seeded random
// fault campaign fails lease and store operations under them. Both
// reports must stay byte-identical to the fault-free single-process
// run, the store must fsck clean afterwards, and no cell may have been
// computed more than twice.
func TestSharedSweepUnderFaults(t *testing.T) {
	resumeTestSetup(t)
	opt := sharedSweepOptions("")
	opt.Shared = false
	opt.WorkerID = ""
	ref, err := Sweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	refText := ref.Render()

	for seed := int64(1); seed <= 3; seed++ {
		dir := t.TempDir()
		ResetRunCache()
		ResetCheckpointStats()
		if err := SetRunCacheDir(dir); err != nil {
			t.Fatal(err)
		}
		// Campaign points cover every lease operation plus run-store
		// writes. Checkpoint writes are deliberately reliable here so
		// "computed at most twice" stays provable: a failed publish
		// would legitimately force a third compute, which the kill -9
		// smoke exercises instead.
		faultinject.Enable(faultinject.RandomFaults(seed, []faultinject.Point{
			faultinject.LeaseAcquire, faultinject.LeaseRenew,
			faultinject.LeaseRelease, faultinject.LeaseReclaim,
			faultinject.StoreWrite, faultinject.StoreRename,
		}, 6, 8))

		var mu sync.Mutex
		computed := make(map[int]int)
		countOpt := func(worker string) Options {
			o := sharedSweepOptions(worker)
			o.CellDone = func(e CellEvent) {
				if !e.Replayed {
					mu.Lock()
					computed[e.Index]++
					mu.Unlock()
				}
			}
			return o
		}
		var wg sync.WaitGroup
		reports := make([]string, 2)
		errs := make([]error, 2)
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				res, err := Sweep(countOpt([]string{"w1", "w2"}[w]))
				if err != nil {
					errs[w] = err
					return
				}
				reports[w] = res.Render()
			}(w)
		}
		wg.Wait()
		faultinject.Disable()
		for w, err := range errs {
			if err != nil {
				t.Fatalf("seed %d: worker %d: %v", seed, w, err)
			}
		}
		for w, got := range reports {
			if got != refText {
				t.Errorf("seed %d: worker %d report differs under faults:\n--- want ---\n%s\n--- got ---\n%s",
					seed, w, refText, got)
			}
		}
		for i, n := range computed {
			if n > 2 {
				t.Errorf("seed %d: cell %d computed %d times, want ≤ 2", seed, i, n)
			}
		}
		if v, err := VerifyRunCache(dir); err != nil || !v.Clean() {
			t.Errorf("seed %d: fsck = (%v, %v), want clean", seed, v, err)
		}
	}
}

// TestSharedLearnersTwoWorkersByteIdentical: the learners grid shards
// the same way the sweep does.
func TestSharedLearnersTwoWorkersByteIdentical(t *testing.T) {
	resumeTestSetup(t)
	base := Tiny()
	base.LearnerScenarios = 2
	ref, err := Learners(base)
	if err != nil {
		t.Fatal(err)
	}
	refText := ref.Render()

	dir := t.TempDir()
	ResetRunCache()
	ResetCheckpointStats()
	if err := SetRunCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	reports := make([]string, 2)
	errs := make([]error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			o := base
			o.Shared = true
			o.WorkerID = []string{"w1", "w2"}[w]
			o.LeaseTTL = 2 * time.Second
			o.LeaseHeartbeat = 100 * time.Millisecond
			res, err := Learners(o)
			if err != nil {
				errs[w] = err
				return
			}
			reports[w] = res.Render()
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for w, got := range reports {
		if got != refText {
			t.Errorf("worker %d learners report differs from single-process run:\n--- want ---\n%s\n--- got ---\n%s", w, refText, got)
		}
	}
	if v, err := VerifyRunCache(dir); err != nil || !v.Clean() {
		t.Errorf("fsck = (%v, %v), want clean", v, err)
	}
}

// TestSharedModeRequiresCacheDir: shared mode without a store to
// coordinate through is rejected up front, not silently single-process.
func TestSharedModeRequiresCacheDir(t *testing.T) {
	resumeTestSetup(t)
	opt := sharedSweepOptions("w1")
	if _, err := Sweep(opt); err == nil || !strings.Contains(err.Error(), "cache directory") {
		t.Fatalf("shared sweep without cache dir = %v, want cache-directory error", err)
	}
}

// TestSharedOptionValidation: lease tuning that would break the
// protocol (heartbeat at or past the TTL) is an option error.
func TestSharedOptionValidation(t *testing.T) {
	opt := Tiny()
	opt.Shared = true
	opt.LeaseTTL = time.Second
	opt.LeaseHeartbeat = time.Second
	if err := opt.Validate(); err == nil || !strings.Contains(err.Error(), "heartbeat") {
		t.Fatalf("heartbeat == TTL validated as %v, want heartbeat error", err)
	}
	opt.LeaseHeartbeat = -time.Second
	if err := opt.Validate(); err == nil {
		t.Fatal("negative heartbeat validated clean")
	}
	opt.LeaseHeartbeat = 0
	opt.LeaseTTL = -time.Second
	if err := opt.Validate(); err == nil {
		t.Fatal("negative TTL validated clean")
	}
}
