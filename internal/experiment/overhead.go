package experiment

import (
	"fmt"

	"cohmeleon/internal/core"
	"cohmeleon/internal/esp"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
)

// OverheadPoint is Cohmeleon's bookkeeping cost relative to one
// invocation's total time at a given footprint.
type OverheadPoint struct {
	FootprintKB int64
	ExecCycles  float64
	Fraction    float64 // overhead / total execution time
}

// OverheadResult reproduces the §6 overhead measurement: Cohmeleon's
// status tracking, computation and decision-making as a fraction of
// invocation time, from small (16 kB) to large (4 MB) workloads.
type OverheadResult struct {
	Points []OverheadPoint
}

// Overhead measures the overhead sweep on the motivation SoC. The five
// footprint points are independent trials (fresh SoC and frozen agent
// each) and fan out on the worker pool.
func Overhead(opt Options) (*OverheadResult, error) {
	cfg := withProtocol(soc.MotivationIsolation(), opt)
	agentCfg := core.DefaultConfig()
	overhead := agentCfg.OverheadCycles
	footprints := []int64{16, 64, 256, 1024, 4096}
	points := make([]OverheadPoint, len(footprints))
	if err := forEachOpt(opt, len(footprints), func(i int) error {
		kb := footprints[i]
		agent, err := core.New(agentCfg)
		if err != nil {
			return err
		}
		agent.Freeze()
		s, err := build(cfg)
		if err != nil {
			return err
		}
		sys := esp.NewSystem(s, agent)
		var exec float64
		var procErr error
		s.Eng.Go("overhead", func(p *sim.Proc) {
			buf, err := s.Heap.Alloc(kb << 10)
			if err != nil {
				procErr = fmt.Errorf("overhead %dKB: %w", kb, err)
				return
			}
			a := s.Accs[0]
			p.WaitUntil(s.CPUTouchRange(s.CPUs[0], buf, 0, buf.Lines(), true, p.Now(), &soc.Meter{}))
			s.CPUPool.Acquire(p)
			res := sys.Invoke(p, a, buf, s.CPUPool, sim.NewRNG(opt.Seed))
			s.CPUPool.Release()
			exec = float64(res.ExecCycles)
		})
		if err := s.Eng.Run(); err != nil {
			return err
		}
		if procErr != nil {
			return procErr
		}
		releaseEngine(s.Eng)
		points[i] = OverheadPoint{
			FootprintKB: kb,
			ExecCycles:  exec,
			Fraction:    float64(overhead) / exec,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return &OverheadResult{Points: points}, nil
}

// Render formats the sweep.
func (r *OverheadResult) Render() string {
	t := &Table{
		Title:  "Cohmeleon overhead — fraction of invocation time spent on tracking and deciding",
		Header: []string{"footprint", "exec cycles", "overhead %"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%dKB", p.FootprintKB),
			fmt.Sprintf("%.0f", p.ExecCycles),
			fmt.Sprintf("%.2f%%", p.Fraction*100))
	}
	t.AddNote("paper: 3-6%% at 16kB, below 0.1%% at 4MB")
	return t.Render()
}
