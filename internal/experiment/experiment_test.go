package experiment

import (
	"strings"
	"testing"

	"cohmeleon/internal/soc"
)

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "b"}}
	tab.AddRow("x", "1")
	tab.AddRow("longer", "22")
	tab.AddNote("n=%d", 2)
	out := tab.Render()
	for _, want := range []string{"T\n=", "a", "longer", "note: n=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryLookupAndList(t *testing.T) {
	ids := []string{"table4", "fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "headline", "overhead", "ablation", "sweep", "learners"}
	for _, id := range ids {
		e, err := Lookup(id)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", id, err)
		}
		if e.ID != id || e.Title == "" || e.Run == nil {
			t.Fatalf("entry %q malformed: %+v", id, e)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown id should error")
	}
	if got := len(List()); got != len(ids) {
		t.Fatalf("List has %d entries, want %d", got, len(ids))
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	res, err := Table4(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Configs) != 7 {
		t.Fatalf("%d configs", len(res.Configs))
	}
	out := res.Render()
	for _, want := range []string{"SoC0", "SoC6", "5x5", "512kB", "2MB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 4 render missing %q", want)
		}
	}
}

func TestOverheadShape(t *testing.T) {
	res, err := Overhead(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("%d points", len(res.Points))
	}
	small := res.Points[0]
	large := res.Points[len(res.Points)-1]
	if small.FootprintKB != 16 || large.FootprintKB != 4096 {
		t.Fatalf("sweep endpoints wrong: %d..%d", small.FootprintKB, large.FootprintKB)
	}
	// Paper: 3-6% at 16kB, <0.1% at 4MB. Accept the same order of
	// magnitude: noticeable for small, negligible for large.
	if small.Fraction < 0.01 || small.Fraction > 0.15 {
		t.Errorf("16kB overhead fraction = %.4f, want a few percent", small.Fraction)
	}
	if large.Fraction > 0.002 {
		t.Errorf("4MB overhead fraction = %.5f, want negligible", large.Fraction)
	}
	if !strings.Contains(res.Render(), "overhead") {
		t.Error("render broken")
	}
}

func TestIsolatedInvocationDeterministic(t *testing.T) {
	cfg := soc.MotivationIsolation()
	a, errA := isolatedInvocation(cfg, cfg.Accs[0].InstName, 16<<10, soc.CohDMA, 1, 5)
	b, errB := isolatedInvocation(cfg, cfg.Accs[0].InstName, 16<<10, soc.CohDMA, 1, 5)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestFigure2WarmCacheModesZeroOffChip(t *testing.T) {
	// One accelerator/size slice of Figure 2 (full sweep is a bench).
	cfg := soc.MotivationIsolation()
	non, err := isolatedInvocation(cfg, "fft.0", 16<<10, soc.NonCohDMA, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	llc, err := isolatedInvocation(cfg, "fft.0", 16<<10, soc.LLCCohDMA, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if llc.OffChip != 0 {
		t.Errorf("warm small llc-coh off-chip = %g, want 0", llc.OffChip)
	}
	if non.OffChip == 0 {
		t.Error("non-coh must go off-chip")
	}
	if llc.ExecCycles >= non.ExecCycles {
		t.Errorf("warm small: llc-coh (%g) should beat non-coh (%g)", llc.ExecCycles, non.ExecCycles)
	}
}

func TestFigure3ShapePreserved(t *testing.T) {
	opt := Tiny()
	res, err := Figure3(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(fig3Counts)*int(soc.NumModes) {
		t.Fatalf("%d points", len(res.Points))
	}
	// Degradation grows with concurrency for every mode.
	for _, mode := range soc.AllModes {
		if res.Slowdown(mode, 12) <= res.Slowdown(mode, 1) {
			t.Errorf("%v: no degradation from 1 to 12 accs", mode)
		}
	}
	// Non-coherent suffers least at full contention; coherent DMA
	// degrades more (relative to its own 1-acc point), as in the paper.
	nonCohLoss := res.Slowdown(soc.NonCohDMA, 12) / res.Slowdown(soc.NonCohDMA, 1)
	cohLoss := res.Slowdown(soc.CohDMA, 12) / res.Slowdown(soc.CohDMA, 1)
	if cohLoss <= nonCohLoss {
		t.Errorf("coh-dma relative loss %.2f should exceed non-coh %.2f", cohLoss, nonCohLoss)
	}
	if !strings.Contains(res.Render(), "Figure 3") {
		t.Error("render broken")
	}
}

func TestFigure5PoliciesAndPhases(t *testing.T) {
	res, err := Figure5(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 4 {
		t.Fatalf("%d phases", len(res.Phases))
	}
	if len(res.Policies) != 8 {
		t.Fatalf("%d policies", len(res.Policies))
	}
	// The baseline normalizes to itself.
	for _, ph := range res.Phases {
		c, ok := res.Cell(ph, "fixed-non-coh-dma")
		if !ok {
			t.Fatalf("missing baseline cell for %q", ph)
		}
		if c.NormExec != 1 {
			t.Errorf("baseline norm exec = %g, want 1", c.NormExec)
		}
	}
	// Cohmeleon and manual should not be catastrophically worse than the
	// best fixed policy in any phase (paper: they match or improve).
	for _, ph := range res.Phases {
		manual, _ := res.Cell(ph, "manual")
		if manual.NormExec > 1.6 {
			t.Errorf("manual %.2f on %q: far off the baseline", manual.NormExec, ph)
		}
	}
}

func TestFigure7SharesSumTo100(t *testing.T) {
	res, err := Figure7(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		var sum float64
		for _, p := range row.Percent {
			sum += p
		}
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("%s(%s): shares sum to %g", row.Policy, row.Size, sum)
		}
	}
	// Both policies appear, with an "all" row each.
	if res.Share("manual", "all", soc.NonCohDMA)+res.Share("manual", "all", soc.CohDMA)+
		res.Share("manual", "all", soc.LLCCohDMA)+res.Share("manual", "all", soc.FullyCoh) == 0 {
		t.Error("manual has no decisions recorded")
	}
}

func TestFigure8LearningImproves(t *testing.T) {
	opt := Tiny()
	opt.Fig8Schedules = []int{3}
	opt.MinInvocations = 80
	res, err := Figure8(opt)
	if err != nil {
		t.Fatal(err)
	}
	first, ok := res.At(3, 0)
	if !ok {
		t.Fatal("missing iteration 0")
	}
	last, ok := res.Final(3)
	if !ok || last.Iteration != 3 {
		t.Fatalf("missing final point: %+v", last)
	}
	// Training should not make things worse than the untrained (random)
	// model; typically it improves markedly after one iteration.
	if last.NormExec > first.NormExec*1.05 {
		t.Errorf("training hurt: iter0 %.3f -> final %.3f", first.NormExec, last.NormExec)
	}
}

func TestFigure6RewardModelsCluster(t *testing.T) {
	opt := Tiny()
	res, err := Figure6(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cohmeleon) != opt.Fig6Models {
		t.Fatalf("%d cohmeleon points, want %d", len(res.Cohmeleon), opt.Fig6Models)
	}
	if len(res.Baselines) != 7 {
		t.Fatalf("%d baseline points, want 7", len(res.Baselines))
	}
	for _, p := range res.Cohmeleon {
		if p.NormExec <= 0 || p.NormMem < 0 {
			t.Errorf("degenerate point %+v", p)
		}
	}
}

func TestProfileHeterogeneousCoversAllSpecs(t *testing.T) {
	cfg := soc.SoC5() // 4 spec types
	opt := Tiny()
	opt.Seed = 1
	het, err := profileHeterogeneous(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, a := range cfg.Accs {
		if seen[a.Spec.Name] {
			continue
		}
		seen[a.Spec.Name] = true
		// Assignment must be one of the four modes (always defined).
		m := het.Assignment(a.Spec.Name)
		if m > soc.FullyCoh {
			t.Fatalf("bad assignment %v for %s", m, a.Spec.Name)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("expected 4 spec types, saw %d", len(seen))
	}
}

func TestHeadlineFromSyntheticFig9(t *testing.T) {
	fig9 := &Fig9Result{Points: []Fig9Point{
		{SoC: "X", Policy: "fixed-non-coh-dma", RawExec: 200, RawMem: 100},
		{SoC: "X", Policy: "fixed-llc-coh-dma", RawExec: 150, RawMem: 40},
		{SoC: "X", Policy: "fixed-coh-dma", RawExec: 150, RawMem: 40},
		{SoC: "X", Policy: "fixed-full-coh", RawExec: 250, RawMem: 60},
		{SoC: "X", Policy: "fixed-hetero", RawExec: 150, RawMem: 40},
		{SoC: "X", Policy: "manual", RawExec: 100, RawMem: 30},
		{SoC: "X", Policy: "cohmeleon", RawExec: 100, RawMem: 20},
	}}
	h := HeadlineFrom(fig9)
	// speedups: 1.0, 0.5, 0.5, 1.5, 0.5 → mean 0.8
	if h.AvgSpeedup < 0.79 || h.AvgSpeedup > 0.81 {
		t.Errorf("AvgSpeedup = %g, want 0.8", h.AvgSpeedup)
	}
	// reductions: 0.8, 0.5, 0.5, 2/3, 0.5 → mean ≈ 0.5933
	if h.AvgMemReduction < 0.59 || h.AvgMemReduction > 0.60 {
		t.Errorf("AvgMemReduction = %g", h.AvgMemReduction)
	}
	if h.VsManualExec != 1.0 {
		t.Errorf("VsManualExec = %g", h.VsManualExec)
	}
	if !strings.Contains(h.Render(), "38%") {
		t.Error("render should cite the paper number")
	}

	// A non-default learner stack renames the agent's row; the headline
	// must still find it instead of silently averaging nothing.
	for i, p := range fig9.Points {
		if p.Policy == "cohmeleon" {
			fig9.Points[i].Policy = "cohmeleon-double-q-exp"
		}
	}
	h2 := HeadlineFrom(fig9)
	if h2.AvgSpeedup != h.AvgSpeedup || h2.AvgMemReduction != h.AvgMemReduction || h2.VsManualExec != h.VsManualExec {
		t.Errorf("renamed learned policy changed the headline: %+v vs %+v", h2, h)
	}
}

func TestAblationRunsAllVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation trains 8 agents; skipped in -short")
	}
	res, err := Ablation(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 8 { // full + no-decay + true-ddr + 5 attribute drops
		t.Fatalf("%d variants", len(res.Points))
	}
	if _, ok := res.Point("full (paper)"); !ok {
		t.Fatal("missing the paper variant")
	}
}
