package experiment

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"cohmeleon/internal/faultinject"
)

// Cell-boundary retry. A grid cell's value is a pure function of its
// inputs, so a transient infrastructure failure — a flaky disk, a brief
// resource squeeze, an injected fault at the CellAttempt failpoint —
// can be retried without any risk to report bytes: the retried attempt
// recomputes exactly the value the failed one would have produced.
// Deterministic trial errors (bad geometry, undecodable state) are the
// opposite: retrying them re-fails identically, so they are never
// retried. The line between the two is explicit: only errors that
// declare themselves transient (IsTransient) are retried.

// RetryStats counts cell-retry traffic since the last reset.
type RetryStats struct {
	// CellRetries is the number of cell attempts that were retried
	// after a transient failure.
	CellRetries int64
}

var retryCells atomic.Int64

// GetRetryStats returns the counters since the last reset.
func GetRetryStats() RetryStats {
	return RetryStats{CellRetries: retryCells.Load()}
}

// ResetRetryStats zeroes the retry counters.
func ResetRetryStats() { retryCells.Store(0) }

// IsTransient classifies an error as a retryable infrastructure
// failure: it either implements `Transient() bool` or wraps
// faultinject.ErrTransient. Everything else — in particular every
// deterministic trial error — is not transient and fails fast.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	if errors.As(err, &t) {
		return t.Transient()
	}
	return errors.Is(err, faultinject.ErrTransient)
}

// RetryPolicy retries transient cell failures with capped exponential
// backoff and deterministic jitter. The zero policy is invalid; use
// DefaultRetryPolicy for sane serving defaults.
type RetryPolicy struct {
	// MaxAttempts is the total attempts per cell, including the first
	// (1 = no retry).
	MaxAttempts int
	// BaseDelay is the pre-jitter delay before the first retry; each
	// further retry doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the pre-jitter backoff.
	MaxDelay time.Duration
	// Retryable classifies errors; nil means IsTransient.
	Retryable func(error) bool
	// Sleep waits out a backoff delay, returning early with the context
	// error if cancelled. Nil means a real timer; tests inject stubs.
	Sleep func(context.Context, time.Duration) error
}

// DefaultRetryPolicy returns the serve-mode defaults: a few quick
// attempts, backing off 50ms → 2s.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}
}

// Validate reports policy errors before any cell runs under them.
func (p *RetryPolicy) Validate() error {
	switch {
	case p.MaxAttempts < 1:
		return fmt.Errorf("experiment: retry attempts %d must be ≥ 1", p.MaxAttempts)
	case p.BaseDelay < 0:
		return fmt.Errorf("experiment: retry base delay %v must be ≥ 0", p.BaseDelay)
	case p.MaxDelay < 0:
		return fmt.Errorf("experiment: retry max delay %v must be ≥ 0", p.MaxDelay)
	}
	return nil
}

// retryable applies the configured classifier.
func (p *RetryPolicy) retryable(err error) bool {
	if p.Retryable != nil {
		return p.Retryable(err)
	}
	return IsTransient(err)
}

// delay computes the backoff before retry number `attempt` (1-based) of
// cell `index`: BaseDelay doubled per attempt, capped at MaxDelay, then
// scaled into [50%, 100%) by a jitter derived deterministically from
// (index, attempt) — desynchronizing concurrent cells without any
// shared RNG state.
func (p *RetryPolicy) delay(index, attempt int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if d <= 0 {
		return 0
	}
	frac := 0.5 + 0.5*float64(splitmix64(uint64(index)<<20|uint64(attempt))>>11)/float64(1<<53)
	return time.Duration(float64(d) * frac)
}

// sleep waits out one backoff delay.
func (p *RetryPolicy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// splitmix64 is the standard 64-bit finalizer-style mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
