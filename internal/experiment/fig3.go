package experiment

import (
	"fmt"

	"cohmeleon/internal/esp"
	"cohmeleon/internal/policy"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
	"cohmeleon/internal/stats"
)

// Fig3Point is one bar pair of Figure 3: average normalized performance
// with n accelerators running concurrently under one mode.
type Fig3Point struct {
	Accs     int
	Mode     soc.Mode
	NormExec float64
	NormMem  float64
}

// Fig3Result reproduces Figure 3: performance degradation as 1, 4, 8
// and 12 accelerators (three instances each of FFT, night-vision, sort,
// SPMV) run 256 kB workloads concurrently.
type Fig3Result struct {
	Points []Fig3Point
}

var fig3Counts = []int{1, 4, 8, 12}

// Figure3 runs the parallel-execution study on the motivation SoC.
func Figure3(opt Options) (*Fig3Result, error) {
	cfg := withProtocol(soc.MotivationParallel(), opt)
	const bytes = 256 << 10
	types := []string{}
	seen := map[string]bool{}
	for _, a := range cfg.Accs {
		if !seen[a.Spec.Name] {
			seen[a.Spec.Name] = true
			types = append(types, a.Spec.Name)
		}
	}

	// Baseline: each type alone under non-coherent DMA. The four
	// baselines and, afterwards, all (count, mode) cells are independent
	// simulations on fresh SoCs; both batches fan out on the worker pool.
	baseExec := map[string]float64{}
	baseMem := map[string]float64{}
	baseE := make([]map[string]float64, len(types))
	baseM := make([]map[string]float64, len(types))
	if err := forEachOpt(opt, len(types), func(i int) error {
		var err error
		baseE[i], baseM[i], err = fig3Measure(cfg, []string{types[i] + ".0"}, soc.NonCohDMA, bytes, opt)
		return err
	}); err != nil {
		return nil, err
	}
	for i, tn := range types {
		baseExec[tn] = baseE[i][tn]
		baseMem[tn] = baseM[i][tn]
	}

	// One cell per (count, mode). An n==1 cell averages one solo trial
	// per type; an n>1 cell is a single trial whose result carries every
	// type. Each trial writes only its own (cell, type) slots.
	nM := int(soc.NumModes)
	nT := len(types)
	cells := len(fig3Counts) * nM
	execVals := make([]float64, cells*nT)
	memVals := make([]float64, cells*nT)
	if err := forEachOpt(opt, cells*nT, func(t int) error {
		i, ti := t/nT, t%nT
		n := fig3Counts[i/nM]
		mode := soc.AllModes[i%nM]
		if n == 1 {
			// One accelerator at a time, averaged over the four types.
			tn := types[ti]
			e, m, err := fig3Measure(cfg, []string{tn + ".0"}, mode, bytes, opt)
			if err != nil {
				return err
			}
			execVals[t] = stats.Ratio(e[tn], baseExec[tn])
			memVals[t] = stats.Ratio(m[tn], baseMem[tn])
			return nil
		}
		if ti != 0 {
			return nil // concurrent cell: the ti==0 trial covers all types
		}
		// n/4 instances of each type run concurrently.
		var insts []string
		for k := 0; k < n/nT; k++ {
			for _, name := range types {
				insts = append(insts, fmt.Sprintf("%s.%d", name, k))
			}
		}
		e, m, err := fig3Measure(cfg, insts, mode, bytes, opt)
		if err != nil {
			return err
		}
		for tj, tn := range types {
			execVals[i*nT+tj] = stats.Ratio(e[tn], baseExec[tn])
			memVals[i*nT+tj] = stats.Ratio(m[tn], baseMem[tn])
		}
		return nil
	}); err != nil {
		return nil, err
	}

	out := &Fig3Result{}
	for i := 0; i < cells; i++ {
		out.Points = append(out.Points, Fig3Point{
			Accs: fig3Counts[i/nM], Mode: soc.AllModes[i%nM],
			NormExec: stats.Mean(execVals[i*nT : (i+1)*nT]),
			NormMem:  stats.Mean(memVals[i*nT : (i+1)*nT]),
		})
	}
	return out, nil
}

// fig3Measure runs the listed accelerator instances concurrently (each
// invoked opt.Runs+1 times in a row from its own thread, first warm-up
// measured too, as on the FPGA) and returns the mean invocation exec
// and off-chip per accelerator type. Setup failures inside the
// simulation threads (allocation, instance lookup) surface as errors
// through the experiment result rather than tearing the process down.
func fig3Measure(cfg *soc.Config, insts []string, mode soc.Mode, bytes int64, opt Options) (map[string]float64, map[string]float64, error) {
	s, err := build(cfg)
	if err != nil {
		return nil, nil, err
	}
	sys := esp.NewSystem(s, policy.NewFixed(mode))
	execSum := map[string]float64{}
	memSum := map[string]float64{}
	count := map[string]float64{}

	var procErr error
	wg := sim.NewWaitGroup(s.Eng)
	for ti, inst := range insts {
		inst := inst
		ti := ti
		wg.Add(1)
		s.Eng.Go("fig3:"+inst, func(p *sim.Proc) {
			defer wg.Done()
			buf, err := s.Heap.Alloc(bytes)
			if err != nil {
				if procErr == nil {
					procErr = fmt.Errorf("fig3 %s: %w", inst, err)
				}
				return
			}
			a, err := s.AccByName(inst)
			if err != nil {
				if procErr == nil {
					procErr = err
				}
				return
			}
			rng := sim.NewRNG(opt.Seed + uint64(ti))
			cpuTile := s.CPUs[ti%len(s.CPUs)]
			s.CPUPool.Acquire(p)
			p.WaitUntil(s.CPUTouchRange(cpuTile, buf, 0, buf.Lines(), true, p.Now(), &soc.Meter{}))
			for r := 0; r < opt.Runs+1; r++ {
				res := sys.InvokeWithMode(p, a, buf, mode, s.CPUPool, rng.Split())
				execSum[a.Spec.Name] += float64(res.ExecCycles)
				memSum[a.Spec.Name] += float64(res.OffChipTrue)
				count[a.Spec.Name]++
			}
			s.CPUPool.Release()
		})
	}
	s.Eng.Go("fig3:join", func(p *sim.Proc) { wg.Wait(p) })
	if err := s.Eng.Run(); err != nil {
		return nil, nil, err
	}
	if procErr != nil {
		return nil, nil, procErr
	}
	releaseEngine(s.Eng)
	for k := range execSum {
		execSum[k] /= count[k]
		memSum[k] /= count[k]
	}
	return execSum, memSum, nil
}

// Slowdown returns the normalized execution time for a mode at a
// concurrency level.
func (r *Fig3Result) Slowdown(mode soc.Mode, accs int) float64 {
	for _, p := range r.Points {
		if p.Mode == mode && p.Accs == accs {
			return p.NormExec
		}
	}
	return 0
}

// Render formats the figure.
func (r *Fig3Result) Render() string {
	t := &Table{
		Title:  "Figure 3 — parallel accelerator execution (normalized to 1-acc non-coh-dma)",
		Header: []string{"accs", "mode", "norm exec", "norm off-chip"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%d", p.Accs), p.Mode.String(), f2(p.NormExec), f2(p.NormMem))
	}
	t.AddNote("paper: non-coh suffers least under contention (≤2.4x at 12 accs); coh-dma degrades worst (~8x)")
	return t.Render()
}
