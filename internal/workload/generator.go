package workload

import (
	"fmt"

	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
)

// GenConfig controls the random application generator. Zero values take
// the defaults noted per field.
type GenConfig struct {
	// MaxThreads per phase (default 8, clamped to 12).
	MaxThreads int
	// MaxChain is the longest accelerator chain per thread (default 3).
	MaxChain int
	// MaxLoops per thread (default 3).
	MaxLoops int
	// MinInvocations keeps adding phases until the app reaches this many
	// accelerator invocations (default 300, the paper's "over 300
	// accelerator invocations" per training iteration).
	MinInvocations int
	// Classes restricts workload sizes (default: all four).
	Classes []SizeClass
}

func (g GenConfig) withDefaults() GenConfig {
	if g.MaxThreads <= 0 {
		g.MaxThreads = 8
	}
	if g.MaxThreads > 12 {
		g.MaxThreads = 12
	}
	if g.MaxChain <= 0 {
		g.MaxChain = 3
	}
	if g.MaxLoops <= 0 {
		g.MaxLoops = 3
	}
	if g.MinInvocations <= 0 {
		g.MinInvocations = 300
	}
	if len(g.Classes) == 0 {
		g.Classes = []SizeClass{Small, Medium, Large, ExtraLarge}
	}
	return g
}

// minFootprintBytes is the smallest dataset any thread works on.
const minFootprintBytes = 4 << 10

// classRange returns the footprint bounds of a class on a SoC. The
// nominal bands follow the paper's definition (Small fits the private
// L2, Medium one LLC partition, Large the aggregate LLC, Extra-Large
// three times that), but randomized topologies produce degenerate
// geometries — an L2 bigger than an LLC slice inverts the Medium band,
// a single memory tile collapses Large onto Medium — so empty bands are
// merged to their lower boundary (the sampled footprint then classifies
// as the next class up) and the upper bound is capped at DRAM capacity.
// A class is impossible, and reported as an error, when even its lower
// boundary exceeds what the SoC's DRAM can allocate.
func classRange(c SizeClass, cfg *soc.Config) (lo, hi int64, err error) {
	switch c {
	case Small:
		lo, hi = minFootprintBytes, cfg.L2Bytes()
	case Medium:
		lo, hi = cfg.L2Bytes()+1, cfg.LLCSliceBytes()
	case Large:
		lo, hi = cfg.LLCSliceBytes()+1, cfg.TotalLLCBytes()
	case ExtraLarge:
		lo, hi = cfg.TotalLLCBytes()+1, 3*cfg.TotalLLCBytes()
	default:
		return 0, 0, fmt.Errorf("workload: unknown size class %d", int(c))
	}
	if lo < minFootprintBytes {
		lo = minFootprintBytes
	}
	if dram := cfg.DRAMBytes(); dram > 0 {
		if lo > dram {
			return 0, 0, fmt.Errorf("workload: size class %v impossible on %s: needs ≥ %d bytes, DRAM holds %d",
				c, cfg.Name, lo, dram)
		}
		if hi > dram {
			hi = dram
		}
	}
	if hi < lo {
		hi = lo // degenerate band: merge onto the lower boundary
	}
	return lo, hi, nil
}

// sampleBytes draws a footprint uniformly within the class, rounded to
// whole KB. Class bounds sit one byte past a cache size, so rounding
// down would drop boundary draws back into the class below (a Medium
// draw of L2+5 bytes must not become exactly L2); those round up
// instead, which never exceeds the DRAM cap because capacities are
// KB-aligned.
func sampleBytes(c SizeClass, cfg *soc.Config, rng *sim.RNG) (int64, error) {
	lo, hi, err := classRange(c, cfg)
	if err != nil {
		return 0, err
	}
	b := lo + rng.Int63n(hi-lo+1)
	if b < minFootprintBytes {
		b = minFootprintBytes
	}
	if down := (b >> 10) << 10; down >= lo {
		b = down
	} else {
		b = ((lo + (1 << 10) - 1) >> 10) << 10
	}
	return b, nil
}

// ClassFeasible reports whether the size class can be sampled on the
// SoC's memory geometry (nil), or why it cannot. Generate can only
// fail on infeasible classes, so a class set filtered through this
// check makes generation infallible for every seed.
func ClassFeasible(c SizeClass, cfg *soc.Config) error {
	_, _, err := classRange(c, cfg)
	return err
}

// randomThread draws one thread spec.
func randomThread(name string, cfg *soc.Config, g GenConfig, class SizeClass, rng *sim.RNG) (ThreadSpec, error) {
	chainLen := 1 + rng.Intn(g.MaxChain)
	chain := make([]string, chainLen)
	for i := range chain {
		chain[i] = cfg.Accs[rng.Intn(len(cfg.Accs))].InstName
	}
	bytes, err := sampleBytes(class, cfg, rng)
	if err != nil {
		return ThreadSpec{}, err
	}
	return ThreadSpec{
		Name:             name,
		FootprintBytes:   bytes,
		Chain:            chain,
		Loops:            2 + rng.Intn(g.MaxLoops), // accelerators are invoked repeatedly per thread
		RewriteFraction:  0.25,
		ReadbackFraction: 0.25,
	}, nil
}

// Generate builds a randomized evaluation application for the SoC. The
// same (cfg, g, seed) triple always yields the same app; different
// seeds yield the "different instances of the evaluation application"
// the paper trains and tests on. It fails when a requested size class
// is impossible on the SoC's memory geometry.
func Generate(cfg *soc.Config, g GenConfig, seed uint64) (*App, error) {
	g = g.withDefaults()
	rng := sim.NewRNG(seed ^ 0x10ad5eed)
	app := &App{Name: fmt.Sprintf("%s-gen-%d", cfg.Name, seed)}
	for pi := 0; app.Invocations() < g.MinInvocations && pi < 64; pi++ {
		threads := 1 + rng.Intn(g.MaxThreads)
		phase := PhaseSpec{Name: fmt.Sprintf("phase-%d", pi)}
		for ti := 0; ti < threads; ti++ {
			class := g.Classes[rng.Intn(len(g.Classes))]
			ts, err := randomThread(fmt.Sprintf("t%d", ti), cfg, g, class, rng)
			if err != nil {
				return nil, err
			}
			phase.Threads = append(phase.Threads, ts)
		}
		app.Phases = append(app.Phases, phase)
	}
	return app, nil
}
