package workload

import (
	"fmt"

	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
)

// GenConfig controls the random application generator. Zero values take
// the defaults noted per field.
type GenConfig struct {
	// MaxThreads per phase (default 8, clamped to 12).
	MaxThreads int
	// MaxChain is the longest accelerator chain per thread (default 3).
	MaxChain int
	// MaxLoops per thread (default 3).
	MaxLoops int
	// MinInvocations keeps adding phases until the app reaches this many
	// accelerator invocations (default 300, the paper's "over 300
	// accelerator invocations" per training iteration).
	MinInvocations int
	// Classes restricts workload sizes (default: all four).
	Classes []SizeClass
}

func (g GenConfig) withDefaults() GenConfig {
	if g.MaxThreads <= 0 {
		g.MaxThreads = 8
	}
	if g.MaxThreads > 12 {
		g.MaxThreads = 12
	}
	if g.MaxChain <= 0 {
		g.MaxChain = 3
	}
	if g.MaxLoops <= 0 {
		g.MaxLoops = 3
	}
	if g.MinInvocations <= 0 {
		g.MinInvocations = 300
	}
	if len(g.Classes) == 0 {
		g.Classes = []SizeClass{Small, Medium, Large, ExtraLarge}
	}
	return g
}

// classRange returns the footprint bounds of a class on a SoC.
func classRange(c SizeClass, cfg *soc.Config) (lo, hi int64) {
	switch c {
	case Small:
		return 4 << 10, cfg.L2Bytes()
	case Medium:
		return cfg.L2Bytes() + 1, cfg.LLCSliceBytes()
	case Large:
		return cfg.LLCSliceBytes() + 1, cfg.TotalLLCBytes()
	default:
		return cfg.TotalLLCBytes() + 1, 3 * cfg.TotalLLCBytes()
	}
}

// sampleBytes draws a footprint uniformly within the class, rounded to
// whole KB.
func sampleBytes(c SizeClass, cfg *soc.Config, rng *sim.RNG) int64 {
	lo, hi := classRange(c, cfg)
	b := lo + rng.Int63n(hi-lo+1)
	if b < 4<<10 {
		b = 4 << 10
	}
	return (b >> 10) << 10
}

// randomThread draws one thread spec.
func randomThread(name string, cfg *soc.Config, g GenConfig, class SizeClass, rng *sim.RNG) ThreadSpec {
	chainLen := 1 + rng.Intn(g.MaxChain)
	chain := make([]string, chainLen)
	for i := range chain {
		chain[i] = cfg.Accs[rng.Intn(len(cfg.Accs))].InstName
	}
	return ThreadSpec{
		Name:             name,
		FootprintBytes:   sampleBytes(class, cfg, rng),
		Chain:            chain,
		Loops:            2 + rng.Intn(g.MaxLoops), // accelerators are invoked repeatedly per thread
		RewriteFraction:  0.25,
		ReadbackFraction: 0.25,
	}
}

// Generate builds a randomized evaluation application for the SoC. The
// same (cfg, g, seed) triple always yields the same app; different
// seeds yield the "different instances of the evaluation application"
// the paper trains and tests on.
func Generate(cfg *soc.Config, g GenConfig, seed uint64) *App {
	g = g.withDefaults()
	rng := sim.NewRNG(seed ^ 0x10ad5eed)
	app := &App{Name: fmt.Sprintf("%s-gen-%d", cfg.Name, seed)}
	for pi := 0; app.Invocations() < g.MinInvocations && pi < 64; pi++ {
		threads := 1 + rng.Intn(g.MaxThreads)
		phase := PhaseSpec{Name: fmt.Sprintf("phase-%d", pi)}
		for ti := 0; ti < threads; ti++ {
			class := g.Classes[rng.Intn(len(g.Classes))]
			phase.Threads = append(phase.Threads,
				randomThread(fmt.Sprintf("t%d", ti), cfg, g, class, rng))
		}
		app.Phases = append(app.Phases, phase)
	}
	return app
}
