// Package workload defines the evaluation applications of the paper
// (§5): multithreaded programs organized in phases; each phase runs a
// set of threads; each thread owns one dataset and drives a chain of
// accelerators serially over it, optionally looping. The package also
// provides the seeded random application generator used for training
// and testing, the four Figure-5 phases, and the case-study
// applications for SoC4/5/6.
package workload

import (
	"fmt"
	"io"
	"sort"

	"cohmeleon/internal/soc"
)

// SizeClass is the paper's workload-size characterization: Small fits
// the accelerator's L2, Medium one LLC partition, Large the aggregate
// LLC, and Extra-Large exceeds the LLC.
type SizeClass int

// Workload size classes.
const (
	Small SizeClass = iota
	Medium
	Large
	ExtraLarge
	NumSizeClasses
)

// String names the class as in Figure 7.
func (c SizeClass) String() string {
	switch c {
	case Small:
		return "S"
	case Medium:
		return "M"
	case Large:
		return "L"
	case ExtraLarge:
		return "XL"
	default:
		return fmt.Sprintf("SizeClass(%d)", int(c))
	}
}

// Classify buckets a footprint per the paper's definition for a SoC.
func Classify(bytes int64, cfg *soc.Config) SizeClass {
	switch {
	case bytes <= cfg.L2Bytes():
		return Small
	case bytes <= cfg.LLCSliceBytes():
		return Medium
	case bytes <= cfg.TotalLLCBytes():
		return Large
	default:
		return ExtraLarge
	}
}

// ClassBytes returns a representative footprint for a class on a SoC:
// the class midpoint (Small uses half the L2, ExtraLarge four times the
// aggregate LLC ceiling of Large).
func ClassBytes(c SizeClass, cfg *soc.Config) int64 {
	switch c {
	case Small:
		return cfg.L2Bytes() / 2
	case Medium:
		return (cfg.L2Bytes() + cfg.LLCSliceBytes()) / 2
	case Large:
		return (cfg.LLCSliceBytes() + cfg.TotalLLCBytes()) / 2
	default:
		return cfg.TotalLLCBytes() * 2
	}
}

// ThreadSpec is one software thread: a dataset and a chain of
// accelerator invocations operating serially on it.
type ThreadSpec struct {
	Name string
	// FootprintBytes is the dataset size.
	FootprintBytes int64
	// Chain lists accelerator instance names invoked in order.
	Chain []string
	// Loops repeats the chain (≥1).
	Loops int
	// RewriteFraction of the dataset is re-initialized by the CPU between
	// loops (producing fresh inputs).
	RewriteFraction float64
	// ReadbackFraction of the dataset is read by the CPU after the final
	// loop (consuming outputs).
	ReadbackFraction float64
}

// Invocations returns the number of accelerator invocations the thread
// performs.
func (t *ThreadSpec) Invocations() int { return len(t.Chain) * t.Loops }

// Validate reports specification errors against a SoC configuration.
func (t *ThreadSpec) Validate(cfg *soc.Config) error {
	if t.FootprintBytes <= 0 {
		return fmt.Errorf("workload: thread %s with footprint %d", t.Name, t.FootprintBytes)
	}
	if t.Loops < 1 {
		return fmt.Errorf("workload: thread %s with %d loops", t.Name, t.Loops)
	}
	if len(t.Chain) == 0 {
		return fmt.Errorf("workload: thread %s with empty chain", t.Name)
	}
	known := make(map[string]bool)
	for _, a := range cfg.Accs {
		known[a.InstName] = true
	}
	for _, inst := range t.Chain {
		if !known[inst] {
			return fmt.Errorf("workload: thread %s references unknown accelerator %q", t.Name, inst)
		}
	}
	if t.RewriteFraction < 0 || t.RewriteFraction > 1 || t.ReadbackFraction < 0 || t.ReadbackFraction > 1 {
		return fmt.Errorf("workload: thread %s with bad touch fractions", t.Name)
	}
	return nil
}

// PhaseSpec is one application phase: threads launched together; the
// phase ends when all finish.
type PhaseSpec struct {
	Name    string
	Threads []ThreadSpec
}

// Invocations returns the phase's total invocation count.
func (p *PhaseSpec) Invocations() int {
	n := 0
	for i := range p.Threads {
		n += p.Threads[i].Invocations()
	}
	return n
}

// App is a complete evaluation application: phases run sequentially.
type App struct {
	Name   string
	Phases []PhaseSpec
}

// Invocations returns the app's total invocation count.
func (a *App) Invocations() int {
	n := 0
	for i := range a.Phases {
		n += a.Phases[i].Invocations()
	}
	return n
}

// Footprints returns the distinct thread footprints of the app in
// ascending order — the inputs at which an accelerator's Reuse function
// can be evaluated during a run (content-keyed memoization probes it
// exactly there).
func (a *App) Footprints() []int64 {
	seen := make(map[int64]bool)
	var out []int64
	for pi := range a.Phases {
		for ti := range a.Phases[pi].Threads {
			fp := a.Phases[pi].Threads[ti].FootprintBytes
			if !seen[fp] {
				seen[fp] = true
				out = append(out, fp)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HashContent writes a canonical encoding of the complete application
// specification to w, for content-keyed memoization of simulation runs.
func (a *App) HashContent(w io.Writer) {
	fmt.Fprintf(w, "app|%s|%d\n", a.Name, len(a.Phases))
	for pi := range a.Phases {
		p := &a.Phases[pi]
		fmt.Fprintf(w, "phase|%s|%d\n", p.Name, len(p.Threads))
		for ti := range p.Threads {
			t := &p.Threads[ti]
			fmt.Fprintf(w, "thread|%s|%d|%d|%g|%g|%d\n",
				t.Name, t.FootprintBytes, t.Loops,
				t.RewriteFraction, t.ReadbackFraction, len(t.Chain))
			for _, inst := range t.Chain {
				fmt.Fprintf(w, "inv|%s\n", inst)
			}
		}
	}
}

// Validate checks every thread against the SoC configuration.
func (a *App) Validate(cfg *soc.Config) error {
	if len(a.Phases) == 0 {
		return fmt.Errorf("workload: app %s has no phases", a.Name)
	}
	for i := range a.Phases {
		for j := range a.Phases[i].Threads {
			if err := a.Phases[i].Threads[j].Validate(cfg); err != nil {
				return err
			}
		}
	}
	return nil
}
