package workload

import (
	"testing"

	"cohmeleon/internal/esp"
	"cohmeleon/internal/policy"
	"cohmeleon/internal/soc"
)

func TestSizeClassNamesAndClassify(t *testing.T) {
	cfg := soc.SoC1(1) // 32 kB L2, 256 kB slices, 1 MB total LLC
	if Small.String() != "S" || Medium.String() != "M" || Large.String() != "L" || ExtraLarge.String() != "XL" {
		t.Fatal("class names wrong")
	}
	cases := []struct {
		bytes int64
		want  SizeClass
	}{
		{16 << 10, Small},
		{32 << 10, Small},
		{128 << 10, Medium},
		{256 << 10, Medium},
		{512 << 10, Large},
		{1 << 20, Large},
		{2 << 20, ExtraLarge},
	}
	for _, c := range cases {
		if got := Classify(c.bytes, cfg); got != c.want {
			t.Errorf("Classify(%d) = %v, want %v", c.bytes, got, c.want)
		}
	}
}

func TestClassBytesRoundTrip(t *testing.T) {
	cfg := soc.SoC1(1)
	for c := Small; c < NumSizeClasses; c++ {
		if got := Classify(ClassBytes(c, cfg), cfg); got != c {
			t.Errorf("ClassBytes(%v) classifies as %v", c, got)
		}
	}
}

// mustGenerate fails the test on generator errors (preset SoCs have no
// degenerate geometry, so errors here are always bugs).
func mustGenerate(t *testing.T, cfg *soc.Config, g GenConfig, seed uint64) *App {
	t.Helper()
	app, err := Generate(cfg, g, seed)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	cfg := soc.SoC1(7)
	a := mustGenerate(t, cfg, GenConfig{}, 42)
	b := mustGenerate(t, cfg, GenConfig{}, 42)
	if a.Invocations() != b.Invocations() || len(a.Phases) != len(b.Phases) {
		t.Fatal("generator not deterministic")
	}
	if err := a.Validate(cfg); err != nil {
		t.Fatal(err)
	}
	if a.Invocations() < 300 {
		t.Fatalf("generated app has %d invocations, want ≥ 300", a.Invocations())
	}
	c := mustGenerate(t, cfg, GenConfig{}, 43)
	if c.Invocations() == a.Invocations() && len(c.Phases) == len(a.Phases) &&
		c.Phases[0].Threads[0].FootprintBytes == a.Phases[0].Threads[0].FootprintBytes {
		t.Fatal("different seeds produced identical apps")
	}
}

func TestGenerateRespectsClassRestriction(t *testing.T) {
	cfg := soc.SoC1(7)
	app := mustGenerate(t, cfg, GenConfig{Classes: []SizeClass{Small}, MinInvocations: 50}, 1)
	for _, ph := range app.Phases {
		for _, th := range ph.Threads {
			if got := Classify(th.FootprintBytes, cfg); got != Small {
				t.Fatalf("thread footprint %d classed %v, want Small", th.FootprintBytes, got)
			}
		}
	}
}

func TestFigure5AppShape(t *testing.T) {
	cfg := soc.SoC0(soc.TrafficMixed, 3)
	app, err := Figure5App(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Validate(cfg); err != nil {
		t.Fatal(err)
	}
	wantThreads := []int{10, 4, 6, 3}
	wantNames := []string{"10 Threads: Small", "4 Threads: Medium", "6 Threads: Large", "3 Threads: Variable"}
	if len(app.Phases) != 4 {
		t.Fatalf("%d phases, want 4", len(app.Phases))
	}
	for i, ph := range app.Phases {
		if ph.Name != wantNames[i] {
			t.Errorf("phase %d = %q, want %q", i, ph.Name, wantNames[i])
		}
		if len(ph.Threads) != wantThreads[i] {
			t.Errorf("phase %q has %d threads, want %d", ph.Name, len(ph.Threads), wantThreads[i])
		}
	}
	for _, th := range app.Phases[0].Threads {
		if Classify(th.FootprintBytes, cfg) != Small {
			t.Error("Small phase contains non-small thread")
		}
	}
}

func TestCaseStudyAppsValidate(t *testing.T) {
	soc5 := soc.SoC5()
	ad, err := AutonomousDrivingApp(soc5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ad.Validate(soc5); err != nil {
		t.Fatal(err)
	}
	if len(ad.Phases) != 3 {
		t.Fatalf("autonomous driving has %d phases", len(ad.Phases))
	}
	soc6 := soc.SoC6()
	cv, err := ComputerVisionApp(soc6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cv.Validate(soc6); err != nil {
		t.Fatal(err)
	}
	// Every SoC6 thread is the 3-stage pipeline.
	for _, ph := range cv.Phases {
		for _, th := range ph.Threads {
			if len(th.Chain) != 3 {
				t.Fatalf("vision chain length %d, want 3", len(th.Chain))
			}
		}
	}
}

func TestAppForDispatch(t *testing.T) {
	mustApp := func(cfg *soc.Config) *App {
		t.Helper()
		app, err := AppFor(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		return app
	}
	if app := mustApp(soc.SoC5()); app.Name != "SoC5-autonomous-driving" {
		t.Fatalf("SoC5 app = %q", app.Name)
	}
	if app := mustApp(soc.SoC6()); app.Name != "SoC6-computer-vision" {
		t.Fatalf("SoC6 app = %q", app.Name)
	}
	if app := mustApp(soc.SoC1(1)); app.Invocations() < 300 {
		t.Fatalf("generated app too small: %d", app.Invocations())
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cfg := soc.SoC1(1)
	bad := &App{Name: "bad", Phases: []PhaseSpec{{
		Name:    "p",
		Threads: []ThreadSpec{{Name: "t", FootprintBytes: 1 << 10, Chain: []string{"ghost"}, Loops: 1}},
	}}}
	if err := bad.Validate(cfg); err == nil {
		t.Fatal("unknown accelerator should fail validation")
	}
	empty := &App{Name: "empty"}
	if err := empty.Validate(cfg); err == nil {
		t.Fatal("empty app should fail validation")
	}
	zeroLoops := &App{Name: "z", Phases: []PhaseSpec{{
		Name:    "p",
		Threads: []ThreadSpec{{Name: "t", FootprintBytes: 1 << 10, Chain: []string{cfg.Accs[0].InstName}, Loops: 0}},
	}}}
	if err := zeroLoops.Validate(cfg); err == nil {
		t.Fatal("zero loops should fail validation")
	}
}

// buildSmallApp returns a tiny app + SoC for end-to-end runner tests.
func buildSmallApp(t *testing.T) (*soc.SoC, *App) {
	t.Helper()
	cfg := soc.SoC1(9)
	s, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	app := &App{
		Name: "tiny",
		Phases: []PhaseSpec{
			{Name: "p0", Threads: []ThreadSpec{
				{Name: "t0", FootprintBytes: 16 << 10, Chain: []string{cfg.Accs[0].InstName}, Loops: 2, ReadbackFraction: 0.25},
				{Name: "t1", FootprintBytes: 64 << 10, Chain: []string{cfg.Accs[1].InstName, cfg.Accs[2].InstName}, Loops: 1},
			}},
			{Name: "p1", Threads: []ThreadSpec{
				{Name: "t0", FootprintBytes: 32 << 10, Chain: []string{cfg.Accs[3].InstName}, Loops: 1},
			}},
		},
	}
	return s, app
}

func TestRunProducesPhaseResults(t *testing.T) {
	s, app := buildSmallApp(t)
	sys := esp.NewSystem(s, policy.NewFixed(soc.CohDMA))
	res, err := Run(sys, app, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 2 {
		t.Fatalf("%d phase results", len(res.Phases))
	}
	if res.Phases[0].Cycles <= 0 || res.Phases[1].Cycles <= 0 {
		t.Fatal("phases took no time")
	}
	wantInv := app.Invocations()
	if got := len(res.AllInvocations()); got != wantInv {
		t.Fatalf("recorded %d invocations, want %d", got, wantInv)
	}
	if res.Policy != "fixed-coh-dma" {
		t.Fatalf("policy name %q", res.Policy)
	}
	if res.Cycles < res.Phases[0].Cycles+res.Phases[1].Cycles {
		t.Fatal("total cycles less than phase sum")
	}
	if len(res.ExecSeries()) != 2 || len(res.MemSeries()) != 2 {
		t.Fatal("series lengths wrong")
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() (c int64, off int64) {
		s, app := buildSmallApp(t)
		sys := esp.NewSystem(s, policy.NewFixed(soc.LLCCohDMA))
		res, err := Run(sys, app, 5)
		if err != nil {
			t.Fatal(err)
		}
		return int64(res.Cycles), res.OffChip
	}
	c1, o1 := run()
	c2, o2 := run()
	if c1 != c2 || o1 != o2 {
		t.Fatalf("non-deterministic run: (%d,%d) vs (%d,%d)", c1, o1, c2, o2)
	}
}

func TestRunPoliciesDiffer(t *testing.T) {
	measure := func(p esp.Policy) int64 {
		s, app := buildSmallApp(t)
		sys := esp.NewSystem(s, p)
		res, err := Run(sys, app, 5)
		if err != nil {
			t.Fatal(err)
		}
		return res.OffChip
	}
	nonCoh := measure(policy.NewFixed(soc.NonCohDMA))
	cohDMA := measure(policy.NewFixed(soc.CohDMA))
	if nonCoh <= cohDMA {
		t.Fatalf("non-coh off-chip (%d) should exceed coh-dma (%d) for warm workloads", nonCoh, cohDMA)
	}
}

func TestRunFreesAllBuffers(t *testing.T) {
	s, app := buildSmallApp(t)
	sys := esp.NewSystem(s, policy.NewFixed(soc.CohDMA))
	if _, err := Run(sys, app, 5); err != nil {
		t.Fatal(err)
	}
	for pidx := 0; pidx < s.Map.Partitions(); pidx++ {
		if used := s.Heap.UsedBytes(pidx); used != 0 {
			t.Fatalf("partition %d leaked %d bytes", pidx, used)
		}
	}
}

func TestRunRejectsInvalidApp(t *testing.T) {
	s, _ := buildSmallApp(t)
	sys := esp.NewSystem(s, policy.NewFixed(soc.CohDMA))
	bad := &App{Name: "bad", Phases: []PhaseSpec{{Name: "p", Threads: []ThreadSpec{
		{Name: "t", FootprintBytes: 1 << 10, Chain: []string{"ghost"}, Loops: 1},
	}}}}
	if _, err := Run(sys, bad, 1); err == nil {
		t.Fatal("invalid app should be rejected")
	}
}

func TestThreadInvocationsCount(t *testing.T) {
	th := ThreadSpec{Chain: []string{"a", "b"}, Loops: 3}
	if th.Invocations() != 6 {
		t.Fatalf("Invocations = %d", th.Invocations())
	}
}
