package workload

import (
	"strings"
	"testing"

	"cohmeleon/internal/acc"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
)

// geomCfg builds a minimal config with the given cache/memory geometry.
// It is never built into a SoC — these tests exercise the pure
// footprint arithmetic — so a single accelerator instance suffices.
func geomCfg(l2KB, llcSliceKB, memTiles int) *soc.Config {
	return &soc.Config{
		Name: "geom", MeshW: 5, MeshH: 5, CPUs: 1, MemTiles: memTiles,
		LLCSliceKB: llcSliceKB, L2KB: l2KB,
		Accs: []soc.AccInstance{
			{InstName: "fft.0", Spec: acc.MustByName(acc.FFT), PrivateCache: true},
		},
		Params: soc.DefaultParams(),
	}
}

// TestClassRangeDegenerateGeometries is the regression matrix for the
// inverted-range panic: before the fix, any geometry where a class's
// nominal lower bound exceeded its upper bound (big L2 vs small LLC
// slice, single memory tile collapsing Large onto Medium) made
// sampleBytes call rng.Int63n with a non-positive argument and panic.
func TestClassRangeDegenerateGeometries(t *testing.T) {
	cases := []struct {
		name    string
		cfg     *soc.Config
		classes []SizeClass
	}{
		// L2 (256 kB) dwarfs the LLC slice (64 kB): Medium inverts.
		{"huge-L2-tiny-LLC", geomCfg(256, 64, 2), []SizeClass{Small, Medium, Large, ExtraLarge}},
		// L2 as big as the aggregate LLC: Medium and Large both invert.
		{"L2-exceeds-total-LLC", geomCfg(1024, 128, 2), []SizeClass{Small, Medium, Large, ExtraLarge}},
		// Single memory tile: TotalLLC == slice, Large collapses.
		{"single-memory-tile", geomCfg(32, 256, 1), []SizeClass{Small, Medium, Large, ExtraLarge}},
		// Tiny L2 below the 4 kB floor: Small inverts.
		{"tiny-L2", geomCfg(1, 256, 2), []SizeClass{Small, Medium, Large, ExtraLarge}},
		// Everything degenerate at once.
		{"all-degenerate", geomCfg(2048, 16, 1), []SizeClass{Small, Medium, Large, ExtraLarge}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := sim.NewRNG(1)
			for _, c := range tc.classes {
				lo, hi, err := classRange(c, tc.cfg)
				if err != nil {
					t.Fatalf("classRange(%v) error: %v", c, err)
				}
				if lo < minFootprintBytes || hi < lo {
					t.Fatalf("classRange(%v) = [%d, %d], want ordered bounds ≥ %d", c, lo, hi, minFootprintBytes)
				}
				// The pre-fix code panicked here for inverted ranges.
				b, err := sampleBytes(c, tc.cfg, rng)
				if err != nil {
					t.Fatalf("sampleBytes(%v) error: %v", c, err)
				}
				if b < minFootprintBytes {
					t.Fatalf("sampleBytes(%v) = %d below the floor", c, b)
				}
			}
		})
	}
}

// TestClassRangeImpossibleClass: a class whose lower bound exceeds the
// SoC's entire DRAM cannot be clamped into existence and must be an
// error, not a panic and not a silent unallocatable footprint.
func TestClassRangeImpossibleClass(t *testing.T) {
	cfg := geomCfg(4096, 16, 1) // 4 MB L2
	cfg.Params.DRAMPartitionMB = 2
	if _, _, err := classRange(Medium, cfg); err == nil {
		t.Fatal("Medium lower bound (4 MB+1) exceeds DRAM (2 MB); want error")
	} else if !strings.Contains(err.Error(), "impossible") {
		t.Fatalf("unexpected error text: %v", err)
	}
	if _, err := sampleBytes(Medium, cfg, sim.NewRNG(1)); err == nil {
		t.Fatal("sampleBytes should propagate the impossible-class error")
	}
	if _, err := Generate(cfg, GenConfig{Classes: []SizeClass{Medium}, MinInvocations: 10}, 1); err == nil {
		t.Fatal("Generate should fail for an impossible class, not panic")
	}
	// Small still fits and must keep working on the same config.
	if _, err := Generate(cfg, GenConfig{Classes: []SizeClass{Small}, MinInvocations: 10}, 1); err != nil {
		t.Fatalf("Small should remain generable: %v", err)
	}
}

// TestClassRangeCapsAtDRAM: upper bounds clamp to DRAM capacity so
// sampled footprints are always allocatable.
func TestClassRangeCapsAtDRAM(t *testing.T) {
	cfg := geomCfg(32, 2048, 1) // XL band nominally up to 6 MB
	cfg.Params.DRAMPartitionMB = 4
	lo, hi, err := classRange(ExtraLarge, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dram := cfg.DRAMBytes(); hi > dram {
		t.Fatalf("hi %d exceeds DRAM %d", hi, dram)
	}
	if hi < lo {
		t.Fatalf("bounds inverted after cap: [%d, %d]", lo, hi)
	}
}

// TestSampleBytesStaysInClass: on regular geometry a sampled footprint
// must classify as the requested class even for boundary draws — the
// KB rounding rounds up, never down out of the class.
func TestSampleBytesStaysInClass(t *testing.T) {
	cfg := soc.SoC1(1)
	rng := sim.NewRNG(3)
	for _, c := range []SizeClass{Small, Medium, Large, ExtraLarge} {
		for i := 0; i < 200; i++ {
			b, err := sampleBytes(c, cfg, rng)
			if err != nil {
				t.Fatal(err)
			}
			if got := Classify(b, cfg); got != c {
				t.Fatalf("sampleBytes(%v) = %d classifies as %v", c, b, got)
			}
		}
	}
}

// TestClassFeasible mirrors the clamp/error split of classRange.
func TestClassFeasible(t *testing.T) {
	if err := ClassFeasible(Medium, geomCfg(256, 64, 2)); err != nil {
		t.Fatalf("degenerate-but-clampable class reported infeasible: %v", err)
	}
	impossible := geomCfg(4096, 16, 1)
	impossible.Params.DRAMPartitionMB = 2
	if err := ClassFeasible(Medium, impossible); err == nil {
		t.Fatal("class beyond DRAM reported feasible")
	}
}

// TestGenerateOnDegenerateGeometry: the full generator survives a
// geometry that used to panic, and its apps validate and classify.
func TestGenerateOnDegenerateGeometry(t *testing.T) {
	cfg := geomCfg(256, 64, 1)
	app, err := Generate(cfg, GenConfig{MinInvocations: 30}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Validate(cfg); err != nil {
		t.Fatal(err)
	}
	if app.Invocations() < 30 {
		t.Fatalf("undersized app: %d invocations", app.Invocations())
	}
}
