package workload

import (
	"fmt"

	"cohmeleon/internal/acc"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
)

// Figure5App builds the four selected phases of Figure 5, which vary
// thread count and workload size: 10 threads of Small workloads, 4 of
// Medium, 6 of Large, and 3 of Variable sizes.
func Figure5App(cfg *soc.Config, seed uint64) (*App, error) {
	rng := sim.NewRNG(seed ^ 0xf16f5)
	g := GenConfig{}.withDefaults()
	app := &App{Name: cfg.Name + "-figure5"}

	mk := func(name string, threads int, classes []SizeClass) (PhaseSpec, error) {
		phase := PhaseSpec{Name: name}
		for ti := 0; ti < threads; ti++ {
			class := classes[rng.Intn(len(classes))]
			ts, err := randomThread(fmt.Sprintf("t%d", ti), cfg, g, class, rng)
			if err != nil {
				return PhaseSpec{}, err
			}
			phase.Threads = append(phase.Threads, ts)
		}
		return phase, nil
	}
	specs := []struct {
		name    string
		threads int
		classes []SizeClass
	}{
		{"10 Threads: Small", 10, []SizeClass{Small}},
		{"4 Threads: Medium", 4, []SizeClass{Medium}},
		{"6 Threads: Large", 6, []SizeClass{Large}},
		{"3 Threads: Variable", 3, []SizeClass{Small, Medium, Large, ExtraLarge}},
	}
	for _, s := range specs {
		phase, err := mk(s.name, s.threads, s.classes)
		if err != nil {
			return nil, err
		}
		app.Phases = append(app.Phases, phase)
	}
	return app, nil
}

// instancesOf returns the SoC's instance names for one spec, in index
// order; it panics if none exist (case-study apps are built for their
// matching SoCs).
func instancesOf(cfg *soc.Config, specName string) []string {
	var out []string
	for _, a := range cfg.Accs {
		if a.Spec.Name == specName {
			out = append(out, a.InstName)
		}
	}
	if len(out) == 0 {
		panic(fmt.Sprintf("workload: SoC %s has no %s instances", cfg.Name, specName))
	}
	return out
}

// AutonomousDrivingApp is the SoC5 case study: V2V communication
// pipelines (FFT ↔ Viterbi) and CNN inference pipelines
// (Conv-2D → GEMM), mirroring the collaborative-autonomous-vehicle
// workload the paper targets.
func AutonomousDrivingApp(cfg *soc.Config, seed uint64) (*App, error) {
	rng := sim.NewRNG(seed ^ 0xad5)
	ffts := instancesOf(cfg, acc.FFT)
	vits := instancesOf(cfg, acc.Viterbi)
	convs := instancesOf(cfg, acc.Conv2D)
	gemms := instancesOf(cfg, acc.GEMM)

	var threadErr error
	thread := func(name string, chain []string, class SizeClass, loops int) ThreadSpec {
		bytes, err := sampleBytes(class, cfg, rng)
		if err != nil && threadErr == nil {
			threadErr = err
		}
		return ThreadSpec{
			Name:             name,
			FootprintBytes:   bytes,
			Chain:            chain,
			Loops:            loops,
			RewriteFraction:  0.25,
			ReadbackFraction: 0.25,
		}
	}
	app := &App{Name: cfg.Name + "-autonomous-driving"}
	// Phase 1: V2V decode bursts — small frames, many iterations.
	v2v := PhaseSpec{Name: "v2v-decode"}
	for i := 0; i < 4; i++ {
		v2v.Threads = append(v2v.Threads, thread(
			fmt.Sprintf("v2v%d", i),
			[]string{ffts[i%len(ffts)], vits[i%len(vits)]},
			Small, 3))
	}
	// Phase 2: camera-frame CNN inference — medium/large tensors.
	cnn := PhaseSpec{Name: "cnn-inference"}
	for i := 0; i < 4; i++ {
		class := Medium
		if i%2 == 1 {
			class = Large
		}
		cnn.Threads = append(cnn.Threads, thread(
			fmt.Sprintf("cnn%d", i),
			[]string{convs[i%len(convs)], gemms[i%len(gemms)]},
			class, 2))
	}
	// Phase 3: full stack — decoding and inference concurrently, plus a
	// map-fusion job over an extra-large dataset.
	full := PhaseSpec{Name: "full-stack"}
	full.Threads = append(full.Threads,
		thread("v2v-a", []string{ffts[0], vits[0]}, Small, 3),
		thread("v2v-b", []string{ffts[1%len(ffts)], vits[1%len(vits)]}, Medium, 2),
		thread("cnn-a", []string{convs[0], gemms[0]}, Medium, 2),
		thread("cnn-b", []string{convs[1%len(convs)], gemms[1%len(gemms)]}, Large, 2),
		thread("map-fusion", []string{gemms[0], gemms[1%len(gemms)]}, ExtraLarge, 1),
	)
	app.Phases = []PhaseSpec{v2v, cnn, full}
	if threadErr != nil {
		return nil, threadErr
	}
	return app, nil
}

// ComputerVisionApp is the SoC6 case study: three parallel instances of
// the night-vision → autoencoder → MLP classification pipeline
// (undarken, denoise, classify), swept over image batch sizes.
func ComputerVisionApp(cfg *soc.Config, seed uint64) (*App, error) {
	rng := sim.NewRNG(seed ^ 0xc6)
	nvs := instancesOf(cfg, acc.NightVision)
	aes := instancesOf(cfg, acc.Autoencoder)
	mlps := instancesOf(cfg, acc.MLP)

	var threadErr error
	pipeline := func(name string, i int, class SizeClass, loops int) ThreadSpec {
		bytes, err := sampleBytes(class, cfg, rng)
		if err != nil && threadErr == nil {
			threadErr = err
		}
		return ThreadSpec{
			Name:             name,
			FootprintBytes:   bytes,
			Chain:            []string{nvs[i%len(nvs)], aes[i%len(aes)], mlps[i%len(mlps)]},
			Loops:            loops,
			RewriteFraction:  0.5, // fresh camera frames each iteration
			ReadbackFraction: 0.1, // only the classification is consumed
		}
	}
	app := &App{Name: cfg.Name + "-computer-vision"}
	for _, class := range []SizeClass{Small, Medium, Large} {
		phase := PhaseSpec{Name: fmt.Sprintf("batch-%s", class)}
		for i := 0; i < 3; i++ {
			phase.Threads = append(phase.Threads, pipeline(fmt.Sprintf("cam%d", i), i, class, 2))
		}
		app.Phases = append(app.Phases, phase)
	}
	// Mixed phase: cameras at different resolutions.
	mixed := PhaseSpec{Name: "mixed-batch"}
	for i, class := range []SizeClass{Small, Medium, ExtraLarge} {
		mixed.Threads = append(mixed.Threads, pipeline(fmt.Sprintf("cam%d", i), i, class, 2))
	}
	app.Phases = append(app.Phases, mixed)
	if threadErr != nil {
		return nil, threadErr
	}
	return app, nil
}

// AppFor returns the evaluation application matched to a SoC: the case
// studies for SoC5/SoC6, and a generated mixed application (seeded)
// otherwise — including SoC4, whose "application" in the paper invokes
// its many heterogeneous accelerators from parallel threads.
func AppFor(cfg *soc.Config, seed uint64) (*App, error) {
	switch cfg.Name {
	case "SoC5":
		return AutonomousDrivingApp(cfg, seed)
	case "SoC6":
		return ComputerVisionApp(cfg, seed)
	default:
		return Generate(cfg, GenConfig{}, seed)
	}
}
