package workload

import (
	"fmt"

	"cohmeleon/internal/esp"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
)

// PhaseResult is what the harness measures per phase: wall-clock cycles
// and the off-chip access counter delta, plus every invocation result.
type PhaseResult struct {
	Name        string
	Cycles      sim.Cycles
	OffChip     int64
	Invocations []*esp.Result
}

// AppResult aggregates one application run.
type AppResult struct {
	App     *App
	Policy  string
	Phases  []PhaseResult
	Cycles  sim.Cycles
	OffChip int64
}

// ExecSeries returns per-phase execution times as floats (for
// normalization).
func (r *AppResult) ExecSeries() []float64 {
	out := make([]float64, len(r.Phases))
	for i := range r.Phases {
		out[i] = float64(r.Phases[i].Cycles)
	}
	return out
}

// MemSeries returns per-phase off-chip access counts as floats.
func (r *AppResult) MemSeries() []float64 {
	out := make([]float64, len(r.Phases))
	for i := range r.Phases {
		out[i] = float64(r.Phases[i].OffChip)
	}
	return out
}

// AllInvocations flattens the per-phase invocation results.
func (r *AppResult) AllInvocations() []*esp.Result {
	var out []*esp.Result
	for i := range r.Phases {
		out = append(out, r.Phases[i].Invocations...)
	}
	return out
}

// Run executes the application on the system and returns the
// measurements. Each run needs a fresh SoC (hardware state persists);
// the policy, by design, may persist across runs to keep learning.
// seed drives the threads' irregular-access randomness.
func Run(sys *esp.System, app *App, seed uint64) (*AppResult, error) {
	s := sys.SoC
	if err := app.Validate(s.Cfg); err != nil {
		return nil, err
	}
	res := &AppResult{App: app, Policy: sys.Policy.Name()}
	var runErr error

	s.Eng.Go("app:"+app.Name, func(p *sim.Proc) {
		appStart := p.Now()
		ddrStart := s.DDRSum()
		// One join group for the whole run: its counter returns to zero at
		// every phase boundary, so reusing it across phases is safe and
		// keeps the waiter storage warm.
		wg := sim.NewWaitGroup(s.Eng)
		for pi := range app.Phases {
			phase := &app.Phases[pi]
			pr := PhaseResult{Name: phase.Name}
			phaseStart := p.Now()
			phaseDDR := s.DDRSum()
			for ti := range phase.Threads {
				ts := &phase.Threads[ti]
				wg.Add(1)
				tRNG := sim.NewRNG(seed ^ (uint64(pi)<<32 | uint64(ti)<<1 | 1))
				cpuTile := s.CPUs[ti%len(s.CPUs)]
				s.Eng.Go(fmt.Sprintf("%s/%s", phase.Name, ts.Name), func(q *sim.Proc) {
					defer wg.Done()
					results, err := runThread(sys, q, ts, cpuTile, tRNG)
					if err != nil && runErr == nil {
						runErr = err
						return
					}
					pr.Invocations = append(pr.Invocations, results...)
				})
			}
			wg.Wait(p)
			pr.Cycles = p.Now() - phaseStart
			pr.OffChip = s.DDRSum() - phaseDDR
			res.Phases = append(res.Phases, pr)
		}
		res.Cycles = p.Now() - appStart
		res.OffChip = s.DDRSum() - ddrStart
	})
	if err := s.Eng.Run(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// runThread is the life of one software thread: allocate, initialize,
// loop over the accelerator chain, touch outputs, free.
func runThread(sys *esp.System, p *sim.Proc, ts *ThreadSpec, cpuTile *soc.CPUTile, rng *sim.RNG) ([]*esp.Result, error) {
	s := sys.SoC
	buf, err := s.Heap.Alloc(ts.FootprintBytes)
	if err != nil {
		return nil, fmt.Errorf("thread %s: %w", ts.Name, err)
	}
	defer s.Heap.Free(buf)
	var results []*esp.Result

	// Initialize the dataset (data is warm before the first invocation).
	s.CPUPool.Acquire(p)
	p.WaitUntil(s.CPUTouchRange(cpuTile, buf, 0, buf.Lines(), true, p.Now(), &soc.Meter{}))

	for loop := 0; loop < ts.Loops; loop++ {
		if loop > 0 && ts.RewriteFraction > 0 {
			lines := int64(float64(buf.Lines()) * ts.RewriteFraction)
			if lines > 0 {
				p.WaitUntil(s.CPUTouchRange(cpuTile, buf, 0, lines, true, p.Now(), &soc.Meter{}))
			}
		}
		for _, inst := range ts.Chain {
			a, err := s.AccByName(inst)
			if err != nil {
				s.CPUPool.Release()
				return nil, err
			}
			// Wait for the accelerator without holding a CPU.
			if !a.Busy.TryAcquire() {
				s.CPUPool.Release()
				a.Busy.Acquire(p)
				s.CPUPool.Acquire(p)
			}
			res := sys.Invoke(p, a, buf, s.CPUPool, rng.Split())
			a.Busy.Release()
			results = append(results, res)
		}
	}
	if ts.ReadbackFraction > 0 {
		lines := int64(float64(buf.Lines()) * ts.ReadbackFraction)
		if lines > 0 {
			p.WaitUntil(s.CPUTouchRange(cpuTile, buf, 0, lines, false, p.Now(), &soc.Meter{}))
		}
	}
	s.CPUPool.Release()
	return results, nil
}
