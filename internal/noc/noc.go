// Package noc models the ESP-style 2D-mesh network-on-chip: a W×H grid
// of routers with one cycle of latency between neighbours, six 32-bit
// physical planes, and XY dimension-order routing. Messages are modelled
// at transaction granularity: a transfer reserves bandwidth on every
// directed link along its path and accumulates head latency, so hotspot
// congestion near memory tiles emerges from overlapping reservations.
package noc

import (
	"fmt"

	"cohmeleon/internal/sim"
)

// Plane identifies one of the six physical NoC planes. ESP dedicates
// separate planes to coherence requests, responses, and forwards (to
// avoid protocol deadlock) and to DMA request/data traffic; the sixth
// carries interrupts and register accesses.
type Plane int

// The six planes, named by the traffic class they carry.
const (
	PlaneCohReq  Plane = iota // coherence requests (GetS/GetM/PutM headers)
	PlaneCohRsp               // coherence responses (data to/from caches)
	PlaneCohFwd               // forwards: recalls and invalidations
	PlaneDMAReq               // DMA request headers
	PlaneDMAData              // DMA data payloads
	PlaneMisc                 // interrupts, configuration, monitors
	NumPlanes
)

// String returns the conventional ESP plane name.
func (p Plane) String() string {
	switch p {
	case PlaneCohReq:
		return "coh-req"
	case PlaneCohRsp:
		return "coh-rsp"
	case PlaneCohFwd:
		return "coh-fwd"
	case PlaneDMAReq:
		return "dma-req"
	case PlaneDMAData:
		return "dma-data"
	case PlaneMisc:
		return "misc"
	default:
		return fmt.Sprintf("plane(%d)", int(p))
	}
}

// FlitBytes is the width of every NoC plane: 32 bits, per the paper.
const FlitBytes = 4

// HopCycles is the router-to-router latency: one cycle, per the paper.
const HopCycles = 1

// HeaderFlits is the per-message header overhead in flits.
const HeaderFlits = 1

// Coord is a tile position on the mesh.
type Coord struct{ X, Y int }

// Mesh is the NoC fabric. It owns one FIFO link server per directed link
// per plane. Tiles are addressed by their mesh coordinate.
//
// A link's entire hot state is its availability cursor, so links are
// stored as bare sim.Cycles values — eight per hardware cache line — in
// one flat array indexed by (plane, linkIndex). Per-link busy accounting
// is folded into a per-plane total: reports only ever read the plane
// sum, and a transfer reserves the same service time on every link of
// its route, so one multiply per message replaces a store per hop.
type Mesh struct {
	width, height int
	// links[plane*linkCount + linkIndex] is the availableAt cursor of a
	// directed link; linkIndex encodes (from, direction).
	links     []sim.Cycles
	linkCount int
	// Flattened XY routes, precomputed at construction: the link indices
	// of route src->dst are routeLinks[routeOff[ri]:routeOff[ri+1]] with
	// ri = srcTile*tiles + dstTile. Offsets into one backing array keep
	// the lookup tables dense (4 bytes per entry instead of a 24-byte
	// slice header per pair); routes are static and Transfer walks one on
	// every simulated message.
	routeOff   []int32
	routeLinks []int32
	// planeBusy accumulates the total reserved service time per plane.
	planeBusy [NumPlanes]sim.Cycles
}

// direction indices for the four mesh neighbours.
const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
	numDirs
)

// NewMesh builds a width×height mesh with all links idle.
func NewMesh(width, height int) *Mesh {
	if width <= 0 || height <= 0 {
		panic("noc: mesh dimensions must be positive")
	}
	m := &Mesh{width: width, height: height}
	m.linkCount = width * height * numDirs
	m.links = make([]sim.Cycles, int(NumPlanes)*m.linkCount)
	m.buildRoutes()
	return m
}

// buildRoutes precomputes the XY route of every (src, dst) tile pair as
// a list of link indices in one backing array, addressed by offsets.
func (m *Mesh) buildRoutes() {
	tiles := m.width * m.height
	m.routeOff = make([]int32, tiles*tiles+1)
	var backing []int32
	ri := 0
	for sy := 0; sy < m.height; sy++ {
		for sx := 0; sx < m.width; sx++ {
			for dy := 0; dy < m.height; dy++ {
				for dx := 0; dx < m.width; dx++ {
					x, y := sx, sy
					for x < dx {
						backing = append(backing, int32(m.linkIndex(Coord{x, y}, dirEast)))
						x++
					}
					for x > dx {
						backing = append(backing, int32(m.linkIndex(Coord{x, y}, dirWest)))
						x--
					}
					for y < dy {
						backing = append(backing, int32(m.linkIndex(Coord{x, y}, dirSouth)))
						y++
					}
					for y > dy {
						backing = append(backing, int32(m.linkIndex(Coord{x, y}, dirNorth)))
						y--
					}
					ri++
					m.routeOff[ri] = int32(len(backing))
				}
			}
		}
	}
	m.routeLinks = backing
}

// Width returns the mesh width in tiles.
func (m *Mesh) Width() int { return m.width }

// Height returns the mesh height in tiles.
func (m *Mesh) Height() int { return m.height }

// InBounds reports whether c lies on the mesh.
func (m *Mesh) InBounds(c Coord) bool {
	return c.X >= 0 && c.X < m.width && c.Y >= 0 && c.Y < m.height
}

// linkIndex returns the resource index for the link leaving from in the
// given direction.
func (m *Mesh) linkIndex(from Coord, dir int) int {
	return (from.Y*m.width+from.X)*numDirs + dir
}

// Route returns the XY dimension-order route from src to dst as the list
// of (coordinate, direction) steps. An empty route means src == dst.
func (m *Mesh) Route(src, dst Coord) []step {
	if !m.InBounds(src) || !m.InBounds(dst) {
		panic(fmt.Sprintf("noc: route %v -> %v out of bounds", src, dst))
	}
	var path []step
	cur := src
	for cur.X != dst.X {
		d := dirEast
		next := Coord{cur.X + 1, cur.Y}
		if dst.X < cur.X {
			d = dirWest
			next = Coord{cur.X - 1, cur.Y}
		}
		path = append(path, step{cur, d})
		cur = next
	}
	for cur.Y != dst.Y {
		d := dirSouth
		next := Coord{cur.X, cur.Y + 1}
		if dst.Y < cur.Y {
			d = dirNorth
			next = Coord{cur.X, cur.Y - 1}
		}
		path = append(path, step{cur, d})
		cur = next
	}
	return path
}

type step struct {
	from Coord
	dir  int
}

// Hops returns the Manhattan distance between two coordinates.
func Hops(a, b Coord) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Transfer sends a message of size bytes from src to dst on the given
// plane, starting no earlier than at, and returns the arrival time of the
// tail flit. The model is wormhole-like: the head advances one cycle per
// hop and the payload reserves serialization time on every link; queueing
// at any congested link delays the tail accordingly.
//
// A zero-hop transfer (src == dst, e.g. an accelerator talking to the
// memory controller in its own tile) costs only serialization.
//
// Transfer resolves the route on every call and walks it by link index,
// so it stays allocation-free; hot paths between fixed tile pairs should
// hold a Path (whose route is resolved down to cursor pointers once) and
// Send on it instead. The two walks apply the identical reservation
// discipline; the noc property tests pin them against each other.
func (m *Mesh) Transfer(plane Plane, src, dst Coord, bytes int, at sim.Cycles) sim.Cycles {
	if !m.InBounds(src) || !m.InBounds(dst) {
		panic(fmt.Sprintf("noc: transfer %v -> %v out of bounds", src, dst))
	}
	service := sim.Cycles((bytes+FlitBytes-1)/FlitBytes + HeaderFlits)
	ri := (src.Y*m.width+src.X)*m.width*m.height + dst.Y*m.width + dst.X
	route := m.routeLinks[m.routeOff[ri]:m.routeOff[ri+1]]
	if len(route) == 0 {
		return at + service
	}
	links := m.links[int(plane)*m.linkCount:]
	cur := at
	for _, li := range route {
		start := cur
		if avail := links[li]; avail > start {
			start = avail
		}
		links[li] = start + service
		cur = start + HopCycles
	}
	m.planeBusy[plane] += service * sim.Cycles(len(route))
	return cur + service
}

// Path is a precomputed unidirectional route on one plane, for callers
// that send many messages between the same pair of tiles (an agent and
// its home LLC slice, an accelerator and a memory controller). Send
// applies exactly the reservation discipline of Transfer — byte-for-byte
// identical timing — without re-resolving the route, plane offset, and
// busy counter per message. Construction resolves every hop down to a
// pointer at its link's availability cursor, so the Send walk carries no
// index arithmetic or bounds checks — it is the single hottest loop of
// the simulator.
type Path struct {
	route []*sim.Cycles // link cursors of the XY route (empty: src == dst)
	busy  *sim.Cycles   // the plane's busy total
}

// NewPath resolves the XY route from src to dst on the given plane. It
// allocates the pointer route; callers cache Paths (the SoC resolves all
// of its (agent, memory-tile) pairs once at build).
func (m *Mesh) NewPath(plane Plane, src, dst Coord) Path {
	if !m.InBounds(src) || !m.InBounds(dst) {
		panic(fmt.Sprintf("noc: path %v -> %v out of bounds", src, dst))
	}
	ri := (src.Y*m.width+src.X)*m.width*m.height + dst.Y*m.width + dst.X
	base := int(plane) * m.linkCount
	links := m.links[base : base+m.linkCount]
	idx := m.routeLinks[m.routeOff[ri]:m.routeOff[ri+1]]
	route := make([]*sim.Cycles, len(idx))
	for i, li := range idx {
		route[i] = &links[li]
	}
	return Path{route: route, busy: &m.planeBusy[plane]}
}

// Send transmits a message of size bytes along the path, starting no
// earlier than at, and returns the arrival time of the tail flit. It is
// equivalent to Mesh.Transfer over the same (plane, src, dst).
func (p *Path) Send(bytes int, at sim.Cycles) sim.Cycles {
	service := sim.Cycles((bytes+FlitBytes-1)/FlitBytes + HeaderFlits)
	route := p.route
	if len(route) == 0 {
		return at + service
	}
	cur := at
	for _, lp := range route {
		// Head moves one hop per cycle; the payload reserves service time
		// on every link along the precomputed XY route.
		start := cur
		if avail := *lp; avail > start {
			start = avail
		}
		*lp = start + service
		cur = start + HopCycles
	}
	*p.busy += service * sim.Cycles(len(route))
	// The tail leaves the last link at start+service and arrives one hop
	// later; with cur = start + HopCycles that is exactly cur + service.
	return cur + service
}

// RoundTrip models a small request (header-only) to dst followed by a
// response of size bytes back to src; it returns the time the response
// tail arrives. remoteService is extra time spent at the destination
// before the response departs.
func (m *Mesh) RoundTrip(reqPlane, rspPlane Plane, src, dst Coord, bytes int, remoteService, at sim.Cycles) sim.Cycles {
	reqArrive := m.Transfer(reqPlane, src, dst, 0, at)
	return m.Transfer(rspPlane, dst, src, bytes, reqArrive+remoteService)
}

// LinkBusy returns the total busy cycles summed over all links of a
// plane, for utilization reporting.
func (m *Mesh) LinkBusy(plane Plane) sim.Cycles {
	return m.planeBusy[plane]
}
