package noc

import (
	"testing"
	"testing/quick"

	"cohmeleon/internal/sim"
)

func TestHops(t *testing.T) {
	cases := []struct {
		a, b Coord
		want int
	}{
		{Coord{0, 0}, Coord{0, 0}, 0},
		{Coord{0, 0}, Coord{3, 0}, 3},
		{Coord{0, 0}, Coord{0, 2}, 2},
		{Coord{1, 1}, Coord{4, 3}, 5},
		{Coord{4, 3}, Coord{1, 1}, 5},
	}
	for _, c := range cases {
		if got := Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRouteLengthEqualsHops(t *testing.T) {
	m := NewMesh(5, 4)
	for x1 := 0; x1 < 5; x1++ {
		for y1 := 0; y1 < 4; y1++ {
			for x2 := 0; x2 < 5; x2++ {
				for y2 := 0; y2 < 4; y2++ {
					a, b := Coord{x1, y1}, Coord{x2, y2}
					if got := len(m.Route(a, b)); got != Hops(a, b) {
						t.Fatalf("route %v->%v has %d steps, want %d", a, b, got, Hops(a, b))
					}
				}
			}
		}
	}
}

func TestRouteIsXYOrder(t *testing.T) {
	m := NewMesh(4, 4)
	path := m.Route(Coord{0, 0}, Coord{2, 2})
	// First two steps move in X, then two in Y.
	if path[0].dir != dirEast || path[1].dir != dirEast {
		t.Fatalf("XY routing should move X first: %+v", path)
	}
	if path[2].dir != dirSouth || path[3].dir != dirSouth {
		t.Fatalf("XY routing should move Y second: %+v", path)
	}
}

func TestTransferUncontendedLatency(t *testing.T) {
	m := NewMesh(4, 4)
	// 64 bytes = 16 flits + 1 header = 17 cycles serialization, 2 hops.
	arrive := m.Transfer(PlaneDMAData, Coord{0, 0}, Coord{2, 0}, 64, 0)
	// Head: start+1 per hop; tail: last link end + 1.
	// link1: acquire(0,17) -> (0,17); cur=1. link2: acquire(1,17) -> (1,18).
	// tail = 18 + 1 = 19.
	if arrive != 19 {
		t.Fatalf("arrive = %d, want 19", arrive)
	}
}

func TestTransferZeroHop(t *testing.T) {
	m := NewMesh(2, 2)
	arrive := m.Transfer(PlaneDMAData, Coord{1, 1}, Coord{1, 1}, 64, 100)
	if arrive != 117 {
		t.Fatalf("arrive = %d, want 117 (serialization only)", arrive)
	}
}

func TestTransferContentionQueues(t *testing.T) {
	m := NewMesh(4, 1)
	src, dst := Coord{0, 0}, Coord{3, 0}
	first := m.Transfer(PlaneDMAData, src, dst, 256, 0)
	second := m.Transfer(PlaneDMAData, src, dst, 256, 0)
	if second <= first {
		t.Fatalf("overlapping transfers should queue: first %d, second %d", first, second)
	}
	// Different plane does not contend.
	other := m.Transfer(PlaneCohRsp, src, dst, 256, 0)
	if other != first {
		t.Fatalf("other plane should be uncontended: %d vs %d", other, first)
	}
}

func TestDisjointPathsDoNotContend(t *testing.T) {
	m := NewMesh(4, 4)
	a := m.Transfer(PlaneDMAData, Coord{0, 0}, Coord{1, 0}, 64, 0)
	b := m.Transfer(PlaneDMAData, Coord{0, 3}, Coord{1, 3}, 64, 0)
	if a != b {
		t.Fatalf("disjoint transfers should see identical latency: %d vs %d", a, b)
	}
}

func TestRoundTrip(t *testing.T) {
	m := NewMesh(3, 1)
	// Request 0->2 (header only), 10 cycles remote service, 64B response.
	arrive := m.RoundTrip(PlaneCohReq, PlaneCohRsp, Coord{0, 0}, Coord{2, 0}, 64, 10, 0)
	// Request: 1-flit message over 2 hops: link1 (0,1) cur=1, link2 (1,2),
	// tail=2+1=3. Response departs at 13, 17 cycles serialization over 2
	// hops: link1 (13,30) cur=14, link2 (14,31), tail arrives 32.
	if arrive != 32 {
		t.Fatalf("arrive = %d, want 32", arrive)
	}
}

func TestLinkBusyAccounting(t *testing.T) {
	m := NewMesh(2, 1)
	if m.LinkBusy(PlaneDMAData) != 0 {
		t.Fatal("fresh mesh should be idle")
	}
	m.Transfer(PlaneDMAData, Coord{0, 0}, Coord{1, 0}, 64, 0)
	if m.LinkBusy(PlaneDMAData) != 17 {
		t.Fatalf("busy = %d, want 17", m.LinkBusy(PlaneDMAData))
	}
	if m.LinkBusy(PlaneMisc) != 0 {
		t.Fatal("other planes should be idle")
	}
}

func TestOutOfBoundsRoutePanics(t *testing.T) {
	m := NewMesh(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Route(Coord{0, 0}, Coord{5, 5})
}

func TestPlaneString(t *testing.T) {
	names := map[Plane]string{
		PlaneCohReq: "coh-req", PlaneCohRsp: "coh-rsp", PlaneCohFwd: "coh-fwd",
		PlaneDMAReq: "dma-req", PlaneDMAData: "dma-data", PlaneMisc: "misc",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
	if Plane(99).String() != "plane(99)" {
		t.Errorf("unknown plane formatting broken")
	}
}

// Property: transfer arrival is never before departure plus hop latency
// plus serialization, and identical repeated transfers never get faster.
func TestTransferMonotoneProperty(t *testing.T) {
	f := func(pairs []uint16) bool {
		m := NewMesh(5, 5)
		var last sim.Cycles = -1
		for _, raw := range pairs {
			src := Coord{int(raw % 5), int((raw / 5) % 5)}
			dst := Coord{int((raw / 25) % 5), int((raw / 125) % 5)}
			arrive := m.Transfer(PlaneDMAData, src, dst, 64, 0)
			minimum := sim.Cycles(Hops(src, dst)) + 17
			if src == dst {
				minimum = 17
			}
			if arrive < minimum {
				return false
			}
			if src == (Coord{0, 0}) && dst == (Coord{4, 4}) {
				if arrive <= last {
					return false // same congested path must strictly queue
				}
				last = arrive
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// refMesh is a naive reference model of the link reservation
// discipline: per-hop walks over Route, no precomputation, no deferred
// bursts. The production mesh must be observationally identical to it
// for any interleaving of transfers.
type refMesh struct {
	m     *Mesh // routing only
	avail map[int]sim.Cycles
}

func newRefMesh(w, h int) *refMesh {
	return &refMesh{m: NewMesh(w, h), avail: map[int]sim.Cycles{}}
}

func (r *refMesh) transfer(plane Plane, src, dst Coord, bytes int, at sim.Cycles) sim.Cycles {
	service := sim.Cycles((bytes+FlitBytes-1)/FlitBytes + HeaderFlits)
	if src == dst {
		return at + service
	}
	cur := at
	var tail sim.Cycles
	for _, st := range r.m.Route(src, dst) {
		key := int(plane)*r.m.linkCount + r.m.linkIndex(st.from, st.dir)
		start := cur
		if a := r.avail[key]; a > start {
			start = a
		}
		r.avail[key] = start + service
		cur = start + HopCycles
		tail = start + service
	}
	return tail + HopCycles
}

// Property: any interleaving of transfers — same route repeated,
// crossing routes, plane changes, reused paths — produces arrival times
// identical to the naive reference walk.
func TestTransferMatchesReferenceWalk(t *testing.T) {
	f := func(ops []uint32) bool {
		const w, h = 4, 3
		m := NewMesh(w, h)
		ref := newRefMesh(w, h)
		var paths []Path // exercise the cached-path interface too
		var pp []struct {
			plane    Plane
			src, dst Coord
		}
		at := sim.Cycles(0)
		for _, raw := range ops {
			plane := Plane(raw % uint32(NumPlanes))
			src := Coord{int(raw / 7 % w), int(raw / 29 % h)}
			dst := Coord{int(raw / 97 % w), int(raw / 11 % h)}
			bytes := int(raw % 300)
			var got sim.Cycles
			if raw%3 == 0 {
				// Reuse a cached path for this tuple.
				idx := -1
				for i, c := range pp {
					if c.plane == plane && c.src == src && c.dst == dst {
						idx = i
						break
					}
				}
				if idx < 0 {
					paths = append(paths, m.NewPath(plane, src, dst))
					pp = append(pp, struct {
						plane    Plane
						src, dst Coord
					}{plane, src, dst})
					idx = len(paths) - 1
				}
				got = paths[idx].Send(bytes, at)
			} else {
				got = m.Transfer(plane, src, dst, bytes, at)
			}
			want := ref.transfer(plane, src, dst, bytes, at)
			if got != want {
				t.Logf("transfer %v %v->%v %dB at %d: got %d, want %d",
					plane, src, dst, bytes, at, got, want)
				return false
			}
			// Jump time irregularly, including backwards: parallel flows
			// (flushes, concurrent invocations) issue at non-monotone
			// times, and the algebra must not assume ordering.
			at = sim.Cycles(raw >> 3 % 600)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: mesh routes never step off the grid.
func TestRouteStaysInBoundsProperty(t *testing.T) {
	f := func(raw uint32) bool {
		m := NewMesh(6, 3)
		src := Coord{int(raw % 6), int((raw / 6) % 3)}
		dst := Coord{int((raw / 18) % 6), int((raw / 108) % 3)}
		for _, st := range m.Route(src, dst) {
			if !m.InBounds(st.from) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
