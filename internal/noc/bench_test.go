package noc

import (
	"testing"

	"cohmeleon/internal/sim"
)

// BenchmarkTransfer measures one 4-hop, 64-byte message — the inner loop
// of every simulated data movement.
func BenchmarkTransfer(b *testing.B) {
	m := NewMesh(5, 5)
	src := Coord{X: 0, Y: 0}
	dst := Coord{X: 2, Y: 2}
	at := sim.Cycles(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at = m.Transfer(PlaneDMAData, src, dst, 64, at)
	}
}

// BenchmarkTransferHeader measures a header-only hop (request planes).
func BenchmarkTransferHeader(b *testing.B) {
	m := NewMesh(5, 5)
	src := Coord{X: 1, Y: 0}
	dst := Coord{X: 4, Y: 0}
	at := sim.Cycles(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at = m.Transfer(PlaneDMAReq, src, dst, 0, at)
	}
}
