package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64) used for workload generation and ε-greedy exploration.
// Unlike math/rand it is trivially seedable per simulation component and
// its sequence is stable across Go releases, which keeps golden tests
// meaningful.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). n must be positive.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: RNG.Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Split derives an independent generator; the parent advances once.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }
