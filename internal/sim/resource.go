package sim

// Resource models a single non-preemptive FIFO server on the virtual
// timeline: a NoC link, an LLC slice port, a DRAM channel. Callers
// reserve service time with Acquire and receive the (start, end) window;
// queueing delay emerges when reservations overlap. Because reservations
// are granted in call order and the engine executes events in time order,
// the FIFO discipline matches arrival order at transaction granularity.
//
// Resource performs no event scheduling itself, which keeps per-line
// cache and link operations allocation-free and O(1).
type Resource struct {
	name        string
	availableAt Cycles
	busy        Cycles // total busy cycles, for utilization stats
	grants      uint64
}

// NewResource returns an idle resource.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Acquire reserves dur cycles of service starting no earlier than at.
// It returns the service window. dur may be zero (a pure ordering point).
func (r *Resource) Acquire(at, dur Cycles) (start, end Cycles) {
	start = at
	if r.availableAt > start {
		start = r.availableAt
	}
	end = start + dur
	r.availableAt = end
	r.busy += dur
	r.grants++
	return start, end
}

// AvailableAt reports the earliest time a new reservation could start.
func (r *Resource) AvailableAt() Cycles { return r.availableAt }

// BusyCycles reports the total reserved service time.
func (r *Resource) BusyCycles() Cycles { return r.busy }

// Grants reports the number of reservations made.
func (r *Resource) Grants() uint64 { return r.grants }

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// MultiResource models k identical FIFO servers sharing one queue (the
// CPU pool of an SMP SoC). A request is served by the earliest-available
// server.
type MultiResource struct {
	name    string
	servers []Cycles // availableAt per server
	busy    Cycles
	grants  uint64
}

// NewMultiResource returns an idle pool of k servers.
func NewMultiResource(name string, k int) *MultiResource {
	if k <= 0 {
		panic("sim: MultiResource needs at least one server")
	}
	return &MultiResource{name: name, servers: make([]Cycles, k)}
}

// Acquire reserves dur cycles on the earliest-available server, starting
// no earlier than at, and returns the service window.
func (m *MultiResource) Acquire(at, dur Cycles) (start, end Cycles) {
	best := 0
	for i, avail := range m.servers {
		if avail < m.servers[best] {
			best = i
		}
		_ = avail
	}
	start = at
	if m.servers[best] > start {
		start = m.servers[best]
	}
	end = start + dur
	m.servers[best] = end
	m.busy += dur
	m.grants++
	return start, end
}

// Servers reports the pool size.
func (m *MultiResource) Servers() int { return len(m.servers) }

// BusyCycles reports the total reserved service time across servers.
func (m *MultiResource) BusyCycles() Cycles { return m.busy }

// Grants reports the number of reservations made.
func (m *MultiResource) Grants() uint64 { return m.grants }

// Name returns the pool name.
func (m *MultiResource) Name() string { return m.name }
