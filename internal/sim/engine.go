// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock measured in Cycles and executes
// events in (time, insertion-order) order. Long-running activities are
// written as processes: ordinary functions running on their own goroutine
// that park themselves on the engine whenever they wait for virtual time
// to pass or for a semaphore to be granted. Exactly one goroutine (either
// the engine or a single process) runs at any instant, so simulations are
// bit-reproducible for a given seed regardless of GOMAXPROCS.
package sim

import (
	"container/heap"
	"fmt"
)

// Cycles is a duration or instant of virtual time, measured in clock
// cycles of the simulated SoC.
type Cycles int64

// event is a scheduled callback.
type event struct {
	at  Cycles
	seq uint64 // tie-break: FIFO among same-cycle events
	fn  func()
}

// eventQueue is a min-heap of events ordered by (at, seq).
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulation kernel. The zero value is not
// usable; create engines with NewEngine.
type Engine struct {
	now     Cycles
	seq     uint64
	queue   eventQueue
	parked  int // processes blocked on semaphores (no pending event)
	running bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Cycles { return e.now }

// Schedule runs fn at the given absolute time. Scheduling in the past is
// an error in the caller; it is clamped to the current time so that the
// event still runs (in insertion order) rather than corrupting the clock.
func (e *Engine) Schedule(at Cycles, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.queue, event{at: at, seq: e.seq, fn: fn})
}

// After runs fn after delay cycles.
func (e *Engine) After(delay Cycles, fn func()) {
	e.Schedule(e.now+delay, fn)
}

// Run executes events until the queue is empty. If processes remain
// parked on semaphores when the queue drains, Run returns ErrDeadlock so
// that tests can detect wiring mistakes (a real deadlock would otherwise
// silently truncate the simulation).
func (e *Engine) Run() error {
	if e.running {
		return fmt.Errorf("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(event)
		if ev.at > e.now {
			e.now = ev.at
		}
		ev.fn()
	}
	if e.parked > 0 {
		return fmt.Errorf("sim: %w: %d process(es) still waiting", ErrDeadlock, e.parked)
	}
	return nil
}

// RunUntil executes events with time ≤ deadline, leaving later events
// queued, and advances the clock to the deadline.
func (e *Engine) RunUntil(deadline Cycles) {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		ev := heap.Pop(&e.queue).(event)
		if ev.at > e.now {
			e.now = ev.at
		}
		ev.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }
