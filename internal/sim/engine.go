// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock measured in Cycles and executes
// events in (time, insertion-order) order. Long-running activities are
// written as processes: ordinary functions running on a coroutine that
// parks itself on the engine whenever it waits for virtual time to pass
// or for a semaphore to be granted. Exactly one goroutine (either the
// scheduler or a single process) runs at any instant, so simulations are
// bit-reproducible for a given seed regardless of GOMAXPROCS.
//
// The kernel is a single-owner scheduler built for zero-allocation
// steady-state dispatch:
//
//   - events are plain 32-byte values in a monomorphic, index-based
//     4-ary min-heap (no container/heap, no interface boxing);
//   - process wakeups carry the *Proc directly in the event, so
//     Delay/WaitUntil never allocate a closure;
//   - same-cycle wakeups (semaphore grants, waitgroup releases, process
//     starts) bypass the heap entirely: they are appended to a ready
//     ring that is sorted by construction (the clock is monotonic and
//     sequence numbers strictly increase) and merged with the heap by
//     the same (at, seq) comparator, preserving the exact dispatch
//     order a heap push would have produced;
//   - process bodies run on pooled coroutines, so building thousands of
//     SoCs across an experiment fan-out does not churn goroutines.
package sim

import (
	"fmt"
	"strings"
)

// Cycles is a duration or instant of virtual time, measured in clock
// cycles of the simulated SoC.
type Cycles int64

// maxCycles is the far-future deadline Run uses to drain everything.
const maxCycles = Cycles(1<<63 - 1)

// event is a scheduled wakeup: either a process resumption (proc != nil)
// or a callback (fn != nil). Exactly one of the two is set.
type event struct {
	at   Cycles
	seq  uint64 // tie-break: FIFO among same-cycle events
	proc *Proc
	fn   func()
}

// before orders events by (at, seq). seq is unique, so the order is
// total.
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is a discrete-event simulation kernel. The zero value is not
// usable; create engines with NewEngine.
type Engine struct {
	now Cycles
	seq uint64
	// queue is a 4-ary min-heap of future events ordered by (at, seq).
	// 4-ary rather than binary: sift-down touches one cache line of
	// children per level and the tree is half as deep.
	queue []event
	// ready holds wakeups at the current cycle, appended in (at, seq)
	// order by construction (at is the clock at append time, which never
	// decreases, and seq strictly increases), so the slice is always
	// sorted and drains FIFO from readyHead.
	ready     []event
	readyHead int
	// live tracks started-but-unfinished processes so deadlock reports
	// can name the parked ones.
	live    []*Proc
	parked  int // processes blocked on semaphores (no pending event)
	running bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Cycles { return e.now }

// Schedule runs fn at the given absolute time. Scheduling in the past is
// an error in the caller; it is clamped to the current time so that the
// event still runs (in insertion order) rather than corrupting the clock.
func (e *Engine) Schedule(at Cycles, fn func()) {
	e.seq++
	if at <= e.now {
		e.ready = append(e.ready, event{at: e.now, seq: e.seq, fn: fn})
		return
	}
	e.push(event{at: at, seq: e.seq, fn: fn})
}

// After runs fn after delay cycles.
func (e *Engine) After(delay Cycles, fn func()) {
	e.Schedule(e.now+delay, fn)
}

// wake enqueues a process resumption at the current cycle on the ready
// ring. The entry consumes a sequence number exactly like a heap push,
// so the merged dispatch order is identical — only cheaper.
func (e *Engine) wake(p *Proc) {
	e.seq++
	e.ready = append(e.ready, event{at: e.now, seq: e.seq, proc: p})
}

// push inserts ev into the 4-ary heap (sift-up with a hole, no swaps).
func (e *Engine) push(ev event) {
	e.queue = append(e.queue, ev)
	q := e.queue
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !ev.before(&q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = ev
}

// pop removes and returns the heap minimum. The caller guarantees the
// heap is non-empty.
func (e *Engine) pop() event {
	q := e.queue
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = event{} // release the fn/proc references
	e.queue = q[:n]
	if n > 0 {
		q = q[:n]
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if q[j].before(&q[m]) {
					m = j
				}
			}
			if !q[m].before(&last) {
				break
			}
			q[i] = q[m]
			i = m
		}
		q[i] = last
	}
	return top
}

// next removes and returns the earliest event with at <= deadline,
// merging the sorted ready ring with the heap by (at, seq).
func (e *Engine) next(deadline Cycles) (event, bool) {
	if e.readyHead < len(e.ready) {
		ev := &e.ready[e.readyHead]
		if len(e.queue) == 0 || ev.before(&e.queue[0]) {
			if ev.at > deadline {
				return event{}, false
			}
			out := *ev
			*ev = event{} // release the fn/proc references
			e.readyHead++
			if e.readyHead == len(e.ready) {
				e.ready = e.ready[:0]
				e.readyHead = 0
			}
			return out, true
		}
	}
	if len(e.queue) > 0 && e.queue[0].at <= deadline {
		return e.pop(), true
	}
	return event{}, false
}

// dispatch executes one popped event on the scheduler goroutine.
func (e *Engine) dispatch(ev event) {
	if ev.proc != nil {
		e.resumeProc(ev.proc)
		return
	}
	ev.fn()
}

// Run executes events until the queue is empty. If processes remain
// parked on semaphores when the queue drains, Run returns ErrDeadlock so
// that tests can detect wiring mistakes (a real deadlock would otherwise
// silently truncate the simulation).
func (e *Engine) Run() error {
	if e.running {
		return fmt.Errorf("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for {
		ev, ok := e.next(maxCycles)
		if !ok {
			break
		}
		if ev.at > e.now {
			e.now = ev.at
		}
		e.dispatch(ev)
	}
	if e.parked > 0 {
		return e.deadlockErr()
	}
	return nil
}

// RunUntil executes events with time ≤ deadline, leaving later events
// queued, and advances the clock to the deadline. Like Run it rejects
// reentrant calls (from inside an event or a process).
func (e *Engine) RunUntil(deadline Cycles) error {
	if e.running {
		return fmt.Errorf("sim: RunUntil called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for {
		ev, ok := e.next(deadline)
		if !ok {
			break
		}
		if ev.at > e.now {
			e.now = ev.at
		}
		e.dispatch(ev)
	}
	if e.now < deadline {
		e.now = deadline
	}
	return nil
}

// deadlockErr reports the parked processes by name, in spawn order among
// the still-live set (deterministic for a deterministic simulation).
func (e *Engine) deadlockErr() error {
	var names []string
	for _, p := range e.live {
		if p.state == procBlocked {
			names = append(names, p.name)
		}
	}
	return fmt.Errorf("sim: %w: %d process(es) still waiting: %s",
		ErrDeadlock, e.parked, strings.Join(names, ", "))
}

// Pending reports the number of queued events (including same-cycle
// wakeups not yet drained).
func (e *Engine) Pending() int {
	return len(e.queue) + len(e.ready) - e.readyHead
}

// Reset returns the engine to its initial state (clock at zero, no
// events) while keeping the event storage, so a harness can reuse one
// kernel across trials instead of growing fresh heaps and rings each
// time. Reset panics if the engine is running or if processes are still
// live: a parked process owns a coroutine stack that cannot be unwound
// safely, so only engines whose last Run completed without deadlock are
// reusable.
func (e *Engine) Reset() {
	if e.running {
		panic("sim: Reset called while running")
	}
	if len(e.live) > 0 {
		panic(fmt.Sprintf("sim: Reset with %d live process(es)", len(e.live)))
	}
	clear(e.queue)
	e.queue = e.queue[:0]
	clear(e.ready)
	e.ready = e.ready[:0]
	e.readyHead = 0
	e.now = 0
	e.seq = 0
	e.parked = 0
}
