//go:build !race

package sim

// Zero-allocation guards for the kernel's steady-state paths. The race
// detector allocates shadow memory on channel operations, so these run
// only in non-race builds (CI runs them as a dedicated step).

import "testing"

// Steady-state event dispatch (schedule + run) must not allocate: the
// heap and ready ring are value slices whose capacity survives, and
// dispatch neither boxes events nor builds closures.
func TestZeroAllocEventDispatch(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 512; i++ { // warm the heap capacity
		e.Schedule(Cycles(i), fn)
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := testing.AllocsPerRun(100, func() {
		base := e.Now()
		for i := 0; i < 64; i++ {
			e.Schedule(base+Cycles(i%7), fn)
		}
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
	})
	if got != 0 {
		t.Fatalf("event dispatch allocates %.1f per 64-event batch, want 0", got)
	}
}

// A park/resume pair via Delay must not allocate: the wakeup is an
// intrusive heap event and the coroutine handoff reuses its channels.
func TestZeroAllocProcSwitch(t *testing.T) {
	e := NewEngine()
	var got float64
	e.Go("p", func(p *Proc) {
		p.Delay(10) // warm
		got = testing.AllocsPerRun(100, func() { p.Delay(1) })
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 0 {
		t.Fatalf("Delay park/resume allocates %.1f, want 0", got)
	}
}

// A semaphore handoff cycle (release + block) must not allocate: waiters
// wake through the ready ring, not a scheduled closure.
func TestZeroAllocSemaphoreHandoff(t *testing.T) {
	e := NewEngine()
	ping := NewSemaphore(e, "ping", 0)
	pong := NewSemaphore(e, "pong", 0)
	e.Go("echo", func(p *Proc) {
		for {
			ping.Acquire(p)
			pong.Release()
		}
	})
	var got float64
	e.Go("meter", func(p *Proc) {
		ping.Release()
		pong.Acquire(p) // warm both wait queues
		got = testing.AllocsPerRun(100, func() {
			ping.Release()
			pong.Acquire(p)
		})
	})
	// The echo process blocks forever once the meter finishes: the run
	// ends in a deliberate deadlock.
	if err := e.Run(); err == nil {
		t.Fatal("expected the echo process to deadlock at the end")
	}
	if got != 0 {
		t.Fatalf("semaphore handoff allocates %.1f, want 0", got)
	}
}
