package sim

import (
	"errors"
	"fmt"
)

// ErrDeadlock is reported by Engine.Run when the event queue drains while
// processes are still parked on semaphores.
var ErrDeadlock = errors.New("deadlock")

// Proc is a simulated process: a goroutine that alternates with the
// engine, running only between its Wait calls. A Proc must only be used
// from the goroutine it was started on.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	yield  chan struct{}
	done   bool
}

// Go spawns fn as a new process. fn starts executing at the current
// virtual time (via an immediate event) and may call the blocking methods
// of its Proc. Go may be called from the engine (inside events) or from
// another process.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	e.Schedule(e.now, func() {
		go func() {
			<-p.resume
			fn(p)
			p.done = true
			p.yield <- struct{}{}
		}()
		p.transfer()
	})
	return p
}

// transfer hands control to the process goroutine and blocks the caller
// (the engine or another process's event) until it yields back.
func (p *Proc) transfer() {
	p.resume <- struct{}{}
	<-p.yield
}

// park suspends the process until some event calls transfer again.
func (p *Proc) park() {
	p.yield <- struct{}{}
	<-p.resume
}

// Name returns the process name (for diagnostics).
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Cycles { return p.eng.now }

// WaitUntil blocks the process until the given absolute virtual time.
// Times in the past return immediately.
func (p *Proc) WaitUntil(t Cycles) {
	if t <= p.eng.now {
		return
	}
	p.eng.Schedule(t, func() { p.transfer() })
	p.park()
}

// Delay blocks the process for d cycles.
func (p *Proc) Delay(d Cycles) { p.WaitUntil(p.eng.now + d) }

// Semaphore is a counting semaphore with a FIFO wait queue, usable by
// processes to model exclusive devices, thread joins, and completion
// signals. The zero value is invalid; use NewSemaphore.
type Semaphore struct {
	eng     *Engine
	name    string
	permits int
	waiters []*Proc
}

// NewSemaphore returns a semaphore holding the given number of permits.
func NewSemaphore(e *Engine, name string, permits int) *Semaphore {
	if permits < 0 {
		panic(fmt.Sprintf("sim: semaphore %q with negative permits", name))
	}
	return &Semaphore{eng: e, name: name, permits: permits}
}

// Acquire takes one permit, blocking the process in FIFO order until one
// is available.
func (s *Semaphore) Acquire(p *Proc) {
	if s.permits > 0 && len(s.waiters) == 0 {
		s.permits--
		return
	}
	s.waiters = append(s.waiters, p)
	s.eng.parked++
	p.park()
}

// TryAcquire takes a permit if one is immediately available.
func (s *Semaphore) TryAcquire() bool {
	if s.permits > 0 && len(s.waiters) == 0 {
		s.permits--
		return true
	}
	return false
}

// Release returns one permit, waking the longest-waiting process if any.
// It may be called from events or processes.
func (s *Semaphore) Release() {
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.eng.parked--
		// Hand the permit directly to the waiter at the current time.
		s.eng.Schedule(s.eng.now, func() { w.transfer() })
		return
	}
	s.permits++
}

// Available reports the number of free permits.
func (s *Semaphore) Available() int { return s.permits }

// Waiting reports the number of queued processes.
func (s *Semaphore) Waiting() int { return len(s.waiters) }

// WaitGroup counts outstanding activities; Wait blocks a process until
// the count returns to zero. Unlike sync.WaitGroup it is tied to virtual
// time and FIFO-fair.
type WaitGroup struct {
	eng     *Engine
	count   int
	waiters []*Proc
}

// NewWaitGroup returns an empty wait group.
func NewWaitGroup(e *Engine) *WaitGroup { return &WaitGroup{eng: e} }

// Add increments the counter by n (n may be negative via Done only).
func (wg *WaitGroup) Add(n int) {
	if n < 0 {
		panic("sim: WaitGroup.Add with negative delta")
	}
	wg.count += n
}

// Done decrements the counter, waking waiters when it reaches zero.
func (wg *WaitGroup) Done() {
	wg.count--
	if wg.count < 0 {
		panic("sim: WaitGroup counter below zero")
	}
	if wg.count == 0 {
		ws := wg.waiters
		wg.waiters = nil
		for _, w := range ws {
			w := w
			wg.eng.parked--
			wg.eng.Schedule(wg.eng.now, func() { w.transfer() })
		}
	}
}

// Wait blocks the process until the counter is zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	wg.waiters = append(wg.waiters, p)
	wg.eng.parked++
	p.park()
}
