package sim

import (
	"errors"
	"fmt"
)

// ErrDeadlock is reported by Engine.Run when the event queue drains while
// processes are still parked on semaphores.
var ErrDeadlock = errors.New("deadlock")

// Process states. A process always transitions on a well-defined side of
// a coroutine handoff, so the field needs no synchronization beyond the
// handoff channels' happens-before edges.
const (
	procNew     = uint8(iota) // spawned; start wakeup pending on the ready ring
	procRunning               // executing on its coroutine right now
	procTimer                 // parked with a wakeup event in the heap
	procBlocked               // parked on a semaphore/waitgroup (no pending event)
	procDone                  // body returned
)

// Proc is a simulated process: a coroutine that alternates with the
// scheduler, running only between its Wait calls. A Proc must only be
// used from the goroutine it was started on.
type Proc struct {
	eng     *Engine
	name    string
	c       *coro
	fn      func(p *Proc)
	state   uint8
	liveIdx int // position in eng.live, for O(1) removal
}

// Go spawns fn as a new process. fn starts executing at the current
// virtual time (via an immediate wakeup) and may call the blocking
// methods of its Proc. Go may be called from the engine (inside events)
// or from another process. The body runs on a pooled coroutine; no
// goroutine or channel is created on the steady-state path.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, fn: fn, state: procNew, liveIdx: len(e.live)}
	e.live = append(e.live, p)
	e.wake(p)
	return p
}

// resumeProc hands control to the process and blocks the scheduler until
// it parks or finishes. Runs only on the scheduler goroutine.
func (e *Engine) resumeProc(p *Proc) {
	c := p.c
	if p.state == procNew {
		c = getCoro()
		p.c = c
		c.p = p
	}
	p.state = procRunning
	c.resume <- struct{}{}
	<-c.yield
	if p.state == procDone {
		e.finishProc(p)
	}
}

// finishProc retires a completed process: drops it from the live set and
// returns its coroutine to the pool.
func (e *Engine) finishProc(p *Proc) {
	last := len(e.live) - 1
	moved := e.live[last]
	e.live[p.liveIdx] = moved
	moved.liveIdx = p.liveIdx
	e.live[last] = nil
	e.live = e.live[:last]
	putCoro(p.c)
	p.c = nil
}

// park suspends the process until the scheduler resumes it; state
// records why (timer or blocked) for deadlock diagnostics. Runs only on
// the process's coroutine.
func (p *Proc) park(state uint8) {
	p.state = state
	c := p.c
	c.yield <- struct{}{}
	<-c.resume
}

// Name returns the process name (for diagnostics).
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Cycles { return p.eng.now }

// WaitUntil blocks the process until the given absolute virtual time.
// Times in the past return immediately. The wakeup is an intrusive heap
// event carrying the process itself — no closure, no allocation.
func (p *Proc) WaitUntil(t Cycles) {
	e := p.eng
	if t <= e.now {
		return
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, proc: p})
	p.park(procTimer)
}

// Delay blocks the process for d cycles.
func (p *Proc) Delay(d Cycles) { p.WaitUntil(p.eng.now + d) }

// Semaphore is a counting semaphore with a FIFO wait queue, usable by
// processes to model exclusive devices, thread joins, and completion
// signals. The zero value is invalid; use NewSemaphore.
type Semaphore struct {
	eng     *Engine
	name    string
	permits int
	waiters []*Proc
}

// NewSemaphore returns a semaphore holding the given number of permits.
func NewSemaphore(e *Engine, name string, permits int) *Semaphore {
	if permits < 0 {
		panic(fmt.Sprintf("sim: semaphore %q with negative permits", name))
	}
	return &Semaphore{eng: e, name: name, permits: permits}
}

// Acquire takes one permit, blocking the process in FIFO order until one
// is available.
func (s *Semaphore) Acquire(p *Proc) {
	if s.permits > 0 && len(s.waiters) == 0 {
		s.permits--
		return
	}
	s.waiters = append(s.waiters, p)
	s.eng.parked++
	p.park(procBlocked)
}

// TryAcquire takes a permit if one is immediately available.
func (s *Semaphore) TryAcquire() bool {
	if s.permits > 0 && len(s.waiters) == 0 {
		s.permits--
		return true
	}
	return false
}

// Release returns one permit, waking the longest-waiting process if any.
// It may be called from events or processes. The permit is handed off
// directly: the waiter joins the scheduler's ready ring at the current
// cycle (FIFO among same-cycle wakeups) with no closure or heap traffic.
func (s *Semaphore) Release() {
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		n := copy(s.waiters, s.waiters[1:])
		s.waiters[n] = nil
		s.waiters = s.waiters[:n]
		s.eng.parked--
		s.eng.wake(w)
		return
	}
	s.permits++
}

// Available reports the number of free permits.
func (s *Semaphore) Available() int { return s.permits }

// Waiting reports the number of queued processes.
func (s *Semaphore) Waiting() int { return len(s.waiters) }

// WaitGroup counts outstanding activities; Wait blocks a process until
// the count returns to zero. Unlike sync.WaitGroup it is tied to virtual
// time and FIFO-fair.
type WaitGroup struct {
	eng     *Engine
	count   int
	waiters []*Proc
}

// NewWaitGroup returns an empty wait group.
func NewWaitGroup(e *Engine) *WaitGroup { return &WaitGroup{eng: e} }

// Add increments the counter by n (n may be negative via Done only).
func (wg *WaitGroup) Add(n int) {
	if n < 0 {
		panic("sim: WaitGroup.Add with negative delta")
	}
	wg.count += n
}

// Done decrements the counter, waking waiters when it reaches zero.
// Waiters are handed to the scheduler's ready ring directly, in Wait
// order, without scheduling a closure per waiter.
func (wg *WaitGroup) Done() {
	wg.count--
	if wg.count < 0 {
		panic("sim: WaitGroup counter below zero")
	}
	if wg.count == 0 && len(wg.waiters) > 0 {
		for i, w := range wg.waiters {
			wg.eng.parked--
			wg.eng.wake(w)
			wg.waiters[i] = nil
		}
		wg.waiters = wg.waiters[:0]
	}
}

// Wait blocks the process until the counter is zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	wg.waiters = append(wg.waiters, p)
	wg.eng.parked++
	p.park(procBlocked)
}
