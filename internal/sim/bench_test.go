package sim

import "testing"

// BenchmarkEngineScheduleRun measures raw event throughput: schedule a
// batch of plain callbacks at mixed offsets and drain it. Per-op cost is
// one heap push + one pop + dispatch.
func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	const batch = 512
	b.ReportAllocs()
	for n := 0; n < b.N; n += batch {
		base := e.Now()
		for i := 0; i < batch; i++ {
			e.Schedule(base+Cycles(i%7), fn)
		}
		if err := e.Run(); err != nil {
			b.Fatalf("Run: %v", err)
		}
	}
}

// BenchmarkProcSwitch measures one full coroutine round trip: Delay
// parks the process (timer event into the heap) and the scheduler
// resumes it next cycle.
func BenchmarkProcSwitch(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	e.Go("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Delay(1)
		}
	})
	if err := e.Run(); err != nil {
		b.Fatalf("Run: %v", err)
	}
}

// BenchmarkSemaphorePingPong measures the blocking handoff between two
// processes: each op is two releases, two wakeups through the ready
// ring, and two coroutine switches.
func BenchmarkSemaphorePingPong(b *testing.B) {
	e := NewEngine()
	ping := NewSemaphore(e, "ping", 0)
	pong := NewSemaphore(e, "pong", 0)
	b.ReportAllocs()
	e.Go("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Acquire(p)
			pong.Release()
		}
	})
	e.Go("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Release()
			pong.Acquire(p)
		}
	})
	if err := e.Run(); err != nil {
		b.Fatalf("Run: %v", err)
	}
}
