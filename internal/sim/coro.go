package sim

import "sync"

// A coro is a reusable worker goroutine that process bodies run on.
//
// Handoff protocol: exactly one logical token is in flight between the
// scheduler and the coroutine. The scheduler sends on resume and blocks
// on yield; the coroutine blocks on resume and sends on yield when it
// parks or finishes. Both channels have capacity 1, so the sender never
// blocks — each switch costs one buffered send and one blocking receive.
// The channel operations also carry the happens-before edges that make
// the unsynchronized Proc/coro field accesses race-free.
//
// Coroutines outlive the processes (and engines) they serve: when a body
// returns, the goroutine parks on resume and the coro goes back to a
// process-wide pool. Building thousands of short-lived SoCs across an
// experiment fan-out therefore stops creating goroutines and channels
// once the pool is warm.
type coro struct {
	resume chan struct{} // scheduler -> coroutine
	yield  chan struct{} // coroutine -> scheduler
	p      *Proc         // body to run; set by the scheduler before resume
	quit   bool          // set (before resume) to retire the goroutine
}

// coroPool keeps idle coroutines for reuse. A plain mutex-guarded stack
// rather than sync.Pool: pooled coros own parked goroutines, which must
// not be dropped silently by a GC cycle.
var coroPool struct {
	mu   sync.Mutex
	free []*coro
}

// maxIdleCoros bounds the goroutines parked in the pool. Beyond it,
// retiring coroutines simply exit; 256 comfortably covers the peak
// concurrent process count of the experiment fan-out.
const maxIdleCoros = 256

func getCoro() *coro {
	coroPool.mu.Lock()
	if n := len(coroPool.free); n > 0 {
		c := coroPool.free[n-1]
		coroPool.free[n-1] = nil
		coroPool.free = coroPool.free[:n-1]
		coroPool.mu.Unlock()
		return c
	}
	coroPool.mu.Unlock()
	c := &coro{resume: make(chan struct{}, 1), yield: make(chan struct{}, 1)}
	go c.loop()
	return c
}

func putCoro(c *coro) {
	coroPool.mu.Lock()
	if len(coroPool.free) < maxIdleCoros {
		coroPool.free = append(coroPool.free, c)
		coroPool.mu.Unlock()
		return
	}
	coroPool.mu.Unlock()
	c.quit = true
	c.resume <- struct{}{}
}

// loop runs process bodies handed over by schedulers until retired.
func (c *coro) loop() {
	for {
		<-c.resume
		if c.quit {
			return
		}
		p := c.p
		p.fn(p)
		p.fn = nil
		p.state = procDone
		c.p = nil
		c.yield <- struct{}{}
	}
}
