package sim

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []Cycles
	for _, at := range []Cycles{30, 10, 20, 10, 5} {
		at := at
		e.Schedule(at, func() { order = append(order, at) })
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Cycles{5, 10, 10, 20, 30}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestEngineFIFOAmongSameCycleEvents(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events not FIFO: %v", order)
		}
	}
}

func TestSchedulePastClampsToNow(t *testing.T) {
	e := NewEngine()
	ranAt := Cycles(-1)
	e.Schedule(50, func() {
		e.Schedule(10, func() { ranAt = e.Now() }) // in the past
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ranAt != 50 {
		t.Fatalf("past event ran at %d, want 50", ranAt)
	}
}

func TestEventsScheduledDuringRunExecute(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			e.After(10, recurse)
		}
	}
	e.Schedule(0, recurse)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if depth != 5 {
		t.Fatalf("depth = %d, want 5", depth)
	}
	if e.Now() != 40 {
		t.Fatalf("Now = %d, want 40", e.Now())
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	e := NewEngine()
	var ran []Cycles
	for _, at := range []Cycles{10, 20, 30} {
		at := at
		e.Schedule(at, func() { ran = append(ran, at) })
	}
	if err := e.RunUntil(20); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(ran) != 2 {
		t.Fatalf("ran %v, want first two", ran)
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %d, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
}

func TestRunRejectsReentrantCalls(t *testing.T) {
	e := NewEngine()
	var runErr, untilErr error
	e.Schedule(10, func() {
		runErr = e.Run()
		untilErr = e.RunUntil(100)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if runErr == nil {
		t.Fatal("reentrant Run should fail")
	}
	if untilErr == nil {
		t.Fatal("reentrant RunUntil should fail")
	}
}

func TestRunUntilReentrantFromProc(t *testing.T) {
	e := NewEngine()
	var gotErr error
	e.Go("p", func(p *Proc) {
		gotErr = e.RunUntil(50)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if gotErr == nil {
		t.Fatal("RunUntil from inside a process should fail")
	}
}

func TestProcDelayAdvancesClock(t *testing.T) {
	e := NewEngine()
	var marks []Cycles
	e.Go("p", func(p *Proc) {
		marks = append(marks, p.Now())
		p.Delay(100)
		marks = append(marks, p.Now())
		p.Delay(50)
		marks = append(marks, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Cycles{0, 100, 150}
	for i, w := range want {
		if marks[i] != w {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var trace []string
		spawn := func(name string, period Cycles) {
			e.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Delay(period)
					trace = append(trace, name)
				}
			})
		}
		spawn("a", 10)
		spawn("b", 15)
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return trace
	}
	first := run()
	for i := 0; i < 10; i++ {
		again := run()
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("non-deterministic trace: %v vs %v", first, again)
			}
		}
	}
	// a wakes at 10,20,30; b wakes at 15,30,45. At t=30 b's wake event was
	// scheduled (at t=15) before a's (at t=20), so b runs first.
	want := []string{"a", "b", "a", "b", "a", "b"}
	for i, w := range want {
		if first[i] != w {
			t.Fatalf("trace = %v, want %v", first, want)
		}
	}
}

func TestWaitUntilPastReturnsImmediately(t *testing.T) {
	e := NewEngine()
	e.Go("p", func(p *Proc) {
		p.Delay(100)
		p.WaitUntil(50) // already past
		if p.Now() != 100 {
			t.Errorf("Now = %d, want 100", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSemaphoreMutualExclusion(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "device", 1)
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		e.Go("worker", func(p *Proc) {
			sem.Acquire(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Delay(10)
			inside--
			sem.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if maxInside != 1 {
		t.Fatalf("maxInside = %d, want 1", maxInside)
	}
	if e.Now() != 40 {
		t.Fatalf("Now = %d, want 40 (serialized)", e.Now())
	}
}

func TestSemaphoreFIFOOrder(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "device", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			p.Delay(Cycles(i)) // arrive in index order
			sem.Acquire(p)
			order = append(order, i)
			p.Delay(100)
			sem.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("grant order = %v, want FIFO", order)
		}
	}
}

func TestSemaphoreCounting(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "pool", 2)
	var done Cycles
	for i := 0; i < 4; i++ {
		e.Go("w", func(p *Proc) {
			sem.Acquire(p)
			p.Delay(10)
			sem.Release()
			done = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if done != 20 {
		t.Fatalf("finished at %d, want 20 (two waves of two)", done)
	}
}

func TestTryAcquire(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "s", 1)
	if !sem.TryAcquire() {
		t.Fatal("first TryAcquire should succeed")
	}
	if sem.TryAcquire() {
		t.Fatal("second TryAcquire should fail")
	}
	sem.Release()
	if !sem.TryAcquire() {
		t.Fatal("TryAcquire after Release should succeed")
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "never", 0)
	e.Go("stuck", func(p *Proc) { sem.Acquire(p) })
	err := e.Run()
	if err == nil {
		t.Fatal("Run should report deadlock")
	}
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestDeadlockErrorListsParkedProcessNames(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "never", 0)
	e.Go("alpha", func(p *Proc) { sem.Acquire(p) })
	e.Go("beta", func(p *Proc) { p.Delay(5) }) // finishes fine
	e.Go("gamma", func(p *Proc) { sem.Acquire(p) })
	err := e.Run()
	if err == nil {
		t.Fatal("Run should report deadlock")
	}
	msg := err.Error()
	if !strings.Contains(msg, "alpha") || !strings.Contains(msg, "gamma") {
		t.Fatalf("deadlock error should name alpha and gamma: %q", msg)
	}
	if strings.Contains(msg, "beta") {
		t.Fatalf("deadlock error should not name the finished process: %q", msg)
	}
	if !strings.Contains(msg, "2 process(es)") {
		t.Fatalf("deadlock error should count 2 parked processes: %q", msg)
	}
}

// Regression: a release from an engine event (not a process) must hand
// off to the waiters at the release cycle, in FIFO wait order.
func TestSemaphoreReleaseFromEngineFIFOHandoff(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "dev", 0)
	type grant struct {
		id int
		at Cycles
	}
	var grants []grant
	for i := 0; i < 3; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			p.Delay(Cycles(i)) // enqueue in index order
			sem.Acquire(p)
			grants = append(grants, grant{i, p.Now()})
		})
	}
	e.Schedule(50, func() {
		for i := 0; i < 3; i++ {
			sem.Release()
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(grants) != 3 {
		t.Fatalf("grants = %v, want 3", grants)
	}
	for i, g := range grants {
		if g.id != i {
			t.Fatalf("grant order = %v, want FIFO", grants)
		}
		if g.at != 50 {
			t.Fatalf("waiter %d woke at %d, want the release cycle 50", g.id, g.at)
		}
	}
}

// Regression: WaitGroup.Done from an engine event wakes all waiters at
// the completion cycle, in Wait order.
func TestWaitGroupDoneFromEngineFIFOHandoff(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e)
	wg.Add(1)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Go("j", func(p *Proc) {
			p.Delay(Cycles(i))
			wg.Wait(p)
			if p.Now() != 40 {
				t.Errorf("waiter %d woke at %d, want 40", i, p.Now())
			}
			order = append(order, i)
		})
	}
	e.Schedule(40, wg.Done)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{0, 1, 2}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

// A same-cycle wakeup must not overtake an earlier-scheduled event at
// the same cycle: wakeups and heap events share one (at, seq) order.
func TestWakeupDoesNotOvertakeSameCycleEvents(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "s", 0)
	var trace []string
	e.Go("w", func(p *Proc) {
		sem.Acquire(p)
		trace = append(trace, "woken")
	})
	e.Schedule(10, func() {
		sem.Release()                                         // wakeup at (10, seq)
		e.Schedule(10, func() { trace = append(trace, "b") }) // (10, seq+1)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"woken", "b"}
	for i, w := range want {
		if i >= len(trace) || trace[i] != w {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestEngineReset(t *testing.T) {
	run := func(e *Engine) []Cycles {
		var marks []Cycles
		e.Go("p", func(p *Proc) {
			p.Delay(10)
			marks = append(marks, p.Now())
			p.Delay(20)
			marks = append(marks, p.Now())
		})
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return marks
	}
	e := NewEngine()
	first := run(e)
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 {
		t.Fatalf("Reset left Now=%d Pending=%d", e.Now(), e.Pending())
	}
	second := run(e)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("reused engine diverged: %v vs %v", first, second)
		}
	}
}

func TestResetPanicsWithLiveProcesses(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "never", 0)
	e.Go("stuck", func(p *Proc) { sem.Acquire(p) })
	if err := e.Run(); err == nil {
		t.Fatal("expected deadlock")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reset with a parked process should panic")
		}
	}()
	e.Reset()
}

// Sequentially completed processes reuse pooled coroutines instead of
// spawning a goroutine each (white-box: inspects the package pool).
func TestCoroutinesAreReused(t *testing.T) {
	drainCoroPool()
	e := NewEngine()
	for round := 0; round < 8; round++ {
		e.Go("p", func(p *Proc) { p.Delay(3) })
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	coroPool.mu.Lock()
	idle := len(coroPool.free)
	coroPool.mu.Unlock()
	if idle != 1 {
		t.Fatalf("pool holds %d coroutines after 8 sequential processes, want 1 (reused)", idle)
	}
}

// drainCoroPool retires every pooled coroutine so pool-size assertions
// start from a known state.
func drainCoroPool() {
	coroPool.mu.Lock()
	free := coroPool.free
	coroPool.free = nil
	coroPool.mu.Unlock()
	for _, c := range free {
		c.quit = true
		c.resume <- struct{}{}
	}
}

func TestWaitGroupJoins(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e)
	var joined Cycles
	for _, d := range []Cycles{10, 30, 20} {
		d := d
		wg.Add(1)
		e.Go("w", func(p *Proc) {
			p.Delay(d)
			wg.Done()
		})
	}
	e.Go("joiner", func(p *Proc) {
		wg.Wait(p)
		joined = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if joined != 30 {
		t.Fatalf("joined at %d, want 30", joined)
	}
}

func TestWaitGroupZeroCountReturnsImmediately(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e)
	ran := false
	e.Go("j", func(p *Proc) {
		wg.Wait(p)
		ran = true
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Fatal("waiter did not run")
	}
}

func TestResourceSerializesOverlappingRequests(t *testing.T) {
	r := NewResource("dram")
	s1, e1 := r.Acquire(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first grant (%d,%d), want (0,10)", s1, e1)
	}
	s2, e2 := r.Acquire(5, 10)
	if s2 != 10 || e2 != 20 {
		t.Fatalf("second grant (%d,%d), want (10,20)", s2, e2)
	}
	s3, e3 := r.Acquire(100, 5)
	if s3 != 100 || e3 != 105 {
		t.Fatalf("idle grant (%d,%d), want (100,105)", s3, e3)
	}
	if r.BusyCycles() != 25 {
		t.Fatalf("busy = %d, want 25", r.BusyCycles())
	}
	if r.Grants() != 3 {
		t.Fatalf("grants = %d, want 3", r.Grants())
	}
}

func TestResourceZeroDurationIsOrderingPoint(t *testing.T) {
	r := NewResource("x")
	r.Acquire(0, 10)
	s, e := r.Acquire(0, 0)
	if s != 10 || e != 10 {
		t.Fatalf("grant (%d,%d), want (10,10)", s, e)
	}
}

func TestMultiResourceParallelServers(t *testing.T) {
	m := NewMultiResource("cpus", 2)
	_, e1 := m.Acquire(0, 10)
	_, e2 := m.Acquire(0, 10)
	if e1 != 10 || e2 != 10 {
		t.Fatalf("two servers should run in parallel: %d, %d", e1, e2)
	}
	s3, _ := m.Acquire(0, 10)
	if s3 != 10 {
		t.Fatalf("third request should queue: start %d, want 10", s3)
	}
	if m.Servers() != 2 {
		t.Fatalf("Servers = %d, want 2", m.Servers())
	}
}

func TestMultiResourcePicksEarliestServer(t *testing.T) {
	m := NewMultiResource("cpus", 2)
	m.Acquire(0, 100) // server 0 busy until 100
	m.Acquire(0, 10)  // server 1 busy until 10
	s, _ := m.Acquire(0, 5)
	if s != 10 {
		t.Fatalf("start = %d, want 10 (earliest server)", s)
	}
}

// Property: resource grants never overlap and never start before request.
func TestResourceGrantInvariants(t *testing.T) {
	f := func(reqs []uint16) bool {
		r := NewResource("p")
		var lastEnd Cycles
		var at Cycles
		for _, raw := range reqs {
			at += Cycles(raw % 97)
			dur := Cycles(raw % 13)
			s, e := r.Acquire(at, dur)
			if s < at || s < lastEnd || e != s+dur {
				return false
			}
			lastEnd = e
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the engine clock never goes backwards.
func TestClockMonotonicProperty(t *testing.T) {
	f := func(delays []uint8) bool {
		e := NewEngine()
		ok := true
		last := Cycles(0)
		for _, d := range delays {
			d := Cycles(d)
			e.Schedule(d, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds too similar: %d collisions", same)
	}
}

func TestRNGBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
		if v := r.Int63n(1 << 40); v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestRNGFloat64RoughlyUniform(t *testing.T) {
	r := NewRNG(99)
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.45 || mean > 0.55 {
		t.Fatalf("mean = %g, want ≈0.5", mean)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(1)
	s := r.Split()
	if r.Uint64() == s.Uint64() {
		t.Fatal("split stream mirrors parent")
	}
}
