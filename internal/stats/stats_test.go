package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); !almostEqual(got, 2) {
		t.Fatalf("Mean = %g, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %g, want 0", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almostEqual(got, 2) {
		t.Fatalf("GeoMean = %g, want 2", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); !almostEqual(got, 2) {
		t.Fatalf("GeoMean = %g, want 2", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("GeoMean(nil) = %g, want 0", got)
	}
}

func TestGeoMeanZeroClamped(t *testing.T) {
	got := GeoMean([]float64{0, 1})
	if got <= 0 {
		t.Fatalf("GeoMean with zero entry should stay positive, got %g", got)
	}
	if got > 1 {
		t.Fatalf("GeoMean([0,1]) = %g, should be < 1", got)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 6}, []float64{4, 3})
	if !almostEqual(got[0], 0.5) || !almostEqual(got[1], 2) {
		t.Fatalf("Normalize = %v", got)
	}
}

func TestNormalizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Normalize([]float64{1}, []float64{1, 2})
}

func TestMinMaxArgMin(t *testing.T) {
	xs := []float64{3, 1, 2, 1}
	if Min(xs) != 1 {
		t.Fatalf("Min = %g", Min(xs))
	}
	if Max(xs) != 3 {
		t.Fatalf("Max = %g", Max(xs))
	}
	if ArgMin(xs) != 1 {
		t.Fatalf("ArgMin = %d, want first of ties", ArgMin(xs))
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, 2.5}); !almostEqual(got, 4) {
		t.Fatalf("Sum = %g", got)
	}
}

func TestRatioAvoidsDivisionByZero(t *testing.T) {
	if got := Ratio(1, 0); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("Ratio(1,0) = %g, want finite", got)
	}
}

// Property: geomean of positive values lies between min and max.
func TestGeoMeanBoundedProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)/100 + 0.01 // positive
		}
		g := GeoMean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: geomean ≤ arithmetic mean (AM–GM) for positive values.
func TestAMGMProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)/50 + 0.02
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: normalizing a series by itself gives all ones.
func TestSelfNormalizeProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) + 1
		}
		for _, v := range Normalize(xs, xs) {
			if !almostEqual(v, 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
