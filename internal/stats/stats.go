// Package stats provides the small set of statistics used by the
// experiment harness: means, geometric means, and normalization against a
// baseline series, matching how the paper reports results (each policy
// normalized to Fixed non-coherent DMA, then geomean over phases).
package stats

import "math"

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. Non-positive entries are
// clamped to Epsilon so that an occasional zero measurement (e.g. zero
// off-chip accesses in a phase) does not collapse the mean to zero; the
// paper's plots have the same practical issue since they display ratios.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x < Epsilon {
			x = Epsilon
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Epsilon is the floor applied by GeoMean and Ratio to avoid division by
// and logarithms of zero.
const Epsilon = 1e-9

// Ratio returns num/den with den floored at Epsilon.
func Ratio(num, den float64) float64 {
	if den < Epsilon {
		den = Epsilon
	}
	return num / den
}

// Normalize returns xs[i]/base[i] element-wise. The slices must have the
// same length.
func Normalize(xs, base []float64) []float64 {
	if len(xs) != len(base) {
		panic("stats: Normalize length mismatch")
	}
	out := make([]float64, len(xs))
	for i := range xs {
		out[i] = Ratio(xs[i], base[i])
	}
	return out
}

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMin returns the index of the smallest element; ties resolve to the
// earliest index. It panics on an empty slice.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		panic("stats: ArgMin of empty slice")
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
