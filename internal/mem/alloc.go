package mem

import "fmt"

// Allocator hands out whole pages, spreading consecutive pages of one
// dataset across partitions to balance DRAM channel load, the way ESP's
// large-page accelerator allocator distributes data across memory tiles.
// Placement picks the least-loaded partition (by allocated bytes) with a
// free page; ties resolve to the lowest partition index, keeping
// allocation deterministic.
type Allocator struct {
	m         *AddressMap
	freePages [][]int32 // per partition: stack of free page indices (descending, pop from end)
	usedBytes []int64   // per partition
}

// NewAllocator returns an allocator over the whole address space of m.
func NewAllocator(m *AddressMap) *Allocator {
	a := &Allocator{
		m:         m,
		freePages: make([][]int32, m.partitions),
		usedBytes: make([]int64, m.partitions),
	}
	pagesPerPart := int32(m.partLines / PageLines)
	for p := range a.freePages {
		stack := make([]int32, pagesPerPart)
		for i := int32(0); i < pagesPerPart; i++ {
			stack[i] = pagesPerPart - 1 - i // lowest page index on top
		}
		a.freePages[p] = stack
	}
	return a
}

// Alloc reserves bytes of memory (rounded up to whole pages) and returns
// the backing buffer, or an error if DRAM is exhausted.
func (a *Allocator) Alloc(bytes int64) (*Buffer, error) {
	if bytes <= 0 {
		return nil, fmt.Errorf("mem: allocation of %d bytes", bytes)
	}
	pages := int((bytes + PageBytes - 1) / PageBytes)
	buf := &Buffer{Bytes: bytes}
	for i := 0; i < pages; i++ {
		p := a.pickPartition()
		if p < 0 {
			a.Free(buf)
			return nil, fmt.Errorf("mem: out of memory allocating %d bytes", bytes)
		}
		stack := a.freePages[p]
		page := stack[len(stack)-1]
		a.freePages[p] = stack[:len(stack)-1]
		a.usedBytes[p] += PageBytes
		start := a.m.PartitionBase(p) + LineAddr(int64(page)*PageLines)
		// Merge with the previous extent when physically contiguous and on
		// the same partition (extents must never span partitions: the SoC
		// layer relies on one home memory tile per extent).
		if n := len(buf.Extents); n > 0 && buf.Extents[n-1].End() == start &&
			a.m.Home(buf.Extents[n-1].Start) == p {
			buf.Extents[n-1].Lines += PageLines
		} else {
			buf.Extents = append(buf.Extents, Extent{Start: start, Lines: PageLines})
		}
	}
	return buf, nil
}

// pickPartition returns the least-loaded partition with a free page, or
// -1 when memory is exhausted.
func (a *Allocator) pickPartition() int {
	best := -1
	for p := range a.freePages {
		if len(a.freePages[p]) == 0 {
			continue
		}
		if best < 0 || a.usedBytes[p] < a.usedBytes[best] {
			best = p
		}
	}
	return best
}

// Free returns the buffer's pages to the allocator. Freeing a nil buffer
// is a no-op.
func (a *Allocator) Free(buf *Buffer) {
	if buf == nil {
		return
	}
	for _, e := range buf.Extents {
		p := a.m.Home(e.Start)
		pageBase := (int64(e.Start) - int64(a.m.PartitionBase(p))) / PageLines
		for i := int64(0); i < e.Lines/PageLines; i++ {
			a.freePages[p] = append(a.freePages[p], int32(pageBase+i))
			a.usedBytes[p] -= PageBytes
		}
	}
	buf.Extents = nil
}

// UsedBytes reports the bytes currently allocated on partition p.
func (a *Allocator) UsedBytes(p int) int64 { return a.usedBytes[p] }

// FreePages reports the free pages remaining on partition p.
func (a *Allocator) FreePages(p int) int { return len(a.freePages[p]) }
