package mem

import (
	"fmt"

	"cohmeleon/internal/sim"
)

// Controller models one DRAM controller: a fixed access latency plus a
// data channel with the paper's bandwidth of 32 bits per cycle
// (LineBytes/4 cycles of channel occupancy per line). Each memory tile
// hosts one controller. The controller also implements the paper's
// off-chip access monitor: a counter of line transfers, readable by
// software.
type Controller struct {
	tile    int
	channel *sim.Resource
	latency sim.Cycles
	perLine sim.Cycles
	reads   int64
	writes  int64
}

// NewController creates a controller for the given memory tile.
// latency is the fixed access latency per burst; perLine is the channel
// occupancy per cache line (LineBytes / channel bytes-per-cycle).
func NewController(tile int, latency, perLine sim.Cycles) *Controller {
	if perLine <= 0 {
		panic("mem: controller needs positive per-line occupancy")
	}
	return &Controller{
		tile:    tile,
		channel: sim.NewResource(fmt.Sprintf("dram-%d", tile)),
		latency: latency,
		perLine: perLine,
	}
}

// Access performs a burst of the given number of lines starting no
// earlier than at and returns its completion time. The burst pays the
// fixed latency once and occupies the channel for lines×perLine cycles;
// concurrent bursts queue FIFO. The access counter advances by lines.
func (c *Controller) Access(at sim.Cycles, lines int64, write bool) sim.Cycles {
	if lines <= 0 {
		return at
	}
	_, end := c.channel.Acquire(at, sim.Cycles(lines)*c.perLine)
	if write {
		c.writes += lines
	} else {
		c.reads += lines
	}
	return end + c.latency
}

// Post enqueues a posted write (or read for prefetch-like traffic): it
// reserves channel occupancy and counts the access, but returns the
// channel-accept time without the access latency, modelling writes the
// requester does not wait on.
func (c *Controller) Post(at sim.Cycles, lines int64, write bool) sim.Cycles {
	if lines <= 0 {
		return at
	}
	_, end := c.channel.Acquire(at, sim.Cycles(lines)*c.perLine)
	if write {
		c.writes += lines
	} else {
		c.reads += lines
	}
	return end
}

// Tile returns the memory tile index this controller belongs to.
func (c *Controller) Tile() int { return c.tile }

// Total returns the monitor value: total line accesses (reads + writes).
func (c *Controller) Total() int64 { return c.reads + c.writes }

// Reads returns the read-line count.
func (c *Controller) Reads() int64 { return c.reads }

// Writes returns the written-line count.
func (c *Controller) Writes() int64 { return c.writes }

// BusyCycles returns total channel occupancy, for utilization reports.
func (c *Controller) BusyCycles() sim.Cycles { return c.channel.BusyCycles() }
