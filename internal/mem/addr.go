// Package mem models the partitioned physical memory of an ESP-style
// SoC: a global address space divided into one contiguous partition per
// memory tile, a page-granular allocator that spreads datasets across
// partitions, and DRAM controllers with fixed latency and the paper's
// 32-bits-per-cycle channel bandwidth.
package mem

import (
	"fmt"
	"math/bits"
)

// Line geometry. The simulator tracks memory at cache-line granularity.
const (
	LineBytes = 64 // cache-line size
	LineShift = 6  // log2(LineBytes)
)

// Page geometry. ESP allocates accelerator data in big pages so the
// accelerator TLB holds the whole page table; we use 1 MB pages.
const (
	PageBytes = 1 << 20
	PageLines = PageBytes / LineBytes
	// PageLineShift is log2(PageLines), for shift-based page arithmetic.
	PageLineShift = 14
)

// Compile-time check that PageLineShift matches PageLines.
var _ = [1]struct{}{}[PageLines-1<<PageLineShift]

// LineAddr is a global physical cache-line address (byte address divided
// by LineBytes).
type LineAddr int64

// AddressMap describes the partitioning of the global address space
// across memory tiles: partition i owns lines
// [i*PartLines, (i+1)*PartLines).
type AddressMap struct {
	partitions int
	partLines  int64
	partShift  uint // log2(partLines) when partLines is a power of two, else 0
}

// NewAddressMap creates a map with the given number of partitions, each
// holding partBytes of DRAM. partBytes must be a multiple of PageBytes.
func NewAddressMap(partitions int, partBytes int64) *AddressMap {
	if partitions <= 0 {
		panic("mem: need at least one partition")
	}
	if partBytes <= 0 || partBytes%PageBytes != 0 {
		panic(fmt.Sprintf("mem: partition size %d not a positive multiple of page size", partBytes))
	}
	m := &AddressMap{partitions: partitions, partLines: partBytes / LineBytes}
	if m.partLines&(m.partLines-1) == 0 {
		m.partShift = uint(bits.TrailingZeros64(uint64(m.partLines)))
	}
	return m
}

// Partitions returns the number of memory partitions (memory tiles).
func (m *AddressMap) Partitions() int { return m.partitions }

// PartLines returns the number of lines per partition.
func (m *AddressMap) PartLines() int64 { return m.partLines }

// Home returns the partition that owns the given line.
func (m *AddressMap) Home(line LineAddr) int {
	var p int
	if m.partShift != 0 {
		p = int(uint64(line) >> m.partShift) // line is non-negative for any valid address
	} else {
		p = int(int64(line) / m.partLines)
	}
	if p < 0 || p >= m.partitions {
		panic(fmt.Sprintf("mem: line %d outside address space", line))
	}
	return p
}

// PartitionBase returns the first line of partition p.
func (m *AddressMap) PartitionBase(p int) LineAddr {
	return LineAddr(int64(p) * m.partLines)
}

// TotalBytes returns the size of the whole address space.
func (m *AddressMap) TotalBytes() int64 {
	return int64(m.partitions) * m.partLines * LineBytes
}

// Extent is a contiguous run of physical lines within one partition.
type Extent struct {
	Start LineAddr
	Lines int64
}

// End returns one past the last line of the extent.
func (e Extent) End() LineAddr { return e.Start + LineAddr(e.Lines) }

// Buffer is an allocated dataset: a logically contiguous region backed by
// one or more physical extents (whole pages), possibly on different
// partitions. Logical offsets map to extents in order.
type Buffer struct {
	Bytes   int64
	Extents []Extent
}

// Lines returns the dataset size in cache lines (rounded up).
func (b *Buffer) Lines() int64 {
	return (b.Bytes + LineBytes - 1) / LineBytes
}

// LineAt maps a logical line offset in [0, Lines()) to its physical line.
func (b *Buffer) LineAt(logical int64) LineAddr {
	if logical < 0 {
		panic("mem: negative logical line")
	}
	for _, e := range b.Extents {
		if logical < e.Lines {
			return e.Start + LineAddr(logical)
		}
		logical -= e.Lines
	}
	panic(fmt.Sprintf("mem: logical line %d beyond buffer", logical))
}

// Pages returns the number of physical pages backing the buffer.
func (b *Buffer) Pages() int {
	n := 0
	for _, e := range b.Extents {
		n += int(e.Lines / PageLines)
	}
	return n
}

// BytesOnPartition returns how many bytes of the buffer live on partition
// p. The final page may be partially used; bytes are attributed in
// logical order so the sum over partitions equals Bytes.
func (b *Buffer) BytesOnPartition(m *AddressMap, p int) int64 {
	var total, remaining int64
	remaining = b.Bytes
	for _, e := range b.Extents {
		extentBytes := e.Lines * LineBytes
		used := extentBytes
		if used > remaining {
			used = remaining
		}
		if m.Home(e.Start) == p {
			total += used
		}
		remaining -= used
		if remaining <= 0 {
			break
		}
	}
	return total
}

// Partitions returns the sorted set of partitions the buffer touches.
func (b *Buffer) Partitions(m *AddressMap) []int {
	seen := make(map[int]bool)
	var out []int
	for _, e := range b.Extents {
		p := m.Home(e.Start)
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	// Extents are appended in allocation order; keep deterministic order
	// by partition index.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
