package mem

import (
	"testing"
	"testing/quick"
)

func testMap() *AddressMap { return NewAddressMap(4, 64*PageBytes) }

func TestAddressMapHome(t *testing.T) {
	m := testMap()
	if m.Partitions() != 4 {
		t.Fatalf("Partitions = %d", m.Partitions())
	}
	if m.Home(0) != 0 {
		t.Fatal("line 0 should live on partition 0")
	}
	last := LineAddr(m.PartLines()*4 - 1)
	if m.Home(last) != 3 {
		t.Fatalf("last line on partition %d, want 3", m.Home(last))
	}
	for p := 0; p < 4; p++ {
		if m.Home(m.PartitionBase(p)) != p {
			t.Fatalf("PartitionBase(%d) not homed correctly", p)
		}
	}
}

func TestAddressMapOutOfRangePanics(t *testing.T) {
	m := testMap()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Home(LineAddr(m.TotalBytes())) // way past the end
}

func TestAllocSinglePage(t *testing.T) {
	m := testMap()
	a := NewAllocator(m)
	buf, err := a.Alloc(16 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Bytes != 16<<10 {
		t.Fatalf("Bytes = %d", buf.Bytes)
	}
	if buf.Lines() != 256 {
		t.Fatalf("Lines = %d, want 256", buf.Lines())
	}
	if buf.Pages() != 1 {
		t.Fatalf("Pages = %d, want 1", buf.Pages())
	}
	if got := len(buf.Partitions(m)); got != 1 {
		t.Fatalf("partitions touched = %d, want 1", got)
	}
}

func TestAllocSpreadsAcrossPartitions(t *testing.T) {
	m := testMap()
	a := NewAllocator(m)
	buf, err := a.Alloc(4 << 20) // 4 pages
	if err != nil {
		t.Fatal(err)
	}
	if got := len(buf.Partitions(m)); got != 4 {
		t.Fatalf("4MB buffer touches %d partitions, want 4 (load balancing)", got)
	}
	var total int64
	for p := 0; p < 4; p++ {
		total += buf.BytesOnPartition(m, p)
	}
	if total != buf.Bytes {
		t.Fatalf("BytesOnPartition sums to %d, want %d", total, buf.Bytes)
	}
}

func TestAllocLeastLoadedPlacement(t *testing.T) {
	m := testMap()
	a := NewAllocator(m)
	// First four single-page buffers land on four distinct partitions.
	seen := make(map[int]bool)
	for i := 0; i < 4; i++ {
		buf, err := a.Alloc(1)
		if err != nil {
			t.Fatal(err)
		}
		parts := buf.Partitions(m)
		if len(parts) != 1 {
			t.Fatalf("single page on %d partitions", len(parts))
		}
		seen[parts[0]] = true
	}
	if len(seen) != 4 {
		t.Fatalf("pages landed on %d partitions, want 4", len(seen))
	}
}

func TestLineAtCoversWholeBuffer(t *testing.T) {
	m := testMap()
	a := NewAllocator(m)
	buf, err := a.Alloc(3 << 20)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[LineAddr]bool)
	for i := int64(0); i < buf.Lines(); i++ {
		l := buf.LineAt(i)
		if seen[l] {
			t.Fatalf("line %d mapped twice", l)
		}
		seen[l] = true
	}
	if int64(len(seen)) != buf.Lines() {
		t.Fatalf("mapped %d distinct lines, want %d", len(seen), buf.Lines())
	}
}

func TestLineAtBeyondBufferPanics(t *testing.T) {
	m := testMap()
	a := NewAllocator(m)
	buf, _ := a.Alloc(PageBytes)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	buf.LineAt(PageLines + 5)
}

func TestFreeReturnsPages(t *testing.T) {
	m := testMap()
	a := NewAllocator(m)
	before := a.FreePages(0) + a.FreePages(1) + a.FreePages(2) + a.FreePages(3)
	buf, err := a.Alloc(8 << 20)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(buf)
	after := a.FreePages(0) + a.FreePages(1) + a.FreePages(2) + a.FreePages(3)
	if before != after {
		t.Fatalf("pages leaked: %d before, %d after", before, after)
	}
	for p := 0; p < 4; p++ {
		if a.UsedBytes(p) != 0 {
			t.Fatalf("partition %d still reports %d used bytes", p, a.UsedBytes(p))
		}
	}
}

func TestFreeNilIsNoop(t *testing.T) {
	a := NewAllocator(testMap())
	a.Free(nil) // must not panic
}

func TestAllocExhaustion(t *testing.T) {
	m := NewAddressMap(1, 2*PageBytes)
	a := NewAllocator(m)
	if _, err := a.Alloc(2 * PageBytes); err != nil {
		t.Fatalf("first alloc should fit: %v", err)
	}
	if _, err := a.Alloc(1); err == nil {
		t.Fatal("exhausted allocator should error")
	}
}

func TestAllocZeroRejected(t *testing.T) {
	a := NewAllocator(testMap())
	if _, err := a.Alloc(0); err == nil {
		t.Fatal("zero-byte alloc should error")
	}
}

func TestExtentMergingWithinPartition(t *testing.T) {
	m := NewAddressMap(1, 64*PageBytes) // single partition forces contiguity
	a := NewAllocator(m)
	buf, err := a.Alloc(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf.Extents) != 1 {
		t.Fatalf("contiguous pages should merge into one extent, got %d", len(buf.Extents))
	}
}

// Property: alloc/free round-trips conserve free-page counts and every
// allocated line is homed on a valid partition.
func TestAllocFreeConservationProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		m := testMap()
		a := NewAllocator(m)
		var bufs []*Buffer
		for _, s := range sizes {
			b, err := a.Alloc(int64(s%16+1) * 256 * 1024)
			if err != nil {
				break
			}
			for _, e := range b.Extents {
				p := m.Home(e.Start)
				if p < 0 || p >= m.Partitions() {
					return false
				}
			}
			bufs = append(bufs, b)
		}
		for _, b := range bufs {
			a.Free(b)
		}
		total := 0
		for p := 0; p < m.Partitions(); p++ {
			if a.UsedBytes(p) != 0 {
				return false
			}
			total += a.FreePages(p)
		}
		return total == 4*64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: no two live buffers share a physical line.
func TestNoAliasingProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		m := testMap()
		a := NewAllocator(m)
		owned := make(map[LineAddr]bool)
		for _, s := range sizes {
			b, err := a.Alloc(int64(s%8+1) * PageBytes)
			if err != nil {
				break
			}
			for _, e := range b.Extents {
				for l := e.Start; l < e.End(); l += PageLines {
					if owned[l] {
						return false
					}
					owned[l] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestControllerBurstTiming(t *testing.T) {
	c := NewController(0, 100, 16)
	done := c.Access(0, 4, false)
	if done != 4*16+100 {
		t.Fatalf("done = %d, want 164", done)
	}
	// Second burst queues behind the first on the channel.
	done2 := c.Access(0, 4, true)
	if done2 != 8*16+100 {
		t.Fatalf("done2 = %d, want 228", done2)
	}
	if c.Reads() != 4 || c.Writes() != 4 || c.Total() != 8 {
		t.Fatalf("counters reads=%d writes=%d total=%d", c.Reads(), c.Writes(), c.Total())
	}
}

func TestControllerZeroLines(t *testing.T) {
	c := NewController(0, 100, 16)
	if done := c.Access(50, 0, false); done != 50 {
		t.Fatalf("zero-line access should be free, got %d", done)
	}
	if c.Total() != 0 {
		t.Fatal("zero-line access should not count")
	}
}

func TestControllerBusyCycles(t *testing.T) {
	c := NewController(2, 100, 16)
	c.Access(0, 10, false)
	if c.BusyCycles() != 160 {
		t.Fatalf("busy = %d, want 160", c.BusyCycles())
	}
	if c.Tile() != 2 {
		t.Fatalf("Tile = %d", c.Tile())
	}
}
