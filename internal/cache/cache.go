// Package cache implements the tag-state side of the ESP cache
// hierarchy: set-associative private caches with MESI states and an
// inclusive, directory-based last-level cache (LLC). The package is a
// pure state machine — it answers "what happened" (hit, miss, victim,
// owner, sharers) and leaves all timing to the SoC layer, which converts
// those outcomes into NoC transfers and resource occupancy. This split
// keeps coherence state independently testable.
package cache

import (
	"fmt"

	"cohmeleon/internal/mem"
)

// State is the MESI state of a line in a private cache.
type State uint8

// MESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String returns the one-letter MESI name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Dirty reports whether the state holds data newer than the next level.
func (s State) Dirty() bool { return s == Modified }

// Valid reports whether the state holds usable data.
func (s State) Valid() bool { return s != Invalid }

// way is one tag-store entry of a private cache. The layout is packed to
// 16 bytes so a 4-way set spans a single hardware cache line: tag scans
// are the simulator's hottest loop. Invalid ways keep line == noLine so
// the hit scan needs only the tag compare (valid lines are never
// negative).
type way struct {
	line  mem.LineAddr
	lru   uint32
	state State
}

// noLine is the tag stored in invalid ways; no allocated line address is
// negative, so a single tag compare suffices to detect hits.
const noLine mem.LineAddr = -1

// Stats counts cache events since construction.
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64 // dirty evictions + flush writebacks
}

// Cache is a set-associative private cache (a CPU L2 or an accelerator's
// private cache in ESP terms) with LRU replacement.
type Cache struct {
	name    string
	sets    [][]way
	numSets int64
	setMask int64 // numSets-1 when numSets is a power of two, else 0
	tick    uint64
	stats   Stats
	lines   int // valid lines, for occupancy reporting
}

// New creates a cache of the given total size and associativity.
// sizeBytes must be a multiple of assoc×mem.LineBytes.
func New(name string, sizeBytes int64, assoc int) *Cache {
	if assoc <= 0 {
		panic("cache: associativity must be positive")
	}
	totalLines := sizeBytes / mem.LineBytes
	if totalLines <= 0 || totalLines%int64(assoc) != 0 {
		panic(fmt.Sprintf("cache: size %d not divisible into %d-way sets", sizeBytes, assoc))
	}
	numSets := totalLines / int64(assoc)
	c := &Cache{name: name, numSets: numSets, sets: make([][]way, numSets)}
	if numSets&(numSets-1) == 0 {
		c.setMask = numSets - 1
	}
	backing := make([]way, totalLines)
	for i := range backing {
		backing[i].line = noLine
	}
	for i := range c.sets {
		c.sets[i] = backing[int64(i)*int64(assoc) : (int64(i)+1)*int64(assoc)]
	}
	return c
}

// Name returns the cache name.
func (c *Cache) Name() string { return c.name }

// SizeBytes returns the cache capacity in bytes.
func (c *Cache) SizeBytes() int64 {
	return c.numSets * int64(len(c.sets[0])) * mem.LineBytes
}

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ValidLines returns the number of valid lines currently held.
func (c *Cache) ValidLines() int { return c.lines }

// bump advances the LRU tick and returns it as the stored uint32.
// Wrapping would silently invert eviction order, so it panics instead;
// 2^32 accesses of one cache in a single trial is orders of magnitude
// beyond any experiment (trials build fresh SoCs).
func (c *Cache) bump() uint32 {
	c.tick++
	t := uint32(c.tick)
	if t == 0 {
		panic("cache: " + c.name + ": LRU tick wrapped uint32")
	}
	return t
}

func (c *Cache) setOf(line mem.LineAddr) []way {
	if c.setMask != 0 {
		return c.sets[int64(line)&c.setMask]
	}
	idx := int64(line) % c.numSets
	if idx < 0 {
		idx += c.numSets
	}
	return c.sets[idx]
}

// Lookup returns the state of the line without touching LRU or counters.
func (c *Cache) Lookup(line mem.LineAddr) (State, bool) {
	set := c.setOf(line)
	for i := range set {
		w := &set[i]
		if w.line == line {
			return w.state, true
		}
	}
	return Invalid, false
}

// Access performs a lookup that counts as a cache access: on hit it
// refreshes LRU and returns the state; on miss it returns (Invalid,
// false). The caller decides what to do about the miss.
func (c *Cache) Access(line mem.LineAddr) (State, bool) {
	set := c.setOf(line)
	for i := range set {
		w := &set[i]
		if w.line == line {
			w.lru = c.bump()
			c.stats.Hits++
			return w.state, true
		}
	}
	c.stats.Misses++
	return Invalid, false
}

// AccessUpgrade performs Access and, when write is set and the hit state
// already carries write permission (Modified or Exclusive), upgrades the
// line to Modified in the same tag scan. It returns the state the line
// held before the upgrade. Equivalent to Access followed by SetState on
// the M/E write-hit path, without the second scan.
func (c *Cache) AccessUpgrade(line mem.LineAddr, write bool) (State, bool) {
	set := c.setOf(line)
	for i := range set {
		w := &set[i]
		if w.line == line {
			w.lru = c.bump()
			c.stats.Hits++
			st := w.state
			if write && (st == Modified || st == Exclusive) {
				w.state = Modified
			}
			return st, true
		}
	}
	c.stats.Misses++
	return Invalid, false
}

// Victim describes a line displaced by Insert.
type Victim struct {
	Line  mem.LineAddr
	State State
	Valid bool
}

// Insert fills the line with the given state, replacing the LRU way if
// the set is full, and returns the victim (Valid=false when an invalid
// way was used). Inserting a line that is already present updates its
// state in place and returns no victim.
func (c *Cache) Insert(line mem.LineAddr, st State) Victim {
	if st == Invalid {
		panic("cache: Insert with Invalid state")
	}
	set := c.setOf(line)
	tick := c.bump()
	var lruIdx = -1
	for i := range set {
		w := &set[i]
		if w.line == line {
			w.state = st
			w.lru = tick
			return Victim{}
		}
		if w.state == Invalid {
			if lruIdx < 0 || set[lruIdx].state != Invalid {
				lruIdx = i
			}
			continue
		}
		if lruIdx < 0 || (set[lruIdx].state != Invalid && w.lru < set[lruIdx].lru) {
			lruIdx = i
		}
	}
	w := &set[lruIdx]
	var v Victim
	if w.state != Invalid {
		v = Victim{Line: w.line, State: w.state, Valid: true}
		c.stats.Evictions++
		if w.state.Dirty() {
			c.stats.Writebacks++
		}
	} else {
		c.lines++
	}
	w.line = line
	w.state = st
	w.lru = tick
	return v
}

// SetState transitions the line to st if present; it reports whether the
// line was found. SetState(Invalid) behaves like Invalidate without
// returning dirtiness.
func (c *Cache) SetState(line mem.LineAddr, st State) bool {
	set := c.setOf(line)
	for i := range set {
		w := &set[i]
		if w.line == line {
			if st == Invalid {
				c.lines--
				w.line = noLine
			}
			w.state = st
			return true
		}
	}
	return false
}

// Invalidate drops the line and reports (present, wasDirty) so the
// caller can issue a writeback for recalled dirty data.
func (c *Cache) Invalidate(line mem.LineAddr) (present, wasDirty bool) {
	set := c.setOf(line)
	for i := range set {
		w := &set[i]
		if w.line == line {
			wasDirty = w.state.Dirty()
			if wasDirty {
				c.stats.Writebacks++
			}
			w.state = Invalid
			w.line = noLine
			c.lines--
			return true, wasDirty
		}
	}
	return false, false
}

// ForEachValid calls fn for every valid line. The callback must not
// mutate the cache; collect lines first, then act (range flushes do).
func (c *Cache) ForEachValid(fn func(line mem.LineAddr, st State)) {
	for _, set := range c.sets {
		for i := range set {
			if set[i].state != Invalid {
				fn(set[i].line, set[i].state)
			}
		}
	}
}

// Downgrade moves a Modified/Exclusive line to Shared and reports
// (present, wasDirty); a dirty line must be written back by the caller.
func (c *Cache) Downgrade(line mem.LineAddr) (present, wasDirty bool) {
	set := c.setOf(line)
	for i := range set {
		w := &set[i]
		if w.line == line {
			wasDirty = w.state.Dirty()
			if wasDirty {
				c.stats.Writebacks++
			}
			w.state = Shared
			return true, wasDirty
		}
	}
	return false, false
}
