package cache

import (
	"testing"
	"testing/quick"

	"cohmeleon/internal/mem"
)

// small cache: 4 sets × 2 ways = 8 lines.
func smallCache() *Cache { return New("l2", 8*mem.LineBytes, 2) }

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" ||
		Exclusive.String() != "E" || Modified.String() != "M" {
		t.Fatal("MESI names wrong")
	}
	if !Modified.Dirty() || Exclusive.Dirty() || Shared.Dirty() {
		t.Fatal("Dirty predicate wrong")
	}
	if Invalid.Valid() || !Shared.Valid() {
		t.Fatal("Valid predicate wrong")
	}
}

func TestInsertAndAccess(t *testing.T) {
	c := smallCache()
	if _, hit := c.Access(100); hit {
		t.Fatal("empty cache should miss")
	}
	c.Insert(100, Modified)
	st, hit := c.Access(100)
	if !hit || st != Modified {
		t.Fatalf("got (%v,%v), want (M,true)", st, hit)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if c.ValidLines() != 1 {
		t.Fatalf("ValidLines = %d", c.ValidLines())
	}
}

func TestInsertExistingUpdatesState(t *testing.T) {
	c := smallCache()
	c.Insert(100, Shared)
	v := c.Insert(100, Modified)
	if v.Valid {
		t.Fatal("re-insert should not evict")
	}
	if st, _ := c.Lookup(100); st != Modified {
		t.Fatalf("state = %v, want M", st)
	}
	if c.ValidLines() != 1 {
		t.Fatalf("ValidLines = %d, want 1", c.ValidLines())
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache() // 4 sets, 2 ways; lines k, k+4, k+8 map to same set
	c.Insert(0, Shared)
	c.Insert(4, Shared)
	c.Access(0) // 0 is now MRU; 4 is LRU
	v := c.Insert(8, Shared)
	if !v.Valid || v.Line != 4 {
		t.Fatalf("victim = %+v, want line 4", v)
	}
	if _, hit := c.Lookup(0); !hit {
		t.Fatal("MRU line 0 should survive")
	}
	if _, hit := c.Lookup(4); hit {
		t.Fatal("LRU line 4 should be gone")
	}
}

func TestDirtyEvictionCountsWriteback(t *testing.T) {
	c := smallCache()
	c.Insert(0, Modified)
	c.Insert(4, Shared)
	v := c.Insert(8, Shared) // evicts line 0 (LRU, dirty)
	if !v.Valid || !v.State.Dirty() {
		t.Fatalf("victim = %+v, want dirty line", v)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestInvalidate(t *testing.T) {
	c := smallCache()
	c.Insert(7, Modified)
	present, dirty := c.Invalidate(7)
	if !present || !dirty {
		t.Fatalf("Invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if _, hit := c.Lookup(7); hit {
		t.Fatal("line still present after invalidate")
	}
	if c.ValidLines() != 0 {
		t.Fatalf("ValidLines = %d", c.ValidLines())
	}
	present, _ = c.Invalidate(7)
	if present {
		t.Fatal("double invalidate should report absent")
	}
}

func TestDowngrade(t *testing.T) {
	c := smallCache()
	c.Insert(3, Modified)
	present, dirty := c.Downgrade(3)
	if !present || !dirty {
		t.Fatalf("Downgrade = (%v,%v)", present, dirty)
	}
	if st, _ := c.Lookup(3); st != Shared {
		t.Fatalf("state = %v, want S", st)
	}
	present, dirty = c.Downgrade(99)
	if present || dirty {
		t.Fatal("absent line should report (false,false)")
	}
}

func TestSetState(t *testing.T) {
	c := smallCache()
	c.Insert(1, Exclusive)
	if !c.SetState(1, Modified) {
		t.Fatal("SetState on present line failed")
	}
	if st, _ := c.Lookup(1); st != Modified {
		t.Fatalf("state = %v", st)
	}
	if c.SetState(2, Shared) {
		t.Fatal("SetState on absent line should report false")
	}
	c.SetState(1, Invalid)
	if c.ValidLines() != 0 {
		t.Fatal("SetState(Invalid) should drop occupancy")
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	c := smallCache()
	for i := mem.LineAddr(0); i < 100; i++ {
		c.Insert(i, Shared)
	}
	if c.ValidLines() != 8 {
		t.Fatalf("ValidLines = %d, want 8 (capacity)", c.ValidLines())
	}
}

func TestNegativeLineAddrDoesNotPanic(t *testing.T) {
	// Line addresses are always non-negative in practice, but the set
	// index math should stay defensive.
	c := smallCache()
	c.Insert(-5, Shared)
	if _, hit := c.Lookup(-5); !hit {
		t.Fatal("negative line not found")
	}
}

func TestSizeBytes(t *testing.T) {
	c := New("x", 32<<10, 4)
	if c.SizeBytes() != 32<<10 {
		t.Fatalf("SizeBytes = %d", c.SizeBytes())
	}
	if c.Name() != "x" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New("a", 100, 3) }, // not divisible
		func() { New("b", 0, 1) },
		func() { New("c", 1024, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestInsertInvalidPanics(t *testing.T) {
	c := smallCache()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Insert(0, Invalid)
}

// Property: after any sequence of inserts, every line reported present is
// found in exactly one way, and ValidLines matches a full scan.
func TestCacheConsistencyProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New("p", 64*mem.LineBytes, 4)
		live := make(map[mem.LineAddr]bool)
		for _, op := range ops {
			line := mem.LineAddr(op % 256)
			switch op % 3 {
			case 0:
				v := c.Insert(line, Modified)
				live[line] = true
				if v.Valid {
					delete(live, v.Line)
				}
			case 1:
				present, _ := c.Invalidate(line)
				if present != live[line] {
					return false
				}
				delete(live, line)
			case 2:
				_, hit := c.Lookup(line)
				if hit != live[line] {
					return false
				}
			}
		}
		count := 0
		for line := range live {
			if _, hit := c.Lookup(line); !hit {
				return false
			}
			count++
		}
		return count == c.ValidLines()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a victim reported by Insert is never the line just inserted
// and is no longer present afterwards.
func TestVictimGoneProperty(t *testing.T) {
	f := func(lines []uint8) bool {
		c := New("p", 16*mem.LineBytes, 2)
		for _, l := range lines {
			line := mem.LineAddr(l)
			v := c.Insert(line, Shared)
			if v.Valid {
				if v.Line == line {
					return false
				}
				if _, hit := c.Lookup(v.Line); hit {
					return false
				}
			}
			if _, hit := c.Lookup(line); !hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
