package cache

import (
	"testing"

	"cohmeleon/internal/mem"
)

// Micro-benchmarks for the tag-scan hot path. The simulator calls these
// operations once per cache line per transfer, so regressions here move
// every experiment's wall clock. Geometry matches the evaluation SoCs
// (512 kB LLC slice, 8-way; 64 kB L2, 4-way).

const benchLines = 64 << 10 // working set larger than the structures

func BenchmarkCacheAccessHit(b *testing.B) {
	c := New("l2", 64<<10, 4)
	for l := mem.LineAddr(0); l < 1024; l++ {
		c.Insert(l, Exclusive)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(mem.LineAddr(i & 1023))
	}
}

func BenchmarkCacheInsertThrash(b *testing.B) {
	c := New("l2", 64<<10, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(mem.LineAddr(i&(benchLines-1)), Modified)
	}
}

func BenchmarkDirectoryAccessHit(b *testing.B) {
	d := NewDirectory("llc", 512<<10, 8)
	for l := mem.LineAddr(0); l < 8192; l++ {
		d.Insert(l, DirClean)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Access(mem.LineAddr(i & 8191))
	}
}

func BenchmarkDirectoryInsertThrash(b *testing.B) {
	d := NewDirectory("llc", 512<<10, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Insert(mem.LineAddr(i&(benchLines-1)), DirClean)
	}
}

// BenchmarkDirectoryAccessOrInsert exercises the merged scan on a
// thrashing mix (every second access misses and evicts).
func BenchmarkDirectoryAccessOrInsert(b *testing.B) {
	d := NewDirectory("llc", 512<<10, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.AccessOrInsert(mem.LineAddr(i&(benchLines-1)), DirClean)
	}
}

func BenchmarkSharerIteration(b *testing.B) {
	e := &DirEntry{Sharers: 0x8421_0842_1084_2108}
	var sum int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ForEachSharer(func(a int) { sum += a })
	}
	_ = sum
}
