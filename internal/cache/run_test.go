package cache

import (
	"fmt"
	"testing"

	"cohmeleon/internal/mem"
)

// The run-batched flows are pinned against the per-line reference at
// the SoC level (internal/soc/coherence_prop_test.go); these tests
// cover the cache-level contracts directly: the occupancy summary's
// exactness under every mutator, and the run operations' equivalence
// to their per-line counterparts on a bare directory.

func checkSummary(t *testing.T, d *Directory, owned, shared int) {
	t.Helper()
	if err := d.CheckSummary(); err != nil {
		t.Fatal(err)
	}
	if d.OwnedLines() != owned || d.SharedLines() != shared {
		t.Fatalf("summary owned=%d shared=%d, want %d/%d",
			d.OwnedLines(), d.SharedLines(), owned, shared)
	}
}

func TestOccupancySummaryTracksMutators(t *testing.T) {
	d := NewDirectory("llc", 32*mem.LineBytes, 2)
	if d.HasPrivateCopies() {
		t.Fatal("fresh directory must report no private copies")
	}
	e, _ := d.Insert(1, DirClean)
	checkSummary(t, d, 0, 0)

	d.SetOwner(e, 3)
	checkSummary(t, d, 1, 0)
	d.SetOwner(e, 4) // owner change: still one owned entry
	checkSummary(t, d, 1, 0)
	if !d.HasPrivateCopies() {
		t.Fatal("owned entry must count as a private copy")
	}
	d.SetOwner(e, NoOwner)
	checkSummary(t, d, 0, 0)

	d.AddSharer(e, 2)
	d.AddSharer(e, 5)
	checkSummary(t, d, 0, 1) // per-entry, not per-agent
	d.RemoveSharer(e, 2)
	checkSummary(t, d, 0, 1)
	d.RemoveSharer(e, 5)
	checkSummary(t, d, 0, 0)
	d.RemoveSharer(e, 5) // removing an absent sharer must not underflow
	checkSummary(t, d, 0, 0)

	d.AddSharer(e, 1)
	d.ClearSharers(e)
	checkSummary(t, d, 0, 0)
	d.ClearSharers(e) // idempotent
	checkSummary(t, d, 0, 0)
}

func TestOccupancySummarySurvivesEvictionAndInvalidate(t *testing.T) {
	d := NewDirectory("llc", 4*mem.LineBytes, 2) // 2 sets × 2 ways
	// Fill set 0 (even lines) with owned/shared entries, then thrash it.
	e0, _ := d.Insert(0, DirClean)
	d.SetOwner(e0, 1)
	e2, _ := d.Insert(2, DirDirty)
	d.AddSharer(e2, 3)
	checkSummary(t, d, 1, 1)

	_, v := d.Insert(4, DirClean) // evicts the LRU way (line 0, owned)
	if !v.Valid || v.Owner != 1 {
		t.Fatalf("victim %+v, want owned line 0", v)
	}
	checkSummary(t, d, 0, 1)

	if _, ok := d.Invalidate(2); !ok {
		t.Fatal("line 2 must be resident")
	}
	checkSummary(t, d, 0, 0)
	if d.HasPrivateCopies() {
		t.Fatal("all private copies gone")
	}
}

// TestAccessOrInsertRunMatchesPerLine drives the same line sequence
// through AccessOrInsertRun and through the per-line reference calls on
// twin directories and compares entries, stats and summaries.
func TestAccessOrInsertRunMatchesPerLine(t *testing.T) {
	const n = 8
	mk := func() (*Directory, []mem.LineAddr) {
		d := NewDirectory("llc", 64*mem.LineBytes, 2)
		lines := make([]mem.LineAddr, n)
		for i := range lines {
			lines[i] = mem.LineAddr(100 + i)
		}
		return d, lines
	}

	// Seed both with some prior state so the run sees hits, upgrades and
	// evictions.
	seed := func(d *Directory) {
		e, _ := d.Insert(100, DirClean)
		d.SetOwner(e, 7) // self for the RunCached case below
		e, _ = d.Insert(101, DirDirty)
		d.AddSharer(e, 2)
		d.Insert(132, DirDirty) // same set as 100 on 32 sets
	}

	for _, grant := range []bool{true, false} {
		t.Run(fmt.Sprintf("grant=%v", grant), func(t *testing.T) {
			fast, lines := mk()
			seed(fast)
			ref, _ := mk()
			seed(ref)

			upd := RunUpdate{Kind: RunCached, Write: false, ExclusiveGrant: grant, Self: 7}
			var run DirRun
			fast.AccessOrInsertRun(lines, DirClean, upd, &run)

			for i, line := range lines {
				e, _, hit := ref.AccessOrInsert(line, DirClean)
				wantHitBit := run.HitMask&(1<<uint(i)) != 0
				if hit != wantHitBit {
					t.Fatalf("line %d: hit %v, run mask says %v", line, hit, wantHitBit)
				}
				complexBit := run.ComplexMask&(1<<uint(i)) != 0
				needs := hit && ((e.Owner != NoOwner && e.Owner != 7) || false)
				if complexBit != needs {
					t.Fatalf("line %d: complex bit %v, want %v", line, complexBit, needs)
				}
				if !complexBit {
					// Apply the reference tail update for plain lines.
					if grant && e.Owner == NoOwner && e.Sharers == 0 {
						ref.SetOwner(e, 7)
					} else if e.Owner != 7 {
						ref.AddSharer(e, 7)
					}
				}
			}
			if fast.Stats() != ref.Stats() {
				t.Fatalf("stats diverged: %+v vs %+v", fast.Stats(), ref.Stats())
			}
			fs, rs := "", ""
			fast.ForEachValid(func(e *DirEntry) {
				fs += fmt.Sprintf("%d:%v/o%d/s%x;", e.Line, e.State, e.Owner, e.Sharers)
			})
			ref.ForEachValid(func(e *DirEntry) {
				rs += fmt.Sprintf("%d:%v/o%d/s%x;", e.Line, e.State, e.Owner, e.Sharers)
			})
			if fs != rs {
				t.Fatalf("entries diverged:\n fast %s\n  ref %s", fs, rs)
			}
			if err := fast.CheckSummary(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAccessUpgradeRunMatchesPerLine(t *testing.T) {
	mk := func() *Cache {
		c := New("l2", 16*mem.LineBytes, 2)
		c.Insert(1, Shared)
		c.Insert(2, Exclusive)
		c.Insert(3, Modified)
		return c
	}
	fast, ref := mk(), mk()
	misses := fast.AccessUpgradeRun(0, 6, true, nil)

	var want []mem.LineAddr
	for line := mem.LineAddr(0); line < 6; line++ {
		st, hit := ref.AccessUpgrade(line, true)
		if hit && (st == Modified || st == Exclusive) {
			continue
		}
		want = append(want, line)
	}
	if len(misses) != len(want) {
		t.Fatalf("misses %v, want %v", misses, want)
	}
	for i := range want {
		if misses[i] != want[i] {
			t.Fatalf("misses %v, want %v", misses, want)
		}
	}
	if fast.Stats() != ref.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", fast.Stats(), ref.Stats())
	}
}

func TestInvalidateRunMatchesPerLine(t *testing.T) {
	mk := func() *Directory {
		d := NewDirectory("llc", 32*mem.LineBytes, 2)
		d.Insert(1, DirClean)
		d.Insert(2, DirDirty)
		d.Insert(3, DirDirty)
		return d
	}
	fast, ref := mk(), mk()
	lines := []mem.LineAddr{1, 2, 9 /* absent */, 3}
	dirty := fast.InvalidateRun(lines)

	var refDirty int64
	for _, line := range lines {
		if v, ok := ref.Invalidate(line); ok && v.WasDirty {
			refDirty++
		}
	}
	if dirty != refDirty {
		t.Fatalf("dirty %d, want %d", dirty, refDirty)
	}
	if fast.Stats() != ref.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", fast.Stats(), ref.Stats())
	}
	if fast.ValidLines() != ref.ValidLines() {
		t.Fatalf("lines %d, want %d", fast.ValidLines(), ref.ValidLines())
	}
}

func TestInvalidateRunRejectsPrivateCopies(t *testing.T) {
	d := NewDirectory("llc", 32*mem.LineBytes, 2)
	e, _ := d.Insert(1, DirClean)
	d.SetOwner(e, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("InvalidateRun over an owned line must panic (the caller skipped its recalls)")
		}
	}()
	d.InvalidateRun([]mem.LineAddr{1})
}
