package cache

import (
	"fmt"
	"math/bits"

	"cohmeleon/internal/mem"
)

// DirState is the state of a line in an LLC partition.
type DirState uint8

// LLC line states. A Dirty line holds data newer than DRAM.
const (
	DirInvalid DirState = iota
	DirClean
	DirDirty
)

// String returns a short name for the LLC state.
func (s DirState) String() string {
	switch s {
	case DirInvalid:
		return "inv"
	case DirClean:
		return "clean"
	case DirDirty:
		return "dirty"
	default:
		return fmt.Sprintf("DirState(%d)", uint8(s))
	}
}

// NoOwner marks a directory entry with no exclusive private-cache owner.
const NoOwner = -1

// DirEntry is the directory+tag state of one LLC line: whether the LLC
// data is valid/dirty, which coherent agent (if any) holds the line
// Exclusive/Modified, and which agents share it. Pointers returned by
// Probe remain valid only until the next Insert on the directory.
type DirEntry struct {
	Line    mem.LineAddr
	Sharers uint64
	Owner   int // agent index holding M/E, or NoOwner
	State   DirState
}

// HasSharers reports whether any agent holds a Shared copy.
func (e *DirEntry) HasSharers() bool { return e.Sharers != 0 }

// SharerList expands the sharer bitmask into agent indices, ascending.
// It allocates; hot paths should use ForEachSharer instead.
func (e *DirEntry) SharerList() []int {
	var out []int
	e.ForEachSharer(func(i int) { out = append(out, i) })
	return out
}

// ForEachSharer calls fn for every sharing agent in ascending index
// order, without allocating. fn must not mutate the sharer mask (capture
// e.Sharers first if it needs to).
func (e *DirEntry) ForEachSharer(fn func(agent int)) {
	forEachSharer(e.Sharers, fn)
}

// Owner/sharer mutations of entries resident in a Directory must go
// through the Directory's SetOwner/AddSharer/... methods so the
// partition occupancy summary stays exact. The DirEntry-level AddSharer
// and RemoveSharer below exist for entries outside a directory (test
// fixtures, detached victims).

// ForEachSharerMask iterates a raw sharer bitmask (e.g. the one carried
// by a DirVictim) in ascending index order, without allocating.
func ForEachSharerMask(mask uint64, fn func(agent int)) { forEachSharer(mask, fn) }

func forEachSharer(mask uint64, fn func(agent int)) {
	for mask != 0 {
		i := bits.TrailingZeros64(mask)
		mask &= mask - 1
		fn(i)
	}
}

// AddSharer marks agent as holding a Shared copy.
func (e *DirEntry) AddSharer(agent int) { e.Sharers |= 1 << uint(agent) }

// RemoveSharer clears agent's Shared copy.
func (e *DirEntry) RemoveSharer(agent int) { e.Sharers &^= 1 << uint(agent) }

// IsSharer reports whether agent holds a Shared copy.
func (e *DirEntry) IsSharer(agent int) bool { return e.Sharers&(1<<uint(agent)) != 0 }

// DirStats counts directory events.
type DirStats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64 // dirty evictions + flush writebacks to DRAM
	Recalls    int64 // evictions/flushes that had to recall private copies
}

// Directory is one inclusive LLC partition with per-line directory
// state. Inclusion is enforced by the SoC layer: when Insert evicts a
// line whose entry still lists an owner or sharers, the caller must
// recall/invalidate those private copies (the victim carries the
// bookkeeping needed to do so).
// Entries are packed to 32 bytes and invalid ways keep Line == noLine.
// The tag and LRU words live in dedicated parallel arrays: an 8-way
// set's tags span one hardware cache line (instead of the four its
// entries span), so the hit scan — the hottest loop of the LLC model —
// touches a single line, and the miss path's victim scan adds only the
// set's half-line of LRU ticks.
type Directory struct {
	name    string
	entries []DirEntry     // flat backing, numSets × assoc
	tags    []mem.LineAddr // mirror of entries[i].Line
	lrus    []uint32       // per-way LRU ticks
	assoc   int64
	numSets int64
	setMask int64 // numSets-1 when numSets is a power of two, else 0
	tick    uint64
	stats   DirStats
	lines   int
	// Occupancy summary of the partition (the coherence "region" of one
	// address-interleaved slice): how many resident entries list a
	// private-cache owner, and how many list at least one sharer. The
	// counts are exact — every owner/sharer mutation of a resident entry
	// goes through the SetOwner/AddSharer/... methods below — and they
	// let the run-level flows skip recall/invalidate interrogation
	// wholesale when the region provably holds no private copies.
	owned  int
	shared int
}

// NewDirectory creates an LLC partition of the given size/associativity.
func NewDirectory(name string, sizeBytes int64, assoc int) *Directory {
	if assoc <= 0 {
		panic("cache: associativity must be positive")
	}
	totalLines := sizeBytes / mem.LineBytes
	if totalLines <= 0 || totalLines%int64(assoc) != 0 {
		panic(fmt.Sprintf("cache: LLC size %d not divisible into %d-way sets", sizeBytes, assoc))
	}
	numSets := totalLines / int64(assoc)
	d := &Directory{
		name:    name,
		numSets: numSets,
		assoc:   int64(assoc),
		entries: make([]DirEntry, totalLines),
		tags:    make([]mem.LineAddr, totalLines),
		lrus:    make([]uint32, totalLines),
	}
	if numSets&(numSets-1) == 0 {
		d.setMask = numSets - 1
	}
	for i := range d.entries {
		d.entries[i].Line = noLine
		d.entries[i].Owner = NoOwner
		d.tags[i] = noLine
	}
	return d
}

// Name returns the partition name.
func (d *Directory) Name() string { return d.name }

// SizeBytes returns the partition capacity.
func (d *Directory) SizeBytes() int64 {
	return d.numSets * d.assoc * mem.LineBytes
}

// Stats returns a copy of the event counters.
func (d *Directory) Stats() DirStats { return d.stats }

// ValidLines returns the number of valid lines currently held.
func (d *Directory) ValidLines() int { return d.lines }

// Sets returns the number of sets (the run-operation collision bound:
// contiguous lines land in distinct sets up to this count).
func (d *Directory) Sets() int64 { return d.numSets }

// EntryAt returns the entry at a way index reported by a run outcome.
// The caller must know the entry still holds its line (run lines map to
// distinct sets, so a run never displaces its own entries); use ProbeAt
// when later inserts could have intervened.
func (d *Directory) EntryAt(way int32) *DirEntry { return &d.entries[way] }

// bump advances the LRU tick and returns it as the stored uint32.
// Wrapping would silently invert eviction order, so it panics instead;
// 2^32 accesses of one partition in a single trial is orders of
// magnitude beyond any experiment (trials build fresh SoCs).
func (d *Directory) bump() uint32 {
	d.tick++
	t := uint32(d.tick)
	if t == 0 {
		panic("cache: " + d.name + ": LRU tick wrapped uint32")
	}
	return t
}

// setBase returns the index of the set's first way in the flat arrays.
func (d *Directory) setBase(line mem.LineAddr) int64 {
	if d.setMask != 0 {
		return (int64(line) & d.setMask) * d.assoc
	}
	idx := int64(line) % d.numSets
	if idx < 0 {
		idx += d.numSets
	}
	return idx * d.assoc
}

// Probe returns the entry for the line without counting an access, or
// nil when absent.
func (d *Directory) Probe(line mem.LineAddr) *DirEntry {
	base := d.setBase(line)
	for i := base; i < base+d.assoc; i++ {
		if d.tags[i] == line {
			return &d.entries[i]
		}
	}
	return nil
}

// Access looks the line up, counting a hit or miss and refreshing LRU on
// hit. It returns nil on miss.
func (d *Directory) Access(line mem.LineAddr) *DirEntry {
	base := d.setBase(line)
	for i := base; i < base+d.assoc; i++ {
		if d.tags[i] == line {
			d.lrus[i] = d.bump()
			d.stats.Hits++
			return &d.entries[i]
		}
	}
	d.stats.Misses++
	return nil
}

// DirVictim describes a line displaced from the LLC. If Owner or Sharers
// are set, inclusion requires the caller to recall/invalidate the
// private copies; WasDirty tells it whether the LLC data itself must go
// to DRAM (the recalled private data may be dirtier still).
type DirVictim struct {
	Line     mem.LineAddr
	WasDirty bool
	Owner    int
	Sharers  uint64
	Valid    bool
}

// Insert fills the line with the given state and returns both the new
// entry (for the caller to set owner/sharers) and the victim, if a valid
// line was displaced. Inserting a present line updates state in place.
func (d *Directory) Insert(line mem.LineAddr, st DirState) (*DirEntry, DirVictim) {
	if st == DirInvalid {
		panic("cache: directory Insert with invalid state")
	}
	tick := d.bump()
	base := d.setBase(line)
	victim, haveInvalid := int64(-1), false
	for i := base; i < base+d.assoc; i++ {
		if d.tags[i] == line {
			e := &d.entries[i]
			e.State = st
			d.lrus[i] = tick
			return e, DirVictim{}
		}
		// Victim preference: the first invalid way, else the LRU way.
		if !haveInvalid {
			if d.tags[i] == noLine {
				victim, haveInvalid = i, true
			} else if victim < 0 || d.lrus[i] < d.lrus[victim] {
				victim = i
			}
		}
	}
	e := &d.entries[victim]
	var v DirVictim
	if e.State != DirInvalid {
		v = DirVictim{
			Line:     e.Line,
			WasDirty: e.State == DirDirty,
			Owner:    e.Owner,
			Sharers:  e.Sharers,
			Valid:    true,
		}
		d.stats.Evictions++
		if v.WasDirty {
			d.stats.Writebacks++
		}
		if v.Owner != NoOwner || v.Sharers != 0 {
			d.stats.Recalls++
			d.noteEvicted(v.Owner, v.Sharers)
		}
	} else {
		d.lines++
	}
	*e = DirEntry{Line: line, State: st, Owner: NoOwner}
	d.tags[victim] = line
	d.lrus[victim] = tick
	return e, v
}

// AccessOrInsert looks the line up and, on a miss, fills it with
// missState in the same tag scan. It is exactly equivalent to Access
// followed (on miss) by Insert, but pays one set scan instead of two:
// the scan tracks the replacement victim while searching for the tag.
// hit reports whether the line was already present; on a miss the
// returned victim (if Valid) must be handled as for Insert.
func (d *Directory) AccessOrInsert(line mem.LineAddr, missState DirState) (e *DirEntry, v DirVictim, hit bool) {
	if missState == DirInvalid {
		panic("cache: directory AccessOrInsert with invalid state")
	}
	base := d.setBase(line)
	victim, haveInvalid := int64(-1), false
	for i := base; i < base+d.assoc; i++ {
		if d.tags[i] == line {
			d.lrus[i] = d.bump()
			d.stats.Hits++
			return &d.entries[i], DirVictim{}, true
		}
		if !haveInvalid {
			if d.tags[i] == noLine {
				victim, haveInvalid = i, true
			} else if victim < 0 || d.lrus[i] < d.lrus[victim] {
				victim = i
			}
		}
	}
	d.stats.Misses++
	tick := d.bump()
	// Fill inline, duplicating Insert's fill tail (keep the two in
	// sync): this is the hottest miss path in the simulator and a shared
	// helper is over the compiler's inline budget.
	w := &d.entries[victim]
	if w.State != DirInvalid {
		v = DirVictim{
			Line:     w.Line,
			WasDirty: w.State == DirDirty,
			Owner:    w.Owner,
			Sharers:  w.Sharers,
			Valid:    true,
		}
		d.stats.Evictions++
		if v.WasDirty {
			d.stats.Writebacks++
		}
		if v.Owner != NoOwner || v.Sharers != 0 {
			d.stats.Recalls++
			d.noteEvicted(v.Owner, v.Sharers)
		}
	} else {
		d.lines++
	}
	*w = DirEntry{Line: line, State: missState, Owner: NoOwner}
	d.tags[victim] = line
	d.lrus[victim] = tick
	return w, v, false
}

// noteEvicted rolls an evicted or invalidated entry's owner/sharer
// state out of the occupancy summary.
func (d *Directory) noteEvicted(owner int, sharers uint64) {
	if owner != NoOwner {
		d.owned--
	}
	if sharers != 0 {
		d.shared--
	}
}

// HasPrivateCopies reports whether any resident entry lists an owner or
// a sharer. When false, no line of this partition can require a recall
// or invalidation — the run-level flows and range flushes use this to
// take their batched fast paths.
func (d *Directory) HasPrivateCopies() bool { return d.owned != 0 || d.shared != 0 }

// OwnedLines returns the number of resident entries with an owner.
func (d *Directory) OwnedLines() int { return d.owned }

// SharedLines returns the number of resident entries with ≥1 sharer.
func (d *Directory) SharedLines() int { return d.shared }

// SetOwner makes agent the exclusive owner of a resident entry,
// maintaining the occupancy summary. agent may be NoOwner to clear.
func (d *Directory) SetOwner(e *DirEntry, agent int) {
	if (e.Owner == NoOwner) != (agent == NoOwner) {
		if agent == NoOwner {
			d.owned--
		} else {
			d.owned++
		}
	}
	e.Owner = agent
}

// AddSharer marks agent as holding a Shared copy of a resident entry,
// maintaining the occupancy summary.
func (d *Directory) AddSharer(e *DirEntry, agent int) {
	if e.Sharers == 0 {
		d.shared++
	}
	e.Sharers |= 1 << uint(agent)
}

// RemoveSharer clears agent's Shared copy on a resident entry,
// maintaining the occupancy summary.
func (d *Directory) RemoveSharer(e *DirEntry, agent int) {
	was := e.Sharers
	e.Sharers &^= 1 << uint(agent)
	if was != 0 && e.Sharers == 0 {
		d.shared--
	}
}

// ClearSharers drops every sharer of a resident entry, maintaining the
// occupancy summary.
func (d *Directory) ClearSharers(e *DirEntry) {
	if e.Sharers != 0 {
		d.shared--
	}
	e.Sharers = 0
}

// CheckSummary recomputes the occupancy summary from the entry array
// and reports whether the maintained counts match (a test invariant; a
// mismatch means some mutation bypassed the Directory methods).
func (d *Directory) CheckSummary() error {
	owned, shared := 0, 0
	for i := range d.entries {
		if d.entries[i].State == DirInvalid {
			continue
		}
		if d.entries[i].Owner != NoOwner {
			owned++
		}
		if d.entries[i].Sharers != 0 {
			shared++
		}
	}
	if owned != d.owned || shared != d.shared {
		return fmt.Errorf("cache: %s: occupancy summary drift: counted owned=%d shared=%d, maintained owned=%d shared=%d",
			d.name, owned, shared, d.owned, d.shared)
	}
	return nil
}

// ForEachValid calls fn for every valid entry. The callback must not
// mutate the directory; collect lines first, then act.
func (d *Directory) ForEachValid(fn func(e *DirEntry)) {
	for i := range d.entries {
		if d.entries[i].State != DirInvalid {
			fn(&d.entries[i])
		}
	}
}

// Invalidate drops the line, returning its final directory state so the
// caller can write dirty data back and invalidate private copies.
func (d *Directory) Invalidate(line mem.LineAddr) (DirVictim, bool) {
	base := d.setBase(line)
	for i := base; i < base+d.assoc; i++ {
		if d.tags[i] == line {
			e := &d.entries[i]
			v := DirVictim{
				Line:     e.Line,
				WasDirty: e.State == DirDirty,
				Owner:    e.Owner,
				Sharers:  e.Sharers,
				Valid:    true,
			}
			if v.WasDirty {
				d.stats.Writebacks++
			}
			d.noteEvicted(e.Owner, e.Sharers)
			e.State = DirInvalid
			e.Line = noLine
			e.Owner = NoOwner
			e.Sharers = 0
			d.tags[i] = noLine
			d.lines--
			return v, true
		}
	}
	return DirVictim{}, false
}
