package cache

import (
	"fmt"

	"cohmeleon/internal/mem"
)

// DirState is the state of a line in an LLC partition.
type DirState uint8

// LLC line states. A Dirty line holds data newer than DRAM.
const (
	DirInvalid DirState = iota
	DirClean
	DirDirty
)

// String returns a short name for the LLC state.
func (s DirState) String() string {
	switch s {
	case DirInvalid:
		return "inv"
	case DirClean:
		return "clean"
	case DirDirty:
		return "dirty"
	default:
		return fmt.Sprintf("DirState(%d)", uint8(s))
	}
}

// NoOwner marks a directory entry with no exclusive private-cache owner.
const NoOwner = -1

// DirEntry is the directory+tag state of one LLC line: whether the LLC
// data is valid/dirty, which coherent agent (if any) holds the line
// Exclusive/Modified, and which agents share it. Pointers returned by
// Probe remain valid only until the next Insert on the directory.
type DirEntry struct {
	Line    mem.LineAddr
	State   DirState
	Owner   int // agent index holding M/E, or NoOwner
	Sharers uint64
	lru     uint64
}

// HasSharers reports whether any agent holds a Shared copy.
func (e *DirEntry) HasSharers() bool { return e.Sharers != 0 }

// SharerList expands the sharer bitmask into agent indices, ascending.
func (e *DirEntry) SharerList() []int {
	var out []int
	for i := 0; i < 64; i++ {
		if e.Sharers&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// AddSharer marks agent as holding a Shared copy.
func (e *DirEntry) AddSharer(agent int) { e.Sharers |= 1 << uint(agent) }

// RemoveSharer clears agent's Shared copy.
func (e *DirEntry) RemoveSharer(agent int) { e.Sharers &^= 1 << uint(agent) }

// IsSharer reports whether agent holds a Shared copy.
func (e *DirEntry) IsSharer(agent int) bool { return e.Sharers&(1<<uint(agent)) != 0 }

// DirStats counts directory events.
type DirStats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64 // dirty evictions + flush writebacks to DRAM
	Recalls    int64 // evictions/flushes that had to recall private copies
}

// Directory is one inclusive LLC partition with per-line directory
// state. Inclusion is enforced by the SoC layer: when Insert evicts a
// line whose entry still lists an owner or sharers, the caller must
// recall/invalidate those private copies (the victim carries the
// bookkeeping needed to do so).
type Directory struct {
	name    string
	sets    [][]DirEntry
	numSets int64
	setMask int64 // numSets-1 when numSets is a power of two, else 0
	tick    uint64
	stats   DirStats
	lines   int
}

// NewDirectory creates an LLC partition of the given size/associativity.
func NewDirectory(name string, sizeBytes int64, assoc int) *Directory {
	if assoc <= 0 {
		panic("cache: associativity must be positive")
	}
	totalLines := sizeBytes / mem.LineBytes
	if totalLines <= 0 || totalLines%int64(assoc) != 0 {
		panic(fmt.Sprintf("cache: LLC size %d not divisible into %d-way sets", sizeBytes, assoc))
	}
	numSets := totalLines / int64(assoc)
	d := &Directory{name: name, numSets: numSets, sets: make([][]DirEntry, numSets)}
	if numSets&(numSets-1) == 0 {
		d.setMask = numSets - 1
	}
	backing := make([]DirEntry, totalLines)
	for i := range d.sets {
		d.sets[i] = backing[int64(i)*int64(assoc) : (int64(i)+1)*int64(assoc)]
	}
	return d
}

// Name returns the partition name.
func (d *Directory) Name() string { return d.name }

// SizeBytes returns the partition capacity.
func (d *Directory) SizeBytes() int64 {
	return d.numSets * int64(len(d.sets[0])) * mem.LineBytes
}

// Stats returns a copy of the event counters.
func (d *Directory) Stats() DirStats { return d.stats }

// ValidLines returns the number of valid lines currently held.
func (d *Directory) ValidLines() int { return d.lines }

func (d *Directory) setOf(line mem.LineAddr) []DirEntry {
	if d.setMask != 0 {
		return d.sets[int64(line)&d.setMask]
	}
	idx := int64(line) % d.numSets
	if idx < 0 {
		idx += d.numSets
	}
	return d.sets[idx]
}

// Probe returns the entry for the line without counting an access, or
// nil when absent.
func (d *Directory) Probe(line mem.LineAddr) *DirEntry {
	set := d.setOf(line)
	for i := range set {
		e := &set[i]
		if e.State != DirInvalid && e.Line == line {
			return e
		}
	}
	return nil
}

// Access looks the line up, counting a hit or miss and refreshing LRU on
// hit. It returns nil on miss.
func (d *Directory) Access(line mem.LineAddr) *DirEntry {
	set := d.setOf(line)
	for i := range set {
		e := &set[i]
		if e.State != DirInvalid && e.Line == line {
			d.tick++
			e.lru = d.tick
			d.stats.Hits++
			return e
		}
	}
	d.stats.Misses++
	return nil
}

// DirVictim describes a line displaced from the LLC. If Owner or Sharers
// are set, inclusion requires the caller to recall/invalidate the
// private copies; WasDirty tells it whether the LLC data itself must go
// to DRAM (the recalled private data may be dirtier still).
type DirVictim struct {
	Line     mem.LineAddr
	WasDirty bool
	Owner    int
	Sharers  uint64
	Valid    bool
}

// Insert fills the line with the given state and returns both the new
// entry (for the caller to set owner/sharers) and the victim, if a valid
// line was displaced. Inserting a present line updates state in place.
func (d *Directory) Insert(line mem.LineAddr, st DirState) (*DirEntry, DirVictim) {
	if st == DirInvalid {
		panic("cache: directory Insert with invalid state")
	}
	set := d.setOf(line)
	d.tick++
	lruIdx := -1
	for i := range set {
		e := &set[i]
		if e.State != DirInvalid && e.Line == line {
			e.State = st
			e.lru = d.tick
			return e, DirVictim{}
		}
		if e.State == DirInvalid {
			if lruIdx < 0 || set[lruIdx].State != DirInvalid {
				lruIdx = i
			}
			continue
		}
		if lruIdx < 0 || (set[lruIdx].State != DirInvalid && e.lru < set[lruIdx].lru) {
			lruIdx = i
		}
	}
	e := &set[lruIdx]
	var v DirVictim
	if e.State != DirInvalid {
		v = DirVictim{
			Line:     e.Line,
			WasDirty: e.State == DirDirty,
			Owner:    e.Owner,
			Sharers:  e.Sharers,
			Valid:    true,
		}
		d.stats.Evictions++
		if v.WasDirty {
			d.stats.Writebacks++
		}
		if v.Owner != NoOwner || v.Sharers != 0 {
			d.stats.Recalls++
		}
	} else {
		d.lines++
	}
	*e = DirEntry{Line: line, State: st, Owner: NoOwner, lru: d.tick}
	return e, v
}

// ForEachValid calls fn for every valid entry. The callback must not
// mutate the directory; collect lines first, then act.
func (d *Directory) ForEachValid(fn func(e *DirEntry)) {
	for _, set := range d.sets {
		for i := range set {
			if set[i].State != DirInvalid {
				fn(&set[i])
			}
		}
	}
}

// Invalidate drops the line, returning its final directory state so the
// caller can write dirty data back and invalidate private copies.
func (d *Directory) Invalidate(line mem.LineAddr) (DirVictim, bool) {
	set := d.setOf(line)
	for i := range set {
		e := &set[i]
		if e.State != DirInvalid && e.Line == line {
			v := DirVictim{
				Line:     e.Line,
				WasDirty: e.State == DirDirty,
				Owner:    e.Owner,
				Sharers:  e.Sharers,
				Valid:    true,
			}
			if v.WasDirty {
				d.stats.Writebacks++
			}
			e.State = DirInvalid
			e.Owner = NoOwner
			e.Sharers = 0
			d.lines--
			return v, true
		}
	}
	return DirVictim{}, false
}
