package cache

import (
	"fmt"

	"cohmeleon/internal/mem"
)

// This file implements the run-level operations of the coherence state
// machines: one call processes a whole contiguous line group (or the
// missed subset of one) with exactly the per-line state transitions,
// LRU updates and event counts of the corresponding per-line loop. The
// SoC layer batches the uniform "plain" lines' timing around these
// calls and handles only the exceptional lines (recalls, invalidations,
// victims needing work) individually; the soc property tests pin the
// batched flows against the retained per-line reference flows.
//
// Preconditions shared by the directory run operations:
//
//   - len(lines) ≤ 64 (outcome masks are one word; the protocol group
//     size is far below this),
//   - the lines map to pairwise-distinct sets (guaranteed for any
//     subset of a contiguous group no longer than the set count).
//
// Distinct sets make the scan of line i independent of the fills and
// protocol updates applied for lines j < i, which is what lets the
// caller move all per-line timing out of the tag-scan loop: nothing the
// per-line reference loop does between two scans touches another set.
// Callers fall back to the per-line reference flow when the
// preconditions do not hold (degenerate geometries).

// RunKind selects the protocol-update rule AccessOrInsertRun applies
// in-batch to plain lines.
type RunKind uint8

const (
	// RunCached is a coherent agent reading or write-allocating through
	// its private cache (the cachedGroupAccess flow); Update.Self is the
	// requesting agent.
	RunCached RunKind = iota
	// RunDMA is a DMA bridge accessing through the LLC (the dmaGroupLLC
	// flow); Update.RecallOwners selects CohDMA semantics.
	RunDMA
)

// RunUpdate parameterizes the protocol-update rule of one run.
type RunUpdate struct {
	Kind           RunKind
	Write          bool
	RecallOwners   bool // RunDMA: interrogate and recall private copies
	ExclusiveGrant bool // RunCached: grant unshared read lines exclusive ownership
	Self           int  // RunCached: the requesting agent index
}

// RunVictim pairs a displaced valid entry that needs caller-side work
// (dirty data, or private copies to recall) with the index of the run
// line whose fill displaced it.
type RunVictim struct {
	Idx int32
	V   DirVictim
}

// DirRun is the reusable outcome buffer of one AccessOrInsertRun call.
// Bit i of the masks refers to lines[i]; Ways[i] is the way index of
// the line's entry (valid until a later insert displaces it — ProbeAt
// revalidates by tag).
type DirRun struct {
	Ways        []int32
	HitMask     uint64 // line was already resident
	ComplexMask uint64 // hit line needs caller-side recalls/invalidations
	Victims     []RunVictim
	Hits        int
	Misses      int
}

// reset clears the buffer for reuse without releasing storage.
func (r *DirRun) reset() {
	r.Ways = r.Ways[:0]
	r.Victims = r.Victims[:0]
	r.HitMask, r.ComplexMask = 0, 0
	r.Hits, r.Misses = 0, 0
}

// AccessOrInsertRun performs AccessOrInsert for every line of the run
// and applies the protocol-update rule to each plain line in the same
// pass. A hit line is complex — left for the caller to recall private
// copies and then update, via ProbeAt — when the update rule requires
// interrogating private copies: a foreign owner (or, on writes, any
// sharer) under RunCached, and the same under RunDMA with RecallOwners.
// Displaced valid victims that need caller-side work (dirty data,
// private copies) are reported in line order; clean unshared victims
// are absorbed silently, exactly as the per-line loop's victim handling
// would fall through. See the file comment for preconditions.
func (d *Directory) AccessOrInsertRun(lines []mem.LineAddr, missState DirState, upd RunUpdate, out *DirRun) {
	if missState == DirInvalid {
		panic("cache: directory AccessOrInsertRun with invalid state")
	}
	if len(lines) > 64 {
		panic(fmt.Sprintf("cache: AccessOrInsertRun over %d lines exceeds the outcome mask", len(lines)))
	}
	out.reset()
	if cap(out.Ways) < len(lines) {
		out.Ways = make([]int32, 0, 64)
	}
	cached := upd.Kind == RunCached
	for i, line := range lines {
		base := d.setBase(line)
		// Hit scan first, over the set's tag subslice (bounds-checked
		// once): hits — the hottest outcome — skip the victim
		// bookkeeping entirely.
		tags := d.tags[base : base+d.assoc]
		way := int64(-1)
		for j := range tags {
			if tags[j] == line {
				way = base + int64(j)
				break
			}
		}
		if way >= 0 {
			e := &d.entries[way]
			d.lrus[way] = d.bump()
			d.stats.Hits++
			out.HitMask |= 1 << uint(i)
			out.Hits++
			out.Ways = append(out.Ways, int32(way))
			if cached {
				if (e.Owner != NoOwner && e.Owner != upd.Self) ||
					(upd.Write && e.Sharers != 0) {
					out.ComplexMask |= 1 << uint(i)
					continue
				}
				// The tail of the reference loop, for lines that needed no
				// recalls or invalidations.
				if upd.Write {
					// Plainness guarantees no sharers; owner is self or none.
					d.SetOwner(e, upd.Self)
				} else if upd.ExclusiveGrant && e.Owner == NoOwner && e.Sharers == 0 {
					d.SetOwner(e, upd.Self) // exclusive grant
				} else if e.Owner != upd.Self {
					d.AddSharer(e, upd.Self)
				}
				continue
			}
			if upd.RecallOwners &&
				(e.Owner != NoOwner || (upd.Write && e.Sharers != 0)) {
				out.ComplexMask |= 1 << uint(i)
				continue
			}
			if upd.Write {
				// The bridge claims the line; any remaining directory state
				// is stale by construction (LLCCohDMA runs after a flush).
				d.SetOwner(e, NoOwner)
				d.ClearSharers(e)
				e.State = DirDirty
			}
			continue
		}
		// Miss: victim scan (the hit scan proved no tag match, so the
		// first invalid way — the reference scan's preference — is final
		// the moment it appears), then fill in place exactly as
		// AccessOrInsert does.
		lrus := d.lrus[base : base+d.assoc]
		vj := 0
		for j := 1; j < len(tags); j++ {
			if tags[vj] == noLine {
				break
			}
			if tags[j] == noLine || lrus[j] < lrus[vj] {
				vj = j
			}
		}
		way = base + int64(vj)
		e := &d.entries[way]
		d.stats.Misses++
		out.Misses++
		tick := d.bump()
		if e.State != DirInvalid {
			v := DirVictim{
				Line:     e.Line,
				WasDirty: e.State == DirDirty,
				Owner:    e.Owner,
				Sharers:  e.Sharers,
				Valid:    true,
			}
			d.stats.Evictions++
			if v.WasDirty {
				d.stats.Writebacks++
			}
			if v.Owner != NoOwner || v.Sharers != 0 {
				d.stats.Recalls++
				d.noteEvicted(v.Owner, v.Sharers)
			}
			if v.WasDirty || v.Owner != NoOwner || v.Sharers != 0 {
				out.Victims = append(out.Victims, RunVictim{Idx: int32(i), V: v})
			}
		} else {
			d.lines++
		}
		*e = DirEntry{Line: line, State: missState, Owner: NoOwner}
		d.tags[way] = line
		d.lrus[way] = tick
		out.Ways = append(out.Ways, int32(way))
		if cached {
			// Write-allocate claims ownership; a read miss gets the
			// exclusive grant (no owner, no sharers by construction) only
			// under protocols that grant it, otherwise the reader is just
			// a sharer. RunDMA miss lines keep the fill state: the
			// reference loop `continue`s past the claim for misses.
			if upd.Write || upd.ExclusiveGrant {
				d.SetOwner(e, upd.Self)
			} else {
				d.AddSharer(e, upd.Self)
			}
		}
	}
}

// ProbeAt returns the entry a run reported at the given way if it still
// holds the line, falling back to a full Probe (which reports nil when
// the line was displaced in the meantime). It is exactly equivalent to
// Probe(line), minus the set scan in the common undisturbed case.
func (d *Directory) ProbeAt(way int32, line mem.LineAddr) *DirEntry {
	if d.tags[way] == line {
		return &d.entries[way]
	}
	return d.Probe(line)
}

// InvalidateRun drops every listed line that is resident, returning the
// number that held dirty data. It is exactly equivalent to calling
// Invalidate per line when no resident entry lists private copies
// (HasPrivateCopies() == false — the caller's fast-path condition); it
// panics if an invalidated entry turns out to list any, since the
// caller would have skipped the recalls that line required.
func (d *Directory) InvalidateRun(lines []mem.LineAddr) (dirty int64) {
	for _, line := range lines {
		base := d.setBase(line)
		for i := base; i < base+d.assoc; i++ {
			if d.tags[i] != line {
				continue
			}
			e := &d.entries[i]
			if e.Owner != NoOwner || e.Sharers != 0 {
				panic("cache: InvalidateRun on a line with private copies")
			}
			if e.State == DirDirty {
				d.stats.Writebacks++
				dirty++
			}
			e.State = DirInvalid
			e.Line = noLine
			e.Owner = NoOwner
			e.Sharers = 0
			d.tags[i] = noLine
			d.lines--
			break
		}
	}
	return dirty
}

// AccessUpgradeRun performs AccessUpgrade for n contiguous lines,
// appending to misses every line the caller must take to the LLC: true
// misses, and write hits in Shared (which need an ownership upgrade).
// State transitions, LRU ticks and hit/miss counts are exactly those of
// the per-line loop.
func (c *Cache) AccessUpgradeRun(start mem.LineAddr, n int64, write bool, misses []mem.LineAddr) []mem.LineAddr {
	for i := int64(0); i < n; i++ {
		line := start + mem.LineAddr(i)
		set := c.setOf(line)
		hit := false
		for j := range set {
			w := &set[j]
			if w.line != line {
				continue
			}
			w.lru = c.bump()
			c.stats.Hits++
			if write {
				if st := w.state; st == Modified || st == Exclusive {
					w.state = Modified
				} else {
					// Write hit in Shared: needs the upgrade round trip.
					misses = append(misses, line)
				}
			}
			hit = true
			break
		}
		if !hit {
			c.stats.Misses++
			misses = append(misses, line)
		}
	}
	return misses
}

// InsertRun fills every listed line with the uniform state st (the
// write-allocate path fills Modified), appending displaced valid
// victims in insert order. It is exactly equivalent to calling Insert
// per line; deferring the victims is safe because handling them never
// touches this cache.
func (c *Cache) InsertRun(lines []mem.LineAddr, st State, victims []Victim) []Victim {
	if st == Invalid {
		panic("cache: InsertRun with Invalid state")
	}
	for _, line := range lines {
		if v := c.Insert(line, st); v.Valid {
			victims = append(victims, v)
		}
	}
	return victims
}
