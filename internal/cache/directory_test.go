package cache

import (
	"testing"
	"testing/quick"

	"cohmeleon/internal/mem"
)

func smallDir() *Directory { return NewDirectory("llc0", 8*mem.LineBytes, 2) }

func TestDirStateString(t *testing.T) {
	if DirInvalid.String() != "inv" || DirClean.String() != "clean" || DirDirty.String() != "dirty" {
		t.Fatal("DirState names wrong")
	}
}

func TestDirectoryInsertAccess(t *testing.T) {
	d := smallDir()
	if d.Access(10) != nil {
		t.Fatal("empty LLC should miss")
	}
	e, v := d.Insert(10, DirClean)
	if v.Valid {
		t.Fatal("insert into empty set evicted")
	}
	if e.Owner != NoOwner || e.Sharers != 0 {
		t.Fatalf("fresh entry = %+v, want no owner/sharers", e)
	}
	got := d.Access(10)
	if got == nil || got.State != DirClean {
		t.Fatalf("Access = %+v", got)
	}
	s := d.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDirectoryOwnerSharers(t *testing.T) {
	d := smallDir()
	e, _ := d.Insert(5, DirClean)
	e.Owner = 3
	e.AddSharer(1)
	e.AddSharer(7)
	if !e.IsSharer(1) || !e.IsSharer(7) || e.IsSharer(2) {
		t.Fatal("sharer bitmask broken")
	}
	list := e.SharerList()
	if len(list) != 2 || list[0] != 1 || list[1] != 7 {
		t.Fatalf("SharerList = %v", list)
	}
	e.RemoveSharer(1)
	if e.IsSharer(1) || !e.HasSharers() {
		t.Fatal("RemoveSharer broken")
	}
	e.RemoveSharer(7)
	if e.HasSharers() {
		t.Fatal("bitmask should be empty")
	}
	// The entry persists across Probe.
	p := d.Probe(5)
	if p.Owner != 3 {
		t.Fatalf("Probe lost owner: %+v", p)
	}
}

func TestDirectoryVictimCarriesCoherenceState(t *testing.T) {
	d := smallDir() // 4 sets × 2 ways; 0, 4, 8 share a set
	e, _ := d.Insert(0, DirDirty)
	e.Owner = 2
	e.AddSharer(5)
	d.Insert(4, DirClean)
	_, v := d.Insert(8, DirClean)
	if !v.Valid || v.Line != 0 {
		t.Fatalf("victim = %+v, want line 0 (LRU)", v)
	}
	if !v.WasDirty || v.Owner != 2 || v.Sharers != 1<<5 {
		t.Fatalf("victim lost coherence state: %+v", v)
	}
	s := d.Stats()
	if s.Evictions != 1 || s.Writebacks != 1 || s.Recalls != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDirectoryInvalidate(t *testing.T) {
	d := smallDir()
	e, _ := d.Insert(9, DirDirty)
	e.Owner = 1
	v, ok := d.Invalidate(9)
	if !ok || !v.WasDirty || v.Owner != 1 {
		t.Fatalf("Invalidate = %+v, %v", v, ok)
	}
	if d.Probe(9) != nil {
		t.Fatal("line still present")
	}
	if _, ok := d.Invalidate(9); ok {
		t.Fatal("double invalidate should fail")
	}
	if d.ValidLines() != 0 {
		t.Fatalf("ValidLines = %d", d.ValidLines())
	}
}

func TestDirectoryReinsertKeepsEntry(t *testing.T) {
	d := smallDir()
	e, _ := d.Insert(3, DirClean)
	e.Owner = 4
	e2, v := d.Insert(3, DirDirty)
	if v.Valid {
		t.Fatal("re-insert evicted")
	}
	if e2.State != DirDirty {
		t.Fatalf("state = %v", e2.State)
	}
	// Re-insert keeps the entry identity (owner untouched).
	if e2.Owner != 4 {
		t.Fatalf("owner = %d, want 4", e2.Owner)
	}
}

func TestDirectoryCapacity(t *testing.T) {
	d := smallDir()
	for i := mem.LineAddr(0); i < 64; i++ {
		d.Insert(i, DirClean)
	}
	if d.ValidLines() != 8 {
		t.Fatalf("ValidLines = %d, want 8", d.ValidLines())
	}
	if d.SizeBytes() != 8*mem.LineBytes {
		t.Fatalf("SizeBytes = %d", d.SizeBytes())
	}
}

func TestDirectoryInsertInvalidPanics(t *testing.T) {
	d := smallDir()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Insert(0, DirInvalid)
}

// Property: the directory never holds two entries for the same line, and
// lines reported live by Insert victims are truly gone.
func TestDirectoryConsistencyProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		d := NewDirectory("p", 64*mem.LineBytes, 4)
		live := make(map[mem.LineAddr]bool)
		for _, op := range ops {
			line := mem.LineAddr(op % 200)
			switch op % 3 {
			case 0:
				_, v := d.Insert(line, DirDirty)
				live[line] = true
				if v.Valid {
					delete(live, v.Line)
				}
			case 1:
				_, ok := d.Invalidate(line)
				if ok != live[line] {
					return false
				}
				delete(live, line)
			case 2:
				if (d.Probe(line) != nil) != live[line] {
					return false
				}
			}
		}
		n := 0
		for line := range live {
			if d.Probe(line) == nil {
				return false
			}
			n++
		}
		return n == d.ValidLines()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: sharer bitmask operations behave like a set.
func TestSharerSetProperty(t *testing.T) {
	f := func(agents []uint8) bool {
		var e DirEntry
		ref := make(map[int]bool)
		for _, a := range agents {
			agent := int(a % 64)
			if a%2 == 0 {
				e.AddSharer(agent)
				ref[agent] = true
			} else {
				e.RemoveSharer(agent)
				delete(ref, agent)
			}
		}
		list := e.SharerList()
		if len(list) != len(ref) {
			return false
		}
		for _, a := range list {
			if !ref[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
