// Package esp models the software stack of an ESP SoC: the user-space
// accelerator-invocation API, the introspective status tracker (the
// paper's "sense" phase), the device-driver and flush overheads charged
// inside the invocation window, and the per-accelerator DDR-attribution
// approximation used to evaluate invocations. Coherence policies —
// Cohmeleon's learning module and the baselines — plug in behind the
// Policy interface; the API is otherwise transparent to applications,
// as in the paper.
package esp

import (
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
)

// Policy selects a coherence mode for each accelerator invocation and
// learns (or not) from the outcome. Implementations: the Cohmeleon
// Q-learning module (internal/core) and the baselines (internal/policy).
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Decide returns the coherence mode for the invocation described by
	// ctx. It must return one of ctx.Available.
	Decide(ctx *Context) soc.Mode
	// Observe delivers the evaluation of a completed invocation. Policies
	// that do not learn ignore it.
	Observe(res *Result)
	// OverheadCycles is the CPU time charged per invocation for the
	// policy's sensing, bookkeeping and decision (the paper measures
	// Cohmeleon's at 3–6% of a small invocation).
	OverheadCycles() sim.Cycles
}

// ActionPolicy is the optional fine-grain extension of Policy: a policy
// that decides over the full soc.Action space — a uniform mode or a
// (hot, cold) per-region split — instead of a single mode. The ESP API
// prefers DecideAction when a policy implements it; mode-only policies
// are unaffected.
type ActionPolicy interface {
	Policy
	// DecideAction returns the action for the invocation described by
	// ctx. The action's Hot and Cold modes must both be in ctx.Available.
	DecideAction(ctx *Context) soc.Action
}

// Context is the sensed snapshot handed to Decide: what the lightweight
// software layer can know about the invocation and the SoC status. All
// footprint quantities are bytes.
type Context struct {
	// Acc is the target accelerator tile.
	Acc *soc.AccTile
	// Available are the coherence modes the tile supports.
	Available []soc.Mode
	// FootprintBytes is the dataset size of this invocation.
	FootprintBytes int64
	// Partitions are the memory partitions backing the dataset.
	Partitions []int

	// Sensed state (Table 3 inputs).
	FullyCohActive int     // active fully-coherent accelerators, SoC-wide
	NonCohPerTile  float64 // avg active non-coherent accs per needed partition
	ToLLCPerTile   float64 // avg active LLC-bound accs per needed partition
	// TileFootprintBytes is the average active data (other invocations
	// plus this one) on the partitions this invocation needs.
	TileFootprintBytes float64

	// Additional status used by the manually-tuned baseline.
	ActiveCount          int
	ActiveNonCoh         int
	ActiveLLCCoh         int
	ActiveCohDMA         int
	ActiveFullyCoh       int
	ActiveFootprintBytes int64 // total bytes of other active invocations

	// SoC geometry, for threshold bucketing.
	L2Bytes       int64
	LLCSliceBytes int64
	TotalLLCBytes int64
}

// Allows reports whether mode is available for this invocation.
func (c *Context) Allows(mode soc.Mode) bool {
	for _, m := range c.Available {
		if m == mode {
			return true
		}
	}
	return false
}

// Clamp returns mode if available, otherwise the nearest available mode
// (falling back towards less hardware coherence, which every tile
// supports).
func (c *Context) Clamp(mode soc.Mode) soc.Mode {
	if c.Allows(mode) {
		return mode
	}
	for m := mode; ; m-- {
		if c.Allows(m) {
			return m
		}
		if m == soc.NonCohDMA {
			break
		}
	}
	return c.Available[0]
}

// Result is the evaluation of a completed invocation (the paper's
// "evaluate" phase), assembled from software timers and the hardware
// monitors.
type Result struct {
	Acc *soc.AccTile
	// Mode is the invocation's coherence mode — under a fine-grain split
	// action, the hot region's mode (the cold mode is in Action).
	Mode soc.Mode
	// Action is the decision as taken: soc.ModeAction(Mode) for uniform
	// invocations, the split action otherwise.
	Action         soc.Action
	FootprintBytes int64

	// ExecCycles is the total invocation time including driver overhead,
	// TLB load, cache flushes and the policy's own overhead.
	ExecCycles sim.Cycles
	// ActiveCycles is the accelerator's busy time (hardware counter).
	ActiveCycles sim.Cycles
	// CommCycles is the accelerator's communication time (hardware
	// counter).
	CommCycles sim.Cycles
	// OffChipApprox is the paper's footprint-proportional attribution of
	// DDR counter deltas to this invocation.
	OffChipApprox float64
	// OffChipTrue is the simulator's ground truth (not observable by the
	// runtime; used for reporting and the attribution ablation).
	OffChipTrue int64
}

// ScaledExec is exec(k,i): execution time divided by footprint.
func (r *Result) ScaledExec() float64 {
	return float64(r.ExecCycles) / float64(r.FootprintBytes)
}

// CommRatio is comm(k,i): communication cycles over active cycles.
func (r *Result) CommRatio() float64 {
	if r.ActiveCycles == 0 {
		return 0
	}
	return float64(r.CommCycles) / float64(r.ActiveCycles)
}

// ScaledMem is mem(k,i): attributed off-chip accesses over footprint.
func (r *Result) ScaledMem() float64 {
	return r.OffChipApprox / float64(r.FootprintBytes)
}
