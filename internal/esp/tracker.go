package esp

import (
	"fmt"

	"cohmeleon/internal/mem"
	"cohmeleon/internal/soc"
)

// Tracker is the introspective software layer (paper §4.3 "Sense"): a
// global structure recording, for each active accelerator invocation,
// its coherence mode and its memory footprint per partition. The ESP
// API updates it when an accelerator is invoked and when it returns
// control to software.
type Tracker struct {
	s      *soc.SoC
	active map[int]*activeInv // key: AccTile.ID
}

type activeInv struct {
	acc     *soc.AccTile
	mode    soc.Mode
	bytes   int64
	perPart []int64 // bytes on each memory partition
}

// NewTracker returns an empty tracker for the SoC.
func NewTracker(s *soc.SoC) *Tracker {
	return &Tracker{s: s, active: make(map[int]*activeInv)}
}

// ActiveCount returns the number of in-flight accelerator invocations.
func (tr *Tracker) ActiveCount() int { return len(tr.active) }

// Add records an invocation as active. It panics if the tile already
// has one in flight (LCAs execute one task at a time).
func (tr *Tracker) Add(a *soc.AccTile, mode soc.Mode, buf *mem.Buffer) {
	if _, dup := tr.active[a.ID]; dup {
		panic(fmt.Sprintf("esp: accelerator %s already active", a.InstName))
	}
	inv := &activeInv{acc: a, mode: mode, bytes: buf.Bytes, perPart: tr.perPartition(buf)}
	tr.active[a.ID] = inv
}

// Remove clears an invocation when the accelerator returns.
func (tr *Tracker) Remove(a *soc.AccTile) {
	if _, ok := tr.active[a.ID]; !ok {
		panic(fmt.Sprintf("esp: accelerator %s not active", a.InstName))
	}
	delete(tr.active, a.ID)
}

// Mode returns the active invocation's mode for a tile, if any.
func (tr *Tracker) Mode(a *soc.AccTile) (soc.Mode, bool) {
	inv, ok := tr.active[a.ID]
	if !ok {
		return 0, false
	}
	return inv.mode, true
}

func (tr *Tracker) perPartition(buf *mem.Buffer) []int64 {
	out := make([]int64, tr.s.Map.Partitions())
	for p := range out {
		out[p] = buf.BytesOnPartition(tr.s.Map, p)
	}
	return out
}

// Sense assembles the decision context for a new invocation of a on the
// dataset buf, summarizing the tracker per the paper's state variables:
// active accelerator counts and footprints on the partitions this
// invocation needs.
func (tr *Tracker) Sense(a *soc.AccTile, buf *mem.Buffer) *Context {
	cfg := tr.s.Cfg
	parts := buf.Partitions(tr.s.Map)
	selfPerPart := tr.perPartition(buf)

	ctx := &Context{
		Acc:            a,
		Available:      a.AvailableModes(),
		FootprintBytes: buf.Bytes,
		Partitions:     parts,
		L2Bytes:        cfg.L2Bytes(),
		LLCSliceBytes:  cfg.LLCSliceBytes(),
		TotalLLCBytes:  cfg.TotalLLCBytes(),
	}

	var nonCohOnParts, toLLCOnParts int
	var bytesOnParts float64
	for _, p := range parts {
		bytesOnParts += float64(selfPerPart[p])
	}
	for _, inv := range tr.active {
		ctx.ActiveCount++
		ctx.ActiveFootprintBytes += inv.bytes
		switch inv.mode {
		case soc.NonCohDMA:
			ctx.ActiveNonCoh++
		case soc.LLCCohDMA:
			ctx.ActiveLLCCoh++
		case soc.CohDMA:
			ctx.ActiveCohDMA++
		case soc.FullyCoh:
			ctx.ActiveFullyCoh++
		}
		if inv.mode == soc.FullyCoh {
			ctx.FullyCohActive++
		}
		for _, p := range parts {
			if inv.perPart[p] == 0 {
				continue
			}
			bytesOnParts += float64(inv.perPart[p])
			if inv.mode == soc.NonCohDMA {
				nonCohOnParts++
			} else {
				toLLCOnParts++
			}
		}
	}
	n := float64(len(parts))
	if n > 0 {
		ctx.NonCohPerTile = float64(nonCohOnParts) / n
		ctx.ToLLCPerTile = float64(toLLCOnParts) / n
		ctx.TileFootprintBytes = bytesOnParts / n
	}
	return ctx
}

// AttributeDDR applies the paper's approximation: the invocation's share
// of each controller's counter delta is proportional to its footprint on
// that controller relative to all active footprints there (self
// included). deltas is indexed by partition.
func (tr *Tracker) AttributeDDR(a *soc.AccTile, buf *mem.Buffer, deltas []int64) float64 {
	selfPerPart := tr.perPartition(buf)
	var total float64
	for p, delta := range deltas {
		if delta == 0 || selfPerPart[p] == 0 {
			continue
		}
		sum := float64(selfPerPart[p])
		for _, inv := range tr.active {
			if inv.acc.ID != a.ID {
				sum += float64(inv.perPart[p])
			}
		}
		total += float64(delta) * float64(selfPerPart[p]) / sum
	}
	return total
}
