package esp

import (
	"fmt"

	"cohmeleon/internal/mem"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
)

// System binds a simulated SoC to a coherence policy and exposes the
// ESP-style invocation API. One System serves all software threads of
// one simulation run.
type System struct {
	SoC     *soc.SoC
	Policy  Policy
	Tracker *Tracker

	// Invocations counts completed invocations (for reports).
	Invocations int64
}

// NewSystem wires a policy into the SoC's software stack.
func NewSystem(s *soc.SoC, p Policy) *System {
	return &System{SoC: s, Policy: p, Tracker: NewTracker(s)}
}

// Invoke performs one complete accelerator invocation from a software
// thread: sense → decide → actuate (driver configuration, TLB load and
// any required flushes) → run → evaluate, then reports the result to the
// policy. The calling process must hold a CPU-pool permit (cpu); the
// permit is released while the thread sleeps on the accelerator and
// reacquired for completion handling, so other threads can run.
//
// The returned Result covers the whole window, as the paper measures it.
func (sys *System) Invoke(p *sim.Proc, a *soc.AccTile, buf *mem.Buffer, cpu *sim.Semaphore, rng *sim.RNG) *Result {
	return sys.invoke(p, a, buf, cpu, rng, sys.Policy)
}

// InvokeWithMode bypasses the policy and forces a mode: the motivation
// experiments (Figures 2 and 3) sweep modes explicitly. Concurrent
// Invoke callers are unaffected.
func (sys *System) InvokeWithMode(p *sim.Proc, a *soc.AccTile, buf *mem.Buffer, mode soc.Mode, cpu *sim.Semaphore, rng *sim.RNG) *Result {
	return sys.invoke(p, a, buf, cpu, rng, &forcedPolicy{mode: mode})
}

func (sys *System) invoke(p *sim.Proc, a *soc.AccTile, buf *mem.Buffer, cpu *sim.Semaphore, rng *sim.RNG, pol Policy) *Result {
	s := sys.SoC
	start := p.Now()

	// Sense + decide, on the CPU. Fine-grain policies decide over the
	// full action space; everyone else picks a single mode.
	ctx := sys.Tracker.Sense(a, buf)
	var action soc.Action
	if ap, ok := pol.(ActionPolicy); ok {
		action = ap.DecideAction(ctx)
	} else {
		action = soc.ModeAction(pol.Decide(ctx))
	}
	mode := action.Hot()
	if !ctx.Allows(mode) || (action.IsSplit() && !ctx.Allows(action.Cold())) {
		panic(fmt.Sprintf("esp: policy %s chose unavailable action %v for %s",
			pol.Name(), action, a.InstName))
	}
	p.Delay(s.P.DriverCycles + pol.OverheadCycles())
	// Load the accelerator TLB with the dataset's big-page table.
	p.Delay(sim.Cycles(buf.Pages()) * s.P.TLBPerPageCycles)

	// The invocation is visible to other deciders from this point.
	sys.Tracker.Add(a, mode, buf)

	// Both monitor snapshots live in one allocation; each concurrent
	// invocation needs its own pair (the thread yields between them).
	parts := len(s.Mem)
	snaps := make([]int64, 2*parts)
	ddrBefore := s.DDRTotalsInto(snaps[:parts])
	meter := &soc.Meter{}
	// Flush obligations come from the active protocol's rules; a split
	// invocation owes the union of its two regions' obligations (the
	// flush ranges over the whole buffer, conservatively).
	needPrivate := s.NeedsPrivateFlush(mode)
	needLLC := s.NeedsLLCFlush(mode)
	if action.IsSplit() {
		needPrivate = needPrivate || s.NeedsPrivateFlush(action.Cold())
		needLLC = needLLC || s.NeedsLLCFlush(action.Cold())
	}
	if needPrivate {
		p.WaitUntil(s.FlushPrivateRange(buf, p.Now(), meter))
	}
	if needLLC {
		p.WaitUntil(s.FlushLLCRange(buf, p.Now(), meter))
	}

	// The thread sleeps while the accelerator runs; the CPU is free.
	cpu.Release()
	var stats soc.InvocationStats
	if action.IsSplit() {
		stats = s.RunAcceleratorSplit(p, a, buf, mode, action.Cold(), rng)
	} else {
		stats = s.RunAccelerator(p, a, buf, mode, rng)
	}
	cpu.Acquire(p)
	p.Delay(s.P.IRQCycles)

	// Evaluate from the hardware monitors while still listed active, so
	// attribution sees the same concurrency the run did.
	deltas := s.DDRTotalsInto(snaps[parts:])
	for i := range deltas {
		deltas[i] -= ddrBefore[i]
	}
	approx := sys.Tracker.AttributeDDR(a, buf, deltas)
	sys.Tracker.Remove(a)

	res := &Result{
		Acc:            a,
		Mode:           mode,
		Action:         action,
		FootprintBytes: buf.Bytes,
		ExecCycles:     p.Now() - start,
		ActiveCycles:   stats.Active(),
		CommCycles:     stats.CommCycles,
		OffChipApprox:  approx,
		OffChipTrue:    stats.OffChip + meter.OffChip,
	}
	sys.Invocations++
	pol.Observe(res)
	return res
}

// forcedPolicy always returns one mode (clamped to availability).
type forcedPolicy struct{ mode soc.Mode }

func (f *forcedPolicy) Name() string                 { return "forced-" + f.mode.String() }
func (f *forcedPolicy) Decide(ctx *Context) soc.Mode { return ctx.Clamp(f.mode) }
func (f *forcedPolicy) Observe(*Result)              {}
func (f *forcedPolicy) OverheadCycles() sim.Cycles   { return 0 }
