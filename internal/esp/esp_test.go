package esp

import (
	"testing"

	"cohmeleon/internal/acc"
	"cohmeleon/internal/mem"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
)

func testSoC(t *testing.T) *soc.SoC {
	t.Helper()
	spec := &acc.Spec{
		Name: "stream", Pattern: acc.Streaming, BurstLines: 16,
		ComputePerByte: 0.2, ReadFraction: 0.8, Reuse: acc.ConstReuse(1),
		InPlace: false, PLMBytes: 16 << 10,
	}
	spec2 := *spec
	spec2.Name = "stream2"
	cfg := &soc.Config{
		Name: "test", MeshW: 3, MeshH: 3, CPUs: 2, MemTiles: 2,
		LLCSliceKB: 64, L2KB: 32,
		Accs: []soc.AccInstance{
			{InstName: "acc0", Spec: spec, PrivateCache: true},
			{InstName: "acc1", Spec: &spec2, PrivateCache: true},
		},
		Params: soc.DefaultParams(),
	}
	s, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// recordingPolicy fixes a mode and records what it saw.
type recordingPolicy struct {
	mode     soc.Mode
	contexts []*Context
	results  []*Result
	overhead sim.Cycles
}

func (r *recordingPolicy) Name() string { return "recording" }
func (r *recordingPolicy) Decide(ctx *Context) soc.Mode {
	r.contexts = append(r.contexts, ctx)
	return ctx.Clamp(r.mode)
}
func (r *recordingPolicy) Observe(res *Result)        { r.results = append(r.results, res) }
func (r *recordingPolicy) OverheadCycles() sim.Cycles { return r.overhead }

func runSim(t *testing.T, s *soc.SoC, fn func(p *sim.Proc)) {
	t.Helper()
	s.Eng.Go("test", fn)
	if err := s.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInvokeLifecycle(t *testing.T) {
	s := testSoC(t)
	pol := &recordingPolicy{mode: soc.CohDMA}
	sys := NewSystem(s, pol)
	runSim(t, s, func(p *sim.Proc) {
		buf, err := s.Heap.Alloc(16 << 10)
		if err != nil {
			t.Fatal(err)
		}
		p.WaitUntil(s.CPUTouchRange(s.CPUs[0], buf, 0, buf.Lines(), true, p.Now(), &soc.Meter{}))
		sys.CPUPermit(p)
		res := sys.Invoke(p, s.Accs[0], buf, s.CPUPool, sim.NewRNG(1))
		s.CPUPool.Release()
		if res.Mode != soc.CohDMA {
			t.Errorf("mode = %v", res.Mode)
		}
		if res.ExecCycles <= 0 {
			t.Error("no execution time")
		}
		if res.OffChipTrue != 0 {
			t.Errorf("warm coh-dma went off-chip: %d", res.OffChipTrue)
		}
		if res.FootprintBytes != 16<<10 {
			t.Errorf("footprint = %d", res.FootprintBytes)
		}
	})
	if len(pol.contexts) != 1 || len(pol.results) != 1 {
		t.Fatalf("policy saw %d contexts, %d results", len(pol.contexts), len(pol.results))
	}
	if sys.Invocations != 1 {
		t.Fatalf("Invocations = %d", sys.Invocations)
	}
	if sys.Tracker.ActiveCount() != 0 {
		t.Fatal("tracker left an invocation active")
	}
}

// CPUPermit acquires a CPU permit for the calling proc (test helper to
// mirror how workload threads call Invoke).
func (sys *System) CPUPermit(p *sim.Proc) { sys.SoC.CPUPool.Acquire(p) }

func TestInvokeChargesOverhead(t *testing.T) {
	run := func(overhead sim.Cycles) sim.Cycles {
		s := testSoC(t)
		pol := &recordingPolicy{mode: soc.CohDMA, overhead: overhead}
		sys := NewSystem(s, pol)
		var exec sim.Cycles
		runSim(t, s, func(p *sim.Proc) {
			buf, _ := s.Heap.Alloc(16 << 10)
			sys.CPUPermit(p)
			res := sys.Invoke(p, s.Accs[0], buf, s.CPUPool, sim.NewRNG(1))
			s.CPUPool.Release()
			exec = res.ExecCycles
		})
		return exec
	}
	base := run(0)
	withOverhead := run(5000)
	if withOverhead != base+5000 {
		t.Errorf("overhead not charged: %d vs %d", base, withOverhead)
	}
}

func TestInvokeFlushesForNonCoherent(t *testing.T) {
	s := testSoC(t)
	pol := &recordingPolicy{mode: soc.NonCohDMA}
	sys := NewSystem(s, pol)
	runSim(t, s, func(p *sim.Proc) {
		buf, _ := s.Heap.Alloc(16 << 10)
		p.WaitUntil(s.CPUTouchRange(s.CPUs[0], buf, 0, buf.Lines(), true, p.Now(), &soc.Meter{}))
		sys.CPUPermit(p)
		res := sys.Invoke(p, s.Accs[0], buf, s.CPUPool, sim.NewRNG(1))
		s.CPUPool.Release()
		// Warm dirty data must be flushed off-chip, then read back.
		if res.OffChipTrue < 2*buf.Lines() {
			t.Errorf("non-coh invocation moved %d lines off-chip, want ≥ %d", res.OffChipTrue, 2*buf.Lines())
		}
		// The approximation must see the same traffic (only this
		// invocation is active).
		if res.OffChipApprox < float64(res.OffChipTrue)*0.9 {
			t.Errorf("approx %f far below truth %d in isolation", res.OffChipApprox, res.OffChipTrue)
		}
	})
}

func TestInvokeReleasesCPUWhileAcceleratorRuns(t *testing.T) {
	s := testSoC(t) // 2 CPUs
	pol := &recordingPolicy{mode: soc.NonCohDMA}
	sys := NewSystem(s, pol)
	// Three threads on two CPUs: if Invoke held the CPU during the run,
	// the third thread could never make progress until one finished.
	var order []string
	runSim(t, s, func(p *sim.Proc) {
		wg := sim.NewWaitGroup(s.Eng)
		for i, a := range []*soc.AccTile{s.Accs[0], s.Accs[1], s.Accs[0]} {
			i := i
			a := a
			wg.Add(1)
			s.Eng.Go("thread", func(q *sim.Proc) {
				buf, _ := s.Heap.Alloc(64 << 10)
				s.CPUPool.Acquire(q)
				a.Busy.Acquire(q)
				order = append(order, "start")
				sys.Invoke(q, a, buf, s.CPUPool, sim.NewRNG(uint64(i)))
				a.Busy.Release()
				s.CPUPool.Release()
				order = append(order, "end")
				wg.Done()
			})
		}
		wg.Wait(p)
	})
	if len(order) != 6 {
		t.Fatalf("order = %v", order)
	}
	// All three must have started before all three ended (overlap), which
	// requires the CPU to be released during accelerator execution.
	starts := 0
	for _, o := range order[:3] {
		if o == "start" {
			starts++
		}
	}
	if starts < 2 {
		t.Errorf("no overlap observed: %v", order)
	}
}

func TestTrackerSenseCounts(t *testing.T) {
	s := testSoC(t)
	tr := NewTracker(s)
	buf0, _ := s.Heap.Alloc(32 << 10)
	buf1, _ := s.Heap.Alloc(32 << 10)
	tr.Add(s.Accs[0], soc.NonCohDMA, buf0)

	ctx := tr.Sense(s.Accs[1], buf1)
	if ctx.ActiveCount != 1 || ctx.ActiveNonCoh != 1 {
		t.Fatalf("ctx = %+v", ctx)
	}
	if ctx.ActiveFootprintBytes != 32<<10 {
		t.Fatalf("active footprint = %d", ctx.ActiveFootprintBytes)
	}
	if ctx.FootprintBytes != 32<<10 {
		t.Fatalf("self footprint = %d", ctx.FootprintBytes)
	}
	if ctx.FullyCohActive != 0 {
		t.Fatal("no fully-coh active")
	}
	tr.Remove(s.Accs[0])
	ctx = tr.Sense(s.Accs[1], buf1)
	if ctx.ActiveCount != 0 || ctx.NonCohPerTile != 0 {
		t.Fatalf("tracker not cleared: %+v", ctx)
	}
}

func TestTrackerSharedPartitionVisibility(t *testing.T) {
	s := testSoC(t)
	tr := NewTracker(s)
	// Two single-page buffers land on the two partitions (least-loaded).
	bufA, _ := s.Heap.Alloc(4 << 10)
	bufB, _ := s.Heap.Alloc(4 << 10)
	partsA := bufA.Partitions(s.Map)
	partsB := bufB.Partitions(s.Map)
	if len(partsA) != 1 || len(partsB) != 1 || partsA[0] == partsB[0] {
		t.Fatalf("expected disjoint partitions, got %v and %v", partsA, partsB)
	}
	tr.Add(s.Accs[0], soc.NonCohDMA, bufA)
	// B's partition has no non-coherent activity.
	ctx := tr.Sense(s.Accs[1], bufB)
	if ctx.NonCohPerTile != 0 {
		t.Errorf("NonCohPerTile = %g, want 0 (disjoint partitions)", ctx.NonCohPerTile)
	}
	// A second invocation on A's own partition sees it.
	ctx = tr.Sense(s.Accs[1], bufA)
	if ctx.NonCohPerTile != 1 {
		t.Errorf("NonCohPerTile = %g, want 1", ctx.NonCohPerTile)
	}
}

func TestTrackerDoubleAddPanics(t *testing.T) {
	s := testSoC(t)
	tr := NewTracker(s)
	buf, _ := s.Heap.Alloc(4 << 10)
	tr.Add(s.Accs[0], soc.CohDMA, buf)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Add(s.Accs[0], soc.CohDMA, buf)
}

func TestAttributeDDRProportional(t *testing.T) {
	s := testSoC(t)
	tr := NewTracker(s)
	// Two active invocations on the same partition with footprints 1:3.
	bufA, _ := s.Heap.Alloc(4 << 10)
	partA := bufA.Partitions(s.Map)[0]
	// Force B onto the same partition by allocating until one lands there.
	var bufB *mem.Buffer
	for {
		b, err := s.Heap.Alloc(12 << 10)
		if err != nil {
			t.Fatal(err)
		}
		if b.Partitions(s.Map)[0] == partA {
			bufB = b
			break
		}
	}
	tr.Add(s.Accs[1], soc.NonCohDMA, bufB)
	deltas := make([]int64, s.Map.Partitions())
	deltas[partA] = 400
	got := tr.AttributeDDR(s.Accs[0], bufA, deltas)
	if got != 100 { // 4k/(4k+12k) × 400
		t.Errorf("AttributeDDR = %g, want 100", got)
	}
	// Sole accelerator gets everything.
	tr.Remove(s.Accs[1])
	if got := tr.AttributeDDR(s.Accs[0], bufA, deltas); got != 400 {
		t.Errorf("solo AttributeDDR = %g, want 400", got)
	}
}

func TestAttributeDDRIgnoresForeignPartitions(t *testing.T) {
	s := testSoC(t)
	tr := NewTracker(s)
	buf, _ := s.Heap.Alloc(4 << 10)
	part := buf.Partitions(s.Map)[0]
	deltas := make([]int64, s.Map.Partitions())
	for p := range deltas {
		if p != part {
			deltas[p] = 1000 // traffic elsewhere
		}
	}
	if got := tr.AttributeDDR(s.Accs[0], buf, deltas); got != 0 {
		t.Errorf("attributed %g from partitions the buffer does not touch", got)
	}
}

func TestContextAllowsAndClamp(t *testing.T) {
	ctx := &Context{Available: []soc.Mode{soc.NonCohDMA, soc.LLCCohDMA, soc.CohDMA}}
	if !ctx.Allows(soc.CohDMA) || ctx.Allows(soc.FullyCoh) {
		t.Fatal("Allows wrong")
	}
	if got := ctx.Clamp(soc.FullyCoh); got != soc.CohDMA {
		t.Fatalf("Clamp(FullyCoh) = %v, want CohDMA", got)
	}
	if got := ctx.Clamp(soc.LLCCohDMA); got != soc.LLCCohDMA {
		t.Fatalf("Clamp(LLCCohDMA) = %v", got)
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	r := &Result{
		FootprintBytes: 1000,
		ExecCycles:     5000,
		ActiveCycles:   4000,
		CommCycles:     1000,
		OffChipApprox:  250,
	}
	if r.ScaledExec() != 5 {
		t.Errorf("ScaledExec = %g", r.ScaledExec())
	}
	if r.CommRatio() != 0.25 {
		t.Errorf("CommRatio = %g", r.CommRatio())
	}
	if r.ScaledMem() != 0.25 {
		t.Errorf("ScaledMem = %g", r.ScaledMem())
	}
	zero := &Result{FootprintBytes: 10}
	if zero.CommRatio() != 0 {
		t.Error("zero active cycles should give zero ratio")
	}
}

func TestInvokeUnavailableModePanics(t *testing.T) {
	s := testSoC(t)
	// Remove acc0's private cache via a config rebuild.
	spec := s.Accs[0].Spec
	cfg := &soc.Config{
		Name: "t2", MeshW: 3, MeshH: 3, CPUs: 1, MemTiles: 1,
		LLCSliceKB: 64, L2KB: 32,
		Accs:   []soc.AccInstance{{InstName: "a", Spec: spec, PrivateCache: false}},
		Params: soc.DefaultParams(),
	}
	s2, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	bad := &badPolicy{}
	sys := NewSystem(s2, bad)
	runSim(t, s2, func(p *sim.Proc) {
		buf, _ := s2.Heap.Alloc(4 << 10)
		s2.CPUPool.Acquire(p)
		defer func() {
			if recover() == nil {
				t.Error("unavailable mode should panic")
			}
		}()
		sys.Invoke(p, s2.Accs[0], buf, s2.CPUPool, sim.NewRNG(1))
	})
}

type badPolicy struct{}

func (b *badPolicy) Name() string               { return "bad" }
func (b *badPolicy) Decide(*Context) soc.Mode   { return soc.FullyCoh }
func (b *badPolicy) Observe(*Result)            {}
func (b *badPolicy) OverheadCycles() sim.Cycles { return 0 }
