package policy

import (
	"testing"

	"cohmeleon/internal/acc"
	"cohmeleon/internal/esp"
	"cohmeleon/internal/soc"
)

func fullCtx(footprint, activeFootprint int64) *esp.Context {
	return &esp.Context{
		Acc: &soc.AccTile{ID: 0, InstName: "a0", Spec: acc.MustByName(acc.FFT), Agent: 1},
		Available: []soc.Mode{
			soc.NonCohDMA, soc.LLCCohDMA, soc.CohDMA, soc.FullyCoh,
		},
		FootprintBytes:       footprint,
		ActiveFootprintBytes: activeFootprint,
		L2Bytes:              32 << 10,
		LLCSliceBytes:        256 << 10,
		TotalLLCBytes:        1 << 20,
	}
}

func TestRandomStaysAvailable(t *testing.T) {
	r := NewRandom(3)
	ctx := fullCtx(16<<10, 0)
	ctx.Available = []soc.Mode{soc.NonCohDMA, soc.CohDMA}
	seen := make(map[soc.Mode]bool)
	for i := 0; i < 300; i++ {
		m := r.Decide(ctx)
		if m != soc.NonCohDMA && m != soc.CohDMA {
			t.Fatalf("random chose unavailable %v", m)
		}
		seen[m] = true
	}
	if len(seen) != 2 {
		t.Fatal("random never explored one of the modes")
	}
	if r.Name() != "rand" {
		t.Fatalf("Name = %q", r.Name())
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a, b := NewRandom(5), NewRandom(5)
	ctx := fullCtx(16<<10, 0)
	for i := 0; i < 50; i++ {
		if a.Decide(ctx) != b.Decide(ctx) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestFixedPolicies(t *testing.T) {
	for _, m := range soc.AllModes {
		f := NewFixed(m)
		if f.Mode() != m {
			t.Fatalf("Mode = %v", f.Mode())
		}
		if f.Name() != "fixed-"+m.String() {
			t.Fatalf("Name = %q", f.Name())
		}
		if got := f.Decide(fullCtx(16<<10, 0)); got != m {
			t.Fatalf("Decide = %v, want %v", got, m)
		}
		if f.OverheadCycles() != 0 {
			t.Fatal("fixed policies have no runtime overhead")
		}
	}
}

func TestFixedFullCohClampsWithoutPrivateCache(t *testing.T) {
	f := NewFixed(soc.FullyCoh)
	ctx := fullCtx(16<<10, 0)
	ctx.Available = []soc.Mode{soc.NonCohDMA, soc.LLCCohDMA, soc.CohDMA}
	if got := f.Decide(ctx); got != soc.CohDMA {
		t.Fatalf("clamped Decide = %v, want CohDMA", got)
	}
}

func TestFixedHeterogeneous(t *testing.T) {
	f := NewFixedHeterogeneous(map[string]soc.Mode{
		acc.FFT:  soc.NonCohDMA,
		acc.SPMV: soc.LLCCohDMA,
	}, soc.CohDMA)
	ctx := fullCtx(16<<10, 0) // FFT accelerator
	if got := f.Decide(ctx); got != soc.NonCohDMA {
		t.Fatalf("FFT assignment = %v", got)
	}
	if f.Assignment(acc.SPMV) != soc.LLCCohDMA {
		t.Fatal("SPMV assignment lost")
	}
	if f.Assignment("unknown") != soc.CohDMA {
		t.Fatal("fallback broken")
	}
	if f.Name() != "fixed-hetero" {
		t.Fatalf("Name = %q", f.Name())
	}
}

func TestFixedHeterogeneousCopiesAssignment(t *testing.T) {
	m := map[string]soc.Mode{acc.FFT: soc.NonCohDMA}
	f := NewFixedHeterogeneous(m, soc.CohDMA)
	m[acc.FFT] = soc.FullyCoh // mutate caller's map
	if f.Assignment(acc.FFT) != soc.NonCohDMA {
		t.Fatal("policy aliases the caller's map")
	}
}

func TestManualAlgorithm1(t *testing.T) {
	m := NewManual()
	cases := []struct {
		name string
		ctx  *esp.Context
		want soc.Mode
	}{
		{"extra-small", fullCtx(4<<10, 0), soc.FullyCoh},
		{"fits-l2-quiet", fullCtx(32<<10, 0), soc.CohDMA},
		{"exceeds-llc", fullCtx(2<<20, 0), soc.NonCohDMA},
		{"active-pushes-over-llc", fullCtx(512<<10, 600<<10), soc.NonCohDMA},
		{"mid-quiet", fullCtx(128<<10, 0), soc.CohDMA},
	}
	for _, c := range cases {
		if got := m.Decide(c.ctx); got != c.want {
			t.Errorf("%s: Decide = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestManualPrefersFullyCohUnderCohDMAContention(t *testing.T) {
	m := NewManual()
	ctx := fullCtx(32<<10, 0)
	ctx.ActiveCohDMA = 3
	ctx.ActiveFullyCoh = 1
	if got := m.Decide(ctx); got != soc.FullyCoh {
		t.Fatalf("Decide = %v, want FullyCoh (coh-dma congested)", got)
	}
}

func TestManualAvoidsNonCohContentionWithLLCCoh(t *testing.T) {
	m := NewManual()
	ctx := fullCtx(128<<10, 0)
	ctx.ActiveNonCoh = 2
	if got := m.Decide(ctx); got != soc.LLCCohDMA {
		t.Fatalf("Decide = %v, want LLCCohDMA (non-coh congested)", got)
	}
}

func TestManualClampsWithoutPrivateCache(t *testing.T) {
	m := NewManual()
	ctx := fullCtx(2<<10, 0) // would pick FullyCoh
	ctx.Available = []soc.Mode{soc.NonCohDMA, soc.LLCCohDMA, soc.CohDMA}
	if got := m.Decide(ctx); got != soc.CohDMA {
		t.Fatalf("Decide = %v, want CohDMA (clamped)", got)
	}
}

func TestPoliciesSatisfyInterface(t *testing.T) {
	var _ esp.Policy = NewRandom(1)
	var _ esp.Policy = NewFixed(soc.CohDMA)
	var _ esp.Policy = NewFixedHeterogeneous(nil, soc.CohDMA)
	var _ esp.Policy = NewManual()
}
