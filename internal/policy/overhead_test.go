// Package policy_test asserts the documented overhead table from the
// outside: it imports internal/core for the Cohmeleon entry, which the
// in-package tests cannot (core imports policy).
package policy_test

import (
	"testing"

	"cohmeleon/internal/core"
	"cohmeleon/internal/policy"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
)

// TestOverheadTableMatchesPaper pins the §4.3/§6 decision-overhead
// model: the documented constants, what every policy implementation
// actually charges, and the agent's default configuration must agree.
func TestOverheadTableMatchesPaper(t *testing.T) {
	// The paper's figures, restated independently of overhead.go so a
	// silent edit there fails here.
	paper := map[string]sim.Cycles{
		"fixed":        0,
		"rand":         100,
		"fixed-hetero": 100,
		"manual":       400,
		"cohmeleon":    3000,
	}
	if len(policy.OverheadCyclesByPolicy) != len(paper) {
		t.Fatalf("overhead table has %d entries, want %d", len(policy.OverheadCyclesByPolicy), len(paper))
	}
	for name, want := range paper {
		if got, ok := policy.OverheadCyclesByPolicy[name]; !ok || got != want {
			t.Errorf("table[%q] = %d (present=%v), paper says %d", name, got, ok, want)
		}
	}

	// Every implementation returns its table entry.
	if got := policy.NewFixed(soc.CohDMA).OverheadCycles(); got != policy.FixedOverheadCycles {
		t.Errorf("Fixed charges %d, table says %d", got, policy.FixedOverheadCycles)
	}
	if got := policy.NewRandom(1).OverheadCycles(); got != policy.RandomOverheadCycles {
		t.Errorf("Random charges %d, table says %d", got, policy.RandomOverheadCycles)
	}
	het := policy.NewFixedHeterogeneous(nil, soc.CohDMA)
	if got := het.OverheadCycles(); got != policy.HeteroOverheadCycles {
		t.Errorf("FixedHeterogeneous charges %d, table says %d", got, policy.HeteroOverheadCycles)
	}
	if got := policy.NewManual().OverheadCycles(); got != policy.ManualOverheadCycles {
		t.Errorf("Manual charges %d, table says %d", got, policy.ManualOverheadCycles)
	}
	agent, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := agent.OverheadCycles(); got != policy.CohmeleonOverheadCycles {
		t.Errorf("Cohmeleon charges %d, table says %d", got, policy.CohmeleonOverheadCycles)
	}
}
