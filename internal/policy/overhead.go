package policy

import "cohmeleon/internal/sim"

// Per-policy decision overheads, charged on the invoking CPU inside the
// invocation window (paper §4.3 "Decide" and §6 "Overheads"). The cost
// model: a fixed design-time choice costs nothing at runtime; a random
// draw or a per-type table lookup is a trivial branch (100 cycles); the
// manually-tuned decision tree also reads the status tracker (400
// cycles); Cohmeleon additionally walks its value table and performs
// the bookkeeping the paper measures at 3–6% of a small invocation,
// modeled as a flat 3000 cycles.
//
// Every esp.Policy implementation in the repository returns its
// constant from this table; a regression test asserts the two stay in
// sync and match the paper's figures.
const (
	// FixedOverheadCycles: the mode is baked in at design time.
	FixedOverheadCycles sim.Cycles = 0
	// RandomOverheadCycles: one RNG draw per invocation.
	RandomOverheadCycles sim.Cycles = 100
	// HeteroOverheadCycles: one per-accelerator-type table lookup.
	HeteroOverheadCycles sim.Cycles = 100
	// ManualOverheadCycles: Algorithm 1's tracker reads and branches.
	ManualOverheadCycles sim.Cycles = 400
	// CohmeleonOverheadCycles: status tracking, value-table lookup and
	// update bookkeeping (paper §6: 3–6% of a 16 kB invocation).
	CohmeleonOverheadCycles sim.Cycles = 3000
)

// OverheadCyclesByPolicy maps report-facing policy names to their
// decision overhead, for documentation and the sync test.
var OverheadCyclesByPolicy = map[string]sim.Cycles{
	"fixed":        FixedOverheadCycles,
	"rand":         RandomOverheadCycles,
	"fixed-hetero": HeteroOverheadCycles,
	"manual":       ManualOverheadCycles,
	"cohmeleon":    CohmeleonOverheadCycles,
}
