package policy

import (
	"fmt"

	"cohmeleon/internal/esp"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
)

// ExtraSmallThreshold is Algorithm 1's EXTRA_SMALL_THRESHOLD: workloads
// at or below it always run fully coherent.
const ExtraSmallThreshold = 4 << 10

// Manual is the paper's manually-tuned, introspective runtime algorithm
// (Algorithm 1), built by its authors from tens of thousands of
// profiled invocations on ESP. It reads the same tracker state as
// Cohmeleon but encodes a hand-written decision tree; the paper uses it
// as the "expert ceiling" Cohmeleon should match without any tuning.
type Manual struct{}

// NewManual returns the Algorithm-1 policy.
func NewManual() *Manual { return &Manual{} }

// Name implements esp.Policy.
func (m *Manual) Name() string { return "manual" }

// Decide implements esp.Policy. This is Algorithm 1 verbatim:
//
//	if footprint ≤ EXTRA_SMALL_THRESHOLD:            FULLY-COH
//	else if footprint ≤ CACHE_L2_SIZE:
//	    if active_coh_dma > active_fully_coh:        FULLY-COH
//	    else:                                        COH-DMA
//	else if footprint + active_footprint > CACHE_LLC_SIZE: NON-COH
//	else:
//	    if active_non_coh ≥ 2:                       LLC-COH-DMA
//	    else:                                        COH-DMA
func (m *Manual) Decide(ctx *esp.Context) soc.Mode {
	var coh soc.Mode
	switch {
	case ctx.FootprintBytes <= ExtraSmallThreshold:
		coh = soc.FullyCoh
	case ctx.FootprintBytes <= ctx.L2Bytes:
		if ctx.ActiveCohDMA > ctx.ActiveFullyCoh {
			coh = soc.FullyCoh
		} else {
			coh = soc.CohDMA
		}
	case ctx.FootprintBytes+ctx.ActiveFootprintBytes > ctx.TotalLLCBytes:
		coh = soc.NonCohDMA
	default:
		if ctx.ActiveNonCoh >= 2 {
			coh = soc.LLCCohDMA
		} else {
			coh = soc.CohDMA
		}
	}
	return ctx.Clamp(coh)
}

// Observe implements esp.Policy.
func (m *Manual) Observe(*esp.Result) {}

// OverheadCycles implements esp.Policy: the decision tree is cheap but
// still reads the tracker.
func (m *Manual) OverheadCycles() sim.Cycles { return ManualOverheadCycles }

// MemoKey marks Manual as memoizable (see Fixed.MemoKey): the decision
// tree is stateless, parameterized only by its threshold constant.
func (m *Manual) MemoKey() string {
	return fmt.Sprintf("manual:xs=%d", ExtraSmallThreshold)
}
