// Package policy provides the baseline coherence policies the paper
// compares Cohmeleon against (§4.3 "Decide"): Random, the four fixed
// homogeneous policies, the profiling-derived fixed heterogeneous
// policy, and the manually-tuned runtime algorithm (Algorithm 1).
// All implement esp.Policy.
package policy

import (
	"fmt"
	"sort"
	"strings"

	"cohmeleon/internal/esp"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
)

// Random chooses a coherence mode uniformly at random per invocation.
type Random struct {
	rng *sim.RNG
}

// NewRandom returns a random policy seeded deterministically.
func NewRandom(seed uint64) *Random { return &Random{rng: sim.NewRNG(seed ^ 0xabcd)} }

// Name implements esp.Policy.
func (r *Random) Name() string { return "rand" }

// Decide implements esp.Policy.
func (r *Random) Decide(ctx *esp.Context) soc.Mode {
	return ctx.Available[r.rng.Intn(len(ctx.Available))]
}

// Observe implements esp.Policy.
func (r *Random) Observe(*esp.Result) {}

// OverheadCycles implements esp.Policy.
func (r *Random) OverheadCycles() sim.Cycles { return RandomOverheadCycles }

// Fixed applies one coherence mode to every invocation — the
// design-time homogeneous choice that represents nearly all prior work.
// Tiles lacking the mode (no private cache) fall back to the nearest
// available one.
type Fixed struct {
	mode soc.Mode
}

// NewFixed returns the fixed policy for a mode.
func NewFixed(mode soc.Mode) *Fixed { return &Fixed{mode: mode} }

// Name implements esp.Policy.
func (f *Fixed) Name() string { return "fixed-" + f.mode.String() }

// Mode returns the configured mode.
func (f *Fixed) Mode() soc.Mode { return f.mode }

// Decide implements esp.Policy.
func (f *Fixed) Decide(ctx *esp.Context) soc.Mode { return ctx.Clamp(f.mode) }

// Observe implements esp.Policy.
func (f *Fixed) Observe(*esp.Result) {}

// OverheadCycles implements esp.Policy.
func (f *Fixed) OverheadCycles() sim.Cycles { return FixedOverheadCycles }

// MemoKey marks Fixed as memoizable: its decisions are a pure function
// of the construction mode, and its Observe is stateless, so an app run
// under it is a pure function of (SoC config, mode, app, seed). The
// experiment run cache keys on this. Random deliberately lacks a
// MemoKey — its RNG advances per decision, so a second run of the same
// instance depends on the first having actually executed.
func (f *Fixed) MemoKey() string { return "fixed:" + f.mode.String() }

// FixedHeterogeneous assigns one design-time mode per accelerator type,
// the per-accelerator static choice of prior work (Bhardwaj et al.).
// The assignment comes from profiling each accelerator in isolation
// across workload footprints (see the experiment package's profiler).
type FixedHeterogeneous struct {
	assignment map[string]soc.Mode // keyed by spec name
	fallback   soc.Mode
}

// NewFixedHeterogeneous builds the policy from a profiling-derived
// assignment. Unknown accelerators use the fallback mode.
func NewFixedHeterogeneous(assignment map[string]soc.Mode, fallback soc.Mode) *FixedHeterogeneous {
	cp := make(map[string]soc.Mode, len(assignment))
	for k, v := range assignment {
		cp[k] = v
	}
	return &FixedHeterogeneous{assignment: cp, fallback: fallback}
}

// Name implements esp.Policy.
func (f *FixedHeterogeneous) Name() string { return "fixed-hetero" }

// Assignment returns the mode chosen for a spec name.
func (f *FixedHeterogeneous) Assignment(specName string) soc.Mode {
	if m, ok := f.assignment[specName]; ok {
		return m
	}
	return f.fallback
}

// Decide implements esp.Policy.
func (f *FixedHeterogeneous) Decide(ctx *esp.Context) soc.Mode {
	return ctx.Clamp(f.Assignment(ctx.Acc.Spec.Name))
}

// Observe implements esp.Policy.
func (f *FixedHeterogeneous) Observe(*esp.Result) {}

// OverheadCycles implements esp.Policy.
func (f *FixedHeterogeneous) OverheadCycles() sim.Cycles { return HeteroOverheadCycles }

// String describes the assignment (for reports).
func (f *FixedHeterogeneous) String() string {
	return fmt.Sprintf("fixed-hetero(%d accelerators profiled)", len(f.assignment))
}

// MemoKey marks FixedHeterogeneous as memoizable (see Fixed.MemoKey):
// the key encodes the full profiling-derived assignment in sorted
// order plus the fallback, so two policies behave identically exactly
// when their keys match.
func (f *FixedHeterogeneous) MemoKey() string {
	specs := make([]string, 0, len(f.assignment))
	for name := range f.assignment {
		specs = append(specs, name)
	}
	sort.Strings(specs)
	var b strings.Builder
	b.WriteString("hetero:")
	for _, name := range specs {
		fmt.Fprintf(&b, "%s=%s;", name, f.assignment[name])
	}
	fmt.Fprintf(&b, "fallback=%s", f.fallback)
	return b.String()
}
