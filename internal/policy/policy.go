// Package policy provides the baseline coherence policies the paper
// compares Cohmeleon against (§4.3 "Decide"): Random, the four fixed
// homogeneous policies, the profiling-derived fixed heterogeneous
// policy, and the manually-tuned runtime algorithm (Algorithm 1).
// All implement esp.Policy.
package policy

import (
	"fmt"

	"cohmeleon/internal/esp"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc"
)

// Random chooses a coherence mode uniformly at random per invocation.
type Random struct {
	rng *sim.RNG
}

// NewRandom returns a random policy seeded deterministically.
func NewRandom(seed uint64) *Random { return &Random{rng: sim.NewRNG(seed ^ 0xabcd)} }

// Name implements esp.Policy.
func (r *Random) Name() string { return "rand" }

// Decide implements esp.Policy.
func (r *Random) Decide(ctx *esp.Context) soc.Mode {
	return ctx.Available[r.rng.Intn(len(ctx.Available))]
}

// Observe implements esp.Policy.
func (r *Random) Observe(*esp.Result) {}

// OverheadCycles implements esp.Policy.
func (r *Random) OverheadCycles() sim.Cycles { return RandomOverheadCycles }

// Fixed applies one coherence mode to every invocation — the
// design-time homogeneous choice that represents nearly all prior work.
// Tiles lacking the mode (no private cache) fall back to the nearest
// available one.
type Fixed struct {
	mode soc.Mode
}

// NewFixed returns the fixed policy for a mode.
func NewFixed(mode soc.Mode) *Fixed { return &Fixed{mode: mode} }

// Name implements esp.Policy.
func (f *Fixed) Name() string { return "fixed-" + f.mode.String() }

// Mode returns the configured mode.
func (f *Fixed) Mode() soc.Mode { return f.mode }

// Decide implements esp.Policy.
func (f *Fixed) Decide(ctx *esp.Context) soc.Mode { return ctx.Clamp(f.mode) }

// Observe implements esp.Policy.
func (f *Fixed) Observe(*esp.Result) {}

// OverheadCycles implements esp.Policy.
func (f *Fixed) OverheadCycles() sim.Cycles { return FixedOverheadCycles }

// FixedHeterogeneous assigns one design-time mode per accelerator type,
// the per-accelerator static choice of prior work (Bhardwaj et al.).
// The assignment comes from profiling each accelerator in isolation
// across workload footprints (see the experiment package's profiler).
type FixedHeterogeneous struct {
	assignment map[string]soc.Mode // keyed by spec name
	fallback   soc.Mode
}

// NewFixedHeterogeneous builds the policy from a profiling-derived
// assignment. Unknown accelerators use the fallback mode.
func NewFixedHeterogeneous(assignment map[string]soc.Mode, fallback soc.Mode) *FixedHeterogeneous {
	cp := make(map[string]soc.Mode, len(assignment))
	for k, v := range assignment {
		cp[k] = v
	}
	return &FixedHeterogeneous{assignment: cp, fallback: fallback}
}

// Name implements esp.Policy.
func (f *FixedHeterogeneous) Name() string { return "fixed-hetero" }

// Assignment returns the mode chosen for a spec name.
func (f *FixedHeterogeneous) Assignment(specName string) soc.Mode {
	if m, ok := f.assignment[specName]; ok {
		return m
	}
	return f.fallback
}

// Decide implements esp.Policy.
func (f *FixedHeterogeneous) Decide(ctx *esp.Context) soc.Mode {
	return ctx.Clamp(f.Assignment(ctx.Acc.Spec.Name))
}

// Observe implements esp.Policy.
func (f *FixedHeterogeneous) Observe(*esp.Result) {}

// OverheadCycles implements esp.Policy.
func (f *FixedHeterogeneous) OverheadCycles() sim.Cycles { return HeteroOverheadCycles }

// String describes the assignment (for reports).
func (f *FixedHeterogeneous) String() string {
	return fmt.Sprintf("fixed-hetero(%d accelerators profiled)", len(f.assignment))
}
