package soc

import (
	"cohmeleon/internal/cache"
	"cohmeleon/internal/mem"
	"cohmeleon/internal/sim"
)

// This file implements the transaction flows of the cache hierarchy:
// how cached agents (CPUs and fully-coherent accelerators) and DMA
// engines reach the LLC and DRAM under each coherence mode. Flows
// operate on "groups" — up to Params.GroupLines contiguous lines homed
// on one partition — paying per-message costs (headers, DRAM latency)
// once per group and per-line costs (LLC pipeline, channel bandwidth)
// per line. That models the MSHR-style pipelining of real controllers
// while keeping the simulation at transaction granularity.

// Meter accumulates the ground-truth off-chip accesses caused by one
// activity (an invocation, a flush, a software touch). The paper's
// runtime cannot observe this directly — it uses the footprint-
// proportional approximation — but the simulator tracks it for
// reporting and for validating the approximation.
type Meter struct {
	OffChip int64
}

func (m *Meter) add(n int64) {
	if m != nil {
		m.OffChip += n
	}
}

// recallFromOwner pulls the line out of its owner's private cache.
// For reads the owner downgrades to Shared; for writes (and evictions)
// it invalidates. Dirty data travels back to the memory tile on the
// response plane and marks the LLC copy dirty. Returns the new cursor.
func (s *SoC) recallFromOwner(mt *MemTile, e *cache.DirEntry, invalidate bool, at sim.Cycles, meter *Meter) sim.Cycles {
	ownerID := e.Owner
	if ownerID == cache.NoOwner {
		return at
	}
	owner := &s.agents[ownerID]
	cp := s.cohPathTo(ownerID, mt.Part)
	// Forward from the directory to the owner.
	t := cp.fwd.Send(0, at)
	_, t = owner.port.Acquire(t, s.P.L2HitCycles)
	var present, dirty bool
	if invalidate {
		present, dirty = owner.cache.Invalidate(e.Line)
	} else {
		present, dirty = owner.cache.Downgrade(e.Line)
	}
	if present && dirty {
		// Dirty data returns to the LLC.
		t = cp.wb.Send(mem.LineBytes, t)
		_, t = mt.Port.Acquire(t, s.P.LLCFillCycles)
		e.State = cache.DirDirty
	}
	e.Owner = cache.NoOwner
	if present && !invalidate {
		e.AddSharer(ownerID)
	}
	return t
}

// invalidateSharers sends invalidation forwards to every sharer. The
// forwards are fire-and-forget; the directory pays header issue cost.
func (s *SoC) invalidateSharers(mt *MemTile, e *cache.DirEntry, at sim.Cycles) sim.Cycles {
	t := at
	e.ForEachSharer(func(id int) {
		ag := &s.agents[id]
		_, t = mt.Port.Acquire(t, s.P.RecallHeaderCycles)
		arrive := s.cohPathTo(id, mt.Part).fwd.Send(0, t)
		_, _ = ag.port.Acquire(arrive, s.P.L2HitCycles)
		ag.cache.Invalidate(e.Line) // may be a stale sharer (silent eviction): harmless
	})
	e.Sharers = 0
	return t
}

// evictLLCVictim enforces inclusion when the LLC displaces a line:
// private copies are recalled/invalidated, and dirty data (from the LLC
// or the recalled owner) is posted to DRAM.
func (s *SoC) evictLLCVictim(mt *MemTile, v cache.DirVictim, at sim.Cycles, meter *Meter) sim.Cycles {
	if !v.Valid {
		return at
	}
	t := at
	dirty := v.WasDirty
	if v.Owner != cache.NoOwner {
		owner := &s.agents[v.Owner]
		cp := s.cohPathTo(v.Owner, mt.Part)
		t = cp.fwd.Send(0, t)
		_, t = owner.port.Acquire(t, s.P.L2HitCycles)
		present, ownerDirty := owner.cache.Invalidate(v.Line)
		if present && ownerDirty {
			t = cp.wb.Send(mem.LineBytes, t)
			dirty = true
		}
	}
	cache.ForEachSharerMask(v.Sharers, func(id int) {
		ag := &s.agents[id]
		_, t = mt.Port.Acquire(t, s.P.RecallHeaderCycles)
		arrive := s.cohPathTo(id, mt.Part).fwd.Send(0, t)
		_, _ = ag.port.Acquire(arrive, s.P.L2HitCycles)
		ag.cache.Invalidate(v.Line)
	})
	if dirty {
		mt.DRAM.Post(t, 1, true)
		meter.add(1)
	}
	return t
}

// writebackToLLC handles a dirty private-cache victim (PutM): the data
// travels to the line's home LLC, which becomes dirty and drops the
// owner. Posted: the returned time is when the LLC accepted it, but
// callers typically do not wait on it.
func (s *SoC) writebackToLLC(from *agent, fromID int, line mem.LineAddr, at sim.Cycles, meter *Meter) sim.Cycles {
	mt := s.homeTile(line)
	t := s.cohPathTo(fromID, mt.Part).wb.Send(mem.LineBytes, at)
	_, t = mt.Port.Acquire(t, s.P.LLCFillCycles)
	e := mt.LLC.Probe(line)
	if e == nil {
		// The LLC lost the entry (should not happen under inclusion, but
		// stay robust): allocate it dirty.
		var v cache.DirVictim
		e, v = mt.LLC.Insert(line, cache.DirDirty)
		t = s.evictLLCVictim(mt, v, t, meter)
		return t
	}
	e.State = cache.DirDirty
	if e.Owner == fromID {
		e.Owner = cache.NoOwner
	}
	return t
}

// cachedGroupAccess performs reads or full-line writes for n contiguous
// lines through an agent's private cache (the CPU software path and the
// fully-coherent accelerator path). Writes are write-allocate without
// fetch: software initialization and accelerator stores write whole
// lines. Returns the completion time.
func (s *SoC) cachedGroupAccess(agentID int, start mem.LineAddr, n int64, write bool, at sim.Cycles, meter *Meter) sim.Cycles {
	ag := &s.agents[agentID]
	t := at
	// Private-cache lookup occupancy for the whole group.
	_, t = ag.port.Acquire(t, sim.Cycles(n)*s.P.L2HitCycles)

	// Classify each line; collect the ones needing LLC service. The
	// scratch buffer is safe to share: exactly one simulation goroutine
	// runs at a time and this function never yields.
	misses := s.missScratch[:0]
	defer func() { s.missScratch = misses[:0] }()
	for i := int64(0); i < n; i++ {
		line := start + mem.LineAddr(i)
		st, hit := ag.cache.AccessUpgrade(line, write)
		if hit && (!write || st == cache.Modified || st == cache.Exclusive) {
			continue
		}
		// Miss, or write hit in Shared (needs ownership upgrade).
		misses = append(misses, line)
	}
	if len(misses) == 0 {
		return t
	}
	mt := s.homeTile(start)
	cp := s.cohPathTo(agentID, mt.Part)
	// One request header per group.
	t = cp.req.Send(0, t)

	var fillLines int64 // lines read from DRAM
	for _, line := range misses {
		_, t = mt.Port.Acquire(t, s.P.LLCLookupCycles)
		e, v, hit := mt.LLC.AccessOrInsert(line, cache.DirClean)
		if !hit {
			if !write {
				fillLines++
			}
			_, t = mt.Port.Acquire(t, s.P.LLCMissPerLine)
			t = s.evictLLCVictim(mt, v, t, meter)
		} else {
			if e.Owner != cache.NoOwner && e.Owner != agentID {
				t = s.recallFromOwner(mt, e, write, t, meter)
			}
			if write && e.HasSharers() {
				t = s.invalidateSharers(mt, e, t)
			}
		}
		if write {
			e.Owner = agentID
			e.RemoveSharer(agentID)
			e.Sharers = 0
		} else if e.Owner == cache.NoOwner && !e.HasSharers() {
			e.Owner = agentID // exclusive grant
		} else {
			if e.Owner == agentID {
				// Re-fetch after silent eviction: keep ownership.
			} else {
				e.AddSharer(agentID)
			}
		}
	}
	if fillLines > 0 {
		// DRAM fills pay the burst latency once per group (MSHR overlap).
		t = mt.DRAM.Access(t, fillLines, false)
		meter.add(fillLines)
	}
	// Data response for the whole group.
	t = cp.rsp.Send(len(misses)*mem.LineBytes, t)
	// Fill the private cache; dirty victims write back (posted).
	for _, line := range misses {
		st := cache.Exclusive
		if write {
			st = cache.Modified
		} else if e := mt.LLC.Probe(line); e != nil && (e.HasSharers() || e.Owner != agentID) {
			st = cache.Shared
		}
		v := ag.cache.Insert(line, st)
		if v.Valid {
			if v.State.Dirty() {
				s.writebackToLLC(ag, agentID, v.Line, t, meter)
			} else {
				// Silent clean eviction: directory state goes stale; recalls
				// to absent lines are tolerated.
				if e := s.homeTile(v.Line).LLC.Probe(v.Line); e != nil {
					if e.Owner == agentID {
						e.Owner = cache.NoOwner
					}
					e.RemoveSharer(agentID)
				}
			}
		}
	}
	return t
}

// dmaGroupLLC serves one DMA group through the LLC: the LLCCohDMA and
// CohDMA datapaths. recallOwners selects CohDMA semantics (full hardware
// coherence: private copies are recalled/invalidated); without it the
// bridge is coherent with the LLC only, as in LLCCohDMA, where software
// flushed the private caches beforehand.
func (s *SoC) dmaGroupLLC(mt *MemTile, a *AccTile, start mem.LineAddr, n int64, write, recallOwners bool, at sim.Cycles, meter *Meter) sim.Cycles {
	dp := s.dmaPathTo(a.ID, mt.Part)
	var t sim.Cycles
	if write {
		// Data travels with the request.
		t = dp.up.Send(int(n)*mem.LineBytes, at)
	} else {
		t = dp.req.Send(0, at)
	}
	missState := cache.DirClean
	if write {
		missState = cache.DirDirty
	}
	lookup := s.P.LLCLookupCycles
	if recallOwners {
		lookup += s.P.CohDMACheckCycles
	}
	var fillLines int64
	for i := int64(0); i < n; i++ {
		line := start + mem.LineAddr(i)
		_, t = mt.Port.Acquire(t, lookup)
		e, v, hit := mt.LLC.AccessOrInsert(line, missState)
		if !hit {
			if !write {
				fillLines++
			}
			_, t = mt.Port.Acquire(t, s.P.LLCMissPerLine)
			t = s.evictLLCVictim(mt, v, t, meter)
			continue
		}
		if recallOwners && e.Owner != cache.NoOwner {
			t = s.recallFromOwner(mt, e, write, t, meter)
		}
		if write {
			if recallOwners && e.HasSharers() {
				t = s.invalidateSharers(mt, e, t)
			}
			// The bridge claims the line: any remaining directory state is
			// stale by construction (LLCCohDMA ran after a private flush).
			e.Owner = cache.NoOwner
			e.Sharers = 0
			e.State = cache.DirDirty
		}
	}
	if fillLines > 0 {
		t = mt.DRAM.Access(t, fillLines, false)
		meter.add(fillLines)
	}
	if !write {
		t = dp.down.Send(int(n)*mem.LineBytes, t)
	}
	return t
}

// dmaGroupNonCoh serves one DMA group straight from DRAM, bypassing the
// hierarchy entirely (the NonCohDMA datapath).
func (s *SoC) dmaGroupNonCoh(mt *MemTile, a *AccTile, start mem.LineAddr, n int64, write bool, at sim.Cycles, meter *Meter) sim.Cycles {
	dp := s.dmaPathTo(a.ID, mt.Part)
	if write {
		t := dp.up.Send(int(n)*mem.LineBytes, at)
		t = mt.DRAM.Post(t, n, true)
		meter.add(n)
		return t
	}
	t := dp.req.Send(0, at)
	t = mt.DRAM.Access(t, n, false)
	meter.add(n)
	return dp.down.Send(int(n)*mem.LineBytes, t)
}
