package soc

import (
	"cohmeleon/internal/cache"
	"cohmeleon/internal/mem"
	"cohmeleon/internal/sim"
)

// This file implements the transaction flows of the cache hierarchy:
// how cached agents (CPUs and fully-coherent accelerators) and DMA
// engines reach the LLC and DRAM under each coherence mode. Flows
// operate on "groups" — up to Params.GroupLines contiguous lines homed
// on one partition — paying per-message costs (headers, DRAM latency)
// once per group and per-line costs (LLC pipeline, channel bandwidth)
// per line. That models the MSHR-style pipelining of real controllers
// while keeping the simulation at transaction granularity.
//
// The group flows are run-batched: one run-level cache/directory call
// performs every line's state transition, and the per-line pipeline
// occupancies of "plain" lines — hits needing no recalls, misses
// filling clean sets — are fused into one reservation, which is
// timing-identical because the port cursor accumulates durations
// linearly and nothing yields mid-group. Only exceptional lines
// (recalls, invalidations, victims carrying dirty data or private
// copies) are handled individually, at exactly the cursor position the
// per-line reference flow (coherence_ref.go) would handle them.

// Meter accumulates the ground-truth off-chip accesses caused by one
// activity (an invocation, a flush, a software touch). The paper's
// runtime cannot observe this directly — it uses the footprint-
// proportional approximation — but the simulator tracks it for
// reporting and for validating the approximation.
type Meter struct {
	OffChip int64
}

func (m *Meter) add(n int64) {
	if m != nil {
		m.OffChip += n
	}
}

// recallFromOwner pulls the line out of its owner's private cache.
// For reads the owner downgrades to Shared; for writes (and evictions)
// it invalidates. Dirty data travels back to the memory tile on the
// response plane and marks the LLC copy dirty. Returns the new cursor.
func (s *SoC) recallFromOwner(mt *MemTile, e *cache.DirEntry, invalidate bool, at sim.Cycles, meter *Meter) sim.Cycles {
	ownerID := e.Owner
	if ownerID == cache.NoOwner {
		return at
	}
	owner := &s.agents[ownerID]
	cp := s.cohPathTo(ownerID, mt.Part)
	// Forward from the directory to the owner.
	t := cp.fwd.Send(0, at)
	_, t = owner.port.Acquire(t, s.P.L2HitCycles)
	var present, dirty bool
	if invalidate {
		present, dirty = owner.cache.Invalidate(e.Line)
	} else {
		present, dirty = owner.cache.Downgrade(e.Line)
	}
	if present && dirty {
		// Dirty data returns to the LLC.
		t = cp.wb.Send(mem.LineBytes, t)
		if !s.rules.OwnerForward {
			// The recall waits for the LLC copy to update through the fill
			// pipeline; owner-forwarding protocols complete at the
			// writeback's arrival and update the LLC in the background.
			_, t = mt.Port.Acquire(t, s.P.LLCFillCycles)
		}
		e.State = cache.DirDirty
	}
	mt.LLC.SetOwner(e, cache.NoOwner)
	if present && !invalidate {
		mt.LLC.AddSharer(e, ownerID)
	}
	return t
}

// invalidateSharers sends invalidation forwards to every sharer. The
// forwards are fire-and-forget; the directory pays header issue cost.
func (s *SoC) invalidateSharers(mt *MemTile, e *cache.DirEntry, at sim.Cycles) sim.Cycles {
	t := at
	e.ForEachSharer(func(id int) {
		ag := &s.agents[id]
		_, t = mt.Port.Acquire(t, s.P.RecallHeaderCycles)
		arrive := s.cohPathTo(id, mt.Part).fwd.Send(0, t)
		_, _ = ag.port.Acquire(arrive, s.P.L2HitCycles)
		ag.cache.Invalidate(e.Line) // may be a stale sharer (silent eviction): harmless
	})
	mt.LLC.ClearSharers(e)
	return t
}

// evictLLCVictim enforces inclusion when the LLC displaces a line:
// private copies are recalled/invalidated, and dirty data (from the LLC
// or the recalled owner) is posted to DRAM.
func (s *SoC) evictLLCVictim(mt *MemTile, v cache.DirVictim, at sim.Cycles, meter *Meter) sim.Cycles {
	if !v.Valid {
		return at
	}
	t := at
	dirty := v.WasDirty
	if v.Owner != cache.NoOwner {
		owner := &s.agents[v.Owner]
		cp := s.cohPathTo(v.Owner, mt.Part)
		t = cp.fwd.Send(0, t)
		_, t = owner.port.Acquire(t, s.P.L2HitCycles)
		present, ownerDirty := owner.cache.Invalidate(v.Line)
		if present && ownerDirty {
			t = cp.wb.Send(mem.LineBytes, t)
			dirty = true
		}
	}
	cache.ForEachSharerMask(v.Sharers, func(id int) {
		ag := &s.agents[id]
		_, t = mt.Port.Acquire(t, s.P.RecallHeaderCycles)
		arrive := s.cohPathTo(id, mt.Part).fwd.Send(0, t)
		_, _ = ag.port.Acquire(arrive, s.P.L2HitCycles)
		ag.cache.Invalidate(v.Line)
	})
	if dirty {
		mt.DRAM.Post(t, 1, true)
		meter.add(1)
	}
	return t
}

// writebackToLLC handles a dirty private-cache victim (PutM): the data
// travels to the line's home LLC, which becomes dirty and drops the
// owner. Posted: the returned time is when the LLC accepted it, but
// callers typically do not wait on it.
func (s *SoC) writebackToLLC(from *agent, fromID int, line mem.LineAddr, at sim.Cycles, meter *Meter) sim.Cycles {
	mt := s.homeTile(line)
	t := s.cohPathTo(fromID, mt.Part).wb.Send(mem.LineBytes, at)
	_, t = mt.Port.Acquire(t, s.P.LLCFillCycles)
	e := mt.LLC.Probe(line)
	if e == nil {
		// The LLC lost the entry (should not happen under inclusion, but
		// stay robust): allocate it dirty.
		var v cache.DirVictim
		e, v = mt.LLC.Insert(line, cache.DirDirty)
		t = s.evictLLCVictim(mt, v, t, meter)
		return t
	}
	e.State = cache.DirDirty
	if e.Owner == fromID {
		mt.LLC.SetOwner(e, cache.NoOwner)
	}
	return t
}

// groupRunnable reports whether a group of n lines satisfies the
// run-operation preconditions on the partition: the 64-bit outcome
// masks, and pairwise-distinct LLC sets (contiguous lines collide only
// when the group is longer than the set count). Violations fall back to
// the per-line reference flows.
func groupRunnable(llc *cache.Directory, n int64) bool {
	return n <= 64 && n <= llc.Sets()
}

// cachedGroupAccess performs reads or full-line writes for n contiguous
// lines through an agent's private cache (the CPU software path and the
// fully-coherent accelerator path). Writes are write-allocate without
// fetch: software initialization and accelerator stores write whole
// lines. Returns the completion time.
func (s *SoC) cachedGroupAccess(agentID int, start mem.LineAddr, n int64, write bool, at sim.Cycles, meter *Meter) sim.Cycles {
	mt := s.homeTile(start)
	if s.refCoherence || !groupRunnable(mt.LLC, n) {
		return s.cachedGroupAccessRef(agentID, start, n, write, at, meter)
	}
	ag := &s.agents[agentID]
	t := at
	// Private-cache lookup occupancy for the whole group.
	_, t = ag.port.Acquire(t, sim.Cycles(n)*s.P.L2HitCycles)

	// Classify the whole run in one call; the missed (or upgrade-needing)
	// subset proceeds to the LLC. The scratch buffer is safe to share:
	// exactly one simulation goroutine runs at a time and this function
	// never yields.
	misses := ag.cache.AccessUpgradeRun(start, n, write, s.missScratch[:0])
	defer func() { s.missScratch = misses[:0] }()
	if len(misses) == 0 {
		return t
	}
	cp := s.cohPathTo(agentID, mt.Part)
	// One request header per group.
	t = cp.req.Send(0, t)

	// Every directory transition of the run happens here; recalls,
	// invalidations and victims needing work come back for the timed
	// per-line walk below.
	run := &s.dirRun
	mt.LLC.AccessOrInsertRun(misses, cache.DirClean,
		cache.RunUpdate{
			Kind:           cache.RunCached,
			Write:          write,
			ExclusiveGrant: s.rules.ExclusiveGrant,
			Self:           agentID,
		}, run)

	var fillLines int64 // lines read from DRAM
	if !write {
		fillLines = int64(run.Misses)
	}
	t = s.walkGroupTiming(mt, misses, run, s.P.LLCLookupCycles, t, meter,
		func(e *cache.DirEntry, t sim.Cycles) sim.Cycles {
			if e.Owner != cache.NoOwner && e.Owner != agentID {
				t = s.recallFromOwner(mt, e, write, t, meter)
			}
			if write && e.HasSharers() {
				t = s.invalidateSharers(mt, e, t)
			}
			if write {
				mt.LLC.SetOwner(e, agentID)
				mt.LLC.ClearSharers(e)
			} else if s.rules.ExclusiveGrant && e.Owner == cache.NoOwner && !e.HasSharers() {
				mt.LLC.SetOwner(e, agentID) // exclusive grant
			} else if e.Owner != agentID {
				mt.LLC.AddSharer(e, agentID)
			}
			return t
		})
	if fillLines > 0 {
		// DRAM fills pay the burst latency once per group (MSHR overlap).
		t = mt.DRAM.Access(t, fillLines, false)
		meter.add(fillLines)
	}
	// Data response for the whole group.
	t = cp.rsp.Send(len(misses)*mem.LineBytes, t)
	// Fill the private cache; dirty victims write back (posted).
	if write {
		// Uniform Modified fill: victims defer past the batch (their
		// disposal never touches this cache).
		victims := ag.cache.InsertRun(misses, cache.Modified, s.l2VictScratch[:0])
		defer func() { s.l2VictScratch = victims[:0] }()
		for _, v := range victims {
			s.handleL2Victim(ag, agentID, v, t, meter)
		}
		return t
	}
	for i, line := range misses {
		// The fill state depends on directory state that this loop's own
		// victim disposal can move, so reads stay per line; the run's way
		// indices make the probe O(1).
		st := cache.Exclusive
		if e := mt.LLC.ProbeAt(run.Ways[i], line); e != nil && (e.HasSharers() || e.Owner != agentID) {
			st = cache.Shared
		}
		if v := ag.cache.Insert(line, st); v.Valid {
			s.handleL2Victim(ag, agentID, v, t, meter)
		}
	}
	return t
}

// walkGroupTiming replays the per-line timing of one directory run: it
// fuses the pipeline occupancy of consecutive plain lines into single
// port reservations and calls handle — at exactly the reference flow's
// cursor position — for each line whose entry needs recalls or
// invalidations, interleaving victim disposal in line order.
func (s *SoC) walkGroupTiming(mt *MemTile, lines []mem.LineAddr, run *cache.DirRun, lookup sim.Cycles, t sim.Cycles, meter *Meter, handle func(e *cache.DirEntry, t sim.Cycles) sim.Cycles) sim.Cycles {
	if len(run.Victims) == 0 && run.ComplexMask == 0 {
		// The whole group is plain — the uniform case batching exists
		// for: one reservation covers every line's pipeline occupancy.
		_, t = mt.Port.Acquire(t,
			sim.Cycles(len(lines))*lookup+sim.Cycles(run.Misses)*s.P.LLCMissPerLine)
		return t
	}
	var pending sim.Cycles
	vi := 0
	for i := range lines {
		bit := uint64(1) << uint(i)
		pending += lookup
		if run.HitMask&bit == 0 {
			pending += s.P.LLCMissPerLine
		}
		hasVictim := vi < len(run.Victims) && int(run.Victims[vi].Idx) == i
		if !hasVictim && run.ComplexMask&bit == 0 {
			continue
		}
		_, t = mt.Port.Acquire(t, pending)
		pending = 0
		if hasVictim {
			t = s.evictLLCVictim(mt, run.Victims[vi].V, t, meter)
			vi++
		}
		if run.ComplexMask&bit != 0 {
			t = handle(mt.LLC.EntryAt(run.Ways[i]), t)
		}
	}
	if pending > 0 {
		_, t = mt.Port.Acquire(t, pending)
	}
	return t
}

// dmaGroupLLC serves one DMA group through the LLC: the LLCCohDMA and
// CohDMA datapaths. recallOwners selects CohDMA semantics (full hardware
// coherence: private copies are recalled/invalidated); without it the
// bridge is coherent with the LLC only, as in LLCCohDMA, where software
// flushed the private caches beforehand.
func (s *SoC) dmaGroupLLC(mt *MemTile, a *AccTile, start mem.LineAddr, n int64, write, recallOwners bool, at sim.Cycles, meter *Meter) sim.Cycles {
	if s.refCoherence || !groupRunnable(mt.LLC, n) {
		return s.dmaGroupLLCRef(mt, a, start, n, write, recallOwners, at, meter)
	}
	dp := s.dmaPathTo(a.ID, mt.Part)
	var t sim.Cycles
	if write {
		// Data travels with the request.
		t = dp.up.Send(int(n)*mem.LineBytes, at)
	} else {
		t = dp.req.Send(0, at)
	}
	missState := cache.DirClean
	if write {
		missState = cache.DirDirty
	}
	lookup := s.P.LLCLookupCycles
	if recallOwners {
		lookup += s.P.CohDMACheckCycles
	}
	lines := s.groupScratch[:0]
	for i := int64(0); i < n; i++ {
		lines = append(lines, start+mem.LineAddr(i))
	}
	defer func() { s.groupScratch = lines[:0] }()

	run := &s.dirRun
	mt.LLC.AccessOrInsertRun(lines, missState,
		cache.RunUpdate{Kind: cache.RunDMA, Write: write, RecallOwners: recallOwners}, run)

	var fillLines int64
	if !write {
		fillLines = int64(run.Misses)
	}
	t = s.walkGroupTiming(mt, lines, run, lookup, t, meter,
		func(e *cache.DirEntry, t sim.Cycles) sim.Cycles {
			if recallOwners && e.Owner != cache.NoOwner {
				t = s.recallFromOwner(mt, e, write, t, meter)
			}
			if write {
				if recallOwners && e.HasSharers() {
					t = s.invalidateSharers(mt, e, t)
				}
				// The bridge claims the line: any remaining directory state
				// is stale by construction.
				mt.LLC.SetOwner(e, cache.NoOwner)
				mt.LLC.ClearSharers(e)
				e.State = cache.DirDirty
			}
			return t
		})
	if fillLines > 0 {
		t = mt.DRAM.Access(t, fillLines, false)
		meter.add(fillLines)
	}
	if !write {
		t = dp.down.Send(int(n)*mem.LineBytes, t)
	}
	return t
}

// dmaGroupNonCoh serves one DMA group straight from DRAM, bypassing the
// hierarchy entirely (the NonCohDMA datapath).
func (s *SoC) dmaGroupNonCoh(mt *MemTile, a *AccTile, start mem.LineAddr, n int64, write bool, at sim.Cycles, meter *Meter) sim.Cycles {
	return s.dmaRunNonCoh(s.dmaPathTo(a.ID, mt.Part), mt, start, n, write, at, meter)
}

// dmaRunNonCoh is dmaGroupNonCoh with the DMA routes pre-resolved:
// strided and irregular plans issue one single-line run per access, so
// doTransfers hoists the route lookup out of its range loop.
func (s *SoC) dmaRunNonCoh(dp *dmaPath, mt *MemTile, start mem.LineAddr, n int64, write bool, at sim.Cycles, meter *Meter) sim.Cycles {
	if write {
		t := dp.up.Send(int(n)*mem.LineBytes, at)
		t = mt.DRAM.Post(t, n, true)
		meter.add(n)
		return t
	}
	t := dp.req.Send(0, at)
	t = mt.DRAM.Access(t, n, false)
	meter.add(n)
	return dp.down.Send(int(n)*mem.LineBytes, t)
}
