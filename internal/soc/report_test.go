package soc

import (
	"strings"
	"testing"

	"cohmeleon/internal/sim"
)

func TestFloorplanCoversAllTiles(t *testing.T) {
	s := build(t, testConfig())
	fp := s.Floorplan()
	for _, want := range []string{"mem0", "mem1", "cpu0", "acc0", "acc1", "aux"} {
		if !strings.Contains(fp, want) {
			t.Errorf("floorplan missing %q:\n%s", want, fp)
		}
	}
	// One bracketed cell per mesh position.
	if got := strings.Count(fp, "["); got != 9 {
		t.Errorf("floorplan has %d cells, want 9", got)
	}
}

func TestFloorplanTruncatesLongNames(t *testing.T) {
	cfg := soc6LikeConfig(t)
	s := build(t, cfg)
	fp := s.Floorplan()
	if strings.Contains(fp, "night-vision.0") {
		t.Error("long instance names should be truncated to fit cells")
	}
	if !strings.Contains(fp, "night-vi") {
		t.Errorf("truncated name missing:\n%s", fp)
	}
}

func soc6LikeConfig(t *testing.T) *Config {
	t.Helper()
	return SoC6()
}

func TestUtilizationReportAfterRun(t *testing.T) {
	s := build(t, testConfig())
	runSim(t, s, func(p *sim.Proc) {
		buf := allocBuf(t, s, 128<<10)
		p.WaitUntil(warm(s, buf, p.Now()))
		s.RunAccelerator(p, s.Accs[0], buf, NonCohDMA, sim.NewRNG(1))
	})
	rep := s.UtilizationReport()
	for _, want := range []string{"memory tiles", "accelerators", "acc0", "NoC plane", "dma-data"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	// The idle accelerator must not appear.
	if strings.Contains(rep, "acc1:") {
		t.Error("idle accelerator listed in report")
	}
}

func TestUtilizationReportFreshSoC(t *testing.T) {
	s := build(t, testConfig())
	rep := s.UtilizationReport()
	if !strings.Contains(rep, "after 0 cycles") {
		t.Errorf("fresh report should show zero cycles:\n%s", rep)
	}
}
