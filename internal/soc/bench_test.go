package soc

import (
	"testing"

	"cohmeleon/internal/mem"
	"cohmeleon/internal/sim"
)

// Micro-benchmarks for the transfer hot path: one DMA group through each
// datapath, and a full accelerator invocation per mode. These isolate
// the per-line costs (directory scans, NoC link reservations, DRAM
// bursts) that dominate every experiment.

func benchSoC(b *testing.B) *SoC {
	b.Helper()
	s, err := testConfig().Build()
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// benchGroup measures one GroupLines-sized group transfer through the
// given datapath, re-issued b.N times inside a single simulation
// process. The virtual clock advances monotonically, so every iteration
// pays the same state-machine work as a steady-state transfer.
func benchGroup(b *testing.B, mode Mode, write bool) {
	s := benchSoC(b)
	buf, err := s.Heap.Alloc(256 << 10)
	if err != nil {
		b.Fatal(err)
	}
	a := s.Accs[0]
	group := int64(s.P.GroupLines)
	lines := buf.Lines()
	s.Eng.Go("bench", func(p *sim.Proc) {
		meter := &Meter{}
		t := p.Now()
		start := buf.Extents[0].Start
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := (int64(i) * group) % (lines - group)
			switch mode {
			case NonCohDMA:
				t = s.dmaGroupNonCoh(s.homeTile(start), a, start+mem.LineAddr(off), group, write, t, meter)
			case LLCCohDMA, CohDMA:
				t = s.dmaGroupLLC(s.homeTile(start), a, start+mem.LineAddr(off), group, write, mode == CohDMA, t, meter)
			case FullyCoh:
				t = s.cachedGroupAccess(a.Agent, start+mem.LineAddr(off), group, write, t, meter)
			}
		}
	})
	if err := s.Eng.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkDMAGroupNonCohRead(b *testing.B) { benchGroup(b, NonCohDMA, false) }
func BenchmarkDMAGroupLLCRead(b *testing.B)    { benchGroup(b, LLCCohDMA, false) }
func BenchmarkDMAGroupCohRead(b *testing.B)    { benchGroup(b, CohDMA, false) }
func BenchmarkCachedGroupRead(b *testing.B)    { benchGroup(b, FullyCoh, false) }
func BenchmarkDMAGroupLLCWrite(b *testing.B)   { benchGroup(b, LLCCohDMA, true) }
func BenchmarkCachedGroupWrite(b *testing.B)   { benchGroup(b, FullyCoh, true) }

// BenchmarkCoherenceGroupAccess measures the run-batched
// cachedGroupAccess flow in its uniform regimes — the fast paths the
// batching exists for — against the retained per-line reference. "warm"
// re-touches one resident group (the all-hit CPU path); "stream" walks
// fresh groups (all-miss into clean sets).
func BenchmarkCoherenceGroupAccess(b *testing.B) {
	for _, bc := range []struct {
		name string
		ref  bool
		warm bool
	}{
		{"warm", false, true},
		{"warm-ref", true, true},
		{"stream", false, false},
		{"stream-ref", true, false},
	} {
		b.Run(bc.name, func(b *testing.B) {
			s := benchSoC(b)
			s.refCoherence = bc.ref
			buf, err := s.Heap.Alloc(256 << 10)
			if err != nil {
				b.Fatal(err)
			}
			agent := s.Accs[0].Agent
			group := int64(s.P.GroupLines)
			lines := buf.Lines()
			s.Eng.Go("bench", func(p *sim.Proc) {
				meter := &Meter{}
				t := p.Now()
				start := buf.Extents[0].Start
				if bc.warm {
					t = s.cachedGroupAccess(agent, start, group, false, t, meter)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					off := int64(0)
					if !bc.warm {
						off = (int64(i) * group) % (lines - group)
					}
					t = s.cachedGroupAccess(agent, start+mem.LineAddr(off), group, false, t, meter)
				}
			})
			if err := s.Eng.Run(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkInvocation16kBCohDMA(b *testing.B) {
	s := benchSoC(b)
	buf, err := s.Heap.Alloc(16 << 10)
	if err != nil {
		b.Fatal(err)
	}
	a := s.Accs[0]
	s.Eng.Go("bench", func(p *sim.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.RunAccelerator(p, a, buf, CohDMA, sim.NewRNG(uint64(i)))
		}
	})
	if err := s.Eng.Run(); err != nil {
		b.Fatal(err)
	}
}
