package soc

import (
	"fmt"
	"testing"
)

// TestRandomConfigAlwaysValidAndBuildable: every seed must yield a
// config that passes Validate; a sample of them must actually build.
func TestRandomConfigAlwaysValidAndBuildable(t *testing.T) {
	sp := DefaultRandomSpec()
	for seed := uint64(0); seed < 200; seed++ {
		cfg, err := RandomConfig(fmt.Sprintf("rand-%d", seed), sp, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tiles := cfg.CPUs + cfg.MemTiles + len(cfg.Accs) + 1
		if tiles > cfg.MeshW*cfg.MeshH {
			t.Fatalf("seed %d: %d tiles overflow %dx%d mesh", seed, tiles, cfg.MeshW, cfg.MeshH)
		}
		if seed%40 == 0 {
			if _, err := cfg.Build(); err != nil {
				t.Fatalf("seed %d: build: %v", seed, err)
			}
		}
	}
}

// TestRandomConfigDeterministic: same (spec, seed) → same config.
func TestRandomConfigDeterministic(t *testing.T) {
	sp := DefaultRandomSpec()
	a, err := RandomConfig("r", sp, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomConfig("r", sp, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeshW != b.MeshW || a.MeshH != b.MeshH || a.CPUs != b.CPUs ||
		a.MemTiles != b.MemTiles || a.LLCSliceKB != b.LLCSliceKB || a.L2KB != b.L2KB ||
		len(a.Accs) != len(b.Accs) {
		t.Fatalf("non-deterministic draw: %+v vs %+v", a, b)
	}
	for i := range a.Accs {
		if a.Accs[i].InstName != b.Accs[i].InstName || a.Accs[i].PrivateCache != b.Accs[i].PrivateCache {
			t.Fatalf("acc %d differs: %+v vs %+v", i, a.Accs[i], b.Accs[i])
		}
	}
}

// TestRandomConfigCoversDegenerateGeometry: the default spec must be
// able to produce the big-L2/small-slice corner that motivates the
// degenerate-class handling in the workload generator.
func TestRandomConfigCoversDegenerateGeometry(t *testing.T) {
	sp := DefaultRandomSpec()
	for seed := uint64(0); seed < 500; seed++ {
		cfg, err := RandomConfig("r", sp, seed)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.L2Bytes() >= cfg.LLCSliceBytes() {
			return // found one: the Medium band inverts on this config
		}
	}
	t.Fatal("500 seeds never produced L2 ≥ LLC slice; spec no longer covers the degenerate corner")
}

func TestRandomSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*RandomSpec)
	}{
		{"inverted-cpu-range", func(sp *RandomSpec) { sp.MinCPUs = 4; sp.MaxCPUs = 1 }},
		{"zero-mem-tiles", func(sp *RandomSpec) { sp.MinMemTiles = 0 }},
		{"no-llc-choices", func(sp *RandomSpec) { sp.LLCSliceKB = nil }},
		{"bad-cache-size", func(sp *RandomSpec) { sp.L2KB = []int{0} }},
		{"bad-fraction", func(sp *RandomSpec) { sp.CatalogFraction = 1.5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := DefaultRandomSpec()
			tc.mut(&sp)
			if err := sp.Validate(); err == nil {
				t.Fatal("invalid spec accepted")
			}
			if _, err := RandomConfig("r", sp, 1); err == nil {
				t.Fatal("RandomConfig accepted an invalid spec")
			}
		})
	}
}

func TestMeshFor(t *testing.T) {
	for n := 1; n <= 40; n++ {
		w, h := meshFor(n)
		if w*h < n {
			t.Fatalf("meshFor(%d) = %dx%d too small", n, w, h)
		}
		if w < 2 || h < 2 {
			t.Fatalf("meshFor(%d) = %dx%d below minimum mesh", n, w, h)
		}
		if w-h > 1 {
			t.Fatalf("meshFor(%d) = %dx%d not near-square", n, w, h)
		}
	}
}
