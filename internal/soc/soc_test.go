package soc

import (
	"testing"

	"cohmeleon/internal/acc"
	"cohmeleon/internal/cache"
	"cohmeleon/internal/mem"
	"cohmeleon/internal/sim"
)

// testConfig builds a compact SoC: 1 CPU, 2 memory tiles with small
// 64 kB LLC slices (to exercise evictions), and two streaming
// accelerators with private caches.
func testConfig() *Config {
	spec := &acc.Spec{
		Name: "stream", Pattern: acc.Streaming, BurstLines: 16,
		ComputePerByte: 0.2, ReadFraction: 0.8, Reuse: acc.ConstReuse(1),
		InPlace: false, PLMBytes: 16 << 10,
	}
	spec2 := *spec
	spec2.Name = "stream2"
	return &Config{
		Name: "test", MeshW: 3, MeshH: 3, CPUs: 1, MemTiles: 2,
		LLCSliceKB: 64, L2KB: 32,
		Accs: []AccInstance{
			{InstName: "acc0", Spec: spec, PrivateCache: true},
			{InstName: "acc1", Spec: &spec2, PrivateCache: true},
		},
		Params: DefaultParams(),
	}
}

func build(t *testing.T, cfg *Config) *SoC {
	t.Helper()
	s, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runSim executes fn as a simulation process and drains the engine.
func runSim(t *testing.T, s *SoC, fn func(p *sim.Proc)) {
	t.Helper()
	s.Eng.Go("test", fn)
	if err := s.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// alloc allocates a dataset or fails the test.
func allocBuf(t *testing.T, s *SoC, bytes int64) *mem.Buffer {
	t.Helper()
	buf, err := s.Heap.Alloc(bytes)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// warm initializes the buffer through CPU 0 (write-allocate).
func warm(s *SoC, buf *mem.Buffer, at sim.Cycles) sim.Cycles {
	return s.CPUTouchRange(s.CPUs[0], buf, 0, buf.Lines(), true, at, &Meter{})
}

// checkInclusion asserts that every valid private-cache line has a
// valid LLC entry (the inclusion invariant the recalls exist to keep).
func checkInclusion(t *testing.T, s *SoC) {
	t.Helper()
	for id := 0; id < s.Agents(); id++ {
		s.AgentCache(id).ForEachValid(func(line mem.LineAddr, st cache.State) {
			if s.homeTile(line).LLC.Probe(line) == nil {
				t.Errorf("inclusion violated: agent %d holds line %d (%v) absent from LLC", id, line, st)
			}
		})
	}
}

// checkSingleOwner asserts at most one private cache holds any line in
// M or E state.
func checkSingleOwner(t *testing.T, s *SoC) {
	t.Helper()
	owners := make(map[mem.LineAddr]int)
	for id := 0; id < s.Agents(); id++ {
		id := id
		s.AgentCache(id).ForEachValid(func(line mem.LineAddr, st cache.State) {
			if st == cache.Modified || st == cache.Exclusive {
				if prev, ok := owners[line]; ok {
					t.Errorf("line %d owned by both agent %d and %d", line, prev, id)
				}
				owners[line] = id
			}
		})
	}
}

func TestModeProperties(t *testing.T) {
	if NonCohDMA.String() != "non-coh-dma" || LLCCohDMA.String() != "llc-coh-dma" ||
		CohDMA.String() != "coh-dma" || FullyCoh.String() != "full-coh" {
		t.Fatal("mode names wrong")
	}
	if !NonCohDMA.NeedsPrivateFlush() || !LLCCohDMA.NeedsPrivateFlush() ||
		CohDMA.NeedsPrivateFlush() || FullyCoh.NeedsPrivateFlush() {
		t.Fatal("NeedsPrivateFlush wrong")
	}
	if !NonCohDMA.NeedsLLCFlush() || LLCCohDMA.NeedsLLCFlush() {
		t.Fatal("NeedsLLCFlush wrong")
	}
	if NonCohDMA.UsesLLC() || !LLCCohDMA.UsesLLC() || !CohDMA.UsesLLC() || !FullyCoh.UsesLLC() {
		t.Fatal("UsesLLC wrong")
	}
	for _, m := range AllModes {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("ParseMode should reject unknown names")
	}
}

func TestTable4ConfigsBuild(t *testing.T) {
	for _, cfg := range Table4(42) {
		s, err := cfg.Build()
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if len(s.Mem) != cfg.MemTiles || len(s.CPUs) != cfg.CPUs || len(s.Accs) != len(cfg.Accs) {
			t.Fatalf("%s: tile counts wrong", cfg.Name)
		}
	}
	wantAccs := map[string]int{
		"SoC0": 12, "SoC1": 7, "SoC2": 9, "SoC3": 16, "SoC4": 11, "SoC5": 8, "SoC6": 9,
	}
	for _, cfg := range Table4(1) {
		if want := wantAccs[cfg.Name]; len(cfg.Accs) != want {
			t.Errorf("%s has %d accelerators, want %d (Table 4)", cfg.Name, len(cfg.Accs), want)
		}
	}
}

func TestSoC3HasFiveCachelessAccelerators(t *testing.T) {
	cfg := SoC3(1)
	n := 0
	for _, a := range cfg.Accs {
		if !a.PrivateCache {
			n++
		}
	}
	if n != 5 {
		t.Fatalf("SoC3 has %d cacheless accelerators, want 5", n)
	}
	s := build(t, cfg)
	for _, a := range s.Accs {
		if !a.HasPrivateCache() {
			modes := a.AvailableModes()
			for _, m := range modes {
				if m == FullyCoh {
					t.Fatal("cacheless tile offers FullyCoh")
				}
			}
			if len(modes) != 3 {
				t.Fatalf("cacheless tile offers %d modes, want 3", len(modes))
			}
		}
	}
}

func TestMotivationConfigs(t *testing.T) {
	iso := MotivationIsolation()
	if len(iso.Accs) != 12 {
		t.Fatalf("isolation SoC has %d accs, want 12", len(iso.Accs))
	}
	if iso.MemTiles != 2 || iso.LLCSliceKB != 512 {
		t.Fatal("isolation SoC should have a 1MB LLC in two partitions")
	}
	par := MotivationParallel()
	if len(par.Accs) != 12 {
		t.Fatalf("parallel SoC has %d accs, want 12", len(par.Accs))
	}
	build(t, iso)
	build(t, par)
}

func TestPlacementMemTilesOnCorners(t *testing.T) {
	s := build(t, testConfig())
	corners := map[int]bool{}
	for _, mt := range s.Mem {
		isCorner := (mt.Coord.X == 0 || mt.Coord.X == 2) && (mt.Coord.Y == 0 || mt.Coord.Y == 2)
		if !isCorner {
			t.Fatalf("memory tile at %v, want corner", mt.Coord)
		}
		corners[mt.Coord.X*10+mt.Coord.Y] = true
	}
	if len(corners) != 2 {
		t.Fatal("memory tiles overlap")
	}
}

func TestPlacementDeterministic(t *testing.T) {
	a := build(t, testConfig())
	b := build(t, testConfig())
	for i := range a.Accs {
		if a.Accs[i].Coord != b.Accs[i].Coord {
			t.Fatal("placement not deterministic")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := testConfig()
	bad.MeshW = 2
	bad.MeshH = 2 // 5 tiles in 4 cells
	if _, err := bad.Build(); err == nil {
		t.Fatal("overfull mesh should fail")
	}
	bad2 := testConfig()
	bad2.Accs[1].InstName = bad2.Accs[0].InstName
	if _, err := bad2.Build(); err == nil {
		t.Fatal("duplicate instance names should fail")
	}
	bad3 := testConfig()
	bad3.Accs = nil
	if _, err := bad3.Build(); err == nil {
		t.Fatal("no accelerators should fail")
	}
}

func TestAccByName(t *testing.T) {
	s := build(t, testConfig())
	a, err := s.AccByName("acc1")
	if err != nil || a.InstName != "acc1" {
		t.Fatalf("AccByName: %v", err)
	}
	if _, err := s.AccByName("nope"); err == nil {
		t.Fatal("unknown instance should error")
	}
	if got := s.AccsBySpec("stream"); len(got) != 1 {
		t.Fatalf("AccsBySpec = %d entries, want 1", len(got))
	}
}

// runOneInvocation warms a dataset, optionally flushes per the mode, and
// runs acc0 once. The returned stats cover the whole invocation window
// (flushes included), as the paper measures it.
func runOneInvocation(t *testing.T, bytes int64, mode Mode) InvocationStats {
	s := build(t, testConfig())
	var stats InvocationStats
	runSim(t, s, func(p *sim.Proc) {
		buf := allocBuf(t, s, bytes)
		tWarm := warm(s, buf, p.Now())
		p.WaitUntil(tWarm)
		invStart := p.Now()
		m := &Meter{}
		if mode.NeedsPrivateFlush() {
			p.WaitUntil(s.FlushPrivateRange(buf, p.Now(), m))
		}
		if mode.NeedsLLCFlush() {
			p.WaitUntil(s.FlushLLCRange(buf, p.Now(), m))
		}
		flushOffChip := m.OffChip
		stats = s.RunAccelerator(p, s.Accs[0], buf, mode, sim.NewRNG(1))
		stats.OffChip += flushOffChip // flushes belong to the invocation
		stats.Start = invStart
	})
	checkInclusion(t, s)
	checkSingleOwner(t, s)
	return stats
}

func TestWarmSmallWorkloadCacheModesZeroOffChip(t *testing.T) {
	// 16 kB warm dataset: every mode that uses the hierarchy should find
	// all data on chip (Figure 2's missing red bars).
	for _, mode := range []Mode{LLCCohDMA, CohDMA, FullyCoh} {
		stats := runOneInvocation(t, 16<<10, mode)
		if stats.OffChip != 0 {
			t.Errorf("%v: %d off-chip accesses on warm 16kB data, want 0", mode, stats.OffChip)
		}
		if stats.End <= stats.Start {
			t.Errorf("%v: empty invocation", mode)
		}
	}
}

func TestWarmSmallWorkloadNonCohPaysOffChip(t *testing.T) {
	stats := runOneInvocation(t, 16<<10, NonCohDMA)
	lines := int64(16 << 10 / mem.LineBytes)
	// Flush writes the dirty dataset to DRAM, then DMA reads it back:
	// at least reads + some writebacks.
	if stats.OffChip < lines {
		t.Errorf("non-coh off-chip = %d, want ≥ %d (reads)", stats.OffChip, lines)
	}
	if stats.OffChip < lines+lines/2 {
		t.Errorf("non-coh off-chip = %d, expected flush writebacks too", stats.OffChip)
	}
}

func TestWarmSmallNonCohSlowerThanCohDMA(t *testing.T) {
	non := runOneInvocation(t, 16<<10, NonCohDMA)
	coh := runOneInvocation(t, 16<<10, CohDMA)
	if non.Active() <= coh.Active() {
		t.Errorf("non-coh (%d cycles) should be slower than coh-dma (%d) on small warm data",
			non.Active(), coh.Active())
	}
}

func TestLargeWorkloadNonCohFasterThanLLCCoh(t *testing.T) {
	// 512 kB dataset vs 128 kB total LLC: cache modes thrash.
	non := runOneInvocation(t, 512<<10, NonCohDMA)
	llc := runOneInvocation(t, 512<<10, LLCCohDMA)
	if non.Active() >= llc.Active() {
		t.Errorf("non-coh (%d) should beat llc-coh (%d) when data exceeds the LLC",
			non.Active(), llc.Active())
	}
	if llc.OffChip == 0 {
		t.Error("llc-coh on oversized data should miss off-chip")
	}
}

func TestCommCyclesBounded(t *testing.T) {
	for _, mode := range AllModes {
		st := runOneInvocation(t, 64<<10, mode)
		if st.CommCycles < 0 || st.CommCycles > st.Active() {
			t.Errorf("%v: comm %d outside [0, %d]", mode, st.CommCycles, st.Active())
		}
		if st.Chunks < 1 {
			t.Errorf("%v: no chunks", mode)
		}
	}
}

func TestCohDMARecallsFromCPUCache(t *testing.T) {
	s := build(t, testConfig())
	runSim(t, s, func(p *sim.Proc) {
		buf := allocBuf(t, s, 8<<10) // fits in the 32 kB L2: stays Modified
		p.WaitUntil(warm(s, buf, p.Now()))
		cpuL2 := s.AgentCache(s.CPUs[0].Agent)
		if st, hit := cpuL2.Lookup(buf.LineAt(0)); !hit || st != cache.Modified {
			t.Fatalf("warm line should be M in CPU L2, got %v/%v", st, hit)
		}
		stats := s.RunAccelerator(p, s.Accs[0], buf, CohDMA, sim.NewRNG(1))
		if stats.OffChip != 0 {
			t.Errorf("coh-dma recall should stay on chip, got %d", stats.OffChip)
		}
		// The CPU copy was downgraded (read recall), not invalidated.
		if st, hit := cpuL2.Lookup(buf.LineAt(0)); hit && st == cache.Modified {
			t.Error("coh-dma read should downgrade the CPU's M copy")
		}
	})
	checkInclusion(t, s)
}

func TestFlushPrivateMovesDirtyDataToLLC(t *testing.T) {
	s := build(t, testConfig())
	runSim(t, s, func(p *sim.Proc) {
		buf := allocBuf(t, s, 8<<10)
		p.WaitUntil(warm(s, buf, p.Now()))
		m := &Meter{}
		done := s.FlushPrivateRange(buf, p.Now(), m)
		if done <= p.Now() {
			t.Error("flush should take time")
		}
		if m.OffChip != 0 {
			t.Errorf("private flush went off-chip: %d", m.OffChip)
		}
		cpuL2 := s.AgentCache(s.CPUs[0].Agent)
		for i := int64(0); i < buf.Lines(); i++ {
			if _, hit := cpuL2.Lookup(buf.LineAt(i)); hit {
				t.Fatal("line survived private flush")
			}
		}
		// All lines must now be dirty in the LLC.
		dirty := 0
		for i := int64(0); i < buf.Lines(); i++ {
			e := s.homeTile(buf.LineAt(i)).LLC.Probe(buf.LineAt(i))
			if e != nil && e.State == cache.DirDirty {
				dirty++
			}
		}
		if int64(dirty) != buf.Lines() {
			t.Errorf("%d lines dirty in LLC, want %d", dirty, buf.Lines())
		}
	})
}

func TestFlushLLCWritesDirtyToDRAM(t *testing.T) {
	s := build(t, testConfig())
	runSim(t, s, func(p *sim.Proc) {
		buf := allocBuf(t, s, 8<<10)
		p.WaitUntil(warm(s, buf, p.Now()))
		m := &Meter{}
		p.WaitUntil(s.FlushPrivateRange(buf, p.Now(), m))
		p.WaitUntil(s.FlushLLCRange(buf, p.Now(), m))
		if m.OffChip != buf.Lines() {
			t.Errorf("LLC flush wrote %d lines off-chip, want %d", m.OffChip, buf.Lines())
		}
		for i := int64(0); i < buf.Lines(); i++ {
			if s.homeTile(buf.LineAt(i)).LLC.Probe(buf.LineAt(i)) != nil {
				t.Fatal("line survived LLC flush")
			}
		}
		if s.DDRSum() != buf.Lines() {
			t.Errorf("DDR monitors saw %d accesses, want %d", s.DDRSum(), buf.Lines())
		}
	})
}

func TestFlushLLCRecallsOwnedLines(t *testing.T) {
	// LLC flush without a preceding private flush must recall the CPU's
	// dirty copies so DRAM gets the newest data.
	s := build(t, testConfig())
	runSim(t, s, func(p *sim.Proc) {
		buf := allocBuf(t, s, 8<<10)
		p.WaitUntil(warm(s, buf, p.Now()))
		m := &Meter{}
		p.WaitUntil(s.FlushLLCRange(buf, p.Now(), m))
		if m.OffChip != buf.Lines() {
			t.Errorf("recalled flush wrote %d lines, want %d", m.OffChip, buf.Lines())
		}
		cpuL2 := s.AgentCache(s.CPUs[0].Agent)
		for i := int64(0); i < buf.Lines(); i++ {
			if _, hit := cpuL2.Lookup(buf.LineAt(i)); hit {
				t.Fatal("CPU copy survived LLC flush recall")
			}
		}
	})
}

func TestConcurrentAcceleratorsContend(t *testing.T) {
	elapsed := func(parallel bool) sim.Cycles {
		s := build(t, testConfig())
		var end sim.Cycles
		runSim(t, s, func(p *sim.Proc) {
			buf0 := allocBuf(t, s, 256<<10)
			buf1 := allocBuf(t, s, 256<<10)
			p.WaitUntil(warm(s, buf0, p.Now()))
			p.WaitUntil(warm(s, buf1, p.Now()))
			start := p.Now()
			wg := sim.NewWaitGroup(s.Eng)
			wg.Add(1)
			s.Eng.Go("acc0", func(q *sim.Proc) {
				q.WaitUntil(start)
				s.RunAccelerator(q, s.Accs[0], buf0, LLCCohDMA, sim.NewRNG(1))
				wg.Done()
			})
			if parallel {
				wg.Add(1)
				s.Eng.Go("acc1", func(q *sim.Proc) {
					q.WaitUntil(start)
					s.RunAccelerator(q, s.Accs[1], buf1, LLCCohDMA, sim.NewRNG(2))
					wg.Done()
				})
			}
			wg.Wait(p)
			end = p.Now() - start
		})
		return end
	}
	alone := elapsed(false)
	together := elapsed(true)
	if together <= alone {
		t.Errorf("parallel run (%d) should be slower than solo (%d)", together, alone)
	}
}

func TestFullyCohRequiresPrivateCache(t *testing.T) {
	cfg := testConfig()
	cfg.Accs[0].PrivateCache = false
	s := build(t, cfg)
	runSim(t, s, func(p *sim.Proc) {
		buf := allocBuf(t, s, 4<<10)
		defer func() {
			if recover() == nil {
				t.Error("FullyCoh without private cache should panic")
			}
		}()
		s.RunAccelerator(p, s.Accs[0], buf, FullyCoh, sim.NewRNG(1))
	})
}

func TestDDRTotalsPerController(t *testing.T) {
	s := build(t, testConfig())
	runSim(t, s, func(p *sim.Proc) {
		buf := allocBuf(t, s, 2<<20) // spans both partitions
		before := s.DDRTotals()
		for _, v := range before {
			if v != 0 {
				t.Fatal("fresh SoC should have zero counters")
			}
		}
		s.RunAccelerator(p, s.Accs[0], buf, NonCohDMA, sim.NewRNG(1))
		after := s.DDRTotals()
		for i, v := range after {
			if v == 0 {
				t.Errorf("controller %d saw no traffic for a 2MB spread dataset", i)
			}
		}
	})
}

func TestInvocationMonitorsAccumulate(t *testing.T) {
	s := build(t, testConfig())
	runSim(t, s, func(p *sim.Proc) {
		buf := allocBuf(t, s, 16<<10)
		a := s.Accs[0]
		s.RunAccelerator(p, a, buf, CohDMA, sim.NewRNG(1))
		s.RunAccelerator(p, a, buf, CohDMA, sim.NewRNG(2))
		if a.TotalInvocations != 2 {
			t.Errorf("TotalInvocations = %d", a.TotalInvocations)
		}
		if a.TotalActive <= 0 || a.TotalComm < 0 {
			t.Errorf("monitor counters: active=%d comm=%d", a.TotalActive, a.TotalComm)
		}
	})
}

func TestForEachRunCoversExactly(t *testing.T) {
	s := build(t, testConfig())
	buf := allocBuf(t, s, 3<<20) // multiple extents
	for _, lr := range []acc.LineRange{
		{Start: 0, Lines: 10},
		{Start: mem.PageLines - 5, Lines: 10}, // crosses an extent boundary
		{Start: buf.Lines() - 3, Lines: 3},
	} {
		var total int64
		forEachRun(buf, lr, func(start mem.LineAddr, n int64) {
			if n <= 0 {
				t.Fatal("empty run")
			}
			total += n
		})
		if total != lr.Lines {
			t.Fatalf("range %+v produced %d lines", lr, total)
		}
	}
}

func TestFullyCohReusesPrivateCache(t *testing.T) {
	// Two invocations back to back: the second should hit the
	// accelerator's private cache and be faster.
	s := build(t, testConfig())
	runSim(t, s, func(p *sim.Proc) {
		buf := allocBuf(t, s, 8<<10)
		p.WaitUntil(warm(s, buf, p.Now()))
		first := s.RunAccelerator(p, s.Accs[0], buf, FullyCoh, sim.NewRNG(1))
		second := s.RunAccelerator(p, s.Accs[0], buf, FullyCoh, sim.NewRNG(2))
		if second.Active() >= first.Active() {
			t.Errorf("second fully-coh run (%d) should beat the first (%d): private cache is warm",
				second.Active(), first.Active())
		}
	})
	checkSingleOwner(t, s)
}
