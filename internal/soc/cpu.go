package soc

import (
	"cohmeleon/internal/acc"
	"cohmeleon/internal/mem"
	"cohmeleon/internal/sim"
)

// CPUTouchRange models software on the given CPU reading (write=false)
// or initializing (write=true) a logical line range of the buffer
// through the CPU's private cache. This is how applications warm their
// data before invoking accelerators and validate results afterwards;
// the coherence mode used by the previous invocation determines where
// the data is found. The caller is responsible for holding a CPU-pool
// permit; the returned time includes both software and memory time.
func (s *SoC) CPUTouchRange(cpu *CPUTile, buf *mem.Buffer, startLine, lines int64, write bool, at sim.Cycles, meter *Meter) sim.Cycles {
	if lines <= 0 {
		return at
	}
	group := int64(s.P.GroupLines)
	t := at
	forEachRun(buf, acc.LineRange{Start: startLine, Lines: lines}, func(start mem.LineAddr, n int64) {
		for off := int64(0); off < n; off += group {
			g := group
			if off+g > n {
				g = n - off
			}
			t += sim.Cycles(g) * s.P.CPUTouchPerLine // software datapath time
			t = s.cachedGroupAccess(cpu.Agent, start+mem.LineAddr(off), g, write, t, meter)
		}
	})
	return t
}

// DDRTotals snapshots the off-chip monitor of every memory controller;
// the runtime diffs snapshots around an invocation, exactly as the
// paper's software reads the hardware counters.
func (s *SoC) DDRTotals() []int64 {
	return s.DDRTotalsInto(make([]int64, len(s.Mem)))
}

// DDRTotalsInto fills dst (length = number of memory tiles) with the
// per-controller off-chip totals and returns it, for callers that reuse
// snapshot storage across an invocation.
func (s *SoC) DDRTotalsInto(dst []int64) []int64 {
	for i, mt := range s.Mem {
		dst[i] = mt.DRAM.Total()
	}
	return dst
}

// DDRSum returns the total off-chip accesses across controllers.
func (s *SoC) DDRSum() int64 {
	var sum int64
	for _, mt := range s.Mem {
		sum += mt.DRAM.Total()
	}
	return sum
}
