package soc

import "cohmeleon/internal/sim"

// Params collects the timing constants of the simulated hardware. The
// NoC and DRAM figures come straight from the paper (32-bit planes, one
// cycle per hop, 32 bits per cycle per memory channel); cache and
// software costs are engineering estimates chosen once and held fixed
// across every experiment, so all reported results are relative shapes,
// never tuned per figure.
type Params struct {
	// L2HitCycles is the port occupancy of a private-cache access.
	L2HitCycles sim.Cycles
	// LLCLookupCycles is the LLC pipeline occupancy per line looked up.
	LLCLookupCycles sim.Cycles
	// LLCFillCycles is the extra LLC occupancy to fill a line on miss.
	LLCFillCycles sim.Cycles
	// LLCMissPerLine is the line-granular miss-handling cost at the LLC
	// (MSHR allocation, directory update, replacement): burst DMA that
	// bypasses the hierarchy does not pay it, which is why non-coherent
	// DMA sustains higher throughput on workloads that thrash the caches.
	LLCMissPerLine sim.Cycles
	// DRAMLatencyCycles is the fixed DRAM access latency, paid once per
	// burst (row activation + controller pipeline).
	DRAMLatencyCycles sim.Cycles
	// DRAMPerLineCycles is the channel occupancy per line: LineBytes over
	// the paper's 4 bytes/cycle channel.
	DRAMPerLineCycles sim.Cycles
	// GroupLines is the coherence-protocol transfer granularity for DMA
	// through the LLC and for pipelined fully-coherent misses.
	GroupLines int
	// RecallHeaderCycles is the directory-side cost to issue one recall
	// or invalidation forward.
	RecallHeaderCycles sim.Cycles
	// CohDMACheckCycles is the extra per-line directory interrogation a
	// coherent-DMA request pays at the LLC (it must resolve private-cache
	// ownership on every line, unlike the LLC-coherent bridge that runs
	// after a software flush). Under heavy sharing of an LLC partition
	// this serialization is what makes coherent DMA degrade worst, as in
	// the paper's Figure 3.
	CohDMACheckCycles sim.Cycles
	// DriverCycles is CPU time per invocation for the device driver
	// (ioctl, descriptor setup, interrupt handling is IRQCycles).
	DriverCycles sim.Cycles
	// IRQCycles is CPU time to take the completion interrupt.
	IRQCycles sim.Cycles
	// TLBPerPageCycles is the cost to load one big-page TLB entry into
	// the accelerator tile at invocation start.
	TLBPerPageCycles sim.Cycles
	// FlushWalkPerLine is the controller cost per line walked during a
	// range flush (bounded by the cache's own capacity).
	FlushWalkPerLine sim.Cycles
	// CPUTouchPerLine is CPU datapath time per line when software
	// initializes or validates data (on top of memory-system time).
	CPUTouchPerLine sim.Cycles
	// DRAMPartitionMB is the DRAM capacity behind each memory tile.
	DRAMPartitionMB int64
}

// DefaultParams returns the parameter set used across all experiments.
func DefaultParams() Params {
	return Params{
		L2HitCycles:        2,
		LLCLookupCycles:    4,
		LLCFillCycles:      2,
		LLCMissPerLine:     12,
		DRAMLatencyCycles:  120,
		DRAMPerLineCycles:  16, // 64-byte line / 4 bytes per cycle
		GroupLines:         16,
		RecallHeaderCycles: 2,
		CohDMACheckCycles:  3,
		DriverCycles:       2500,
		IRQCycles:          800,
		TLBPerPageCycles:   60,
		FlushWalkPerLine:   1,
		CPUTouchPerLine:    2,
		DRAMPartitionMB:    256,
	}
}
