package soc

import (
	"fmt"
	"strings"

	"cohmeleon/internal/noc"
)

// Floorplan renders the tile placement as ASCII art, one cell per mesh
// position: [mem] memory tiles, [cpuN], [aux], and accelerator instance
// names (truncated).
func (s *SoC) Floorplan() string {
	w, h := s.Cfg.MeshW, s.Cfg.MeshH
	cells := make(map[noc.Coord]string)
	for _, mt := range s.Mem {
		cells[mt.Coord] = fmt.Sprintf("mem%d", mt.Part)
	}
	for _, c := range s.CPUs {
		cells[c.Coord] = fmt.Sprintf("cpu%d", c.ID)
	}
	for _, a := range s.Accs {
		name := a.InstName
		if len(name) > 8 {
			name = name[:8]
		}
		cells[a.Coord] = name
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %dx%d mesh, %d CPUs, %d memory tiles, %d accelerators\n",
		s.Cfg.Name, w, h, len(s.CPUs), len(s.Mem), len(s.Accs))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			name, ok := cells[noc.Coord{X: x, Y: y}]
			if !ok {
				name = "aux"
			}
			fmt.Fprintf(&b, "[%-8s]", name)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// UtilizationReport summarizes the hardware monitors after a run:
// per-controller off-chip accesses and channel occupancy, LLC hit
// rates, private-cache statistics, and accelerator activity. This is
// the information the paper's monitoring system exposes to software.
func (s *SoC) UtilizationReport() string {
	var b strings.Builder
	now := s.Eng.Now()
	fmt.Fprintf(&b, "%s after %d cycles\n", s.Cfg.Name, now)

	b.WriteString("\nmemory tiles:\n")
	for _, mt := range s.Mem {
		util := 0.0
		if now > 0 {
			util = 100 * float64(mt.DRAM.BusyCycles()) / float64(now)
		}
		st := mt.LLC.Stats()
		hitRate := 0.0
		if st.Hits+st.Misses > 0 {
			hitRate = 100 * float64(st.Hits) / float64(st.Hits+st.Misses)
		}
		fmt.Fprintf(&b, "  mem%d: ddr=%d lines (r=%d w=%d, %.1f%% channel), llc hit=%.1f%% evict=%d recall=%d\n",
			mt.Part, mt.DRAM.Total(), mt.DRAM.Reads(), mt.DRAM.Writes(), util,
			hitRate, st.Evictions, st.Recalls)
	}

	b.WriteString("\naccelerators:\n")
	for _, a := range s.Accs {
		if a.TotalInvocations == 0 {
			continue
		}
		commPct := 0.0
		if a.TotalActive > 0 {
			commPct = 100 * float64(a.TotalComm) / float64(a.TotalActive)
		}
		fmt.Fprintf(&b, "  %-12s: %d invocations, %d active cycles, %.1f%% communicating\n",
			a.InstName, a.TotalInvocations, a.TotalActive, commPct)
	}

	b.WriteString("\nNoC plane busy-cycles:\n")
	for p := noc.Plane(0); p < noc.NumPlanes; p++ {
		fmt.Fprintf(&b, "  %-9s %d\n", p.String(), s.Mesh.LinkBusy(p))
	}
	return b.String()
}
