package soc

import (
	"fmt"

	"cohmeleon/internal/acc"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc/protocol"
)

// This file is the randomized SoC-configuration generator behind the
// scenario-sweep subsystem: where config.go provides the paper's eight
// hand-built SoCs, RandomConfig samples the surrounding design space —
// mesh geometry, tile mix, cache and memory sizing — so policies can be
// trained and evaluated across topologies the authors never built.
// Every draw is validated against the same build invariants as the
// presets; the same (spec, seed) pair always yields the same config.

// RandomSpec bounds the randomized SoC-configuration generator. The
// zero value is not useful; start from DefaultRandomSpec.
type RandomSpec struct {
	// MinCPUs..MaxCPUs bounds the CPU-tile count (inclusive).
	MinCPUs, MaxCPUs int
	// MinMemTiles..MaxMemTiles bounds the DDR-controller/LLC-partition
	// count (inclusive).
	MinMemTiles, MaxMemTiles int
	// MinAccs..MaxAccs bounds the accelerator-tile count (inclusive).
	MinAccs, MaxAccs int
	// LLCSliceKB are the candidate LLC-partition sizes.
	LLCSliceKB []int
	// L2KB are the candidate private-cache sizes. Deliberately allowed
	// to exceed the smallest LLC slice: big-L2/small-slice geometries
	// are exactly the degenerate corner a sweep must cover.
	L2KB []int
	// CatalogFraction is the probability an accelerator tile instantiates
	// a cataloged kernel; the rest are randomized traffic generators.
	CatalogFraction float64
	// NoCacheFraction is the probability an accelerator tile lacks a
	// private cache (disabling its fully-coherent mode, as on SoC3).
	NoCacheFraction float64
	// Protocols are the candidate coherence-protocol names; nil (or
	// empty) keeps the default protocol, preserving existing draws.
	Protocols []string
}

// DefaultRandomSpec spans the evaluation space around the paper's
// Table-4 presets: 1–4 CPUs, 1–4 memory tiles, 4–16 accelerators, LLC
// slices from 128 kB to 1 MB and L2s from 16 kB to 256 kB.
func DefaultRandomSpec() RandomSpec {
	return RandomSpec{
		MinCPUs: 1, MaxCPUs: 4,
		MinMemTiles: 1, MaxMemTiles: 4,
		MinAccs: 4, MaxAccs: 16,
		LLCSliceKB:      []int{128, 256, 512, 1024},
		L2KB:            []int{16, 32, 64, 128, 256},
		CatalogFraction: 0.5,
		NoCacheFraction: 0.2,
	}
}

// Validate reports specification errors.
func (sp RandomSpec) Validate() error {
	checkRange := func(what string, lo, hi, min int) error {
		if lo < min || hi < lo {
			return fmt.Errorf("soc: random spec %s range [%d, %d] invalid (min %d)", what, lo, hi, min)
		}
		return nil
	}
	if err := checkRange("CPU", sp.MinCPUs, sp.MaxCPUs, 1); err != nil {
		return err
	}
	if err := checkRange("memory-tile", sp.MinMemTiles, sp.MaxMemTiles, 1); err != nil {
		return err
	}
	if err := checkRange("accelerator", sp.MinAccs, sp.MaxAccs, 1); err != nil {
		return err
	}
	for _, kb := range append(append([]int(nil), sp.LLCSliceKB...), sp.L2KB...) {
		if kb < 1 {
			return fmt.Errorf("soc: random spec cache size %d kB invalid", kb)
		}
	}
	if len(sp.LLCSliceKB) == 0 || len(sp.L2KB) == 0 {
		return fmt.Errorf("soc: random spec needs LLC and L2 size choices")
	}
	if sp.CatalogFraction < 0 || sp.CatalogFraction > 1 || sp.NoCacheFraction < 0 || sp.NoCacheFraction > 1 {
		return fmt.Errorf("soc: random spec fractions outside [0,1]")
	}
	for _, name := range sp.Protocols {
		if _, err := protocol.Lookup(name); err != nil {
			return fmt.Errorf("soc: random spec: %w", err)
		}
	}
	return nil
}

// drawRange samples uniformly from [lo, hi].
func drawRange(rng *sim.RNG, lo, hi int) int { return lo + rng.Intn(hi-lo+1) }

// meshFor returns the smallest near-square mesh holding n tiles.
func meshFor(n int) (w, h int) {
	w, h = 2, 2
	for w*h < n {
		if w <= h {
			w++
		} else {
			h++
		}
	}
	return w, h
}

// RandomConfig samples one SoC configuration within the spec's bounds,
// deterministically from the seed, and validates it against the same
// invariants every preset satisfies. The mesh is sized to fit the drawn
// tile count, so every returned config builds.
func RandomConfig(name string, sp RandomSpec, seed uint64) (*Config, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(seed ^ 0x50c5eed)
	cpus := drawRange(rng, sp.MinCPUs, sp.MaxCPUs)
	memTiles := drawRange(rng, sp.MinMemTiles, sp.MaxMemTiles)
	nAccs := drawRange(rng, sp.MinAccs, sp.MaxAccs)

	catalogNames := acc.Names()
	trafficGens := []func(*sim.RNG) acc.TrafficConfig{
		acc.RandomTrafficConfig, acc.StreamingTrafficConfig, acc.IrregularTrafficConfig,
	}
	accs := make([]AccInstance, 0, nAccs)
	counts := make(map[string]int)
	for i := 0; i < nAccs; i++ {
		var inst AccInstance
		if rng.Float64() < sp.CatalogFraction {
			specName := catalogNames[rng.Intn(len(catalogNames))]
			inst = AccInstance{
				InstName: fmt.Sprintf("%s.%d", specName, counts[specName]),
				Spec:     acc.MustByName(specName),
			}
			counts[specName]++
		} else {
			cfg := trafficGens[rng.Intn(len(trafficGens))](rng)
			instName := fmt.Sprintf("tgen.%d", counts["tgen"])
			spec, err := cfg.Spec(instName)
			if err != nil {
				return nil, fmt.Errorf("soc: random config %s: %w", name, err)
			}
			inst = AccInstance{InstName: instName, Spec: spec}
			counts["tgen"]++
		}
		inst.PrivateCache = rng.Float64() >= sp.NoCacheFraction
		accs = append(accs, inst)
	}

	w, h := meshFor(cpus + memTiles + nAccs + 1) // +1 auxiliary tile
	cfg := &Config{
		Name:       name,
		MeshW:      w,
		MeshH:      h,
		CPUs:       cpus,
		MemTiles:   memTiles,
		LLCSliceKB: sp.LLCSliceKB[rng.Intn(len(sp.LLCSliceKB))],
		L2KB:       sp.L2KB[rng.Intn(len(sp.L2KB))],
		Accs:       accs,
		Params:     DefaultParams(),
	}
	// The protocol axis draws last — after every pre-existing draw — so
	// specs without one reproduce their historical configs exactly. A
	// single candidate pins without consuming a draw.
	if len(sp.Protocols) == 1 {
		cfg.Protocol = sp.Protocols[0]
	} else if len(sp.Protocols) > 1 {
		cfg.Protocol = sp.Protocols[rng.Intn(len(sp.Protocols))]
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("soc: random config: %w", err)
	}
	return cfg, nil
}
