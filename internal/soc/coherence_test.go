package soc

import (
	"testing"

	"cohmeleon/internal/acc"
	"cohmeleon/internal/cache"
	"cohmeleon/internal/mem"
	"cohmeleon/internal/sim"
)

// Deeper coherence-flow tests: mode semantics that the end-to-end suite
// does not pin down individually.

func TestLLCCohWriteClaimsLineFromStaleOwner(t *testing.T) {
	// LLC-coherent DMA writes must clear stale directory owners without
	// recalling them (the bridge is only coherent with the LLC).
	s := build(t, testConfig())
	runSim(t, s, func(p *sim.Proc) {
		buf := allocBuf(t, s, 8<<10)
		p.WaitUntil(warm(s, buf, p.Now()))
		// No private flush: CPU still owns the lines in M. The test spec
		// is non-in-place with ReadFraction 0.8, so writes land in the
		// trailing fifth of the dataset.
		written := buf.LineAt(buf.Lines() - 1)
		e := s.homeTile(written).LLC.Probe(written)
		if e == nil || e.Owner == cache.NoOwner {
			t.Fatal("setup: line should be owned by the CPU")
		}
		s.RunAccelerator(p, s.Accs[0], buf, LLCCohDMA, sim.NewRNG(1))
		e = s.homeTile(written).LLC.Probe(written)
		if e == nil {
			t.Fatal("line evicted unexpectedly")
		}
		if e.Owner != cache.NoOwner {
			t.Errorf("llc-coh write left stale owner %d", e.Owner)
		}
		if e.State != cache.DirDirty {
			t.Errorf("llc-coh write left state %v, want dirty", e.State)
		}
	})
}

func TestNonCohWritesLandInDRAMNotLLC(t *testing.T) {
	s := build(t, testConfig())
	runSim(t, s, func(p *sim.Proc) {
		buf := allocBuf(t, s, 8<<10)
		m := &Meter{}
		// Cold dataset (never initialized): pure DMA write traffic.
		writesBefore := s.Mem[0].DRAM.Writes() + s.Mem[1].DRAM.Writes()
		s.RunAccelerator(p, s.Accs[0], buf, NonCohDMA, sim.NewRNG(1))
		writesAfter := s.Mem[0].DRAM.Writes() + s.Mem[1].DRAM.Writes()
		if writesAfter == writesBefore {
			t.Error("non-coh writes never reached DRAM")
		}
		for i := int64(0); i < buf.Lines(); i++ {
			if s.homeTile(buf.LineAt(i)).LLC.Probe(buf.LineAt(i)) != nil {
				t.Fatal("non-coh DMA allocated in the LLC")
			}
		}
		_ = m
	})
}

func TestCohDMAWriteInvalidatesOwner(t *testing.T) {
	s := build(t, testConfig())
	// A write-heavy accelerator on warm data under coherent DMA must
	// invalidate (not just downgrade) the CPU copies of written lines.
	cfg := testConfig()
	cfg.Accs[0].Spec = &acc.Spec{
		Name: "writer", Pattern: acc.Streaming, BurstLines: 16,
		ComputePerByte: 0, ReadFraction: 0.5, Reuse: acc.ConstReuse(1),
		InPlace: true, PLMBytes: 16 << 10,
	}
	s = build(t, cfg)
	runSim(t, s, func(p *sim.Proc) {
		buf := allocBuf(t, s, 8<<10)
		p.WaitUntil(warm(s, buf, p.Now()))
		s.RunAccelerator(p, s.Accs[0], buf, CohDMA, sim.NewRNG(1))
		cpuL2 := s.AgentCache(s.CPUs[0].Agent)
		// The written prefix must be gone from the CPU cache.
		if st, hit := cpuL2.Lookup(buf.LineAt(0)); hit && st == cache.Modified {
			t.Errorf("written line still M in CPU L2 (%v)", st)
		}
	})
	checkSingleOwner(t, s)
	checkInclusion(t, s)
}

func TestStridedAndIrregularModesRun(t *testing.T) {
	for _, pattern := range []acc.Pattern{acc.Strided, acc.Irregular} {
		cfg := testConfig()
		spec := &acc.Spec{
			Name: "p", Pattern: pattern, BurstLines: 1, ComputePerByte: 0.1,
			ReadFraction: 0.9, Reuse: acc.ConstReuse(1), PLMBytes: 8 << 10,
			StrideLines: 4, AccessFraction: 0.5,
		}
		cfg.Accs[0].Spec = spec
		s := build(t, cfg)
		runSim(t, s, func(p *sim.Proc) {
			buf := allocBuf(t, s, 32<<10)
			p.WaitUntil(warm(s, buf, p.Now()))
			for _, mode := range AllModes {
				// Follow the driver protocol: software-managed modes flush
				// first (skipping it is a data race on real ESP too).
				if mode.NeedsPrivateFlush() {
					p.WaitUntil(s.FlushPrivateRange(buf, p.Now(), &Meter{}))
				}
				if mode.NeedsLLCFlush() {
					p.WaitUntil(s.FlushLLCRange(buf, p.Now(), &Meter{}))
				}
				st := s.RunAccelerator(p, s.Accs[0], buf, mode, sim.NewRNG(7))
				if st.End <= st.Start {
					t.Errorf("%v/%v: empty invocation", pattern, mode)
				}
			}
		})
		checkInclusion(t, s)
		checkSingleOwner(t, s)
	}
}

func TestMultiPartitionDatasetTouchesAllHomes(t *testing.T) {
	s := build(t, testConfig())
	runSim(t, s, func(p *sim.Proc) {
		buf := allocBuf(t, s, 2<<20) // two 1MB pages → both partitions
		if got := len(buf.Partitions(s.Map)); got != 2 {
			t.Fatalf("dataset on %d partitions, want 2", got)
		}
		s.RunAccelerator(p, s.Accs[0], buf, LLCCohDMA, sim.NewRNG(1))
		for _, mt := range s.Mem {
			if mt.LLC.Stats().Misses == 0 {
				t.Errorf("partition %d saw no LLC traffic", mt.Part)
			}
		}
	})
}

func TestRepeatedWarmInvocationsConvergeOnChip(t *testing.T) {
	// After the first coh-dma invocation pulls everything into the LLC,
	// later invocations of LLC-friendly sizes stay on chip.
	s := build(t, testConfig())
	runSim(t, s, func(p *sim.Proc) {
		buf := allocBuf(t, s, 64<<10)
		first := s.RunAccelerator(p, s.Accs[0], buf, CohDMA, sim.NewRNG(1))
		second := s.RunAccelerator(p, s.Accs[0], buf, CohDMA, sim.NewRNG(2))
		if first.OffChip == 0 {
			t.Error("cold first run should miss off-chip")
		}
		if second.OffChip != 0 {
			t.Errorf("second run went off-chip (%d lines) despite warm LLC", second.OffChip)
		}
		if second.End-second.Start >= first.End-first.Start {
			t.Error("warm run not faster than cold run")
		}
	})
}

func TestFullyCohWritebackReachesLLCOnRecall(t *testing.T) {
	// A fully-coherent accelerator leaves dirty results in its private
	// cache; a later CPU read must recall the newest data on chip.
	cfg := testConfig()
	cfg.Accs[0].Spec = &acc.Spec{
		Name: "writer", Pattern: acc.Streaming, BurstLines: 16,
		ComputePerByte: 0, ReadFraction: 0.5, Reuse: acc.ConstReuse(1),
		InPlace: true, PLMBytes: 16 << 10,
	}
	s := build(t, cfg)
	runSim(t, s, func(p *sim.Proc) {
		buf := allocBuf(t, s, 8<<10)
		s.RunAccelerator(p, s.Accs[0], buf, FullyCoh, sim.NewRNG(1))
		accL2 := s.AgentCache(s.Accs[0].Agent)
		if accL2.ValidLines() == 0 {
			t.Fatal("setup: accelerator cache should hold results")
		}
		m := &Meter{}
		done := s.CPUTouchRange(s.CPUs[0], buf, 0, buf.Lines(), false, p.Now(), m)
		p.WaitUntil(done)
		if m.OffChip != 0 {
			t.Errorf("CPU readback went off-chip (%d lines); recall should serve it", m.OffChip)
		}
	})
	checkSingleOwner(t, s)
	checkInclusion(t, s)
}

func TestMeterNilSafe(t *testing.T) {
	var m *Meter
	m.add(5) // must not panic
}

func TestYieldBudgetBoundsLookahead(t *testing.T) {
	// Two accelerators started together must interleave: neither may
	// finish its multi-chunk run entirely before the other starts moving.
	s := build(t, testConfig())
	var aEnd, bStart sim.Cycles
	runSim(t, s, func(p *sim.Proc) {
		buf0 := allocBuf(t, s, 512<<10)
		buf1 := allocBuf(t, s, 512<<10)
		wg := sim.NewWaitGroup(s.Eng)
		wg.Add(2)
		s.Eng.Go("a", func(q *sim.Proc) {
			st := s.RunAccelerator(q, s.Accs[0], buf0, NonCohDMA, sim.NewRNG(1))
			aEnd = st.End
			wg.Done()
		})
		s.Eng.Go("b", func(q *sim.Proc) {
			st := s.RunAccelerator(q, s.Accs[1], buf1, NonCohDMA, sim.NewRNG(2))
			bStart = st.Start
			wg.Done()
		})
		wg.Wait(p)
	})
	if bStart >= aEnd {
		t.Errorf("no interleaving: b started at %d, a ended at %d", bStart, aEnd)
	}
}

func TestBufContains(t *testing.T) {
	s := build(t, testConfig())
	buf := allocBuf(t, s, 8<<10)
	if !bufContains(buf, buf.LineAt(0)) || !bufContains(buf, buf.LineAt(buf.Lines()-1)) {
		t.Fatal("bufContains misses owned lines")
	}
	if bufContains(buf, buf.Extents[0].End()+mem.PageLines) {
		t.Fatal("bufContains claims foreign lines")
	}
}
