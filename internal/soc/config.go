package soc

import (
	"fmt"
	"io"

	"cohmeleon/internal/acc"
	"cohmeleon/internal/mem"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc/protocol"
)

// AccInstance declares one accelerator to integrate.
type AccInstance struct {
	// InstName is the unique instance name (e.g. "fft.0").
	InstName string
	// Spec is the accelerator's communication profile.
	Spec *acc.Spec
	// PrivateCache grants the tile a private cache, enabling FullyCoh.
	PrivateCache bool
}

// Config describes one SoC to build: Table 4 of the paper plus the two
// motivation SoCs are provided as presets below.
type Config struct {
	Name     string
	MeshW    int
	MeshH    int
	CPUs     int
	MemTiles int // DDR controllers == LLC partitions
	// LLCSliceKB is the size of each LLC partition in KB.
	LLCSliceKB int
	// L2KB is the private cache size (CPUs and accelerators) in KB.
	L2KB int
	Accs []AccInstance

	// Protocol names the coherence protocol stack (a registry key of
	// internal/soc/protocol); "" resolves to the default ("mesi").
	Protocol string

	Params Params
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	tiles := c.CPUs + c.MemTiles + len(c.Accs) + 1 // +1 auxiliary tile
	switch {
	case c.Name == "":
		return fmt.Errorf("soc: config with empty name")
	case c.MeshW <= 0 || c.MeshH <= 0:
		return fmt.Errorf("soc %s: bad mesh %dx%d", c.Name, c.MeshW, c.MeshH)
	case tiles > c.MeshW*c.MeshH:
		return fmt.Errorf("soc %s: %d tiles exceed %dx%d mesh", c.Name, tiles, c.MeshW, c.MeshH)
	case c.CPUs < 1:
		return fmt.Errorf("soc %s: needs at least one CPU", c.Name)
	case c.MemTiles < 1:
		return fmt.Errorf("soc %s: needs at least one memory tile", c.Name)
	case c.LLCSliceKB < 1 || c.L2KB < 1:
		return fmt.Errorf("soc %s: cache sizes must be positive", c.Name)
	case len(c.Accs) == 0:
		return fmt.Errorf("soc %s: needs at least one accelerator", c.Name)
	}
	if _, err := protocol.Lookup(c.Protocol); err != nil {
		return fmt.Errorf("soc %s: %w", c.Name, err)
	}
	seen := make(map[string]bool)
	for _, a := range c.Accs {
		if a.Spec == nil {
			return fmt.Errorf("soc %s: accelerator %q has nil spec", c.Name, a.InstName)
		}
		if err := a.Spec.Validate(); err != nil {
			return fmt.Errorf("soc %s: %v", c.Name, err)
		}
		if seen[a.InstName] {
			return fmt.Errorf("soc %s: duplicate instance %q", c.Name, a.InstName)
		}
		seen[a.InstName] = true
	}
	return nil
}

// HashContent writes a canonical encoding of everything that
// determines the configuration's simulated behavior — geometry, timing
// parameters, and each accelerator instance's communication profile —
// to w, for content-keyed memoization of simulation runs. The
// accelerator Reuse functions are not encodable; see acc.Spec.
func (c *Config) HashContent(w io.Writer) {
	fmt.Fprintf(w, "soc|%s|%d|%d|%d|%d|%d|%d|line%d|page%d\n",
		c.Name, c.MeshW, c.MeshH, c.CPUs, c.MemTiles, c.LLCSliceKB, c.L2KB,
		mem.LineBytes, mem.PageBytes)
	// The resolved protocol name ("" hashes as the default it resolves
	// to), so two spellings of the same protocol share memo entries and
	// a protocol change always misses.
	proto := c.Protocol
	if proto == "" {
		proto = protocol.DefaultName
	}
	fmt.Fprintf(w, "protocol|%s\n", proto)
	p := &c.Params
	fmt.Fprintf(w, "params|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d\n",
		p.L2HitCycles, p.LLCLookupCycles, p.LLCFillCycles, p.LLCMissPerLine,
		p.DRAMLatencyCycles, p.DRAMPerLineCycles, p.GroupLines,
		p.RecallHeaderCycles, p.CohDMACheckCycles, p.DriverCycles,
		p.IRQCycles, p.TLBPerPageCycles, p.FlushWalkPerLine,
		p.CPUTouchPerLine, p.DRAMPartitionMB)
	for i := range c.Accs {
		a := &c.Accs[i]
		fmt.Fprintf(w, "acc|%s|%t\n", a.InstName, a.PrivateCache)
		a.Spec.HashContent(w)
	}
}

// TotalLLCBytes returns the aggregate LLC size.
func (c *Config) TotalLLCBytes() int64 {
	return int64(c.MemTiles) * int64(c.LLCSliceKB) * 1024
}

// LLCSliceBytes returns one partition's size.
func (c *Config) LLCSliceBytes() int64 { return int64(c.LLCSliceKB) * 1024 }

// L2Bytes returns the private-cache size.
func (c *Config) L2Bytes() int64 { return int64(c.L2KB) * 1024 }

// DRAMBytes returns the aggregate DRAM capacity behind all memory
// tiles, or 0 when the parameter set leaves the partition size unset.
func (c *Config) DRAMBytes() int64 {
	return int64(c.MemTiles) * c.Params.DRAMPartitionMB << 20
}

// espAccs builds one instance of each named catalog accelerator;
// counts[i] instances of names[i], all with private caches.
func espAccs(names []string, counts []int) []AccInstance {
	var out []AccInstance
	for i, n := range names {
		for k := 0; k < counts[i]; k++ {
			out = append(out, AccInstance{
				InstName:     fmt.Sprintf("%s.%d", n, k),
				Spec:         acc.MustByName(n),
				PrivateCache: true,
			})
		}
	}
	return out
}

// trafficAccs builds n traffic-generator instances drawn by gen.
func trafficAccs(n int, seed uint64, gen func(*sim.RNG) acc.TrafficConfig) []AccInstance {
	rng := sim.NewRNG(seed)
	out := make([]AccInstance, 0, n)
	for i := 0; i < n; i++ {
		cfg := gen(rng)
		name := fmt.Sprintf("tgen.%d", i)
		spec, err := cfg.Spec(name)
		if err != nil {
			panic(err) // generator variants always produce valid configs
		}
		out = append(out, AccInstance{InstName: name, Spec: spec, PrivateCache: true})
	}
	return out
}

// TrafficVariant selects the traffic-generator mix for the SoC0 layout.
type TrafficVariant int

// Traffic mixes used in Figure 9.
const (
	TrafficMixed TrafficVariant = iota
	TrafficStreaming
	TrafficIrregular
)

// SoC0 returns the paper's SoC0 (Table 4): 12 traffic generators on a
// 5×5 mesh, 4 CPUs, 4 DDR controllers, 512 kB LLC slices, 64 kB L2.
func SoC0(variant TrafficVariant, seed uint64) *Config {
	gen := acc.RandomTrafficConfig
	name := "SoC0"
	switch variant {
	case TrafficStreaming:
		gen = acc.StreamingTrafficConfig
		name = "SoC0-streaming"
	case TrafficIrregular:
		gen = acc.IrregularTrafficConfig
		name = "SoC0-irregular"
	}
	return &Config{
		Name: name, MeshW: 5, MeshH: 5, CPUs: 4, MemTiles: 4,
		LLCSliceKB: 512, L2KB: 64,
		Accs:   trafficAccs(12, seed, gen),
		Params: DefaultParams(),
	}
}

// SoC1 returns Table 4's SoC1: 7 traffic generators, 4×4, 2 CPUs,
// 4 DDRs, 256 kB slices, 32 kB L2.
func SoC1(seed uint64) *Config {
	return &Config{
		Name: "SoC1", MeshW: 4, MeshH: 4, CPUs: 2, MemTiles: 4,
		LLCSliceKB: 256, L2KB: 32,
		Accs:   trafficAccs(7, seed, acc.RandomTrafficConfig),
		Params: DefaultParams(),
	}
}

// SoC2 returns Table 4's SoC2: 9 traffic generators, 4×4, 4 CPUs,
// 2 DDRs, 512 kB slices, 32 kB L2.
func SoC2(seed uint64) *Config {
	return &Config{
		Name: "SoC2", MeshW: 4, MeshH: 4, CPUs: 4, MemTiles: 2,
		LLCSliceKB: 512, L2KB: 32,
		Accs:   trafficAccs(9, seed, acc.RandomTrafficConfig),
		Params: DefaultParams(),
	}
}

// SoC3 returns Table 4's SoC3: 16 traffic generators, 5×5, 4 CPUs,
// 4 DDRs, 256 kB slices, 64 kB L2. Five accelerators lack a private
// cache (the paper dropped them for FPGA resource constraints), so the
// fully-coherent mode is unavailable to them.
func SoC3(seed uint64) *Config {
	accs := trafficAccs(16, seed, acc.RandomTrafficConfig)
	for i := 0; i < 5; i++ {
		accs[len(accs)-1-i].PrivateCache = false
	}
	return &Config{
		Name: "SoC3", MeshW: 5, MeshH: 5, CPUs: 4, MemTiles: 4,
		LLCSliceKB: 256, L2KB: 64,
		Accs:   accs,
		Params: DefaultParams(),
	}
}

// SoC4 returns Table 4's SoC4 (mixed accelerators): one instance of each
// of the 11 ESP accelerators of Table 2 on a 5×4 mesh, 2 CPUs, 4 DDRs,
// 256 kB slices, 32 kB L2.
func SoC4() *Config {
	names := acc.ESPNames()
	counts := make([]int, len(names))
	for i := range counts {
		counts[i] = 1
	}
	return &Config{
		Name: "SoC4", MeshW: 5, MeshH: 4, CPUs: 2, MemTiles: 4,
		LLCSliceKB: 256, L2KB: 32,
		Accs:   espAccs(names, counts),
		Params: DefaultParams(),
	}
}

// SoC5 returns Table 4's SoC5 (autonomous driving): 2×FFT and 2×Viterbi
// for V2V coding plus 2×Conv-2D and 2×GEMM for CNN inference, 4×4,
// 1 CPU, 4 DDRs, 256 kB slices, 32 kB L2.
func SoC5() *Config {
	return &Config{
		Name: "SoC5", MeshW: 4, MeshH: 4, CPUs: 1, MemTiles: 4,
		LLCSliceKB: 256, L2KB: 32,
		Accs: espAccs(
			[]string{acc.FFT, acc.Viterbi, acc.Conv2D, acc.GEMM},
			[]int{2, 2, 2, 2}),
		Params: DefaultParams(),
	}
}

// SoC6 returns Table 4's SoC6 (computer vision): three instances of the
// night-vision → autoencoder → MLP classification pipeline, 4×4, 1 CPU,
// 2 DDRs, 256 kB slices, 32 kB L2.
func SoC6() *Config {
	return &Config{
		Name: "SoC6", MeshW: 4, MeshH: 4, CPUs: 1, MemTiles: 2,
		LLCSliceKB: 256, L2KB: 32,
		Accs: espAccs(
			[]string{acc.NightVision, acc.Autoencoder, acc.MLP},
			[]int{3, 3, 3}),
		Params: DefaultParams(),
	}
}

// MotivationIsolation returns the SoC used for Figure 2: one instance of
// each of the twelve catalog accelerators (including NVDLA), 32 kB
// private caches everywhere, and a 1 MB LLC split in two partitions each
// with a dedicated memory controller.
func MotivationIsolation() *Config {
	names := acc.Names()
	counts := make([]int, len(names))
	for i := range counts {
		counts[i] = 1
	}
	return &Config{
		Name: "motivation-isolation", MeshW: 5, MeshH: 4, CPUs: 2, MemTiles: 2,
		LLCSliceKB: 512, L2KB: 32,
		Accs:   espAccs(names, counts),
		Params: DefaultParams(),
	}
}

// MotivationParallel returns the SoC used for Figure 3: 12 accelerators,
// three instances each of FFT, night-vision, sort and SPMV.
func MotivationParallel() *Config {
	return &Config{
		Name: "motivation-parallel", MeshW: 5, MeshH: 4, CPUs: 2, MemTiles: 2,
		LLCSliceKB: 512, L2KB: 32,
		Accs: espAccs(
			[]string{acc.FFT, acc.NightVision, acc.Sort, acc.SPMV},
			[]int{3, 3, 3, 3}),
		Params: DefaultParams(),
	}
}

// Table4 returns the seven evaluation SoCs in paper order, with the
// given seed driving traffic-generator instantiation.
func Table4(seed uint64) []*Config {
	return []*Config{
		SoC0(TrafficMixed, seed),
		SoC1(seed + 1),
		SoC2(seed + 2),
		SoC3(seed + 3),
		SoC4(),
		SoC5(),
		SoC6(),
	}
}
