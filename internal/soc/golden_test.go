package soc

import (
	"testing"

	"cohmeleon/internal/sim"
)

// Golden regression tests: the simulator is deterministic, so reference
// scenarios pin exact cycle counts and off-chip totals. A failure here
// means the timing model changed — intentionally recalibrate by
// updating the constants below (and re-running the experiments in
// EXPERIMENTS.md), or unintentionally broke something.

func TestGoldenIsolationInvocation(t *testing.T) {
	got := map[Mode]InvocationStats{}
	for _, mode := range AllModes {
		got[mode] = runOneInvocation(t, 16<<10, mode)
	}
	// Reference values for the 16 kB warm invocation on the test SoC
	// (DefaultParams, seed 1).
	type ref struct {
		active  sim.Cycles
		offChip int64
	}
	want := map[Mode]ref{
		NonCohDMA: {active: 23762, offChip: 512},
		LLCCohDMA: {active: 12986, offChip: 0},
		CohDMA:    {active: 14746, offChip: 0},
		FullyCoh:  {active: 14502, offChip: 0},
	}
	for mode, w := range want {
		g := got[mode]
		if g.Active() != w.active || g.OffChip != w.offChip {
			t.Errorf("%v: active=%d offChip=%d, golden active=%d offChip=%d (timing model changed?)",
				mode, g.Active(), g.OffChip, w.active, w.offChip)
		}
	}
}

func TestGoldenOrderingInvariants(t *testing.T) {
	// Even if the constants above are deliberately recalibrated, these
	// orderings are the paper's phenomena and must survive any retuning.
	small := map[Mode]InvocationStats{}
	large := map[Mode]InvocationStats{}
	for _, mode := range AllModes {
		small[mode] = runOneInvocation(t, 16<<10, mode)
		large[mode] = runOneInvocation(t, 512<<10, mode)
	}
	if !(small[LLCCohDMA].Active() < small[NonCohDMA].Active()) {
		t.Error("small warm: llc-coh must beat non-coh")
	}
	if !(small[CohDMA].Active() < small[NonCohDMA].Active()) {
		t.Error("small warm: coh-dma must beat non-coh")
	}
	if !(large[NonCohDMA].Active() < large[LLCCohDMA].Active()) {
		t.Error("large: non-coh must beat llc-coh (thrashing)")
	}
	if !(large[NonCohDMA].Active() < large[FullyCoh].Active()) {
		t.Error("large: non-coh must beat full-coh (thrashing)")
	}
	for _, mode := range []Mode{LLCCohDMA, CohDMA, FullyCoh} {
		if small[mode].OffChip != 0 {
			t.Errorf("small warm %v: off-chip must be zero", mode)
		}
		if large[mode].OffChip == 0 {
			t.Errorf("large %v: off-chip must be nonzero", mode)
		}
	}
}
