package soc

import (
	"cohmeleon/internal/cache"
	"cohmeleon/internal/mem"
	"cohmeleon/internal/sim"
)

// Software-managed coherence: the range flushes the ESP driver issues
// before non-coherent and LLC-coherent invocations. Flushing costs real
// time inside the invocation window (the paper's measurements include
// it) and the DRAM writes it causes count as off-chip accesses.

// FlushPrivateRange removes the buffer's lines from every private cache
// (CPU L2s and accelerator caches — all coherent agents), writing dirty
// lines back to the LLC. Caches flush in parallel; the returned time is
// when the slowest finishes.
func (s *SoC) FlushPrivateRange(buf *mem.Buffer, at sim.Cycles, meter *Meter) sim.Cycles {
	done := at
	for id := range s.agents {
		if d := s.flushAgentRange(id, buf, at, meter); d > done {
			done = d
		}
	}
	return done
}

func (s *SoC) flushAgentRange(agentID int, buf *mem.Buffer, at sim.Cycles, meter *Meter) sim.Cycles {
	ag := &s.agents[agentID]
	// The controller walks its whole tag array to find range matches.
	walk := sim.Cycles(ag.cache.SizeBytes()/mem.LineBytes) * s.P.FlushWalkPerLine
	_, t := ag.port.Acquire(at, walk)

	if ag.cache.ValidLines() == 0 {
		return t
	}
	matches := s.flushScratch[:0]
	ag.cache.ForEachValid(func(line mem.LineAddr, st cache.State) {
		if bufContains(buf, line) {
			matches = append(matches, line)
		}
	})
	defer func() { s.flushScratch = matches[:0] }()
	// Invalidate matches; group dirty writebacks per partition to batch
	// the NoC data messages.
	if s.flushDirty == nil {
		s.flushDirty = make([][]mem.LineAddr, len(s.Mem))
	}
	dirtyByPart := s.flushDirty
	for p := range dirtyByPart {
		dirtyByPart[p] = dirtyByPart[p][:0]
	}
	for _, line := range matches {
		present, wasDirty := ag.cache.Invalidate(line)
		if !present {
			continue
		}
		if wasDirty {
			p := s.Map.Home(line)
			dirtyByPart[p] = append(dirtyByPart[p], line)
			continue
		}
		// Clean invalidation: lazily clear the directory's owner/sharer
		// listing. When the home partition's occupancy summary shows no
		// private copies at all, the probe-and-clear is a proven no-op.
		llc := s.homeTile(line).LLC
		if !s.refCoherence && !llc.HasPrivateCopies() {
			continue
		}
		if e := llc.Probe(line); e != nil {
			if e.Owner == agentID {
				llc.SetOwner(e, cache.NoOwner)
			}
			llc.RemoveSharer(e, agentID)
		}
	}
	group := s.P.GroupLines
	for p := 0; p < len(s.Mem); p++ {
		lines := dirtyByPart[p]
		if len(lines) == 0 {
			continue
		}
		mt := s.Mem[p]
		cp := s.cohPathTo(agentID, mt.Part)
		for off := 0; off < len(lines); off += group {
			end := off + group
			if end > len(lines) {
				end = len(lines)
			}
			batch := lines[off:end]
			t = cp.wb.Send(len(batch)*mem.LineBytes, t)
			_, t = mt.Port.Acquire(t, sim.Cycles(len(batch))*s.P.LLCFillCycles)
			for _, line := range batch {
				e := mt.LLC.Probe(line)
				if e == nil {
					var v cache.DirVictim
					e, v = mt.LLC.Insert(line, cache.DirDirty)
					t = s.evictLLCVictim(mt, v, t, meter)
				} else {
					e.State = cache.DirDirty
				}
				if e.Owner == agentID {
					mt.LLC.SetOwner(e, cache.NoOwner)
				}
				mt.LLC.RemoveSharer(e, agentID)
			}
		}
	}
	return t
}

// FlushLLCRange removes the buffer's lines from every LLC partition,
// writing dirty data to DRAM (counted off-chip). Partitions flush in
// parallel. Lines still owned by a private cache are recalled first, so
// the flush is safe even without a preceding private flush.
func (s *SoC) FlushLLCRange(buf *mem.Buffer, at sim.Cycles, meter *Meter) sim.Cycles {
	done := at
	for _, mt := range s.Mem {
		if d := s.flushLLCPartition(mt, buf, at, meter); d > done {
			done = d
		}
	}
	return done
}

func (s *SoC) flushLLCPartition(mt *MemTile, buf *mem.Buffer, at sim.Cycles, meter *Meter) sim.Cycles {
	walk := sim.Cycles(mt.LLC.SizeBytes()/mem.LineBytes) * s.P.FlushWalkPerLine
	_, t := mt.Port.Acquire(at, walk)
	if mt.LLC.ValidLines() == 0 {
		return t
	}
	matches := s.flushScratch[:0]
	mt.LLC.ForEachValid(func(e *cache.DirEntry) {
		if bufContains(buf, e.Line) {
			matches = append(matches, e.Line)
		}
	})
	defer func() { s.flushScratch = matches[:0] }()
	var dirty int64
	if !s.refCoherence && !mt.LLC.HasPrivateCopies() {
		// No resident line lists an owner or sharer, so no invalidation
		// can require a recall: the per-line walk collapses to one fused
		// pipeline reservation and a run-level invalidate. Timing and
		// state are exactly the per-line loop's (which would skip every
		// recall branch).
		_, t = mt.Port.Acquire(t, sim.Cycles(len(matches))*s.P.LLCLookupCycles)
		dirty = mt.LLC.InvalidateRun(matches)
		if dirty > 0 {
			t = mt.DRAM.Post(t, dirty, true)
			meter.add(dirty)
		}
		return t
	}
	for _, line := range matches {
		_, t = mt.Port.Acquire(t, s.P.LLCLookupCycles)
		v, ok := mt.LLC.Invalidate(line)
		if !ok {
			continue
		}
		wasDirty := v.WasDirty
		if v.Owner != cache.NoOwner {
			owner := &s.agents[v.Owner]
			cp := s.cohPathTo(v.Owner, mt.Part)
			t = cp.fwd.Send(0, t)
			_, t = owner.port.Acquire(t, s.P.L2HitCycles)
			present, ownerDirty := owner.cache.Invalidate(line)
			if present && ownerDirty {
				t = cp.wb.Send(mem.LineBytes, t)
				wasDirty = true
			}
		}
		cache.ForEachSharerMask(v.Sharers, func(id int) {
			ag := &s.agents[id]
			_, t = mt.Port.Acquire(t, s.P.RecallHeaderCycles)
			arrive := s.cohPathTo(id, mt.Part).fwd.Send(0, t)
			_, _ = ag.port.Acquire(arrive, s.P.L2HitCycles)
			ag.cache.Invalidate(line)
		})
		if wasDirty {
			dirty++
		}
	}
	if dirty > 0 {
		t = mt.DRAM.Post(t, dirty, true)
		meter.add(dirty)
	}
	return t
}
