package soc

import (
	"fmt"
	"os"
	"testing"

	"cohmeleon/internal/cache"
	"cohmeleon/internal/mem"
	"cohmeleon/internal/noc"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc/protocol"
)

// Property tests for the run-batched coherence engine: two identical
// SoCs — one forced onto the per-line reference flows of
// coherence_ref.go — are driven through the same randomized traffic,
// and every observable must match bit-for-bit: returned completion
// cursors, off-chip meters, DRAM monitors, NoC busy totals, cache and
// directory event counters, and the complete tag/state/owner/sharer end
// state of every cache and partition. This is the contract the batched
// fast paths are defined by.

// coherencePair builds the batched and reference twins.
func coherencePair(t testing.TB, cfg *Config) (fast, ref *SoC) {
	t.Helper()
	fast, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, err = cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	ref.refCoherence = true
	return fast, ref
}

// cacheSnapshot flattens a private cache's visible state.
func cacheSnapshot(c *cache.Cache) string {
	out := ""
	c.ForEachValid(func(line mem.LineAddr, st cache.State) {
		out += fmt.Sprintf("%d:%v;", line, st)
	})
	return fmt.Sprintf("%s stats=%+v lines=%d", out, c.Stats(), c.ValidLines())
}

// dirSnapshot flattens an LLC partition's visible state.
func dirSnapshot(d *cache.Directory) string {
	out := ""
	d.ForEachValid(func(e *cache.DirEntry) {
		out += fmt.Sprintf("%d:%v/o%d/s%x;", e.Line, e.State, e.Owner, e.Sharers)
	})
	return fmt.Sprintf("%s stats=%+v lines=%d owned=%d shared=%d",
		out, d.Stats(), d.ValidLines(), d.OwnedLines(), d.SharedLines())
}

// compareSoCs fails the test at the first observable divergence.
func compareSoCs(t *testing.T, step string, fast, ref *SoC) {
	t.Helper()
	for id := range fast.agents {
		if g, w := cacheSnapshot(fast.agents[id].cache), cacheSnapshot(ref.agents[id].cache); g != w {
			t.Fatalf("%s: agent %d cache diverged:\n fast %s\n  ref %s", step, id, g, w)
		}
		if g, w := fast.agents[id].port.AvailableAt(), ref.agents[id].port.AvailableAt(); g != w {
			t.Fatalf("%s: agent %d port cursor %d != %d", step, id, g, w)
		}
	}
	for i := range fast.Mem {
		if g, w := dirSnapshot(fast.Mem[i].LLC), dirSnapshot(ref.Mem[i].LLC); g != w {
			t.Fatalf("%s: llc%d diverged:\n fast %s\n  ref %s", step, i, g, w)
		}
		if err := fast.Mem[i].LLC.CheckSummary(); err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		if g, w := fast.Mem[i].Port.AvailableAt(), ref.Mem[i].Port.AvailableAt(); g != w {
			t.Fatalf("%s: llc%d port cursor %d != %d", step, i, g, w)
		}
		if g, w := fast.Mem[i].DRAM.Total(), ref.Mem[i].DRAM.Total(); g != w {
			t.Fatalf("%s: dram%d monitor %d != %d", step, i, g, w)
		}
		if g, w := fast.Mem[i].DRAM.BusyCycles(), ref.Mem[i].DRAM.BusyCycles(); g != w {
			t.Fatalf("%s: dram%d busy %d != %d", step, i, g, w)
		}
	}
	for p := noc.Plane(0); p < noc.NumPlanes; p++ {
		if g, w := fast.Mesh.LinkBusy(p), ref.Mesh.LinkBusy(p); g != w {
			t.Fatalf("%s: plane %v busy %d != %d", step, p, g, w)
		}
	}
}

// driveRandomGroups runs the same random group-op schedule through both
// SoCs and compares after every operation.
func driveRandomGroups(t *testing.T, cfg *Config, seed uint64, ops int) {
	fast, ref := coherencePair(t, cfg)
	bufBytes := int64(128 << 10)
	fastBuf, err := fast.Heap.Alloc(bufBytes)
	if err != nil {
		t.Fatal(err)
	}
	refBuf, err := ref.Heap.Alloc(bufBytes)
	if err != nil {
		t.Fatal(err)
	}
	if len(fastBuf.Extents) != len(refBuf.Extents) {
		t.Fatalf("allocator divergence: %d vs %d extents", len(fastBuf.Extents), len(refBuf.Extents))
	}

	run := func(s *SoC, buf *mem.Buffer) []sim.Cycles {
		var cursors []sim.Cycles
		rng := sim.NewRNG(seed)
		meter := &Meter{}
		s.Eng.Go("drive", func(p *sim.Proc) {
			t := p.Now()
			for op := 0; op < ops; op++ {
				ext := &buf.Extents[rng.Intn(len(buf.Extents))]
				n := 1 + rng.Int63n(int64(s.P.GroupLines))
				if n > ext.Lines {
					n = ext.Lines
				}
				off := rng.Int63n(ext.Lines - n + 1)
				start := ext.Start + mem.LineAddr(off)
				mt := s.homeTile(start)
				write := rng.Intn(2) == 1
				switch rng.Intn(8) {
				case 0, 1:
					agentID := rng.Intn(len(s.agents))
					t = s.cachedGroupAccess(agentID, start, n, write, t, meter)
				case 2, 3:
					a := s.Accs[rng.Intn(len(s.Accs))]
					t = s.dmaGroupLLC(mt, a, start, n, write, false, t, meter)
				case 4, 5:
					a := s.Accs[rng.Intn(len(s.Accs))]
					t = s.dmaGroupLLC(mt, a, start, n, write, true, t, meter)
				case 6:
					a := s.Accs[rng.Intn(len(s.Accs))]
					t = s.dmaGroupNonCoh(mt, a, start, n, write, t, meter)
				case 7:
					if rng.Intn(2) == 0 {
						t = s.FlushPrivateRange(buf, t, meter)
					} else {
						t = s.FlushLLCRange(buf, t, meter)
					}
				}
				cursors = append(cursors, t)
			}
			cursors = append(cursors, sim.Cycles(meter.OffChip))
		})
		if err := s.Eng.Run(); err != nil {
			t.Fatal(err)
		}
		return cursors
	}

	fastCur := run(fast, fastBuf)
	refCur := run(ref, refBuf)
	for i := range refCur {
		if fastCur[i] != refCur[i] {
			t.Fatalf("seed %d: op %d cursor/meter diverged: fast %d, ref %d", seed, i, fastCur[i], refCur[i])
		}
	}
	compareSoCs(t, fmt.Sprintf("seed %d end", seed), fast, ref)
}

// TestBatchedCoherenceMatchesReference drives random group traffic over
// a spread of cache geometries, including degenerate ones where the
// batched flows must fall back to the reference (LLC sets below the
// group length) — for every registered protocol, since the per-line
// reference flows are each protocol's defining spec (see the protocol
// package doc). A protocol whose batched flows diverge from its own
// reference cannot land.
func TestBatchedCoherenceMatchesReference(t *testing.T) {
	geometries := []struct{ llcKB, l2KB int }{
		{64, 32},  // the standard test geometry
		{16, 32},  // LLC slice smaller than L2: heavy LLC thrashing
		{8, 8},    // 16 sets = GroupLines: the fast-path boundary
		{4, 8},    // 8 sets < GroupLines: permanent reference fallback
		{256, 16}, // roomy LLC, tiny L2: private-cache thrashing
	}
	for _, proto := range protocol.Names() {
		for _, g := range geometries {
			proto, g := proto, g
			t.Run(fmt.Sprintf("%s/llc%dK_l2%dK", proto, g.llcKB, g.l2KB), func(t *testing.T) {
				cfg := testConfig()
				cfg.Protocol = proto
				cfg.LLCSliceKB = g.llcKB
				cfg.L2KB = g.l2KB
				for seed := uint64(1); seed <= 6; seed++ {
					driveRandomGroups(t, cfg, seed, 400)
				}
			})
		}
	}
}

// FuzzBatchedCoherence is the fuzzing entry point over the same
// batched-vs-reference property: arbitrary seeds (and op counts) must
// never produce a divergence. The seed corpus runs as part of the
// regular test suite; CI fuzzes it for a bounded time, non-blocking,
// once per registered protocol (COHMELEON_PROTOCOL selects the stack;
// empty keeps the default).
func FuzzBatchedCoherence(f *testing.F) {
	proto := os.Getenv("COHMELEON_PROTOCOL")
	if _, err := protocol.Lookup(proto); err != nil {
		f.Fatal(err)
	}
	f.Add(uint64(1), uint16(100))
	f.Add(uint64(1234567), uint16(300))
	f.Add(^uint64(0), uint16(64))
	f.Fuzz(func(t *testing.T, seed uint64, ops uint16) {
		n := int(ops%500) + 1
		cfg := testConfig()
		cfg.Protocol = proto
		driveRandomGroups(t, cfg, seed, n)
	})
}

// TestBatchedCoherenceFullInvocations runs complete accelerator
// invocations (the socket's chunked, double-buffered schedule) under
// every mode on the twin SoCs, comparing invocation stats and end
// state: the integration-level version of the group property.
func TestBatchedCoherenceFullInvocations(t *testing.T) {
	for _, proto := range protocol.Names() {
		for _, mode := range AllModes {
			proto, mode := proto, mode
			t.Run(proto+"/"+mode.String(), func(t *testing.T) {
				cfg := testConfig()
				cfg.Protocol = proto
				fast, ref := coherencePair(t, cfg)
				invoke := func(s *SoC) InvocationStats {
					var out InvocationStats
					s.Eng.Go("invoke", func(p *sim.Proc) {
						buf, err := s.Heap.Alloc(96 << 10)
						if err != nil {
							panic(err)
						}
						meter := &Meter{}
						p.WaitUntil(s.CPUTouchRange(s.CPUs[0], buf, 0, buf.Lines(), true, p.Now(), meter))
						out = s.RunAccelerator(p, s.Accs[0], buf, mode, sim.NewRNG(7))
					})
					if err := s.Eng.Run(); err != nil {
						t.Fatal(err)
					}
					return out
				}
				fs, rs := invoke(fast), invoke(ref)
				if fs != rs {
					t.Fatalf("%v: invocation stats diverged:\n fast %+v\n  ref %+v", mode, fs, rs)
				}
				compareSoCs(t, mode.String(), fast, ref)
			})
		}
	}
}

// TestFlushFastPathsMatchReference pins the flush fast paths in
// flush.go — the clean-invalidation directory skip in flushAgentRange
// and the fused no-recall run in flushLLCPartition — against the
// per-line reference walk, through a scripted sequence that drives
// both: flushes over cold caches, over LLC-resident lines with no
// private copies (where the fast paths fire), and over dirty private
// copies with live owners (where they must stand down). Cursors,
// off-chip meters, and full end state must be identical.
func TestFlushFastPathsMatchReference(t *testing.T) {
	for _, proto := range protocol.Names() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			cfg := testConfig()
			cfg.Protocol = proto
			fast, ref := coherencePair(t, cfg)
			run := func(s *SoC) []sim.Cycles {
				var cursors []sim.Cycles
				meter := &Meter{}
				s.Eng.Go("flush", func(p *sim.Proc) {
					buf, err := s.Heap.Alloc(64 << 10)
					if err != nil {
						panic(err)
					}
					record := func(c sim.Cycles) sim.Cycles {
						cursors = append(cursors, c)
						return c
					}
					now := p.Now()
					// 1. Flushes over cold caches: pure tag-array walks.
					now = record(s.FlushPrivateRange(buf, now, meter))
					now = record(s.FlushLLCRange(buf, now, meter))
					// 2. LLC-coherent DMA writes leave dirty LLC lines with
					// no private copies: the fused no-recall LLC flush and
					// the directory-skip private flush both fire.
					for i := range buf.Extents {
						ext := &buf.Extents[i]
						n := int64(s.P.GroupLines)
						if n > ext.Lines {
							n = ext.Lines
						}
						mt := s.homeTile(ext.Start)
						now = record(s.dmaGroupLLC(mt, s.Accs[0], ext.Start, n, true, false, now, meter))
					}
					now = record(s.FlushPrivateRange(buf, now, meter))
					now = record(s.FlushLLCRange(buf, now, meter))
					// 3. CPU writes create dirty private copies and owner
					// listings: the fast paths must stand down and match
					// the per-line recalls exactly.
					now = record(s.CPUTouchRange(s.CPUs[0], buf, 0, buf.Lines(), true, now, meter))
					now = record(s.FlushPrivateRange(buf, now, meter))
					now = record(s.FlushLLCRange(buf, now, meter))
					// 4. Dirty again, then an LLC flush with owners still
					// live: the recall-first walk, no private flush before.
					now = record(s.CPUTouchRange(s.CPUs[0], buf, 0, buf.Lines(), true, now, meter))
					now = record(s.FlushLLCRange(buf, now, meter))
					cursors = append(cursors, sim.Cycles(meter.OffChip))
				})
				if err := s.Eng.Run(); err != nil {
					t.Fatal(err)
				}
				return cursors
			}
			fastCur, refCur := run(fast), run(ref)
			if len(fastCur) != len(refCur) {
				t.Fatalf("cursor counts diverged: %d vs %d", len(fastCur), len(refCur))
			}
			for i := range refCur {
				if fastCur[i] != refCur[i] {
					t.Fatalf("step %d cursor/meter diverged: fast %d, ref %d", i, fastCur[i], refCur[i])
				}
			}
			compareSoCs(t, "flush end", fast, ref)
		})
	}
}

// TestBatchedCoherenceSplitInvocations runs split (hot, cold)
// invocations through RunAcceleratorSplit on the twin SoCs for every
// registered protocol: the per-region transfer schedule must match its
// per-line reference exactly like the uniform schedule does.
func TestBatchedCoherenceSplitInvocations(t *testing.T) {
	splits := [][2]Mode{
		{CohDMA, NonCohDMA}, // coherent hot region, non-coherent bulk
		{FullyCoh, CohDMA},  // cached hot region, coherent DMA bulk
		{NonCohDMA, LLCCohDMA},
	}
	for _, proto := range protocol.Names() {
		for _, sp := range splits {
			proto, hot, cold := proto, sp[0], sp[1]
			t.Run(fmt.Sprintf("%s/%s", proto, SplitAction(hot, cold)), func(t *testing.T) {
				cfg := testConfig()
				cfg.Protocol = proto
				fast, ref := coherencePair(t, cfg)
				invoke := func(s *SoC) InvocationStats {
					var out InvocationStats
					s.Eng.Go("invoke", func(p *sim.Proc) {
						buf, err := s.Heap.Alloc(96 << 10)
						if err != nil {
							panic(err)
						}
						meter := &Meter{}
						p.WaitUntil(s.CPUTouchRange(s.CPUs[0], buf, 0, buf.Lines(), true, p.Now(), meter))
						out = s.RunAcceleratorSplit(p, s.Accs[0], buf, hot, cold, sim.NewRNG(7))
					})
					if err := s.Eng.Run(); err != nil {
						t.Fatal(err)
					}
					return out
				}
				fs, rs := invoke(fast), invoke(ref)
				if fs != rs {
					t.Fatalf("split stats diverged:\n fast %+v\n  ref %+v", fs, rs)
				}
				compareSoCs(t, "split end", fast, ref)
			})
		}
	}
}
