package protocol

import (
	"strings"
	"testing"
)

// TestModePredicateMatrix pins the default-(mesi) mode predicate matrix
// — the flush and LLC-routing obligations the rest of the simulator
// reasons about — so a protocol-seam regression cannot silently change
// what the paper's four modes mean.
func TestModePredicateMatrix(t *testing.T) {
	cases := []struct {
		mode                            Mode
		privateFlush, llcFlush, usesLLC bool
	}{
		{NonCohDMA, true, true, false},
		{LLCCohDMA, true, false, true},
		{CohDMA, false, false, true},
		{FullyCoh, false, false, true},
	}
	for _, c := range cases {
		if got := c.mode.NeedsPrivateFlush(); got != c.privateFlush {
			t.Errorf("%v.NeedsPrivateFlush() = %v, want %v", c.mode, got, c.privateFlush)
		}
		if got := c.mode.NeedsLLCFlush(); got != c.llcFlush {
			t.Errorf("%v.NeedsLLCFlush() = %v, want %v", c.mode, got, c.llcFlush)
		}
		if got := c.mode.UsesLLC(); got != c.usesLLC {
			t.Errorf("%v.UsesLLC() = %v, want %v", c.mode, got, c.usesLLC)
		}
	}
	// The mesi Rules must agree with the Mode predicates cell for cell:
	// the predicates are the default protocol's semantics restated.
	mesi := Default()
	for _, m := range AllModes {
		if mesi.PrivateFlush[m] != m.NeedsPrivateFlush() ||
			mesi.LLCFlush[m] != m.NeedsLLCFlush() ||
			mesi.UsesLLC[m] != m.UsesLLC() {
			t.Errorf("mesi rules disagree with Mode predicates at %v", m)
		}
	}
}

func TestModeStringParseRoundTrip(t *testing.T) {
	want := []string{"non-coh-dma", "llc-coh-dma", "coh-dma", "full-coh"}
	for i, m := range AllModes {
		if m.String() != want[i] {
			t.Errorf("mode %d = %q, want %q", i, m.String(), want[i])
		}
		back, err := ParseMode(m.String())
		if err != nil || back != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), back, err)
		}
	}
	if s := Mode(9).String(); s != "Mode(9)" {
		t.Errorf("out-of-range mode String = %q", s)
	}
}

// Unknown-name errors must list every valid option, for modes and
// protocols alike.
func TestUnknownNamesListValidOptions(t *testing.T) {
	_, err := ParseMode("writeback")
	if err == nil {
		t.Fatal("unknown mode accepted")
	}
	for _, m := range AllModes {
		if !strings.Contains(err.Error(), m.String()) {
			t.Errorf("mode error %q does not list %q", err, m.String())
		}
	}
	_, err = Lookup("moesi")
	if err == nil {
		t.Fatal("unknown protocol accepted")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("protocol error %q does not list %q", err, name)
		}
	}
}

func TestRegistryDefaults(t *testing.T) {
	r, err := Lookup("")
	if err != nil || r.Name != DefaultName {
		t.Fatalf("empty lookup = %q, %v", r.Name, err)
	}
	if Default().Name != DefaultName {
		t.Fatal("Default() is not the default protocol")
	}
	names := Names()
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	if !found["mesi"] || !found["eci"] {
		t.Fatalf("registry names %v missing a built-in stack", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

// TestActionEncoding pins the fine-grain action-space layout: uniform
// actions are a numeric prefix (learner tables from the mode era keep
// their indices), and the twelve split pairs decode back to their
// (hot, cold) modes.
func TestActionEncoding(t *testing.T) {
	if NumActions != 16 {
		t.Fatalf("NumActions = %d, want 16", NumActions)
	}
	for _, m := range AllModes {
		a := ModeAction(m)
		if uint8(a) != uint8(m) {
			t.Errorf("ModeAction(%v) = %d: uniform actions must be the numeric prefix", m, a)
		}
		if a.IsSplit() || a.Hot() != m || a.Cold() != m || a.String() != m.String() {
			t.Errorf("uniform action %v decodes as (%v,%v,%q)", a, a.Hot(), a.Cold(), a.String())
		}
		if UniformActions[m] != a {
			t.Errorf("UniformActions[%v] = %v", m, UniformActions[m])
		}
	}
	seen := map[Action]bool{}
	for _, hot := range AllModes {
		for _, cold := range AllModes {
			if hot == cold {
				continue
			}
			a := SplitAction(hot, cold)
			if a < NumModes || a >= NumActions {
				t.Fatalf("SplitAction(%v,%v) = %d out of range", hot, cold, a)
			}
			if seen[a] {
				t.Fatalf("SplitAction(%v,%v) = %d collides", hot, cold, a)
			}
			seen[a] = true
			if !a.IsSplit() || a.Hot() != hot || a.Cold() != cold {
				t.Errorf("action %d decodes to (%v,%v), want (%v,%v)", a, a.Hot(), a.Cold(), hot, cold)
			}
			if want := hot.String() + "+" + cold.String(); a.String() != want {
				t.Errorf("action %d String = %q, want %q", a, a.String(), want)
			}
		}
	}
	if len(seen) != NumActions-NumModes {
		t.Fatalf("split actions cover %d codes, want %d", len(seen), NumActions-NumModes)
	}
}

func TestSplitActionPanics(t *testing.T) {
	for _, bad := range [][2]Mode{{CohDMA, CohDMA}, {NumModes, NonCohDMA}, {NonCohDMA, NumModes}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SplitAction(%v,%v) did not panic", bad[0], bad[1])
				}
			}()
			SplitAction(bad[0], bad[1])
		}()
	}
}

// Every registered protocol must satisfy the structural invariants the
// coherence flows assume.
func TestRegisteredProtocolsWellFormed(t *testing.T) {
	for _, name := range Names() {
		r, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if r.Name != name {
			t.Errorf("%s: rules carry name %q", name, r.Name)
		}
		// Recalls only make sense for modes the LLC serves.
		for _, m := range AllModes {
			if r.RecallOwners[m] && !r.UsesLLC[m] {
				t.Errorf("%s: recalls owners in %v, which bypasses the LLC", name, m)
			}
			if r.RecallOwners[m] && r.PrivateFlush[m] {
				t.Errorf("%s: %v both recalls owners and flushes private caches", name, m)
			}
		}
		// Fully-coherent accelerators participate like CPU caches: no
		// software flushes there.
		if r.PrivateFlush[FullyCoh] || r.LLCFlush[FullyCoh] || !r.UsesLLC[FullyCoh] {
			t.Errorf("%s: fully-coherent mode has DMA-style obligations", name)
		}
	}
}
