package protocol

import (
	"fmt"
	"sort"
	"strings"
)

// Rules is one named coherence protocol: the directory policy knobs
// the coherence flows interpret. Rules are pure data — both the
// run-batched fast paths and the per-line reference flows in
// internal/soc read the same descriptor, which is what makes the
// batched-vs-reference property test a conformance check for every
// registered protocol rather than only the default.
type Rules struct {
	// Name is the registry key.
	Name string
	// ExclusiveGrant grants a read miss (or an unshared, unowned read
	// hit) exclusive ownership, MESI-style, so a later write by the same
	// agent upgrades silently. Without it the directory only ever adds
	// the reader as a sharer (MSI-style grants).
	ExclusiveGrant bool
	// OwnerForward lets a recalled dirty owner forward its data without
	// occupying the LLC fill pipeline (the LLC copy updates in the
	// background): the recall completes at the writeback's arrival
	// instead of waiting LLCFillCycles behind the partition port.
	OwnerForward bool
	// PrivateFlush marks the modes whose invocations must be preceded by
	// a software flush of all private caches.
	PrivateFlush [NumModes]bool
	// LLCFlush marks the modes whose invocations must be preceded by a
	// software flush of the LLC.
	LLCFlush [NumModes]bool
	// UsesLLC marks the modes whose accelerator requests are served by
	// the LLC.
	UsesLLC [NumModes]bool
	// RecallOwners marks the DMA-through-LLC modes in which the
	// directory interrogates and recalls private copies in hardware
	// (paying the per-line CohDMACheckCycles penalty).
	RecallOwners [NumModes]bool
}

// DefaultName is the protocol an empty selection resolves to: the
// MESI-style stack the paper models.
const DefaultName = "mesi"

// registry holds the named protocols. Registration happens at init
// time only, so lookups need no locking.
var registry = map[string]Rules{}

// Register adds a protocol; duplicate names panic (registration is a
// programming-time act).
func Register(r Rules) {
	if r.Name == "" {
		panic("protocol: register with empty name")
	}
	if _, dup := registry[r.Name]; dup {
		panic(fmt.Sprintf("protocol: duplicate protocol %q", r.Name))
	}
	registry[r.Name] = r
}

// Names lists the registered protocols in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup resolves a protocol name ("" resolves to DefaultName).
func Lookup(name string) (Rules, error) {
	if name == "" {
		name = DefaultName
	}
	r, ok := registry[name]
	if !ok {
		return Rules{}, fmt.Errorf("protocol: unknown protocol %q (valid: %s)",
			name, strings.Join(Names(), ", "))
	}
	return r, nil
}

// Default returns the default protocol's rules.
func Default() Rules {
	r, err := Lookup(DefaultName)
	if err != nil {
		panic(err)
	}
	return r
}

func init() {
	// The paper's MESI-style stack: silent-exclusive read grants,
	// recalls through the LLC fill pipeline, software private flushes
	// before non-coherent and LLC-coherent DMA, and hardware recalls
	// only for coherent DMA. These rules reproduce the pre-seam flows
	// exactly; every golden report and cycle count pins that identity.
	Register(Rules{
		Name:           DefaultName,
		ExclusiveGrant: true,
		OwnerForward:   false,
		PrivateFlush:   [NumModes]bool{NonCohDMA: true, LLCCohDMA: true},
		LLCFlush:       [NumModes]bool{NonCohDMA: true},
		UsesLLC:        [NumModes]bool{LLCCohDMA: true, CohDMA: true, FullyCoh: true},
		RecallOwners:   [NumModes]bool{CohDMA: true},
	})
	// An ECI-style stack (modeled on ECI's customizable coherency stack
	// for hybrid FPGA-CPU systems): MSI-style grants (reads are never
	// granted silent-exclusive ownership), dirty owners forward recalled
	// data past the LLC fill pipeline, and the LLC-coherent DMA bridge
	// is hardware-coherent with private caches — it recalls owners
	// itself (paying the per-line directory interrogation), so the
	// software private flush is owed only before fully non-coherent DMA.
	Register(Rules{
		Name:           "eci",
		ExclusiveGrant: false,
		OwnerForward:   true,
		PrivateFlush:   [NumModes]bool{NonCohDMA: true},
		LLCFlush:       [NumModes]bool{NonCohDMA: true},
		UsesLLC:        [NumModes]bool{LLCCohDMA: true, CohDMA: true, FullyCoh: true},
		RecallOwners:   [NumModes]bool{LLCCohDMA: true, CohDMA: true},
	})
}
