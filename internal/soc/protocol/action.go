package protocol

import "fmt"

// Fine-grain coherence actions (Alsop et al., "A Case for Fine-grain
// Coherence Specialization in Heterogeneous Systems"): an agent
// decision is either a uniform coherence mode for the whole invocation
// — the paper's original action space — or a split that assigns
// distinct modes to the invocation's hot region (the leading,
// L2-sized, high-reuse prefix of the buffer) and its cold remainder.
//
// The encoding keeps the four uniform actions as a prefix (Action(m)
// == ModeAction(m) for every Mode m), so learners offered only uniform
// actions behave — and their value tables index — exactly as before
// the widening; the twelve ordered (hot != cold) pairs follow.

// Action is one agent decision over the fine-grain action space.
type Action uint8

// NumActions is the size of the action space: the four uniform mode
// actions plus the NumModes*(NumModes-1) = 12 ordered (hot, cold)
// split pairs.
const NumActions = NumModes + NumModes*(NumModes-1)

// ModeAction returns the uniform action for a mode.
func ModeAction(m Mode) Action { return Action(m) }

// UniformActions lists the uniform mode actions in paper order.
var UniformActions = [NumModes]Action{
	ModeAction(NonCohDMA), ModeAction(LLCCohDMA), ModeAction(CohDMA), ModeAction(FullyCoh),
}

// SplitAction returns the fine-grain action assigning hot to the
// invocation's hot region and cold to the remainder. It panics when
// hot == cold (that is the uniform action) or either mode is out of
// range.
func SplitAction(hot, cold Mode) Action {
	if hot >= NumModes || cold >= NumModes || hot == cold {
		panic(fmt.Sprintf("protocol: bad split action (%v, %v)", hot, cold))
	}
	c := Mode(0)
	if cold > hot {
		c = cold - 1
	} else {
		c = cold
	}
	return Action(NumModes + uint8(hot)*(NumModes-1) + uint8(c))
}

// IsSplit reports whether the action assigns distinct modes per region.
func (a Action) IsSplit() bool { return a >= NumModes }

// Hot returns the mode applied to the hot region (for uniform actions,
// the whole invocation's mode).
func (a Action) Hot() Mode {
	if a < NumModes {
		return Mode(a)
	}
	return Mode((a - NumModes) / (NumModes - 1))
}

// Cold returns the mode applied to the cold remainder (for uniform
// actions, the same as Hot).
func (a Action) Cold() Mode {
	if a < NumModes {
		return Mode(a)
	}
	hot := (a - NumModes) / (NumModes - 1)
	c := Mode((a - NumModes) % (NumModes - 1))
	if c >= Mode(hot) {
		c++
	}
	return c
}

// String names the action: the mode name for uniform actions,
// "hot+cold" for splits.
func (a Action) String() string {
	if !a.IsSplit() {
		return a.Hot().String()
	}
	return a.Hot().String() + "+" + a.Cold().String()
}
