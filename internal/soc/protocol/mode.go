// Package protocol defines the coherence-protocol seam of the
// simulated SoC: the accelerator coherence modes of the paper, the
// fine-grain (per-region) actions built on top of them, and the named,
// registry-backed protocol rule sets the coherence flows in
// internal/soc interpret.
//
// A protocol here is pure data (Rules): a small descriptor of the
// directory's grant, forward, recall and software-flush policy,
// consumed identically by the run-batched fast paths and the per-line
// reference flows of internal/soc. The reference flows are the
// defining spec — every registered protocol's batched path is pinned
// against its own reference by the batched-vs-reference property test
// — so a new protocol is correct by construction once its Rules are
// interpreted by both sides.
package protocol

import (
	"fmt"
	"strings"
)

// Mode is an accelerator cache-coherence mode (paper §2).
type Mode uint8

// The four coherence modes.
const (
	// NonCohDMA: requests bypass the hierarchy and access DRAM directly;
	// software must flush caches beforehand (which ones is a protocol
	// rule; see Rules).
	NonCohDMA Mode = iota
	// LLCCohDMA: requests go to the LLC; coherent with the LLC but not
	// necessarily with private caches — the protocol decides whether
	// software flushes them or the directory recalls them.
	LLCCohDMA
	// CohDMA: requests go to the LLC and the LLC recalls/invalidates
	// private copies as needed; no software flush.
	CohDMA
	// FullyCoh: the accelerator owns a private cache that participates in
	// the coherence protocol exactly like a processor cache.
	FullyCoh

	NumModes = 4
)

// AllModes lists the modes in paper order.
var AllModes = [NumModes]Mode{NonCohDMA, LLCCohDMA, CohDMA, FullyCoh}

// String returns the paper's short mode name.
func (m Mode) String() string {
	switch m {
	case NonCohDMA:
		return "non-coh-dma"
	case LLCCohDMA:
		return "llc-coh-dma"
	case CohDMA:
		return "coh-dma"
	case FullyCoh:
		return "full-coh"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// NeedsPrivateFlush reports whether the mode requires flushing private
// caches before the accelerator runs, under the default (mesi)
// protocol. Protocol variants redefine flush obligations through their
// Rules; use SoC.NeedsPrivateFlush for the active protocol's answer.
func (m Mode) NeedsPrivateFlush() bool { return m == NonCohDMA || m == LLCCohDMA }

// NeedsLLCFlush reports whether the mode requires flushing the LLC,
// under the default (mesi) protocol.
func (m Mode) NeedsLLCFlush() bool { return m == NonCohDMA }

// UsesLLC reports whether accelerator requests are served by the LLC,
// under the default (mesi) protocol.
func (m Mode) UsesLLC() bool { return m == LLCCohDMA || m == CohDMA || m == FullyCoh }

// modeNames joins all mode names for error messages.
func modeNames() string {
	names := make([]string, 0, NumModes)
	for _, m := range AllModes {
		names = append(names, m.String())
	}
	return strings.Join(names, ", ")
}

// ParseMode converts a mode name back to its value.
func ParseMode(s string) (Mode, error) {
	for _, m := range AllModes {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("soc: unknown coherence mode %q (valid: %s)", s, modeNames())
}
