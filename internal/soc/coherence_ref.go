package soc

import (
	"cohmeleon/internal/cache"
	"cohmeleon/internal/mem"
	"cohmeleon/internal/sim"
)

// Per-line reference implementations of the group flows. These are the
// naive loops the run-batched flows in coherence.go are defined
// against: state transitions, event counts and the timing cursor are
// specified here, line by line, and the batched flows must reproduce
// them bit-identically (the coherence property tests drive both sides
// over random traffic and compare cycles, meters and end states).
//
// They are not test-only code: the batched flows fall back here when a
// group violates the run preconditions — more lines than LLC sets (so
// two lines of one group could collide in a set) or than the 64-bit
// outcome masks — which degenerate random geometries can produce.

// cachedGroupAccessRef is the per-line reference for cachedGroupAccess.
func (s *SoC) cachedGroupAccessRef(agentID int, start mem.LineAddr, n int64, write bool, at sim.Cycles, meter *Meter) sim.Cycles {
	ag := &s.agents[agentID]
	t := at
	// Private-cache lookup occupancy for the whole group.
	_, t = ag.port.Acquire(t, sim.Cycles(n)*s.P.L2HitCycles)

	// Classify each line; collect the ones needing LLC service. The
	// scratch buffer is safe to share: exactly one simulation goroutine
	// runs at a time and this function never yields.
	misses := s.missScratch[:0]
	defer func() { s.missScratch = misses[:0] }()
	for i := int64(0); i < n; i++ {
		line := start + mem.LineAddr(i)
		st, hit := ag.cache.AccessUpgrade(line, write)
		if hit && (!write || st == cache.Modified || st == cache.Exclusive) {
			continue
		}
		// Miss, or write hit in Shared (needs ownership upgrade).
		misses = append(misses, line)
	}
	if len(misses) == 0 {
		return t
	}
	mt := s.homeTile(start)
	cp := s.cohPathTo(agentID, mt.Part)
	// One request header per group.
	t = cp.req.Send(0, t)

	var fillLines int64 // lines read from DRAM
	for _, line := range misses {
		_, t = mt.Port.Acquire(t, s.P.LLCLookupCycles)
		e, v, hit := mt.LLC.AccessOrInsert(line, cache.DirClean)
		if !hit {
			if !write {
				fillLines++
			}
			_, t = mt.Port.Acquire(t, s.P.LLCMissPerLine)
			t = s.evictLLCVictim(mt, v, t, meter)
		} else {
			if e.Owner != cache.NoOwner && e.Owner != agentID {
				t = s.recallFromOwner(mt, e, write, t, meter)
			}
			if write && e.HasSharers() {
				t = s.invalidateSharers(mt, e, t)
			}
		}
		if write {
			mt.LLC.SetOwner(e, agentID)
			mt.LLC.ClearSharers(e)
		} else if s.rules.ExclusiveGrant && e.Owner == cache.NoOwner && !e.HasSharers() {
			mt.LLC.SetOwner(e, agentID) // exclusive grant
		} else {
			if e.Owner == agentID {
				// Re-fetch after silent eviction: keep ownership.
			} else {
				mt.LLC.AddSharer(e, agentID)
			}
		}
	}
	if fillLines > 0 {
		// DRAM fills pay the burst latency once per group (MSHR overlap).
		t = mt.DRAM.Access(t, fillLines, false)
		meter.add(fillLines)
	}
	// Data response for the whole group.
	t = cp.rsp.Send(len(misses)*mem.LineBytes, t)
	// Fill the private cache; dirty victims write back (posted).
	for _, line := range misses {
		st := cache.Exclusive
		if write {
			st = cache.Modified
		} else if e := mt.LLC.Probe(line); e != nil && (e.HasSharers() || e.Owner != agentID) {
			st = cache.Shared
		}
		v := ag.cache.Insert(line, st)
		if v.Valid {
			s.handleL2Victim(ag, agentID, v, t, meter)
		}
	}
	return t
}

// handleL2Victim disposes of a line displaced from a private cache:
// dirty victims write back to their home LLC (posted); clean victims
// evict silently, leaving the directory to be lazily cleaned up.
func (s *SoC) handleL2Victim(ag *agent, agentID int, v cache.Victim, t sim.Cycles, meter *Meter) {
	if v.State.Dirty() {
		s.writebackToLLC(ag, agentID, v.Line, t, meter)
		return
	}
	// Silent clean eviction: directory state goes stale; recalls to
	// absent lines are tolerated.
	llc := s.homeTile(v.Line).LLC
	if e := llc.Probe(v.Line); e != nil {
		if e.Owner == agentID {
			llc.SetOwner(e, cache.NoOwner)
		}
		llc.RemoveSharer(e, agentID)
	}
}

// dmaGroupLLCRef is the per-line reference for dmaGroupLLC.
func (s *SoC) dmaGroupLLCRef(mt *MemTile, a *AccTile, start mem.LineAddr, n int64, write, recallOwners bool, at sim.Cycles, meter *Meter) sim.Cycles {
	dp := s.dmaPathTo(a.ID, mt.Part)
	var t sim.Cycles
	if write {
		// Data travels with the request.
		t = dp.up.Send(int(n)*mem.LineBytes, at)
	} else {
		t = dp.req.Send(0, at)
	}
	missState := cache.DirClean
	if write {
		missState = cache.DirDirty
	}
	lookup := s.P.LLCLookupCycles
	if recallOwners {
		lookup += s.P.CohDMACheckCycles
	}
	var fillLines int64
	for i := int64(0); i < n; i++ {
		line := start + mem.LineAddr(i)
		_, t = mt.Port.Acquire(t, lookup)
		e, v, hit := mt.LLC.AccessOrInsert(line, missState)
		if !hit {
			if !write {
				fillLines++
			}
			_, t = mt.Port.Acquire(t, s.P.LLCMissPerLine)
			t = s.evictLLCVictim(mt, v, t, meter)
			continue
		}
		if recallOwners && e.Owner != cache.NoOwner {
			t = s.recallFromOwner(mt, e, write, t, meter)
		}
		if write {
			if recallOwners && e.HasSharers() {
				t = s.invalidateSharers(mt, e, t)
			}
			// The bridge claims the line: any remaining directory state is
			// stale by construction (LLCCohDMA ran after a private flush).
			mt.LLC.SetOwner(e, cache.NoOwner)
			mt.LLC.ClearSharers(e)
			e.State = cache.DirDirty
		}
	}
	if fillLines > 0 {
		t = mt.DRAM.Access(t, fillLines, false)
		meter.add(fillLines)
	}
	if !write {
		t = dp.down.Send(int(n)*mem.LineBytes, t)
	}
	return t
}
