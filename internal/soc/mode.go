// Package soc assembles the simulated heterogeneous SoC: a 2D-mesh NoC
// connecting CPU tiles (with private L2 caches), accelerator tiles
// (each wrapped in a coherence-agnostic "socket" with an optional
// private cache), and memory tiles (an inclusive LLC partition with
// directory state plus a DRAM controller each). The socket implements
// the paper's four accelerator cache-coherence modes; hardware monitors
// expose off-chip access counts and accelerator cycle counters.
package soc

import "fmt"

// Mode is an accelerator cache-coherence mode (paper §2).
type Mode uint8

// The four coherence modes.
const (
	// NonCohDMA: requests bypass the hierarchy and access DRAM directly;
	// software must flush both private caches and the LLC beforehand.
	NonCohDMA Mode = iota
	// LLCCohDMA: requests go to the LLC; coherent with the LLC but not
	// with private caches, so software flushes private caches only.
	LLCCohDMA
	// CohDMA: requests go to the LLC and the LLC recalls/invalidates
	// private copies as needed; no software flush.
	CohDMA
	// FullyCoh: the accelerator owns a private cache that participates in
	// the MESI protocol exactly like a processor cache.
	FullyCoh

	NumModes = 4
)

// AllModes lists the modes in paper order.
var AllModes = [NumModes]Mode{NonCohDMA, LLCCohDMA, CohDMA, FullyCoh}

// String returns the paper's short mode name.
func (m Mode) String() string {
	switch m {
	case NonCohDMA:
		return "non-coh-dma"
	case LLCCohDMA:
		return "llc-coh-dma"
	case CohDMA:
		return "coh-dma"
	case FullyCoh:
		return "full-coh"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// NeedsPrivateFlush reports whether the mode requires flushing private
// caches before the accelerator runs.
func (m Mode) NeedsPrivateFlush() bool { return m == NonCohDMA || m == LLCCohDMA }

// NeedsLLCFlush reports whether the mode requires flushing the LLC.
func (m Mode) NeedsLLCFlush() bool { return m == NonCohDMA }

// UsesLLC reports whether accelerator requests are served by the LLC.
func (m Mode) UsesLLC() bool { return m == LLCCohDMA || m == CohDMA || m == FullyCoh }

// ParseMode converts a mode name back to its value.
func ParseMode(s string) (Mode, error) {
	for _, m := range AllModes {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("soc: unknown coherence mode %q", s)
}
