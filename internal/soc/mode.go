// Package soc assembles the simulated heterogeneous SoC: a 2D-mesh NoC
// connecting CPU tiles (with private L2 caches), accelerator tiles
// (each wrapped in a coherence-agnostic "socket" with an optional
// private cache), and memory tiles (an inclusive LLC partition with
// directory state plus a DRAM controller each). The socket implements
// the paper's four accelerator cache-coherence modes under a pluggable
// coherence protocol (internal/soc/protocol); hardware monitors expose
// off-chip access counts and accelerator cycle counters.
package soc

import "cohmeleon/internal/soc/protocol"

// Mode is an accelerator cache-coherence mode (paper §2). The type —
// and the fine-grain Action space built on it — is defined by the
// protocol seam; the aliases keep every existing call site intact.
type Mode = protocol.Mode

// Action is one agent decision over the fine-grain action space: a
// uniform mode, or a (hot, cold) per-region split. See protocol.Action.
type Action = protocol.Action

// The four coherence modes.
const (
	NonCohDMA = protocol.NonCohDMA
	LLCCohDMA = protocol.LLCCohDMA
	CohDMA    = protocol.CohDMA
	FullyCoh  = protocol.FullyCoh

	NumModes = protocol.NumModes
	// NumActions is the fine-grain action-space size: the four uniform
	// mode actions (a prefix, so Action(m) == ModeAction(m)) plus the
	// twelve ordered (hot, cold) split pairs.
	NumActions = protocol.NumActions
)

// AllModes lists the modes in paper order.
var AllModes = protocol.AllModes

// UniformActions lists the uniform mode actions in paper order.
var UniformActions = protocol.UniformActions

// ParseMode converts a mode name back to its value.
func ParseMode(s string) (Mode, error) { return protocol.ParseMode(s) }

// ModeAction returns the uniform action for a mode.
func ModeAction(m Mode) Action { return protocol.ModeAction(m) }

// SplitAction returns the fine-grain action assigning hot to the
// invocation's hot region and cold to the remainder.
func SplitAction(hot, cold Mode) Action { return protocol.SplitAction(hot, cold) }
