package soc

import (
	"fmt"

	"cohmeleon/internal/acc"
	"cohmeleon/internal/cache"
	"cohmeleon/internal/mem"
	"cohmeleon/internal/noc"
	"cohmeleon/internal/sim"
	"cohmeleon/internal/soc/protocol"
)

// MemTile is a memory tile: one LLC partition with directory state, its
// pipeline port, and the DRAM controller behind it.
type MemTile struct {
	Part  int // partition index
	Coord noc.Coord
	LLC   *cache.Directory
	Port  *sim.Resource
	DRAM  *mem.Controller
}

// CPUTile is a processor tile; its private L2 lives in the agent table.
type CPUTile struct {
	ID    int
	Coord noc.Coord
	Agent int
}

// AccTile is an accelerator tile: the accelerator spec plus its socket
// state. Agent is the coherent-agent index of the private cache, or
// NoAgent when the tile has none (FullyCoh unavailable).
type AccTile struct {
	ID       int
	InstName string
	Spec     *acc.Spec
	Coord    noc.Coord
	Agent    int
	// Busy serializes invocations: an LCA runs one task at a time.
	Busy *sim.Semaphore

	// Cumulative hardware monitor counters (per-invocation values are
	// returned by RunAccelerator).
	TotalInvocations int64
	TotalActive      sim.Cycles
	TotalComm        sim.Cycles
}

// HasPrivateCache reports whether the fully-coherent mode is available.
func (a *AccTile) HasPrivateCache() bool { return a.Agent != NoAgent }

// AvailableModes returns the coherence modes this tile supports.
func (a *AccTile) AvailableModes() []Mode {
	if a.HasPrivateCache() {
		return []Mode{NonCohDMA, LLCCohDMA, CohDMA, FullyCoh}
	}
	return []Mode{NonCohDMA, LLCCohDMA, CohDMA}
}

// NoAgent marks tiles without a private cache.
const NoAgent = -1

// agent is one coherent agent: a private cache, its port, and its mesh
// position. CPUs and cache-equipped accelerators are agents.
type agent struct {
	name  string
	coord noc.Coord
	cache *cache.Cache
	port  *sim.Resource
}

// cohPath bundles the four directed coherence routes between one agent
// and one memory tile. Every simulated coherence message travels one of
// these, so the routes are resolved once at construction and the hot
// flows send on them directly.
type cohPath struct {
	req noc.Path // agent -> mem: request headers (coh-req plane)
	rsp noc.Path // mem -> agent: data responses (coh-rsp plane)
	fwd noc.Path // mem -> agent: recalls and invalidations (coh-fwd plane)
	wb  noc.Path // agent -> mem: dirty data returns (coh-rsp plane)
}

// dmaPath bundles the three directed DMA routes between one accelerator
// tile and one memory tile.
type dmaPath struct {
	req  noc.Path // acc -> mem: request headers (dma-req plane)
	up   noc.Path // acc -> mem: write payloads (dma-data plane)
	down noc.Path // mem -> acc: read payloads (dma-data plane)
}

// SoC is a fully assembled simulated system.
type SoC struct {
	Cfg *Config
	P   Params
	// rules is the active coherence protocol, resolved from
	// Cfg.Protocol at build time; every flow and flush-obligation
	// decision reads it.
	rules protocol.Rules
	Eng   *sim.Engine
	Mesh  *noc.Mesh
	Map   *mem.AddressMap
	Heap  *mem.Allocator

	Mem  []*MemTile
	CPUs []*CPUTile
	Accs []*AccTile

	// CPUPool limits concurrent software execution to the CPU count.
	CPUPool *sim.Semaphore

	agents []agent
	// Precomputed NoC routes: cohPaths[agentID*len(Mem)+part] and
	// dmaPaths[accID*len(Mem)+part]. See cohPath/dmaPath.
	cohPaths    []cohPath
	dmaPaths    []dmaPath
	missScratch []mem.LineAddr // reused by cachedGroupAccess
	// Run-batched flow scratch (one simulation goroutine at a time, and
	// the group flows never yield, so sharing is safe): the directory
	// run-outcome buffer, the materialized line list of a DMA group, and
	// the deferred private-cache victims of a write fill.
	dirRun        cache.DirRun
	groupScratch  []mem.LineAddr
	l2VictScratch []cache.Victim
	// refCoherence forces the per-line reference flows (coherence_ref.go)
	// everywhere; the property tests use it to pit the batched flows
	// against the reference on otherwise-identical SoCs.
	refCoherence bool
	// Flush scratch, reused across flush calls (safe for the same reason
	// as missScratch: one simulation goroutine runs at a time and the
	// flush helpers never yield). flushDirty has one slice per partition.
	flushScratch []mem.LineAddr
	flushDirty   [][]mem.LineAddr
	// Fine-grain split scratch: the hot- and cold-region sub-ranges of
	// one chunk's transfer list (doTransfersSplit).
	splitHotScratch  []acc.LineRange
	splitColdScratch []acc.LineRange
	// Run-resolution table for the buffer most recently used by
	// doTransfers: logical page -> extent index, plus the logical line
	// prefix of each extent. Rebuilt (O(pages)) whenever the buffer
	// changes; resolves any logical offset to its extent in O(1) instead
	// of walking the extent list per range.
	runBuf  *mem.Buffer
	runExt  []int32
	runPre  []int64
	runHome []*MemTile // home tile per extent (an extent never crosses partitions)
}

// llcAssoc and l2Assoc fix the cache geometries (ESP uses set-associative
// caches; exact associativity is not evaluated in the paper).
const (
	llcAssoc = 8
	l2Assoc  = 4
)

// Build assembles the SoC described by the configuration on a fresh
// simulation engine.
func (c *Config) Build() (*SoC, error) { return c.BuildOn(sim.NewEngine()) }

// BuildOn assembles the SoC on the given engine, which must be idle — a
// fresh engine, or one whose previous run completed and that has been
// Reset. Harnesses use it to reuse one kernel (its event heap, ready
// ring, and warmed capacity) across the many fresh-SoC trials of an
// experiment fan-out.
func (c *Config) BuildOn(eng *sim.Engine) (*SoC, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rules, err := protocol.Lookup(c.Protocol)
	if err != nil {
		return nil, err // unreachable after Validate, but stay robust
	}
	p := c.Params
	s := &SoC{Cfg: c, P: p, rules: rules, Eng: eng}
	s.Mesh = noc.NewMesh(c.MeshW, c.MeshH)
	s.Map = mem.NewAddressMap(c.MemTiles, p.DRAMPartitionMB<<20)
	s.Heap = mem.NewAllocator(s.Map)
	s.CPUPool = sim.NewSemaphore(s.Eng, "cpus", c.CPUs)

	coords := placeTiles(c)
	for i := 0; i < c.MemTiles; i++ {
		s.Mem = append(s.Mem, &MemTile{
			Part:  i,
			Coord: coords.mem[i],
			LLC:   cache.NewDirectory(fmt.Sprintf("llc%d", i), c.LLCSliceBytes(), llcAssoc),
			Port:  sim.NewResource(fmt.Sprintf("llc%d-port", i)),
			DRAM:  mem.NewController(i, p.DRAMLatencyCycles, p.DRAMPerLineCycles),
		})
	}
	for i := 0; i < c.CPUs; i++ {
		aid := s.addAgent(fmt.Sprintf("cpu%d", i), coords.cpu[i], c.L2Bytes())
		s.CPUs = append(s.CPUs, &CPUTile{ID: i, Coord: coords.cpu[i], Agent: aid})
	}
	for i, inst := range c.Accs {
		aid := NoAgent
		if inst.PrivateCache {
			aid = s.addAgent(inst.InstName, coords.acc[i], c.L2Bytes())
		}
		s.Accs = append(s.Accs, &AccTile{
			ID:       i,
			InstName: inst.InstName,
			Spec:     inst.Spec,
			Coord:    coords.acc[i],
			Agent:    aid,
			Busy:     sim.NewSemaphore(s.Eng, inst.InstName+"-busy", 1),
		})
	}
	if len(s.agents) > 64 {
		return nil, fmt.Errorf("soc %s: %d coherent agents exceed directory bitmask width", c.Name, len(s.agents))
	}
	s.buildPaths()
	return s, nil
}

// buildPaths resolves every (agent, memory tile) and (accelerator,
// memory tile) route pair once. The tables are small — tiles² at most —
// and turn each simulated message into a bare link walk.
func (s *SoC) buildPaths() {
	for ai := range s.agents {
		ag := &s.agents[ai]
		for _, mt := range s.Mem {
			s.cohPaths = append(s.cohPaths, cohPath{
				req: s.Mesh.NewPath(noc.PlaneCohReq, ag.coord, mt.Coord),
				rsp: s.Mesh.NewPath(noc.PlaneCohRsp, mt.Coord, ag.coord),
				fwd: s.Mesh.NewPath(noc.PlaneCohFwd, mt.Coord, ag.coord),
				wb:  s.Mesh.NewPath(noc.PlaneCohRsp, ag.coord, mt.Coord),
			})
		}
	}
	for _, a := range s.Accs {
		for _, mt := range s.Mem {
			s.dmaPaths = append(s.dmaPaths, dmaPath{
				req:  s.Mesh.NewPath(noc.PlaneDMAReq, a.Coord, mt.Coord),
				up:   s.Mesh.NewPath(noc.PlaneDMAData, a.Coord, mt.Coord),
				down: s.Mesh.NewPath(noc.PlaneDMAData, mt.Coord, a.Coord),
			})
		}
	}
}

// cohPathTo returns the coherence routes between an agent and a
// memory tile.
func (s *SoC) cohPathTo(agentID, part int) *cohPath {
	return &s.cohPaths[agentID*len(s.Mem)+part]
}

// dmaPathTo returns the DMA routes between an accelerator tile and a
// memory tile.
func (s *SoC) dmaPathTo(accID, part int) *dmaPath {
	return &s.dmaPaths[accID*len(s.Mem)+part]
}

func (s *SoC) addAgent(name string, coord noc.Coord, l2Bytes int64) int {
	id := len(s.agents)
	s.agents = append(s.agents, agent{
		name:  name,
		coord: coord,
		cache: cache.New(name+"-l2", l2Bytes, l2Assoc),
		port:  sim.NewResource(name + "-l2-port"),
	})
	return id
}

// Protocol returns the active coherence-protocol rules.
func (s *SoC) Protocol() protocol.Rules { return s.rules }

// NeedsPrivateFlush reports whether the active protocol requires a
// software flush of private caches before an invocation in the mode.
func (s *SoC) NeedsPrivateFlush(m Mode) bool { return s.rules.PrivateFlush[m] }

// NeedsLLCFlush reports whether the active protocol requires a
// software flush of the LLC before an invocation in the mode.
func (s *SoC) NeedsLLCFlush(m Mode) bool { return s.rules.LLCFlush[m] }

// AgentCache exposes an agent's private cache (for tests and monitors).
func (s *SoC) AgentCache(id int) *cache.Cache { return s.agents[id].cache }

// Agents returns the number of coherent agents.
func (s *SoC) Agents() int { return len(s.agents) }

// AccByName returns the accelerator tile with the given instance name.
func (s *SoC) AccByName(inst string) (*AccTile, error) {
	for _, a := range s.Accs {
		if a.InstName == inst {
			return a, nil
		}
	}
	return nil, fmt.Errorf("soc %s: no accelerator instance %q", s.Cfg.Name, inst)
}

// AccsBySpec returns all tiles whose spec name matches.
func (s *SoC) AccsBySpec(specName string) []*AccTile {
	var out []*AccTile
	for _, a := range s.Accs {
		if a.Spec.Name == specName {
			out = append(out, a)
		}
	}
	return out
}

// homeTile returns the memory tile owning the line.
func (s *SoC) homeTile(line mem.LineAddr) *MemTile {
	return s.Mem[s.Map.Home(line)]
}

// placement assigns mesh coordinates: memory tiles on the corners (then
// remaining edge cells), as ESP places them for channel balance; CPUs,
// the auxiliary tile, and accelerators fill the remaining cells
// row-major. The layout is deterministic for a given configuration.
type placement struct {
	mem []noc.Coord
	cpu []noc.Coord
	acc []noc.Coord
}

// AccMemDistances returns, for each accelerator instance in
// configuration order, the mean Manhattan hop distance to the memory
// tiles under the deterministic placement Build uses. Analytical cost
// models consume it without assembling a SoC; the values match the
// coordinates a built SoC's tiles would carry because both derive from
// placeTiles. The configuration must be valid.
func AccMemDistances(c *Config) []float64 {
	pl := placeTiles(c)
	out := make([]float64, len(pl.acc))
	for i, a := range pl.acc {
		sum := 0
		for _, m := range pl.mem {
			dx, dy := a.X-m.X, a.Y-m.Y
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			sum += dx + dy
		}
		out[i] = float64(sum) / float64(len(pl.mem))
	}
	return out
}

func placeTiles(c *Config) placement {
	w, h := c.MeshW, c.MeshH
	taken := make(map[noc.Coord]bool)
	var pl placement

	corners := []noc.Coord{{X: 0, Y: 0}, {X: w - 1, Y: 0}, {X: 0, Y: h - 1}, {X: w - 1, Y: h - 1}}
	for _, co := range corners {
		if len(pl.mem) == c.MemTiles {
			break
		}
		if !taken[co] {
			taken[co] = true
			pl.mem = append(pl.mem, co)
		}
	}
	// More than four memory tiles: continue along the top and bottom edges.
	for x := 1; len(pl.mem) < c.MemTiles && x < w-1; x++ {
		for _, y := range []int{0, h - 1} {
			co := noc.Coord{X: x, Y: y}
			if len(pl.mem) < c.MemTiles && !taken[co] {
				taken[co] = true
				pl.mem = append(pl.mem, co)
			}
		}
	}

	next := func() noc.Coord {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				co := noc.Coord{X: x, Y: y}
				if !taken[co] {
					taken[co] = true
					return co
				}
			}
		}
		panic("soc: mesh full during placement (Validate should have caught this)")
	}
	for i := 0; i < c.CPUs; i++ {
		pl.cpu = append(pl.cpu, next())
	}
	next() // auxiliary tile (UART, interrupt controller): occupies a cell
	for range c.Accs {
		pl.acc = append(pl.acc, next())
	}
	return pl
}
