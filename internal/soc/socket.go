package soc

import (
	"fmt"

	"cohmeleon/internal/acc"
	"cohmeleon/internal/mem"
	"cohmeleon/internal/sim"
)

// This file implements the accelerator socket: the ESP-style wrapper
// that executes an accelerator's access plan against the memory
// hierarchy under a chosen coherence mode. The accelerator itself is
// coherence-agnostic — it emits logical reads, computes, and emits
// logical writes; the socket translates them into the mode's datapath.

// InvocationStats is what the hardware monitors report for one
// invocation: total active cycles, communication cycles, and the
// ground-truth off-chip accesses the invocation caused (the latter is
// simulator-only; the runtime must use the monitor approximation).
type InvocationStats struct {
	Start      sim.Cycles
	End        sim.Cycles
	CommCycles sim.Cycles
	OffChip    int64
	Chunks     int
}

// Active returns the invocation's busy cycles.
func (st InvocationStats) Active() sim.Cycles { return st.End - st.Start }

// yieldBudget bounds how far ahead of the engine clock an invocation
// may precompute before yielding to concurrent processes.
const yieldBudget sim.Cycles = 20000

// bufView resolves logical line offsets of a buffer into physical runs.
type bufView struct {
	buf    *mem.Buffer
	prefix []int64 // lines before each extent
}

func newBufView(buf *mem.Buffer) bufView {
	prefix := make([]int64, len(buf.Extents)+1)
	for i, e := range buf.Extents {
		prefix[i+1] = prefix[i] + e.Lines
	}
	return bufView{buf: buf, prefix: prefix}
}

// runs decomposes a logical range into physical (start, n) runs, each
// within a single extent (and therefore a single memory partition).
func (v bufView) runs(lr acc.LineRange, emit func(start mem.LineAddr, n int64)) {
	remaining := lr.Lines
	logical := lr.Start
	for i, e := range v.buf.Extents {
		if remaining <= 0 {
			return
		}
		if logical >= v.prefix[i+1] {
			continue
		}
		off := logical - v.prefix[i]
		n := e.Lines - off
		if n > remaining {
			n = remaining
		}
		emit(e.Start+mem.LineAddr(off), n)
		logical += n
		remaining -= n
	}
	if remaining > 0 {
		panic(fmt.Sprintf("soc: logical range [%d,+%d) beyond buffer", lr.Start, lr.Lines))
	}
}

// contains reports whether the physical line belongs to the buffer.
func bufContains(buf *mem.Buffer, line mem.LineAddr) bool {
	for _, e := range buf.Extents {
		if line >= e.Start && line < e.End() {
			return true
		}
	}
	return false
}

// doTransfers executes the plan's read or write ranges under the mode,
// advancing the time cursor serially (an ESP DMA engine keeps one
// transaction in flight; parallelism comes from concurrent tiles).
func (s *SoC) doTransfers(a *AccTile, view bufView, ranges []acc.LineRange, mode Mode, write bool, at sim.Cycles, meter *Meter) sim.Cycles {
	t := at
	group := int64(s.P.GroupLines)
	for _, lr := range ranges {
		view.runs(lr, func(start mem.LineAddr, n int64) {
			switch mode {
			case NonCohDMA:
				// Whole run in one burst: the long-burst advantage of
				// bypassing the hierarchy.
				t = s.dmaGroupNonCoh(a, start, n, write, t, meter)
			case LLCCohDMA, CohDMA:
				for off := int64(0); off < n; off += group {
					g := group
					if off+g > n {
						g = n - off
					}
					t = s.dmaGroupLLC(a, start+mem.LineAddr(off), g, write, mode == CohDMA, t, meter)
				}
			case FullyCoh:
				for off := int64(0); off < n; off += group {
					g := group
					if off+g > n {
						g = n - off
					}
					t = s.cachedGroupAccess(a.Agent, start+mem.LineAddr(off), g, write, t, meter)
				}
			default:
				panic(fmt.Sprintf("soc: unknown mode %v", mode))
			}
		})
	}
	return t
}

// RunAccelerator executes one invocation of the accelerator on the
// dataset under the given coherence mode, with double-buffered chunk
// pipelining (the next chunk's reads are prefetched during the current
// chunk's compute). It must run inside a simulation process; the call
// blocks in virtual time until the invocation completes. rng drives
// irregular access selection.
//
// FullyCoh requires the tile to have a private cache.
func (s *SoC) RunAccelerator(p *sim.Proc, a *AccTile, buf *mem.Buffer, mode Mode, rng *sim.RNG) InvocationStats {
	if mode == FullyCoh && !a.HasPrivateCache() {
		panic(fmt.Sprintf("soc: %s has no private cache; FullyCoh unavailable", a.InstName))
	}
	plan := acc.NewPlan(a.Spec, buf.Bytes, rng)
	view := newBufView(buf)
	meter := &Meter{}
	start := p.Now()

	var cur, next acc.ChunkPlan
	var comm sim.Cycles
	chunks := 0

	hasCur := plan.Next(&cur)
	fetchIssue := start
	var fetchDone sim.Cycles
	if hasCur {
		fetchDone = s.doTransfers(a, view, cur.Reads, mode, false, start, meter)
	}
	prevComputeDone := start
	lastWriteDone := start

	for hasCur {
		chunks++
		computeStart := fetchDone
		if prevComputeDone > computeStart {
			computeStart = prevComputeDone
		}
		computeDone := computeStart + cur.Compute
		comm += fetchDone - fetchIssue

		// Prefetch the next chunk while this one computes.
		hasNext := plan.Next(&next)
		var nextIssue, nextDone sim.Cycles
		if hasNext {
			nextIssue = computeStart
			nextDone = s.doTransfers(a, view, next.Reads, mode, false, nextIssue, meter)
		}

		if len(cur.Writes) > 0 {
			wDone := s.doTransfers(a, view, cur.Writes, mode, true, computeDone, meter)
			comm += wDone - computeDone
			if wDone > lastWriteDone {
				lastWriteDone = wDone
			}
		}
		prevComputeDone = computeDone
		// Yield so concurrent accelerators interleave. Yielding every
		// chunk would cost a goroutine handoff per 16 kB of data; yielding
		// on a virtual-time budget keeps fairness (reservation lookahead
		// stays bounded) at a fraction of the cost.
		if computeDone-p.Now() > yieldBudget {
			p.WaitUntil(computeDone)
		}

		cur, next = next, cur
		hasCur = hasNext
		fetchIssue, fetchDone = nextIssue, nextDone
	}

	end := prevComputeDone
	if lastWriteDone > end {
		end = lastWriteDone
	}
	p.WaitUntil(end)
	if total := end - start; comm > total {
		comm = total // overlapped read+write phases cannot exceed wall clock
	}

	a.TotalInvocations++
	a.TotalActive += end - start
	a.TotalComm += comm
	return InvocationStats{
		Start:      start,
		End:        end,
		CommCycles: comm,
		OffChip:    meter.OffChip,
		Chunks:     chunks,
	}
}
