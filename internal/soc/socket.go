package soc

import (
	"fmt"

	"cohmeleon/internal/acc"
	"cohmeleon/internal/mem"
	"cohmeleon/internal/sim"
)

// This file implements the accelerator socket: the ESP-style wrapper
// that executes an accelerator's access plan against the memory
// hierarchy under a chosen coherence mode. The accelerator itself is
// coherence-agnostic — it emits logical reads, computes, and emits
// logical writes; the socket translates them into the mode's datapath.

// InvocationStats is what the hardware monitors report for one
// invocation: total active cycles, communication cycles, and the
// ground-truth off-chip accesses the invocation caused (the latter is
// simulator-only; the runtime must use the monitor approximation).
type InvocationStats struct {
	Start      sim.Cycles
	End        sim.Cycles
	CommCycles sim.Cycles
	OffChip    int64
	Chunks     int
}

// Active returns the invocation's busy cycles.
func (st InvocationStats) Active() sim.Cycles { return st.End - st.Start }

// yieldBudget bounds how far ahead of the engine clock an invocation
// may precompute before yielding to concurrent processes.
const yieldBudget sim.Cycles = 20000

// forEachRun decomposes a logical line range of the buffer into physical
// (start, n) runs, each within a single extent (and therefore a single
// memory partition). It walks the extent list directly, so it neither
// allocates nor needs a precomputed prefix table.
func forEachRun(buf *mem.Buffer, lr acc.LineRange, emit func(start mem.LineAddr, n int64)) {
	remaining := lr.Lines
	logical := lr.Start
	var base int64 // lines before the current extent
	for i := range buf.Extents {
		if remaining <= 0 {
			return
		}
		e := &buf.Extents[i]
		if logical >= base+e.Lines {
			base += e.Lines
			continue
		}
		off := logical - base
		n := e.Lines - off
		if n > remaining {
			n = remaining
		}
		emit(e.Start+mem.LineAddr(off), n)
		logical += n
		remaining -= n
		base += e.Lines
	}
	if remaining > 0 {
		panic(fmt.Sprintf("soc: logical range [%d,+%d) beyond buffer", lr.Start, lr.Lines))
	}
}

// contains reports whether the physical line belongs to the buffer.
func bufContains(buf *mem.Buffer, line mem.LineAddr) bool {
	for _, e := range buf.Extents {
		if line >= e.Start && line < e.End() {
			return true
		}
	}
	return false
}

// doTransfers executes the plan's read or write ranges under the mode,
// advancing the time cursor serially (an ESP DMA engine keeps one
// transaction in flight; parallelism comes from concurrent tiles).
//
// This is the innermost dispatch of every simulated transfer: the extent
// walk is inlined rather than routed through forEachRun (closure capture
// of the time cursor shows up in CPU profiles), and each resolved run is
// dispatched immediately — the mode switch inside the loop is a
// perfectly-predicted branch, cheaper than materializing a run list.
func (s *SoC) doTransfers(a *AccTile, buf *mem.Buffer, ranges []acc.LineRange, mode Mode, write bool, at sim.Cycles, meter *Meter) sim.Cycles {
	t := at
	extents := buf.Extents
	if len(extents) == 1 {
		// Single-extent buffer (any footprint up to one page): logical
		// offsets map 1:1 onto the extent, no walk needed. This is the
		// common case; the mode dispatch and the (accelerator, memory
		// tile) route resolution hoist out of the per-range loop —
		// strided and irregular plans emit one range per line, so the
		// loop body is the innermost code of the simulator.
		e := &extents[0]
		mt := s.homeTile(e.Start)
		switch mode {
		case NonCohDMA:
			dp := s.dmaPathTo(a.ID, mt.Part)
			for _, lr := range ranges {
				if lr.Start+lr.Lines > e.Lines {
					panic(fmt.Sprintf("soc: logical range [%d,+%d) beyond buffer", lr.Start, lr.Lines))
				}
				t = s.dmaRunNonCoh(dp, mt, e.Start+mem.LineAddr(lr.Start), lr.Lines, write, t, meter)
			}
		default:
			for _, lr := range ranges {
				if lr.Start+lr.Lines > e.Lines {
					panic(fmt.Sprintf("soc: logical range [%d,+%d) beyond buffer", lr.Start, lr.Lines))
				}
				t = s.dispatchRun(a, mt, e.Start+mem.LineAddr(lr.Start), lr.Lines, mode, write, t, meter)
			}
		}
		return t
	}
	s.ensureRunTable(buf)
	runExt, runPre, runHome := s.runExt, s.runPre, s.runHome
	// The DMA routes of the extents' home tiles, resolved lazily once
	// per (invocation, extent): strided and irregular plans emit one
	// range per line, so the per-range body below must not re-derive
	// the route. Index parallel to runHome; nil until first use.
	var nonCohDP *dmaPath
	nonCohEI := -1
	for _, lr := range ranges {
		logical := lr.Start
		// O(1) lookup of the extent containing the range start.
		pi := logical >> mem.PageLineShift
		if pi < 0 || pi >= int64(len(runExt)) {
			panic(fmt.Sprintf("soc: logical range [%d,+%d) beyond buffer", lr.Start, lr.Lines))
		}
		ei := int(runExt[pi])
		if lr.Lines == 1 {
			// Single-line range (strided and irregular accelerator
			// patterns): no extent walk, the containing extent is final.
			start := extents[ei].Start + mem.LineAddr(logical-runPre[ei])
			if mode == NonCohDMA {
				if ei != nonCohEI {
					nonCohDP, nonCohEI = s.dmaPathTo(a.ID, runHome[ei].Part), ei
				}
				t = s.dmaRunNonCoh(nonCohDP, runHome[ei], start, 1, write, t, meter)
			} else {
				t = s.dispatchRun(a, runHome[ei], start, 1, mode, write, t, meter)
			}
			continue
		}
		remaining := lr.Lines
		base := runPre[ei]
		for remaining > 0 {
			if ei >= len(extents) {
				panic(fmt.Sprintf("soc: logical range [%d,+%d) beyond buffer", lr.Start, lr.Lines))
			}
			e := &extents[ei]
			off := logical - base
			n := e.Lines - off
			if n > remaining {
				n = remaining
			}
			t = s.dispatchRun(a, runHome[ei], e.Start+mem.LineAddr(off), n, mode, write, t, meter)
			logical += n
			remaining -= n
			base += e.Lines
			ei++
		}
	}
	return t
}

// dispatchRun sends one physical run — a contiguous line range within a
// single extent, so a single home tile — through the mode's datapath,
// splitting it into hardware groups where the mode requires.
func (s *SoC) dispatchRun(a *AccTile, mt *MemTile, start mem.LineAddr, n int64, mode Mode, write bool, t sim.Cycles, meter *Meter) sim.Cycles {
	switch mode {
	case NonCohDMA:
		// Whole run in one burst: the long-burst advantage of bypassing
		// the hierarchy.
		return s.dmaGroupNonCoh(mt, a, start, n, write, t, meter)
	case LLCCohDMA, CohDMA:
		recall := s.rules.RecallOwners[mode]
		group := int64(s.P.GroupLines)
		for o := int64(0); o < n; o += group {
			g := group
			if o+g > n {
				g = n - o
			}
			t = s.dmaGroupLLC(mt, a, start+mem.LineAddr(o), g, write, recall, t, meter)
		}
		return t
	case FullyCoh:
		group := int64(s.P.GroupLines)
		for o := int64(0); o < n; o += group {
			g := group
			if o+g > n {
				g = n - o
			}
			t = s.cachedGroupAccess(a.Agent, start+mem.LineAddr(o), g, write, t, meter)
		}
		return t
	default:
		panic(fmt.Sprintf("soc: unknown mode %v", mode))
	}
}

// splitRanges partitions logical ranges at the hot/cold boundary: the
// part of each range below hotLines lands in hot, the rest in cold.
// Ranges keep their relative order within each region, so each region's
// transfer stream is deterministic.
func splitRanges(ranges []acc.LineRange, hotLines int64, hot, cold []acc.LineRange) ([]acc.LineRange, []acc.LineRange) {
	for _, lr := range ranges {
		if lr.Start < hotLines {
			n := hotLines - lr.Start
			if n > lr.Lines {
				n = lr.Lines
			}
			hot = append(hot, acc.LineRange{Start: lr.Start, Lines: n})
			if lr.Lines > n {
				cold = append(cold, acc.LineRange{Start: hotLines, Lines: lr.Lines - n})
			}
		} else {
			cold = append(cold, lr)
		}
	}
	return hot, cold
}

// doTransfersSplit executes the plan's ranges under a fine-grain split:
// accesses to the buffer's hot region (the leading hotLines lines) use
// hotMode, the remainder coldMode. The hot region's transfers issue
// first; the cursor stays serial, like doTransfers (one DMA transaction
// in flight per socket).
func (s *SoC) doTransfersSplit(a *AccTile, buf *mem.Buffer, ranges []acc.LineRange, hotMode, coldMode Mode, hotLines int64, write bool, at sim.Cycles, meter *Meter) sim.Cycles {
	hotR, coldR := splitRanges(ranges, hotLines, s.splitHotScratch[:0], s.splitColdScratch[:0])
	t := at
	if len(hotR) > 0 {
		t = s.doTransfers(a, buf, hotR, hotMode, write, t, meter)
	}
	if len(coldR) > 0 {
		t = s.doTransfers(a, buf, coldR, coldMode, write, t, meter)
	}
	s.splitHotScratch, s.splitColdScratch = hotR[:0], coldR[:0]
	return t
}

// HotLines returns the size of the fine-grain hot region in lines: the
// leading L2-sized prefix of an invocation's buffer (the region whose
// reuse a private-cache-sized window can actually capture).
func (s *SoC) HotLines() int64 { return s.Cfg.L2Bytes() / mem.LineBytes }

// ensureRunTable (re)builds the logical-page -> extent lookup table for
// buf. Buffers are immutable once allocated, so identity comparison is
// enough to reuse the table across the many doTransfers calls of one
// invocation.
func (s *SoC) ensureRunTable(buf *mem.Buffer) {
	if s.runBuf == buf {
		return
	}
	s.runExt = s.runExt[:0]
	s.runPre = s.runPre[:0]
	s.runHome = s.runHome[:0]
	var base int64
	for ei := range buf.Extents {
		s.runPre = append(s.runPre, base)
		s.runHome = append(s.runHome, s.homeTile(buf.Extents[ei].Start))
		lines := buf.Extents[ei].Lines
		for p := int64(0); p < lines>>mem.PageLineShift; p++ {
			s.runExt = append(s.runExt, int32(ei))
		}
		base += lines
	}
	s.runBuf = buf
}

// RunAccelerator executes one invocation of the accelerator on the
// dataset under the given coherence mode, with double-buffered chunk
// pipelining (the next chunk's reads are prefetched during the current
// chunk's compute). It must run inside a simulation process; the call
// blocks in virtual time until the invocation completes. rng drives
// irregular access selection.
//
// FullyCoh requires the tile to have a private cache.
func (s *SoC) RunAccelerator(p *sim.Proc, a *AccTile, buf *mem.Buffer, mode Mode, rng *sim.RNG) InvocationStats {
	if mode == FullyCoh && !a.HasPrivateCache() {
		panic(fmt.Sprintf("soc: %s has no private cache; FullyCoh unavailable", a.InstName))
	}
	plan := acc.NewPlan(a.Spec, buf.Bytes, rng)
	var meter Meter // stays on the stack: callees never retain it
	start := p.Now()

	var cur, next acc.ChunkPlan
	var comm sim.Cycles
	chunks := 0

	hasCur := plan.Next(&cur)
	fetchIssue := start
	var fetchDone sim.Cycles
	if hasCur {
		fetchDone = s.doTransfers(a, buf, cur.Reads, mode, false, start, &meter)
	}
	prevComputeDone := start
	lastWriteDone := start

	for hasCur {
		chunks++
		computeStart := fetchDone
		if prevComputeDone > computeStart {
			computeStart = prevComputeDone
		}
		computeDone := computeStart + cur.Compute
		comm += fetchDone - fetchIssue

		// Prefetch the next chunk while this one computes.
		hasNext := plan.Next(&next)
		var nextIssue, nextDone sim.Cycles
		if hasNext {
			nextIssue = computeStart
			nextDone = s.doTransfers(a, buf, next.Reads, mode, false, nextIssue, &meter)
		}

		if len(cur.Writes) > 0 {
			wDone := s.doTransfers(a, buf, cur.Writes, mode, true, computeDone, &meter)
			comm += wDone - computeDone
			if wDone > lastWriteDone {
				lastWriteDone = wDone
			}
		}
		prevComputeDone = computeDone
		// Yield so concurrent accelerators interleave. Yielding every
		// chunk would cost a goroutine handoff per 16 kB of data; yielding
		// on a virtual-time budget keeps fairness (reservation lookahead
		// stays bounded) at a fraction of the cost.
		if computeDone-p.Now() > yieldBudget {
			p.WaitUntil(computeDone)
		}

		cur, next = next, cur
		hasCur = hasNext
		fetchIssue, fetchDone = nextIssue, nextDone
	}

	end := prevComputeDone
	if lastWriteDone > end {
		end = lastWriteDone
	}
	p.WaitUntil(end)
	if total := end - start; comm > total {
		comm = total // overlapped read+write phases cannot exceed wall clock
	}

	a.TotalInvocations++
	a.TotalActive += end - start
	a.TotalComm += comm
	return InvocationStats{
		Start:      start,
		End:        end,
		CommCycles: comm,
		OffChip:    meter.OffChip,
		Chunks:     chunks,
	}
}

// RunAcceleratorSplit is RunAccelerator under a fine-grain action:
// accesses to the buffer's hot region (the leading HotLines-sized
// prefix) use hot, the remainder cold. The loop is a deliberate
// duplicate of RunAccelerator's rather than a closure-parameterized
// merge: the uniform path is the inner loop of every experiment and
// must stay allocation-free and indirection-free.
//
// A mode of FullyCoh (in either region) requires the tile to have a
// private cache.
func (s *SoC) RunAcceleratorSplit(p *sim.Proc, a *AccTile, buf *mem.Buffer, hot, cold Mode, rng *sim.RNG) InvocationStats {
	if hot == cold {
		return s.RunAccelerator(p, a, buf, hot, rng)
	}
	if (hot == FullyCoh || cold == FullyCoh) && !a.HasPrivateCache() {
		panic(fmt.Sprintf("soc: %s has no private cache; FullyCoh unavailable", a.InstName))
	}
	hotLines := s.HotLines()
	plan := acc.NewPlan(a.Spec, buf.Bytes, rng)
	var meter Meter // stays on the stack: callees never retain it
	start := p.Now()

	var cur, next acc.ChunkPlan
	var comm sim.Cycles
	chunks := 0

	hasCur := plan.Next(&cur)
	fetchIssue := start
	var fetchDone sim.Cycles
	if hasCur {
		fetchDone = s.doTransfersSplit(a, buf, cur.Reads, hot, cold, hotLines, false, start, &meter)
	}
	prevComputeDone := start
	lastWriteDone := start

	for hasCur {
		chunks++
		computeStart := fetchDone
		if prevComputeDone > computeStart {
			computeStart = prevComputeDone
		}
		computeDone := computeStart + cur.Compute
		comm += fetchDone - fetchIssue

		// Prefetch the next chunk while this one computes.
		hasNext := plan.Next(&next)
		var nextIssue, nextDone sim.Cycles
		if hasNext {
			nextIssue = computeStart
			nextDone = s.doTransfersSplit(a, buf, next.Reads, hot, cold, hotLines, false, nextIssue, &meter)
		}

		if len(cur.Writes) > 0 {
			wDone := s.doTransfersSplit(a, buf, cur.Writes, hot, cold, hotLines, true, computeDone, &meter)
			comm += wDone - computeDone
			if wDone > lastWriteDone {
				lastWriteDone = wDone
			}
		}
		prevComputeDone = computeDone
		// Yield on the same virtual-time budget as RunAccelerator.
		if computeDone-p.Now() > yieldBudget {
			p.WaitUntil(computeDone)
		}

		cur, next = next, cur
		hasCur = hasNext
		fetchIssue, fetchDone = nextIssue, nextDone
	}

	end := prevComputeDone
	if lastWriteDone > end {
		end = lastWriteDone
	}
	p.WaitUntil(end)
	if total := end - start; comm > total {
		comm = total // overlapped read+write phases cannot exceed wall clock
	}

	a.TotalInvocations++
	a.TotalActive += end - start
	a.TotalComm += comm
	return InvocationStats{
		Start:      start,
		End:        end,
		CommCycles: comm,
		OffChip:    meter.OffChip,
		Chunks:     chunks,
	}
}
