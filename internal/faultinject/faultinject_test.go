package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestDisabledChecksPass(t *testing.T) {
	Disable()
	if err := Check(StoreRename); err != nil {
		t.Fatalf("disabled check returned %v", err)
	}
	if err := CheckIndex(Trial, 3); err != nil {
		t.Fatalf("disabled index check returned %v", err)
	}
}

func TestNthOccurrenceFails(t *testing.T) {
	s := NewScript(Fail(StoreWrite, 2))
	Enable(s)
	defer Disable()
	if err := Check(StoreWrite); err != nil {
		t.Fatalf("occurrence 1 failed early: %v", err)
	}
	if err := Check(StoreWrite); err == nil {
		t.Fatal("occurrence 2 should have failed")
	}
	if err := Check(StoreWrite); err != nil {
		t.Fatalf("occurrence 3 failed late: %v", err)
	}
	if got := s.Triggered(StoreWrite); got != 1 {
		t.Fatalf("triggered %d rules, want 1", got)
	}
	if got := s.Occurrences(StoreWrite); got != 3 {
		t.Fatalf("saw %d occurrences, want 3", got)
	}
}

func TestIndexKeyedRule(t *testing.T) {
	want := errors.New("boom")
	s := NewScript(Rule{Point: Trial, N: 5, Action: Action{Err: want}})
	Enable(s)
	defer Disable()
	// Indices checked out of order: only index 5 fires, regardless of
	// arrival order or how many checks happened before it.
	for _, idx := range []int{7, 0, 3} {
		if err := CheckIndex(Trial, idx); err != nil {
			t.Fatalf("index %d fired: %v", idx, err)
		}
	}
	if err := CheckIndex(Trial, 5); !errors.Is(err, want) {
		t.Fatalf("index 5 returned %v, want %v", err, want)
	}
}

func TestCallAction(t *testing.T) {
	called := 0
	s := NewScript(Rule{Point: CkptRename, N: 1, Action: Action{Call: func() { called++ }}})
	Enable(s)
	defer Disable()
	if err := Check(CkptRename); err != nil {
		t.Fatalf("call action must pass the check, got %v", err)
	}
	if called != 1 {
		t.Fatalf("callback ran %d times, want 1", called)
	}
}

func TestPanicAction(t *testing.T) {
	s := NewScript(Rule{Point: Trial, N: 2, Action: Action{Panic: "injected"}})
	Enable(s)
	defer Disable()
	defer func() {
		if r := recover(); r != "injected" {
			t.Fatalf("recovered %v, want the injected value", r)
		}
	}()
	_ = CheckIndex(Trial, 2)
}

func TestRandomFaultsDeterministic(t *testing.T) {
	points := []Point{StoreCreate, StoreWrite, StoreRename}
	a := RandomFaults(11, points, 20, 4)
	b := RandomFaults(11, points, 20, 4)
	// Same seed, same schedule: drive both scripts through an identical
	// occurrence stream and compare every outcome.
	for occ := 0; occ < 25; occ++ {
		for _, p := range points {
			ea, eb := a.check(p), b.check(p)
			if (ea == nil) != (eb == nil) {
				t.Fatalf("seed-11 schedules diverge at %s occurrence %d: %v vs %v", p, occ, ea, eb)
			}
		}
	}
	total := a.Triggered(StoreCreate) + a.Triggered(StoreWrite) + a.Triggered(StoreRename)
	if total == 0 {
		t.Fatal("random schedule fired nothing over its own occurrence range")
	}
}

// TestRandomFaultsInjectsExactlyCount pins that a campaign asking for
// count faults injects exactly count: duplicate (point, occurrence)
// draws are redrawn, since only the first rule matching an occurrence
// ever fires. Exhausting every occurrence of every point must trigger
// count distinct rules.
func TestRandomFaultsInjectsExactlyCount(t *testing.T) {
	points := []Point{StoreCreate, StoreWrite}
	const maxOcc, count = 3, 5 // 6 distinct pairs: duplicates near-certain across seeds without dedup
	for seed := int64(0); seed < 20; seed++ {
		s := RandomFaults(seed, points, maxOcc, count)
		fired := 0
		for occ := 0; occ < maxOcc; occ++ {
			for _, p := range points {
				if s.check(p) != nil {
					fired++
				}
			}
		}
		if fired != count {
			t.Errorf("seed %d: %d faults fired over the full occurrence range, want %d", seed, fired, count)
		}
	}
}

// TestRandomFaultsCapsAtDistinctPairs pins that count is capped at the
// points×maxOcc distinct pairs available instead of looping forever.
func TestRandomFaultsCapsAtDistinctPairs(t *testing.T) {
	points := []Point{StoreRename}
	s := RandomFaults(3, points, 2, 100)
	fired := 0
	for occ := 0; occ < 4; occ++ {
		if s.check(StoreRename) != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("%d faults fired, want the 2 distinct pairs available", fired)
	}
}

func TestConcurrentChecksAreSafe(t *testing.T) {
	s := NewScript(Fail(StoreOpen, 50))
	Enable(s)
	defer Disable()
	var wg sync.WaitGroup
	fails := make(chan error, 100)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := Check(StoreOpen); err != nil {
					fails <- err
				}
			}
		}()
	}
	wg.Wait()
	close(fails)
	n := 0
	for range fails {
		n++
	}
	if n != 1 {
		t.Fatalf("occurrence-50 rule fired %d times across workers, want exactly 1", n)
	}
	if got := s.Occurrences(StoreOpen); got != 200 {
		t.Fatalf("saw %d occurrences, want 200", got)
	}
}
