// Package faultinject is a deterministic failpoint layer for crash-safety
// testing. Production code marks the operations that can fail in the real
// world — file opens, writes, renames, trial dispatch — with named points;
// tests arm a Script that makes chosen occurrences of those points fail,
// panic, or invoke a callback (e.g. a context cancel). With no script armed
// every check is a single atomic load returning nil, so the points cost
// nothing on the paths that carry them.
//
// Determinism is the design constraint: a script fires on exact occurrence
// counts (for serially-ordered operations like file I/O under one lock) or
// on exact indices (for trial dispatch, where concurrent workers make
// occurrence order scheduling-dependent but indices are stable). RandomFaults
// derives a fault schedule from a seed, so randomized campaigns replay
// bit-identically from the seed alone.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// Point names an injectable operation site. The constants below are the
// sites the experiment harness instruments; tests may define their own.
type Point string

// Failpoints instrumented by internal/experiment.
const (
	// StoreOpen guards reading a persisted run-cache entry.
	StoreOpen Point = "store.open"
	// StoreCreate guards creating the run-cache temp file.
	StoreCreate Point = "store.create"
	// StoreWrite guards encoding/writing the run-cache temp file.
	StoreWrite Point = "store.write"
	// StoreRename guards the atomic rename publishing a run-cache entry.
	StoreRename Point = "store.rename"
	// CkptOpen guards reading a checkpoint cell.
	CkptOpen Point = "ckpt.open"
	// CkptCreate guards creating a checkpoint temp file.
	CkptCreate Point = "ckpt.create"
	// CkptWrite guards encoding/writing a checkpoint temp file.
	CkptWrite Point = "ckpt.write"
	// CkptRename guards the atomic rename publishing a checkpoint cell.
	CkptRename Point = "ckpt.rename"
	// Trial fires at the dispatch of every worker-pool trial, keyed by
	// the trial index (CheckIndex), not by occurrence order.
	Trial Point = "trial"
	// CellAttempt fires at every attempt of a grid cell running under a
	// retry policy. It is occurrence-counted, so a rule can fail attempt
	// k of a cell and let the retried attempt through — the shape real
	// transient infrastructure failures have.
	CellAttempt Point = "cell.attempt"
	// ServeAdmit guards job admission in the HTTP job server (the
	// HTTP-layer failpoint: an injected fault turns one admission into a
	// 503 without touching the job registry).
	ServeAdmit Point = "serve.admit"
	// ManifestOpen guards reading a persisted job manifest.
	ManifestOpen Point = "manifest.open"
	// ManifestCreate guards creating a job-manifest temp file.
	ManifestCreate Point = "manifest.create"
	// ManifestWrite guards encoding/writing a job-manifest temp file.
	ManifestWrite Point = "manifest.write"
	// ManifestRename guards the atomic rename publishing a job manifest.
	ManifestRename Point = "manifest.rename"
	// LeaseAcquire guards the exclusive create that claims a grid cell's
	// lease in shared (multi-process) mode.
	LeaseAcquire Point = "lease.acquire"
	// LeaseRenew guards a heartbeat renewal of a held lease.
	LeaseRenew Point = "lease.renew"
	// LeaseRelease guards deleting a lease after its cell published; an
	// injected fault orphans the lease, exactly like a crash between
	// publish and release would.
	LeaseRelease Point = "lease.release"
	// LeaseReclaim guards the rename that takes a stale lease away from
	// a dead holder.
	LeaseReclaim Point = "lease.reclaim"
)

// ErrTransient marks injected faults that model recoverable
// infrastructure failures (a flaky disk, a brief resource squeeze).
// Retry layers treat errors wrapping it as retryable; every other
// injected error stays fail-fast, like a deterministic trial error.
var ErrTransient = errors.New("faultinject: transient fault")

// Action is what a matched rule does, checked in field order: a non-nil
// Panic value is raised, else a non-nil Call runs (and the check passes),
// else Err is returned (nil Err simply counts the hit).
type Action struct {
	Err   error
	Panic interface{}
	Call  func()
}

// Rule arms one action at one point. For occurrence-counted points N is
// the 1-based occurrence that fires; for index-keyed points (Trial) N is
// the 0-based index.
type Rule struct {
	Point Point
	N     int
	Action
}

// Fail returns a rule failing the Nth occurrence of p with a canned error.
func Fail(p Point, n int) Rule {
	return Rule{Point: p, N: n, Action: Action{Err: fmt.Errorf("faultinject: %s occurrence %d", p, n)}}
}

// FailTransient returns a rule failing the Nth occurrence of p with an
// error wrapping ErrTransient, so retry layers classify it retryable.
func FailTransient(p Point, n int) Rule {
	return Rule{Point: p, N: n, Action: Action{Err: fmt.Errorf("faultinject: %s occurrence %d: %w", p, n, ErrTransient)}}
}

// Script is an armed set of rules plus the per-point occurrence counters
// and trigger log. A Script is single-use: arming it resets nothing, so
// build a fresh one per campaign.
type Script struct {
	mu       sync.Mutex
	rules    map[Point][]Rule
	seen     map[Point]int // occurrences observed so far
	trigs    map[Point]int // rules actually fired
	anyTrial bool          // fast pre-filter for CheckIndex
}

// NewScript builds a script from rules.
func NewScript(rules ...Rule) *Script {
	s := &Script{
		rules: make(map[Point][]Rule),
		seen:  make(map[Point]int),
		trigs: make(map[Point]int),
	}
	for _, r := range rules {
		s.rules[r.Point] = append(s.rules[r.Point], r)
		if r.Point == Trial {
			s.anyTrial = true
		}
	}
	return s
}

// RandomFaults derives a deterministic fault schedule from a seed: count
// distinct error-rules spread over the given points at occurrences in
// [1, maxOcc]. Duplicate (point, occurrence) draws are redrawn — only the
// first rule matching an occurrence ever fires, so a duplicate would
// silently shrink the campaign below count. count is capped at the
// points×maxOcc distinct pairs available. The same seed always yields
// the same schedule.
func RandomFaults(seed int64, points []Point, maxOcc, count int) *Script {
	rng := rand.New(rand.NewSource(seed))
	if max := len(points) * maxOcc; count > max {
		count = max
	}
	type pair struct {
		p Point
		n int
	}
	drawn := make(map[pair]bool, count)
	var rules []Rule
	for len(rules) < count {
		p := points[rng.Intn(len(points))]
		n := 1 + rng.Intn(maxOcc)
		if drawn[pair{p, n}] {
			continue
		}
		drawn[pair{p, n}] = true
		rules = append(rules, Fail(p, n))
	}
	// Stable rule order for reproducible trigger logs.
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Point != rules[j].Point {
			return rules[i].Point < rules[j].Point
		}
		return rules[i].N < rules[j].N
	})
	return NewScript(rules...)
}

// Triggered reports how many rules fired at p so far.
func (s *Script) Triggered(p Point) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.trigs[p]
}

// Occurrences reports how many times p was checked so far.
func (s *Script) Occurrences(p Point) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen[p]
}

// active is the armed script; nil means injection is off and every check
// short-circuits on one atomic load.
var active atomic.Pointer[Script]

// Enable arms s process-wide. Passing nil disarms (same as Disable).
func Enable(s *Script) { active.Store(s) }

// Disable disarms injection.
func Disable() { active.Store(nil) }

// Enabled reports whether a script is armed.
func Enabled() bool { return active.Load() != nil }

// Check consults the armed script for the next occurrence of p. It
// returns the injected error (or panics / runs the callback) when a rule
// matches, nil otherwise — including when injection is off.
func Check(p Point) error {
	s := active.Load()
	if s == nil {
		return nil
	}
	return s.check(p)
}

func (s *Script) check(p Point) error {
	s.mu.Lock()
	s.seen[p]++
	occ := s.seen[p]
	var hit *Rule
	for i := range s.rules[p] {
		if s.rules[p][i].N == occ {
			hit = &s.rules[p][i]
			break
		}
	}
	if hit != nil {
		s.trigs[p]++
	}
	s.mu.Unlock()
	return fire(hit)
}

// CheckIndex consults the armed script for index idx of the index-keyed
// point p (used at trial boundaries, where indices are stable under any
// worker schedule while occurrence order is not).
func CheckIndex(p Point, idx int) error {
	s := active.Load()
	if s == nil {
		return nil
	}
	if p == Trial && !s.anyTrial {
		return nil
	}
	s.mu.Lock()
	s.seen[p]++
	var hit *Rule
	for i := range s.rules[p] {
		if s.rules[p][i].N == idx {
			hit = &s.rules[p][i]
			break
		}
	}
	if hit != nil {
		s.trigs[p]++
	}
	s.mu.Unlock()
	return fire(hit)
}

// fire executes a matched rule's action (hit may be nil: no-op). It runs
// outside the script lock so a Call action may re-enter the package.
func fire(hit *Rule) error {
	if hit == nil {
		return nil
	}
	if hit.Panic != nil {
		panic(hit.Panic)
	}
	if hit.Call != nil {
		hit.Call()
		return nil
	}
	return hit.Err
}
