// Package acc models fixed-function loosely-coupled accelerators by
// their communication behaviour. The paper observes that, from the rest
// of the SoC's viewpoint, an accelerator is characterized by its memory
// traffic — access pattern, DMA burst length, compute duration, data
// reuse, read/write ratio, stride, access fraction, and in-place storage
// — and builds a traffic generator over exactly those knobs. This
// package provides the same parameter set (Spec), a catalog of the
// twelve kernels used in the paper (catalog.go), and a Plan that expands
// a Spec and a workload footprint into the chunked, double-buffered
// access schedule executed by the accelerator socket.
package acc

import (
	"fmt"
	"io"

	"cohmeleon/internal/mem"
	"cohmeleon/internal/sim"
)

// Pattern is the memory access pattern of an accelerator.
type Pattern int

// Access patterns, as in the paper's traffic-generator parameter list.
const (
	Streaming Pattern = iota // long sequential bursts
	Strided                  // fixed-stride single-line accesses
	Irregular                // data-dependent, effectively random accesses
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Streaming:
		return "streaming"
	case Strided:
		return "strided"
	case Irregular:
		return "irregular"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// ReuseFunc returns the number of passes the accelerator makes over its
// dataset for a given footprint and scratchpad size. It lets a Spec
// express footprint-dependent reuse (e.g. merge sort's log-many passes).
type ReuseFunc func(footprintBytes, plmBytes int64) int

// ConstReuse returns a ReuseFunc that always makes n passes.
func ConstReuse(n int) ReuseFunc {
	if n < 1 {
		panic("acc: reuse passes must be ≥ 1")
	}
	return func(_, _ int64) int { return n }
}

// LogReuse returns a ReuseFunc making ~log2(footprint/plm)+base passes,
// the shape of multi-pass kernels such as merge sort or staged FFTs.
func LogReuse(base int) ReuseFunc {
	return func(footprint, plm int64) int {
		n := base
		for chunk := plm; chunk < footprint; chunk *= 2 {
			n++
		}
		if n < 1 {
			n = 1
		}
		return n
	}
}

// Spec describes an accelerator's communication profile. It carries no
// notion of coherence: the surrounding socket decides how its memory
// requests reach the hierarchy, exactly as in ESP.
type Spec struct {
	Name string

	Pattern Pattern

	// BurstLines is the DMA burst length in cache lines for streaming
	// accesses (strided and irregular patterns issue single-line bursts).
	BurstLines int

	// ComputePerByte is datapath cycles spent per byte processed; it sets
	// the compute/communication balance (MRI-Q high, SPMV low).
	ComputePerByte float64

	// ReadFraction is the read share of total traffic in (0, 1].
	ReadFraction float64

	// Reuse yields the number of passes over the dataset.
	Reuse ReuseFunc

	// StrideLines is the distance between consecutive accesses for the
	// Strided pattern, in lines.
	StrideLines int

	// AccessFraction is the fraction of lines touched per pass for the
	// Irregular pattern, in (0, 1].
	AccessFraction float64

	// InPlace reports whether outputs overwrite the input region. When
	// false, the logical buffer is split into a read region followed by a
	// disjoint write region.
	InPlace bool

	// PLMBytes is the private local memory (scratchpad) size; it bounds
	// the chunk processed per iteration and therefore what "fits in local
	// memory and is loaded only once".
	PLMBytes int64
}

// Validate reports configuration errors in the spec.
func (s *Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("acc: spec with empty name")
	case s.BurstLines < 1:
		return fmt.Errorf("acc %s: BurstLines %d < 1", s.Name, s.BurstLines)
	case s.ComputePerByte < 0:
		return fmt.Errorf("acc %s: negative ComputePerByte", s.Name)
	case s.ReadFraction <= 0 || s.ReadFraction > 1:
		return fmt.Errorf("acc %s: ReadFraction %g outside (0,1]", s.Name, s.ReadFraction)
	case s.Reuse == nil:
		return fmt.Errorf("acc %s: nil Reuse", s.Name)
	case s.Pattern == Strided && s.StrideLines < 1:
		return fmt.Errorf("acc %s: strided with StrideLines %d", s.Name, s.StrideLines)
	case s.Pattern == Irregular && (s.AccessFraction <= 0 || s.AccessFraction > 1):
		return fmt.Errorf("acc %s: irregular with AccessFraction %g", s.Name, s.AccessFraction)
	case s.PLMBytes < mem.LineBytes:
		return fmt.Errorf("acc %s: PLM %d smaller than a line", s.Name, s.PLMBytes)
	}
	return nil
}

// HashContent writes a canonical encoding of every behavioral field of
// the spec to w, for content-keyed memoization of simulation runs. The
// Reuse function cannot be encoded by value; callers that know the
// footprints a run will use must additionally hash Reuse's outputs at
// those footprints (see the experiment run cache), which pins its
// behavioral contribution exactly.
func (s *Spec) HashContent(w io.Writer) {
	fmt.Fprintf(w, "spec|%s|%d|%d|%g|%g|%d|%g|%t|%d\n",
		s.Name, s.Pattern, s.BurstLines, s.ComputePerByte, s.ReadFraction,
		s.StrideLines, s.AccessFraction, s.InPlace, s.PLMBytes)
}

// LineRange is a run of logical lines (offsets into the invocation's
// dataset, not physical addresses).
type LineRange struct {
	Start int64
	Lines int64
}

// ChunkPlan is one scratchpad-sized unit of work: the reads that fill
// the PLM, the compute on it, and the writes that drain results.
type ChunkPlan struct {
	Reads   []LineRange
	Writes  []LineRange
	Compute sim.Cycles
}

// Plan iterates the chunked access schedule of one invocation. Create
// with NewPlan; call Next until it returns false. Plans are single-use.
type Plan struct {
	spec       *Spec
	lines      int64 // total dataset lines
	readLines  int64 // logical read region [0, readLines)
	writeBase  int64 // logical start of write region
	writeLines int64
	chunkLines int64
	passes     int
	rng        *sim.RNG

	pass   int
	cursor int64 // lines of the read region consumed in this pass
}

// NewPlan builds the access schedule for a footprint of the given size.
// rng drives irregular access selection and must be non-nil for
// irregular specs.
func NewPlan(spec *Spec, footprintBytes int64, rng *sim.RNG) *Plan {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if footprintBytes <= 0 {
		panic(fmt.Sprintf("acc %s: footprint %d", spec.Name, footprintBytes))
	}
	lines := (footprintBytes + mem.LineBytes - 1) / mem.LineBytes
	p := &Plan{spec: spec, lines: lines, rng: rng}
	if spec.InPlace {
		p.readLines = lines
		p.writeBase = 0
		p.writeLines = lines
	} else {
		p.readLines = int64(float64(lines)*spec.ReadFraction + 0.5)
		if p.readLines < 1 {
			p.readLines = 1
		}
		if p.readLines > lines {
			p.readLines = lines
		}
		p.writeBase = p.readLines
		p.writeLines = lines - p.readLines
	}
	p.chunkLines = spec.PLMBytes / mem.LineBytes
	if p.chunkLines > p.readLines {
		p.chunkLines = p.readLines
	}
	if p.chunkLines < 1 {
		p.chunkLines = 1
	}
	p.passes = spec.Reuse(footprintBytes, spec.PLMBytes)
	if p.passes < 1 {
		p.passes = 1
	}
	return p
}

// Chunks returns the total number of chunks the plan will produce.
func (p *Plan) Chunks() int {
	perPass := (p.readLines + p.chunkLines - 1) / p.chunkLines
	return int(perPass) * p.passes
}

// Passes returns the number of passes over the dataset.
func (p *Plan) Passes() int { return p.passes }

// TotalLines returns the dataset size in lines.
func (p *Plan) TotalLines() int64 { return p.lines }

// Next fills out with the next chunk of work and reports whether one was
// produced. The slices inside out are reused across calls.
func (p *Plan) Next(out *ChunkPlan) bool {
	if p.pass >= p.passes {
		return false
	}
	out.Reads = out.Reads[:0]
	out.Writes = out.Writes[:0]

	n := p.chunkLines
	if remaining := p.readLines - p.cursor; n > remaining {
		n = remaining
	}
	start := p.cursor

	switch p.spec.Pattern {
	case Streaming:
		burst := int64(p.spec.BurstLines)
		for off := int64(0); off < n; off += burst {
			l := burst
			if off+l > n {
				l = n - off
			}
			out.Reads = append(out.Reads, LineRange{Start: start + off, Lines: l})
		}
	case Strided:
		stride := int64(p.spec.StrideLines)
		// Visit the chunk's lines in stride order: single-line bursts at
		// start, start+stride, ... wrapping through the chunk so exactly n
		// lines are touched.
		for lane := int64(0); lane < stride; lane++ {
			for off := lane; off < n; off += stride {
				out.Reads = append(out.Reads, LineRange{Start: start + off, Lines: 1})
			}
		}
	case Irregular:
		// Touch AccessFraction of the chunk's lines at random positions in
		// the whole read region (gather).
		touched := int64(float64(n)*p.spec.AccessFraction + 0.5)
		if touched < 1 {
			touched = 1
		}
		for i := int64(0); i < touched; i++ {
			out.Reads = append(out.Reads, LineRange{Start: p.rng.Int63n(p.readLines), Lines: 1})
		}
	}

	// Writes: the chunk's share of the write region, streamed as bursts.
	var readCount int64
	for _, r := range out.Reads {
		readCount += r.Lines
	}
	writeShare := (1 - p.spec.ReadFraction) / p.spec.ReadFraction
	wLines := int64(float64(readCount)*writeShare + 0.5)
	if p.spec.InPlace {
		if wLines > n {
			wLines = n
		}
		appendBursts(&out.Writes, start, wLines, int64(p.spec.BurstLines))
	} else if p.writeLines > 0 && p.passes > 0 {
		// Spread writes over the write region proportionally to read
		// progress; only the final pass drains outputs.
		if p.pass == p.passes-1 {
			wStart := p.writeBase + p.writeLines*p.cursor/p.readLines
			wEnd := p.writeBase + p.writeLines*(p.cursor+n)/p.readLines
			appendBursts(&out.Writes, wStart, wEnd-wStart, int64(p.spec.BurstLines))
		}
	}

	var processed int64
	for _, r := range out.Reads {
		processed += r.Lines
	}
	out.Compute = sim.Cycles(p.spec.ComputePerByte * float64(processed*mem.LineBytes))

	p.cursor += n
	if p.cursor >= p.readLines {
		p.cursor = 0
		p.pass++
	}
	return true
}

func appendBursts(dst *[]LineRange, start, lines, burst int64) {
	for off := int64(0); off < lines; off += burst {
		l := burst
		if off+l > lines {
			l = lines - off
		}
		*dst = append(*dst, LineRange{Start: start + off, Lines: l})
	}
}
