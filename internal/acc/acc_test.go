package acc

import (
	"testing"
	"testing/quick"

	"cohmeleon/internal/mem"
	"cohmeleon/internal/sim"
)

func TestCatalogSpecsValid(t *testing.T) {
	names := Names()
	if len(names) != 12 {
		t.Fatalf("catalog has %d entries, want 12", len(names))
	}
	for _, n := range names {
		s := MustByName(n)
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
		if s.Name != n {
			t.Errorf("%s: name mismatch %q", n, s.Name)
		}
	}
}

func TestESPNamesExcludesNVDLA(t *testing.T) {
	names := ESPNames()
	if len(names) != 11 {
		t.Fatalf("ESPNames has %d entries, want 11", len(names))
	}
	for _, n := range names {
		if n == NVDLA {
			t.Fatal("ESPNames should exclude NVDLA")
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustByName("nope")
}

func TestPatternString(t *testing.T) {
	if Streaming.String() != "streaming" || Strided.String() != "strided" || Irregular.String() != "irregular" {
		t.Fatal("pattern names wrong")
	}
}

func TestConstReuse(t *testing.T) {
	if ConstReuse(3)(1<<20, 1<<14) != 3 {
		t.Fatal("ConstReuse broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ConstReuse(0) should panic")
		}
	}()
	ConstReuse(0)
}

func TestLogReuseGrowsWithFootprint(t *testing.T) {
	f := LogReuse(1)
	small := f(16<<10, 16<<10) // fits in PLM
	large := f(4<<20, 16<<10)  // 256× PLM → 8 doublings
	if small != 1 {
		t.Fatalf("small reuse = %d, want 1", small)
	}
	if large != 9 {
		t.Fatalf("large reuse = %d, want 9", large)
	}
	if f(0, 16<<10) < 1 {
		t.Fatal("reuse must be at least 1")
	}
}

func TestStreamingPlanCoversDataset(t *testing.T) {
	spec := &Spec{
		Name: "t", Pattern: Streaming, BurstLines: 16, ComputePerByte: 1,
		ReadFraction: 1, Reuse: ConstReuse(1), InPlace: true, PLMBytes: 16 << 10,
	}
	p := NewPlan(spec, 256<<10, nil)
	var chunk ChunkPlan
	covered := make(map[int64]bool)
	chunks := 0
	for p.Next(&chunk) {
		chunks++
		for _, r := range chunk.Reads {
			if r.Lines > 16 {
				t.Fatalf("burst of %d lines exceeds BurstLines", r.Lines)
			}
			for l := r.Start; l < r.Start+r.Lines; l++ {
				covered[l] = true
			}
		}
	}
	wantLines := int64(256 << 10 / mem.LineBytes)
	if int64(len(covered)) != wantLines {
		t.Fatalf("covered %d lines, want %d", len(covered), wantLines)
	}
	if chunks != p.Chunks() {
		t.Fatalf("produced %d chunks, Chunks() said %d", chunks, p.Chunks())
	}
}

func TestPlanPassesRepeatCoverage(t *testing.T) {
	spec := &Spec{
		Name: "t", Pattern: Streaming, BurstLines: 8, ComputePerByte: 0,
		ReadFraction: 1, Reuse: ConstReuse(3), InPlace: true, PLMBytes: 8 << 10,
	}
	p := NewPlan(spec, 32<<10, nil)
	if p.Passes() != 3 {
		t.Fatalf("Passes = %d", p.Passes())
	}
	var chunk ChunkPlan
	var readLines int64
	for p.Next(&chunk) {
		for _, r := range chunk.Reads {
			readLines += r.Lines
		}
	}
	want := 3 * int64(32<<10/mem.LineBytes)
	if readLines != want {
		t.Fatalf("read %d lines, want %d (3 passes)", readLines, want)
	}
}

func TestSmallFootprintSingleChunk(t *testing.T) {
	spec := MustByName(MLP) // 16 KB PLM, 1 pass
	p := NewPlan(spec, 8<<10, nil)
	if p.Chunks() != 1 {
		t.Fatalf("Chunks = %d, want 1 (fits in PLM)", p.Chunks())
	}
}

func TestNonInPlaceSplitsReadWriteRegions(t *testing.T) {
	spec := &Spec{
		Name: "t", Pattern: Streaming, BurstLines: 16, ComputePerByte: 0,
		ReadFraction: 0.75, Reuse: ConstReuse(1), InPlace: false, PLMBytes: 64 << 10,
	}
	p := NewPlan(spec, 64<<10, nil)
	var chunk ChunkPlan
	var maxRead, minWrite int64 = -1, 1 << 62
	for p.Next(&chunk) {
		for _, r := range chunk.Reads {
			if end := r.Start + r.Lines; end > maxRead {
				maxRead = end
			}
		}
		for _, w := range chunk.Writes {
			if w.Start < minWrite {
				minWrite = w.Start
			}
		}
	}
	if maxRead > minWrite {
		t.Fatalf("read region [0,%d) overlaps write region starting %d", maxRead, minWrite)
	}
	totalLines := int64(64 << 10 / mem.LineBytes)
	if minWrite >= totalLines {
		t.Fatalf("write region %d beyond dataset of %d lines", minWrite, totalLines)
	}
}

func TestInPlaceWritesOverlapReads(t *testing.T) {
	spec := &Spec{
		Name: "t", Pattern: Streaming, BurstLines: 16, ComputePerByte: 0,
		ReadFraction: 0.5, Reuse: ConstReuse(1), InPlace: true, PLMBytes: 64 << 10,
	}
	p := NewPlan(spec, 32<<10, nil)
	var chunk ChunkPlan
	if !p.Next(&chunk) {
		t.Fatal("plan produced nothing")
	}
	if len(chunk.Writes) == 0 {
		t.Fatal("in-place plan should write")
	}
	if chunk.Writes[0].Start != 0 {
		t.Fatalf("in-place writes should start at chunk start, got %d", chunk.Writes[0].Start)
	}
}

func TestStridedPlanVisitsAllLines(t *testing.T) {
	spec := &Spec{
		Name: "t", Pattern: Strided, BurstLines: 1, ComputePerByte: 0,
		ReadFraction: 1, Reuse: ConstReuse(1), StrideLines: 4, InPlace: true,
		PLMBytes: 4 << 10,
	}
	p := NewPlan(spec, 4<<10, nil)
	var chunk ChunkPlan
	covered := make(map[int64]bool)
	for p.Next(&chunk) {
		for _, r := range chunk.Reads {
			if r.Lines != 1 {
				t.Fatalf("strided burst of %d lines", r.Lines)
			}
			covered[r.Start] = true
		}
	}
	if len(covered) != 64 {
		t.Fatalf("strided covered %d lines, want 64", len(covered))
	}
}

func TestStridedOrderIsStrided(t *testing.T) {
	spec := &Spec{
		Name: "t", Pattern: Strided, BurstLines: 1, ComputePerByte: 0,
		ReadFraction: 1, Reuse: ConstReuse(1), StrideLines: 4, InPlace: true,
		PLMBytes: 4 << 10,
	}
	p := NewPlan(spec, 4<<10, nil)
	var chunk ChunkPlan
	p.Next(&chunk)
	if chunk.Reads[0].Start != 0 || chunk.Reads[1].Start != 4 {
		t.Fatalf("first accesses %d,%d, want 0,4", chunk.Reads[0].Start, chunk.Reads[1].Start)
	}
}

func TestIrregularPlanRespectsAccessFraction(t *testing.T) {
	spec := &Spec{
		Name: "t", Pattern: Irregular, BurstLines: 1, ComputePerByte: 0,
		ReadFraction: 1, Reuse: ConstReuse(1), AccessFraction: 0.5, InPlace: true,
		PLMBytes: 16 << 10,
	}
	rng := sim.NewRNG(1)
	p := NewPlan(spec, 16<<10, rng)
	var chunk ChunkPlan
	var accesses int64
	for p.Next(&chunk) {
		for _, r := range chunk.Reads {
			accesses += r.Lines
			if r.Start < 0 || r.Start >= 256 {
				t.Fatalf("irregular access %d out of range", r.Start)
			}
		}
	}
	if accesses != 128 {
		t.Fatalf("irregular touched %d lines, want 128 (50%% of 256)", accesses)
	}
}

func TestIrregularPlanDeterministicPerSeed(t *testing.T) {
	spec := MustByName(SPMV)
	collect := func(seed uint64) []int64 {
		p := NewPlan(spec, 64<<10, sim.NewRNG(seed))
		var chunk ChunkPlan
		var out []int64
		for p.Next(&chunk) {
			for _, r := range chunk.Reads {
				out = append(out, r.Start)
			}
		}
		return out
	}
	a, b := collect(7), collect(7)
	if len(a) != len(b) {
		t.Fatal("same seed produced different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestComputeCyclesScaleWithIntensity(t *testing.T) {
	mk := func(cpb float64) sim.Cycles {
		spec := &Spec{
			Name: "t", Pattern: Streaming, BurstLines: 16, ComputePerByte: cpb,
			ReadFraction: 1, Reuse: ConstReuse(1), InPlace: true, PLMBytes: 16 << 10,
		}
		p := NewPlan(spec, 16<<10, nil)
		var chunk ChunkPlan
		p.Next(&chunk)
		return chunk.Compute
	}
	lo, hi := mk(0.5), mk(4.0)
	if hi != 8*lo {
		t.Fatalf("compute %d vs %d, want 8×", lo, hi)
	}
}

func TestTrafficConfigCompiles(t *testing.T) {
	cfg := TrafficConfig{
		Pattern: Streaming, BurstLines: 16, ComputePerByte: 1,
		ReusePasses: 2, ReadFraction: 0.8, PLMBytes: 16 << 10,
	}
	s, err := cfg.Spec("tg0")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "tg0" || s.Reuse(1, 1) != 2 {
		t.Fatalf("compiled spec = %+v", s)
	}
}

func TestTrafficConfigInvalid(t *testing.T) {
	cfg := TrafficConfig{Pattern: Streaming, BurstLines: 0, ReadFraction: 0.5, PLMBytes: 1 << 14}
	if _, err := cfg.Spec("bad"); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestRandomTrafficConfigsAlwaysValid(t *testing.T) {
	rng := sim.NewRNG(11)
	for i := 0; i < 200; i++ {
		cfg := RandomTrafficConfig(rng)
		if _, err := cfg.Spec("tg"); err != nil {
			t.Fatalf("random config invalid: %v (%+v)", err, cfg)
		}
	}
}

func TestStreamingAndIrregularVariants(t *testing.T) {
	rng := sim.NewRNG(3)
	for i := 0; i < 50; i++ {
		s := StreamingTrafficConfig(rng)
		if s.Pattern != Streaming {
			t.Fatal("StreamingTrafficConfig produced non-streaming")
		}
		if _, err := s.Spec("s"); err != nil {
			t.Fatal(err)
		}
		ir := IrregularTrafficConfig(rng)
		if ir.Pattern != Irregular {
			t.Fatal("IrregularTrafficConfig produced non-irregular")
		}
		if _, err := ir.Spec("i"); err != nil {
			t.Fatal(err)
		}
	}
}

// Property: for any random traffic config and footprint, the plan
// terminates, produces Chunks() chunks, and all accesses stay in range.
func TestPlanBoundedProperty(t *testing.T) {
	f := func(seed uint64, kb uint16) bool {
		rng := sim.NewRNG(seed)
		cfg := RandomTrafficConfig(rng)
		spec, err := cfg.Spec("p")
		if err != nil {
			return false
		}
		footprint := int64(kb%512+1) * 1024
		p := NewPlan(spec, footprint, rng)
		total := p.TotalLines()
		var chunk ChunkPlan
		chunks := 0
		for p.Next(&chunk) {
			chunks++
			if chunks > 1<<20 {
				return false // runaway
			}
			for _, r := range append(append([]LineRange{}, chunk.Reads...), chunk.Writes...) {
				if r.Start < 0 || r.Start+r.Lines > total || r.Lines < 1 {
					return false
				}
			}
			if chunk.Compute < 0 {
				return false
			}
		}
		return chunks == p.Chunks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
